package shard

import (
	"fmt"
	"testing"

	"selforg/internal/compress"
	"selforg/internal/delta"
	"selforg/internal/domain"
)

// TestApplyOpsEquivalence: a batch applied through ApplyOps leaves the
// column with exactly the content that the same ops applied one by one
// leave on a reference column — across both strategies and shard
// counts, including cross-shard updates (the live-path split) and
// out-of-extent ops.
func TestApplyOpsEquivalence(t *testing.T) {
	vals := testValues(4000, 11)
	ops := []delta.Op{
		{Kind: delta.OpInsert, V: 10},
		{Kind: delta.OpInsert, V: 70_000},
		{Kind: delta.OpDelete, V: vals[0]},
		{Kind: delta.OpDelete, V: 200_000}, // out of extent → miss
		{Kind: delta.OpUpdate, V: vals[1], New: vals[1] + 1},
		{Kind: delta.OpUpdate, V: vals[2], New: 90_000}, // likely cross-shard
		{Kind: delta.OpInsert, V: 55},
		{Kind: delta.OpDelete, V: 55},
		{Kind: delta.OpUpdate, V: 123_456_789, New: 5}, // out of extent → miss
	}
	for _, strat := range []string{"segm", "repl"} {
		for _, k := range []int{1, 3} {
			t.Run(fmt.Sprintf("%s/shards=%d", strat, k), func(t *testing.T) {
				b := segBuilder(compress.Off)
				if strat == "repl" {
					b = replBuilder(compress.Off)
				}
				batched, err := New(testDom, vals, k, b)
				if err != nil {
					t.Fatal(err)
				}
				serial, err := New(testDom, vals, k, b)
				if err != nil {
					t.Fatal(err)
				}
				res, _, err := batched.ApplyOps(ops)
				if err != nil {
					t.Fatal(err)
				}
				for i, op := range ops {
					var ok bool
					switch op.Kind {
					case delta.OpInsert:
						_, ierr := serial.Insert(op.V)
						ok = ierr == nil
					case delta.OpDelete:
						ok, _, _ = serial.Delete(op.V)
					case delta.OpUpdate:
						ok, _, _ = serial.Update(op.V, op.New)
					}
					if res[i] != ok {
						t.Fatalf("op %d (%+v): batched=%v serial=%v", i, op, res[i], ok)
					}
				}
				got, _ := batched.Select(testDom)
				want, _ := serial.Select(testDom)
				gs, ws := sorted(got), sorted(want)
				if len(gs) != len(ws) {
					t.Fatalf("content diverged: %d vs %d rows", len(gs), len(ws))
				}
				for i := range gs {
					if gs[i] != ws[i] {
						t.Fatalf("content diverged at %d: %d vs %d", i, gs[i], ws[i])
					}
				}
				gn, _ := batched.Count(testDom)
				wn, _ := serial.Count(testDom)
				if gn != wn {
					t.Fatalf("count diverged: %d vs %d", gn, wn)
				}
			})
		}
	}
}

// TestApplyOpsOnePublicationPerShardBatch pins the write-amplification
// fix this subsystem exists for: a batch of N same-shard writes causes
// exactly ONE snapshot publication in that shard's store, not N.
func TestApplyOpsOnePublicationPerShardBatch(t *testing.T) {
	vals := testValues(2000, 3)
	col, err := New(testDom, vals, 2, segBuilder(compress.Off))
	if err != nil {
		t.Fatal(err)
	}
	// All ops land in shard 0 (low half of the domain).
	var ops []delta.Op
	for i := 0; i < 32; i++ {
		ops = append(ops, delta.Op{Kind: delta.OpInsert, V: domain.Value(i)})
	}
	before := col.Shard(0).DeltaStats()
	if _, _, err := col.ApplyOps(ops); err != nil {
		t.Fatal(err)
	}
	after := col.Shard(0).DeltaStats()
	if got := after.Publications - before.Publications; got != 1 {
		t.Fatalf("32-op batch published %d snapshots, want 1", got)
	}
	if got := after.Watermark - before.Watermark; got != 1 {
		t.Fatalf("32-op batch bumped version by %d, want 1", got)
	}
	if after.Inserts-before.Inserts != 32 {
		t.Fatalf("inserts accounted %d, want 32", after.Inserts-before.Inserts)
	}
}
