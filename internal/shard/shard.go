// Package shard implements domain-sharded self-organizing columns: one
// logical column range-partitioned into K independently locked shards,
// each owning its own segment list (or replica tree), segmentation-model
// state, compression codec and MVCC delta store.
//
// The motivation is the follow-up the cracking/adaptive-merging line
// records for single-writer adaptive stores: reorganization piggy-backs
// on queries, so write-heavy and mixed workloads serialize on the one
// writer lock guarding the column. Partitioning the key domain makes
// reorganization embarrassingly parallel — a split in shard 2 never
// contends with a merge-back in shard 5 — while the immutable-snapshot
// read path keeps cross-shard queries cheap: a query routes to the
// minimal shard subset overlapping its predicate, scans each shard's
// snapshot (optionally fanning the per-shard scans across a bounded
// worker pool) and concatenates the sub-results in shard order, so
// results are deterministic.
//
// A single-shard Column is a pure pass-through: every call delegates to
// the one underlying strategy, so K=1 is byte-identical — results, stats
// and layout evolution — to using the strategy directly. That is the
// compatibility anchor the facade's Options.Shards default rests on.
//
// # Locking invariants
//
//   - Each shard retains its own single-writer mutex and delta-store
//     mutex. The router adds exactly one lock of its own: xmu, a
//     read-write mutex taken in write mode only by cross-shard updates
//     (two shards' stores mutate under one commit stamp) and in read
//     mode only by Pin's multi-shard pin sweep. Single-shard writes and
//     live queries never touch it.
//   - Every shard's delta store stamps writes from ONE shared
//     column-wide commit clock (delta.Clock), so a cross-shard update's
//     delete half and insert half carry the same version.
//   - A live query pins each touched shard's (segment snapshot, delta
//     watermark) pair independently, in shard order. Consistency is
//     therefore per shard: a concurrent writer may land between two
//     shard pins of one multi-shard query. Within a shard the full MVCC
//     guarantees of internal/core hold unchanged. Pin (the explicit
//     View) is stronger: its sweep runs under xmu's read half, so a
//     pinned View observes a cross-shard update entirely or not at all.
//   - Merge-back thresholds are evaluated per shard against that shard's
//     own delta store and base size, so a hot shard checkpoints without
//     stalling its siblings.
package shard

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"selforg/internal/core"
	"selforg/internal/delta"
	"selforg/internal/domain"
	"selforg/internal/obs"
	"selforg/internal/result"
	"selforg/internal/segment"
)

// Builder constructs the strategy instance owning one shard: idx is the
// shard index, rng the shard's sub-range of the column extent, and vals
// the column values falling into it (in their original relative order;
// the shard takes ownership of the slice). Builders must hand every
// shard its own model instance — models are stateful.
type Builder func(idx int, rng domain.Range, vals []domain.Value) core.DeltaStrategy

// Column is a domain-sharded self-organizing column. It implements
// core.DeltaStrategy by routing every operation to the minimal shard
// subset and merging per-shard outcomes in shard order. It is safe for
// concurrent use exactly as its shards are.
type Column struct {
	extent domain.Range
	ranges []domain.Range // ranges[i] is shard i's sub-domain, ascending, adjacent
	shards []core.DeltaStrategy
	// clock is the column-wide commit clock every shard's delta store
	// stamps from (nil when any shard strategy cannot share one — then
	// cross-shard updates fall back to delete+insert on independent
	// clocks, the pre-stamping behaviour).
	clock *delta.Clock
	// xmu orders cross-shard updates (write half) against multi-shard
	// pin sweeps (read half) — see the package locking invariants.
	xmu sync.RWMutex
	// par is the cross-shard fan-out width for one query (0 = adaptive,
	// 1 = serial, n > 1 = bounded at n). Intra-shard scan fan-out is each
	// shard strategy's own knob; SetParallelism keeps the two consistent.
	par atomic.Int32
	// ob holds the router's resolved observability handles (nil =
	// uninstrumented); per-shard metrics live on the shard strategies
	// themselves, labeled shard="i".
	ob atomic.Pointer[routerObs]
	// stor caches each shard's (logical, physical) storage counters.
	// Per-query stats snapshot the whole column, but asking an untouched
	// Replicator shard for its counters takes that shard's writer mutex —
	// which would couple every operation to every other shard's in-flight
	// queries and merges, exactly the serialization sharding removes. So
	// an operation refreshes only the shards it touched and reads the
	// rest from this cache: lock-free, possibly a few operations stale
	// (per-query storage snapshots under concurrency are documented as
	// racy already), never torn.
	stor []storCell
}

// storCell is one shard's cached storage counters.
type storCell struct {
	logical atomic.Int64
	phys    atomic.Int64
}

// routerObs is the router's resolved metric handle set: routed query
// counters per op and the span-width histogram (how many shards one
// query touched — the routing fan-out distribution).
type routerObs struct {
	sel, cnt *obs.Counter
	span     *obs.Histogram
}

// observable is the shard-strategy observer surface (both core
// strategies implement it).
type observable interface {
	SetObserver(ob *obs.Observer, shardIdx int)
}

// SetObserver attaches (or, with nil, detaches) the observability layer:
// the router registers its routing counters and forwards the observer to
// every shard strategy, labeling each with its shard index.
func (c *Column) SetObserver(ob *obs.Observer) {
	if ob == nil {
		c.ob.Store(nil)
		for _, s := range c.shards {
			if o, ok := s.(observable); ok {
				o.SetObserver(nil, 0)
			}
		}
		return
	}
	c.ob.Store(&routerObs{
		sel:  ob.Registry.Counter(`selforg_router_queries_total{op="select"}`),
		cnt:  ob.Registry.Counter(`selforg_router_queries_total{op="count"}`),
		span: ob.Registry.Histogram(`selforg_router_span_shards`),
	})
	for i, s := range c.shards {
		if o, ok := s.(observable); ok {
			o.SetObserver(ob, i)
		}
	}
}

// Partition range-partitions extent into k contiguous sub-ranges of
// near-equal width (the first width%k shards are one value wider). k is
// clamped to [1, extent.Width()] so no shard is ever empty-ranged.
func Partition(extent domain.Range, k int) []domain.Range {
	if k < 1 {
		k = 1
	}
	if w := extent.Width(); int64(k) > w {
		k = int(w)
	}
	width := extent.Width()
	base := width / int64(k)
	rem := width % int64(k)
	out := make([]domain.Range, 0, k)
	lo := extent.Lo
	for i := 0; i < k; i++ {
		w := base
		if int64(i) < rem {
			w++
		}
		out = append(out, domain.Range{Lo: lo, Hi: lo + w - 1})
		lo += w
	}
	return out
}

// SplitValues partitions vals by the given shard ranges, preserving the
// relative order of values within each part (the order-preserving
// scatter of a radix partition step). Values must all lie inside the
// ranges' union.
func SplitValues(ranges []domain.Range, vals []domain.Value) [][]domain.Value {
	parts := make([][]domain.Value, len(ranges))
	if len(ranges) == 1 {
		parts[0] = vals
		return parts
	}
	for _, v := range vals {
		i := rangeOf(ranges, v)
		parts[i] = append(parts[i], v)
	}
	return parts
}

// New builds a sharded column over values, whose domain is extent, with
// k shards built by build. Values outside extent are rejected before any
// shard is constructed. The values slice is consumed.
func New(extent domain.Range, vals []domain.Value, k int, build Builder) (*Column, error) {
	if extent.IsEmpty() {
		return nil, fmt.Errorf("shard: empty extent %v", extent)
	}
	for i, v := range vals {
		if !extent.Contains(v) {
			return nil, fmt.Errorf("shard: value %d (index %d) outside extent %v", v, i, extent)
		}
	}
	ranges := Partition(extent, k)
	parts := SplitValues(ranges, vals)
	c := &Column{
		extent: extent,
		ranges: ranges,
		shards: make([]core.DeltaStrategy, len(ranges)),
		stor:   make([]storCell, len(ranges)),
	}
	for i, rng := range ranges {
		c.shards[i] = build(i, rng, parts[i])
		c.refresh(i)
	}
	// Bind every shard's store to one column-wide commit clock, so a
	// cross-shard update can stamp both halves with the same version.
	// All-or-nothing: a mixed column (some shard cannot stamp) keeps
	// independent clocks everywhere rather than half-sharing.
	clock := delta.NewClock()
	stampers := make([]core.StampedWriter, 0, len(c.shards))
	for _, s := range c.shards {
		sw, ok := s.(core.StampedWriter)
		if !ok {
			stampers = nil
			break
		}
		stampers = append(stampers, sw)
	}
	if stampers != nil {
		for _, sw := range stampers {
			sw.ShareDeltaClock(clock)
		}
		c.clock = clock
	}
	return c, nil
}

// refresh re-reads shard i's storage counters into the cache (the only
// place a shard's lock may be taken for accounting — callers refresh
// exactly the shards their operation touched).
func (c *Column) refresh(i int) {
	c.stor[i].logical.Store(int64(c.shards[i].UncompressedBytes()))
	c.stor[i].phys.Store(int64(c.shards[i].StorageBytes()))
}

// Shards returns the shard count.
func (c *Column) Shards() int { return len(c.shards) }

// ShardRange returns shard i's sub-domain.
func (c *Column) ShardRange(i int) domain.Range { return c.ranges[i] }

// Shard returns shard i's strategy instance (read-mostly use:
// diagnostics and tests; the strategy is safe for concurrent use).
func (c *Column) Shard(i int) core.DeltaStrategy { return c.shards[i] }

// Extent returns the column's value domain.
func (c *Column) Extent() domain.Range { return c.extent }

// SetParallelism bounds the scan fan-out of one query, keeping the
// single knob's contract — at most n workers per query — across both
// levels. With n == 0 (the default) the router stays serial across
// shards and every shard independently sizes its intra-shard fan-out
// from its own segment count and scan volume, so no instant exceeds the
// unsharded adaptive cap. With n == 1 everything is serial. With n > 1
// the budget is split statically: the router scans up to n touched
// shards concurrently and each shard may fan out n/K ways (at least 1),
// so a full-span query uses up to n workers and a single-shard query
// n/K — the price of a static split; prefer the adaptive default when
// queries are span-skewed. The policy is forwarded to the shard
// strategies, overriding whatever the Builder set; a single-shard
// column forwards n unchanged — there is no router level to spend the
// budget on.
func (c *Column) SetParallelism(n int) {
	if n < 0 {
		n = 1
	}
	c.par.Store(int32(n))
	perShard := n
	if k := len(c.shards); k > 1 && n > 1 {
		perShard = n / k
		if perShard < 1 {
			perShard = 1
		}
	}
	for _, s := range c.shards {
		if p, ok := s.(interface{ SetParallelism(int) }); ok {
			p.SetParallelism(perShard)
		}
	}
}

// rangeOf returns the index of the range containing v (ranges are
// ascending and adjacent; v must lie in their union).
func rangeOf(ranges []domain.Range, v domain.Value) int {
	return sort.Search(len(ranges), func(i int) bool { return ranges[i].Hi >= v })
}

// spanOf returns the half-open index interval [lo, hi) of ranges
// overlapping q — the shard-level meta-index lookup.
func spanOf(ranges []domain.Range, q domain.Range) (int, int) {
	if q.IsEmpty() {
		return 0, 0
	}
	lo := sort.Search(len(ranges), func(i int) bool { return ranges[i].Hi >= q.Lo })
	hi := sort.Search(len(ranges), func(i int) bool { return ranges[i].Lo > q.Hi })
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// snapshot overwrites the storage measures of st with the column-wide
// sums, so sharded per-query stats snapshot the whole column exactly as
// unsharded ones do. The shards the operation touched — the half-open
// span [lo, hi) — are re-read (their counters just changed); the rest
// come from the lock-free cache, so an operation never takes an
// untouched shard's lock. (For a single-shard column the sums equal the
// shard's own snapshot, so delegated stats are unchanged bit for bit.)
func (c *Column) snapshot(st *core.QueryStats, lo, hi int) {
	for i := lo; i < hi; i++ {
		c.refresh(i)
	}
	var logical, phys int64
	for i := range c.stor {
		logical += c.stor[i].logical.Load()
		phys += c.stor[i].phys.Load()
	}
	st.StorageBytes = logical
	st.CompressedBytes = phys
}

// Select implements core.Strategy: route to the overlapping shards, scan
// each (concurrently when the fan-out allows), and concatenate the
// sub-results in shard order. Reorganization piggy-backs inside each
// shard exactly as unsharded.
func (c *Column) Select(q domain.Range) ([]domain.Value, core.QueryStats) {
	rope, _, st := c.query(q, true)
	return rope.Flatten(), st
}

// SelectRope implements core.RopeSelector: the routed read path with the
// per-shard sub-results spliced chunk-wise in shard order — no value is
// copied at the router layer, regardless of the shard count.
func (c *Column) SelectRope(q domain.Range) (*result.Rope, core.QueryStats) {
	rope, _, st := c.query(q, true)
	return rope, st
}

// shardSelectRope scans one shard as a rope, falling back to wrapping
// the flat result for shard strategies without the rope capability.
func shardSelectRope(s core.DeltaStrategy, q domain.Range) (*result.Rope, core.QueryStats) {
	if rs, ok := s.(core.RopeSelector); ok {
		return rs.SelectRope(q)
	}
	vals, st := s.Select(q)
	return result.FromOwned(vals), st
}

// Count implements core.Strategy: the counting pass of Select with
// per-shard counts summed in shard order.
func (c *Column) Count(q domain.Range) (int64, core.QueryStats) {
	_, n, st := c.query(q, false)
	return n, st
}

// query is the shared routed read path.
func (c *Column) query(q domain.Range, wantVals bool) (*result.Rope, int64, core.QueryStats) {
	var st core.QueryStats
	lo, hi := spanOf(c.ranges, q)
	n := hi - lo
	if ro := c.ob.Load(); ro != nil {
		if wantVals {
			ro.sel.Inc()
		} else {
			ro.cnt.Inc()
		}
		ro.span.Observe(int64(n))
	}
	switch {
	case n == 0:
		c.snapshot(&st, 0, 0)
		return result.New(), 0, st
	case n == 1:
		// Single-shard fast path: pure delegation, no merge step. This is
		// the every-call path of a 1-shard column (byte-identical to the
		// unsharded strategy) and the common path of point-ish queries on
		// K-shard columns.
		var rope *result.Rope
		var cnt int64
		if wantVals {
			rope, st = shardSelectRope(c.shards[lo], q)
		} else {
			cnt, st = c.shards[lo].Count(q)
		}
		c.snapshot(&st, lo, hi)
		return rope, cnt, st
	}

	type shardOut struct {
		rope *result.Rope
		cnt  int64
		st   core.QueryStats
	}
	outs := make([]shardOut, n)
	run := func(i int) {
		s := c.shards[lo+i]
		if wantVals {
			outs[i].rope, outs[i].st = shardSelectRope(s, q)
		} else {
			outs[i].cnt, outs[i].st = s.Count(q)
		}
	}
	if par := c.fanout(); par <= 1 {
		for i := 0; i < n; i++ {
			run(i)
		}
	} else {
		workers := par
		if workers > n {
			workers = n
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					run(i)
				}
			}()
		}
		wg.Wait()
	}
	// Merge in shard order: the rope splice moves chunk headers, never
	// values, so the router's concatenation cost no longer scales with
	// the result volume times the shard count.
	rope := result.New()
	var cnt int64
	for i := range outs {
		st.Add(outs[i].st)
		rope.Splice(outs[i].rope)
		cnt += outs[i].cnt
	}
	c.snapshot(&st, lo, hi)
	return rope, cnt, st
}

// fanout resolves the cross-shard worker count for one query. The
// single Parallelism budget must not multiply across the two levels, so
// exactly one level widens: with the adaptive default (0) the router
// stays serial and each shard adapts its own fan-out from its own
// segment count and scan volume (never exceeding the unsharded adaptive
// cap at any instant); with an explicit budget the router scans shards
// concurrently and SetParallelism has already divided the budget among
// the shards.
func (c *Column) fanout() int {
	par := int(c.par.Load())
	if par == 0 {
		return 1
	}
	return par
}

// Insert implements core.DeltaStrategy: the row lands in the owning
// shard's delta store, contending only with writers of that shard.
func (c *Column) Insert(v domain.Value) (core.QueryStats, error) {
	if !c.extent.Contains(v) {
		return core.QueryStats{}, fmt.Errorf("shard: insert value %d outside extent %v", v, c.extent)
	}
	i := rangeOf(c.ranges, v)
	st, err := c.shards[i].Insert(v)
	c.snapshot(&st, i, i+1)
	return st, err
}

// writeTarget picks the shard whose store should account a write against
// v: the owner when v is in extent, shard 0 otherwise (the shard's own
// extent check then records the miss, mirroring unsharded behaviour).
func (c *Column) writeTarget(v domain.Value) int {
	if c.extent.Contains(v) {
		return rangeOf(c.ranges, v)
	}
	return 0
}

// Delete implements core.DeltaStrategy: routed to the shard owning v.
func (c *Column) Delete(v domain.Value) (bool, core.QueryStats, error) {
	i := c.writeTarget(v)
	ok, st, err := c.shards[i].Delete(v)
	c.snapshot(&st, i, i+1)
	return ok, st, err
}

// Update implements core.DeltaStrategy. When old and new fall into the
// same shard the update is single-version atomic exactly as unsharded.
// A cross-shard update stamps its delete half (owning shard) and its
// insert half (target shard) with ONE version minted from the shared
// column-wide commit clock, under xmu's write half — so a pinned View,
// whose pin sweep holds xmu's read half, observes the update entirely
// or not at all (live multi-shard scans pin per shard and remain
// per-shard consistent only). DeltaStats counts such an update as one
// delete plus one insert.
func (c *Column) Update(old, new domain.Value) (bool, core.QueryStats, error) {
	if !c.extent.Contains(old) || !c.extent.Contains(new) {
		i := c.writeTarget(old)
		ok, st, err := c.shards[i].Update(old, new)
		c.snapshot(&st, i, i+1)
		return ok, st, err
	}
	i, j := rangeOf(c.ranges, old), rangeOf(c.ranges, new)
	if i == j {
		ok, st, err := c.shards[i].Update(old, new)
		c.snapshot(&st, i, i+1)
		return ok, st, err
	}
	if c.clock == nil {
		return c.updateUnstamped(i, j, old, new)
	}
	c.xmu.Lock()
	defer c.xmu.Unlock()
	sdel := c.shards[i].(core.StampedWriter)
	sins := c.shards[j].(core.StampedWriter)
	ver := c.clock.Next()
	ok, st, err := sdel.DeleteStamped(ver, old)
	if !ok || err != nil {
		c.snapshot(&st, i, i+1)
		return false, st, err
	}
	ist, err := sins.InsertStamped(ver, new)
	st.Add(ist)
	c.refresh(i)
	c.snapshot(&st, j, j+1)
	return true, st, err
}

// updateUnstamped is the cross-shard fallback for columns whose shards
// cannot share a commit clock: delete then insert on two independent
// clocks (a reader pinning between them can observe the row absent,
// never duplicated).
func (c *Column) updateUnstamped(i, j int, old, new domain.Value) (bool, core.QueryStats, error) {
	ok, st, err := c.shards[i].Delete(old)
	if !ok || err != nil {
		c.snapshot(&st, i, i+1)
		return false, st, err
	}
	ist, err := c.shards[j].Insert(new)
	st.Add(ist)
	c.refresh(i)
	c.snapshot(&st, j, j+1)
	return true, st, err
}

// ApplyOps applies a group-committed batch of writes: ops are
// partitioned to their owning shards in arrival order and each touched
// shard applies its sub-batch under ONE version bump and ONE snapshot
// publication (core's applyOps). Ops owned by different shards commute —
// they touch disjoint stores and disjoint base ranges — so the per-shard
// partition preserves every ordering that matters. The one exception is
// a cross-shard update (old and new in extent, different owners): it
// cannot share a publication, so the batch is split at it and the
// update runs through the live Update path (the group committer
// isolates such ops as singleton batches, making the split a no-op in
// the durable pipeline). Per-op results follow Insert/Delete/Update's
// acceptance rules; out-of-extent inserts are refused without an error.
func (c *Column) ApplyOps(ops []delta.Op) ([]bool, core.QueryStats, error) {
	var st core.QueryStats
	res := make([]bool, len(ops))
	if len(ops) == 0 {
		c.snapshot(&st, 0, 0)
		return res, st, nil
	}
	byShard := make(map[int][]delta.Op)
	origin := make(map[int][]int) // shard -> accepted op's index in ops
	loT, hiT := len(c.shards), 0  // touched shard span for the final snapshot
	touch := func(i int) {
		if i < loT {
			loT = i
		}
		if i+1 > hiT {
			hiT = i + 1
		}
	}
	flush := func() error {
		for i := 0; i < len(c.shards); i++ {
			sub := byShard[i]
			if len(sub) == 0 {
				continue
			}
			out, sst, err := c.shards[i].ApplyOps(sub)
			st.Add(sst)
			touch(i)
			for j, ok := range out {
				res[origin[i][j]] = ok
			}
			if err != nil {
				return err
			}
		}
		byShard = make(map[int][]delta.Op)
		origin = make(map[int][]int)
		return nil
	}
	for k, op := range ops {
		var i int
		switch op.Kind {
		case delta.OpInsert:
			if !c.extent.Contains(op.V) {
				continue // refused, mirrors Insert's extent error
			}
			i = rangeOf(c.ranges, op.V)
		case delta.OpDelete:
			i = c.writeTarget(op.V)
		case delta.OpUpdate:
			if c.extent.Contains(op.V) && c.extent.Contains(op.New) {
				oi, nj := rangeOf(c.ranges, op.V), rangeOf(c.ranges, op.New)
				if oi != nj {
					// Cross-shard: flush what's queued, run it live.
					if err := flush(); err != nil {
						c.snapshot(&st, loT, hiT)
						return res, st, err
					}
					ok, ust, uerr := c.Update(op.V, op.New)
					st.Add(ust)
					touch(oi)
					touch(nj)
					res[k] = ok
					if uerr != nil {
						c.snapshot(&st, loT, hiT)
						return res, st, uerr
					}
					continue
				}
				i = oi
			} else {
				i = c.writeTarget(op.V) // shard's extent screen records the miss
			}
		default:
			continue
		}
		byShard[i] = append(byShard[i], op)
		origin[i] = append(origin[i], k)
	}
	err := flush()
	if loT > hiT {
		loT, hiT = 0, 0
	}
	c.snapshot(&st, loT, hiT)
	return res, st, err
}

// MergeDeltas implements core.DeltaStrategy: force-drains every shard's
// write store, shard by shard. Automatic merge-back needs no such sweep —
// each shard's thresholds trigger independently.
func (c *Column) MergeDeltas() (core.QueryStats, error) {
	var st core.QueryStats
	for i, s := range c.shards {
		mst, err := s.MergeDeltas()
		st.Add(mst)
		if err != nil {
			c.snapshot(&st, 0, i+1)
			return st, err
		}
	}
	c.snapshot(&st, 0, len(c.shards))
	return st, nil
}

// SetDeltaPolicy implements core.DeltaStrategy. The thresholds trigger
// per shard — a shard merges when ITS pending writes trip, so a hot
// shard checkpoints without stalling its siblings — but maxBytes keeps
// its column-level meaning: it is split evenly across the shards
// (ceiling), so the column-wide pending bound (and the overlay volume
// queries pay) stays comparable at every shard count. The ratio trigger
// is naturally per shard (pending vs that shard's base size) and is
// passed through unchanged.
func (c *Column) SetDeltaPolicy(maxBytes int64, ratio float64) {
	perShard := maxBytes
	if perShard > 0 && len(c.shards) > 1 {
		k := int64(len(c.shards))
		perShard = (maxBytes + k - 1) / k
	}
	for _, s := range c.shards {
		s.SetDeltaPolicy(perShard, ratio)
	}
}

// DeltaStats implements core.DeltaStrategy: per-shard counters summed.
// Watermark is the maximum of the per-shard version high-water marks —
// with the shared commit clock that is the column-wide clock's last
// stamped version. A cross-shard update counts as one delete plus one
// insert.
func (c *Column) DeltaStats() delta.Stats {
	var out delta.Stats
	for _, s := range c.shards {
		ds := s.DeltaStats()
		out.Inserts += ds.Inserts
		out.Updates += ds.Updates
		out.Deletes += ds.Deletes
		out.DeleteMisses += ds.DeleteMisses
		out.Pending += ds.Pending
		out.PendingBytes += ds.PendingBytes
		out.Runs += ds.Runs
		out.Merges += ds.Merges
		out.MergedEntries += ds.MergedEntries
		out.Publications += ds.Publications
		if ds.Watermark > out.Watermark {
			out.Watermark = ds.Watermark
		}
	}
	return out
}

// EncodingStats implements core.DeltaStrategy: per-shard breakdowns
// accumulated.
func (c *Column) EncodingStats() segment.EncodingStats {
	var es segment.EncodingStats
	for _, s := range c.shards {
		es.Add(s.EncodingStats())
	}
	return es
}

// SegmentCount implements core.Strategy.
func (c *Column) SegmentCount() int {
	n := 0
	for _, s := range c.shards {
		n += s.SegmentCount()
	}
	return n
}

// StorageBytes implements core.Strategy.
func (c *Column) StorageBytes() domain.ByteSize {
	var b domain.ByteSize
	for _, s := range c.shards {
		b += s.StorageBytes()
	}
	return b
}

// UncompressedBytes implements core.Strategy.
func (c *Column) UncompressedBytes() domain.ByteSize {
	var b domain.ByteSize
	for _, s := range c.shards {
		b += s.UncompressedBytes()
	}
	return b
}

// SegmentSizes implements core.Strategy: per-shard sizes concatenated in
// shard order. The per-shard slices are collected first and copied once
// into an exactly-sized result, instead of growing one slice across
// shards (which re-copied earlier shards' sizes on every growth).
func (c *Column) SegmentSizes() []float64 {
	parts := make([][]float64, len(c.shards))
	total := 0
	for i, s := range c.shards {
		parts[i] = s.SegmentSizes()
		total += len(parts[i])
	}
	out := make([]float64, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// Name implements core.Strategy: the underlying strategy's name, tagged
// with the shard count when sharded.
func (c *Column) Name() string {
	if len(c.shards) == 1 {
		return c.shards[0].Name()
	}
	return fmt.Sprintf("%s x%dsh", c.shards[0].Name(), len(c.shards))
}

// BulkLoad appends a batch of values, scattered to the owning shards
// (order-preserving within each shard) and loaded per shard. Values are
// validated against the extent before any shard is touched.
func (c *Column) BulkLoad(vals []domain.Value) (core.QueryStats, error) {
	var st core.QueryStats
	for i, v := range vals {
		if !c.extent.Contains(v) {
			return st, fmt.Errorf("shard: bulk value %d (index %d) outside extent %v", v, i, c.extent)
		}
	}
	parts := SplitValues(c.ranges, vals)
	for i, s := range c.shards {
		if len(parts[i]) == 0 {
			continue
		}
		bst, err := s.BulkLoad(parts[i])
		st.Add(bst)
		if err != nil {
			return st, err
		}
		c.refresh(i)
	}
	c.snapshot(&st, 0, 0)
	return st, nil
}

// GlueSmall merges adjacent small segments within every shard that
// supports gluing (gluing never crosses a shard boundary — boundaries
// are permanent partition points). It reports false when any shard
// declines the capability (replica-tree shards do).
func (c *Column) GlueSmall(minBytes int64) (int64, bool) {
	var rewritten int64
	for i, s := range c.shards {
		n, ok := s.GlueSmall(minBytes)
		if !ok {
			return rewritten, false
		}
		rewritten += n
		c.refresh(i)
	}
	return rewritten, true
}

// TreeDepth implements core.TreeShaped: the maximum replica-tree depth
// over the shards (0 when no shard is tree-shaped).
func (c *Column) TreeDepth() int {
	depth := 0
	for _, s := range c.shards {
		if r, ok := s.(core.TreeShaped); ok && r.TreeDepth() > depth {
			depth = r.TreeDepth()
		}
	}
	return depth
}

// VirtualCount implements core.TreeShaped: the total virtual-segment
// count over the shards (0 for segmentation shards).
func (c *Column) VirtualCount() int {
	n := 0
	for _, s := range c.shards {
		if r, ok := s.(core.TreeShaped); ok {
			n += r.VirtualCount()
		}
	}
	return n
}

// Validate checks the router's partition invariants — shard ranges tile
// the extent, adjacent and ascending — and every shard's own structural
// invariants.
func (c *Column) Validate() error {
	if len(c.ranges) == 0 {
		return fmt.Errorf("shard: no shards")
	}
	if c.ranges[0].Lo != c.extent.Lo || c.ranges[len(c.ranges)-1].Hi != c.extent.Hi {
		return fmt.Errorf("shard: ranges %v..%v do not tile extent %v",
			c.ranges[0], c.ranges[len(c.ranges)-1], c.extent)
	}
	for i := 1; i < len(c.ranges); i++ {
		if !c.ranges[i-1].Adjacent(c.ranges[i]) {
			return fmt.Errorf("shard: ranges %v and %v not adjacent", c.ranges[i-1], c.ranges[i])
		}
	}
	for i, s := range c.shards {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("shard %d %v: %w", i, c.ranges[i], err)
		}
	}
	return nil
}

// Layout renders every shard's layout under a per-shard header.
func (c *Column) Layout() string {
	if len(c.shards) == 1 {
		return c.shards[0].Layout()
	}
	var b strings.Builder
	for i := range c.shards {
		layout := c.shards[i].Layout()
		fmt.Fprintf(&b, "shard %d %v:\n%s", i, c.ranges[i], layout)
		if !strings.HasSuffix(layout, "\n") {
			b.WriteByte('\n')
		}
	}
	return b.String()
}
