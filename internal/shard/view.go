package shard

import (
	"selforg/internal/core"
	"selforg/internal/domain"
)

// View is a read-only MVCC view of a sharded column: one pinned
// core.View per shard, pinned in shard order. Consistency is per shard —
// each shard's (base snapshot, delta watermark) pair is exact and stays
// exact forever (per-shard pins are stable across splits, drops, bulk
// loads and merge-backs for both strategies), but a writer may land
// between two shard pins, so a multi-shard read is not a single
// column-wide snapshot (the price of independent shard clocks).
// Reads route exactly like Column queries and drive no adaptation.
type View struct {
	ranges []domain.Range
	views  []*core.View
}

// Pin returns a read-only view of the column, or nil when a shard's
// strategy does not support pinning.
func (c *Column) Pin() *View {
	v := &View{ranges: c.ranges, views: make([]*core.View, len(c.shards))}
	for i, s := range c.shards {
		switch t := s.(type) {
		case *core.Segmenter:
			v.views[i] = t.Pin()
		case *core.Replicator:
			v.views[i] = t.Pin()
		default:
			return nil
		}
	}
	return v
}

// Select returns the values matching q as of the per-shard pins,
// concatenated in shard order.
func (v *View) Select(q domain.Range) []domain.Value {
	var out []domain.Value
	lo, hi := spanOf(v.ranges, q)
	for i := lo; i < hi; i++ {
		out = append(out, v.views[i].Select(q)...)
	}
	return out
}

// Count returns the cardinality of q as of the per-shard pins.
func (v *View) Count(q domain.Range) int64 {
	var n int64
	lo, hi := spanOf(v.ranges, q)
	for i := lo; i < hi; i++ {
		n += v.views[i].Count(q)
	}
	return n
}

// Watermark returns the highest per-shard pinned version (each shard
// stamps on its own clock; a single column-wide version does not exist).
func (v *View) Watermark() int64 {
	var w int64
	for _, sv := range v.views {
		if sv.Watermark() > w {
			w = sv.Watermark()
		}
	}
	return w
}
