package shard

import (
	"selforg/internal/core"
	"selforg/internal/domain"
	"selforg/internal/result"
)

// View is a read-only MVCC view of a sharded column: one pinned view
// per shard, pinned in shard order under the router's cross-shard read
// lock. Each shard's (base snapshot, delta watermark) pair is exact and
// stays exact forever (per-shard pins are stable across splits, drops,
// bulk loads and merge-backs for both strategies). Single-shard writes
// may still land between two shard pins, but a cross-shard update —
// whose two halves mutate two shards under the lock's write half —
// is observed entirely or not at all, so a pinned scan never sees zero
// or two versions of an updated row.
// Reads route exactly like Column queries and drive no adaptation.
type View struct {
	ranges []domain.Range
	views  []core.PinnedView
}

// Pin returns a read-only view of the column. The pin sweep holds xmu's
// read half so no cross-shard update is mid-flight across the per-shard
// pins.
func (c *Column) Pin() *View {
	c.xmu.RLock()
	defer c.xmu.RUnlock()
	v := &View{ranges: c.ranges, views: make([]core.PinnedView, len(c.shards))}
	for i, s := range c.shards {
		v.views[i] = s.PinView()
	}
	return v
}

// PinView implements core.DeltaStrategy.
func (c *Column) PinView() core.PinnedView { return c.Pin() }

// Select returns the values matching q as of the per-shard pins,
// concatenated in shard order.
func (v *View) Select(q domain.Range) []domain.Value {
	return v.SelectRope(q).Flatten()
}

// SelectRope implements core.RopeView: the per-shard view results
// spliced chunk-wise in shard order, so a multi-shard view scan copies
// each value at most once (in the final Flatten) instead of re-copying
// earlier shards' values as the flat result grew.
func (v *View) SelectRope(q domain.Range) *result.Rope {
	rope := result.New()
	lo, hi := spanOf(v.ranges, q)
	for i := lo; i < hi; i++ {
		if rv, ok := v.views[i].(core.RopeView); ok {
			rope.Splice(rv.SelectRope(q))
			continue
		}
		rope.AppendOwned(v.views[i].Select(q))
	}
	return rope
}

// Count returns the cardinality of q as of the per-shard pins.
func (v *View) Count(q domain.Range) int64 {
	var n int64
	lo, hi := spanOf(v.ranges, q)
	for i := lo; i < hi; i++ {
		n += v.views[i].Count(q)
	}
	return n
}

// Watermark returns the highest per-shard pinned version. With the
// shared commit clock the per-shard marks are cuts of one column-wide
// clock, so the maximum is the column's pinned version.
func (v *View) Watermark() int64 {
	var w int64
	for _, sv := range v.views {
		if sv.Watermark() > w {
			w = sv.Watermark()
		}
	}
	return w
}
