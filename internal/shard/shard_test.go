package shard

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"

	"selforg/internal/compress"
	"selforg/internal/core"
	"selforg/internal/domain"
	"selforg/internal/model"
	"selforg/internal/workload"
)

// testDom is a small domain so boundary geometry is easy to reason about.
var testDom = domain.NewRange(0, 99_999)

// genValues draws n uniform values over dom (the sim generator, inlined:
// the sim package imports this one, so tests here cannot import it back).
func genValues(n int, dom domain.Range, seed int64) []domain.Value {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]domain.Value, n)
	for i := range vals {
		vals[i] = dom.Lo + rng.Int63n(dom.Width())
	}
	return vals
}

func testValues(n int, seed int64) []domain.Value {
	return genValues(n, testDom, seed)
}

// segBuilder returns a Builder producing APM Segmenters (fresh model per
// shard) under the given compression mode.
func segBuilder(mode compress.Mode) Builder {
	return func(idx int, rng domain.Range, vals []domain.Value) core.DeltaStrategy {
		s := core.NewSegmenter(rng, vals, 4, model.NewAPM(600, 2400), nil)
		s.SetCompression(mode)
		return s
	}
}

// replBuilder returns a Builder producing APM Replicators.
func replBuilder(mode compress.Mode) Builder {
	return func(idx int, rng domain.Range, vals []domain.Value) core.DeltaStrategy {
		r := core.NewReplicator(rng, vals, 4, model.NewAPM(600, 2400), nil)
		r.SetCompression(mode)
		return r
	}
}

func sorted(vals []domain.Value) []domain.Value {
	out := append([]domain.Value(nil), vals...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestShardPartition(t *testing.T) {
	for _, k := range []int{1, 2, 3, 4, 7, 16} {
		ranges := Partition(testDom, k)
		if len(ranges) != k {
			t.Fatalf("k=%d: got %d ranges", k, len(ranges))
		}
		if ranges[0].Lo != testDom.Lo || ranges[len(ranges)-1].Hi != testDom.Hi {
			t.Fatalf("k=%d: ranges %v do not tile %v", k, ranges, testDom)
		}
		var width int64
		for i, r := range ranges {
			width += r.Width()
			if i > 0 && !ranges[i-1].Adjacent(r) {
				t.Fatalf("k=%d: ranges %v and %v not adjacent", k, ranges[i-1], r)
			}
		}
		if width != testDom.Width() {
			t.Fatalf("k=%d: widths sum to %d, want %d", k, width, testDom.Width())
		}
	}
	// k above the domain width is clamped: every shard keeps at least one
	// value of domain.
	tiny := domain.NewRange(0, 2)
	if got := len(Partition(tiny, 10)); got != 3 {
		t.Fatalf("clamp: got %d ranges, want 3", got)
	}
	if got := len(Partition(testDom, 0)); got != 1 {
		t.Fatalf("k=0: got %d ranges, want 1", got)
	}
}

func TestShardSplitValuesPreservesOrder(t *testing.T) {
	ranges := Partition(testDom, 4)
	vals := testValues(10_000, 3)
	parts := SplitValues(ranges, vals)
	total := 0
	for i, part := range parts {
		total += len(part)
		for _, v := range part {
			if !ranges[i].Contains(v) {
				t.Fatalf("shard %d: value %d outside %v", i, v, ranges[i])
			}
		}
	}
	if total != len(vals) {
		t.Fatalf("scatter lost values: %d != %d", total, len(vals))
	}
	// Order preservation: re-interleaving the parts by walking the
	// original slice must consume each part front to back.
	idx := make([]int, len(parts))
	for _, v := range vals {
		i := rangeOf(ranges, v)
		if parts[i][idx[i]] != v {
			t.Fatalf("shard %d: order not preserved", i)
		}
		idx[i]++
	}
}

// TestShardSingleShardByteIdentical is the single-shard fallback
// guarantee: a 1-shard Column is byte-identical — results, stats, layout
// — to using the strategy directly.
func TestShardSingleShardByteIdentical(t *testing.T) {
	type mk struct {
		name  string
		bare  func(vals []domain.Value) core.DeltaStrategy
		build Builder
	}
	cases := []mk{}
	for _, mode := range []compress.Mode{compress.Off, compress.Auto} {
		mode := mode
		cases = append(cases,
			mk{
				name: fmt.Sprintf("segm/compress=%v", mode),
				bare: func(vals []domain.Value) core.DeltaStrategy {
					s := core.NewSegmenter(testDom, vals, 4, model.NewAPM(600, 2400), nil)
					s.SetCompression(mode)
					return s
				},
				build: segBuilder(mode),
			},
			mk{
				name: fmt.Sprintf("repl/compress=%v", mode),
				bare: func(vals []domain.Value) core.DeltaStrategy {
					r := core.NewReplicator(testDom, vals, 4, model.NewAPM(600, 2400), nil)
					r.SetCompression(mode)
					return r
				},
				build: replBuilder(mode),
			},
			mk{
				name: fmt.Sprintf("segm-gd/compress=%v", mode),
				bare: func(vals []domain.Value) core.DeltaStrategy {
					s := core.NewSegmenter(testDom, vals, 4, model.NewGaussianDice(7), nil)
					s.SetCompression(mode)
					return s
				},
				build: func(idx int, rng domain.Range, vals []domain.Value) core.DeltaStrategy {
					s := core.NewSegmenter(rng, vals, 4, model.NewGaussianDice(model.ShardSeed(7, idx)), nil)
					s.SetCompression(mode)
					return s
				},
			},
		)
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			vals := testValues(20_000, 1)
			bare := tc.bare(append([]domain.Value(nil), vals...))
			col, err := New(testDom, append([]domain.Value(nil), vals...), 1, tc.build)
			if err != nil {
				t.Fatal(err)
			}
			gen := workload.NewUniform(testDom, 10_000, 2)
			for q := 0; q < 150; q++ {
				qq := gen.Next().Range()
				wantV, wantSt := bare.Select(qq)
				gotV, gotSt := col.Select(qq)
				if !reflect.DeepEqual(wantV, gotV) {
					t.Fatalf("query %d %v: results diverge", q, qq)
				}
				if wantSt != gotSt {
					t.Fatalf("query %d %v: stats diverge\nbare: %+v\nshard: %+v", q, qq, wantSt, gotSt)
				}
				if q%10 == 0 {
					wantN, _ := bare.Count(qq)
					gotN, _ := col.Count(qq)
					if wantN != gotN {
						t.Fatalf("query %d: count %d != %d", q, gotN, wantN)
					}
				}
			}
			if bare.SegmentCount() != col.SegmentCount() {
				t.Fatalf("segment counts diverge: %d != %d", col.SegmentCount(), bare.SegmentCount())
			}
			if !reflect.DeepEqual(bare.SegmentSizes(), col.SegmentSizes()) {
				t.Fatal("segment sizes diverge")
			}
			if bare.StorageBytes() != col.StorageBytes() || bare.UncompressedBytes() != col.UncompressedBytes() {
				t.Fatal("storage accounting diverges")
			}
			if bare.Name() != col.Name() {
				t.Fatalf("names diverge: %q != %q", col.Name(), bare.Name())
			}
			if err := col.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestShardedMatchesUnshardedResults: a K-sharded column returns the same
// result multiset and counts as the unsharded strategy for every query,
// across strategy × model × compression.
func TestShardedMatchesUnshardedResults(t *testing.T) {
	mods := map[string]func(idx int64) model.Model{
		"apm": func(int64) model.Model { return model.NewAPM(600, 2400) },
		"gd":  func(idx int64) model.Model { return model.NewGaussianDice(model.ShardSeed(7, int(idx))) },
	}
	for _, k := range []int{2, 4, 7} {
		for mname, mk := range mods {
			for _, repl := range []bool{false, true} {
				for _, mode := range []compress.Mode{compress.Off, compress.Auto} {
					name := fmt.Sprintf("k=%d/%s/repl=%v/comp=%v", k, mname, repl, mode)
					t.Run(name, func(t *testing.T) {
						vals := testValues(20_000, 1)
						build := func(idx int, rng domain.Range, svals []domain.Value) core.DeltaStrategy {
							if repl {
								r := core.NewReplicator(rng, svals, 4, mk(int64(idx)), nil)
								r.SetCompression(mode)
								return r
							}
							s := core.NewSegmenter(rng, svals, 4, mk(int64(idx)), nil)
							s.SetCompression(mode)
							return s
						}
						bare := build(0, testDom, append([]domain.Value(nil), vals...))
						col, err := New(testDom, append([]domain.Value(nil), vals...), k, build)
						if err != nil {
							t.Fatal(err)
						}
						if col.Shards() != k {
							t.Fatalf("got %d shards, want %d", col.Shards(), k)
						}
						gen := workload.NewUniform(testDom, 10_000, 2)
						for q := 0; q < 100; q++ {
							qq := gen.Next().Range()
							wantV, _ := bare.Select(qq)
							gotV, gotSt := col.Select(qq)
							if !reflect.DeepEqual(sorted(wantV), sorted(gotV)) {
								t.Fatalf("query %d %v: result multisets diverge (%d vs %d rows)",
									q, qq, len(gotV), len(wantV))
							}
							if gotSt.ResultCount != int64(len(gotV)) {
								t.Fatalf("query %d: ResultCount %d != %d", q, gotSt.ResultCount, len(gotV))
							}
							gotN, _ := col.Count(qq)
							if gotN != int64(len(wantV)) {
								t.Fatalf("query %d: count %d != %d", q, gotN, len(wantV))
							}
						}
						if err := col.Validate(); err != nil {
							t.Fatal(err)
						}
					})
				}
			}
		}
	}
}

// TestShardRoutingEdges exercises the router's boundary geometry on a
// 4-shard column.
func TestShardRoutingEdges(t *testing.T) {
	vals := testValues(20_000, 1)
	col, err := New(testDom, vals, 4, segBuilder(compress.Off))
	if err != nil {
		t.Fatal(err)
	}
	naive := func(q domain.Range) []domain.Value {
		var out []domain.Value
		for _, v := range testValues(20_000, 1) {
			if q.Contains(v) {
				out = append(out, v)
			}
		}
		return out
	}
	b0 := col.ShardRange(0)
	b1 := col.ShardRange(1)
	queries := []domain.Range{
		testDom,                                   // spans all shards
		{Lo: b0.Hi, Hi: b1.Lo},                    // exactly straddles one boundary
		{Lo: b0.Hi + 1, Hi: b1.Hi},                // aligned to shard 1 exactly
		{Lo: b0.Lo, Hi: b0.Hi},                    // exactly shard 0
		{Lo: b1.Lo + 10, Hi: b1.Lo + 10},          // point query inside a shard
		{Lo: b0.Hi, Hi: b0.Hi},                    // point query on a boundary
		{Lo: testDom.Hi - 5, Hi: testDom.Hi + 50}, // clipped at the extent top
		{Lo: testDom.Hi + 1, Hi: testDom.Hi + 10}, // fully outside
		{Lo: 10, Hi: 5},                           // empty range
	}
	for _, q := range queries {
		got, st := col.Select(q)
		want := naive(q)
		if !reflect.DeepEqual(sorted(got), sorted(want)) {
			t.Fatalf("query %v: %d rows, want %d", q, len(got), len(want))
		}
		if st.ResultCount != int64(len(want)) {
			t.Fatalf("query %v: ResultCount %d, want %d", q, st.ResultCount, len(want))
		}
		n, _ := col.Count(q)
		if n != int64(len(want)) {
			t.Fatalf("query %v: count %d, want %d", q, n, len(want))
		}
	}
	if err := col.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestShardEmptyShard: shards whose sub-range holds no values stay
// queryable and writable.
func TestShardEmptyShard(t *testing.T) {
	// All values in the lowest quarter: shards 1..3 are empty.
	lowDom := domain.NewRange(testDom.Lo, testDom.Hi/4)
	vals := genValues(5_000, lowDom, 1)
	col, err := New(testDom, vals, 4, segBuilder(compress.Off))
	if err != nil {
		t.Fatal(err)
	}
	hi := col.ShardRange(3)
	if got, _ := col.Select(hi); len(got) != 0 {
		t.Fatalf("empty shard returned %d rows", len(got))
	}
	if n, _ := col.Count(testDom); n != 5_000 {
		t.Fatalf("count %d, want 5000", n)
	}
	// Writes into an empty shard land and read back.
	if _, err := col.Insert(hi.Lo + 1); err != nil {
		t.Fatal(err)
	}
	if got, _ := col.Select(hi); len(got) != 1 || got[0] != hi.Lo+1 {
		t.Fatalf("insert into empty shard not visible: %v", got)
	}
	if _, err := col.MergeDeltas(); err != nil {
		t.Fatal(err)
	}
	if got, _ := col.Select(hi); len(got) != 1 || got[0] != hi.Lo+1 {
		t.Fatalf("merged insert lost: %v", got)
	}
	if err := col.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestShardCrossShardUpdate: an update whose old and new values live in
// different shards decomposes into delete+insert and stays exact.
func TestShardCrossShardUpdate(t *testing.T) {
	vals := testValues(10_000, 1)
	col, err := New(testDom, vals, 4, segBuilder(compress.Off))
	if err != nil {
		t.Fatal(err)
	}
	old := vals[0]          // lives in some shard
	new := testDom.Hi - old // mirror value: distinct shard for most olds
	if rangeOf(col.ranges, old) == rangeOf(col.ranges, new) {
		new = col.ShardRange((rangeOf(col.ranges, old)+2)%4).Lo + 5
	}
	preOld, _ := col.Count(domain.Range{Lo: old, Hi: old})
	preNew, _ := col.Count(domain.Range{Lo: new, Hi: new})
	ok, _, _ := col.Update(old, new)
	if !ok {
		t.Fatal("update refused")
	}
	if n, _ := col.Count(domain.Range{Lo: old, Hi: old}); n != preOld-1 {
		t.Fatalf("old count %d, want %d", n, preOld-1)
	}
	if n, _ := col.Count(domain.Range{Lo: new, Hi: new}); n != preNew+1 {
		t.Fatalf("new count %d, want %d", n, preNew+1)
	}
	ds := col.DeltaStats()
	if ds.Deletes != 1 || ds.Inserts != 1 || ds.Updates != 0 {
		t.Fatalf("cross-shard update accounting: %+v", ds)
	}
	// Same-shard update stays a real single-version update.
	sameOld := new
	sameNew := sameOld + 1
	if rangeOf(col.ranges, sameOld) != rangeOf(col.ranges, sameNew) {
		sameNew = sameOld - 1
	}
	if ok, _, _ := col.Update(sameOld, sameNew); !ok {
		t.Fatal("same-shard update refused")
	}
	if ds := col.DeltaStats(); ds.Updates != 1 {
		t.Fatalf("same-shard update accounting: %+v", ds)
	}
	// Misses: values outside the extent are refused and recorded.
	if ok, _, _ := col.Delete(testDom.Hi + 100); ok {
		t.Fatal("out-of-extent delete accepted")
	}
	if ok, _, _ := col.Update(testDom.Hi+100, 5); ok {
		t.Fatal("out-of-extent update accepted")
	}
	if ds := col.DeltaStats(); ds.DeleteMisses != 2 {
		t.Fatalf("miss accounting: %+v", ds)
	}
}

// TestShardMergeBackIsolation: a merge-back draining one shard leaves a
// view pinned over another shard (and over the merged shard, for
// segmentation) untouched, while new queries see the writes.
func TestShardMergeBackIsolation(t *testing.T) {
	vals := testValues(10_000, 1)
	col, err := New(testDom, vals, 2, segBuilder(compress.Off))
	if err != nil {
		t.Fatal(err)
	}
	col.SetDeltaPolicy(0, 0) // manual merging
	r0, r1 := col.ShardRange(0), col.ShardRange(1)
	v := col.Pin()
	if v == nil {
		t.Fatal("no view")
	}
	before0 := v.Count(r0)
	before1 := v.Count(r1)
	// Write a burst into shard 1 only, then drain it.
	for i := int64(0); i < 50; i++ {
		if _, err := col.Insert(r1.Lo + i); err != nil {
			t.Fatal(err)
		}
	}
	if ds := col.Shard(0).DeltaStats(); ds.Pending != 0 {
		t.Fatalf("shard 0 store dirtied: %+v", ds)
	}
	if _, err := col.MergeDeltas(); err != nil {
		t.Fatal(err)
	}
	if ds := col.Shard(1).DeltaStats(); ds.Pending != 0 || ds.Merges != 1 {
		t.Fatalf("shard 1 merge missing: %+v", ds)
	}
	if ds := col.Shard(0).DeltaStats(); ds.Merges != 0 {
		t.Fatalf("shard 0 merged with nothing pending: %+v", ds)
	}
	// The pinned view predates the writes: both shards unchanged.
	if got := v.Count(r0); got != before0 {
		t.Fatalf("view shard 0 moved: %d != %d", got, before0)
	}
	if got := v.Count(r1); got != before1 {
		t.Fatalf("view shard 1 moved: %d != %d", got, before1)
	}
	// New queries see the merged rows.
	if n, _ := col.Count(r1); n != before1+50 {
		t.Fatalf("post-merge count %d, want %d", n, before1+50)
	}
}

// TestShardMergeWhileScanning races a merge-churning writer in shard 1
// against scanners of shard 0 — the "merge-back firing in one shard
// while another is mid-scan" edge, run under -race in CI.
func TestShardMergeWhileScanning(t *testing.T) {
	vals := testValues(20_000, 1)
	col, err := New(testDom, vals, 2, segBuilder(compress.Auto))
	if err != nil {
		t.Fatal(err)
	}
	col.SetDeltaPolicy(64, 0) // merge every 16 pending entries (4 B elems)
	r0, r1 := col.ShardRange(0), col.ShardRange(1)
	want, _ := col.Count(r0)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			gen := workload.NewUniform(r0, 5_000, seed)
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := gen.Next().Range()
				col.Select(q)
				if n, _ := col.Count(r0); n != want {
					panic(fmt.Sprintf("shard 0 cardinality moved: %d != %d", n, want))
				}
			}
		}(int64(w + 1))
	}
	for i := int64(0); i < 400; i++ {
		if _, err := col.Insert(r1.Lo + i%r1.Width()); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if ds := col.Shard(1).DeltaStats(); ds.Merges == 0 {
		t.Fatal("no merge-back churn in shard 1")
	}
	if err := col.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestShardBulkLoad scatters a batch across shards.
func TestShardBulkLoad(t *testing.T) {
	vals := testValues(10_000, 1)
	col, err := New(testDom, vals, 4, replBuilder(compress.Off))
	if err != nil {
		t.Fatal(err)
	}
	batch := testValues(1_000, 9)
	if _, err := col.BulkLoad(batch); err != nil {
		t.Fatal(err)
	}
	if n, _ := col.Count(testDom); n != 11_000 {
		t.Fatalf("count %d after bulk load, want 11000", n)
	}
	if _, err := col.BulkLoad([]domain.Value{testDom.Hi + 1}); err == nil {
		t.Fatal("out-of-extent bulk load accepted")
	}
	if err := col.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestShardDeltaStatsAggregation: counters sum, watermark is the shared
// column-wide commit clock's last stamped version (every shard stamps
// from one clock, so 5 + 3 inserts advance it to 8).
func TestShardDeltaStatsAggregation(t *testing.T) {
	vals := testValues(5_000, 1)
	col, err := New(testDom, vals, 4, segBuilder(compress.Off))
	if err != nil {
		t.Fatal(err)
	}
	col.SetDeltaPolicy(0, 0)
	r0, r3 := col.ShardRange(0), col.ShardRange(3)
	for i := int64(0); i < 5; i++ {
		col.Insert(r0.Lo + i)
	}
	for i := int64(0); i < 3; i++ {
		col.Insert(r3.Lo + i)
	}
	ds := col.DeltaStats()
	if ds.Inserts != 8 || ds.Pending != 8 {
		t.Fatalf("aggregate: %+v", ds)
	}
	if ds.Watermark != 8 { // the shared clock saw all 8 writes
		t.Fatalf("watermark %d, want 8", ds.Watermark)
	}
	if ds.PendingBytes != 8*4 {
		t.Fatalf("pending bytes %d", ds.PendingBytes)
	}
}
