package sql

import (
	"errors"
	"strconv"
	"strings"
	"testing"
)

// TestParseCorpus is the table-driven lexer/parser corpus (the DataDog
// go-sql-lexer idiom): every supported surface form, every malformed
// shape found while hardening, with exact error positions. ok cases
// verify the parsed structure via a rendered summary; error cases
// verify the message fragment and the *SyntaxError offset.
func TestParseCorpus(t *testing.T) {
	type want struct {
		// summary is "proj|aggr|schema.table|predcol|lo|hi" rendered by
		// summarize for accepted statements.
		summary string
		// errFrag and errOff describe the expected failure ("" = accept).
		errFrag string
		errOff  int
	}
	cases := []struct {
		name, src string
		want      want
	}{
		// --- happy paths ---
		{"basic", "SELECT objid FROM P WHERE ra BETWEEN 205.1 AND 205.12",
			want{summary: "objid||sys.P|ra|205.1|205.12"}},
		{"multi projection", "SELECT a, b, c FROM t WHERE v BETWEEN 1 AND 2",
			want{summary: "a,b,c||sys.t|v|1|2"}},
		{"count", "SELECT COUNT(*) FROM P WHERE ra BETWEEN 0 AND 360",
			want{summary: "|count|sys.P|ra|0|360"}},
		{"sum", "SELECT SUM(dec) FROM P WHERE ra BETWEEN 0 AND 10",
			want{summary: "|sum:dec|sys.P|ra|0|10"}},
		{"schema qualified", "SELECT x FROM other.T WHERE v BETWEEN 1 AND 2",
			want{summary: "x||other.T|v|1|2"}},
		{"trailing semicolon", "SELECT x FROM t WHERE v BETWEEN 1 AND 2;",
			want{summary: "x||sys.t|v|1|2"}},
		{"equal bounds", "SELECT x FROM t WHERE v BETWEEN 5 AND 5",
			want{summary: "x||sys.t|v|5|5"}},

		// --- case folding ---
		{"lowercase keywords", "select x from t where v between 1 and 2",
			want{summary: "x||sys.t|v|1|2"}},
		{"mixed case keywords", "SeLeCt x FrOm t WhErE v BeTwEeN 1 AnD 2",
			want{summary: "x||sys.t|v|1|2"}},
		{"mixed case count", "select CoUnT(*) from t where v between 1 and 2",
			want{summary: "|count|sys.t|v|1|2"}},
		{"mixed case sum", "select sUm(d) from t where v between 1 and 2",
			want{summary: "|sum:d|sys.t|v|1|2"}},
		{"identifier case preserved", "SELECT ObjId FROM Tbl WHERE Ra BETWEEN 1 AND 2",
			want{summary: "ObjId||sys.Tbl|Ra|1|2"}},

		// --- whitespace forms ---
		{"tabs and newlines", "SELECT\tx\nFROM\r\nt WHERE v\nBETWEEN 1 AND 2",
			want{summary: "x||sys.t|v|1|2"}},
		{"packed commas", "SELECT a,b FROM t WHERE v BETWEEN 1 AND 2",
			want{summary: "a,b||sys.t|v|1|2"}},
		{"leading whitespace", "   SELECT x FROM t WHERE v BETWEEN 1 AND 2",
			want{summary: "x||sys.t|v|1|2"}},

		// --- numeric edge forms ---
		{"negative bounds", "SELECT x FROM t WHERE v BETWEEN -10 AND -2",
			want{summary: "x||sys.t|v|-10|-2"}},
		{"exponent", "SELECT x FROM t WHERE v BETWEEN 1e3 AND 2e3",
			want{summary: "x||sys.t|v|1000|2000"}},
		{"upper exponent with sign", "SELECT x FROM t WHERE v BETWEEN 1E+2 AND 1E+3",
			want{summary: "x||sys.t|v|100|1000"}},
		{"negative exponent", "SELECT x FROM t WHERE v BETWEEN 1e-2 AND 1",
			want{summary: "x||sys.t|v|0.01|1"}},
		{"leading dot", "SELECT x FROM t WHERE v BETWEEN .5 AND 1.5",
			want{summary: "x||sys.t|v|0.5|1.5"}},
		{"trailing dot", "SELECT x FROM t WHERE v BETWEEN 5. AND 6.",
			want{summary: "x||sys.t|v|5|6"}},
		{"negative fraction", "SELECT x FROM t WHERE v BETWEEN -0.5 AND 0.5",
			want{summary: "x||sys.t|v|-0.5|0.5"}},

		// --- quoted identifiers ---
		{"quoted projection", `SELECT "objid" FROM t WHERE v BETWEEN 1 AND 2`,
			want{summary: "objid||sys.t|v|1|2"}},
		{"quoted keyword as column", `SELECT "select" FROM t WHERE v BETWEEN 1 AND 2`,
			want{summary: "select||sys.t|v|1|2"}},
		{"quoted table", `SELECT x FROM "from" WHERE v BETWEEN 1 AND 2`,
			want{summary: "x||sys.from|v|1|2"}},
		{"quoted with space", `SELECT "a b" FROM t WHERE v BETWEEN 1 AND 2`,
			want{summary: "a b||sys.t|v|1|2"}},
		{"quoted dotted table stays whole", `SELECT x FROM "a.b" WHERE v BETWEEN 1 AND 2`,
			want{summary: "x||sys.a.b|v|1|2"}},
		{"quoted predicate", `SELECT x FROM t WHERE "where" BETWEEN 1 AND 2`,
			want{summary: "x||sys.t|where|1|2"}},
		{"quoted sum column", `SELECT SUM("and") FROM t WHERE v BETWEEN 1 AND 2`,
			want{summary: "|sum:and|sys.t|v|1|2"}},

		// --- lex errors (position = offending byte) ---
		{"empty input", "", want{errFrag: "expected SELECT", errOff: 0}},
		{"only whitespace", "   ", want{errFrag: "expected SELECT", errOff: 3}},
		{"unexpected character", "SELECT x FROM t WHERE v BETWEEN 1 AND 2 !",
			want{errFrag: "unexpected character", errOff: 40}},
		{"unterminated string", "SELECT 'lit FROM t WHERE v BETWEEN 1 AND 2",
			want{errFrag: "unterminated string", errOff: 7}},
		{"unterminated quoted ident", `SELECT "objid FROM t WHERE v BETWEEN 1 AND 2`,
			want{errFrag: "unterminated quoted identifier", errOff: 7}},
		{"empty quoted ident", `SELECT "" FROM t WHERE v BETWEEN 1 AND 2`,
			want{errFrag: "empty quoted identifier", errOff: 7}},
		{"bare minus", "SELECT x FROM t WHERE v BETWEEN - AND 2",
			want{errFrag: "bad number", errOff: 32}},
		{"bare dot", "SELECT x FROM t WHERE v BETWEEN . AND 2",
			want{errFrag: "bad number", errOff: 32}},
		{"double dot number", "SELECT x FROM t WHERE v BETWEEN 1.2.3 AND 9",
			want{errFrag: "bad number", errOff: 32}},
		{"dangling exponent", "SELECT x FROM t WHERE v BETWEEN 1e AND 9",
			want{errFrag: "bad number", errOff: 32}},
		{"exponent sign only", "SELECT x FROM t WHERE v BETWEEN 1e+ AND 9",
			want{errFrag: "bad number", errOff: 32}},
		{"double minus", "SELECT x FROM t WHERE v BETWEEN --1 AND 9",
			want{errFrag: "bad number", errOff: 32}},
		{"overflowing exponent", "SELECT x FROM t WHERE v BETWEEN 1e999 AND 9",
			want{errFrag: "bad number", errOff: 32}},
		{"at sign", "SELECT @ FROM t WHERE v BETWEEN 1 AND 2",
			want{errFrag: "unexpected character", errOff: 7}},

		// --- parse errors (position = offending token) ---
		{"not a select", "INSERT INTO P VALUES (1)",
			want{errFrag: "expected SELECT", errOff: 0}},
		{"missing projection", "SELECT FROM t WHERE v BETWEEN 1 AND 2",
			want{errFrag: "unexpected keyword", errOff: 7}},
		{"missing from", "SELECT x t WHERE v BETWEEN 1 AND 2",
			want{errFrag: "expected FROM", errOff: 9}},
		{"missing where", "SELECT x FROM t",
			want{errFrag: "expected WHERE", errOff: 15}},
		{"truncated after where", "SELECT x FROM t WHERE",
			want{errFrag: "expected identifier", errOff: 21}},
		{"missing between", "SELECT x FROM t WHERE v",
			want{errFrag: "expected BETWEEN", errOff: 23}},
		{"truncated after between", "SELECT x FROM t WHERE v BETWEEN",
			want{errFrag: "expected number", errOff: 31}},
		{"missing and", "SELECT x FROM t WHERE v BETWEEN 1 2",
			want{errFrag: "expected AND", errOff: 34}},
		{"truncated after and", "SELECT x FROM t WHERE v BETWEEN 1 AND",
			want{errFrag: "expected number", errOff: 37}},
		{"string bound", "SELECT x FROM t WHERE v BETWEEN 1 AND 'x'",
			want{errFrag: "expected number", errOff: 38}},
		{"identifier bound", "SELECT x FROM t WHERE v BETWEEN 1 AND hi",
			want{errFrag: "expected number", errOff: 38}},
		{"inverted bounds", "SELECT x FROM t WHERE v BETWEEN 2 AND 1",
			want{errFrag: "bounds inverted", errOff: 32}},
		{"trailing garbage", "SELECT x FROM t WHERE v BETWEEN 1 AND 2 GARBAGE",
			want{errFrag: "trailing input", errOff: 40}},
		{"garbage after semicolon", "SELECT x FROM t WHERE v BETWEEN 1 AND 2; x",
			want{errFrag: "trailing input", errOff: 41}},
		{"count of column", "SELECT COUNT(objid) FROM t WHERE v BETWEEN 1 AND 2",
			want{errFrag: `expected "*"`, errOff: 13}},
		{"count unclosed", "SELECT COUNT(* FROM t WHERE v BETWEEN 1 AND 2",
			want{errFrag: `expected ")"`, errOff: 15}},
		{"sum of star", "SELECT SUM(*) FROM t WHERE v BETWEEN 1 AND 2",
			want{errFrag: "expected identifier", errOff: 11}},
		{"sum unclosed", "SELECT SUM(d FROM t WHERE v BETWEEN 1 AND 2",
			want{errFrag: `expected ")"`, errOff: 13}},
		{"keyword projection", "SELECT from FROM t WHERE v BETWEEN 1 AND 2",
			want{errFrag: "unexpected keyword", errOff: 7}},
		{"keyword table", "SELECT x FROM where WHERE v BETWEEN 1 AND 2",
			want{errFrag: "unexpected keyword", errOff: 14}},
		{"dangling comma", "SELECT a, FROM t WHERE v BETWEEN 1 AND 2",
			want{errFrag: "unexpected keyword", errOff: 10}},
		{"number projection", "SELECT 1 FROM t WHERE v BETWEEN 1 AND 2",
			want{errFrag: "expected identifier", errOff: 7}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			q, err := Parse(c.src)
			if c.want.errFrag == "" {
				if err != nil {
					t.Fatalf("Parse(%q) = %v", c.src, err)
				}
				if got := summarize(q); got != c.want.summary {
					t.Fatalf("Parse(%q):\n  got  %s\n  want %s", c.src, got, c.want.summary)
				}
				return
			}
			if err == nil {
				t.Fatalf("Parse(%q) accepted, want error %q", c.src, c.want.errFrag)
			}
			if !strings.Contains(err.Error(), c.want.errFrag) {
				t.Fatalf("Parse(%q) error %q, want fragment %q", c.src, err, c.want.errFrag)
			}
			var se *SyntaxError
			if !errors.As(err, &se) {
				t.Fatalf("Parse(%q) error %T is not *SyntaxError", c.src, err)
			}
			if se.Offset != c.want.errOff {
				t.Fatalf("Parse(%q) error offset %d, want %d (%v)", c.src, se.Offset, c.want.errOff, err)
			}
		})
	}
}

// summarize renders the parsed query compactly for corpus comparison.
func summarize(q *Query) string {
	var b strings.Builder
	b.WriteString(strings.Join(q.Projections, ","))
	b.WriteByte('|')
	b.WriteString(q.Aggregate)
	if q.AggrCol != "" {
		b.WriteString(":" + q.AggrCol)
	}
	b.WriteByte('|')
	b.WriteString(q.Schema + "." + q.Table)
	b.WriteByte('|')
	b.WriteString(q.PredCol)
	b.WriteByte('|')
	b.WriteString(strconv.FormatFloat(q.Lo, 'g', -1, 64))
	b.WriteByte('|')
	b.WriteString(strconv.FormatFloat(q.Hi, 'g', -1, 64))
	return b.String()
}
