package sql

// DML lowering: write statements compile to MAL plans that reuse the
// Figure-1 read machinery for their predicates. An UPDATE or DELETE
// first evaluates its equality predicate through the full delta-bat
// merge (base + inserts, update overlay, deletion masking) — so a write
// sees exactly what a SELECT at the same moment would see — and then
// hands the qualifying [oid, value] bat to the catalog's write surface
// (sql.updateRows / sql.deleteRows). INSERT plans are a straight-line
// sequence of sql.insertRow calls, one per row.
//
// Write plans are compiled per statement and never cached: their
// constants are embedded (INSERT) or bound (UPDATE: A0 = predicate
// value, A1 = set value; DELETE: A0 = predicate value), and the write
// builtins are registered impure with the tactical optimizer so neither
// CSE nor dead-code elimination can drop or merge them.

import (
	"fmt"

	"selforg/internal/mal"
)

// GenerateDML compiles a write statement into a MAL plan. UPDATE plans
// take (A0 = predicate value, A1 = set value); DELETE plans take
// (A0 = predicate value); INSERT plans take no arguments. Execute with
// Interp.Run and read Context.Affected for the row count.
func GenerateDML(s Stmt, cat mal.Catalog) (*mal.Program, error) {
	switch s := s.(type) {
	case *Insert:
		return generateInsert(s, cat)
	case *Update:
		return generateUpdate(s, cat)
	case *Delete:
		return generateDelete(s, cat)
	default:
		return nil, fmt.Errorf("sql: no MAL lowering for %T", s)
	}
}

// insertColumns resolves the column list an INSERT targets: the
// explicit list when given, otherwise the table's declared order (the
// catalog must implement ColumnsOf, as MemCatalog does).
func insertColumns(s *Insert, cat mal.Catalog) ([]string, error) {
	if len(s.Columns) > 0 {
		return s.Columns, nil
	}
	type columnsOf interface {
		ColumnsOf(schema, table string) []string
	}
	if co, ok := cat.(columnsOf); ok {
		if cols := co.ColumnsOf(s.Schema, s.Table); len(cols) > 0 {
			return cols, nil
		}
	}
	return nil, fmt.Errorf("sql: INSERT INTO %s.%s needs an explicit column list", s.Schema, s.Table)
}

func generateInsert(s *Insert, cat mal.Catalog) (*mal.Program, error) {
	cols, err := insertColumns(s, cat)
	if err != nil {
		return nil, err
	}
	g := &gen{schema: s.Schema, table: s.Table, cat: cat}
	for _, col := range cols {
		if _, err := g.columnKind(col); err != nil {
			return nil, err
		}
	}
	if len(s.Rows) == 0 {
		return nil, fmt.Errorf("sql: INSERT without rows")
	}
	g.emitf("function user.w0():void;")
	for _, row := range s.Rows {
		if len(row) != len(cols) {
			return nil, fmt.Errorf("sql: row has %d values, want %d", len(row), len(cols))
		}
		args := fmt.Sprintf("%q,%q", s.Schema, s.Table)
		for i, col := range cols {
			args += fmt.Sprintf(",%q,%g", col, row[i])
		}
		g.emitf("%s := sql.insertRow(%s);", g.v(), args)
	}
	g.emitf("end w0;")
	return g.parse()
}

func generateUpdate(s *Update, cat mal.Catalog) (*mal.Program, error) {
	g := &gen{schema: s.Schema, table: s.Table, selLo: "A0", selHi: "A0", cat: cat}
	if _, err := g.columnKind(s.SetCol); err != nil {
		return nil, err
	}
	if _, err := g.columnKind(s.PredCol); err != nil {
		return nil, err
	}
	g.emitf("function user.w0(A0:dbl,A1:dbl):void;")
	qualified := g.deltaChain(s.PredCol, true)
	live := g.maskDeletes(qualified)
	g.emitf("%s := sql.updateRows(%q,%q,%q,A1,%s);", g.v(), s.Schema, s.Table, s.SetCol, live)
	g.emitf("end w0;")
	return g.parse()
}

func generateDelete(s *Delete, cat mal.Catalog) (*mal.Program, error) {
	g := &gen{schema: s.Schema, table: s.Table, selLo: "A0", selHi: "A0", cat: cat}
	if _, err := g.columnKind(s.PredCol); err != nil {
		return nil, err
	}
	g.emitf("function user.w0(A0:dbl):void;")
	qualified := g.deltaChain(s.PredCol, true)
	live := g.maskDeletes(qualified)
	g.emitf("%s := sql.deleteRows(%q,%q,%s);", g.v(), s.Schema, s.Table, live)
	g.emitf("end w0;")
	return g.parse()
}

// parse finishes code generation, turning the emitted text into a
// parsed program.
func (g *gen) parse() (*mal.Program, error) {
	prog, err := mal.Parse(g.b.String())
	if err != nil {
		return nil, fmt.Errorf("sql: generated invalid MAL: %w\n%s", err, g.b.String())
	}
	return prog, nil
}
