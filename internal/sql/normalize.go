package sql

import (
	"strconv"
	"strings"
)

// Normalized is the canonical, constant-lifted form of a statement: the
// fingerprint with every literal replaced by a placeholder, plus the
// lifted constants in source order. Statements differing only in
// whitespace, keyword case, identifier quoting style or literal values
// share a fingerprint — the plan-cache key of the query service tier —
// and compile to MAL plans of identical shape (the generated plan is
// already a two-parameter function; the bounds bind at execution).
type Normalized struct {
	// Fingerprint is the canonical statement text: single-spaced,
	// keywords uppercased, literals replaced by '?', trailing semicolon
	// dropped.
	Fingerprint string
	// Binds lists the lifted numeric literals in source order. For the
	// supported statement class these are the BETWEEN bounds [lo, hi].
	Binds []float64
}

// Normalize lexes src and produces its canonical fingerprint and bind
// values. It is purely lexical — a statement can normalize cleanly and
// still fail Parse — so the query tier can key its cache lookup before
// paying for a parse. Errors are *SyntaxError values with offsets.
func Normalize(src string) (*Normalized, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	// Drop trailing semicolons: "q;" and "q" are the same statement (and
	// a fingerprint must never itself end in ';', or it would drift when
	// re-normalized after bind restoration).
	for n := len(toks); n > 0 && toks[n-1].kind == "punct" && toks[n-1].s == ";"; n-- {
		toks = toks[:n-1]
	}
	if len(toks) == 0 {
		return nil, errAt(0, "empty statement")
	}
	var (
		b     strings.Builder
		binds []float64
	)
	b.Grow(len(src))
	for i, t := range toks {
		if i > 0 {
			b.WriteByte(' ')
		}
		switch t.kind {
		case "num":
			b.WriteByte('?')
			binds = append(binds, t.f)
		case "str":
			// The supported grammar has no string position, so string
			// literals are not lifted — a '?' placeholder without a bind
			// value would make the fingerprint unrestorable. Statements
			// containing strings never parse, hence are never cached.
			b.WriteByte('\'')
			b.WriteString(t.s)
			b.WriteByte('\'')
		case "ident":
			b.WriteString(canonicalIdent(t))
		default: // punct
			b.WriteString(t.s)
		}
	}
	return &Normalized{Fingerprint: b.String(), Binds: binds}, nil
}

// RestoreBinds substitutes bind values back into a fingerprint's '?'
// placeholders in order, producing a parseable statement again — the
// inverse of Normalize up to canonical spelling. Placeholders beyond
// len(binds) are left as-is.
func RestoreBinds(fingerprint string, binds []float64) string {
	var b strings.Builder
	b.Grow(len(fingerprint) + 8*len(binds))
	next := 0
	for i := 0; i < len(fingerprint); i++ {
		if fingerprint[i] == '?' && next < len(binds) {
			b.WriteString(strconv.FormatFloat(binds[next], 'g', -1, 64))
			next++
			continue
		}
		b.WriteByte(fingerprint[i])
	}
	return b.String()
}

// canonicalIdent renders one identifier token canonically: keywords
// uppercase, plain identifiers verbatim, quoted identifiers unquoted
// when quoting was redundant (the content lexes as a plain non-keyword
// identifier) and quoted otherwise — so `"ra"` and `ra` fingerprint
// identically but `"from"` stays distinct from the keyword FROM, and
// `"a.b"` (one dotted name) stays distinct from a.b (schema-qualified).
func canonicalIdent(t tok) string {
	if t.quoted {
		if isPlainIdent(t.s) && !isKeyword(t.s) && !strings.ContainsRune(t.s, '.') {
			return t.s
		}
		return `"` + t.s + `"`
	}
	if isKeyword(t.s) {
		return strings.ToUpper(t.s)
	}
	return t.s
}
