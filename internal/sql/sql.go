// Package sql implements the first component of the paper's compilation
// stack (§2): "The compilation stack consists of three components: SQL-MAL
// code generator, a tactical optimizer, and the run time engine." It
// compiles the range-selection query class the paper studies —
//
//	SELECT objid FROM P WHERE ra BETWEEN 205.1 AND 205.12
//	SELECT COUNT(*) FROM P WHERE ra BETWEEN 205.1 AND 205.12
//	SELECT SUM(dec) FROM P WHERE ra BETWEEN 205.1 AND 205.12
//
// — into MAL plans of exactly the Figure-1 shape (delta-bat merge,
// deletion masking, oid renumbering, per-column rejoin, result export).
// The generated plan then flows through the tactical optimizer
// (internal/opt), where the segment pass applies the §3.1 rewriting if
// the predicate column is segmented.
//
// The write grammar (stmt.go) extends the front end to DML and DDL —
// CREATE TABLE, INSERT, UPDATE, DELETE — parsed by ParseStmt and
// lowered (dml.go) onto the same delta-bat machinery: write predicates
// evaluate through the Figure-1 merge, and the qualifying oids feed the
// catalog's write surface.
//
// Normalize (normalize.go) additionally produces the canonical
// constant-lifted fingerprint of a statement, the key of the query
// tier's plan cache (internal/plancache). Write statements normalize
// too (for observability) but are never cached.
package sql

import (
	"fmt"
	"strconv"
	"strings"
)

// SyntaxError is a lexing or parsing failure with the byte offset of the
// offending input. The query service uses Offset to point clients at
// the error position.
type SyntaxError struct {
	Offset int
	Msg    string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("sql: %s at offset %d", e.Msg, e.Offset)
}

// errAt builds a positioned syntax error.
func errAt(off int, format string, args ...any) error {
	return &SyntaxError{Offset: off, Msg: fmt.Sprintf(format, args...)}
}

// Query is the parsed form of the supported statement class.
type Query struct {
	// Projections lists selected column names; empty when an aggregate is
	// used instead.
	Projections []string
	// Aggregate is "count" or "sum" ("" for plain projections). Count
	// ignores AggrCol; Sum reads it.
	Aggregate string
	AggrCol   string
	Table     string
	// Predicate: PredCol BETWEEN Lo AND Hi.
	PredCol string
	Lo, Hi  float64
	// Schema defaults to "sys", MonetDB's default schema.
	Schema string
}

func (q *Query) String() string {
	var sel string
	switch q.Aggregate {
	case "count":
		sel = "COUNT(*)"
	case "sum":
		sel = fmt.Sprintf("SUM(%s)", quoteIdent(q.AggrCol))
	default:
		quoted := make([]string, len(q.Projections))
		for i, p := range q.Projections {
			quoted[i] = quoteIdent(p)
		}
		sel = strings.Join(quoted, ", ")
	}
	return fmt.Sprintf("SELECT %s FROM %s WHERE %s BETWEEN %g AND %g",
		sel, q.tableRef(), quoteIdent(q.PredCol), q.Lo, q.Hi)
}

// tableRef renders the FROM target so it re-parses to the same
// (Schema, Table) pair: a non-default schema joins back into the dotted
// form the parser splits, while a default-schema table containing dots
// must be quoted or the re-parse would split it.
func (q *Query) tableRef() string { return renderTableRef(q.Schema, q.Table) }

// quoteIdent renders an identifier, double-quoting it when it would not
// survive a round trip as a plain token (keyword spelling, exotic
// characters). Plain identifiers render as-is, so String stays readable.
func quoteIdent(s string) string {
	if isPlainIdent(s) && !isKeyword(s) {
		return s
	}
	return `"` + s + `"`
}

// isPlainIdent reports whether s lexes as a single bare identifier.
func isPlainIdent(s string) bool {
	if s == "" || !isIdentStart(s[0]) {
		return false
	}
	for i := 1; i < len(s); i++ {
		if !isIdentPart(s[i]) {
			return false
		}
	}
	return true
}

// Parse parses one SELECT of the supported class (use ParseStmt for the
// full statement surface including DML). Keywords are case-insensitive;
// identifiers keep their case. Double-quoted identifiers escape keyword
// interpretation ("select" is a column name). Errors are *SyntaxError
// values carrying the byte offset of the fault.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, eof: len(src)}
	return p.parseQuery()
}

// MustParse parses or panics (tests, embedded queries).
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

// --- lexer ---

type tok struct {
	kind   string // "ident", "num", "str", "punct", "" (eof)
	s      string
	f      float64
	off    int  // byte offset of the token's first character
	quoted bool // ident came double-quoted: never a keyword
}

func lex(src string) ([]tok, error) {
	var out []tok
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == ',' || c == '(' || c == ')' || c == '*' || c == ';' || c == '=':
			out = append(out, tok{kind: "punct", s: string(c), off: i})
			i++
		case c == '\'':
			j := i + 1
			for j < len(src) && src[j] != '\'' {
				j++
			}
			if j >= len(src) {
				return nil, errAt(i, "unterminated string literal")
			}
			out = append(out, tok{kind: "str", s: src[i+1 : j], off: i})
			i = j + 1
		case c == '"':
			j := i + 1
			for j < len(src) && src[j] != '"' {
				j++
			}
			if j >= len(src) {
				return nil, errAt(i, "unterminated quoted identifier")
			}
			if j == i+1 {
				return nil, errAt(i, "empty quoted identifier")
			}
			out = append(out, tok{kind: "ident", s: src[i+1 : j], off: i, quoted: true})
			i = j + 1
		case isDigit(c) || c == '-' || c == '.':
			j := i
			if src[j] == '-' {
				j++
			}
			for j < len(src) && (isDigit(src[j]) || src[j] == '.' || src[j] == 'e' ||
				src[j] == 'E' || ((src[j] == '+' || src[j] == '-') && (src[j-1] == 'e' || src[j-1] == 'E'))) {
				j++
			}
			// strconv is strict where Sscanf is lenient: "1.2.3" or "1e"
			// must be rejected, not silently truncated to a prefix.
			f, err := strconv.ParseFloat(src[i:j], 64)
			if err != nil {
				return nil, errAt(i, "bad number %q", src[i:j])
			}
			out = append(out, tok{kind: "num", s: src[i:j], f: f, off: i})
			i = j
		case isIdentStart(c):
			j := i
			for j < len(src) && isIdentPart(src[j]) {
				j++
			}
			out = append(out, tok{kind: "ident", s: src[i:j], off: i})
			i = j
		default:
			return nil, errAt(i, "unexpected character %q", string(c))
		}
	}
	return out, nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) || c == '.' }

// --- parser ---

type parser struct {
	toks []tok
	pos  int
	eof  int // source length: the offset reported at end of input
}

func (p *parser) peek() tok {
	if p.pos >= len(p.toks) {
		return tok{off: p.eof}
	}
	return p.toks[p.pos]
}

func (p *parser) next() tok {
	t := p.peek()
	p.pos++
	return t
}

// describe renders a token for error messages.
func describe(t tok) string {
	if t.kind == "" {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.s)
}

// keyword consumes an identifier equal (case-insensitively) to kw.
// Quoted identifiers never match: "from" is a column named from.
func (p *parser) keyword(kw string) error {
	t := p.next()
	if t.kind != "ident" || t.quoted || !strings.EqualFold(t.s, kw) {
		return errAt(t.off, "expected %s, found %s", strings.ToUpper(kw), describe(t))
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.next()
	if t.kind != "ident" {
		return "", errAt(t.off, "expected identifier, found %s", describe(t))
	}
	if !t.quoted && isKeyword(t.s) {
		return "", errAt(t.off, "unexpected keyword %q", t.s)
	}
	return t.s, nil
}

func (p *parser) punct(s string) error {
	t := p.next()
	if t.kind != "punct" || t.s != s {
		return errAt(t.off, "expected %q, found %s", s, describe(t))
	}
	return nil
}

func (p *parser) number() (float64, error) {
	t := p.next()
	if t.kind != "num" {
		return 0, errAt(t.off, "expected number, found %s", describe(t))
	}
	return t.f, nil
}

func isKeyword(s string) bool {
	switch strings.ToUpper(s) {
	case "SELECT", "FROM", "WHERE", "BETWEEN", "AND", "COUNT", "SUM",
		"INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE", "CREATE", "TABLE":
		return true
	}
	return false
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{Schema: "sys"}
	if err := p.keyword("select"); err != nil {
		return nil, err
	}
	// Projection list or aggregate.
	t := p.peek()
	switch {
	case t.kind == "ident" && !t.quoted && strings.EqualFold(t.s, "count"):
		p.next()
		if err := p.punct("("); err != nil {
			return nil, err
		}
		if err := p.punct("*"); err != nil {
			return nil, err
		}
		if err := p.punct(")"); err != nil {
			return nil, err
		}
		q.Aggregate = "count"
	case t.kind == "ident" && !t.quoted && strings.EqualFold(t.s, "sum"):
		p.next()
		if err := p.punct("("); err != nil {
			return nil, err
		}
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.punct(")"); err != nil {
			return nil, err
		}
		q.Aggregate = "sum"
		q.AggrCol = col
	default:
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			q.Projections = append(q.Projections, col)
			if p.peek().kind == "punct" && p.peek().s == "," {
				p.next()
				continue
			}
			break
		}
	}
	if err := p.keyword("from"); err != nil {
		return nil, err
	}
	// Optional schema qualification "schema.table" (plain identifiers
	// only: a quoted identifier keeps its dots).
	var err error
	if q.Schema, q.Table, err = p.tableName(); err != nil {
		return nil, err
	}
	if err := p.keyword("where"); err != nil {
		return nil, err
	}
	q.PredCol, err = p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.keyword("between"); err != nil {
		return nil, err
	}
	boundsOff := p.peek().off
	if q.Lo, err = p.number(); err != nil {
		return nil, err
	}
	if err := p.keyword("and"); err != nil {
		return nil, err
	}
	if q.Hi, err = p.number(); err != nil {
		return nil, err
	}
	if q.Hi < q.Lo {
		return nil, errAt(boundsOff, "BETWEEN bounds inverted (%g > %g)", q.Lo, q.Hi)
	}
	if err := p.finish(); err != nil {
		return nil, err
	}
	return q, nil
}
