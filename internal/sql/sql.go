// Package sql implements the first component of the paper's compilation
// stack (§2): "The compilation stack consists of three components: SQL-MAL
// code generator, a tactical optimizer, and the run time engine." It
// compiles the range-selection query class the paper studies —
//
//	SELECT objid FROM P WHERE ra BETWEEN 205.1 AND 205.12
//	SELECT COUNT(*) FROM P WHERE ra BETWEEN 205.1 AND 205.12
//	SELECT SUM(dec) FROM P WHERE ra BETWEEN 205.1 AND 205.12
//
// — into MAL plans of exactly the Figure-1 shape (delta-bat merge,
// deletion masking, oid renumbering, per-column rejoin, result export).
// The generated plan then flows through the tactical optimizer
// (internal/opt), where the segment pass applies the §3.1 rewriting if
// the predicate column is segmented.
package sql

import (
	"fmt"
	"strings"
)

// Query is the parsed form of the supported statement class.
type Query struct {
	// Projections lists selected column names; empty when an aggregate is
	// used instead.
	Projections []string
	// Aggregate is "count" or "sum" ("" for plain projections). Count
	// ignores AggrCol; Sum reads it.
	Aggregate string
	AggrCol   string
	Table     string
	// Predicate: PredCol BETWEEN Lo AND Hi.
	PredCol string
	Lo, Hi  float64
	// Schema defaults to "sys", MonetDB's default schema.
	Schema string
}

func (q *Query) String() string {
	var sel string
	switch q.Aggregate {
	case "count":
		sel = "COUNT(*)"
	case "sum":
		sel = fmt.Sprintf("SUM(%s)", q.AggrCol)
	default:
		sel = strings.Join(q.Projections, ", ")
	}
	return fmt.Sprintf("SELECT %s FROM %s WHERE %s BETWEEN %g AND %g",
		sel, q.Table, q.PredCol, q.Lo, q.Hi)
}

// Parse parses one statement of the supported class. Keywords are
// case-insensitive; identifiers keep their case.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.parseQuery()
}

// MustParse parses or panics (tests, embedded queries).
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

// --- lexer ---

type tok struct {
	kind string // "ident", "num", "str", "punct"
	s    string
	f    float64
}

func lex(src string) ([]tok, error) {
	var out []tok
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == ',' || c == '(' || c == ')' || c == '*' || c == ';':
			out = append(out, tok{kind: "punct", s: string(c)})
			i++
		case c == '\'':
			j := i + 1
			for j < len(src) && src[j] != '\'' {
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("sql: unterminated string literal")
			}
			out = append(out, tok{kind: "str", s: src[i+1 : j]})
			i = j + 1
		case isDigit(c) || c == '-' || c == '.':
			j := i
			if src[j] == '-' {
				j++
			}
			for j < len(src) && (isDigit(src[j]) || src[j] == '.' || src[j] == 'e' ||
				src[j] == 'E' || ((src[j] == '+' || src[j] == '-') && (src[j-1] == 'e' || src[j-1] == 'E'))) {
				j++
			}
			var f float64
			if _, err := fmt.Sscanf(src[i:j], "%g", &f); err != nil {
				return nil, fmt.Errorf("sql: bad number %q", src[i:j])
			}
			out = append(out, tok{kind: "num", s: src[i:j], f: f})
			i = j
		case isIdentStart(c):
			j := i
			for j < len(src) && isIdentPart(src[j]) {
				j++
			}
			out = append(out, tok{kind: "ident", s: src[i:j]})
			i = j
		default:
			return nil, fmt.Errorf("sql: unexpected character %q", c)
		}
	}
	return out, nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) || c == '.' }

// --- parser ---

type parser struct {
	toks []tok
	pos  int
}

func (p *parser) peek() tok {
	if p.pos >= len(p.toks) {
		return tok{}
	}
	return p.toks[p.pos]
}

func (p *parser) next() tok {
	t := p.peek()
	p.pos++
	return t
}

// keyword consumes an identifier equal (case-insensitively) to kw.
func (p *parser) keyword(kw string) error {
	t := p.next()
	if t.kind != "ident" || !strings.EqualFold(t.s, kw) {
		return fmt.Errorf("sql: expected %s, found %q", strings.ToUpper(kw), t.s)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.next()
	if t.kind != "ident" {
		return "", fmt.Errorf("sql: expected identifier, found %q", t.s)
	}
	if isKeyword(t.s) {
		return "", fmt.Errorf("sql: unexpected keyword %q", t.s)
	}
	return t.s, nil
}

func (p *parser) punct(s string) error {
	t := p.next()
	if t.kind != "punct" || t.s != s {
		return fmt.Errorf("sql: expected %q, found %q", s, t.s)
	}
	return nil
}

func (p *parser) number() (float64, error) {
	t := p.next()
	if t.kind != "num" {
		return 0, fmt.Errorf("sql: expected number, found %q", t.s)
	}
	return t.f, nil
}

func isKeyword(s string) bool {
	switch strings.ToUpper(s) {
	case "SELECT", "FROM", "WHERE", "BETWEEN", "AND", "COUNT", "SUM":
		return true
	}
	return false
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{Schema: "sys"}
	if err := p.keyword("select"); err != nil {
		return nil, err
	}
	// Projection list or aggregate.
	t := p.peek()
	switch {
	case t.kind == "ident" && strings.EqualFold(t.s, "count"):
		p.next()
		if err := p.punct("("); err != nil {
			return nil, err
		}
		if err := p.punct("*"); err != nil {
			return nil, err
		}
		if err := p.punct(")"); err != nil {
			return nil, err
		}
		q.Aggregate = "count"
	case t.kind == "ident" && strings.EqualFold(t.s, "sum"):
		p.next()
		if err := p.punct("("); err != nil {
			return nil, err
		}
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.punct(")"); err != nil {
			return nil, err
		}
		q.Aggregate = "sum"
		q.AggrCol = col
	default:
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			q.Projections = append(q.Projections, col)
			if p.peek().kind == "punct" && p.peek().s == "," {
				p.next()
				continue
			}
			break
		}
	}
	if err := p.keyword("from"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	// Optional schema qualification "schema.table".
	if i := strings.IndexByte(table, '.'); i >= 0 {
		q.Schema, q.Table = table[:i], table[i+1:]
	} else {
		q.Table = table
	}
	if err := p.keyword("where"); err != nil {
		return nil, err
	}
	q.PredCol, err = p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.keyword("between"); err != nil {
		return nil, err
	}
	if q.Lo, err = p.number(); err != nil {
		return nil, err
	}
	if err := p.keyword("and"); err != nil {
		return nil, err
	}
	if q.Hi, err = p.number(); err != nil {
		return nil, err
	}
	if q.Hi < q.Lo {
		return nil, fmt.Errorf("sql: BETWEEN bounds inverted (%g > %g)", q.Lo, q.Hi)
	}
	// Optional trailing semicolon, then end of input.
	if p.peek().kind == "punct" && p.peek().s == ";" {
		p.next()
	}
	if p.pos != len(p.toks) {
		return nil, fmt.Errorf("sql: trailing input at %q", p.peek().s)
	}
	return q, nil
}
