package sql

import (
	"strings"
	"testing"
)

func TestNormalizeFingerprint(t *testing.T) {
	cases := []struct {
		src, fp string
		binds   []float64
	}{
		{"SELECT objid FROM P WHERE ra BETWEEN 205.1 AND 205.12",
			"SELECT objid FROM P WHERE ra BETWEEN ? AND ?", []float64{205.1, 205.12}},
		{"select   objid\nfrom P where ra between 1 and 2;",
			"SELECT objid FROM P WHERE ra BETWEEN ? AND ?", []float64{1, 2}},
		{`SELECT "objid" FROM P WHERE ra BETWEEN -1e3 AND .5`,
			"SELECT objid FROM P WHERE ra BETWEEN ? AND ?", []float64{-1000, 0.5}},
		{"SELECT COUNT(*) FROM sys.P WHERE ra BETWEEN 0 AND 360",
			"SELECT COUNT ( * ) FROM sys.P WHERE ra BETWEEN ? AND ?", []float64{0, 360}},
		{"select sum(dec) from P where ra between 2 and 3",
			"SELECT SUM ( dec ) FROM P WHERE ra BETWEEN ? AND ?", []float64{2, 3}},
		{`SELECT "select" FROM t WHERE v BETWEEN 1 AND 2`,
			`SELECT "select" FROM t WHERE v BETWEEN ? AND ?`, []float64{1, 2}},
		{`SELECT x FROM "a.b" WHERE v BETWEEN 1 AND 2`,
			`SELECT x FROM "a.b" WHERE v BETWEEN ? AND ?`, []float64{1, 2}},
	}
	for _, c := range cases {
		n, err := Normalize(c.src)
		if err != nil {
			t.Fatalf("Normalize(%q) = %v", c.src, err)
		}
		if n.Fingerprint != c.fp {
			t.Errorf("Normalize(%q).Fingerprint = %q, want %q", c.src, n.Fingerprint, c.fp)
		}
		if len(n.Binds) != len(c.binds) {
			t.Fatalf("Normalize(%q).Binds = %v, want %v", c.src, n.Binds, c.binds)
		}
		for i := range c.binds {
			if n.Binds[i] != c.binds[i] {
				t.Errorf("Normalize(%q).Binds[%d] = %g, want %g", c.src, i, n.Binds[i], c.binds[i])
			}
		}
	}
}

// TestNormalizeCollapsesQueryShapes: the normalize-then-cache invariant.
// Same shape, different constants / case / spacing → one fingerprint.
func TestNormalizeCollapsesQueryShapes(t *testing.T) {
	variants := []string{
		"SELECT objid FROM P WHERE ra BETWEEN 205.1 AND 205.12",
		"select objid from P where ra between 1 and 2",
		"SELECT\tobjid  FROM P\nWHERE ra BETWEEN -5 AND 1e6;",
		`SELECT "objid" FROM P WHERE "ra" BETWEEN .1 AND .2`,
	}
	first, err := Normalize(variants[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range variants[1:] {
		n, err := Normalize(v)
		if err != nil {
			t.Fatalf("Normalize(%q) = %v", v, err)
		}
		if n.Fingerprint != first.Fingerprint {
			t.Errorf("fingerprint of %q = %q, want %q", v, n.Fingerprint, first.Fingerprint)
		}
	}
}

// TestNormalizeDistinguishes: statements that parse differently must not
// share a fingerprint.
func TestNormalizeDistinguishes(t *testing.T) {
	distinct := []string{
		"SELECT a FROM t WHERE v BETWEEN 1 AND 2",
		"SELECT b FROM t WHERE v BETWEEN 1 AND 2",
		"SELECT a, b FROM t WHERE v BETWEEN 1 AND 2",
		"SELECT COUNT(*) FROM t WHERE v BETWEEN 1 AND 2",
		"SELECT SUM(a) FROM t WHERE v BETWEEN 1 AND 2",
		"SELECT a FROM u WHERE v BETWEEN 1 AND 2",
		"SELECT a FROM s.t WHERE v BETWEEN 1 AND 2",
		`SELECT a FROM "s.t" WHERE v BETWEEN 1 AND 2`,
		"SELECT a FROM t WHERE w BETWEEN 1 AND 2",
		`SELECT "FROM" FROM t WHERE v BETWEEN 1 AND 2`,
		"SELECT A FROM t WHERE v BETWEEN 1 AND 2", // identifiers are case-sensitive
	}
	seen := map[string]string{}
	for _, src := range distinct {
		n, err := Normalize(src)
		if err != nil {
			t.Fatalf("Normalize(%q) = %v", src, err)
		}
		if prev, dup := seen[n.Fingerprint]; dup {
			t.Errorf("fingerprint collision: %q and %q both normalize to %q", prev, src, n.Fingerprint)
		}
		seen[n.Fingerprint] = src
	}
}

func TestNormalizeErrors(t *testing.T) {
	for _, src := range []string{"", "  ", ";", "SELECT 'oops", `SELECT "x`, "SELECT 1.2.3"} {
		if _, err := Normalize(src); err == nil {
			t.Errorf("Normalize(%q) accepted", src)
		}
	}
	// Lexical normalization accepts statements the parser rejects — the
	// cache key exists before the parse runs.
	n, err := Normalize("SELECT FROM WHERE")
	if err != nil {
		t.Fatalf("lex-only normalize failed: %v", err)
	}
	if n.Fingerprint != "SELECT FROM WHERE" {
		t.Errorf("fingerprint = %q", n.Fingerprint)
	}
}

// TestNormalizeBindRestoration: substituting the binds back into the
// fingerprint yields a statement with the same fingerprint and an
// identical parse (when the original parsed).
func TestNormalizeBindRestoration(t *testing.T) {
	srcs := []string{
		"SELECT objid FROM P WHERE ra BETWEEN 205.1 AND 205.12",
		"select count(*) from sys.P where ra between -3e2 and 1e6;",
		`SELECT SUM("dec") FROM "from" WHERE ra BETWEEN .25 AND 9.75`,
	}
	for _, src := range srcs {
		n, err := Normalize(src)
		if err != nil {
			t.Fatal(err)
		}
		restored := RestoreBinds(n.Fingerprint, n.Binds)
		n2, err := Normalize(restored)
		if err != nil {
			t.Fatalf("restored %q does not normalize: %v", restored, err)
		}
		if n2.Fingerprint != n.Fingerprint {
			t.Errorf("fingerprint drift: %q -> %q", n.Fingerprint, n2.Fingerprint)
		}
		q1, err1 := Parse(src)
		q2, err2 := Parse(restored)
		if err1 != nil || err2 != nil {
			t.Fatalf("parse: %v / %v", err1, err2)
		}
		if q1.String() != q2.String() {
			t.Errorf("parse drift:\n  %s\n  %s", q1, q2)
		}
	}
}

func TestRestoreBindsExhaustsPlaceholders(t *testing.T) {
	out := RestoreBinds("A ? B ? C", []float64{1.5})
	if !strings.Contains(out, "1.5") || strings.Count(out, "?") != 1 {
		t.Errorf("RestoreBinds = %q", out)
	}
}
