package sql

import (
	"fmt"
	"strings"

	"selforg/internal/bat"
	"selforg/internal/mal"
)

// Generate compiles the query into a MAL plan of the Figure-1 shape. The
// catalog validates the referenced columns and supplies their SQL type
// names for the result-set metadata. The produced plan is a
// two-parameter function (A0, A1 — the predicate bounds), exactly like
// the cached plan of Figure 1; execute it with Interp.Run(prog, lo, hi).
func Generate(q *Query, cat mal.Catalog) (*mal.Program, error) {
	g := &gen{q: q, schema: q.Schema, table: q.Table, selLo: "A0", selHi: "A1", cat: cat}
	return g.generate()
}

// Compile is the whole §2 stack front half: parse + generate.
func Compile(src string, cat mal.Catalog) (*Query, *mal.Program, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, nil, err
	}
	prog, err := Generate(q, cat)
	if err != nil {
		return nil, nil, err
	}
	return q, prog, nil
}

type gen struct {
	q             *Query // nil for write plans (dml.go)
	schema, table string
	// selLo/selHi are the plan arguments bounding predicate selections
	// ("A0"/"A1"; write plans with equality predicates use "A0"/"A0").
	selLo, selHi string
	cat          mal.Catalog
	b            strings.Builder
	next         int
}

// v allocates a fresh plan variable.
func (g *gen) v() string {
	g.next++
	return fmt.Sprintf("X%d", g.next)
}

func (g *gen) emitf(format string, args ...any) {
	fmt.Fprintf(&g.b, format+"\n", args...)
}

// columnKind validates the column and returns its tail kind.
func (g *gen) columnKind(col string) (bat.Kind, error) {
	b, err := g.cat.Bind(g.schema, g.table, col, 0)
	if err != nil {
		return 0, err
	}
	return b.TailKind(), nil
}

// sqlTypeName maps an atom kind to the SQL type label used by rsColumn.
func sqlTypeName(k bat.Kind) string {
	switch k {
	case bat.KLng:
		return "bigint"
	case bat.KDbl:
		return "double"
	case bat.KStr:
		return "varchar"
	case bat.KOid:
		return "oid"
	default:
		return k.String()
	}
}

// deltaChain emits the §2 delta merge for a column — base + inserts,
// minus updated heads, plus updates — and returns the variable holding
// the merged [oid, value] bat. For the predicate column, sel restricts
// every leg to the selection bounds first (the Figure-1 pattern).
func (g *gen) deltaChain(col string, sel bool) string {
	base, ins, upd := g.v(), g.v(), g.v()
	g.emitf("%s := sql.bind(%q,%q,%q,0);", base, g.schema, g.table, col)
	g.emitf("%s := sql.bind(%q,%q,%q,1);", ins, g.schema, g.table, col)
	g.emitf("%s := sql.bind(%q,%q,%q,2);", upd, g.schema, g.table, col)
	if sel {
		sb, si := g.v(), g.v()
		g.emitf("%s := algebra.uselect(%s,%s,%s,true,true);", sb, base, g.selLo, g.selHi)
		g.emitf("%s := algebra.uselect(%s,%s,%s,true,true);", si, ins, g.selLo, g.selHi)
		u := g.v()
		g.emitf("%s := algebra.kunion(%s,%s);", u, sb, si)
		masked := g.v()
		g.emitf("%s := algebra.kdifference(%s,%s);", masked, u, upd)
		su := g.v()
		g.emitf("%s := algebra.uselect(%s,%s,%s,true,true);", su, upd, g.selLo, g.selHi)
		out := g.v()
		g.emitf("%s := algebra.kunion(%s,%s);", out, masked, su)
		return out
	}
	u := g.v()
	g.emitf("%s := algebra.kunion(%s,%s);", u, base, ins)
	masked := g.v()
	g.emitf("%s := algebra.kdifference(%s,%s);", masked, u, upd)
	out := g.v()
	g.emitf("%s := algebra.kunion(%s,%s);", out, masked, upd)
	return out
}

func (g *gen) generate() (*mal.Program, error) {
	q := g.q
	if _, err := g.columnKind(q.PredCol); err != nil {
		return nil, err
	}
	g.emitf("function user.q0(A0:dbl,A1:dbl):void;")

	// Predicate evaluation over the delta bats, Figure-1 style, then
	// deletion masking.
	qualified := g.deltaChain(q.PredCol, true)
	live := g.maskDeletes(qualified)

	switch q.Aggregate {
	case "count":
		c := g.v()
		g.emitf("%s := aggr.count(%s);", c, live)
		g.emitf("io.print(%s);", c)

	case "sum":
		if _, err := g.columnKind(q.AggrCol); err != nil {
			return nil, err
		}
		renumbered := g.renumber(live)
		col := g.deltaChain(q.AggrCol, false)
		joined := g.v()
		g.emitf("%s := algebra.join(%s,%s);", joined, renumbered, col)
		s := g.v()
		g.emitf("%s := aggr.sum(%s);", s, joined)
		g.emitf("io.print(%s);", s)

	default:
		if len(q.Projections) == 0 {
			return nil, fmt.Errorf("sql: no projections")
		}
		kinds := make([]bat.Kind, len(q.Projections))
		for i, col := range q.Projections {
			k, err := g.columnKind(col)
			if err != nil {
				return nil, err
			}
			kinds[i] = k
		}
		renumbered := g.renumber(live)
		joins := make([]string, len(q.Projections))
		for i, col := range q.Projections {
			merged := g.deltaChain(col, false)
			joins[i] = g.v()
			g.emitf("%s := algebra.join(%s,%s);", joins[i], renumbered, merged)
		}
		rs := g.v()
		g.emitf("%s := sql.resultSet(%d,1,%s);", rs, len(q.Projections), joins[0])
		for i, col := range q.Projections {
			g.emitf("sql.rsColumn(%s,%q,%q,%q,64,0,%s);",
				rs, q.Schema+"."+q.Table, col, sqlTypeName(kinds[i]), joins[i])
		}
		g.emitf("sql.exportResult(%s,\"\");", rs)
	}
	g.emitf("end q0;")
	return g.parse()
}

// maskDeletes emits the deletion-bat mask of Figure 1: the reversed
// dbat kdifferenced away from the qualifying rows.
func (g *gen) maskDeletes(qualified string) string {
	dbat, rev, live := g.v(), g.v(), g.v()
	g.emitf("%s := sql.bind_dbat(%q,%q,1);", dbat, g.schema, g.table)
	g.emitf("%s := bat.reverse(%s);", rev, dbat)
	g.emitf("%s := algebra.kdifference(%s,%s);", live, qualified, rev)
	return live
}

// renumber emits the markT/reverse pair of Figure 1, yielding the
// [dense-oid, original-oid] renumbering bat used to rejoin columns.
func (g *gen) renumber(live string) string {
	zero, marked, out := g.v(), g.v(), g.v()
	g.emitf("%s := calc.oid(0@0);", zero)
	g.emitf("%s := algebra.markT(%s,%s);", marked, live, zero)
	g.emitf("%s := bat.reverse(%s);", out, marked)
	return out
}
