package sql

import (
	"errors"
	"testing"

	"selforg/internal/bat"
	"selforg/internal/mal"
)

// fuzzSeeds is the shared seed corpus: every surface form plus the
// malformed shapes the corpus test pins down.
var fuzzSeeds = []string{
	"SELECT objid FROM P WHERE ra BETWEEN 205.1 AND 205.12",
	"select objid, dec from sys.P where ra between -1e3 and .5;",
	"SELECT COUNT(*) FROM P WHERE ra BETWEEN 0 AND 360",
	"SELECT SUM(dec) FROM other.T WHERE ra BETWEEN 1E+2 AND 1E+3",
	`SELECT "select", "a b" FROM "from" WHERE "where" BETWEEN 5. AND 6.`,
	`SELECT x FROM "a.b" WHERE v BETWEEN -0.5 AND 0.5`,
	"SELECT x FROM t WHERE v BETWEEN 1.2.3 AND 9",
	"SELECT 'lit FROM t WHERE v BETWEEN 1 AND 2",
	"SELECT x FROM t WHERE v BETWEEN 2 AND 1",
	"SELECT\tx\nFROM\r\nt WHERE v\nBETWEEN 1 AND 2",
	";", "", "SELECT", "sElEcT x FrOm T wHeRe V bEtWeEn 1 aNd 2",
	// Write surface (rejected by Parse, the full grammar for ParseStmt).
	"CREATE TABLE t (a, b)",
	"create table s.t (a bigint, b int);",
	"CREATE TABLE t (a, a)",
	"INSERT INTO t VALUES (1), (2.5), (-3)",
	"insert into t (a, b) values (1, 2), (3, 4);",
	"INSERT INTO t (a) VALUES (1, 2)",
	"UPDATE t SET a = 7 WHERE b = 2",
	`update "from" set "set" = 1 where "where" = 2`,
	"DELETE FROM t WHERE c = 6",
	"DELETE FROM t WHERE c = 6 extra",
}

// FuzzParse asserts parse→String→parse round-trip stability: any input
// Parse accepts must re-render to a statement that parses to the same
// query, and any rejection must be a positioned *SyntaxError whose
// offset lies inside the input.
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			var se *SyntaxError
			if !errors.As(err, &se) {
				t.Fatalf("Parse(%q): error %T is not *SyntaxError: %v", src, err, err)
			}
			if se.Offset < 0 || se.Offset > len(src) {
				t.Fatalf("Parse(%q): offset %d outside [0, %d]", src, se.Offset, len(src))
			}
			return
		}
		rendered := q.String()
		q2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("Parse(%q) ok but re-parse of %q failed: %v", src, rendered, err)
		}
		if got := q2.String(); got != rendered {
			t.Fatalf("round trip unstable:\n  src      %q\n  render   %q\n  rerender %q", src, rendered, got)
		}
	})
}

// FuzzNormalize asserts the plan-cache invariant: when two statements
// share a fingerprint (here: the original and the fingerprint with
// fresh constants restored), they compile to MAL plans of identical
// shape — so a plan cached under the fingerprint is valid for every
// statement that normalizes to it.
func FuzzNormalize(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		n, err := Normalize(src)
		if err != nil {
			var se *SyntaxError
			if !errors.As(err, &se) {
				t.Fatalf("Normalize(%q): error %T is not *SyntaxError", src, err)
			}
			return
		}
		// Normalization is idempotent across bind restoration.
		restored := RestoreBinds(n.Fingerprint, n.Binds)
		n2, err := Normalize(restored)
		if err != nil {
			t.Fatalf("Normalize(%q) ok but restored %q fails: %v", src, restored, err)
		}
		if n2.Fingerprint != n.Fingerprint {
			t.Fatalf("fingerprint drift:\n  src  %q -> %q\n  rest %q -> %q", src, n.Fingerprint, restored, n2.Fingerprint)
		}
		q1, err := Parse(src)
		if err != nil {
			return // fingerprints exist for unparseable statements too
		}
		// Same fingerprint, different constants: plan shape must match.
		fresh := make([]float64, len(n.Binds))
		for i := range fresh {
			fresh[i] = float64(i) // 0, 1, ... keeps BETWEEN bounds ordered
		}
		q2, err := Parse(RestoreBinds(n.Fingerprint, fresh))
		if err != nil {
			t.Fatalf("q1 %q parses but re-bound fingerprint %q does not: %v",
				src, RestoreBinds(n.Fingerprint, fresh), err)
		}
		cat := catalogFor(q1)
		p1, err1 := Generate(q1, cat)
		p2, err2 := Generate(q2, cat)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("codegen asymmetry for one fingerprint: %v vs %v", err1, err2)
		}
		if err1 != nil {
			return
		}
		if p1.String() != p2.String() {
			t.Fatalf("plan shape differs for one fingerprint %q:\n--- q1\n%s\n--- q2\n%s",
				n.Fingerprint, p1.String(), p2.String())
		}
	})
}

// catalogFor registers the table and every column a parsed query
// references, so Generate can bind whatever identifiers the fuzzer
// invented.
func catalogFor(q *Query) *mal.MemCatalog {
	cols := map[string]*mal.Column{
		q.PredCol: {Base: bat.Empty(bat.KOid, bat.KDbl)},
	}
	for _, p := range q.Projections {
		cols[p] = &mal.Column{Base: bat.Empty(bat.KOid, bat.KDbl)}
	}
	if q.AggrCol != "" {
		cols[q.AggrCol] = &mal.Column{Base: bat.Empty(bat.KOid, bat.KDbl)}
	}
	cat := mal.NewMemCatalog()
	cat.AddTable(&mal.Table{Schema: q.Schema, Name: q.Table, Cols: cols})
	return cat
}
