package sql

// DML and DDL statements. The write grammar mirrors the read side's
// deliberately small surface: equality predicates only (UPDATE and
// DELETE address rows by value, the way the facade's point writes do),
// numeric literals only, and single-assignment SET clauses:
//
//	CREATE TABLE t (a, b, c)
//	INSERT INTO t (a, b, c) VALUES (1, 2, 3), (4, 5, 6)
//	UPDATE t SET a = 7 WHERE b = 2
//	DELETE FROM t WHERE c = 6
//
// Write statements are parsed per call and never plan-cached — their
// fingerprints (Normalize works on any token stream) exist for
// observability, not cache keys — so ParseStmt is the whole front end
// for them.

import (
	"fmt"
	"strconv"
	"strings"
)

// Stmt is one parsed statement: *Query (SELECT), *CreateTable, *Insert,
// *Update or *Delete. String renders a canonical form that re-parses to
// an equal statement.
type Stmt interface {
	fmt.Stringer
	stmt()
}

func (*Query) stmt()       {}
func (*CreateTable) stmt() {}
func (*Insert) stmt()      {}
func (*Update) stmt()      {}
func (*Delete) stmt()      {}

// CreateTable declares a new multi-column table. Every column is a
// bigint (the engine's single value type); an optional per-column type
// token is accepted and validated but carries no information.
type CreateTable struct {
	Schema, Table string
	Columns       []string // declared order, preserved by the catalog
}

// Insert appends whole rows. Columns is the optional explicit column
// list (nil = the table's declared column order); every row supplies
// one numeric value per listed column.
type Insert struct {
	Schema, Table string
	Columns       []string
	Rows          [][]float64
}

// Update sets one column to a constant on every visible row matching an
// equality predicate: UPDATE t SET SetCol = SetVal WHERE PredCol = PredVal.
type Update struct {
	Schema, Table string
	SetCol        string
	SetVal        float64
	PredCol       string
	PredVal       float64
}

// Delete removes every visible row matching an equality predicate.
type Delete struct {
	Schema, Table string
	PredCol       string
	PredVal       float64
}

func (s *CreateTable) String() string {
	cols := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		cols[i] = quoteIdent(c)
	}
	return fmt.Sprintf("CREATE TABLE %s (%s)",
		renderTableRef(s.Schema, s.Table), strings.Join(cols, ", "))
}

func (s *Insert) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "INSERT INTO %s", renderTableRef(s.Schema, s.Table))
	if len(s.Columns) > 0 {
		cols := make([]string, len(s.Columns))
		for i, c := range s.Columns {
			cols[i] = quoteIdent(c)
		}
		fmt.Fprintf(&b, " (%s)", strings.Join(cols, ", "))
	}
	b.WriteString(" VALUES ")
	for i, row := range s.Rows {
		if i > 0 {
			b.WriteString(", ")
		}
		vals := make([]string, len(row))
		for j, v := range row {
			vals[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		fmt.Fprintf(&b, "(%s)", strings.Join(vals, ", "))
	}
	return b.String()
}

func (s *Update) String() string {
	return fmt.Sprintf("UPDATE %s SET %s = %g WHERE %s = %g",
		renderTableRef(s.Schema, s.Table), quoteIdent(s.SetCol), s.SetVal,
		quoteIdent(s.PredCol), s.PredVal)
}

func (s *Delete) String() string {
	return fmt.Sprintf("DELETE FROM %s WHERE %s = %g",
		renderTableRef(s.Schema, s.Table), quoteIdent(s.PredCol), s.PredVal)
}

// renderTableRef renders a (schema, table) pair so it re-parses to the
// same pair — the shared form of Query.tableRef.
func renderTableRef(schema, table string) string {
	if schema != "" && schema != "sys" {
		return quoteIdent(schema + "." + table)
	}
	if strings.ContainsRune(table, '.') {
		return `"` + table + `"`
	}
	return quoteIdent(table)
}

// ParseStmt parses one statement of any supported class, dispatching on
// the leading keyword (SELECT falls through to the read grammar).
// Errors are *SyntaxError values carrying the byte offset of the fault.
func ParseStmt(src string) (Stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, eof: len(src)}
	if t := p.peek(); t.kind == "ident" && !t.quoted {
		switch strings.ToUpper(t.s) {
		case "CREATE":
			return p.parseCreateTable()
		case "INSERT":
			return p.parseInsert()
		case "UPDATE":
			return p.parseUpdate()
		case "DELETE":
			return p.parseDelete()
		}
	}
	return p.parseQuery()
}

// LeadingKeyword returns the first bare keyword of src uppercased, or
// "" when src does not open with one. It is a byte scan, not a lex —
// the query tier uses it to route writes away from the plan cache
// before paying for anything else.
func LeadingKeyword(src string) string {
	i := 0
	for i < len(src) && (src[i] == ' ' || src[i] == '\t' || src[i] == '\n' || src[i] == '\r') {
		i++
	}
	if i >= len(src) || !isIdentStart(src[i]) {
		return ""
	}
	j := i
	for j < len(src) && isIdentPart(src[j]) {
		j++
	}
	w := strings.ToUpper(src[i:j])
	if !isKeyword(w) {
		return ""
	}
	return w
}

// tableName parses a table reference, splitting an unquoted
// "schema.table" form (the parseQuery convention).
func (p *parser) tableName() (schema, table string, err error) {
	t := p.peek()
	name, err := p.ident()
	if err != nil {
		return "", "", err
	}
	if i := strings.IndexByte(name, '.'); i >= 0 && !t.quoted {
		return name[:i], name[i+1:], nil
	}
	return "sys", name, nil
}

// finish consumes an optional trailing semicolon and requires end of
// input.
func (p *parser) finish() error {
	if p.peek().kind == "punct" && p.peek().s == ";" {
		p.next()
	}
	if p.pos != len(p.toks) {
		return errAt(p.peek().off, "trailing input at %s", describe(p.peek()))
	}
	return nil
}

// parseCreateTable: CREATE TABLE t (col [type] [, col [type]]...).
func (p *parser) parseCreateTable() (*CreateTable, error) {
	s := &CreateTable{}
	if err := p.keyword("create"); err != nil {
		return nil, err
	}
	if err := p.keyword("table"); err != nil {
		return nil, err
	}
	var err error
	if s.Schema, s.Table, err = p.tableName(); err != nil {
		return nil, err
	}
	if err := p.punct("("); err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	for {
		off := p.peek().off
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if seen[col] {
			return nil, errAt(off, "duplicate column %q", col)
		}
		seen[col] = true
		s.Columns = append(s.Columns, col)
		// Optional type token: every column is a bigint, but the
		// conventional spellings are accepted so dumps re-load.
		if t := p.peek(); t.kind == "ident" && !t.quoted {
			switch strings.ToUpper(t.s) {
			case "BIGINT", "INT", "INTEGER", "LNG":
				p.next()
			default:
				return nil, errAt(t.off, "unsupported column type %q (bigint only)", t.s)
			}
		}
		if p.peek().kind == "punct" && p.peek().s == "," {
			p.next()
			continue
		}
		break
	}
	if err := p.punct(")"); err != nil {
		return nil, err
	}
	if err := p.finish(); err != nil {
		return nil, err
	}
	return s, nil
}

// parseInsert: INSERT INTO t [(c1, ...)] VALUES (v1, ...) [, (...)]...
func (p *parser) parseInsert() (*Insert, error) {
	s := &Insert{}
	if err := p.keyword("insert"); err != nil {
		return nil, err
	}
	if err := p.keyword("into"); err != nil {
		return nil, err
	}
	var err error
	if s.Schema, s.Table, err = p.tableName(); err != nil {
		return nil, err
	}
	if p.peek().kind == "punct" && p.peek().s == "(" {
		p.next()
		seen := make(map[string]bool)
		for {
			off := p.peek().off
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			if seen[col] {
				return nil, errAt(off, "duplicate column %q", col)
			}
			seen[col] = true
			s.Columns = append(s.Columns, col)
			if p.peek().kind == "punct" && p.peek().s == "," {
				p.next()
				continue
			}
			break
		}
		if err := p.punct(")"); err != nil {
			return nil, err
		}
	}
	if err := p.keyword("values"); err != nil {
		return nil, err
	}
	for {
		rowOff := p.peek().off
		if err := p.punct("("); err != nil {
			return nil, err
		}
		var row []float64
		for {
			v, err := p.number()
			if err != nil {
				return nil, err
			}
			row = append(row, v)
			if p.peek().kind == "punct" && p.peek().s == "," {
				p.next()
				continue
			}
			break
		}
		if err := p.punct(")"); err != nil {
			return nil, err
		}
		if len(s.Columns) > 0 && len(row) != len(s.Columns) {
			return nil, errAt(rowOff, "row has %d values, want %d", len(row), len(s.Columns))
		}
		if len(s.Rows) > 0 && len(row) != len(s.Rows[0]) {
			return nil, errAt(rowOff, "row has %d values, want %d", len(row), len(s.Rows[0]))
		}
		s.Rows = append(s.Rows, row)
		if p.peek().kind == "punct" && p.peek().s == "," {
			p.next()
			continue
		}
		break
	}
	if err := p.finish(); err != nil {
		return nil, err
	}
	return s, nil
}

// parseUpdate: UPDATE t SET col = num WHERE col = num.
func (p *parser) parseUpdate() (*Update, error) {
	s := &Update{}
	if err := p.keyword("update"); err != nil {
		return nil, err
	}
	var err error
	if s.Schema, s.Table, err = p.tableName(); err != nil {
		return nil, err
	}
	if err := p.keyword("set"); err != nil {
		return nil, err
	}
	if s.SetCol, err = p.ident(); err != nil {
		return nil, err
	}
	if err := p.punct("="); err != nil {
		return nil, err
	}
	if s.SetVal, err = p.number(); err != nil {
		return nil, err
	}
	if err := p.keyword("where"); err != nil {
		return nil, err
	}
	if s.PredCol, err = p.ident(); err != nil {
		return nil, err
	}
	if err := p.punct("="); err != nil {
		return nil, err
	}
	if s.PredVal, err = p.number(); err != nil {
		return nil, err
	}
	if err := p.finish(); err != nil {
		return nil, err
	}
	return s, nil
}

// parseDelete: DELETE FROM t WHERE col = num.
func (p *parser) parseDelete() (*Delete, error) {
	s := &Delete{}
	if err := p.keyword("delete"); err != nil {
		return nil, err
	}
	if err := p.keyword("from"); err != nil {
		return nil, err
	}
	var err error
	if s.Schema, s.Table, err = p.tableName(); err != nil {
		return nil, err
	}
	if err := p.keyword("where"); err != nil {
		return nil, err
	}
	if s.PredCol, err = p.ident(); err != nil {
		return nil, err
	}
	if err := p.punct("="); err != nil {
		return nil, err
	}
	if s.PredVal, err = p.number(); err != nil {
		return nil, err
	}
	if err := p.finish(); err != nil {
		return nil, err
	}
	return s, nil
}
