package sql

import (
	"math/rand"
	"strings"
	"testing"

	"selforg/internal/bat"
	"selforg/internal/bpm"
	"selforg/internal/mal"
	"selforg/internal/model"
	"selforg/internal/opt"
)

func TestParseProjection(t *testing.T) {
	q, err := Parse("SELECT objid FROM P WHERE ra BETWEEN 205.1 AND 205.12")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Projections) != 1 || q.Projections[0] != "objid" {
		t.Errorf("projections = %v", q.Projections)
	}
	if q.Schema != "sys" || q.Table != "P" || q.PredCol != "ra" {
		t.Errorf("query = %+v", q)
	}
	if q.Lo != 205.1 || q.Hi != 205.12 {
		t.Errorf("bounds = %g/%g", q.Lo, q.Hi)
	}
}

func TestParseMultiProjection(t *testing.T) {
	q := MustParse("select objid, dec from P where ra between 1 and 2;")
	if len(q.Projections) != 2 || q.Projections[1] != "dec" {
		t.Errorf("projections = %v", q.Projections)
	}
}

func TestParseCount(t *testing.T) {
	q := MustParse("SELECT COUNT(*) FROM P WHERE ra BETWEEN 0 AND 360")
	if q.Aggregate != "count" || len(q.Projections) != 0 {
		t.Errorf("query = %+v", q)
	}
}

func TestParseSum(t *testing.T) {
	q := MustParse("SELECT SUM(dec) FROM P WHERE ra BETWEEN 0 AND 10")
	if q.Aggregate != "sum" || q.AggrCol != "dec" {
		t.Errorf("query = %+v", q)
	}
}

func TestParseSchemaQualified(t *testing.T) {
	q := MustParse("SELECT objid FROM other.T WHERE v BETWEEN 1 AND 2")
	if q.Schema != "other" || q.Table != "T" {
		t.Errorf("schema/table = %s/%s", q.Schema, q.Table)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"SELECT",
		"SELECT FROM P WHERE ra BETWEEN 1 AND 2",
		"SELECT objid FROM P",
		"SELECT objid FROM P WHERE ra BETWEEN 2 AND 1", // inverted
		"SELECT objid FROM P WHERE ra BETWEEN 1 AND 'x'",
		"SELECT objid FROM P WHERE ra BETWEEN 1 AND 2 GARBAGE",
		"SELECT COUNT(objid) FROM P WHERE ra BETWEEN 1 AND 2", // only COUNT(*)
		"INSERT INTO P VALUES (1)",
		"SELECT 'lit FROM P WHERE ra BETWEEN 1 AND 2",
	}
	for _, c := range cases {
		if _, err := Parse(c); err == nil {
			t.Errorf("%q: accepted", c)
		}
	}
}

func TestQueryString(t *testing.T) {
	q := MustParse("SELECT COUNT(*) FROM P WHERE ra BETWEEN 1 AND 2")
	if got := q.String(); !strings.Contains(got, "COUNT(*)") {
		t.Errorf("String = %q", got)
	}
	q2 := MustParse("SELECT SUM(dec) FROM P WHERE ra BETWEEN 1 AND 2")
	if got := q2.String(); !strings.Contains(got, "SUM(dec)") {
		t.Errorf("String = %q", got)
	}
}

// testDB builds a sys.P table with deltas: base rows, one insert in
// range, one update moving a row out of range, one delete.
func testDB(segmented bool) (*mal.MemCatalog, *bpm.Store, []float64) {
	ras := []float64{204.0, 205.105, 205.11, 205.2, 205.119, 100.0}
	objs := []int64{1000, 1001, 1002, 1003, 1004, 1005}
	decs := []float64{1, 2, 3, 4, 5, 6}
	cat := mal.NewMemCatalog()
	segName := ""
	if segmented {
		segName = "sys_P_ra"
	}
	cat.AddTable(&mal.Table{
		Schema: "sys", Name: "P",
		Cols: map[string]*mal.Column{
			"ra": {
				Base:      bat.New(bat.NewDenseOids(0, 6), bat.NewDbls(ras)),
				Inserts:   bat.New(bat.NewDenseOids(6, 1), bat.NewDbls([]float64{205.115})),
				Updates:   bat.New(bat.NewOids([]uint64{2}), bat.NewDbls([]float64{210.0})),
				Segmented: segName,
			},
			"objid": {
				Base:    bat.New(bat.NewDenseOids(0, 6), bat.NewLngs(objs)),
				Inserts: bat.New(bat.NewDenseOids(6, 1), bat.NewLngs([]int64{1006})),
			},
			"dec": {
				Base:    bat.New(bat.NewDenseOids(0, 6), bat.NewDbls(decs)),
				Inserts: bat.New(bat.NewDenseOids(6, 1), bat.NewDbls([]float64{7})),
			},
		},
		Deletes: bat.New(bat.NewDenseOids(0, 1), bat.NewOids([]uint64{4})),
	})
	st := bpm.NewStore()
	if segmented {
		st.Register(bpm.NewSegmentedBAT("sys_P_ra",
			bat.New(bat.NewDenseOids(0, 6), bat.NewDbls(append([]float64(nil), ras...))), 0, 360, 4))
	}
	return cat, st, ras
}

func runSQL(t *testing.T, src string, optimize bool) (*mal.Context, string) {
	t.Helper()
	cat, st, _ := testDB(optimize)
	_, prog, err := Compile(src, cat)
	if err != nil {
		t.Fatal(err)
	}
	if optimize {
		if err := opt.Default().Optimize(prog, &opt.Context{Catalog: cat, Store: st}); err != nil {
			t.Fatal(err)
		}
	}
	in := mal.NewInterp(cat, st)
	in.AdaptModel = model.Always{}
	var out strings.Builder
	in.Out = &out
	ctx, err := in.Run(prog, 205.1, 205.12)
	if err != nil {
		t.Fatalf("%v\nplan:\n%s", err, prog.String())
	}
	return ctx, out.String()
}

func TestCompileAndRunProjection(t *testing.T) {
	// Expected qualifying rows in ra [205.1, 205.12]: oid 1 (205.105)
	// and oid 6 (inserted 205.115); oid 2 updated out of range, oid 4
	// deleted.
	ctx, out := runSQL(t, "SELECT objid FROM P WHERE ra BETWEEN 205.1 AND 205.12", false)
	if len(ctx.Results) != 1 {
		t.Fatalf("results = %d", len(ctx.Results))
	}
	rs := ctx.Results[0]
	if rs.NumRows() != 2 || rs.NumCols() != 1 {
		t.Fatalf("shape = %dx%d\n%s", rs.NumCols(), rs.NumRows(), out)
	}
	got := map[int64]bool{}
	col := rs.Column(0)
	for i := 0; i < col.Len(); i++ {
		got[col.Tail.Get(i).AsLng()] = true
	}
	if !got[1001] || !got[1006] {
		t.Errorf("objids = %v, want {1001, 1006}", got)
	}
	if !strings.Contains(out, "bigint") {
		t.Errorf("export output missing type:\n%s", out)
	}
}

func TestCompileAndRunMultiColumn(t *testing.T) {
	ctx, _ := runSQL(t, "SELECT objid, dec FROM P WHERE ra BETWEEN 205.1 AND 205.12", false)
	rs := ctx.Results[0]
	if rs.NumCols() != 2 || rs.NumRows() != 2 {
		t.Fatalf("shape = %dx%d", rs.NumCols(), rs.NumRows())
	}
	// Row alignment: objid 1001 pairs with dec 2, objid 1006 with dec 7.
	objCol, decCol := rs.Column(0), rs.Column(1)
	pairs := map[int64]float64{}
	for i := 0; i < objCol.Len(); i++ {
		pairs[objCol.Tail.Get(i).AsLng()] = decCol.Tail.Get(i).AsDbl()
	}
	if pairs[1001] != 2 || pairs[1006] != 7 {
		t.Errorf("tuple reconstruction wrong: %v", pairs)
	}
}

func TestCompileAndRunCount(t *testing.T) {
	_, out := runSQL(t, "SELECT COUNT(*) FROM P WHERE ra BETWEEN 205.1 AND 205.12", false)
	if !strings.Contains(out, "2") {
		t.Errorf("count output = %q", out)
	}
}

func TestCompileAndRunSum(t *testing.T) {
	_, out := runSQL(t, "SELECT SUM(dec) FROM P WHERE ra BETWEEN 205.1 AND 205.12", false)
	// dec of oid 1 is 2, of oid 6 is 7 → 9.
	if !strings.Contains(out, "9") {
		t.Errorf("sum output = %q", out)
	}
}

func TestCompiledPlanSurvivesSegmentOptimizer(t *testing.T) {
	// The generated plan must be a valid input for the tactical
	// optimizer, and produce identical results after the §3.1 rewrite.
	plain, _ := runSQL(t, "SELECT objid FROM P WHERE ra BETWEEN 205.1 AND 205.12", false)
	optd, _ := runSQL(t, "SELECT objid FROM P WHERE ra BETWEEN 205.1 AND 205.12", true)
	a, b := plain.Results[0], optd.Results[0]
	if a.NumRows() != b.NumRows() {
		t.Fatalf("row counts differ: %d vs %d", a.NumRows(), b.NumRows())
	}
	// The optimized plan must actually contain the segment iterator.
	cat, st, _ := testDB(true)
	_, prog, err := Compile("SELECT objid FROM P WHERE ra BETWEEN 205.1 AND 205.12", cat)
	if err != nil {
		t.Fatal(err)
	}
	if err := opt.Default().Optimize(prog, &opt.Context{Catalog: cat, Store: st}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prog.String(), "bpm.newIterator") {
		t.Errorf("segment pass did not fire on the generated plan:\n%s", prog.String())
	}
}

func TestGenerateUnknownColumn(t *testing.T) {
	cat, _, _ := testDB(false)
	if _, _, err := Compile("SELECT nope FROM P WHERE ra BETWEEN 1 AND 2", cat); err == nil {
		t.Error("unknown projection accepted")
	}
	if _, _, err := Compile("SELECT objid FROM P WHERE nope BETWEEN 1 AND 2", cat); err == nil {
		t.Error("unknown predicate column accepted")
	}
	if _, _, err := Compile("SELECT SUM(nope) FROM P WHERE ra BETWEEN 1 AND 2", cat); err == nil {
		t.Error("unknown aggregate column accepted")
	}
	if _, _, err := Compile("SELECT objid FROM NOPE WHERE ra BETWEEN 1 AND 2", cat); err == nil {
		t.Error("unknown table accepted")
	}
}

func TestGeneratedPlanAgainstReferenceFilter(t *testing.T) {
	// Property-style check over random data and bounds: the compiled
	// plan's COUNT matches a direct reference filter over the merged
	// (base+insert, minus deleted) data.
	rng := rand.New(rand.NewSource(21))
	n := 500
	ras := make([]float64, n)
	for i := range ras {
		ras[i] = rng.Float64() * 360
	}
	cat := mal.NewMemCatalog()
	cat.AddTable(&mal.Table{
		Schema: "sys", Name: "P",
		Cols: map[string]*mal.Column{
			"ra": {Base: bat.New(bat.NewDenseOids(0, n), bat.NewDbls(ras))},
		},
	})
	in := mal.NewInterp(cat, bpm.NewStore())
	var out strings.Builder
	in.Out = &out
	_, prog, err := Compile("SELECT COUNT(*) FROM P WHERE ra BETWEEN 0 AND 0", cat)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 25; trial++ {
		lo := rng.Float64() * 300
		hi := lo + rng.Float64()*60
		out.Reset()
		if _, err := in.Run(prog, lo, hi); err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, v := range ras {
			if v >= lo && v <= hi {
				want++
			}
		}
		got := strings.TrimSpace(out.String())
		if got != itoa(want) {
			t.Fatalf("bounds [%g, %g]: plan counted %s, reference %d", lo, hi, got, want)
		}
	}
}

// itoa avoids importing strconv for one call site.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	digits := []byte{}
	for v > 0 {
		digits = append([]byte{byte('0' + v%10)}, digits...)
		v /= 10
	}
	return string(digits)
}
