package sql

import (
	"errors"
	"strings"
	"testing"

	"selforg/internal/mal"
)

// TestParseStmtCorpus is the write-grammar companion of TestParseCorpus:
// every DML/DDL surface form and the malformed shapes found while
// hardening, with exact error positions. Accepted statements verify
// their canonical String rendering (which FuzzParseStmt proves stable).
func TestParseStmtCorpus(t *testing.T) {
	type want struct {
		// canon is the statement's canonical String() form ("" = error).
		canon   string
		errFrag string
		errOff  int
	}
	cases := []struct {
		name, src string
		want      want
	}{
		// --- CREATE TABLE ---
		{"create basic", "CREATE TABLE t (a, b)",
			want{canon: "CREATE TABLE t (a, b)"}},
		{"create with types", "create table T (A bigint, b_2 INT, c integer, d lng)",
			want{canon: "CREATE TABLE T (A, b_2, c, d)"}},
		{"create schema qualified", "CREATE TABLE s.t (a)",
			want{canon: "CREATE TABLE s.t (a)"}},
		{"create quoted keyword column", `CREATE TABLE t ("select")`,
			want{canon: `CREATE TABLE t ("select")`}},
		{"create trailing semicolon", "CREATE TABLE t (a);",
			want{canon: "CREATE TABLE t (a)"}},
		{"create duplicate column", "CREATE TABLE t (a, a)",
			want{errFrag: "duplicate column", errOff: 19}},
		{"create bad type", "CREATE TABLE t (a text)",
			want{errFrag: "unsupported column type", errOff: 18}},
		{"create empty columns", "CREATE TABLE t ()",
			want{errFrag: "expected identifier", errOff: 16}},
		{"create unclosed", "CREATE TABLE t (a",
			want{errFrag: `expected ")"`, errOff: 17}},

		// --- INSERT ---
		{"insert basic", "INSERT INTO t VALUES (1), (2.5), (-3)",
			want{canon: "INSERT INTO t VALUES (1), (2.5), (-3)"}},
		{"insert column list", "insert into t (a, b) values (1, 2), (3, 4);",
			want{canon: "INSERT INTO t (a, b) VALUES (1, 2), (3, 4)"}},
		{"insert schema qualified", "INSERT INTO other.T VALUES (9)",
			want{canon: "INSERT INTO other.T VALUES (9)"}},
		{"insert arity vs list", "INSERT INTO t (a) VALUES (1, 2)",
			want{errFrag: "row has 2 values, want 1", errOff: 25}},
		{"insert ragged rows", "INSERT INTO t VALUES (1), (2, 3)",
			want{errFrag: "row has 2 values, want 1", errOff: 26}},
		{"insert duplicate column", "INSERT INTO t (a, a) VALUES (1, 2)",
			want{errFrag: "duplicate column", errOff: 18}},
		{"insert non-number", "INSERT INTO t VALUES (a)",
			want{errFrag: "expected number", errOff: 22}},
		{"insert missing rows", "INSERT INTO t VALUES",
			want{errFrag: `expected "("`, errOff: 20}},
		{"insert keyword table", "INSERT INTO VALUES (1)",
			want{errFrag: "unexpected keyword", errOff: 12}},

		// --- UPDATE ---
		{"update basic", "UPDATE t SET a = 7 WHERE b = 2",
			want{canon: "UPDATE t SET a = 7 WHERE b = 2"}},
		{"update quoted idents", `update "from" set "set" = 1 where "where" = 2`,
			want{canon: `UPDATE "from" SET "set" = 1 WHERE "where" = 2`}},
		{"update fractional", "UPDATE t SET a = 1.5 WHERE b = -2e2",
			want{canon: "UPDATE t SET a = 1.5 WHERE b = -200"}},
		{"update non-number", "UPDATE t SET a = x WHERE b = 2",
			want{errFrag: "expected number", errOff: 17}},
		{"update missing equals", "UPDATE t SET a 7 WHERE b = 2",
			want{errFrag: `expected "="`, errOff: 15}},
		{"update missing where", "UPDATE t SET a = 7",
			want{errFrag: "expected WHERE", errOff: 18}},

		// --- DELETE ---
		{"delete basic", "DELETE FROM t WHERE c = 6",
			want{canon: "DELETE FROM t WHERE c = 6"}},
		{"delete default schema renders bare", "DELETE FROM sys.t WHERE c = 6",
			want{canon: "DELETE FROM t WHERE c = 6"}},
		{"delete missing from", "DELETE t WHERE c = 6",
			want{errFrag: "expected FROM", errOff: 7}},
		{"delete trailing garbage", "DELETE FROM t WHERE c = 6 extra",
			want{errFrag: "trailing input", errOff: 26}},

		// --- SELECT falls through to the read grammar ---
		{"select dispatch", "SELECT x FROM t WHERE v BETWEEN 1 AND 2",
			want{canon: "SELECT x FROM t WHERE v BETWEEN 1 AND 2"}},
		{"select error through ParseStmt", "SELECT x FROM t",
			want{errFrag: "expected WHERE", errOff: 15}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s, err := ParseStmt(c.src)
			if c.want.errFrag == "" {
				if err != nil {
					t.Fatalf("ParseStmt(%q) = %v", c.src, err)
				}
				if got := s.String(); got != c.want.canon {
					t.Fatalf("ParseStmt(%q):\n  got  %s\n  want %s", c.src, got, c.want.canon)
				}
				return
			}
			if err == nil {
				t.Fatalf("ParseStmt(%q) accepted, want error %q", c.src, c.want.errFrag)
			}
			if !strings.Contains(err.Error(), c.want.errFrag) {
				t.Fatalf("ParseStmt(%q) error %q, want fragment %q", c.src, err, c.want.errFrag)
			}
			var se *SyntaxError
			if !errors.As(err, &se) {
				t.Fatalf("ParseStmt(%q) error %T is not *SyntaxError", c.src, err)
			}
			if se.Offset != c.want.errOff {
				t.Fatalf("ParseStmt(%q) error offset %d, want %d (%v)", c.src, se.Offset, c.want.errOff, err)
			}
		})
	}
}

func TestLeadingKeyword(t *testing.T) {
	cases := []struct{ src, want string }{
		{"INSERT INTO t VALUES (1)", "INSERT"},
		{"  \t\n update t set a = 1 where b = 2", "UPDATE"},
		{"delete from t where c = 1", "DELETE"},
		{"Create Table t (a)", "CREATE"},
		{"SELECT x FROM t WHERE v BETWEEN 1 AND 2", "SELECT"},
		{`"INSERT" nonsense`, ""},
		{"foo bar", ""},
		{"", ""},
		{"   ", ""},
		{"(INSERT)", ""},
	}
	for _, c := range cases {
		if got := LeadingKeyword(c.src); got != c.want {
			t.Errorf("LeadingKeyword(%q) = %q, want %q", c.src, got, c.want)
		}
	}
}

// TestDMLExecution drives a created table through the whole write
// stack: ParseStmt → GenerateDML → interpreter → catalog delta bats,
// then reads the table back through the ordinary SELECT pipeline.
func TestDMLExecution(t *testing.T) {
	cat := mal.NewMemCatalog()
	st, err := ParseStmt("CREATE TABLE t (a, b)")
	if err != nil {
		t.Fatal(err)
	}
	ct := st.(*CreateTable)
	if err := cat.CreateTable(ct.Schema, ct.Table, ct.Columns); err != nil {
		t.Fatal(err)
	}
	if got := cat.ColumnsOf("sys", "t"); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("ColumnsOf = %v, want [a b]", got)
	}

	run := func(src string, args ...any) int64 {
		t.Helper()
		s, err := ParseStmt(src)
		if err != nil {
			t.Fatalf("ParseStmt(%q): %v", src, err)
		}
		prog, err := GenerateDML(s, cat)
		if err != nil {
			t.Fatalf("GenerateDML(%q): %v", src, err)
		}
		ctx, err := mal.NewInterp(cat, nil).Run(prog, args...)
		if err != nil {
			t.Fatalf("run %q:\n%s\n%v", src, prog.String(), err)
		}
		return ctx.Affected
	}
	// Column order comes from the table declaration when the INSERT
	// carries no list.
	if n := run("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)"); n != 3 {
		t.Fatalf("insert affected %d, want 3", n)
	}
	// An explicit list may reorder.
	if n := run("INSERT INTO t (b, a) VALUES (40, 4)"); n != 1 {
		t.Fatalf("insert affected %d, want 1", n)
	}
	if n := run("UPDATE t SET b = 99 WHERE a = 2", 2.0, 99.0); n != 1 {
		t.Fatalf("update affected %d, want 1", n)
	}
	if n := run("DELETE FROM t WHERE a = 1", 1.0); n != 1 {
		t.Fatalf("delete affected %d, want 1", n)
	}
	// Predicates that match nothing affect nothing.
	if n := run("UPDATE t SET b = 5 WHERE a = 77", 77.0, 5.0); n != 0 {
		t.Fatalf("no-match update affected %d, want 0", n)
	}
	if n := run("DELETE FROM t WHERE a = 77", 77.0); n != 0 {
		t.Fatalf("no-match delete affected %d, want 0", n)
	}

	// Read the table back through the ordinary SELECT pipeline: the
	// delta chain must show exactly the surviving rows, positionally
	// rejoined across both columns.
	q := MustParse("SELECT a, b FROM t WHERE a BETWEEN 0 AND 100")
	prog, err := Generate(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := mal.NewInterp(cat, nil).Run(prog, 0.0, 100.0)
	if err != nil {
		t.Fatalf("select:\n%s\n%v", prog.String(), err)
	}
	if len(ctx.Results) == 0 {
		t.Fatal("select exported no result set")
	}
	rs := ctx.Results[len(ctx.Results)-1]
	if rs.NumCols() != 2 {
		t.Fatalf("NumCols = %d, want 2", rs.NumCols())
	}
	got := map[int64]int64{}
	for r := 0; r < rs.NumRows(); r++ {
		got[rs.Column(0).Tail.Get(r).AsLng()] = rs.Column(1).Tail.Get(r).AsLng()
	}
	want := map[int64]int64{2: 99, 3: 30, 4: 40}
	if len(got) != len(want) {
		t.Fatalf("rows = %v, want %v", got, want)
	}
	for a, b := range want {
		if got[a] != b {
			t.Fatalf("rows = %v, want %v", got, want)
		}
	}
}

// TestGenerateDMLErrors pins the compile-side rejections: unknown
// tables and columns, arity mismatches, empty inserts.
func TestGenerateDMLErrors(t *testing.T) {
	cat := mal.NewMemCatalog()
	if err := cat.CreateTable("sys", "t", []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	cases := []struct{ name, src, frag string }{
		{"unknown table insert", "INSERT INTO nope VALUES (1)", "nope"},
		{"unknown column insert", "INSERT INTO t (a, z) VALUES (1, 2)", "z"},
		{"unknown set column", "UPDATE t SET z = 1 WHERE a = 2", "z"},
		{"unknown pred column", "DELETE FROM t WHERE z = 1", "z"},
		{"arity short of table", "INSERT INTO t VALUES (1)", "1 values"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s, err := ParseStmt(c.src)
			if err != nil {
				t.Fatalf("ParseStmt(%q): %v", c.src, err)
			}
			if _, err := GenerateDML(s, cat); err == nil {
				t.Fatalf("GenerateDML(%q) accepted, want error containing %q", c.src, c.frag)
			} else if !strings.Contains(err.Error(), c.frag) {
				t.Fatalf("GenerateDML(%q) error %q, want fragment %q", c.src, err, c.frag)
			}
		})
	}
	// CreateTable itself must reject duplicates and redefinitions.
	if err := cat.CreateTable("sys", "t", []string{"x"}); err == nil {
		t.Fatal("redefining sys.t succeeded")
	}
	if err := cat.CreateTable("sys", "u", []string{"x", "x"}); err == nil {
		t.Fatal("duplicate column accepted")
	}
	if err := cat.CreateTable("sys", "u", nil); err == nil {
		t.Fatal("empty column list accepted")
	}
}

// FuzzParseStmt extends the FuzzParse round-trip guarantee to the write
// grammar: anything ParseStmt accepts must re-render (String) to a
// statement that parses to the same canonical form, and every rejection
// must carry an in-range offset.
func FuzzParseStmt(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		s, err := ParseStmt(src)
		if err != nil {
			var se *SyntaxError
			if !errors.As(err, &se) {
				t.Fatalf("ParseStmt(%q): error %T is not *SyntaxError: %v", src, err, err)
			}
			if se.Offset < 0 || se.Offset > len(src) {
				t.Fatalf("ParseStmt(%q): offset %d outside [0, %d]", src, se.Offset, len(src))
			}
			return
		}
		rendered := s.String()
		s2, err := ParseStmt(rendered)
		if err != nil {
			t.Fatalf("ParseStmt(%q) ok but re-parse of %q failed: %v", src, rendered, err)
		}
		if got := s2.String(); got != rendered {
			t.Fatalf("round trip unstable:\n  src      %q\n  render   %q\n  rerender %q", src, rendered, got)
		}
	})
}
