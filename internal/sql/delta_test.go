package sql

import (
	"strings"
	"testing"

	"selforg/internal/bat"
	"selforg/internal/mal"
)

// freshDB builds a base-only sys.P table (empty delta bats), to be
// written through the catalog's delta-write API.
func freshDB() *mal.MemCatalog {
	cat := mal.NewMemCatalog()
	cat.AddTable(&mal.Table{
		Schema: "sys", Name: "P",
		Cols: map[string]*mal.Column{
			"ra":    {Base: bat.New(bat.NewDenseOids(0, 4), bat.NewDbls([]float64{204.0, 205.105, 205.11, 100.0}))},
			"objid": {Base: bat.New(bat.NewDenseOids(0, 4), bat.NewLngs([]int64{1000, 1001, 1002, 1003}))},
		},
	})
	return cat
}

func runPlan(t *testing.T, cat *mal.MemCatalog, src string, lo, hi float64) *mal.ResultSet {
	t.Helper()
	_, prog, err := Compile(src, cat)
	if err != nil {
		t.Fatal(err)
	}
	in := mal.NewInterp(cat, nil)
	var out strings.Builder
	in.Out = &out
	ctx, err := in.Run(prog, lo, hi)
	if err != nil {
		t.Fatalf("%v\nplan:\n%s", err, prog.String())
	}
	if len(ctx.Results) != 1 {
		t.Fatalf("results = %d\n%s", len(ctx.Results), out.String())
	}
	return ctx.Results[0]
}

func objids(rs *mal.ResultSet) map[int64]bool {
	got := map[int64]bool{}
	col := rs.Column(0)
	for i := 0; i < col.Len(); i++ {
		got[col.Tail.Get(i).AsLng()] = true
	}
	return got
}

// TestDeltaChainSeesCatalogWrites drives the compiled Figure-1 plan
// against delta bats populated through the catalog write API: the same
// cached plan reflects inserts, updates and deletes with no
// recompilation — the §2 delta chain over real data.
func TestDeltaChainSeesCatalogWrites(t *testing.T) {
	cat := freshDB()
	const q = "SELECT objid FROM P WHERE ra BETWEEN 205.1 AND 205.12"

	// Baseline: only oid 1 (205.105) and oid 2 (205.11) qualify.
	got := objids(runPlan(t, cat, q, 205.1, 205.12))
	if len(got) != 2 || !got[1001] || !got[1002] {
		t.Fatalf("baseline objids = %v", got)
	}

	// Insert a qualifying row: lands in the insert bats (slot 1).
	oid, err := cat.InsertRow("sys", "P", map[string]bat.Value{
		"ra": bat.Dbl(205.115), "objid": bat.Lng(1004),
	})
	if err != nil {
		t.Fatal(err)
	}
	if oid != 4 {
		t.Fatalf("assigned oid = %d, want 4", oid)
	}
	got = objids(runPlan(t, cat, q, 205.1, 205.12))
	if len(got) != 3 || !got[1004] {
		t.Fatalf("after insert: objids = %v", got)
	}

	// Update oid 2 out of the range: upserts into the update bat
	// (slot 2); kdifference masks the old value, kunion brings the new.
	if err := cat.UpdateRow("sys", "P", 2, "ra", bat.Dbl(210.0)); err != nil {
		t.Fatal(err)
	}
	got = objids(runPlan(t, cat, q, 205.1, 205.12))
	if len(got) != 2 || got[1002] {
		t.Fatalf("after update: objids = %v", got)
	}
	// Update it again, back into range: the upsert must replace, not
	// duplicate (kunion would emit the row twice otherwise).
	if err := cat.UpdateRow("sys", "P", 2, "ra", bat.Dbl(205.101)); err != nil {
		t.Fatal(err)
	}
	rs := runPlan(t, cat, q, 205.1, 205.12)
	if rs.NumRows() != 3 {
		t.Fatalf("after re-update: %d rows, want 3", rs.NumRows())
	}

	// Delete the inserted row: the dbat masks base and inserts alike.
	if err := cat.DeleteRow("sys", "P", 4); err != nil {
		t.Fatal(err)
	}
	got = objids(runPlan(t, cat, q, 205.1, 205.12))
	if len(got) != 2 || got[1004] {
		t.Fatalf("after delete: objids = %v", got)
	}
}

// TestDeltaCatalogWriteValidation checks the write API's guards.
func TestDeltaCatalogWriteValidation(t *testing.T) {
	cat := freshDB()
	if _, err := cat.InsertRow("sys", "P", map[string]bat.Value{"ra": bat.Dbl(1)}); err == nil {
		t.Fatal("insert with missing column accepted")
	}
	if _, err := cat.InsertRow("sys", "P", map[string]bat.Value{
		"ra": bat.Dbl(1), "objid": bat.Lng(1), "bogus": bat.Lng(0),
	}); err == nil {
		t.Fatal("insert with unknown column accepted")
	}
	if _, err := cat.InsertRow("sys", "P", map[string]bat.Value{
		"ra": bat.Lng(1), "objid": bat.Lng(1), // ra is dbl
	}); err == nil {
		t.Fatal("insert with wrong-kinded value accepted")
	}
	if err := cat.UpdateRow("sys", "P", 0, "ra", bat.Lng(1)); err == nil {
		t.Fatal("update with wrong-kinded value accepted")
	}
	if err := cat.UpdateRow("sys", "P", 99, "ra", bat.Dbl(1)); err == nil {
		t.Fatal("update of unknown row accepted")
	}
	if err := cat.DeleteRow("sys", "P", 99); err == nil {
		t.Fatal("delete of unknown row accepted")
	}
	if err := cat.DeleteRow("sys", "P", 1); err != nil {
		t.Fatal(err)
	}
	if err := cat.DeleteRow("sys", "P", 1); err != nil {
		t.Fatal("re-delete must be idempotent")
	}
	if err := cat.UpdateRow("sys", "P", 1, "ra", bat.Dbl(2)); err == nil {
		t.Fatal("update of deleted row accepted")
	}
}
