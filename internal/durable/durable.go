// Package durable implements the group-commit protocol over the
// per-shard write-ahead logs of internal/wal: concurrent writers submit
// single operations, one committer goroutine gathers them into batches,
// appends each batch's per-shard slices to the shard logs, fsyncs,
// applies the whole batch to the column under one version bump and one
// snapshot publication per touched shard, and only then acknowledges
// every writer in the batch. Recovery replays the logs onto the last
// checkpoint; checkpoints piggy-back on delta merge-back (when the
// write store drains into the base, the logs behind it become
// redundant) and truncate the logs.
//
// # Commit protocol
//
//  1. Gather: the committer takes one queued request, then
//     opportunistically drains everything already waiting (and, when a
//     group window is configured, keeps gathering until it elapses), up
//     to the batch cap.
//  2. Log: the batch gets the next commit seq; each shard's slice of
//     the batch is appended to that shard's log under the seq.
//  3. Sync: every touched log is fsynced (when Fsync is on; off trades
//     machine-crash durability for speed — process crashes, including
//     SIGKILL, still lose nothing because the appends reached the
//     kernel before anyone was acked).
//  4. Apply: the whole batch is applied through the column's batch
//     write path — one version bump, one snapshot publication per
//     touched shard (the write-amplification fix this subsystem rides
//     on).
//  5. Ack: every writer in the batch gets its per-op result. An append
//     or sync error fails the whole batch WITHOUT applying it — no
//     write is ever visible unless it is logged. The failed batch's
//     frames are truncated back out of the touched logs and its seq is
//     burned (never reused), so a nacked batch can neither replay as
//     committed nor shadow a later acknowledged batch at the same seq.
//
// # Halting
//
// Two failures leave the logs and the live column irreconcilable
// without recovery: a durably-logged batch the column's apply side then
// rejected (the batch will replay on reopen, but the in-memory state
// diverged), and a failed batch whose frame rollback itself failed
// (frames that were never acknowledged sit in the logs). In both cases
// the committer halts — every subsequent submit and checkpoint returns
// the halting error — instead of compounding the divergence or letting
// a checkpoint capture it. Reopen (or Column.Recover) converges on the
// logged state.
//
// # Checkpoint atomicity
//
// A checkpoint spans every shard but cannot be written as one atomic
// unit, so it is committed in two phases: per-shard capture files are
// written under a fresh generation number, then a single manifest file
// naming (generation, seq) is atomically renamed into place, and only
// then do the logs rotate. Recovery loads exactly the manifest's
// generation — every shard checkpointed at the SAME seq — so a
// cross-shard update, logged only in the old value's shard, can never
// fall between a fresh checkpoint in one shard and a stale one in
// another.
//
// # Cross-shard barrier
//
// A cross-shard update (old and new owned by different shards)
// decomposes into delete+insert on two shard clocks; batching it with
// other ops would let replay reorder validation against its neighbors.
// The committer therefore isolates every cross-shard op as a singleton
// batch (its own seq), which makes per-shard replay of a seq
// order-free: within one seq, ops of different shards commute.
package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"selforg/internal/delta"
	"selforg/internal/domain"
	"selforg/internal/obs"
	"selforg/internal/wal"
)

// Config shapes the committer.
type Config struct {
	// Dir holds the per-shard logs (shard-NNNN.wal) and checkpoints
	// (shard-NNNN.ckpt).
	Dir string
	// Fsync syncs every commit to stable storage before acking. Off,
	// acknowledged writes survive process death (SIGKILL included) but
	// not machine death.
	Fsync bool
	// GroupWindow is how long the committer keeps a batch open waiting
	// for more writers after the first one arrives. Zero means purely
	// opportunistic batching: whatever is queued when the committer
	// turns around joins the batch, nobody waits.
	GroupWindow time.Duration
	// MaxBatch caps ops per batch (default 1024).
	MaxBatch int
}

// Router maps ops onto shards — the partitioning knowledge the facade
// owns (extent, shard ranges).
type Router interface {
	// Shards returns the shard count (log file fan-out).
	Shards() int
	// ShardOf returns the index of the shard whose log should carry op:
	// the owner of the written value (for updates, of the old value),
	// shard 0 for out-of-extent ops (whose refusal the shard replays
	// deterministically).
	ShardOf(op delta.Op) int
	// CrossShard reports whether op is a cross-shard update — the
	// commit barrier.
	CrossShard(op delta.Op) bool
}

// Target is the apply side: the column the committer writes through.
type Target interface {
	// ApplyOps applies one committed batch, reporting per-op acceptance.
	// The error reports an apply-side failure (merge-back), not per-op
	// refusals.
	ApplyOps(ops []delta.Op) ([]bool, error)
	// MergeCount returns the number of completed delta merge-backs; the
	// committer checkpoints when it advances (the drained log prefix
	// just became redundant).
	MergeCount() int64
	// CaptureShard returns shard i's full logical content (base plus
	// visible delta). Called between batches, so the capture is exactly
	// the content as of the last committed seq.
	CaptureShard(i int) []domain.Value
}

// Recovered is the durable state found on disk at Open time: the
// per-shard checkpoint contents plus the WAL batches to replay on top,
// merged into global commit order and filtered to seq strictly above
// each shard's checkpoint.
type Recovered struct {
	// CkptValues[i] is shard i's checkpointed content; HasCkpt[i]
	// reports whether a checkpoint existed (absent = the shard starts
	// from the column's initial build).
	CkptValues [][]domain.Value
	HasCkpt    []bool
	// Batches is the replay input: one entry per commit seq, ops
	// concatenated across shards (shard order — within a seq ops of
	// different shards commute by the cross-shard barrier).
	Batches []wal.Batch
	// LastSeq is the highest seq found (checkpoint or log); the
	// committer resumes at LastSeq+1.
	LastSeq uint64
}

// Empty reports whether no durable state existed — a fresh directory.
func (r *Recovered) Empty() bool {
	if r == nil {
		return true
	}
	if len(r.Batches) > 0 {
		return false
	}
	for _, h := range r.HasCkpt {
		if h {
			return false
		}
	}
	return true
}

// Stats is a point-in-time snapshot of the committer's counters.
type Stats struct {
	Batches     int64 // committed groups
	Records     int64 // ops inside them
	Appends     int64 // per-shard log appends (≥ Batches)
	Fsyncs      int64
	Bytes       int64 // WAL bytes written
	Checkpoints int64
	LastSeq     uint64
	WALSize     int64 // current total log bytes on disk
	Replayed    int64 // batches replayed by recovery
	// WriteErrors counts writes that failed inside the commit protocol
	// (append/fsync/apply failures, halted committer) — as opposed to
	// clean per-op refusals; LastError is the most recent such failure.
	WriteErrors int64
	LastError   string
}

// metrics is the resolved observability handle set (nil-safe, resolved
// once — the commit hot path never touches the registry).
type metrics struct {
	appends, fsyncs, bytes *obs.Counter
	batchRecords           *obs.Histogram
	ckpts                  *obs.Counter
	ckptSeq                *obs.Gauge
	replayed               *obs.Counter
}

// Committer owns the shard logs and the commit loop. Construct with
// Open, then Start once the column is built and recovered.
type Committer struct {
	cfg    Config
	router Router
	logs   []*wal.Log

	reqs chan *request
	stop chan struct{}
	done chan struct{}

	target  Target
	nextSeq uint64
	merges  int64  // target.MergeCount at the last checkpoint
	ckptGen uint64 // manifest-committed checkpoint generation

	// broken, once set, halts the committer: the on-disk logs and the
	// live column can no longer be reconciled without recovery (a
	// durably-logged batch the column rejected, or a failed batch whose
	// frames could not be rolled back). Every subsequent submit and
	// checkpoint fails with it. Only the commit loop touches it.
	broken error

	ob atomic.Pointer[metrics]

	// counters (atomics: Stats() reads them from any goroutine)
	nBatches, nRecords, nAppends, nFsyncs, nBytes, nCkpts, nReplayed atomic.Int64
	nErrs                                                            atomic.Int64
	lastSeq                                                          atomic.Uint64
	walSize                                                          atomic.Int64
	lastErr                                                          atomic.Pointer[string]

	// failAppend, when non-nil, injects an append fault for shard i —
	// test-only, exercised by the commit rollback path.
	failAppend func(shard int) error

	startOnce, closeOnce sync.Once
}

type request struct {
	op  delta.Op
	res chan result
	// ckpt marks an explicit checkpoint request (op unused).
	ckpt bool
}

type result struct {
	ok  bool
	err error
}

func logPath(dir string, i int) string { return filepath.Join(dir, fmt.Sprintf("shard-%04d.wal", i)) }

// ckptPath names shard i's checkpoint file under generation gen. The
// generation suffix lets a new checkpoint's shard files coexist with
// the active generation's until the manifest commits them — the
// atomicity scheme described at wal.WriteManifest.
func ckptPath(dir string, i int, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%04d.%06d.ckpt", i, gen))
}

func manifestPath(dir string) string { return filepath.Join(dir, "CHECKPOINT") }

// Open creates Dir if needed, opens every shard's log (truncating torn
// tails), loads the manifest-committed checkpoint generation, and
// returns the committer plus the recovered state. The commit loop does
// NOT run yet — the caller first rebuilds its column from Recovered and
// replays Recovered.Batches, then calls Start.
func Open(cfg Config, router Router) (*Committer, *Recovered, error) {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 1024
	}
	k := router.Shards()
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, nil, err
	}
	rec := &Recovered{
		CkptValues: make([][]domain.Value, k),
		HasCkpt:    make([]bool, k),
	}
	// The manifest decides which checkpoint generation — if any — is
	// committed. Shard files from other generations are leftovers of a
	// checkpoint that crashed before its manifest rename; they are
	// swept below and must NOT be loaded: only a manifest-committed
	// generation has every shard at the same seq.
	gen, ckptSeq, hasCkpt, err := wal.ReadManifest(manifestPath(cfg.Dir))
	if err != nil {
		return nil, nil, fmt.Errorf("durable: checkpoint manifest: %w", err)
	}
	if hasCkpt && ckptSeq > rec.LastSeq {
		rec.LastSeq = ckptSeq
	}
	logs := make([]*wal.Log, k)
	bySeq := make(map[uint64][][]delta.Op) // seq -> per-shard op slices (shard order)
	closeAll := func() {
		for _, l := range logs {
			if l != nil {
				l.Close()
			}
		}
	}
	var size int64
	for i := 0; i < k; i++ {
		if hasCkpt {
			seq, vals, ok, err := wal.ReadCheckpoint(ckptPath(cfg.Dir, i, gen))
			if err != nil {
				closeAll()
				return nil, nil, fmt.Errorf("durable: shard %d checkpoint: %w", i, err)
			}
			if !ok {
				closeAll()
				return nil, nil, fmt.Errorf("%w: manifest commits generation %d but shard %d's checkpoint is missing", wal.ErrCorrupt, gen, i)
			}
			if seq != ckptSeq {
				closeAll()
				return nil, nil, fmt.Errorf("%w: shard %d checkpoint seq %d disagrees with manifest seq %d", wal.ErrCorrupt, i, seq, ckptSeq)
			}
			rec.CkptValues[i], rec.HasCkpt[i] = vals, true
		}
		l, batches, err := wal.Open(logPath(cfg.Dir, i))
		if err != nil {
			closeAll()
			return nil, nil, fmt.Errorf("durable: shard %d log: %w", i, err)
		}
		logs[i] = l
		size += l.Size()
		// Every shard filters by the SAME manifest seq (plus per-shard
		// duplicate/stale skipping), so a batch is either covered by all
		// shards' checkpoints or replayed in full — a cross-shard update,
		// logged only in the old value's shard, can never fall between a
		// fresh checkpoint in one shard and a stale one in another.
		applied := uint64(0)
		if hasCkpt {
			applied = ckptSeq
		}
		for _, b := range batches {
			if b.Seq <= applied {
				continue
			}
			applied = b.Seq
			if bySeq[b.Seq] == nil {
				bySeq[b.Seq] = make([][]delta.Op, k)
			}
			bySeq[b.Seq][i] = append(bySeq[b.Seq][i], b.Ops...)
			if b.Seq > rec.LastSeq {
				rec.LastSeq = b.Seq
			}
		}
	}
	// Sweep orphans: shard files of uncommitted generations (a crashed
	// checkpoint attempt) and stray temp files. Best effort.
	if ents, _ := filepath.Glob(filepath.Join(cfg.Dir, "shard-*.ckpt*")); ents != nil {
		active := make(map[string]bool, k)
		if hasCkpt {
			for i := 0; i < k; i++ {
				active[ckptPath(cfg.Dir, i, gen)] = true
			}
		}
		for _, p := range ents {
			if !active[p] {
				os.Remove(p)
			}
		}
	}
	seqs := make([]uint64, 0, len(bySeq))
	for s := range bySeq {
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, s := range seqs {
		var ops []delta.Op
		for i := 0; i < k; i++ {
			ops = append(ops, bySeq[s][i]...)
		}
		rec.Batches = append(rec.Batches, wal.Batch{Seq: s, Ops: ops})
	}
	c := &Committer{
		cfg:     cfg,
		router:  router,
		logs:    logs,
		reqs:    make(chan *request, 4*cfg.MaxBatch),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		nextSeq: rec.LastSeq + 1,
		ckptGen: gen,
	}
	c.lastSeq.Store(rec.LastSeq)
	c.walSize.Store(size)
	return c, rec, nil
}

// Observe resolves the committer's metric handles against reg and
// registers the WAL size gauge. Call at most once per registry.
func (c *Committer) Observe(reg *obs.Registry) {
	if reg == nil {
		c.ob.Store(nil)
		return
	}
	m := &metrics{
		appends:      reg.Counter("selforg_wal_appends_total"),
		fsyncs:       reg.Counter("selforg_wal_fsyncs_total"),
		bytes:        reg.Counter("selforg_wal_bytes_total"),
		batchRecords: reg.Histogram("selforg_wal_batch_records"),
		ckpts:        reg.Counter("selforg_checkpoints_total"),
		ckptSeq:      reg.Gauge("selforg_checkpoint_seq"),
		replayed:     reg.Counter("selforg_recovery_replayed_total"),
	}
	reg.GaugeFunc("selforg_wal_size_bytes", c.walSize.Load)
	c.ob.Store(m)
}

// CountReplayed accounts n replayed recovery batches (the facade calls
// it after driving Recovered.Batches through the column).
func (c *Committer) CountReplayed(n int) {
	c.nReplayed.Add(int64(n))
	if m := c.ob.Load(); m != nil {
		m.replayed.Add(int64(n))
	}
}

// Start hands the committer its apply target and launches the commit
// loop. The target must already reflect every recovered batch.
func (c *Committer) Start(t Target) {
	c.startOnce.Do(func() {
		c.target = t
		c.merges = t.MergeCount()
		go c.loop()
	})
}

// Submit enqueues one write and blocks until its group commit is
// durable and applied, returning the op's acceptance. It must not be
// called after Close.
func (c *Committer) Submit(op delta.Op) (bool, error) {
	r := &request{op: op, res: make(chan result, 1)}
	select {
	case c.reqs <- r:
	case <-c.stop:
		return false, fmt.Errorf("durable: committer closed")
	}
	select {
	case out := <-r.res:
		return out.ok, out.err
	case <-c.done:
		// The loop exited without acking (Close raced the submit).
		select {
		case out := <-r.res:
			return out.ok, out.err
		default:
			return false, fmt.Errorf("durable: committer closed")
		}
	}
}

// Checkpoint forces a full checkpoint: every shard's content is
// captured and written, and the logs rotate. Blocks until done.
func (c *Committer) Checkpoint() error {
	r := &request{ckpt: true, res: make(chan result, 1)}
	select {
	case c.reqs <- r:
	case <-c.stop:
		return fmt.Errorf("durable: committer closed")
	}
	select {
	case out := <-r.res:
		return out.err
	case <-c.done:
		select {
		case out := <-r.res:
			return out.err
		default:
			return fmt.Errorf("durable: committer closed")
		}
	}
}

// Stats snapshots the counters.
func (c *Committer) Stats() Stats {
	st := Stats{
		Batches:     c.nBatches.Load(),
		Records:     c.nRecords.Load(),
		Appends:     c.nAppends.Load(),
		Fsyncs:      c.nFsyncs.Load(),
		Bytes:       c.nBytes.Load(),
		Checkpoints: c.nCkpts.Load(),
		LastSeq:     c.lastSeq.Load(),
		WALSize:     c.walSize.Load(),
		Replayed:    c.nReplayed.Load(),
		WriteErrors: c.nErrs.Load(),
	}
	if s := c.lastErr.Load(); s != nil {
		st.LastError = *s
	}
	return st
}

// noteErr accounts n failed writes and records the failure — the
// observable trail for Delete/Update callers whose public signature
// collapses errors into a boolean.
func (c *Committer) noteErr(err error, n int) {
	c.nErrs.Add(int64(n))
	s := err.Error()
	c.lastErr.Store(&s)
}

// Close stops the commit loop (failing writers still queued), syncs and
// closes every log. Safe to call more than once.
func (c *Committer) Close() error {
	var err error
	c.closeOnce.Do(func() {
		close(c.stop)
		if c.target != nil {
			<-c.done // loop drains its current batch, then exits
		}
		for _, l := range c.logs {
			if l == nil {
				continue
			}
			if serr := l.Sync(); serr != nil && err == nil {
				err = serr
			}
			if cerr := l.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
	})
	return err
}

// loop is the committer goroutine: gather → log → sync → apply → ack.
func (c *Committer) loop() {
	defer close(c.done)
	for {
		select {
		case <-c.stop:
			c.failQueued()
			return
		case r := <-c.reqs:
			if r.ckpt {
				c.serveCheckpoint(r)
				continue
			}
			c.gatherAndCommit(r)
		}
	}
}

// failQueued drains and fails everything still queued at shutdown.
func (c *Committer) failQueued() {
	for {
		select {
		case r := <-c.reqs:
			r.res <- result{err: fmt.Errorf("durable: committer closed")}
		default:
			return
		}
	}
}

// gatherAndCommit builds one batch starting from first and commits it.
// Cross-shard ops and checkpoint requests close the batch: the batch
// commits first, then they run in their own turn.
func (c *Committer) gatherAndCommit(first *request) {
	if c.router.CrossShard(first.op) {
		c.commit([]*request{first})
		return
	}
	batch := []*request{first}
	var after *request // barrier op to run once the batch committed
	var yielded bool
	var timer *time.Timer
	var window <-chan time.Time
	if c.cfg.GroupWindow > 0 {
		timer = time.NewTimer(c.cfg.GroupWindow)
		window = timer.C
		defer timer.Stop()
	}
gather:
	for len(batch) < c.cfg.MaxBatch {
		select {
		case r := <-c.reqs:
			if r.ckpt || c.router.CrossShard(r.op) {
				after = r
				break gather
			}
			batch = append(batch, r)
		case <-window:
			break gather
		default:
			if window == nil {
				// Opportunistic: nothing queued. Yield once before
				// committing — on a single-CPU scheduler the committer
				// otherwise always outruns the writers and every batch
				// degenerates to a singleton; one yield lets writers
				// already runnable enqueue, at no timed wait.
				if !yielded {
					yielded = true
					runtime.Gosched()
					continue
				}
				break gather
			}
			// A window is open: block until a writer, the window, or
			// shutdown ends the gather.
			select {
			case r := <-c.reqs:
				if r.ckpt || c.router.CrossShard(r.op) {
					after = r
					break gather
				}
				batch = append(batch, r)
			case <-window:
				break gather
			case <-c.stop:
				break gather
			}
		}
	}
	c.commit(batch)
	if after != nil {
		if after.ckpt {
			c.serveCheckpoint(after)
		} else {
			c.commit([]*request{after})
		}
	}
}

// serveCheckpoint answers one explicit checkpoint request; a halted
// committer refuses rather than capturing diverged state.
func (c *Committer) serveCheckpoint(r *request) {
	if c.broken != nil {
		r.res <- result{err: c.broken}
		return
	}
	r.res <- result{err: c.checkpoint()}
}

// commit runs steps 2–5 of the protocol for one batch.
func (c *Committer) commit(batch []*request) {
	fail := func(err error) {
		c.noteErr(err, len(batch))
		for _, r := range batch {
			r.res <- result{err: err}
		}
	}
	if c.broken != nil {
		fail(c.broken)
		return
	}
	seq := c.nextSeq
	// The seq is burned no matter how this batch ends. A failed batch
	// may leave frames in some logs (the rollback below can itself
	// fail), and recovery keeps the FIRST frame it sees at a seq — so a
	// later acknowledged batch reusing the seq would be silently
	// shadowed by the nacked one. Never share a seq.
	c.nextSeq++
	ops := make([]delta.Op, len(batch))
	perShard := make(map[int][]delta.Op)
	for i, r := range batch {
		ops[i] = r.op
		s := c.router.ShardOf(r.op)
		perShard[s] = append(perShard[s], r.op)
	}
	shards := make([]int, 0, len(perShard))
	preSize := make(map[int]int64, len(perShard))
	for s := range perShard {
		shards = append(shards, s)
		preSize[s] = c.logs[s].Size()
	}
	sort.Ints(shards)
	// rollback cuts the frames this batch already wrote out of the
	// touched logs, so the nacked batch cannot replay as committed on
	// recovery. If even that fails, the log's content no longer matches
	// what was acknowledged — halt the committer; the writers' outcome
	// is indeterminate until recovery replays the logs.
	rollback := func(cause error) {
		for _, s := range shards {
			if terr := c.logs[s].TruncateTo(preSize[s]); terr != nil {
				c.broken = fmt.Errorf("durable: halted: batch seq %d failed (%v) and shard %d log rollback failed: %v; outcome indeterminate until recovery", seq, cause, s, terr)
				fail(c.broken)
				return
			}
		}
		fail(cause)
	}
	var wrote int64
	for _, s := range shards {
		var n int64
		var err error
		if c.failAppend != nil {
			err = c.failAppend(s)
		}
		if err == nil {
			n, err = c.logs[s].AppendBatch(seq, perShard[s])
		}
		if err != nil {
			rollback(fmt.Errorf("durable: append shard %d: %w", s, err))
			return
		}
		wrote += n
	}
	if c.cfg.Fsync {
		for _, s := range shards {
			if err := c.logs[s].Sync(); err != nil {
				rollback(fmt.Errorf("durable: fsync shard %d: %w", s, err))
				return
			}
			c.nFsyncs.Add(1)
		}
	}
	c.nAppends.Add(int64(len(shards)))
	c.lastSeq.Store(seq)
	c.nBytes.Add(wrote)
	c.walSize.Add(wrote)
	c.nBatches.Add(1)
	c.nRecords.Add(int64(len(ops)))
	if m := c.ob.Load(); m != nil {
		m.appends.Add(int64(len(shards)))
		m.bytes.Add(wrote)
		m.batchRecords.Observe(int64(len(ops)))
		if c.cfg.Fsync {
			m.fsyncs.Add(int64(len(shards)))
		}
	}
	res, err := c.target.ApplyOps(ops)
	if err != nil {
		// The batch is durably logged and WILL replay on recovery, but
		// the live column rejected it: memory and log have diverged.
		// Halt — committing further batches would compound the
		// divergence, and a piggy-backed checkpoint would capture the
		// diverged state and drop the logged batch for good. The writers
		// get the halt error (the write is durable and resurfaces after
		// recovery), not a clean refusal.
		c.broken = fmt.Errorf("durable: halted: batch seq %d durably logged but apply failed: %v; reopen or Recover to converge", seq, err)
		fail(c.broken)
		return
	}
	// Checkpoint piggy-back: a merge-back just drained the delta into
	// the base — the logs up to this seq are redundant, capture and
	// truncate. Runs before the acks so a writer that observes its ack
	// also observes the checkpoint its merge produced.
	if m := c.target.MergeCount(); m != c.merges {
		if cerr := c.checkpoint(); cerr == nil {
			c.merges = m
		}
	}
	for i, r := range batch {
		r.res <- result{ok: i < len(res) && res[i]}
	}
}

// checkpoint captures every shard's content as of the last committed
// seq and commits it atomically across shards: every shard's capture
// is written under the NEXT checkpoint generation, the manifest — one
// atomically-renamed file naming (generation, seq) — commits them all
// at once, and only then do the logs rotate. A crash or error anywhere
// before the manifest rename leaves the previous generation fully
// active with unrotated logs (full replay, nothing lost, the new-gen
// files are swept as orphans on reopen); after the rename every shard
// is checkpointed at the SAME seq, so replay's seq filter is uniform
// and a cross-shard update — logged only in the old value's shard —
// can never fall between a fresh checkpoint in one shard and a stale
// one in another. Runs inside the commit loop, so no batch is in
// flight.
func (c *Committer) checkpoint() error {
	seq := c.nextSeq - 1
	gen := c.ckptGen + 1
	for i := range c.logs {
		vals := c.target.CaptureShard(i)
		if err := wal.WriteCheckpoint(ckptPath(c.cfg.Dir, i, gen), seq, vals); err != nil {
			return fmt.Errorf("durable: checkpoint shard %d: %w", i, err)
		}
	}
	if err := wal.WriteManifest(manifestPath(c.cfg.Dir), gen, seq); err != nil {
		return fmt.Errorf("durable: checkpoint manifest: %w", err)
	}
	prev := c.ckptGen
	c.ckptGen = gen
	for i, l := range c.logs {
		size := l.Size()
		if err := l.Rotate(); err != nil {
			// The checkpoint is committed (replay skips seq ≤ its seq,
			// so recovery stays correct) but this log's on-disk state no
			// longer matches the committer's bookkeeping — halt rather
			// than keep appending to a file in an unknown state.
			c.broken = fmt.Errorf("durable: halted: rotate shard %d log after checkpoint: %v", i, err)
			return c.broken
		}
		c.walSize.Add(-size)
	}
	for i := range c.logs {
		os.Remove(ckptPath(c.cfg.Dir, i, prev)) // now-redundant previous generation
	}
	c.nCkpts.Add(1)
	if m := c.ob.Load(); m != nil {
		m.ckpts.Inc()
		m.ckptSeq.Set(int64(seq))
	}
	return nil
}
