package durable

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"selforg/internal/delta"
	"selforg/internal/domain"
	"selforg/internal/wal"
)

// fakeTarget applies ops to an in-memory multiset and records each
// batch, standing in for the column.
type fakeTarget struct {
	mu      sync.Mutex
	content map[domain.Value]int
	batches [][]delta.Op
	merges  int64
	shards  int
	width   domain.Value // per-shard domain width for CaptureShard
	// failApply, when set, fails the next ApplyOps (one-shot) without
	// touching the content — the apply-side fault.
	failApply error
}

func newFakeTarget(shards int, width domain.Value) *fakeTarget {
	return &fakeTarget{content: map[domain.Value]int{}, shards: shards, width: width}
}

func (f *fakeTarget) ApplyOps(ops []delta.Op) ([]bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failApply != nil {
		err := f.failApply
		f.failApply = nil
		return nil, err
	}
	f.batches = append(f.batches, append([]delta.Op(nil), ops...))
	res := make([]bool, len(ops))
	for i, op := range ops {
		switch op.Kind {
		case delta.OpInsert:
			f.content[op.V]++
			res[i] = true
		case delta.OpDelete:
			if f.content[op.V] > 0 {
				f.content[op.V]--
				res[i] = true
			}
		case delta.OpUpdate:
			if f.content[op.V] > 0 {
				f.content[op.V]--
				f.content[op.New]++
				res[i] = true
			}
		}
	}
	return res, nil
}

func (f *fakeTarget) MergeCount() int64 { f.mu.Lock(); defer f.mu.Unlock(); return f.merges }

func (f *fakeTarget) bumpMerges() { f.mu.Lock(); f.merges++; f.mu.Unlock() }

func (f *fakeTarget) failNextApply(err error) { f.mu.Lock(); f.failApply = err; f.mu.Unlock() }

func (f *fakeTarget) batchCount() int { f.mu.Lock(); defer f.mu.Unlock(); return len(f.batches) }

func (f *fakeTarget) CaptureShard(i int) []domain.Value {
	f.mu.Lock()
	defer f.mu.Unlock()
	lo, hi := f.width*domain.Value(i), f.width*domain.Value(i+1)
	var out []domain.Value
	for v, n := range f.content {
		if v >= lo && v < hi {
			for k := 0; k < n; k++ {
				out = append(out, v)
			}
		}
	}
	return out
}

func (f *fakeTarget) snapshot() map[domain.Value]int {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[domain.Value]int, len(f.content))
	for v, n := range f.content {
		out[v] = n
	}
	return out
}

// fakeRouter shards [0, shards*width) by width.
type fakeRouter struct {
	shards int
	width  domain.Value
}

func (r fakeRouter) Shards() int { return r.shards }
func (r fakeRouter) ShardOf(op delta.Op) int {
	i := int(op.V / r.width)
	if i < 0 || i >= r.shards {
		return 0
	}
	return i
}
func (r fakeRouter) CrossShard(op delta.Op) bool {
	return op.Kind == delta.OpUpdate && r.ShardOf(op) != r.ShardOf(delta.Op{V: op.New})
}

// TestGroupCommitBatchesConcurrentWriters: many writers submit at once;
// every ack is correct, the full content lands, and the committer forms
// real groups (fewer batches than ops).
func TestGroupCommitBatchesConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	router := fakeRouter{shards: 2, width: 1000}
	c, rec, err := Open(Config{Dir: dir}, router)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Empty() {
		t.Fatalf("fresh dir reported recovered state: %+v", rec)
	}
	target := newFakeTarget(2, 1000)
	c.Start(target)
	defer c.Close()

	const writers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				v := domain.Value(w*per + i)
				ok, err := c.Submit(delta.Op{Kind: delta.OpInsert, V: v})
				if err != nil || !ok {
					t.Errorf("insert %d: ok=%v err=%v", v, ok, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	content := target.snapshot()
	for v := 0; v < writers*per; v++ {
		if content[domain.Value(v)] != 1 {
			t.Fatalf("value %d count %d after commit", v, content[domain.Value(v)])
		}
	}
	st := c.Stats()
	if st.Records != writers*per {
		t.Fatalf("records %d, want %d", st.Records, writers*per)
	}
	if st.Batches >= st.Records {
		t.Fatalf("no batching: %d batches for %d records", st.Batches, st.Records)
	}
	if st.Bytes <= 0 || st.WALSize <= 0 {
		t.Fatalf("no wal bytes accounted: %+v", st)
	}
}

// TestRecoveredReplayMatches: commit a workload, close, reopen — the
// recovered batches replayed into a fresh target reproduce the content.
func TestRecoveredReplayMatches(t *testing.T) {
	dir := t.TempDir()
	router := fakeRouter{shards: 2, width: 1000}
	c, _, err := Open(Config{Dir: dir, Fsync: true}, router)
	if err != nil {
		t.Fatal(err)
	}
	target := newFakeTarget(2, 1000)
	c.Start(target)
	for i := 0; i < 40; i++ {
		if _, err := c.Submit(delta.Op{Kind: delta.OpInsert, V: domain.Value(i * 50)}); err != nil {
			t.Fatal(err)
		}
	}
	if ok, err := c.Submit(delta.Op{Kind: delta.OpUpdate, V: 0, New: 1500}); err != nil || !ok {
		t.Fatalf("cross-shard update: ok=%v err=%v", ok, err)
	}
	want := target.snapshot()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2, rec, err := Open(Config{Dir: dir}, router)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if rec.Empty() {
		t.Fatal("no recovered state after workload")
	}
	fresh := newFakeTarget(2, 1000)
	for _, b := range rec.Batches {
		if _, err := fresh.ApplyOps(b.Ops); err != nil {
			t.Fatal(err)
		}
	}
	got := fresh.snapshot()
	for v, n := range want {
		if n != 0 && got[v] != n {
			t.Fatalf("replayed content[%d]=%d, want %d", v, got[v], n)
		}
	}
	// The cross-shard update rode in its own seq.
	last := rec.Batches[len(rec.Batches)-1]
	if len(last.Ops) != 1 || last.Ops[0].Kind != delta.OpUpdate {
		t.Fatalf("cross-shard update not a singleton batch: %+v", last)
	}
}

// TestCheckpointTruncatesAndSkipsReplay: after a checkpoint the logs
// are empty, the checkpoint carries the content, and replay resumes
// from the checkpoint seq (pre-checkpoint batches never reappear).
func TestCheckpointTruncatesAndSkipsReplay(t *testing.T) {
	dir := t.TempDir()
	router := fakeRouter{shards: 2, width: 1000}
	c, _, err := Open(Config{Dir: dir}, router)
	if err != nil {
		t.Fatal(err)
	}
	target := newFakeTarget(2, 1000)
	c.Start(target)
	for i := 0; i < 10; i++ {
		if _, err := c.Submit(delta.Op{Kind: delta.OpInsert, V: domain.Value(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Checkpoints != 1 || st.WALSize != 0 {
		t.Fatalf("post-checkpoint stats: %+v", st)
	}
	// Two more writes land in the (now empty) logs.
	for i := 10; i < 12; i++ {
		if _, err := c.Submit(delta.Op{Kind: delta.OpInsert, V: domain.Value(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2, rec, err := Open(Config{Dir: dir}, router)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if !rec.HasCkpt[0] || !rec.HasCkpt[1] {
		t.Fatalf("checkpoints missing: %+v", rec.HasCkpt)
	}
	if len(rec.CkptValues[0]) != 10 {
		t.Fatalf("shard 0 checkpoint carries %d values, want 10", len(rec.CkptValues[0]))
	}
	if len(rec.Batches) != 2 {
		t.Fatalf("replay has %d batches, want 2 post-checkpoint ones", len(rec.Batches))
	}
	for _, b := range rec.Batches {
		if b.Ops[0].V < 10 {
			t.Fatalf("pre-checkpoint batch resurfaced: %+v", b)
		}
	}
}

// TestCheckpointPiggybacksOnMerge: when the target reports a completed
// merge-back, the very next commit triggers a checkpoint.
func TestCheckpointPiggybacksOnMerge(t *testing.T) {
	dir := t.TempDir()
	router := fakeRouter{shards: 1, width: 1 << 40}
	c, _, err := Open(Config{Dir: dir}, router)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	target := newFakeTarget(1, 1<<40)
	c.Start(target)
	if _, err := c.Submit(delta.Op{Kind: delta.OpInsert, V: 1}); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Checkpoints != 0 {
		t.Fatalf("checkpoint before any merge: %+v", st)
	}
	target.bumpMerges()
	if _, err := c.Submit(delta.Op{Kind: delta.OpInsert, V: 2}); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Checkpoints != 1 {
		t.Fatalf("merge did not trigger checkpoint: %+v", st)
	}
}

// TestTornTailDiscardedOnOpen: bytes of a torn frame appended to a
// shard log vanish on reopen; intact batches survive.
func TestTornTailDiscardedOnOpen(t *testing.T) {
	dir := t.TempDir()
	router := fakeRouter{shards: 1, width: 1 << 40}
	c, _, err := Open(Config{Dir: dir}, router)
	if err != nil {
		t.Fatal(err)
	}
	target := newFakeTarget(1, 1<<40)
	c.Start(target)
	for i := 0; i < 5; i++ {
		if _, err := c.Submit(delta.Op{Kind: delta.OpInsert, V: domain.Value(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a torn frame at the tail.
	path := filepath.Join(dir, "shard-0000.wal")
	torn := wal.AppendFrame(nil, 99, []delta.Op{{Kind: delta.OpInsert, V: 42}})
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn[:len(torn)-4]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	c2, rec, err := Open(Config{Dir: dir}, router)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	var n int
	for _, b := range rec.Batches {
		n += len(b.Ops)
		for _, op := range b.Ops {
			if op.V == 42 {
				t.Fatal("torn frame replayed")
			}
		}
	}
	if n != 5 {
		t.Fatalf("replayed %d ops, want 5", n)
	}
	if rec.LastSeq >= 99 {
		t.Fatalf("torn seq leaked into LastSeq %d", rec.LastSeq)
	}
}

// TestFailedBatchRollsBackAndBurnsSeq: an append fault on one shard
// nacks the whole batch, rolls the already-appended frames back out of
// the other shards' logs, and burns the batch's seq — so recovery sees
// neither the nacked ops nor a later acknowledged batch shadowed under
// a reused seq. The committer itself stays healthy.
func TestFailedBatchRollsBackAndBurnsSeq(t *testing.T) {
	dir := t.TempDir()
	router := fakeRouter{shards: 2, width: 1000}
	c, _, err := Open(Config{Dir: dir}, router)
	if err != nil {
		t.Fatal(err)
	}
	c.failAppend = func(s int) error {
		if s == 1 {
			return errors.New("injected append fault")
		}
		return nil
	}
	target := newFakeTarget(2, 1000)
	// Queue one op per shard before the loop starts, so both land in a
	// single batch: shard 0's frame is appended first (shard order is
	// deterministic), then shard 1's append faults.
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i, v := range []domain.Value{5, 1500} {
		wg.Add(1)
		go func(i int, v domain.Value) {
			defer wg.Done()
			_, errs[i] = c.Submit(delta.Op{Kind: delta.OpInsert, V: v})
		}(i, v)
	}
	for len(c.reqs) < 2 {
		time.Sleep(time.Millisecond)
	}
	c.Start(target)
	wg.Wait()
	for i, err := range errs {
		if err == nil || !strings.Contains(err.Error(), "append shard 1") {
			t.Fatalf("writer %d: err=%v, want the append fault", i, err)
		}
	}
	if n := target.batchCount(); n != 0 {
		t.Fatalf("failed batch applied: %d batches", n)
	}
	// The committer is not halted: the next write (shard 0 only)
	// commits, and must not share the burned seq.
	if ok, err := c.Submit(delta.Op{Kind: delta.OpInsert, V: 7}); err != nil || !ok {
		t.Fatalf("post-failure insert: ok=%v err=%v", ok, err)
	}
	st := c.Stats()
	if st.WriteErrors != 2 || !strings.Contains(st.LastError, "append shard 1") {
		t.Fatalf("failure not surfaced in stats: %+v", st)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	_, rec, err := Open(Config{Dir: dir}, router)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Batches) != 1 {
		t.Fatalf("recovered %d batches, want only the acknowledged one: %+v", len(rec.Batches), rec.Batches)
	}
	b := rec.Batches[0]
	if len(b.Ops) != 1 || b.Ops[0].V != 7 {
		t.Fatalf("recovered batch carries %+v, want the acknowledged insert 7", b.Ops)
	}
	if b.Seq != 2 {
		t.Fatalf("acknowledged batch at seq %d, want 2 (seq 1 burned by the failed batch)", b.Seq)
	}
}

// TestApplyErrorHaltsCommitter: a batch that is durably logged but
// rejected by the apply side halts the committer — writers get the
// halt error (not a clean refusal), nothing further commits or
// checkpoints, and reopening replays the logged batch so log and state
// converge.
func TestApplyErrorHaltsCommitter(t *testing.T) {
	dir := t.TempDir()
	router := fakeRouter{shards: 1, width: 1 << 40}
	c, _, err := Open(Config{Dir: dir}, router)
	if err != nil {
		t.Fatal(err)
	}
	target := newFakeTarget(1, 1<<40)
	c.Start(target)
	if ok, err := c.Submit(delta.Op{Kind: delta.OpInsert, V: 1}); err != nil || !ok {
		t.Fatalf("insert 1: ok=%v err=%v", ok, err)
	}
	target.failNextApply(errors.New("apply boom"))
	if _, err := c.Submit(delta.Op{Kind: delta.OpInsert, V: 2}); err == nil || !strings.Contains(err.Error(), "halted") {
		t.Fatalf("apply fault returned %v, want halt", err)
	}
	// Halted: later writes and checkpoints refuse without touching the
	// logs or the target.
	if _, err := c.Submit(delta.Op{Kind: delta.OpInsert, V: 3}); err == nil || !strings.Contains(err.Error(), "halted") {
		t.Fatalf("post-halt submit returned %v", err)
	}
	if err := c.Checkpoint(); err == nil || !strings.Contains(err.Error(), "halted") {
		t.Fatalf("post-halt checkpoint returned %v", err)
	}
	if n := target.batchCount(); n != 1 {
		t.Fatalf("target saw %d batches after halt, want 1", n)
	}
	if st := c.Stats(); st.WriteErrors < 2 || st.LastError == "" {
		t.Fatalf("halt not surfaced in stats: %+v", st)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// The rejected batch was durably logged: recovery replays it (the
	// halt error told the writer its outcome was indeterminate). The
	// never-logged post-halt insert 3 does not reappear.
	_, rec, err := Open(Config{Dir: dir}, router)
	if err != nil {
		t.Fatal(err)
	}
	var vals []domain.Value
	for _, b := range rec.Batches {
		for _, op := range b.Ops {
			vals = append(vals, op.V)
		}
	}
	if len(vals) != 2 || vals[0] != 1 || vals[1] != 2 {
		t.Fatalf("recovered ops %v, want [1 2]", vals)
	}
}

// TestCheckpointCrashBeforeManifestRecovers: a checkpoint that dies
// after writing some shards' capture files but before the manifest
// rename leaves the previous generation fully active — recovery (with a
// cross-shard update in the window, the case a per-shard checkpoint
// protocol loses) reproduces the exact committed content and sweeps the
// orphaned files.
func TestCheckpointCrashBeforeManifestRecovers(t *testing.T) {
	dir := t.TempDir()
	router := fakeRouter{shards: 2, width: 1000}
	c, _, err := Open(Config{Dir: dir}, router)
	if err != nil {
		t.Fatal(err)
	}
	target := newFakeTarget(2, 1000)
	c.Start(target)
	for i := 0; i < 10; i++ {
		if _, err := c.Submit(delta.Op{Kind: delta.OpInsert, V: domain.Value(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Checkpoint(); err != nil { // generation 1 commits
		t.Fatal(err)
	}
	// Post-checkpoint window: writes on both shards plus a cross-shard
	// update, which is logged only in the old value's (shard 0's) log.
	for _, v := range []domain.Value{500, 1800} {
		if _, err := c.Submit(delta.Op{Kind: delta.OpInsert, V: v}); err != nil {
			t.Fatal(err)
		}
	}
	if ok, err := c.Submit(delta.Op{Kind: delta.OpUpdate, V: 3, New: 1900}); err != nil || !ok {
		t.Fatalf("cross-shard update: ok=%v err=%v", ok, err)
	}
	want := target.snapshot()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate generation 2 crashing mid-write: shard 0's capture file
	// exists (with a seq that would wrongly skip the whole window were
	// it loaded), shard 1's does not, and the manifest was never
	// renamed.
	if err := wal.WriteCheckpoint(ckptPath(dir, 0, 2), 999, nil); err != nil {
		t.Fatal(err)
	}

	_, rec, err := Open(Config{Dir: dir}, router)
	if err != nil {
		t.Fatal(err)
	}
	got := newFakeTarget(2, 1000)
	for _, vals := range rec.CkptValues {
		for _, v := range vals {
			got.content[v]++
		}
	}
	for _, b := range rec.Batches {
		if _, err := got.ApplyOps(b.Ops); err != nil {
			t.Fatal(err)
		}
	}
	for v, n := range want {
		if got.content[v] != n {
			t.Fatalf("recovered content[%d]=%d, want %d", v, got.content[v], n)
		}
	}
	for v, n := range got.content {
		if n != 0 && want[v] != n {
			t.Fatalf("recovery resurrected content[%d]=%d", v, n)
		}
	}
	if _, err := os.Stat(ckptPath(dir, 0, 2)); !os.IsNotExist(err) {
		t.Fatalf("orphaned generation-2 file not swept: %v", err)
	}
}

// TestCheckpointIntegrityFailsOpen: a corrupt manifest, or a manifest
// whose committed generation is missing a shard's file, fails Open
// loudly instead of recovering from half a checkpoint.
func TestCheckpointIntegrityFailsOpen(t *testing.T) {
	dir := t.TempDir()
	router := fakeRouter{shards: 2, width: 1000}
	c, _, err := Open(Config{Dir: dir}, router)
	if err != nil {
		t.Fatal(err)
	}
	c.Start(newFakeTarget(2, 1000))
	for _, v := range []domain.Value{1, 1001} {
		if _, err := c.Submit(delta.Op{Kind: delta.OpInsert, V: v}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	good, err := os.ReadFile(manifestPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), good...)
	bad[12] ^= 1
	if err := os.WriteFile(manifestPath(dir), bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(Config{Dir: dir}, router); err == nil {
		t.Fatal("corrupt manifest opened silently")
	}

	if err := os.WriteFile(manifestPath(dir), good, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(ckptPath(dir, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(Config{Dir: dir}, router); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("missing shard checkpoint opened: %v", err)
	}
}

// TestSubmitAfterCloseFails cleanly rejects instead of hanging.
func TestSubmitAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	router := fakeRouter{shards: 1, width: 1 << 40}
	c, _, err := Open(Config{Dir: dir}, router)
	if err != nil {
		t.Fatal(err)
	}
	c.Start(newFakeTarget(1, 1<<40))
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(delta.Op{Kind: delta.OpInsert, V: 1}); err == nil {
		t.Fatal("submit after close succeeded")
	}
}
