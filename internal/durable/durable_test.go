package durable

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"selforg/internal/delta"
	"selforg/internal/domain"
	"selforg/internal/wal"
)

// fakeTarget applies ops to an in-memory multiset and records each
// batch, standing in for the column.
type fakeTarget struct {
	mu      sync.Mutex
	content map[domain.Value]int
	batches [][]delta.Op
	merges  int64
	shards  int
	width   domain.Value // per-shard domain width for CaptureShard
}

func newFakeTarget(shards int, width domain.Value) *fakeTarget {
	return &fakeTarget{content: map[domain.Value]int{}, shards: shards, width: width}
}

func (f *fakeTarget) ApplyOps(ops []delta.Op) ([]bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.batches = append(f.batches, append([]delta.Op(nil), ops...))
	res := make([]bool, len(ops))
	for i, op := range ops {
		switch op.Kind {
		case delta.OpInsert:
			f.content[op.V]++
			res[i] = true
		case delta.OpDelete:
			if f.content[op.V] > 0 {
				f.content[op.V]--
				res[i] = true
			}
		case delta.OpUpdate:
			if f.content[op.V] > 0 {
				f.content[op.V]--
				f.content[op.New]++
				res[i] = true
			}
		}
	}
	return res, nil
}

func (f *fakeTarget) MergeCount() int64 { f.mu.Lock(); defer f.mu.Unlock(); return f.merges }

func (f *fakeTarget) bumpMerges() { f.mu.Lock(); f.merges++; f.mu.Unlock() }

func (f *fakeTarget) CaptureShard(i int) []domain.Value {
	f.mu.Lock()
	defer f.mu.Unlock()
	lo, hi := f.width*domain.Value(i), f.width*domain.Value(i+1)
	var out []domain.Value
	for v, n := range f.content {
		if v >= lo && v < hi {
			for k := 0; k < n; k++ {
				out = append(out, v)
			}
		}
	}
	return out
}

func (f *fakeTarget) snapshot() map[domain.Value]int {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[domain.Value]int, len(f.content))
	for v, n := range f.content {
		out[v] = n
	}
	return out
}

// fakeRouter shards [0, shards*width) by width.
type fakeRouter struct {
	shards int
	width  domain.Value
}

func (r fakeRouter) Shards() int { return r.shards }
func (r fakeRouter) ShardOf(op delta.Op) int {
	i := int(op.V / r.width)
	if i < 0 || i >= r.shards {
		return 0
	}
	return i
}
func (r fakeRouter) CrossShard(op delta.Op) bool {
	return op.Kind == delta.OpUpdate && r.ShardOf(op) != r.ShardOf(delta.Op{V: op.New})
}

// TestGroupCommitBatchesConcurrentWriters: many writers submit at once;
// every ack is correct, the full content lands, and the committer forms
// real groups (fewer batches than ops).
func TestGroupCommitBatchesConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	router := fakeRouter{shards: 2, width: 1000}
	c, rec, err := Open(Config{Dir: dir}, router)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Empty() {
		t.Fatalf("fresh dir reported recovered state: %+v", rec)
	}
	target := newFakeTarget(2, 1000)
	c.Start(target)
	defer c.Close()

	const writers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				v := domain.Value(w*per + i)
				ok, err := c.Submit(delta.Op{Kind: delta.OpInsert, V: v})
				if err != nil || !ok {
					t.Errorf("insert %d: ok=%v err=%v", v, ok, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	content := target.snapshot()
	for v := 0; v < writers*per; v++ {
		if content[domain.Value(v)] != 1 {
			t.Fatalf("value %d count %d after commit", v, content[domain.Value(v)])
		}
	}
	st := c.Stats()
	if st.Records != writers*per {
		t.Fatalf("records %d, want %d", st.Records, writers*per)
	}
	if st.Batches >= st.Records {
		t.Fatalf("no batching: %d batches for %d records", st.Batches, st.Records)
	}
	if st.Bytes <= 0 || st.WALSize <= 0 {
		t.Fatalf("no wal bytes accounted: %+v", st)
	}
}

// TestRecoveredReplayMatches: commit a workload, close, reopen — the
// recovered batches replayed into a fresh target reproduce the content.
func TestRecoveredReplayMatches(t *testing.T) {
	dir := t.TempDir()
	router := fakeRouter{shards: 2, width: 1000}
	c, _, err := Open(Config{Dir: dir, Fsync: true}, router)
	if err != nil {
		t.Fatal(err)
	}
	target := newFakeTarget(2, 1000)
	c.Start(target)
	for i := 0; i < 40; i++ {
		if _, err := c.Submit(delta.Op{Kind: delta.OpInsert, V: domain.Value(i * 50)}); err != nil {
			t.Fatal(err)
		}
	}
	if ok, err := c.Submit(delta.Op{Kind: delta.OpUpdate, V: 0, New: 1500}); err != nil || !ok {
		t.Fatalf("cross-shard update: ok=%v err=%v", ok, err)
	}
	want := target.snapshot()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2, rec, err := Open(Config{Dir: dir}, router)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if rec.Empty() {
		t.Fatal("no recovered state after workload")
	}
	fresh := newFakeTarget(2, 1000)
	for _, b := range rec.Batches {
		if _, err := fresh.ApplyOps(b.Ops); err != nil {
			t.Fatal(err)
		}
	}
	got := fresh.snapshot()
	for v, n := range want {
		if n != 0 && got[v] != n {
			t.Fatalf("replayed content[%d]=%d, want %d", v, got[v], n)
		}
	}
	// The cross-shard update rode in its own seq.
	last := rec.Batches[len(rec.Batches)-1]
	if len(last.Ops) != 1 || last.Ops[0].Kind != delta.OpUpdate {
		t.Fatalf("cross-shard update not a singleton batch: %+v", last)
	}
}

// TestCheckpointTruncatesAndSkipsReplay: after a checkpoint the logs
// are empty, the checkpoint carries the content, and replay resumes
// from the checkpoint seq (pre-checkpoint batches never reappear).
func TestCheckpointTruncatesAndSkipsReplay(t *testing.T) {
	dir := t.TempDir()
	router := fakeRouter{shards: 2, width: 1000}
	c, _, err := Open(Config{Dir: dir}, router)
	if err != nil {
		t.Fatal(err)
	}
	target := newFakeTarget(2, 1000)
	c.Start(target)
	for i := 0; i < 10; i++ {
		if _, err := c.Submit(delta.Op{Kind: delta.OpInsert, V: domain.Value(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Checkpoints != 1 || st.WALSize != 0 {
		t.Fatalf("post-checkpoint stats: %+v", st)
	}
	// Two more writes land in the (now empty) logs.
	for i := 10; i < 12; i++ {
		if _, err := c.Submit(delta.Op{Kind: delta.OpInsert, V: domain.Value(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2, rec, err := Open(Config{Dir: dir}, router)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if !rec.HasCkpt[0] || !rec.HasCkpt[1] {
		t.Fatalf("checkpoints missing: %+v", rec.HasCkpt)
	}
	if len(rec.CkptValues[0]) != 10 {
		t.Fatalf("shard 0 checkpoint carries %d values, want 10", len(rec.CkptValues[0]))
	}
	if len(rec.Batches) != 2 {
		t.Fatalf("replay has %d batches, want 2 post-checkpoint ones", len(rec.Batches))
	}
	for _, b := range rec.Batches {
		if b.Ops[0].V < 10 {
			t.Fatalf("pre-checkpoint batch resurfaced: %+v", b)
		}
	}
}

// TestCheckpointPiggybacksOnMerge: when the target reports a completed
// merge-back, the very next commit triggers a checkpoint.
func TestCheckpointPiggybacksOnMerge(t *testing.T) {
	dir := t.TempDir()
	router := fakeRouter{shards: 1, width: 1 << 40}
	c, _, err := Open(Config{Dir: dir}, router)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	target := newFakeTarget(1, 1<<40)
	c.Start(target)
	if _, err := c.Submit(delta.Op{Kind: delta.OpInsert, V: 1}); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Checkpoints != 0 {
		t.Fatalf("checkpoint before any merge: %+v", st)
	}
	target.bumpMerges()
	if _, err := c.Submit(delta.Op{Kind: delta.OpInsert, V: 2}); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Checkpoints != 1 {
		t.Fatalf("merge did not trigger checkpoint: %+v", st)
	}
}

// TestTornTailDiscardedOnOpen: bytes of a torn frame appended to a
// shard log vanish on reopen; intact batches survive.
func TestTornTailDiscardedOnOpen(t *testing.T) {
	dir := t.TempDir()
	router := fakeRouter{shards: 1, width: 1 << 40}
	c, _, err := Open(Config{Dir: dir}, router)
	if err != nil {
		t.Fatal(err)
	}
	target := newFakeTarget(1, 1<<40)
	c.Start(target)
	for i := 0; i < 5; i++ {
		if _, err := c.Submit(delta.Op{Kind: delta.OpInsert, V: domain.Value(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a torn frame at the tail.
	path := filepath.Join(dir, "shard-0000.wal")
	torn := wal.AppendFrame(nil, 99, []delta.Op{{Kind: delta.OpInsert, V: 42}})
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn[:len(torn)-4]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	c2, rec, err := Open(Config{Dir: dir}, router)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	var n int
	for _, b := range rec.Batches {
		n += len(b.Ops)
		for _, op := range b.Ops {
			if op.V == 42 {
				t.Fatal("torn frame replayed")
			}
		}
	}
	if n != 5 {
		t.Fatalf("replayed %d ops, want 5", n)
	}
	if rec.LastSeq >= 99 {
		t.Fatalf("torn seq leaked into LastSeq %d", rec.LastSeq)
	}
}

// TestSubmitAfterCloseFails cleanly rejects instead of hanging.
func TestSubmitAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	router := fakeRouter{shards: 1, width: 1 << 40}
	c, _, err := Open(Config{Dir: dir}, router)
	if err != nil {
		t.Fatal(err)
	}
	c.Start(newFakeTarget(1, 1<<40))
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(delta.Op{Kind: delta.OpInsert, V: 1}); err == nil {
		t.Fatal("submit after close succeeded")
	}
}
