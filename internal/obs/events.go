package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Event is one structured reorganization step: the physical layout
// changed (or was asked to change) and this records what, where, and
// how the layout looked on both sides of the change.
type Event struct {
	Seq  int64     `json:"seq"`
	Time time.Time `json:"time"`
	// Kind names the reorganization: "split", "replicate", "drop",
	// "recode", "merge", "glue", "bulkload", "drain".
	Kind     string `json:"kind"`
	Strategy string `json:"strategy"`
	Shard    int    `json:"shard"`
	// Lo/Hi bound the affected key range (zero when the whole column
	// was affected).
	Lo int64 `json:"lo,omitempty"`
	Hi int64 `json:"hi,omitempty"`
	// Before/After count layout units (segments or replica nodes)
	// around the change.
	Before int `json:"before"`
	After  int `json:"after"`
	// Bytes is the data volume the step touched (merged delta bytes,
	// materialized replica bytes, …).
	Bytes int64 `json:"bytes,omitempty"`
	// Note carries step-specific detail ("fanout=4", "declined", …).
	Note string `json:"note,omitempty"`
}

// EventLog is a bounded ring of adaptation events. Appends are
// mutex-guarded (adaptations are rare next to queries) and never
// allocate beyond the ring itself.
type EventLog struct {
	seq atomic.Int64

	mu sync.Mutex
	r  ring[Event]
}

// NewEventLog builds an event log retaining the last capacity events.
func NewEventLog(capacity int) *EventLog {
	return &EventLog{r: newRing[Event](capacity)}
}

// Add stamps ev with a sequence number and wall time and files it.
// A nil EventLog drops the event.
func (el *EventLog) Add(ev Event) {
	if el == nil {
		return
	}
	ev.Seq = el.seq.Add(1)
	ev.Time = time.Now()
	el.mu.Lock()
	el.r.push(ev)
	el.mu.Unlock()
}

// Recent returns the retained events, oldest first.
func (el *EventLog) Recent() []Event {
	if el == nil {
		return nil
	}
	el.mu.Lock()
	defer el.mu.Unlock()
	return el.r.snapshot()
}

// Total returns the number of events ever filed (including evicted
// ones).
func (el *EventLog) Total() int64 {
	if el == nil {
		return 0
	}
	return el.seq.Load()
}
