package obs

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// Handler returns the observer's HTTP surface:
//
//	/metrics            Prometheus text exposition 0.0.4
//	/debug/queries      recent + slow phase traces (JSON); ?slow=1 for slow only
//	/debug/adaptations  the adaptation event ring (JSON)
//	/debug/layout       the installed layout snapshot (JSON)
//	/debug/pprof/...    stdlib runtime profiles
//
// Mount it at the root of a mux (or pass it straight to http.Serve).
func (o *Observer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", o.serveMetrics)
	mux.HandleFunc("/debug/queries", o.serveQueries)
	mux.HandleFunc("/debug/adaptations", o.serveAdaptations)
	mux.HandleFunc("/debug/layout", o.serveLayout)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (o *Observer) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	bw := bufio.NewWriter(w)
	o.Registry.WritePrometheus(bw)
	bw.Flush()
}

// queriesPayload is the /debug/queries response body.
type queriesPayload struct {
	Enabled       bool    `json:"enabled"`
	SampleN       int     `json:"sample_n"`
	SlowThreshold string  `json:"slow_threshold"`
	Recent        []Trace `json:"recent"`
	Slow          []Trace `json:"slow"`
}

func (o *Observer) serveQueries(w http.ResponseWriter, r *http.Request) {
	p := queriesPayload{
		Enabled:       o.Traces.Enabled(),
		SampleN:       o.Traces.SampleN(),
		SlowThreshold: o.Traces.SlowThreshold().String(),
		Slow:          o.Traces.Slow(),
	}
	if slow, _ := strconv.ParseBool(r.URL.Query().Get("slow")); !slow {
		p.Recent = o.Traces.Recent()
	}
	writeJSON(w, p)
}

// adaptationsPayload is the /debug/adaptations response body.
type adaptationsPayload struct {
	Total  int64   `json:"total"`
	Events []Event `json:"events"`
}

func (o *Observer) serveAdaptations(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, adaptationsPayload{Total: o.Events.Total(), Events: o.Events.Recent()})
}

// layoutPayload is the /debug/layout response body.
type layoutPayload struct {
	Time   time.Time `json:"time"`
	Layout any       `json:"layout"`
}

func (o *Observer) serveLayout(w http.ResponseWriter, _ *http.Request) {
	fn := o.layoutProvider()
	if fn == nil {
		http.Error(w, "no layout provider installed", http.StatusNotFound)
		return
	}
	writeJSON(w, layoutPayload{Time: time.Now(), Layout: fn()})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
