package obs

import (
	"testing"
	"time"
)

func TestTraceLogDisabledIsNil(t *testing.T) {
	tl := NewTraceLog(8, 4, nil)
	if span := tl.Start("select", "segm", 0, 1, 2); span != nil {
		t.Fatal("disabled trace log must hand out nil spans")
	}
	var nilLog *TraceLog
	if span := nilLog.Start("select", "segm", 0, 1, 2); span != nil {
		t.Fatal("nil trace log must hand out nil spans")
	}
	// The nil span's whole surface must be callable.
	var span *Span
	span.Add(PhaseRoute, time.Millisecond)
	span.EndPhase(PhaseAdapt, span.StartPhase())
	span.Stats(1, 2, 3, 4, 5, 6)
	span.Finish()
}

func TestTraceSampling(t *testing.T) {
	tl := NewTraceLog(64, 4, nil)
	tl.Enable(3, 0)
	traced := 0
	for i := 0; i < 30; i++ {
		if span := tl.Start("select", "segm", 0, 0, 9); span != nil {
			traced++
			span.Finish()
		}
	}
	if traced != 10 {
		t.Fatalf("1-in-3 sampling over 30 queries traced %d, want 10", traced)
	}
	if got := len(tl.Recent()); got != 10 {
		t.Fatalf("recent ring holds %d, want 10", got)
	}
}

func TestTraceRingEviction(t *testing.T) {
	tl := NewTraceLog(4, 4, nil)
	tl.Enable(1, 0)
	for i := int64(0); i < 10; i++ {
		span := tl.Start("select", "segm", 0, i, i)
		span.Finish()
	}
	got := tl.Recent()
	if len(got) != 4 {
		t.Fatalf("ring of 4 holds %d traces", len(got))
	}
	// Oldest first, and only the newest four retained (Lo carries i).
	for j, tr := range got {
		if want := int64(6 + j); tr.Lo != want {
			t.Errorf("trace %d has Lo %d, want %d", j, tr.Lo, want)
		}
		if tr.Seq != int64(7+j) {
			t.Errorf("trace %d has Seq %d, want %d", j, tr.Seq, 7+j)
		}
	}
}

// TestTraceSlowRing pins the slow-path plumbing: a trace at or above the
// threshold lands in the slow ring, is marked Slow, and bumps the slow
// counter; fast traces do neither.
func TestTraceSlowRing(t *testing.T) {
	var slowCnt Counter
	tl := NewTraceLog(8, 8, &slowCnt)
	tl.Enable(1, time.Nanosecond) // everything is slow
	span := tl.Start("select", "repl", 2, 5, 6)
	time.Sleep(time.Microsecond)
	span.Finish()
	if got := len(tl.Slow()); got != 1 {
		t.Fatalf("slow ring holds %d, want 1", got)
	}
	if !tl.Slow()[0].Slow {
		t.Fatal("slow trace not marked Slow")
	}
	if slowCnt.Value() != 1 {
		t.Fatalf("slow counter = %d, want 1", slowCnt.Value())
	}

	tl.Enable(1, time.Hour) // nothing is slow
	span = tl.Start("select", "repl", 2, 5, 6)
	span.Finish()
	if got := len(tl.Slow()); got != 1 {
		t.Fatalf("fast trace leaked into the slow ring (%d entries)", got)
	}
	if slowCnt.Value() != 1 {
		t.Fatalf("fast trace bumped the slow counter (%d)", slowCnt.Value())
	}
}

// TestSpanScanResidual pins the residual computation: scan time is the
// total minus the explicitly timed phases (plus any explicit scan time).
func TestSpanScanResidual(t *testing.T) {
	tl := NewTraceLog(8, 8, nil)
	tl.Enable(1, 0)
	span := tl.Start("select", "segm", 0, 0, 9)
	span.Add(PhaseRoute, 10*time.Nanosecond)
	span.Add(PhaseOverlay, 20*time.Nanosecond)
	span.Add(PhaseAdapt, 30*time.Nanosecond)
	span.Stats(1024, 64, 17, 1, 0, 2)
	time.Sleep(time.Microsecond)
	span.Finish()
	tr := tl.Recent()[0]
	if tr.RouteNs != 10 || tr.OverlayNs != 20 || tr.AdaptNs != 30 {
		t.Fatalf("explicit phases lost: route %d overlay %d adapt %d", tr.RouteNs, tr.OverlayNs, tr.AdaptNs)
	}
	if want := tr.TotalNs - 60; tr.ScanNs != want {
		t.Fatalf("scan residual = %d, want total-60 = %d", tr.ScanNs, want)
	}
	if tr.ReadBytes != 1024 || tr.DeltaReadBytes != 64 || tr.Rows != 17 || tr.Splits != 1 || tr.Recodes != 2 {
		t.Fatalf("stats lost: %+v", tr)
	}
}

func TestEventLog(t *testing.T) {
	el := NewEventLog(3)
	var nilLog *EventLog
	nilLog.Add(Event{Kind: "split"}) // nil-safe
	for i := 0; i < 5; i++ {
		el.Add(Event{Kind: "split", Strategy: "segm", Lo: int64(i)})
	}
	if el.Total() != 5 {
		t.Fatalf("Total = %d, want 5", el.Total())
	}
	got := el.Recent()
	if len(got) != 3 {
		t.Fatalf("ring of 3 holds %d", len(got))
	}
	for j, e := range got {
		if want := int64(2 + j); e.Lo != want {
			t.Errorf("event %d has Lo %d, want %d (oldest first)", j, e.Lo, want)
		}
		if e.Seq != int64(3+j) {
			t.Errorf("event %d has Seq %d, want %d", j, e.Seq, 3+j)
		}
		if e.Time.IsZero() {
			t.Errorf("event %d has no timestamp", j)
		}
	}
}
