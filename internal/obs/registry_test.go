package obs

import (
	"bytes"
	"io"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestBucketIndexBoundaries pins the log-bucket mapping at every
// boundary class: the smallest i with v ≤ 2^i, non-positive values in
// bucket 0, values above 2⁶² in the overflow bucket.
func TestBucketIndexBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{math.MinInt64, 0},
		{-1, 0},
		{0, 0},
		{1, 0},
		{2, 1},
		{3, 2},
		{4, 2},
		{5, 3},
		{8, 3},
		{9, 4},
		{(1 << 20), 20},
		{(1 << 20) + 1, 21},
		{(1 << 62) - 1, 62},
		{1 << 62, 62},
		{(1 << 62) + 1, histBuckets - 1},
		{math.MaxInt64, histBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestHistogramObserve(t *testing.T) {
	var h Histogram
	h.Observe(1)
	h.Observe(3)
	h.Observe(100)
	h.Observe(-7) // clamps to 0, lands in bucket 0
	if got := h.Count(); got != 4 {
		t.Fatalf("Count = %d, want 4", got)
	}
	if got := h.Sum(); got != 104 {
		t.Fatalf("Sum = %d, want 104 (negative observation clamps to 0)", got)
	}
	wantBuckets := map[int]int64{0: 2, 2: 1, 7: 1} // le 1, le 4, le 128
	for i := 0; i < histBuckets; i++ {
		le, n := h.Bucket(i)
		if n != wantBuckets[i] {
			t.Errorf("bucket %d (le %d) = %d, want %d", i, le, n, wantBuckets[i])
		}
	}
}

// TestHistogramNil makes sure the typed-nil contract holds for every
// metric type: instrumented paths call without nil checks.
func TestNilMetricsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(5)
	g.Set(5)
	g.Add(5)
	h.Observe(5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil metrics must read zero")
	}
}

// TestWritePrometheusGolden pins the exposition format: TYPE comment per
// family, sorted output, cumulative le buckets with _bucket/_sum/_count
// suffixes, label sets contiguous within a family.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter(`t_queries_total{op="a"}`).Add(3)
	r.Counter(`t_queries_total{op="b"}`).Add(5)
	r.Gauge(`t_gauge`).Set(7)
	r.GaugeFunc(`t_func`, func() int64 { return 9 })
	h := r.Histogram(`t_lat`)
	h.Observe(1)
	h.Observe(3)
	h.Observe(100)

	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	want := `# TYPE t_func gauge
t_func 9
# TYPE t_gauge gauge
t_gauge 7
# TYPE t_lat histogram
t_lat_bucket{le="1"} 1
t_lat_bucket{le="4"} 2
t_lat_bucket{le="128"} 3
t_lat_bucket{le="+Inf"} 3
t_lat_sum 104
t_lat_count 3
# TYPE t_queries_total counter
t_queries_total{op="a"} 3
t_queries_total{op="b"} 5
`
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x_total")
	c1.Inc()
	if c2 := r.Counter("x_total"); c2 != c1 {
		t.Fatal("same name must resolve to the same counter")
	}
	if got := r.Counter("x_total").Value(); got != 1 {
		t.Fatalf("counter lost its value across lookups: %d", got)
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("clash")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a histogram under a counter's name must panic")
		}
	}()
	r.Histogram("clash")
}

// TestGaugeFuncReplace pins the replace semantics rebuilt columns rely
// on: re-registering a callback gauge swaps the callback.
func TestGaugeFuncReplace(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("g", func() int64 { return 1 })
	r.GaugeFunc("g", func() int64 { return 2 })
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), "g 2\n") {
		t.Fatalf("replaced gauge func not in effect:\n%s", buf.String())
	}
}

// TestRegistryConcurrentScrape hammers one registry from 8 writer
// goroutines — bumping existing handles and creating fresh series —
// while scrapes run concurrently. Run under -race in CI; the assertion
// here is the final counter total.
func TestRegistryConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	const writers = 8
	const perWriter = 2000
	stop := make(chan struct{})
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
				r.WritePrometheus(io.Discard)
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			shared := r.Counter("shared_total")
			h := r.Histogram("shared_lat")
			for i := 0; i < perWriter; i++ {
				shared.Inc()
				h.Observe(int64(i))
				if i%100 == 0 {
					// Get-or-create churn against concurrent scrapes.
					r.Counter("shared_total").Inc()
					r.Gauge("shared_gauge").Set(int64(i))
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	scraper.Wait()
	const wantShared = writers * (perWriter + perWriter/100)
	if got := r.Counter("shared_total").Value(); got != int64(wantShared) {
		t.Fatalf("shared_total = %d, want %d", got, wantShared)
	}
	if got := r.Histogram("shared_lat").Count(); got != writers*perWriter {
		t.Fatalf("shared_lat count = %d, want %d", got, writers*perWriter)
	}
}
