package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// get runs one request against the observer's handler and fails the
// test unless it answers wantCode.
func get(t *testing.T, h http.Handler, path string, wantCode int) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	if rec.Code != wantCode {
		t.Fatalf("GET %s = %d, want %d\n%s", path, rec.Code, wantCode, rec.Body.String())
	}
	return rec
}

func TestHandlerMetrics(t *testing.T) {
	o := NewObserver()
	o.Registry.Counter(`h_queries_total{op="select"}`).Add(4)
	rec := get(t, o.Handler(), "/metrics", http.StatusOK)
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("metrics Content-Type %q lacks the 0.0.4 version tag", ct)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "# TYPE h_queries_total counter") ||
		!strings.Contains(body, `h_queries_total{op="select"} 4`) {
		t.Errorf("metrics body missing counter exposition:\n%s", body)
	}
}

func TestHandlerQueries(t *testing.T) {
	o := NewObserver()
	o.Traces.Enable(1, time.Nanosecond)
	span := o.Traces.Start("select", "segm", 0, 10, 20)
	span.Stats(512, 0, 7, 0, 0, 0)
	span.Finish()

	rec := get(t, o.Handler(), "/debug/queries", http.StatusOK)
	var p queriesPayload
	if err := json.Unmarshal(rec.Body.Bytes(), &p); err != nil {
		t.Fatalf("queries payload not JSON: %v", err)
	}
	if !p.Enabled || len(p.Recent) != 1 {
		t.Fatalf("payload = %+v, want enabled with 1 recent trace", p)
	}
	tr := p.Recent[0]
	if tr.Op != "select" || tr.Lo != 10 || tr.Hi != 20 || tr.Rows != 7 || tr.TotalNs <= 0 {
		t.Fatalf("trace did not round-trip: %+v", tr)
	}
	// ?slow=1 omits the recent ring but keeps the slow one (the
	// nanosecond threshold makes every trace slow).
	rec = get(t, o.Handler(), "/debug/queries?slow=1", http.StatusOK)
	p = queriesPayload{}
	if err := json.Unmarshal(rec.Body.Bytes(), &p); err != nil {
		t.Fatal(err)
	}
	if len(p.Recent) != 0 || len(p.Slow) != 1 {
		t.Fatalf("?slow=1 payload = %d recent / %d slow, want 0/1", len(p.Recent), len(p.Slow))
	}
}

func TestHandlerAdaptations(t *testing.T) {
	o := NewObserver()
	o.Events.Add(Event{Kind: "split", Strategy: "segm", Lo: 5, Hi: 9, Before: 1, After: 2})
	rec := get(t, o.Handler(), "/debug/adaptations", http.StatusOK)
	var p adaptationsPayload
	if err := json.Unmarshal(rec.Body.Bytes(), &p); err != nil {
		t.Fatalf("adaptations payload not JSON: %v", err)
	}
	if p.Total != 1 || len(p.Events) != 1 || p.Events[0].Kind != "split" || p.Events[0].After != 2 {
		t.Fatalf("event did not round-trip: %+v", p)
	}
}

func TestHandlerLayout(t *testing.T) {
	o := NewObserver()
	// Without a provider the endpoint is a 404, not an empty document.
	get(t, o.Handler(), "/debug/layout", http.StatusNotFound)

	o.SetLayoutProvider(func() any {
		return []map[string]any{{"shard": 0, "segments": 3}}
	})
	rec := get(t, o.Handler(), "/debug/layout", http.StatusOK)
	var p struct {
		Time   time.Time        `json:"time"`
		Layout []map[string]any `json:"layout"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &p); err != nil {
		t.Fatalf("layout payload not JSON: %v", err)
	}
	if len(p.Layout) != 1 || p.Layout[0]["segments"].(float64) != 3 {
		t.Fatalf("layout did not round-trip: %+v", p)
	}
	if p.Time.IsZero() {
		t.Error("layout payload missing its timestamp")
	}
}

func TestHandlerPprof(t *testing.T) {
	o := NewObserver()
	rec := get(t, o.Handler(), "/debug/pprof/", http.StatusOK)
	if !strings.Contains(rec.Body.String(), "goroutine") {
		t.Error("pprof index missing profile listing")
	}
}
