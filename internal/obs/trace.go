package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Phase identifies one stage of a query's execution in a trace.
type Phase uint8

const (
	// PhaseRoute is planning: shard routing, cover computation, model
	// consultation — everything before data is touched.
	PhaseRoute Phase = iota
	// PhaseScan is the data pass over the base segments. It is computed
	// residually at Finish (total minus the other phases), so the hot
	// scan loop itself carries no timing calls.
	PhaseScan
	// PhaseOverlay is the MVCC delta overlay on top of the base result.
	PhaseOverlay
	// PhaseAdapt is reorganization work piggy-backed on the query:
	// split application, replica materialization, drop passes, queued
	// adaptation drains.
	PhaseAdapt
	numPhases
)

// Default ring capacities of a TraceLog and an EventLog.
const (
	DefaultTraceCap = 128
	DefaultSlowCap  = 64
	DefaultEventCap = 256
)

// Trace is one finished per-query phase trace.
type Trace struct {
	Seq      int64     `json:"seq"`
	Op       string    `json:"op"`
	Strategy string    `json:"strategy"`
	Shard    int       `json:"shard"`
	Lo       int64     `json:"lo"`
	Hi       int64     `json:"hi"`
	Start    time.Time `json:"start"`
	TotalNs  int64     `json:"total_ns"`

	RouteNs   int64 `json:"route_ns"`
	ScanNs    int64 `json:"scan_ns"`
	OverlayNs int64 `json:"overlay_ns"`
	AdaptNs   int64 `json:"adapt_ns"`

	ReadBytes      int64 `json:"read_bytes"`
	DeltaReadBytes int64 `json:"delta_read_bytes"`
	Rows           int64 `json:"rows"`
	Splits         int   `json:"splits"`
	Drops          int   `json:"drops"`
	Recodes        int   `json:"recodes"`
	Slow           bool  `json:"slow,omitempty"`
}

// Span is an in-flight query trace. A nil Span is valid and free: every
// method no-ops, so instrumented paths call unconditionally and only
// sampled queries pay for timing.
type Span struct {
	t      Trace
	start  time.Time
	phases [numPhases]int64
	tl     *TraceLog
}

// Add accrues d into phase p.
func (s *Span) Add(p Phase, d time.Duration) {
	if s == nil {
		return
	}
	s.phases[p] += int64(d)
}

// StartPhase returns the clock for a phase measurement, or the zero time
// when the span is nil — so instrumented paths pay no clock call unless
// the query is actually traced.
func (s *Span) StartPhase() time.Time {
	if s == nil {
		return time.Time{}
	}
	return time.Now()
}

// EndPhase accrues the time since t0 (a StartPhase result) into phase p.
func (s *Span) EndPhase(p Phase, t0 time.Time) {
	if s == nil {
		return
	}
	s.phases[p] += int64(time.Since(t0))
}

// Stats records the finished query's volume measures.
func (s *Span) Stats(readBytes, deltaBytes, rows int64, splits, drops, recodes int) {
	if s == nil {
		return
	}
	s.t.ReadBytes = readBytes
	s.t.DeltaReadBytes = deltaBytes
	s.t.Rows = rows
	s.t.Splits = splits
	s.t.Drops = drops
	s.t.Recodes = recodes
}

// Finish closes the span and publishes the trace. The scan phase is
// whatever of the total the explicitly timed phases do not account for,
// so the per-segment scan loop needs no clock calls of its own.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	total := time.Since(s.start)
	s.t.TotalNs = int64(total)
	s.t.RouteNs = s.phases[PhaseRoute]
	s.t.OverlayNs = s.phases[PhaseOverlay]
	s.t.AdaptNs = s.phases[PhaseAdapt]
	if scan := s.t.TotalNs - s.t.RouteNs - s.t.OverlayNs - s.t.AdaptNs + s.phases[PhaseScan]; scan > 0 {
		s.t.ScanNs = scan
	}
	s.tl.push(s.t)
}

// TraceLog collects sampled per-query phase traces into two bounded
// rings: every finished trace lands in the recent ring, and traces at
// or above the slow-query threshold additionally land in the slow ring
// (and bump the slow-query counter). Disabled, Start costs one atomic
// load per query.
type TraceLog struct {
	enabled atomic.Bool
	sample  atomic.Int64 // trace every Nth started query (≥ 1)
	tick    atomic.Int64
	slowNs  atomic.Int64
	seq     atomic.Int64
	slowCnt *Counter

	mu     sync.Mutex
	recent ring[Trace]
	slow   ring[Trace]
}

// NewTraceLog builds a trace log with the given ring capacities.
// slowCounter (may be nil) is bumped once per slow trace.
func NewTraceLog(recentCap, slowCap int, slowCounter *Counter) *TraceLog {
	tl := &TraceLog{
		recent:  newRing[Trace](recentCap),
		slow:    newRing[Trace](slowCap),
		slowCnt: slowCounter,
	}
	tl.sample.Store(1)
	tl.slowNs.Store(int64(10 * time.Millisecond))
	return tl
}

// Enable turns tracing on: every sampleNth started query is traced
// (values below 1 mean every query), and traces taking slow or longer
// are retained in the slow ring (0 keeps the previous threshold; the
// initial default is 10ms).
func (tl *TraceLog) Enable(sampleN int, slow time.Duration) {
	if sampleN < 1 {
		sampleN = 1
	}
	tl.sample.Store(int64(sampleN))
	if slow > 0 {
		tl.slowNs.Store(int64(slow))
	}
	tl.enabled.Store(true)
}

// Disable turns tracing off. Finished traces are retained.
func (tl *TraceLog) Disable() { tl.enabled.Store(false) }

// Enabled reports whether tracing is on.
func (tl *TraceLog) Enabled() bool { return tl.enabled.Load() }

// SampleN returns the current 1-in-N sampling rate.
func (tl *TraceLog) SampleN() int { return int(tl.sample.Load()) }

// SlowThreshold returns the current slow-query threshold.
func (tl *TraceLog) SlowThreshold() time.Duration {
	return time.Duration(tl.slowNs.Load())
}

// Start begins a span for one query, or returns nil when tracing is
// off or the query is sampled out. A nil TraceLog never traces.
func (tl *TraceLog) Start(op, strategy string, shard int, lo, hi int64) *Span {
	if tl == nil || !tl.enabled.Load() {
		return nil
	}
	if n := tl.sample.Load(); n > 1 && tl.tick.Add(1)%n != 0 {
		return nil
	}
	return &Span{
		t:     Trace{Op: op, Strategy: strategy, Shard: shard, Lo: lo, Hi: hi, Start: time.Now()},
		start: time.Now(),
		tl:    tl,
	}
}

// push files a finished trace.
func (tl *TraceLog) push(t Trace) {
	t.Seq = tl.seq.Add(1)
	t.Slow = t.TotalNs >= tl.slowNs.Load()
	tl.mu.Lock()
	tl.recent.push(t)
	if t.Slow {
		tl.slow.push(t)
	}
	tl.mu.Unlock()
	if t.Slow {
		tl.slowCnt.Inc()
	}
}

// Recent returns the retained traces, oldest first.
func (tl *TraceLog) Recent() []Trace {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	return tl.recent.snapshot()
}

// Slow returns the retained slow traces, oldest first.
func (tl *TraceLog) Slow() []Trace {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	return tl.slow.snapshot()
}

// ring is a fixed-capacity overwrite-oldest buffer (callers hold their
// own lock).
type ring[T any] struct {
	buf  []T
	next int
	full bool
}

func newRing[T any](capacity int) ring[T] {
	if capacity < 1 {
		capacity = 1
	}
	return ring[T]{buf: make([]T, capacity)}
}

func (r *ring[T]) push(v T) {
	r.buf[r.next] = v
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// snapshot copies the retained values, oldest first.
func (r *ring[T]) snapshot() []T {
	if !r.full {
		return append([]T(nil), r.buf[:r.next]...)
	}
	out := make([]T, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}
