// Package obs is the first-class observability layer of the
// self-organizing column store: a zero-dependency, allocation-conscious
// metrics subsystem plus the tracing and event machinery that makes the
// paper's central claim — the column reorganizes itself under the query
// workload — watchable live instead of post-hoc.
//
// Three concerns, three data structures:
//
//   - Metrics. A named Registry of atomic Counters, Gauges (settable or
//     callback-backed) and log-bucketed lock-free Histograms, exposed in
//     Prometheus text format 0.0.4. Hot-path cost is one atomic add per
//     counter bump: instrumented layers resolve their metric handles
//     once at construction, so query execution never touches the
//     registry map.
//
//   - Per-query phase tracing. A sampled Span measures the phases of one
//     query (route → scan → overlay → adapt) with nanosecond timings and
//     bytes touched; finished traces land in a bounded ring, with a
//     second ring keeping the queries slower than a configurable
//     threshold. Tracing is off by default and costs one atomic load per
//     query while off.
//
//   - Adaptation events. Every reorganization step — split, replicate,
//     drop, merge-back, glue, bulk load — appends a structured Event
//     (range, bytes, before/after layout counts) to a bounded ring, so
//     convergence can be observed as it happens.
//
// An Observer bundles the three and serves them over HTTP: /metrics
// (Prometheus text), /debug/queries (recent and slow traces, JSON),
// /debug/adaptations (the event log, JSON), /debug/layout (a
// caller-provided layout snapshot, JSON) and the stdlib pprof surface
// under /debug/pprof/. The package-level Default observer is what the
// selforg facade wires into every column unless told otherwise.
package obs

import (
	"sync/atomic"
)

// Observer bundles a metrics registry, a query-trace log and an
// adaptation event log — the full observability surface of one process
// (or, when constructed explicitly, of one column).
type Observer struct {
	// Registry holds the named metrics.
	Registry *Registry
	// Traces holds the sampled per-query phase traces.
	Traces *TraceLog
	// Events holds the structured adaptation event ring.
	Events *EventLog
	// layout is the /debug/layout provider: a func() any returning a
	// JSON-marshalable snapshot of the current physical layout.
	layout atomic.Value
}

// NewObserver builds an empty observer with default ring capacities
// (128 recent traces, 64 slow traces, 256 adaptation events).
func NewObserver() *Observer {
	o := &Observer{
		Registry: NewRegistry(),
		Events:   NewEventLog(DefaultEventCap),
	}
	o.Traces = NewTraceLog(DefaultTraceCap, DefaultSlowCap,
		o.Registry.Counter(`selforg_slow_queries_total`))
	return o
}

// Default is the process-wide observer. The selforg facade instruments
// every column against it unless Options.Observability names another
// observer (or disables observability).
var Default = NewObserver()

// SetLayoutProvider installs the /debug/layout callback. fn must be safe
// for concurrent use and return a JSON-marshalable value; the last
// provider installed wins (one live layout per observer — give each
// column its own Observer to debug several at once).
func (o *Observer) SetLayoutProvider(fn func() any) {
	if fn != nil {
		o.layout.Store(fn)
	}
}

// layoutProvider returns the installed provider, or nil.
func (o *Observer) layoutProvider() func() any {
	fn, _ := o.layout.Load().(func() any)
	return fn
}
