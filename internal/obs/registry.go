package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n must not be negative; counters only go up).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add shifts the value by n (negative allowed).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the bucket count of a Histogram: 63 finite power-of-two
// upper bounds (1, 2, 4, …, 2⁶²) plus one overflow bucket rendered as
// +Inf. Power-of-two bounds keep Observe branch-free — one bits.Len —
// while giving ~2x resolution at every scale, enough for latencies (ns)
// and volumes (bytes) alike.
const histBuckets = 64

// Histogram is a lock-free log-bucketed histogram: every Observe is
// two atomic adds plus one atomic increment, and scrapes read the
// buckets without stopping writers (per-bucket counts are exact;
// cross-bucket skew during a concurrent scrape is bounded by the writes
// in flight, the usual Prometheus contract).
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// bucketIndex returns the bucket of v: the smallest i with v ≤ 2^i
// (non-positive values land in bucket 0, values above 2⁶² in the
// overflow bucket).
func bucketIndex(v int64) int {
	if v <= 1 {
		return 0
	}
	i := bits.Len64(uint64(v - 1))
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Bucket returns the upper bound and count of bucket i (the last
// bucket's bound renders as +Inf).
func (h *Histogram) Bucket(i int) (le int64, n int64) {
	return int64(1) << uint(i), h.buckets[i].Load()
}

// metricKind distinguishes the registry's families for TYPE lines.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// Registry is a named metric store. Names follow the convention of
// full Prometheus series names with inline labels —
// `selforg_queries_total{op="select",strategy="segm",shard="0"}` — so
// callers resolve one handle per label combination and the hot path
// never builds a label string. Get-or-create calls are mutex-guarded;
// resolved handles are lock-free.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	funcs    map[string]func() int64
	hists    map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		funcs:    make(map[string]func() int64),
		hists:    make(map[string]*Histogram),
	}
}

// checkName panics on names the exposition could not render.
func checkName(name string) {
	if name == "" || strings.ContainsAny(name, " \n") {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	if i := strings.IndexByte(name, '{'); i >= 0 && !strings.HasSuffix(name, "}") {
		panic(fmt.Sprintf("obs: unbalanced labels in metric name %q", name))
	}
}

// Counter returns the counter registered under name, creating it on
// first use. Panics if name is registered as a different metric kind.
func (r *Registry) Counter(name string) *Counter {
	checkName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.checkFree(name, kindCounter)
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the settable gauge registered under name, creating it on
// first use.
func (r *Registry) Gauge(name string) *Gauge {
	checkName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.checkFree(name, kindGauge)
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// GaugeFunc registers (or replaces) a callback-backed gauge. fn must be
// safe for concurrent use and must not block on locks the instrumented
// hot paths hold — it is invoked on every scrape, after the registry
// lock is released. Re-registration replaces the callback, so a
// rebuilt column takes over its gauge names.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	checkName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.funcs[name]; !ok {
		r.checkFree(name, kindGauge)
	}
	r.funcs[name] = fn
}

// Histogram returns the histogram registered under name, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	checkName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	r.checkFree(name, kindHistogram)
	h := &Histogram{}
	r.hists[name] = h
	return h
}

// checkFree panics when name is already taken by another kind (caller
// holds mu).
func (r *Registry) checkFree(name string, want metricKind) {
	_, c := r.counters[name]
	_, g := r.gauges[name]
	_, f := r.funcs[name]
	_, h := r.hists[name]
	if (c && want != kindCounter) || ((g || f) && want != kindGauge) || (h && want != kindHistogram) {
		panic(fmt.Sprintf("obs: metric %q re-registered as a different kind", name))
	}
}

// family splits a full series name into its family (the name up to the
// label block) and the label block's inner text ("" when unlabeled).
func family(name string) (fam, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], name[i+1 : len(name)-1]
}

// series re-joins a family with a label set, appending extra labels.
func series(fam, labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return fam
	case labels == "":
		return fam + "{" + extra + "}"
	case extra == "":
		return fam + "{" + labels + "}"
	default:
		return fam + "{" + labels + "," + extra + "}"
	}
}

// expoRow is one resolved series, snapshotted under the registry lock
// and rendered after it is released — scrapes never hold the lock while
// reading metric values or invoking gauge callbacks, so callbacks may
// take their own (lock-free or short) synchronization without ordering
// against instrumented paths.
type expoRow struct {
	name string
	kind metricKind
	c    *Counter
	g    *Gauge
	fn   func() int64
	h    *Histogram
}

// WritePrometheus renders every registered metric in Prometheus text
// exposition format 0.0.4, families sorted by name, one TYPE comment
// per family. Histograms render cumulative le buckets (empty buckets
// are skipped, +Inf always present) plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	rows := make([]expoRow, 0, len(r.counters)+len(r.gauges)+len(r.funcs)+len(r.hists))
	for n, c := range r.counters {
		rows = append(rows, expoRow{name: n, kind: kindCounter, c: c})
	}
	for n, g := range r.gauges {
		rows = append(rows, expoRow{name: n, kind: kindGauge, g: g})
	}
	for n, fn := range r.funcs {
		rows = append(rows, expoRow{name: n, kind: kindGauge, fn: fn})
	}
	for n, h := range r.hists {
		rows = append(rows, expoRow{name: n, kind: kindHistogram, h: h})
	}
	r.mu.Unlock()

	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	lastFam := ""
	for _, row := range rows {
		fam, labels := family(row.name)
		if fam != lastFam {
			fmt.Fprintf(w, "# TYPE %s %s\n", fam, typeName(row.kind))
			lastFam = fam
		}
		switch row.kind {
		case kindCounter:
			fmt.Fprintf(w, "%s %d\n", row.name, row.c.Value())
		case kindGauge:
			v := int64(0)
			if row.fn != nil {
				v = row.fn()
			} else {
				v = row.g.Value()
			}
			fmt.Fprintf(w, "%s %d\n", row.name, v)
		case kindHistogram:
			var cum int64
			for i := 0; i < histBuckets; i++ {
				le, n := row.h.Bucket(i)
				if n == 0 {
					continue
				}
				cum += n
				if i == histBuckets-1 {
					break // rendered by the +Inf line below
				}
				fmt.Fprintf(w, "%s %d\n", series(fam+"_bucket", labels, fmt.Sprintf("le=%q", fmt.Sprint(le))), cum)
			}
			fmt.Fprintf(w, "%s %d\n", series(fam+"_bucket", labels, `le="+Inf"`), row.h.Count())
			fmt.Fprintf(w, "%s %d\n", series(fam+"_sum", labels, ""), row.h.Sum())
			fmt.Fprintf(w, "%s %d\n", series(fam+"_count", labels, ""), row.h.Count())
		}
	}
}

func typeName(k metricKind) string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}
