package plancache

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"selforg/internal/obs"
)

func TestHitMiss(t *testing.T) {
	c := New(8)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache hit")
	}
	if !c.Put("a", 1, c.Epoch()) {
		t.Fatal("put refused")
	}
	v, ok := c.Get("a")
	if !ok || v.(int) != 1 {
		t.Fatalf("get = %v, %v", v, ok)
	}
	hits, misses, _ := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = %d hits / %d misses, want 1/1", hits, misses)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := New(3) // < 2*numShards → single shard, exact LRU
	ep := c.Epoch()
	c.Put("a", 1, ep)
	c.Put("b", 2, ep)
	c.Put("c", 3, ep)
	c.Get("a")        // a is now MRU; order: a, c, b
	c.Put("d", 4, ep) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Error("b survived, want evicted")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s evicted, want kept", k)
		}
	}
	if _, _, ev := c.Stats(); ev != 1 {
		t.Errorf("evictions = %d, want 1", ev)
	}
	if c.Len() != 3 {
		t.Errorf("len = %d, want 3", c.Len())
	}
}

func TestPutUpdatesExisting(t *testing.T) {
	c := New(2)
	ep := c.Epoch()
	c.Put("a", 1, ep)
	c.Put("a", 2, ep)
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
	v, _ := c.Get("a")
	if v.(int) != 2 {
		t.Errorf("value = %v, want 2", v)
	}
}

func TestInvalidate(t *testing.T) {
	c := New(8)
	ep := c.Epoch()
	c.Put("a", 1, ep)
	c.Invalidate()
	if _, ok := c.Get("a"); ok {
		t.Error("entry survived invalidation")
	}
	if c.Len() != 0 {
		t.Errorf("len = %d after invalidate", c.Len())
	}
	// A compile that started before the bump must not publish.
	if c.Put("b", 2, ep) {
		t.Error("stale-epoch put accepted")
	}
	if _, ok := c.Get("b"); ok {
		t.Error("stale plan served")
	}
	// Fresh-epoch puts work again.
	if !c.Put("c", 3, c.Epoch()) {
		t.Error("fresh put refused")
	}
}

func TestEpochStampedEntriesLazilyReaped(t *testing.T) {
	// An entry written in epoch N must read as a miss after epoch N+1
	// even if it somehow survived the clear (white-box: stamp check).
	c := New(8)
	ep := c.Epoch()
	c.Put("a", 1, ep)
	s := c.shard("a")
	c.epoch.Add(1) // bump without clearing
	if _, ok := c.Get("a"); ok {
		t.Fatal("stale-epoch entry served")
	}
	s.mu.Lock()
	_, still := s.entries["a"]
	s.mu.Unlock()
	if still {
		t.Error("stale entry not reaped on read")
	}
}

func TestShardedCapacityBound(t *testing.T) {
	c := New(256) // sharded: bound is capacity rounded up per shard
	ep := c.Epoch()
	for i := 0; i < 10_000; i++ {
		c.Put(fmt.Sprintf("k%d", i), i, ep)
	}
	if n := c.Len(); n > 256+numShards {
		t.Errorf("len = %d, want <= %d", n, 256+numShards)
	}
	if _, _, ev := c.Stats(); ev == 0 {
		t.Error("no evictions recorded")
	}
}

func TestInstrument(t *testing.T) {
	c := New(2)
	ep := c.Epoch()
	c.Put("a", 1, ep)
	c.Get("a")
	c.Get("nope")
	reg := obs.NewRegistry()
	c.Instrument(reg) // pre-instrument counts carry over
	c.Get("a")
	c.Put("b", 2, ep)
	c.Put("c", 3, ep) // evicts
	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"plancache_hits_total 2",
		"plancache_misses_total 1",
		"plancache_evictions_total 1",
		"plancache_size 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestDefaultCapacity(t *testing.T) {
	c := New(0)
	total := 0
	for _, s := range c.shards {
		total += s.capacity
	}
	if total < DefaultCapacity {
		t.Errorf("total capacity %d < %d", total, DefaultCapacity)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(128)
	reg := obs.NewRegistry()
	c.Instrument(reg)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := fmt.Sprintf("k%d", (g*7+i)%200)
				if _, ok := c.Get(k); !ok {
					c.Put(k, i, c.Epoch())
				}
				if i%500 == 250 && g == 0 {
					c.Invalidate()
				}
				if i%100 == 0 {
					c.Len()
				}
			}
		}(g)
	}
	wg.Wait()
	hits, misses, _ := c.Stats()
	if hits+misses != 8*2000 {
		t.Errorf("lookups = %d, want %d", hits+misses, 8*2000)
	}
}
