// Package plancache is the query service tier's compiled-plan cache: a
// bounded, sharded LRU keyed by normalized query fingerprints
// (internal/sql.Normalize). Hot traffic is thousands of clients sending
// the same query *shape* with different constants; with constants
// lifted out of the key and bound at execution time, the parse → MAL
// codegen → tactical-optimize pipeline runs once per shape and every
// later request is a map hit.
//
// Entries are stamped with the cache epoch at compile start. Bumping
// the epoch (Invalidate) — on a catalog or physical-layout generation
// change — atomically orphans every cached plan: stale entries stop
// being served immediately, and a compile that straddled the bump is
// refused at Put, so a plan compiled against the old catalog can never
// be published into the new one.
//
// Instrument registers the cache's counters on an obs.Registry:
// plancache_hits_total, plancache_misses_total,
// plancache_evictions_total and the plancache_size gauge.
package plancache

import (
	"hash/maphash"
	"sync"
	"sync/atomic"

	"selforg/internal/obs"
)

// numShards bounds lock contention for large caches; small caches use a
// single shard so the LRU order (and tests of it) stay exact.
const numShards = 16

// DefaultCapacity is the entry bound used when New is given cap <= 0.
const DefaultCapacity = 1024

// Cache is a bounded, sharded, epoch-validated LRU of compiled plans.
// All methods are safe for concurrent use.
type Cache struct {
	shards   []*cshard
	seed     maphash.Seed
	epoch    atomic.Int64
	hits     atomic.Int64
	misses   atomic.Int64
	evicts   atomic.Int64
	obsHits  *obs.Counter
	obsMiss  *obs.Counter
	obsEvict *obs.Counter
}

// cshard is one LRU shard: an intrusive doubly-linked list threaded
// through the map entries, most-recent at head.
type cshard struct {
	mu         sync.Mutex
	entries    map[string]*entry
	head, tail *entry
	capacity   int
}

type entry struct {
	key        string
	val        any
	epoch      int64
	prev, next *entry
}

// New builds a cache bounded at capacity entries (DefaultCapacity when
// capacity <= 0). Caches smaller than 2*numShards entries use one shard
// so the bound — and the LRU eviction order — is exact; larger caches
// split the capacity across 16 independently locked shards.
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	ns := numShards
	if capacity < 2*numShards {
		ns = 1
	}
	c := &Cache{shards: make([]*cshard, ns), seed: maphash.MakeSeed()}
	per := (capacity + ns - 1) / ns
	for i := range c.shards {
		c.shards[i] = &cshard{entries: make(map[string]*entry), capacity: per}
	}
	return c
}

// Instrument registers the cache's metrics on r (typically the serving
// observer's registry): hit/miss/eviction counters and the live-entry
// size gauge. Counters accumulated before Instrument are carried over.
func (c *Cache) Instrument(r *obs.Registry) {
	c.obsHits = r.Counter("plancache_hits_total")
	c.obsMiss = r.Counter("plancache_misses_total")
	c.obsEvict = r.Counter("plancache_evictions_total")
	c.obsHits.Add(c.hits.Load())
	c.obsMiss.Add(c.misses.Load())
	c.obsEvict.Add(c.evicts.Load())
	r.GaugeFunc("plancache_size", func() int64 { return int64(c.Len()) })
}

func (c *Cache) shard(key string) *cshard {
	if len(c.shards) == 1 {
		return c.shards[0]
	}
	h := maphash.String(c.seed, key)
	return c.shards[h%uint64(len(c.shards))]
}

// Epoch returns the current cache epoch. Capture it before compiling a
// plan and hand it to Put, so a concurrent Invalidate refuses the
// now-stale plan.
func (c *Cache) Epoch() int64 { return c.epoch.Load() }

// Get returns the plan cached under key, bumping it to most-recently
// used. Entries from earlier epochs are dropped and reported as misses.
func (c *Cache) Get(key string) (any, bool) {
	ep := c.epoch.Load()
	s := c.shard(key)
	s.mu.Lock()
	e, ok := s.entries[key]
	if ok && e.epoch == ep {
		s.moveToFront(e)
		s.mu.Unlock()
		c.hits.Add(1)
		if c.obsHits != nil {
			c.obsHits.Inc()
		}
		return e.val, true
	}
	if ok {
		s.remove(e) // stale epoch: lazily reap
	}
	s.mu.Unlock()
	c.misses.Add(1)
	if c.obsMiss != nil {
		c.obsMiss.Inc()
	}
	return nil, false
}

// Put caches val under key, evicting the least-recently-used entry of
// the shard when full. The put is refused (returning false) when epoch
// is no longer current — the compile raced an Invalidate and its plan
// may reference the previous catalog.
func (c *Cache) Put(key string, val any, epoch int64) bool {
	if c.epoch.Load() != epoch {
		return false
	}
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if c.epoch.Load() != epoch { // re-check under the shard lock
		return false
	}
	if e, ok := s.entries[key]; ok {
		e.val, e.epoch = val, epoch
		s.moveToFront(e)
		return true
	}
	e := &entry{key: key, val: val, epoch: epoch}
	s.entries[key] = e
	s.pushFront(e)
	if len(s.entries) > s.capacity {
		lru := s.tail
		s.remove(lru)
		c.evicts.Add(1)
		if c.obsEvict != nil {
			c.obsEvict.Inc()
		}
	}
	return true
}

// Invalidate bumps the epoch and drops every cached plan: the next Get
// of any key misses, and Puts from compiles that began before the bump
// are refused. Call it when the catalog or the physical layout
// generation a plan was compiled against changes meaning.
func (c *Cache) Invalidate() {
	c.epoch.Add(1)
	for _, s := range c.shards {
		s.mu.Lock()
		s.entries = make(map[string]*entry)
		s.head, s.tail = nil, nil
		s.mu.Unlock()
	}
}

// Len returns the number of live cached entries.
func (c *Cache) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// Stats returns the lifetime hit/miss/eviction counts.
func (c *Cache) Stats() (hits, misses, evictions int64) {
	return c.hits.Load(), c.misses.Load(), c.evicts.Load()
}

// --- intrusive LRU list (shard lock held) ---

func (s *cshard) pushFront(e *entry) {
	e.prev, e.next = nil, s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *cshard) remove(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
	delete(s.entries, e.key)
}

func (s *cshard) moveToFront(e *entry) {
	if s.head == e {
		return
	}
	// Unlink (without deleting from the map), then relink at head.
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
}
