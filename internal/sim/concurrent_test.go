package sim

import "testing"

func TestRunConcurrentBothStrategies(t *testing.T) {
	for _, strat := range []StrategyKind{Segmentation, Replication} {
		for _, clients := range []int{1, 4} {
			cfg := ConcurrentConfig{Clients: clients, Parallelism: 2}
			cfg.Config = DefaultConfig()
			cfg.ColumnCount = 20_000
			cfg.NumQueries = 400
			cfg.Strategy = strat
			r := RunConcurrent(cfg)
			if r.Queries != 400 {
				t.Errorf("%v clients=%d: queries = %d, want 400", strat, clients, r.Queries)
			}
			if r.ReadBytes == 0 || r.ResultCount == 0 {
				t.Errorf("%v clients=%d: empty run (reads %d, results %d)",
					strat, clients, r.ReadBytes, r.ResultCount)
			}
			if r.FinalSegments < 2 {
				t.Errorf("%v clients=%d: column never reorganized (%d segments)",
					strat, clients, r.FinalSegments)
			}
			if r.Splits == 0 {
				t.Errorf("%v clients=%d: no splits recorded", strat, clients)
			}
		}
	}
}

func TestRunConcurrentExperimentRenders(t *testing.T) {
	out := runConcurrentExperiment(Scale{Queries: 200})
	if out == "" {
		t.Fatal("empty experiment output")
	}
}

func TestRunReplicatedConcurrentExperimentRenders(t *testing.T) {
	out := runReplicatedConcurrentExperiment(Scale{Queries: 200})
	if out == "" {
		t.Fatal("empty experiment output")
	}
}

func TestRunConcurrentWarmupConverges(t *testing.T) {
	cfg := ConcurrentConfig{Clients: 4, WarmupQueries: 300}
	cfg.Config = DefaultConfig()
	cfg.ColumnCount = 20_000
	cfg.NumQueries = 400
	cfg.Strategy = Replication
	r := RunConcurrent(cfg)
	if r.Queries != 400 {
		t.Fatalf("queries = %d, want 400", r.Queries)
	}
	if r.FinalSegments < 2 {
		t.Fatal("warmup never converged the column")
	}
}
