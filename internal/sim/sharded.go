package sim

import (
	"fmt"
	"runtime"

	"selforg/internal/domain"
	"selforg/internal/stats"
)

// Sharded-column experiments: the domain-sharding extension
// (internal/shard) measured by the two workload spaces it targets.
// "sharded" scales concurrent read streams across shard counts — the
// router must not cost read throughput — and "sharded-mixed" scales
// concurrent writers, where per-shard writer locks and per-shard delta
// stores are the whole point: writers on disjoint domain ranges stop
// contending on one lock, so OPS should rise with the shard count on
// multi-core hosts (single-core containers mostly demonstrate safety).

// runShardedExperiment is the "sharded" experiment: read-only concurrent
// streams over 1, 2 and 4 shards, both strategies under APM.
func runShardedExperiment(scale Scale) string {
	n := scale.queries(4000)
	tb := stats.NewTable(
		fmt.Sprintf("Domain-sharded column, concurrent read streams (APM, uniform, sel 0.1, %d queries total, GOMAXPROCS=%d)",
			n, runtime.GOMAXPROCS(0)),
		"Strategy", "Shards", "Clients", "Reads KB/q", "Splits", "Segments", "Wall ms", "QPS")
	for _, strat := range []StrategyKind{Segmentation, Replication} {
		for _, shards := range []int{1, 2, 4} {
			for _, clients := range []int{1, 4} {
				cfg := ConcurrentConfig{Clients: clients}
				cfg.Config = DefaultConfig()
				cfg.NumQueries = n
				cfg.Strategy = strat
				cfg.Shards = shards
				r := RunConcurrent(cfg)
				reads := float64(r.ReadBytes) / float64(r.Queries) / float64(domain.KB)
				tb.AddRow(cfg.StrategyName(), fmt.Sprint(shards), fmt.Sprint(clients),
					fmt.Sprintf("%.1f", reads),
					fmt.Sprint(r.Splits),
					fmt.Sprint(r.FinalSegments),
					fmt.Sprintf("%d", r.Wall.Milliseconds()),
					fmt.Sprintf("%.0f", r.QPS))
			}
		}
	}
	return tb.Render()
}

// runShardedMixedExperiment is the "sharded-mixed" experiment: the mixed
// read-write driver across shard counts at a write-heavy ratio. The
// interesting columns are OPS (writer scaling) and Merges (per-shard
// merge-back churn).
func runShardedMixedExperiment(scale Scale) string {
	n := scale.queries(4000)
	tb := stats.NewTable(
		fmt.Sprintf("Domain-sharded column, mixed read-write streams (APM, uniform, sel 0.1, %d ops total, GOMAXPROCS=%d)",
			n, runtime.GOMAXPROCS(0)),
		"Strategy", "Shards", "Clients", "Write%", "Writes", "Merges", "Merged", "Overlay KB/q", "Segments", "OPS")
	for _, strat := range []StrategyKind{Segmentation, Replication} {
		for _, shards := range []int{1, 2, 4} {
			cfg := MixedConfig{WriteRatio: 0.5, DeltaMaxBytes: 256}
			cfg.Config = DefaultConfig()
			cfg.NumQueries = n
			cfg.Strategy = strat
			cfg.Shards = shards
			cfg.Clients = 4
			r := RunMixed(cfg)
			overlay := 0.0
			if r.Queries > 0 {
				overlay = float64(r.DeltaReadBytes) / float64(r.Queries) / float64(domain.KB)
			}
			tb.AddRow(cfg.StrategyName(), fmt.Sprint(shards), fmt.Sprint(cfg.Clients),
				fmt.Sprintf("%.0f", cfg.WriteRatio*100),
				fmt.Sprint(r.Writes),
				fmt.Sprint(r.Delta.Merges), fmt.Sprint(r.Delta.MergedEntries),
				fmt.Sprintf("%.2f", overlay),
				fmt.Sprint(r.FinalSegments),
				fmt.Sprintf("%.0f", r.OPS))
		}
	}
	return tb.Render()
}
