// Package sim is the architecture-conscious simulator of §6.1: it drives
// the adaptive strategies over a synthetic column and records the memory
// read/write behaviour per query — the measurements behind Figures 5–9 and
// Table 1.
//
// The paper's setup, reproduced by DefaultConfig: a column of 100K values
// drawn from a domain of 1M integers (4-byte values), 10K range-selection
// queries with selectivity 0.1 or 0.01, uniform or Zipf query placement,
// and APM bounds of 3KB/12KB.
package sim

import (
	"fmt"
	"math/rand"

	"selforg/internal/compress"
	"selforg/internal/core"
	"selforg/internal/domain"
	"selforg/internal/model"
	"selforg/internal/segment"
	"selforg/internal/shard"
	"selforg/internal/stats"
	"selforg/internal/workload"
)

// StrategyKind selects the self-organizing technique.
type StrategyKind int

const (
	// Segmentation is adaptive segmentation (§4).
	Segmentation StrategyKind = iota
	// Replication is adaptive replication (§5).
	Replication
)

func (k StrategyKind) String() string {
	switch k {
	case Segmentation:
		return "Segm"
	case Replication:
		return "Repl"
	default:
		return fmt.Sprintf("StrategyKind(%d)", int(k))
	}
}

// ModelKind selects the segmentation model.
type ModelKind int

const (
	// GD is the Gaussian Dice model (§3.2.1).
	GD ModelKind = iota
	// APM is the Adaptive Pagination Model (§3.2.2).
	APM
)

func (k ModelKind) String() string {
	switch k {
	case GD:
		return "GD"
	case APM:
		return "APM"
	default:
		return fmt.Sprintf("ModelKind(%d)", int(k))
	}
}

// Config describes one simulation run.
type Config struct {
	ColumnCount int          // values in the column (default 100_000)
	Dom         domain.Range // attribute domain (default [0, 999_999])
	ElemSize    int64        // accounted bytes per value (default 4)
	NumQueries  int          // queries to run (default 10_000)
	Selectivity float64      // fraction of tuples selected (default 0.1)
	Dist        workload.Kind
	Strategy    StrategyKind
	Model       ModelKind
	APMMin      int64 // default 3 KB
	APMMax      int64 // default 12 KB
	DataSeed    int64
	QuerySeed   int64
	ModelSeed   int64 // GD randomness
	// Compression selects the adaptive storage-encoding policy
	// (compress.Off keeps the paper-faithful uncompressed layout).
	Compression compress.Mode
	// LowCardinality draws the column from a small set of distinct values
	// (RLE/dictionary-friendly) instead of the paper's 1M-value domain —
	// the data shape of dimension-key and categorical columns.
	LowCardinality int
	// Shards range-partitions the domain into this many independently
	// locked shards (internal/shard); 0 or 1 keeps the single-shard
	// column. Each shard gets its own model instance and delta store.
	Shards int
}

// DefaultConfig returns the §6.1 experimental setup.
func DefaultConfig() Config {
	return Config{
		ColumnCount: 100_000,
		Dom:         domain.NewRange(0, 999_999),
		ElemSize:    4,
		NumQueries:  10_000,
		Selectivity: 0.1,
		Dist:        workload.KindUniform,
		Strategy:    Segmentation,
		Model:       APM,
		APMMin:      3 * int64(domain.KB),
		APMMax:      12 * int64(domain.KB),
		DataSeed:    1,
		QuerySeed:   2,
		ModelSeed:   3,
	}
}

// withDefaults fills zero fields from DefaultConfig.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.ColumnCount == 0 {
		c.ColumnCount = d.ColumnCount
	}
	if c.Dom.IsEmpty() {
		c.Dom = d.Dom
	}
	if c.ElemSize == 0 {
		c.ElemSize = d.ElemSize
	}
	if c.NumQueries == 0 {
		c.NumQueries = d.NumQueries
	}
	if c.Selectivity == 0 {
		c.Selectivity = d.Selectivity
	}
	if c.APMMin == 0 {
		c.APMMin = d.APMMin
	}
	if c.APMMax == 0 {
		c.APMMax = d.APMMax
	}
	if c.DataSeed == 0 {
		c.DataSeed = d.DataSeed
	}
	if c.QuerySeed == 0 {
		c.QuerySeed = d.QuerySeed
	}
	if c.ModelSeed == 0 {
		c.ModelSeed = d.ModelSeed
	}
	return c
}

// StrategyName is the label used in the paper's figures, e.g. "GD Segm",
// "APM Repl"; compressed runs are suffixed "+C", sharded ones "x<K>sh".
func (c Config) StrategyName() string {
	name := fmt.Sprintf("%v %v", c.Model, c.Strategy)
	if c.Compression.Enabled() {
		name += " +C"
	}
	if c.Shards > 1 {
		name += fmt.Sprintf(" x%dsh", c.Shards)
	}
	return name
}

// buildModel instantiates the configured segmentation model for one
// shard (shard 0 is the whole column when unsharded); GD streams are
// decorrelated per shard.
func (c Config) buildModel(shardIdx int) model.Model {
	switch c.Model {
	case GD:
		return model.NewGaussianDice(model.ShardSeed(c.ModelSeed, shardIdx))
	case APM:
		return model.NewAPM(c.APMMin, c.APMMax)
	default:
		panic(fmt.Sprintf("sim: unknown model kind %d", c.Model))
	}
}

// generateValues draws the run's column data.
func (c Config) generateValues() []domain.Value {
	if c.LowCardinality > 0 {
		return GenerateLowCardColumn(c.ColumnCount, c.Dom, int64(c.LowCardinality), c.DataSeed)
	}
	return GenerateColumn(c.ColumnCount, c.Dom, c.DataSeed)
}

// buildStrategyOver instantiates the strategy over vals (consumed: the
// strategy takes ownership), sharding the domain when Shards > 1.
func (c Config) buildStrategyOver(vals []domain.Value) core.DeltaStrategy {
	buildOne := func(idx int, rng domain.Range, svals []domain.Value) core.DeltaStrategy {
		switch c.Strategy {
		case Segmentation:
			s := core.NewSegmenter(rng, svals, c.ElemSize, c.buildModel(idx), nil)
			s.SetCompression(c.Compression)
			return s
		case Replication:
			r := core.NewReplicator(rng, svals, c.ElemSize, c.buildModel(idx), nil)
			r.SetCompression(c.Compression)
			return r
		default:
			panic(fmt.Sprintf("sim: unknown strategy kind %d", c.Strategy))
		}
	}
	if c.Shards > 1 {
		sc, err := shard.New(c.Dom, vals, c.Shards, buildOne)
		if err != nil {
			panic(fmt.Sprintf("sim: %v", err))
		}
		return sc
	}
	return buildOne(0, c.Dom, vals)
}

// parallelizable is the SetParallelism surface shared by the strategies
// and the shard router.
type parallelizable interface{ SetParallelism(int) }

// buildStrategy instantiates the strategy over freshly generated data.
func (c Config) buildStrategy() core.DeltaStrategy {
	return c.buildStrategyOver(c.generateValues())
}

// GenerateColumn draws count values uniformly from dom — the "100K values
// taken from a domain of a 1M different integer values" of §6.1.
func GenerateColumn(count int, dom domain.Range, seed int64) []domain.Value {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]domain.Value, count)
	for i := range vals {
		vals[i] = dom.Lo + rng.Int63n(dom.Width())
	}
	return vals
}

// GenerateLowCardColumn draws count values from card distinct values
// spread evenly over dom — the categorical-column shape of the
// compression experiment.
func GenerateLowCardColumn(count int, dom domain.Range, card int64, seed int64) []domain.Value {
	if card < 1 {
		card = 1
	}
	rng := rand.New(rand.NewSource(seed))
	step := dom.Width() / card
	if step < 1 {
		step = 1
	}
	vals := make([]domain.Value, count)
	for i := range vals {
		vals[i] = dom.Lo + rng.Int63n(card)*step
	}
	return vals
}

// Result holds the per-query measurement series of one run.
type Result struct {
	Cfg Config
	// Writes is the per-query bytes written due to segment
	// materialization, query results included (Figures 5, 6).
	Writes *stats.Series
	// Reads is the per-query bytes read (Figure 7, Table 1).
	Reads *stats.Series
	// Storage is the physical materialized storage in bytes after each
	// query (Figures 8, 9; constant for uncompressed segmentation).
	Storage *stats.Series
	// Compressed is the physical storage series and Logical its
	// uncompressed counterpart; they coincide with compression off. The
	// gap is the storage the compression subsystem saves.
	Compressed *stats.Series
	Logical    *stats.Series
	// Splits and Drops total the reorganization activity; Recodes totals
	// the segments the compression advisor (re-)encoded.
	Splits  int
	Drops   int
	Recodes int
	// FinalSegments is the number of data-bearing segments at the end.
	FinalSegments int
	// FinalSegmentSizes lists their sizes in bytes.
	FinalSegmentSizes []float64
	// FinalEncodings is the per-encoding storage breakdown at the end
	// (all-plain with compression off).
	FinalEncodings segment.EncodingStats
	// ColumnBytes is the raw column size (the "DB size" line).
	ColumnBytes int64
}

// Run executes the configured simulation.
func Run(cfg Config) *Result {
	cfg = cfg.withDefaults()
	strat := cfg.buildStrategy()
	gen := workload.Spec{
		Name:        cfg.StrategyName(),
		Dom:         cfg.Dom,
		Selectivity: cfg.Selectivity,
		Kind:        cfg.Dist,
		Seed:        cfg.QuerySeed,
	}.Build()

	res := &Result{
		Cfg:         cfg,
		Writes:      stats.NewSeries(cfg.StrategyName()),
		Reads:       stats.NewSeries(cfg.StrategyName()),
		Storage:     stats.NewSeries(cfg.StrategyName()),
		Compressed:  stats.NewSeries(cfg.StrategyName() + " phys"),
		Logical:     stats.NewSeries(cfg.StrategyName() + " logical"),
		ColumnBytes: int64(cfg.ColumnCount) * cfg.ElemSize,
	}
	for i := 0; i < cfg.NumQueries; i++ {
		q := gen.Next()
		_, st := strat.Select(q.Range())
		res.Writes.Append(float64(st.WriteBytes))
		res.Reads.Append(float64(st.ReadBytes))
		res.Storage.Append(float64(strat.StorageBytes()))
		res.Compressed.Append(float64(st.CompressedBytes))
		res.Logical.Append(float64(st.StorageBytes))
		res.Splits += st.Splits
		res.Drops += st.Drops
		res.Recodes += st.Recodes
	}
	res.FinalSegments = strat.SegmentCount()
	res.FinalSegmentSizes = strat.SegmentSizes()
	res.FinalEncodings = strat.EncodingStats()
	return res
}

// AvgReadKB returns the average per-query read volume in KB over the whole
// run — the cells of Table 1.
func (r *Result) AvgReadKB() float64 {
	return r.Reads.Mean() / float64(domain.KB)
}
