package sim

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"selforg/internal/core"
	"selforg/internal/domain"
	"selforg/internal/stats"
	"selforg/internal/workload"
)

// Multi-client workload driver: the concurrency counterpart of Run. The
// paper's simulator replays one query stream on one goroutine; this
// driver replays N independent streams against a single shared strategy,
// exercising the snapshot-reader / single-writer reorganization model of
// internal/core under real contention. Per-client statistics are
// accumulated locally and merged at the end, so the driver adds no
// synchronization of its own to the measured path.

// ConcurrentConfig shapes a multi-client simulation run.
type ConcurrentConfig struct {
	Config
	// Clients is the number of concurrent query streams (default 4).
	// Every client runs NumQueries/Clients queries from its own
	// deterministic generator (QuerySeed offset by the client index).
	Clients int
	// Parallelism is the per-query scan fan-out handed to the strategy
	// (<=1 = serial scans; concurrency across clients is independent of
	// this knob).
	Parallelism int
	// WarmupQueries converges the column on one serial stream before the
	// timed multi-client section starts, so the measurement isolates the
	// steady-state scan path from the reorganization transient (the
	// replicated-concurrent experiment measures the lock-free cover
	// scans this way). 0 = no warmup.
	WarmupQueries int
}

// ConcurrentResult aggregates a multi-client run.
type ConcurrentResult struct {
	Cfg     ConcurrentConfig
	Queries int
	// Merged cost measures over all clients (sums of per-query stats).
	ReadBytes, WriteBytes int64
	ResultCount           int64
	Splits, Drops         int
	Recodes               int
	// FinalSegments is the number of data-bearing segments at the end.
	FinalSegments int
	// Wall is the elapsed time of the whole run, QPS the aggregate
	// throughput over it.
	Wall time.Duration
	QPS  float64
}

// RunConcurrent executes the configured multi-client simulation: Clients
// goroutines replay independent query streams against one shared
// strategy while it self-organizes. It returns the merged statistics.
func RunConcurrent(cfg ConcurrentConfig) *ConcurrentResult {
	cfg.Config = cfg.Config.withDefaults()
	if cfg.Clients < 1 {
		cfg.Clients = 4
	}
	strat := cfg.buildStrategy()
	if p, ok := strat.(parallelizable); ok {
		p.SetParallelism(cfg.Parallelism)
	}
	if cfg.WarmupQueries > 0 {
		warm := workload.Spec{
			Name:        "warmup",
			Dom:         cfg.Dom,
			Selectivity: cfg.Selectivity,
			Kind:        cfg.Dist,
			Seed:        cfg.QuerySeed + 7777,
		}.Build()
		for i := 0; i < cfg.WarmupQueries; i++ {
			strat.Select(warm.Next().Range())
		}
	}

	perClient := cfg.NumQueries / cfg.Clients
	if perClient < 1 {
		perClient = 1
	}
	deltas := make([]core.QueryStats, cfg.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	for cl := 0; cl < cfg.Clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			gen := workload.Spec{
				Name:        fmt.Sprintf("client-%d", cl),
				Dom:         cfg.Dom,
				Selectivity: cfg.Selectivity,
				Kind:        cfg.Dist,
				Seed:        cfg.QuerySeed + int64(cl),
			}.Build()
			local := &deltas[cl]
			for i := 0; i < perClient; i++ {
				q := gen.Next()
				_, st := strat.Select(q.Range())
				local.Add(st)
			}
		}(cl)
	}
	wg.Wait()
	wall := time.Since(start)

	res := &ConcurrentResult{
		Cfg:           cfg,
		Queries:       perClient * cfg.Clients,
		FinalSegments: strat.SegmentCount(),
		Wall:          wall,
	}
	for i := range deltas {
		res.ReadBytes += deltas[i].ReadBytes
		res.WriteBytes += deltas[i].WriteBytes
		res.ResultCount += deltas[i].ResultCount
		res.Splits += deltas[i].Splits
		res.Drops += deltas[i].Drops
		res.Recodes += deltas[i].Recodes
	}
	if sec := wall.Seconds(); sec > 0 {
		res.QPS = float64(res.Queries) / sec
	}
	return res
}

// runConcurrentExperiment is the "concurrent" experiment: both strategies
// under APM, scaled from 1 to 8 clients over the uniform workload. The
// interesting columns are throughput and the per-query read volume —
// adaptation converges to the same layout no matter how many clients
// drive it, so reads per query stay flat while QPS scales with the
// hardware (on a single-core host the rows mostly demonstrate safety,
// not speedup).
func runConcurrentExperiment(scale Scale) string {
	n := scale.queries(4000)
	tb := stats.NewTable(
		fmt.Sprintf("Concurrent query streams over one shared column (APM, uniform, sel 0.1, %d queries total, GOMAXPROCS=%d)",
			n, runtime.GOMAXPROCS(0)),
		"Strategy", "Clients", "Reads KB/q", "Splits", "Drops", "Segments", "Wall ms", "QPS")
	for _, strat := range []StrategyKind{Segmentation, Replication} {
		for _, clients := range []int{1, 2, 4, 8} {
			cfg := ConcurrentConfig{Clients: clients, Parallelism: 4}
			cfg.Config = DefaultConfig()
			cfg.NumQueries = n
			cfg.Strategy = strat
			r := RunConcurrent(cfg)
			reads := float64(r.ReadBytes) / float64(r.Queries) / float64(domain.KB)
			tb.AddRow(cfg.StrategyName(), fmt.Sprint(clients),
				fmt.Sprintf("%.1f", reads),
				fmt.Sprint(r.Splits), fmt.Sprint(r.Drops),
				fmt.Sprint(r.FinalSegments),
				fmt.Sprintf("%d", r.Wall.Milliseconds()),
				fmt.Sprintf("%.0f", r.QPS))
		}
	}
	return tb.Render()
}

// runReplicatedConcurrentExperiment is the "replicated-concurrent"
// experiment — the serialization-win measurement of the persistent
// replica tree. A replication column is converged by a serial warmup,
// then 1–8 concurrent clients replay pure scan streams: before PR 5
// every one of those scans held the tree's writer mutex end to end, so
// QPS flatlined at the single-client rate regardless of client count;
// with the lock-free read path the aggregate throughput is free to
// scale with the host's cores (on a single-core host the rows mostly
// demonstrate that concurrency adds no serialization overhead).
func runReplicatedConcurrentExperiment(scale Scale) string {
	n := scale.queries(4000)
	tb := stats.NewTable(
		fmt.Sprintf("Concurrent scan streams over one converged replicated column (APM Repl, uniform, sel 0.1, %d queries total after %d warmup, GOMAXPROCS=%d)",
			n, n/2, runtime.GOMAXPROCS(0)),
		"Clients", "Reads KB/q", "Splits", "Drops", "Replicas", "Wall ms", "QPS", "QPS/client")
	for _, clients := range []int{1, 2, 4, 8} {
		cfg := ConcurrentConfig{Clients: clients, WarmupQueries: n / 2}
		cfg.Config = DefaultConfig()
		cfg.NumQueries = n
		cfg.Strategy = Replication
		r := RunConcurrent(cfg)
		reads := float64(r.ReadBytes) / float64(r.Queries) / float64(domain.KB)
		tb.AddRow(fmt.Sprint(clients),
			fmt.Sprintf("%.1f", reads),
			fmt.Sprint(r.Splits), fmt.Sprint(r.Drops),
			fmt.Sprint(r.FinalSegments),
			fmt.Sprintf("%d", r.Wall.Milliseconds()),
			fmt.Sprintf("%.0f", r.QPS),
			fmt.Sprintf("%.0f", r.QPS/float64(clients)))
	}
	return tb.Render()
}
