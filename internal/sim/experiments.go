package sim

import (
	"fmt"
	"strings"

	"selforg/internal/compress"
	"selforg/internal/domain"
	"selforg/internal/model"
	"selforg/internal/stats"
	"selforg/internal/workload"
)

// FourStrategies returns the four strategy/model combinations plotted in
// Figures 5–7: GD Segm, GD Repl, APM Segm, APM Repl.
func FourStrategies(base Config) []Config {
	out := make([]Config, 0, 4)
	for _, m := range []ModelKind{GD, APM} {
		for _, s := range []StrategyKind{Segmentation, Replication} {
			c := base
			c.Model = m
			c.Strategy = s
			out = append(out, c)
		}
	}
	return out
}

// RunAll executes every config and returns the results in order.
func RunAll(cfgs []Config) []*Result {
	out := make([]*Result, len(cfgs))
	for i, c := range cfgs {
		out[i] = Run(c)
	}
	return out
}

// CumulativeWrites runs the four strategies for the given distribution and
// selectivity and returns the cumulative write series — one panel of
// Figure 5 (uniform) or Figure 6 (Zipf).
func CumulativeWrites(dist workload.Kind, selectivity float64, numQueries int) []*stats.Series {
	base := DefaultConfig()
	base.Dist = dist
	base.Selectivity = selectivity
	if numQueries > 0 {
		base.NumQueries = numQueries
	}
	results := RunAll(FourStrategies(base))
	out := make([]*stats.Series, len(results))
	for i, r := range results {
		c := r.Writes.Cumulative()
		c.Name = r.Cfg.StrategyName()
		out[i] = c
	}
	return out
}

// ReadsPerQuery runs the four strategies (uniform, selectivity 0.1 by
// default in the paper) and returns the raw per-query read series for the
// first numQueries queries — the four panels of Figure 7.
func ReadsPerQuery(dist workload.Kind, selectivity float64, numQueries int) []*stats.Series {
	base := DefaultConfig()
	base.Dist = dist
	base.Selectivity = selectivity
	base.NumQueries = numQueries
	results := RunAll(FourStrategies(base))
	out := make([]*stats.Series, len(results))
	for i, r := range results {
		s := r.Reads
		s.Name = r.Cfg.StrategyName()
		out[i] = s
	}
	return out
}

// Table1Workloads are the four workload columns of Table 1.
var Table1Workloads = []struct {
	Label       string
	Dist        workload.Kind
	Selectivity float64
}{
	{"U 0.1", workload.KindUniform, 0.1},
	{"U 0.01", workload.KindUniform, 0.01},
	{"Z 0.1", workload.KindZipf, 0.1},
	{"Z 0.01", workload.KindZipf, 0.01},
}

// Table1 reproduces "Table 1: Average read sizes in KB for 10K queries":
// rows are the four strategies, columns the four workloads.
func Table1(numQueries int) *stats.Table {
	base := DefaultConfig()
	if numQueries > 0 {
		base.NumQueries = numQueries
	}
	cols := []string{"Strategy"}
	for _, w := range Table1Workloads {
		cols = append(cols, w.Label)
	}
	tb := stats.NewTable("Table 1: Average read sizes in KB", cols...)
	for _, sc := range FourStrategies(base) {
		cells := []string{sc.StrategyName()}
		for _, w := range Table1Workloads {
			c := sc
			c.Dist = w.Dist
			c.Selectivity = w.Selectivity
			r := Run(c)
			cells = append(cells, fmt.Sprintf("%.1f", r.AvgReadKB()))
		}
		tb.AddRow(cells...)
	}
	return tb
}

// ReplicaStorage runs the two replication strategies (GD Repl, APM Repl)
// and returns the per-query storage series plus the constant DB-size
// reference line — one panel of Figure 8 (uniform) or Figure 9 (Zipf).
func ReplicaStorage(dist workload.Kind, selectivity float64, numQueries int) []*stats.Series {
	base := DefaultConfig()
	base.Dist = dist
	base.Selectivity = selectivity
	if numQueries > 0 {
		base.NumQueries = numQueries
	}
	base.Strategy = Replication
	var out []*stats.Series
	dbSize := stats.NewSeries("DB size")
	for _, m := range []ModelKind{GD, APM} {
		c := base
		c.Model = m
		r := Run(c)
		s := r.Storage
		s.Name = r.Cfg.StrategyName()
		out = append(out, s)
		if dbSize.Len() == 0 {
			for i := 0; i < s.Len(); i++ {
				dbSize.Append(float64(r.ColumnBytes))
			}
		}
	}
	return append(out, dbSize)
}

// SaturationPoint returns the 1-based index of the last query that caused
// any write, or 0 if none did — the §6.1.1 saturation measure ("the APM
// model stops reorganizing the column after an initial number of
// queries").
func SaturationPoint(writes *stats.Series) int {
	last := 0
	for i := 0; i < writes.Len(); i++ {
		if writes.At(i) > 0 {
			last = i + 1
		}
	}
	return last
}

// Chart renders series as one ASCII panel in the style of the paper's
// figures.
func Chart(title, xLabel, yLabel string, logX, logY bool, series []*stats.Series) string {
	ch := &stats.Chart{
		Title:  title,
		XLabel: xLabel,
		YLabel: yLabel,
		Width:  76,
		Height: 22,
		LogX:   logX,
		LogY:   logY,
	}
	for _, s := range series {
		ch.AddSeriesFrom(s)
	}
	return ch.Render()
}

// PeakExtraStorageRatio returns max(storage)/columnBytes - 1, the "extra
// storage of about 1.5 times the column size" measure of §6.1.3.
func PeakExtraStorageRatio(storage *stats.Series, columnBytes int64) float64 {
	if columnBytes == 0 {
		return 0
	}
	return storage.Max()/float64(columnBytes) - 1
}

// Below is the experiment registry consumed by cmd/sosim; each entry knows
// how to render itself as text.

// Experiment is a runnable, named §6.1 experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func(scale Scale) string
}

// Scale shrinks experiments for quick runs: Queries caps the query count
// (0 = paper-faithful).
type Scale struct {
	Queries int
}

func (s Scale) queries(paper int) int {
	if s.Queries > 0 && s.Queries < paper {
		return s.Queries
	}
	return paper
}

// Experiments lists every §6.1 table and figure.
func Experiments() []Experiment {
	return []Experiment{
		{ID: "fig2", Title: "Figure 2: Gaussian Dice decision function O(x)", Run: runFig2},
		{ID: "fig5", Title: "Figure 5: cumulative memory writes, uniform", Run: runFig5},
		{ID: "fig6", Title: "Figure 6: cumulative memory writes, Zipf", Run: runFig6},
		{ID: "fig7", Title: "Figure 7: memory reads, first 1000 queries, uniform 0.1", Run: runFig7},
		{ID: "table1", Title: "Table 1: average read sizes (KB) over 10K queries", Run: runTable1},
		{ID: "fig8", Title: "Figure 8: replica storage, uniform", Run: runFig8},
		{ID: "fig9", Title: "Figure 9: replica storage, Zipf", Run: runFig9},
		{ID: "compress", Title: "Extension: adaptive per-segment compression vs plain storage", Run: runCompress},
		{ID: "concurrent", Title: "Extension: N concurrent query streams over one shared column", Run: runConcurrentExperiment},
		{ID: "replicated-concurrent", Title: "Extension: lock-free concurrent scans on a converged replicated column", Run: runReplicatedConcurrentExperiment},
		{ID: "mixed", Title: "Extension: mixed read-write streams through the MVCC delta store", Run: runMixedExperiment},
		{ID: "sharded", Title: "Extension: domain-sharded column, concurrent read scaling", Run: runShardedExperiment},
		{ID: "sharded-mixed", Title: "Extension: domain-sharded column, mixed read-write writer scaling", Run: runShardedMixedExperiment},
		{ID: "report", Title: "Numeric digest of every §6.1 exhibit (for EXPERIMENTS.md)", Run: runReport},
	}
}

// compressDatasets are the two data shapes of the compression experiment:
// the paper's uniform 1M-value domain (frame-of-reference territory) and
// a 64-value categorical column (run-length/dictionary territory).
var compressDatasets = []struct {
	Label string
	Card  int
}{
	{"uniform-1M", 0},
	{"categorical-64", 64},
}

// runCompress is the compression extension experiment: the APM strategies
// with the advisor on versus the plain layout, over both data shapes. It
// reports read/write volumes, the final physical footprint and the
// compression ratio — the sim-side evidence behind the subsystem.
func runCompress(scale Scale) string {
	n := scale.queries(2000)
	var b strings.Builder
	tb := stats.NewTable("Adaptive compression vs plain storage (APM, uniform queries, sel 0.1)",
		"Data", "Strategy", "Reads KB/q", "Writes KB total", "Storage KB", "Logical KB", "Ratio", "Recodes", "Encodings")
	for _, ds := range compressDatasets {
		for _, strat := range []StrategyKind{Segmentation, Replication} {
			for _, mode := range []compress.Mode{compress.Off, compress.Auto} {
				c := DefaultConfig()
				c.NumQueries = n
				c.Strategy = strat
				c.Compression = mode
				c.LowCardinality = ds.Card
				r := Run(c)
				logical := r.Logical.At(r.Logical.Len() - 1)
				phys := r.Compressed.At(r.Compressed.Len() - 1)
				ratio := 1.0
				if phys > 0 {
					ratio = logical / phys
				}
				tb.AddRow(ds.Label, r.Cfg.StrategyName(),
					fmt.Sprintf("%.1f", r.AvgReadKB()),
					fmt.Sprintf("%.0f", r.Writes.Sum()/1024),
					fmt.Sprintf("%.0f", phys/1024),
					fmt.Sprintf("%.0f", logical/1024),
					fmt.Sprintf("%.2fx", ratio),
					fmt.Sprint(r.Recodes),
					r.FinalEncodings.String())
			}
		}
	}
	b.WriteString(tb.Render())
	return b.String()
}

// CompressedStorage runs one strategy with and without compression and
// returns the per-query physical-storage series plus the logical
// reference — the TSV export of the compression experiment.
func CompressedStorage(strat StrategyKind, lowCard int, numQueries int) []*stats.Series {
	out := make([]*stats.Series, 0, 3)
	for _, mode := range []compress.Mode{compress.Off, compress.Auto} {
		c := DefaultConfig()
		c.Strategy = strat
		c.Compression = mode
		c.LowCardinality = lowCard
		if numQueries > 0 {
			c.NumQueries = numQueries
		}
		r := Run(c)
		s := r.Compressed
		s.Name = r.Cfg.StrategyName()
		out = append(out, s)
		if mode == compress.Auto {
			l := r.Logical
			l.Name = r.Cfg.StrategyName() + " logical"
			out = append(out, l)
		}
	}
	return out
}

// EncodingTable tabulates the per-encoding storage breakdown (segment
// counts and physical bytes per encoding) after a compressed run of
// every strategy over both data shapes — the PR-1 follow-up counters,
// exported by cmd/sosim as encodings.tsv.
func EncodingTable(numQueries int) *stats.Table {
	tb := stats.NewTable("Per-encoding storage breakdown after adaptive-compression runs",
		"Data", "Strategy", "Encoding", "Segments", "Bytes")
	for _, ds := range compressDatasets {
		for _, strat := range []StrategyKind{Segmentation, Replication} {
			c := DefaultConfig()
			if numQueries > 0 {
				c.NumQueries = numQueries
			}
			c.Strategy = strat
			c.Compression = compress.Auto
			c.LowCardinality = ds.Card
			r := Run(c)
			for _, e := range compress.Encodings {
				tb.AddRow(ds.Label, r.Cfg.StrategyName(), e.String(),
					fmt.Sprint(r.FinalEncodings.Segments[e]),
					fmt.Sprint(r.FinalEncodings.Bytes[e]))
			}
		}
	}
	return tb
}

// runReport condenses every simulation exhibit into the numbers the paper
// reports in prose: total/ratio write volumes, saturation points, read
// convergence, storage peaks and drop dynamics.
func runReport(scale Scale) string {
	var b strings.Builder
	n10k := scale.queries(10_000)

	for _, d := range []struct {
		label string
		kind  workload.Kind
	}{{"uniform", workload.KindUniform}, {"zipf", workload.KindZipf}} {
		for _, sel := range []float64{0.1, 0.01} {
			base := DefaultConfig()
			base.Dist = d.kind
			base.Selectivity = sel
			base.NumQueries = n10k
			results := RunAll(FourStrategies(base))
			byName := map[string]*Result{}
			for _, r := range results {
				byName[r.Cfg.StrategyName()] = r
			}
			fmt.Fprintf(&b, "[fig5/6] %s sel %g (n=%d):\n", d.label, sel, n10k)
			for _, name := range []string{"GD Segm", "GD Repl", "APM Segm", "APM Repl"} {
				r := byName[name]
				fmt.Fprintf(&b, "  %-9s total writes %8.0f KB, saturation at query %5d, avg reads %6.1f KB\n",
					name, r.Writes.Sum()/1024, SaturationPoint(r.Writes), r.AvgReadKB())
			}
			segW, repW := byName["APM Segm"].Writes.Sum(), byName["APM Repl"].Writes.Sum()
			if repW > 0 {
				fmt.Fprintf(&b, "  APM Segm/Repl write ratio: %.2fx (paper: ~2.5x)\n", segW/repW)
			}
			if byName["APM Repl"].Storage != nil {
				r := byName["APM Repl"]
				fmt.Fprintf(&b, "  APM Repl storage peak %.0f KB (column %d KB), extra %.2fx, drops %d\n",
					r.Storage.Max()/1024, r.ColumnBytes/1024,
					PeakExtraStorageRatio(r.Storage, r.ColumnBytes), r.Drops)
				g := byName["GD Repl"]
				fmt.Fprintf(&b, "  GD  Repl storage peak %.0f KB, extra %.2fx, drops %d\n",
					g.Storage.Max()/1024, PeakExtraStorageRatio(g.Storage, g.ColumnBytes), g.Drops)
			}
			b.WriteString("\n")
		}
	}

	// Figure 7 digest: early spikes and converged tail per strategy.
	series := ReadsPerQuery(workload.KindUniform, 0.1, scale.queries(1000))
	fmt.Fprintf(&b, "[fig7] uniform sel 0.1, first %d queries:\n", scale.queries(1000))
	for _, s := range series {
		spikes := 0
		colBytes := float64(DefaultConfig().ColumnCount) * 4
		for i := 1; i < s.Len(); i++ {
			if s.At(i) >= colBytes {
				spikes++
			}
		}
		fmt.Fprintf(&b, "  %-9s first %8.0f B, tail(100) %8.0f B, full-scan spikes after q1: %d\n",
			s.Name, s.At(0), s.Tail(100), spikes)
	}
	return b.String()
}

// runFig2 renders the §3.2.1 decision function O(x) = G(x)/G(0.5) for a
// few sigma = SizeS/TotSize values (the shape shown in Figure 2).
func runFig2(Scale) string {
	ch := &stats.Chart{
		Title:  "Gaussian Dice: split probability O(x) vs partition ratio x",
		XLabel: "partition ratio x = SizeP/SizeS",
		YLabel: "O(x)",
		Width:  72, Height: 20,
	}
	for _, sigma := range []float64{0.1, 0.25, 0.5, 1.0} {
		pts := make([]stats.Point, 0, 101)
		for i := 0; i <= 100; i++ {
			x := float64(i) / 100
			pts = append(pts, stats.Point{X: x, Y: model.Odds(x, sigma)})
		}
		ch.AddSeries(fmt.Sprintf("sigma=%.2f", sigma), pts)
	}
	return ch.Render()
}

func runWritesFigure(title string, dist workload.Kind, scale Scale) string {
	out := ""
	for _, sel := range []float64{0.1, 0.01} {
		series := CumulativeWrites(dist, sel, scale.queries(10_000))
		out += Chart(fmt.Sprintf("%s, selectivity %g", title, sel),
			"queries", "memory writes (bytes)", true, true, series)
		out += "\n"
	}
	return out
}

func runFig5(scale Scale) string {
	return runWritesFigure("Cumulative memory writes, uniform", workload.KindUniform, scale)
}

func runFig6(scale Scale) string {
	return runWritesFigure("Cumulative memory writes, Zipf", workload.KindZipf, scale)
}

func runFig7(scale Scale) string {
	series := ReadsPerQuery(workload.KindUniform, 0.1, scale.queries(1000))
	out := ""
	for _, s := range series {
		out += Chart(fmt.Sprintf("Memory reads per query — %s", s.Name),
			"queries", "reads (bytes)", false, true, []*stats.Series{s})
		out += "\n"
	}
	return out
}

func runTable1(scale Scale) string {
	return Table1(scale.queries(10_000)).Render()
}

func runFig8(scale Scale) string {
	out := ""
	for _, sel := range []float64{0.1, 0.01} {
		series := ReplicaStorage(workload.KindUniform, sel, scale.queries(500))
		out += Chart(fmt.Sprintf("Replica storage, uniform, selectivity %g", sel),
			"queries", "storage (bytes)", false, false, series)
		out += "\n"
	}
	return out
}

func runFig9(scale Scale) string {
	out := ""
	for _, sel := range []float64{0.1, 0.01} {
		series := ReplicaStorage(workload.KindZipf, sel, scale.queries(10_000))
		out += Chart(fmt.Sprintf("Replica storage, Zipf, selectivity %g", sel),
			"queries", "storage (bytes)", false, false, series)
		out += "\n"
	}
	return out
}

// ColumnBytesDefault is the DB size of the default setup (400 KB).
func ColumnBytesDefault() domain.ByteSize {
	c := DefaultConfig()
	return domain.ByteSize(int64(c.ColumnCount) * c.ElemSize)
}
