package sim

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"selforg/internal/core"
	"selforg/internal/delta"
	"selforg/internal/domain"
	"selforg/internal/segment"
	"selforg/internal/stats"
	"selforg/internal/workload"
)

// Mixed read-write workload driver: the workload space the paper cannot
// express. N clients share one self-organizing column; each operation is
// a range query with probability 1-WriteRatio, otherwise a point write
// (half inserts, a quarter updates, a quarter deletes) through the MVCC
// delta store. Writes trigger the self-organizing merge-back per the
// configured thresholds, so the run exercises the full loop: delta
// accumulation → overlay reads → merge-back → Segmenter/Replicator
// absorbing the merged rows.

// MixedConfig shapes a multi-client read-write run.
type MixedConfig struct {
	ConcurrentConfig
	// WriteRatio is the fraction of operations that are point writes
	// (default 0.2). Per write: 50% insert, 25% update, 25% delete.
	WriteRatio float64
	// DeltaMaxBytes / DeltaMaxRatio are the merge-back triggers handed
	// to the strategy (defaults 1 KB / 0.05 — small enough that the
	// default 400 KB column sees merge churn within a few hundred
	// writes).
	DeltaMaxBytes int64
	DeltaMaxRatio float64
}

// MixedResult aggregates a mixed run.
type MixedResult struct {
	Cfg MixedConfig
	// Queries and Writes count the executed operations; Misses the
	// update/delete attempts that found no visible row.
	Queries, Writes, Misses int
	// Merged cost measures over all clients.
	ReadBytes, WriteBytes, DeltaReadBytes int64
	ResultCount                           int64
	Splits, Recodes, Merged               int
	// Delta is a snapshot of the write store's final counters (Merges,
	// Pending, ...), FinalEncodings the per-encoding layout breakdown.
	Delta          delta.Stats
	FinalEncodings segment.EncodingStats
	// FinalSegments is the number of data-bearing segments at the end.
	FinalSegments int
	Wall          time.Duration
	OPS           float64 // operations (reads+writes) per wall second
}

// RunMixed executes the configured multi-client mixed workload and
// returns the merged statistics plus the strategy itself (so callers can
// inspect the final layout, delta counters and encoding breakdown).
func RunMixed(cfg MixedConfig) *MixedResult {
	cfg.Config = cfg.Config.withDefaults()
	if cfg.Clients < 1 {
		cfg.Clients = 4
	}
	if cfg.WriteRatio <= 0 {
		cfg.WriteRatio = 0.2
	}
	if cfg.DeltaMaxBytes == 0 {
		cfg.DeltaMaxBytes = 1024
	}
	if cfg.DeltaMaxRatio == 0 {
		cfg.DeltaMaxRatio = 0.05
	}
	vals := cfg.generateValues()
	// Keep a sample pool for update/delete targets; the strategy consumes
	// the original slice.
	pool := append([]domain.Value(nil), vals...)
	strat := cfg.buildStrategyOver(vals)
	if p, ok := strat.(parallelizable); ok {
		p.SetParallelism(cfg.Parallelism)
	}
	strat.SetDeltaPolicy(cfg.DeltaMaxBytes, cfg.DeltaMaxRatio)

	perClient := cfg.NumQueries / cfg.Clients
	if perClient < 1 {
		perClient = 1
	}
	type clientOut struct {
		st             core.QueryStats
		writes, misses int
		queries        int
	}
	outs := make([]clientOut, cfg.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	for cl := 0; cl < cfg.Clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			gen := workload.Spec{
				Name:        fmt.Sprintf("mixed-%d", cl),
				Dom:         cfg.Dom,
				Selectivity: cfg.Selectivity,
				Kind:        cfg.Dist,
				Seed:        cfg.QuerySeed + int64(cl),
			}.Build()
			rnd := rand.New(rand.NewSource(cfg.QuerySeed + 7919*int64(cl+1)))
			local := &outs[cl]
			for i := 0; i < perClient; i++ {
				if rnd.Float64() >= cfg.WriteRatio {
					q := gen.Next()
					_, st := strat.Select(q.Range())
					local.st.Add(st)
					local.queries++
					continue
				}
				local.writes++
				switch rnd.Intn(4) {
				case 0, 1: // insert
					v := cfg.Dom.Lo + rnd.Int63n(cfg.Dom.Width())
					st, _ := strat.Insert(v)
					local.st.Add(st)
				case 2: // update
					old := pool[rnd.Intn(len(pool))]
					new := cfg.Dom.Lo + rnd.Int63n(cfg.Dom.Width())
					ok, st, _ := strat.Update(old, new)
					local.st.Add(st)
					if !ok {
						local.misses++
					}
				default: // delete
					v := pool[rnd.Intn(len(pool))]
					ok, st, _ := strat.Delete(v)
					local.st.Add(st)
					if !ok {
						local.misses++
					}
				}
			}
		}(cl)
	}
	wg.Wait()
	wall := time.Since(start)

	res := &MixedResult{
		Cfg:            cfg,
		Delta:          strat.DeltaStats(),
		FinalEncodings: strat.EncodingStats(),
		FinalSegments:  strat.SegmentCount(),
		Wall:           wall,
	}
	for i := range outs {
		res.Queries += outs[i].queries
		res.Writes += outs[i].writes
		res.Misses += outs[i].misses
		res.ReadBytes += outs[i].st.ReadBytes
		res.WriteBytes += outs[i].st.WriteBytes
		res.DeltaReadBytes += outs[i].st.DeltaReadBytes
		res.ResultCount += outs[i].st.ResultCount
		res.Splits += outs[i].st.Splits
		res.Recodes += outs[i].st.Recodes
		res.Merged += outs[i].st.Merged
	}
	if sec := wall.Seconds(); sec > 0 {
		res.OPS = float64(res.Queries+res.Writes) / sec
	}
	return res
}

// runMixedExperiment is the "mixed" experiment: both strategies under
// APM over uniform queries, scaled across client counts and write
// ratios. The interesting columns are the merge-back activity (Merges,
// Merged rows) and the split counts — the Segmenter keeps reorganizing
// while absorbing merged rows — plus the overlay read volume the delta
// store adds per query.
func runMixedExperiment(scale Scale) string {
	n := scale.queries(4000)
	tb := stats.NewTable(
		fmt.Sprintf("Mixed read-write streams over one shared column (APM, uniform, sel 0.1, %d ops total, GOMAXPROCS=%d)",
			n, runtime.GOMAXPROCS(0)),
		"Strategy", "Clients", "Write%", "Queries", "Writes", "Merges", "Merged", "Reads KB/q", "Overlay KB/q", "Splits", "Segments", "OPS")
	for _, strat := range []StrategyKind{Segmentation, Replication} {
		for _, clients := range []int{1, 4} {
			for _, ratio := range []float64{0.1, 0.3} {
				// Merge every 64 pending entries so the checkpoint churn is
				// visible even on scaled-down (-queries) runs.
				cfg := MixedConfig{WriteRatio: ratio, DeltaMaxBytes: 256}
				cfg.Config = DefaultConfig()
				cfg.NumQueries = n
				cfg.Strategy = strat
				cfg.Clients = clients
				r := RunMixed(cfg)
				ds := r.Delta
				reads, overlay := 0.0, 0.0
				if r.Queries > 0 {
					reads = float64(r.ReadBytes) / float64(r.Queries) / float64(domain.KB)
					overlay = float64(r.DeltaReadBytes) / float64(r.Queries) / float64(domain.KB)
				}
				tb.AddRow(cfg.StrategyName(), fmt.Sprint(clients),
					fmt.Sprintf("%.0f", ratio*100),
					fmt.Sprint(r.Queries), fmt.Sprint(r.Writes),
					fmt.Sprint(ds.Merges), fmt.Sprint(ds.MergedEntries),
					fmt.Sprintf("%.1f", reads),
					fmt.Sprintf("%.2f", overlay),
					fmt.Sprint(r.Splits),
					fmt.Sprint(r.FinalSegments),
					fmt.Sprintf("%.0f", r.OPS))
			}
		}
	}
	return tb.Render()
}
