package sim

import (
	"strings"
	"testing"

	"selforg/internal/domain"
	"selforg/internal/stats"
	"selforg/internal/workload"
)

// smallCfg shrinks the paper setup ~10x for fast unit tests while keeping
// the same proportions (selection size : Mmin : Mmax : column size).
func smallCfg() Config {
	c := DefaultConfig()
	c.ColumnCount = 10_000
	c.Dom = domain.NewRange(0, 99_999)
	c.NumQueries = 600
	c.APMMin = 300
	c.APMMax = 1200
	return c
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	c := DefaultConfig()
	if c.ColumnCount != 100_000 {
		t.Errorf("column count = %d", c.ColumnCount)
	}
	if c.Dom.Width() != 1_000_000 {
		t.Errorf("domain width = %d", c.Dom.Width())
	}
	if c.ElemSize != 4 {
		t.Errorf("elem size = %d", c.ElemSize)
	}
	if c.NumQueries != 10_000 {
		t.Errorf("queries = %d", c.NumQueries)
	}
	if c.APMMin != 3*1024 || c.APMMax != 12*1024 {
		t.Errorf("APM bounds = %d/%d", c.APMMin, c.APMMax)
	}
	// The paper's "400 KB" column: 100K values x 4 bytes = 400,000 bytes.
	if ColumnBytesDefault() != domain.ByteSize(400_000) {
		t.Errorf("DB size = %v, want 400000 bytes", ColumnBytesDefault())
	}
}

func TestGenerateColumn(t *testing.T) {
	dom := domain.NewRange(0, 999)
	vals := GenerateColumn(5000, dom, 42)
	if len(vals) != 5000 {
		t.Fatalf("len = %d", len(vals))
	}
	seen := map[int64]bool{}
	for _, v := range vals {
		if !dom.Contains(v) {
			t.Fatalf("value %d outside domain", v)
		}
		seen[v*10/dom.Width()] = true
	}
	if len(seen) != 10 {
		t.Errorf("coverage: %d/10 deciles", len(seen))
	}
	again := GenerateColumn(5000, dom, 42)
	for i := range vals {
		if vals[i] != again[i] {
			t.Fatal("same seed diverged")
		}
	}
}

func TestRunProducesFullSeries(t *testing.T) {
	c := smallCfg()
	r := Run(c)
	if r.Writes.Len() != c.NumQueries || r.Reads.Len() != c.NumQueries || r.Storage.Len() != c.NumQueries {
		t.Fatalf("series lengths %d/%d/%d", r.Writes.Len(), r.Reads.Len(), r.Storage.Len())
	}
	if r.FinalSegments < 2 {
		t.Errorf("no reorganization happened: %d segments", r.FinalSegments)
	}
	if r.ColumnBytes != 40_000 {
		t.Errorf("column bytes = %d", r.ColumnBytes)
	}
}

func TestRunDeterministic(t *testing.T) {
	c := smallCfg()
	a, b := Run(c), Run(c)
	if a.Writes.Sum() != b.Writes.Sum() || a.Reads.Sum() != b.Reads.Sum() {
		t.Error("same config diverged")
	}
}

func TestSegmentationStorageConstantReplicationVaries(t *testing.T) {
	c := smallCfg()
	c.Strategy = Segmentation
	seg := Run(c)
	if seg.Storage.Min() != seg.Storage.Max() {
		t.Error("segmentation storage must be constant")
	}
	c.Strategy = Replication
	rep := Run(c)
	if rep.Storage.Max() <= float64(rep.ColumnBytes) {
		t.Error("replication storage never exceeded the column size")
	}
}

// TestReplicationWritesLess verifies the §6.1.1 headline on the scaled
// setup for both models and both distributions.
func TestReplicationWritesLess(t *testing.T) {
	for _, m := range []ModelKind{GD, APM} {
		for _, dist := range []workload.Kind{workload.KindUniform, workload.KindZipf} {
			c := smallCfg()
			c.Model = m
			c.Dist = dist
			c.Strategy = Segmentation
			seg := Run(c)
			c.Strategy = Replication
			rep := Run(c)
			if rep.Writes.Sum() >= seg.Writes.Sum() {
				t.Errorf("%v/%v: repl writes %.0f >= segm writes %.0f",
					m, dist, rep.Writes.Sum(), seg.Writes.Sum())
			}
		}
	}
}

// TestAPMSaturates verifies "the APM model stops reorganizing the column
// after an initial number of queries" for uniform load (§6.1.1): the bulk
// of all write volume lands in the first quarter of the run.
func TestAPMSaturates(t *testing.T) {
	c := smallCfg()
	c.NumQueries = 2000
	c.Model = APM
	c.Strategy = Segmentation
	r := Run(c)
	cum := r.Writes.Cumulative()
	early := cum.At(c.NumQueries/4 - 1)
	total := cum.At(c.NumQueries - 1)
	if frac := early / total; frac < 0.80 {
		t.Errorf("APM write volume in first quarter = %.2f, want >= 0.80 (saturation)", frac)
	}
}

// TestGDKeepsReorganizingLongerThanAPM: "the GD model keeps issuing
// reorganization with decreasing probability" (§6.1.1) — GD front-loads a
// smaller fraction of its write volume than APM does.
func TestGDKeepsReorganizingLongerThanAPM(t *testing.T) {
	c := smallCfg()
	c.NumQueries = 2000
	c.Strategy = Segmentation
	frontFrac := func(m ModelKind) float64 {
		c.Model = m
		r := Run(c)
		cum := r.Writes.Cumulative()
		return cum.At(c.NumQueries/4-1) / cum.At(c.NumQueries-1)
	}
	apm, gd := frontFrac(APM), frontFrac(GD)
	if gd >= apm {
		t.Errorf("GD front-load %.3f >= APM front-load %.3f — GD should keep splitting longer", gd, apm)
	}
}

// TestReadsConvergeTowardsResultSize reproduces Table 1's row logic: with
// selectivity 0.1 the tail-average read size approaches the result size.
func TestReadsConvergeTowardsResultSize(t *testing.T) {
	c := smallCfg()
	c.NumQueries = 1500
	c.Strategy = Segmentation
	c.Model = APM
	r := Run(c)
	resultBytes := float64(c.ElemSize) * float64(c.ColumnCount) * c.Selectivity // 4 KB here
	tail := r.Reads.Tail(300)
	if tail > 2.5*resultBytes {
		t.Errorf("tail reads %.0f, want near result size %.0f", tail, resultBytes)
	}
	first := r.Reads.At(0)
	if first != float64(r.ColumnBytes) {
		t.Errorf("first query read %.0f, want full column %d", first, r.ColumnBytes)
	}
}

// TestAPMReadsBoundedByMmaxSmallSelectivity reproduces the Table 1
// observation that with selectivity 0.01 APM reads stay between the result
// size and a few Mmax ("converges to 11-13KB and does not reach the
// minimum determined by the selection size of 4KB").
func TestAPMReadsBoundedByMmaxSmallSelectivity(t *testing.T) {
	c := smallCfg()
	c.Selectivity = 0.01
	c.NumQueries = 2000
	c.Strategy = Segmentation
	c.Model = APM
	r := Run(c)
	resultBytes := float64(c.ElemSize) * float64(c.ColumnCount) * c.Selectivity
	tail := r.Reads.Tail(300)
	if tail < resultBytes {
		t.Errorf("tail reads %.0f below result size %.0f — impossible", tail, resultBytes)
	}
	if tail > 4*float64(c.APMMax) {
		t.Errorf("tail reads %.0f not bounded by Mmax regime (%d)", tail, c.APMMax)
	}
}

// TestReplicationFullScanSpikes: Figure 7's replication panels show
// early full-column spikes when queries hit untouched areas.
func TestReplicationFullScanSpikes(t *testing.T) {
	c := smallCfg()
	c.Strategy = Replication
	c.Model = APM
	r := Run(c)
	spikes := 0
	for i := 1; i < 100 && i < r.Reads.Len(); i++ {
		if r.Reads.At(i) >= float64(r.ColumnBytes) {
			spikes++
		}
	}
	if spikes == 0 {
		t.Error("no early full-scan spikes in replication reads")
	}
}

// TestReplicaStoragePeaksAndDrops reproduces the Figure 8 shape: storage
// grows well past the column size, then big drops release it as parents
// become fully replicated.
func TestReplicaStoragePeaksAndDrops(t *testing.T) {
	c := smallCfg()
	c.Strategy = Replication
	c.Model = APM
	c.NumQueries = 2000
	r := Run(c)
	peak := PeakExtraStorageRatio(r.Storage, r.ColumnBytes)
	if peak < 0.4 {
		t.Errorf("peak extra storage ratio = %.2f, want substantial growth", peak)
	}
	if r.Drops == 0 {
		t.Error("no replica drops happened")
	}
	final := r.Storage.At(r.Storage.Len() - 1)
	if final >= r.Storage.Max() {
		t.Error("storage never reduced from its peak")
	}
}

// TestGDStorageFallsFasterThanAPM: §6.1.3 "storage needs always reduce
// faster with the GD model".
func TestGDStorageFallsFasterThanAPM(t *testing.T) {
	c := smallCfg()
	c.Strategy = Replication
	c.NumQueries = 2000
	c.Model = GD
	gd := Run(c)
	c.Model = APM
	apm := Run(c)
	// Compare the mean storage over the last quarter of the run.
	n := c.NumQueries / 4
	if gd.Storage.Tail(n) > apm.Storage.Tail(n)*1.15 {
		t.Errorf("GD tail storage %.0f much higher than APM %.0f",
			gd.Storage.Tail(n), apm.Storage.Tail(n))
	}
}

func TestFourStrategies(t *testing.T) {
	cfgs := FourStrategies(smallCfg())
	if len(cfgs) != 4 {
		t.Fatalf("len = %d", len(cfgs))
	}
	names := map[string]bool{}
	for _, c := range cfgs {
		names[c.StrategyName()] = true
	}
	for _, want := range []string{"GD Segm", "GD Repl", "APM Segm", "APM Repl"} {
		if !names[want] {
			t.Errorf("missing strategy %q", want)
		}
	}
}

func TestCumulativeWritesSeries(t *testing.T) {
	// Shrunk run through the figure driver; series must be monotone.
	series := CumulativeWrites(workload.KindUniform, 0.1, 50)
	if len(series) != 4 {
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		for i := 1; i < s.Len(); i++ {
			if s.At(i) < s.At(i-1) {
				t.Fatalf("%s not monotone at %d", s.Name, i)
			}
		}
	}
}

func TestTable1Shape(t *testing.T) {
	tb := Table1(50)
	if tb.NumRows() != 4 {
		t.Errorf("rows = %d", tb.NumRows())
	}
	out := tb.Render()
	for _, want := range []string{"U 0.1", "Z 0.01", "GD Segm", "APM Repl"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q", want)
		}
	}
}

func TestReplicaStorageSeriesIncludesDBSize(t *testing.T) {
	series := ReplicaStorage(workload.KindUniform, 0.1, 50)
	if len(series) != 3 {
		t.Fatalf("series = %d", len(series))
	}
	db := series[2]
	if db.Name != "DB size" {
		t.Errorf("last series = %q", db.Name)
	}
	if db.Min() != db.Max() {
		t.Error("DB size line must be constant")
	}
}

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	ids := map[string]bool{}
	for _, e := range exps {
		ids[e.ID] = true
	}
	for _, want := range []string{"fig2", "fig5", "fig6", "fig7", "table1", "fig8", "fig9", "report"} {
		if !ids[want] {
			t.Errorf("missing experiment %q", want)
		}
	}
}

func TestExperimentsRenderScaled(t *testing.T) {
	// Smoke-run every registered experiment at a tiny scale.
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, e := range Experiments() {
		out := e.Run(Scale{Queries: 30})
		if len(out) == 0 {
			t.Errorf("%s produced no output", e.ID)
		}
	}
}

func TestKindStrings(t *testing.T) {
	if Segmentation.String() != "Segm" || Replication.String() != "Repl" {
		t.Error("strategy names")
	}
	if GD.String() != "GD" || APM.String() != "APM" {
		t.Error("model names")
	}
	if StrategyKind(5).String() != "StrategyKind(5)" || ModelKind(5).String() != "ModelKind(5)" {
		t.Error("unknown kind names")
	}
}

func TestScaleQueries(t *testing.T) {
	if (Scale{}).queries(100) != 100 {
		t.Error("zero scale must keep paper count")
	}
	if (Scale{Queries: 10}).queries(100) != 10 {
		t.Error("scale must cap")
	}
	if (Scale{Queries: 1000}).queries(100) != 100 {
		t.Error("scale must not inflate")
	}
}

func TestSaturationPoint(t *testing.T) {
	ser := newSeries(0, 5, 0, 3, 0, 0)
	if got := SaturationPoint(ser); got != 4 {
		t.Errorf("saturation = %d, want 4", got)
	}
	if got := SaturationPoint(newSeries(0, 0)); got != 0 {
		t.Errorf("all-zero saturation = %d, want 0", got)
	}
}

func newSeries(vals ...float64) *stats.Series {
	s := stats.NewSeries("t")
	for _, v := range vals {
		s.Append(v)
	}
	return s
}
