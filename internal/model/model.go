// Package model implements the segmentation models of §3.2 — the policies
// that decide, per query and per segment, whether a selection should
// reorganize the column: the randomized Gaussian Dice (GD, §3.2.1) and the
// deterministic Adaptive Pagination Model (APM, §3.2.2), plus Never/Always
// baselines.
//
// Both adaptive strategies (§4 segmentation, §5 replication) consult the
// same models; the Decision type carries enough structure for either
// interpretation (Algorithm 1's in-place splits and Algorithm 4's
// materialized/virtual replica cases).
package model

import (
	"fmt"

	"selforg/internal/domain"
)

// SegmentInfo is the model's view of the segment a query overlaps: its
// value range, its (possibly estimated) size and the size of the whole
// column. Sizes are in bytes, matching the Mmin/Mmax bounds and the
// SizeS/TotSize ratio of the paper.
type SegmentInfo struct {
	Rng        domain.Range
	Bytes      int64 // SizeS
	TotalBytes int64 // TotSize (whole column)
}

// estBytes estimates the size of a piece of the segment assuming values
// spread uniformly over the segment's range (§3.2.2 "using estimates of
// the segment sizes").
func (s SegmentInfo) estBytes(piece domain.Range) int64 {
	ov := s.Rng.Intersect(piece)
	if ov.IsEmpty() || s.Rng.Width() == 0 {
		return 0
	}
	return int64(float64(s.Bytes) * float64(ov.Width()) / float64(s.Rng.Width()))
}

// Action says how the segment should be reorganized.
type Action int

const (
	// NoSplit leaves the segment intact (Alg. 4 case 0: for a virtual
	// segment the replicator materializes it whole, without splitting).
	NoSplit Action = iota
	// SplitBounds splits the segment at the query bounds into the 2–3
	// pieces of the overlap geometry (Alg. 4 cases 1–3, APM rule 2).
	SplitBounds
	// SplitPoint splits the segment two-ways at Decision.Point (APM rule
	// 3 / Alg. 4 case 4: "among the query bounds or an approximation of
	// the mean value in the segment").
	SplitPoint
)

func (a Action) String() string {
	switch a {
	case NoSplit:
		return "no-split"
	case SplitBounds:
		return "split-bounds"
	case SplitPoint:
		return "split-point"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// Decision is the outcome of consulting a model for one (query, segment)
// pair.
type Decision struct {
	Action Action
	// Point is the two-way cut for SplitPoint: values <= Point go to the
	// left piece. Unused otherwise.
	Point domain.Value
	// MatLeft tells the replicator which side of a SplitPoint becomes the
	// materialized super-set of the selection (Alg. 4 case 4 picks the
	// smaller side containing a query bound).
	MatLeft bool
}

// Model is a segmentation policy.
type Model interface {
	// Name identifies the model in experiment output ("GD", "APM 1-25").
	Name() string
	// Decide returns the reorganization decision for query range q against
	// segment seg. q must overlap seg.Rng.
	Decide(q domain.Range, seg SegmentInfo) Decision
}

// splittable reports whether the overlap geometry offers any split point at
// all: a query covering the whole segment, or a one-value segment, cannot
// split it.
func splittable(q domain.Range, seg SegmentInfo) bool {
	if seg.Rng.Width() < 2 {
		return false
	}
	return domain.Classify(seg.Rng, q) != domain.CoversAll
}
