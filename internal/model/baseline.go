package model

import "selforg/internal/domain"

// Never is a baseline policy that never reorganizes — with it, adaptive
// segmentation degenerates to the paper's "NoSegm" scheme (a plain
// full-column organization).
type Never struct{}

// Name implements Model.
func (Never) Name() string { return "Never" }

// Decide implements Model.
func (Never) Decide(domain.Range, SegmentInfo) Decision {
	return Decision{Action: NoSplit}
}

// Always is a baseline policy that splits at the query bounds whenever
// geometry allows, the most aggressive cracking-style behaviour. Useful in
// ablations to show why the GD/APM guards against small pieces matter.
type Always struct{}

// Name implements Model.
func (Always) Name() string { return "Always" }

// Decide implements Model.
func (Always) Decide(q domain.Range, seg SegmentInfo) Decision {
	if !splittable(q, seg) {
		return Decision{Action: NoSplit}
	}
	return Decision{Action: SplitBounds}
}
