package model

import (
	"math"
	"math/rand"

	"selforg/internal/domain"
)

// GaussianDice is the randomized policy of §3.2.1: a 'learning' random
// generator that prefers splits producing roughly equal pieces and damps
// the impact of point queries.
//
// For a selection producing piece P out of segment S it draws r in [0, 1)
// and splits iff r < O(x), where x = SizeP/SizeS and
//
//	O(x) = G(x) / G(0.5),  G Gaussian with mu = 0.5, sigma = SizeS/TotSize
//
// so selections splitting a segment near the middle of its size have the
// highest probability, and the probability sharpens as segments shrink
// relative to the column (Figure 2).
type GaussianDice struct {
	rng *rand.Rand
}

// NewGaussianDice creates a GD model with a deterministic random source.
func NewGaussianDice(seed int64) *GaussianDice {
	return &GaussianDice{rng: rand.New(rand.NewSource(seed))}
}

// ShardSeed derives the GD seed for one shard of a domain-sharded
// column: deterministic, and decorrelated across shards so sibling
// shards do not roll identical dice streams. Every shard builder (the
// facade, sim and sky) must use this one derivation — shard 0 keeps the
// caller's seed, so a 1-shard column is byte-identical to unsharded.
func ShardSeed(seed int64, shardIdx int) int64 {
	return seed + 7919*int64(shardIdx)
}

// Name implements Model.
func (g *GaussianDice) Name() string { return "GD" }

// Odds returns O(x) for the given segment-to-column ratio sigma. Exposed
// for tests and for plotting Figure 2.
func Odds(x, sigma float64) float64 {
	if sigma <= 0 {
		return 0
	}
	d := x - 0.5
	return math.Exp(-(d * d) / (2 * sigma * sigma))
}

// Decide implements Model.
func (g *GaussianDice) Decide(q domain.Range, seg SegmentInfo) Decision {
	if !splittable(q, seg) {
		return Decision{Action: NoSplit}
	}
	if seg.Bytes <= 0 || seg.TotalBytes <= 0 {
		return Decision{Action: NoSplit}
	}
	sp := domain.Cut(seg.Rng, q)
	x := float64(seg.estBytes(sp.Overlap)) / float64(seg.Bytes)
	sigma := float64(seg.Bytes) / float64(seg.TotalBytes)
	if g.rng.Float64() < Odds(x, sigma) {
		return Decision{Action: SplitBounds}
	}
	return Decision{Action: NoSplit}
}
