package model

import (
	"math"
	"testing"

	"selforg/internal/domain"
)

func seg(lo, hi domain.Value, bytes, total int64) SegmentInfo {
	return SegmentInfo{Rng: domain.NewRange(lo, hi), Bytes: bytes, TotalBytes: total}
}

func TestOddsShape(t *testing.T) {
	// O(0.5) = 1 for any sigma; O decays away from 0.5; larger sigma
	// decays slower (Figure 2).
	if o := Odds(0.5, 0.3); o != 1 {
		t.Errorf("O(0.5) = %v, want 1", o)
	}
	if !(Odds(0.2, 0.3) < 1) {
		t.Error("O should decay away from 0.5")
	}
	if !(Odds(0.1, 0.9) > Odds(0.1, 0.1)) {
		t.Error("larger sigma must decay slower")
	}
	if Odds(0.4, 0) != 0 {
		t.Error("O with sigma=0 should be 0")
	}
	// Symmetry around 0.5.
	if math.Abs(Odds(0.3, 0.4)-Odds(0.7, 0.4)) > 1e-12 {
		t.Error("O should be symmetric around 0.5")
	}
}

func TestGDWholeColumnLikelySplits(t *testing.T) {
	// sigma = 1 for the initial full column: a mid-range selection should
	// split nearly always.
	g := NewGaussianDice(1)
	s := seg(0, 999, 4000, 4000)
	q := domain.NewRange(250, 749) // x = 0.5
	splits := 0
	for i := 0; i < 1000; i++ {
		if g.Decide(q, s).Action == SplitBounds {
			splits++
		}
	}
	if splits < 990 {
		t.Errorf("whole-column mid split rate = %d/1000, want ~1000", splits)
	}
}

func TestGDSmallSegmentPointQueryRarelySplits(t *testing.T) {
	// A point-ish query (x ~ 0.001) on a segment that is 1% of the column
	// (sigma = 0.01) should essentially never split.
	g := NewGaussianDice(2)
	s := seg(0, 999, 1000, 100_000)
	q := domain.NewRange(500, 500)
	splits := 0
	for i := 0; i < 1000; i++ {
		if g.Decide(q, s).Action != NoSplit {
			splits++
		}
	}
	if splits > 0 {
		t.Errorf("tiny-x split rate = %d/1000, want 0", splits)
	}
}

func TestGDSplitRateTracksOdds(t *testing.T) {
	// Empirical split frequency must approximate O(x).
	g := NewGaussianDice(3)
	s := seg(0, 999, 1000, 2000) // sigma = 0.5
	q := domain.NewRange(0, 299) // x = 0.3 → O = exp(-0.04/0.5) = 0.923
	n, splits := 20000, 0
	for i := 0; i < n; i++ {
		if g.Decide(q, s).Action == SplitBounds {
			splits++
		}
	}
	want := Odds(0.3, 0.5)
	got := float64(splits) / float64(n)
	if math.Abs(got-want) > 0.02 {
		t.Errorf("split rate = %v, want ~%v", got, want)
	}
}

func TestGDCoversAllNoSplit(t *testing.T) {
	g := NewGaussianDice(4)
	s := seg(100, 199, 400, 400)
	d := g.Decide(domain.NewRange(0, 500), s)
	if d.Action != NoSplit {
		t.Errorf("covers-all decision = %v", d.Action)
	}
}

func TestGDDeterministicWithSeed(t *testing.T) {
	s := seg(0, 999, 1000, 2000)
	q := domain.NewRange(100, 599)
	a, b := NewGaussianDice(42), NewGaussianDice(42)
	for i := 0; i < 100; i++ {
		if a.Decide(q, s) != b.Decide(q, s) {
			t.Fatal("same seed diverged")
		}
	}
}

func TestGDName(t *testing.T) {
	if NewGaussianDice(1).Name() != "GD" {
		t.Error("GD name wrong")
	}
}

func TestAPMName(t *testing.T) {
	a := NewAPM(3*1024, 12*1024)
	if a.Name() != "APM 3.00KB-12.00KB" {
		t.Errorf("APM name = %q", a.Name())
	}
}

func TestAPMPanicsOnBadBounds(t *testing.T) {
	for _, bounds := range [][2]int64{{0, 10}, {10, 10}, {20, 10}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bounds %v did not panic", bounds)
				}
			}()
			NewAPM(bounds[0], bounds[1])
		}()
	}
}

func TestAPMRule1SmallSegmentIntact(t *testing.T) {
	a := NewAPM(1000, 4000)
	s := seg(0, 999, 500, 100_000) // SizeS < Mmin
	d := a.Decide(domain.NewRange(200, 799), s)
	if d.Action != NoSplit {
		t.Errorf("rule 1 violated: %v", d.Action)
	}
}

func TestAPMRule2SplitAtBounds(t *testing.T) {
	a := NewAPM(1000, 4000)
	// Segment of 6000 bytes over [0, 5999]: query [2000, 3999] cuts pieces
	// of ~2000 bytes each, all >= Mmin.
	s := seg(0, 5999, 6000, 100_000)
	d := a.Decide(domain.NewRange(2000, 3999), s)
	if d.Action != SplitBounds {
		t.Errorf("rule 2 violated: %v", d.Action)
	}
}

func TestAPMRule3SmallPieceMidSegmentIntact(t *testing.T) {
	a := NewAPM(1000, 4000)
	// SizeS = 3000 (between Mmin and Mmax); a point query would cut a tiny
	// piece → rule 3 says do not reorganize because SizeS <= Mmax.
	s := seg(0, 2999, 3000, 100_000)
	d := a.Decide(domain.NewRange(1500, 1509), s)
	if d.Action != NoSplit {
		t.Errorf("rule 3 (small S) violated: %v", d.Action)
	}
}

func TestAPMRule3LargeSegmentBorderSplit(t *testing.T) {
	a := NewAPM(1000, 4000)
	// SizeS = 10000 > Mmax; query [1500, 1599] strictly inside cuts a tiny
	// overlap. Both borders give both sides >= Mmin; Alg. 4 prefers the
	// smaller materialized side: [0, 1599] (1600B) < [1500, 9999] (8500B),
	// so split at qh = 1599 with the left side materialized.
	s := seg(0, 9999, 10_000, 100_000)
	d := a.Decide(domain.NewRange(1500, 1599), s)
	if d.Action != SplitPoint {
		t.Fatalf("rule 3 (large S) action = %v", d.Action)
	}
	if d.Point != 1599 || !d.MatLeft {
		t.Errorf("split point = %d matLeft = %v, want 1599/true", d.Point, d.MatLeft)
	}
}

func TestAPMRule3PrefersOtherBorderWhenCloser(t *testing.T) {
	a := NewAPM(1000, 4000)
	// Query near the high end: the smaller materialized side is
	// [ql, s.hgh] → split at ql-1 with the right side materialized.
	s := seg(0, 9999, 10_000, 100_000)
	d := a.Decide(domain.NewRange(8400, 8499), s)
	if d.Action != SplitPoint {
		t.Fatalf("action = %v", d.Action)
	}
	if d.Point != 8399 || d.MatLeft {
		t.Errorf("split point = %d matLeft = %v, want 8399/false", d.Point, d.MatLeft)
	}
}

func TestAPMRule3MeanFallback(t *testing.T) {
	a := NewAPM(1000, 4000)
	// Query at the very edge of a large segment: the only border split
	// would cut a piece < Mmin, so the mean is used instead.
	s := seg(0, 9999, 10_000, 100_000)
	d := a.Decide(domain.NewRange(0, 99), s) // covers-lower, tiny overlap
	if d.Action != SplitPoint {
		t.Fatalf("action = %v", d.Action)
	}
	if d.Point != 4999 {
		t.Errorf("mean split point = %d, want 4999", d.Point)
	}
	if !d.MatLeft {
		t.Error("selection sits in the low half; MatLeft should be true")
	}
}

func TestAPMCoversAllNoSplit(t *testing.T) {
	a := NewAPM(1000, 4000)
	s := seg(100, 199, 5000, 100_000)
	if d := a.Decide(domain.NewRange(50, 250), s); d.Action != NoSplit {
		t.Errorf("covers-all decision = %v", d.Action)
	}
}

func TestAPMOneValueSegmentNoSplit(t *testing.T) {
	a := NewAPM(10, 40)
	s := seg(5, 5, 100, 1000)
	if d := a.Decide(domain.NewRange(5, 5), s); d.Action != NoSplit {
		t.Errorf("one-value segment decision = %v", d.Action)
	}
}

func TestAPMConvergenceSimulation(t *testing.T) {
	// Drive a synthetic size through APM decisions: segments repeatedly
	// split at bounds must end up within [Mmin, Mmax] — the convergence
	// property claimed in §3.2.2. Simulated on sizes only: each rule-2
	// split of a segment of size z yields pieces >= Mmin, each rule-3 mean
	// split halves z; splitting stops once z <= Mmax... so any segment
	// still splittable has z > Mmax and will shrink. Verify the fixpoint:
	// no decision other than NoSplit is possible once z < Mmin, and mean
	// splits keep halving while z > Mmax.
	a := NewAPM(1000, 4000)
	z := int64(100_000)
	rngHi := domain.Value(z) // 1 byte per domain value for simplicity
	steps := 0
	for z > a.Mmax && steps < 64 {
		s := seg(0, rngHi-1, z, 1_000_000)
		d := a.Decide(domain.NewRange(0, 0), s) // worst case: point query at edge
		if d.Action != SplitPoint {
			t.Fatalf("large segment (z=%d) must still split, got %v", z, d.Action)
		}
		// Take the piece containing the query (left of the mean).
		z = z / 2
		rngHi = rngHi / 2
		steps++
	}
	if z > a.Mmax {
		t.Errorf("did not converge below Mmax: %d", z)
	}
	if z < a.Mmin {
		t.Errorf("converged below Mmin: %d", z)
	}
}

func TestNeverModel(t *testing.T) {
	m := Never{}
	if m.Name() != "Never" {
		t.Error("name")
	}
	s := seg(0, 999, 4000, 4000)
	if d := m.Decide(domain.NewRange(10, 20), s); d.Action != NoSplit {
		t.Error("Never must not split")
	}
}

func TestAlwaysModel(t *testing.T) {
	m := Always{}
	if m.Name() != "Always" {
		t.Error("name")
	}
	s := seg(0, 999, 4000, 4000)
	if d := m.Decide(domain.NewRange(10, 20), s); d.Action != SplitBounds {
		t.Error("Always must split when splittable")
	}
	if d := m.Decide(domain.NewRange(0, 2000), s); d.Action != NoSplit {
		t.Error("Always must not split covers-all")
	}
}

func TestActionString(t *testing.T) {
	if NoSplit.String() != "no-split" || SplitBounds.String() != "split-bounds" ||
		SplitPoint.String() != "split-point" || Action(7).String() != "Action(7)" {
		t.Error("action names wrong")
	}
}

func TestEstBytesProportional(t *testing.T) {
	s := seg(0, 999, 1000, 10_000)
	if got := s.estBytes(domain.NewRange(0, 499)); got != 500 {
		t.Errorf("estBytes half = %d", got)
	}
	if got := s.estBytes(domain.NewRange(2000, 3000)); got != 0 {
		t.Errorf("estBytes disjoint = %d", got)
	}
}
