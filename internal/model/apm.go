package model

import (
	"fmt"

	"selforg/internal/domain"
)

// APM is the deterministic Adaptive Pagination Model of §3.2.2, driven by a
// pair of byte bounds:
//
//  1. if SizeS < Mmin the segment is left intact;
//  2. if all pieces of the query-bound split are estimated >= Mmin, the
//     segment is split at the query bounds;
//  3. if the split would create a piece < Mmin, the segment is split only
//     when SizeS > Mmax, choosing the split point among the query bounds
//     or an approximation of the segment mean.
//
// Segment sizes touched by queries therefore converge to
// Mmin <= SizeS <= Mmax; tuning the bounds makes the policy more or less
// aggressive.
type APM struct {
	Mmin, Mmax int64 // bytes, Mmin < Mmax
}

// NewAPM creates an APM model. It panics unless 0 < Mmin < Mmax, the
// precondition stated in §3.2.2.
func NewAPM(mmin, mmax int64) *APM {
	if mmin <= 0 || mmin >= mmax {
		panic(fmt.Sprintf("model: APM requires 0 < Mmin < Mmax, got %d/%d", mmin, mmax))
	}
	return &APM{Mmin: mmin, Mmax: mmax}
}

// Name implements Model, rendering the bounds like the paper's figures
// ("APM 3KB-12KB" style shortened to the raw byte bounds).
func (a *APM) Name() string {
	return fmt.Sprintf("APM %s-%s", domain.ByteSize(a.Mmin), domain.ByteSize(a.Mmax))
}

// Decide implements Model.
func (a *APM) Decide(q domain.Range, seg SegmentInfo) Decision {
	if !splittable(q, seg) {
		return Decision{Action: NoSplit}
	}
	// Rule 1: small segments are never split.
	if seg.Bytes < a.Mmin {
		return Decision{Action: NoSplit}
	}
	sp := domain.Cut(seg.Rng, q)
	if a.allPiecesLarge(seg, sp) {
		// Rule 2: the materialized selection reorganizes the segment.
		return Decision{Action: SplitBounds}
	}
	// Rule 3: small pieces would appear. Only large segments are still
	// reorganized, to bound the extra reads paid by point queries.
	if seg.Bytes <= a.Mmax {
		return Decision{Action: NoSplit}
	}
	return a.pointSplit(seg, sp)
}

// allPiecesLarge estimates the pieces of the query-bound split and checks
// rule 2's "all of them have estimated size above Mmin".
func (a *APM) allPiecesLarge(seg SegmentInfo, sp domain.Split) bool {
	for _, p := range sp.Pieces() {
		if seg.estBytes(p) < a.Mmin {
			return false
		}
	}
	return true
}

// pointSplit chooses the rule-3 split point: a query bound whose two-way
// split leaves both sides >= Mmin — preferring, as in Algorithm 4 case 4,
// the bound that keeps the materialized super-set of the selection small —
// falling back to the approximate mean of the segment.
func (a *APM) pointSplit(seg SegmentInfo, sp domain.Split) Decision {
	type candidate struct {
		point   domain.Value
		matLeft bool
	}
	var cands []candidate
	// Splitting at the overlap's high bound keeps the selection in the
	// left piece; at low-1, in the right piece.
	if !sp.Right.IsEmpty() {
		cands = append(cands, candidate{point: sp.Overlap.Hi, matLeft: true})
	}
	if !sp.Left.IsEmpty() {
		cands = append(cands, candidate{point: sp.Overlap.Lo - 1, matLeft: false})
	}
	if len(cands) == 2 {
		// Alg. 4 case 4: prefer the smaller materialized side.
		// mat side for cands[0] is [s.low, qh]; for cands[1] it is [ql, s.hgh].
		left := sp.Overlap.Hi - seg.Rng.Lo
		right := seg.Rng.Hi - sp.Overlap.Lo
		if right < left {
			cands[0], cands[1] = cands[1], cands[0]
		}
	}
	for _, c := range cands {
		lo := seg.estBytes(domain.Range{Lo: seg.Rng.Lo, Hi: c.point})
		hi := seg.estBytes(domain.Range{Lo: c.point + 1, Hi: seg.Rng.Hi})
		if lo >= a.Mmin && hi >= a.Mmin {
			return Decision{Action: SplitPoint, Point: c.point, MatLeft: c.matLeft}
		}
	}
	// Mean fallback ("an approximation of the mean value in the segment").
	mean := seg.Rng.Lo + (seg.Rng.Hi-seg.Rng.Lo)/2
	// The materialized side is the one holding the larger share of the
	// selection overlap.
	lowShare := sp.Overlap.Intersect(domain.Range{Lo: seg.Rng.Lo, Hi: mean}).Width()
	matLeft := lowShare*2 >= sp.Overlap.Width()
	return Decision{Action: SplitPoint, Point: mean, MatLeft: matLeft}
}
