package model

import (
	"fmt"

	"selforg/internal/domain"
)

// AutoAPM is the §8 future-work extension "the APM segmentation model
// needs to automatically determine the values of its controlling
// parameters": an APM whose Mmin/Mmax bounds track the observed selection
// sizes instead of being configured.
//
// It keeps an exponentially weighted moving average of the (estimated)
// selection size per decision and derives
//
//	Mmax = clamp(maxFactor * ewma, floor*minFloorRatio... , ceil)
//	Mmin = Mmax / boundRatio (at least floor)
//
// so that segments converge to a few multiples of what queries actually
// select — point-query-heavy workloads get small pages, broad analytical
// scans get large ones.
type AutoAPM struct {
	// floor/ceil clamp the derived Mmin and Mmax respectively.
	floor, ceil int64
	alpha       float64
	ewma        float64
	n           int64
}

// Bound-shaping constants: Mmax sits at 4x the typical selection, Mmin at
// Mmax/4 — mirroring the 3KB/12KB and 1MB/5MB (4-5x) spreads the paper
// evaluates.
const (
	autoMaxFactor  = 4.0
	autoBoundRatio = 4
)

// NewAutoAPM creates a self-tuning APM. floor bounds Mmin from below,
// ceil bounds Mmax from above; both must be positive with floor < ceil.
func NewAutoAPM(floor, ceil int64) *AutoAPM {
	if floor <= 0 || floor >= ceil {
		panic(fmt.Sprintf("model: AutoAPM requires 0 < floor < ceil, got %d/%d", floor, ceil))
	}
	return &AutoAPM{floor: floor, ceil: ceil, alpha: 0.2}
}

// Name implements Model.
func (a *AutoAPM) Name() string { return "AutoAPM" }

// Bounds returns the currently derived (Mmin, Mmax) pair.
func (a *AutoAPM) Bounds() (int64, int64) {
	mmax := int64(autoMaxFactor * a.ewma)
	if mmax > a.ceil {
		mmax = a.ceil
	}
	mmin := mmax / autoBoundRatio
	if mmin < a.floor {
		mmin = a.floor
	}
	if mmax <= mmin {
		mmax = mmin * autoBoundRatio
	}
	return mmin, mmax
}

// Decide implements Model: observe the selection size, refresh the
// bounds, then delegate to a plain APM with the derived parameters.
func (a *AutoAPM) Decide(q domain.Range, seg SegmentInfo) Decision {
	if !splittable(q, seg) {
		return Decision{Action: NoSplit}
	}
	sp := domain.Cut(seg.Rng, q)
	sel := float64(seg.estBytes(sp.Overlap))
	if a.n == 0 {
		a.ewma = sel
	} else {
		a.ewma = a.alpha*sel + (1-a.alpha)*a.ewma
	}
	a.n++
	mmin, mmax := a.Bounds()
	apm := APM{Mmin: mmin, Mmax: mmax}
	return apm.Decide(q, seg)
}

// Observations returns how many decisions have fed the tuner.
func (a *AutoAPM) Observations() int64 { return a.n }
