package model

import (
	"testing"

	"selforg/internal/domain"
)

func TestAutoAPMInitialBoundsAtFloor(t *testing.T) {
	m := NewAutoAPM(100, 10_000)
	mmin, mmax := m.Bounds()
	if mmin < 100 {
		t.Errorf("initial Mmin %d below floor", mmin)
	}
	if mmax <= mmin {
		t.Errorf("initial bounds inverted: %d/%d", mmin, mmax)
	}
}

func TestAutoAPMEWMAWarmsUp(t *testing.T) {
	m := NewAutoAPM(10, 1<<30)
	s := seg(0, 99_999, 100_000, 100_000)
	// First observation seeds the EWMA directly.
	m.Decide(domain.NewRange(0, 9_999), s) // ~10 KB selection
	_, mmax := m.Bounds()
	if mmax < 30_000 || mmax > 50_000 {
		t.Errorf("after one 10KB observation Mmax = %d, want ~40K", mmax)
	}
	// A stream of tiny selections pulls the bounds down.
	for i := 0; i < 60; i++ {
		m.Decide(domain.NewRange(5, 6), s)
	}
	_, mmax2 := m.Bounds()
	if mmax2 >= mmax {
		t.Errorf("Mmax did not track down: %d -> %d", mmax, mmax2)
	}
}

func TestAutoAPMCoversAllNoSplit(t *testing.T) {
	m := NewAutoAPM(10, 1000)
	s := seg(100, 199, 400, 400)
	if d := m.Decide(domain.NewRange(0, 500), s); d.Action != NoSplit {
		t.Errorf("covers-all decision = %v", d.Action)
	}
	// Covers-all decisions do not feed the tuner.
	if m.Observations() != 0 {
		t.Errorf("observations = %d, want 0", m.Observations())
	}
}

func TestAutoAPMDecidesLikeAPMWithDerivedBounds(t *testing.T) {
	m := NewAutoAPM(64, 1<<20)
	s := seg(0, 99_999, 100_000, 100_000)
	q := domain.NewRange(40_000, 59_999) // 20 KB selection, pieces all large
	d := m.Decide(q, s)
	if d.Action != SplitBounds {
		t.Errorf("large balanced selection should split at bounds, got %v", d.Action)
	}
}

func TestGDZeroSizeSegmentNoSplit(t *testing.T) {
	g := NewGaussianDice(1)
	s := seg(0, 999, 0, 1000)
	if d := g.Decide(domain.NewRange(10, 20), s); d.Action != NoSplit {
		t.Errorf("zero-byte segment split: %v", d.Action)
	}
	s2 := seg(0, 999, 100, 0)
	if d := g.Decide(domain.NewRange(10, 20), s2); d.Action != NoSplit {
		t.Errorf("zero total split: %v", d.Action)
	}
}
