package mal

import (
	"fmt"
	"strings"
)

// Parse parses MAL source into a Program. Both full functions
// (function ... end) and bare instruction sequences are accepted.
func Parse(src string) (*Program, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return p.parseProgram()
}

// MustParse parses or panics; intended for tests and embedded plans.
func MustParse(src string) *Program {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return prog
}

type parser struct {
	lex *lexer
	tok token
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("mal: line %d: %s", p.tok.line, fmt.Sprintf(format, args...))
}

func (p *parser) expect(k tokKind) (token, error) {
	if p.tok.kind != k {
		return token{}, p.errf("expected %v, found %v %q", k, p.tok.kind, p.tok.text)
	}
	t := p.tok
	if err := p.advance(); err != nil {
		return token{}, err
	}
	return t, nil
}

func (p *parser) parseProgram() (*Program, error) {
	prog := &Program{}
	if p.tok.kind == tokIdent && p.tok.text == "function" {
		if err := p.parseHeader(prog); err != nil {
			return nil, err
		}
	}
	for p.tok.kind != tokEOF {
		if p.tok.kind == tokIdent && p.tok.text == "end" {
			if prog.Name == "" {
				return nil, p.errf("'end' outside a function")
			}
			if err := p.parseEnd(prog); err != nil {
				return nil, err
			}
			break
		}
		in, err := p.parseInstr()
		if err != nil {
			return nil, err
		}
		prog.Instrs = append(prog.Instrs, in)
	}
	if err := checkBlocks(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

// parseHeader parses `function user.s1_0(A0:dbl,A1:dbl):void;`.
func (p *parser) parseHeader(prog *Program) error {
	if err := p.advance(); err != nil { // consume 'function'
		return err
	}
	name, err := p.parseDottedName()
	if err != nil {
		return err
	}
	prog.Name = name
	if _, err := p.expect(tokLParen); err != nil {
		return err
	}
	for p.tok.kind != tokRParen {
		id, err := p.expect(tokIdent)
		if err != nil {
			return err
		}
		if _, err := p.expect(tokColon); err != nil {
			return err
		}
		typ, err := p.parseType()
		if err != nil {
			return err
		}
		prog.Params = append(prog.Params, Param{Name: id.text, Type: typ})
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return err
			}
		}
	}
	if err := p.advance(); err != nil { // consume ')'
		return err
	}
	if p.tok.kind == tokColon {
		if err := p.advance(); err != nil {
			return err
		}
		typ, err := p.parseType()
		if err != nil {
			return err
		}
		prog.RetType = typ
	}
	_, err = p.expect(tokSemi)
	return err
}

// parseEnd parses `end s1_0;` and validates the name suffix.
func (p *parser) parseEnd(prog *Program) error {
	if err := p.advance(); err != nil { // consume 'end'
		return err
	}
	name, err := p.parseDottedName()
	if err != nil {
		return err
	}
	want := prog.Name
	if i := strings.IndexByte(want, '.'); i >= 0 {
		want = want[i+1:]
	}
	if name != want && name != prog.Name {
		return p.errf("end %q does not match function %q", name, prog.Name)
	}
	_, err = p.expect(tokSemi)
	return err
}

// parseDottedName parses IDENT('.'IDENT)*.
func (p *parser) parseDottedName() (string, error) {
	id, err := p.expect(tokIdent)
	if err != nil {
		return "", err
	}
	name := id.text
	for p.tok.kind == tokDot {
		if err := p.advance(); err != nil {
			return "", err
		}
		part, err := p.expect(tokIdent)
		if err != nil {
			return "", err
		}
		name += "." + part.text
	}
	return name, nil
}

// parseType parses `dbl`, `void`, or `bat[:oid,:dbl]` and returns its
// textual form.
func (p *parser) parseType() (string, error) {
	id, err := p.expect(tokIdent)
	if err != nil {
		return "", err
	}
	if id.text != "bat" || p.tok.kind != tokLBrack {
		return id.text, nil
	}
	if err := p.advance(); err != nil { // '['
		return "", err
	}
	var parts []string
	for p.tok.kind != tokRBrack {
		if _, err := p.expect(tokColon); err != nil {
			return "", err
		}
		part, err := p.expect(tokIdent)
		if err != nil {
			return "", err
		}
		parts = append(parts, ":"+part.text)
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return "", err
			}
		}
	}
	if err := p.advance(); err != nil { // ']'
		return "", err
	}
	return fmt.Sprintf("bat[%s]", strings.Join(parts, ",")), nil
}

// parseInstr parses one statement.
func (p *parser) parseInstr() (Instr, error) {
	line := p.tok.line
	if p.tok.kind != tokIdent {
		return Instr{}, p.errf("expected statement, found %v %q", p.tok.kind, p.tok.text)
	}
	switch p.tok.text {
	case "barrier", "redo":
		kind := OpBarrier
		if p.tok.text == "redo" {
			kind = OpRedo
		}
		if err := p.advance(); err != nil {
			return Instr{}, err
		}
		in, err := p.parseAssignment(line)
		if err != nil {
			return Instr{}, err
		}
		if in.Target == "" {
			return Instr{}, p.errf("%v requires an assignment", kind)
		}
		in.Kind = kind
		return in, nil
	case "exit":
		if err := p.advance(); err != nil {
			return Instr{}, err
		}
		id, err := p.expect(tokIdent)
		if err != nil {
			return Instr{}, err
		}
		if _, err := p.expect(tokSemi); err != nil {
			return Instr{}, err
		}
		return Instr{Kind: OpExit, Target: id.text, Line: line}, nil
	default:
		return p.parseAssignment(line)
	}
}

// parseAssignment parses `V[:type] := expr;` or a bare call `m.f(args);`.
func (p *parser) parseAssignment(line int) (Instr, error) {
	first, err := p.expect(tokIdent)
	if err != nil {
		return Instr{}, err
	}
	// Bare call: IDENT '.' IDENT '(' ...
	if p.tok.kind == tokDot {
		expr, err := p.parseCallAfterModule(first.text)
		if err != nil {
			return Instr{}, err
		}
		if _, err := p.expect(tokSemi); err != nil {
			return Instr{}, err
		}
		return Instr{Kind: OpCall, Expr: expr, Line: line}, nil
	}
	in := Instr{Kind: OpAssign, Target: first.text, Line: line}
	if p.tok.kind == tokColon {
		if err := p.advance(); err != nil {
			return Instr{}, err
		}
		typ, err := p.parseType()
		if err != nil {
			return Instr{}, err
		}
		in.Type = typ
	}
	if _, err := p.expect(tokAssign); err != nil {
		return Instr{}, err
	}
	expr, err := p.parseExpr()
	if err != nil {
		return Instr{}, err
	}
	in.Expr = expr
	if _, err := p.expect(tokSemi); err != nil {
		return Instr{}, err
	}
	return in, nil
}

// parseExpr parses a module call, a variable alias or a literal.
func (p *parser) parseExpr() (*Expr, error) {
	if p.tok.kind == tokIdent {
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind == tokDot {
			return p.parseCallAfterModule(name)
		}
		switch name {
		case "true", "false":
			return &Expr{Atom: &Arg{Lit: Lit{Kind: LBool, B: name == "true"}}}, nil
		case "nil":
			return &Expr{Atom: &Arg{Lit: Lit{Kind: LNil}}}, nil
		}
		return &Expr{Atom: &Arg{IsVar: true, Name: name}}, nil
	}
	lit, err := p.parseLit()
	if err != nil {
		return nil, err
	}
	return &Expr{Atom: &Arg{Lit: lit}}, nil
}

// parseCallAfterModule parses `.func(args)` with the module name already
// consumed.
func (p *parser) parseCallAfterModule(module string) (*Expr, error) {
	if _, err := p.expect(tokDot); err != nil {
		return nil, err
	}
	fn, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	expr := &Expr{Module: module, Func: fn.text}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	for p.tok.kind != tokRParen {
		arg, err := p.parseArg()
		if err != nil {
			return nil, err
		}
		expr.Args = append(expr.Args, arg)
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	return expr, p.advance() // consume ')'
}

// parseArg parses a single call argument.
func (p *parser) parseArg() (Arg, error) {
	switch p.tok.kind {
	case tokIdent:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return Arg{}, err
		}
		switch name {
		case "true", "false":
			return Arg{Lit: Lit{Kind: LBool, B: name == "true"}}, nil
		case "nil":
			return Arg{Lit: Lit{Kind: LNil}}, nil
		}
		return Arg{IsVar: true, Name: name}, nil
	case tokColon:
		// Type literal argument, e.g. bpm.new(:oid,:dbl).
		if err := p.advance(); err != nil {
			return Arg{}, err
		}
		id, err := p.expect(tokIdent)
		if err != nil {
			return Arg{}, err
		}
		return Arg{Lit: Lit{Kind: LType, S: id.text}}, nil
	default:
		lit, err := p.parseLit()
		if err != nil {
			return Arg{}, err
		}
		return Arg{Lit: lit}, nil
	}
}

// parseLit parses a literal token.
func (p *parser) parseLit() (Lit, error) {
	t := p.tok
	var lit Lit
	switch t.kind {
	case tokInt:
		lit = Lit{Kind: LInt, I: t.i}
	case tokFlt:
		lit = Lit{Kind: LFlt, F: t.f}
	case tokStr:
		lit = Lit{Kind: LStr, S: t.text}
	case tokOid:
		lit = Lit{Kind: LOid, I: t.i}
	default:
		return Lit{}, p.errf("expected literal, found %v %q", t.kind, t.text)
	}
	return lit, p.advance()
}

// checkBlocks validates barrier/redo/exit nesting by guard variable.
func checkBlocks(prog *Program) error {
	var stack []string
	for i := range prog.Instrs {
		in := &prog.Instrs[i]
		switch in.Kind {
		case OpBarrier:
			stack = append(stack, in.Target)
		case OpRedo:
			if len(stack) == 0 || stack[len(stack)-1] != in.Target {
				return fmt.Errorf("mal: line %d: redo %s without matching barrier", in.Line, in.Target)
			}
		case OpExit:
			if len(stack) == 0 || stack[len(stack)-1] != in.Target {
				return fmt.Errorf("mal: line %d: exit %s without matching barrier", in.Line, in.Target)
			}
			stack = stack[:len(stack)-1]
		}
	}
	if len(stack) != 0 {
		return fmt.Errorf("mal: unclosed barrier %s", stack[len(stack)-1])
	}
	return nil
}
