package mal

import (
	"strings"
	"testing"

	"selforg/internal/bat"
	"selforg/internal/bpm"
)

// runSnippet executes a bare MAL snippet against the sky test catalog.
func runSnippet(t *testing.T, src string) (*Context, error) {
	t.Helper()
	in := NewInterp(skyCatalog(), segStoreWith(t))
	return in.Run(MustParse(src))
}

func TestModuleArgumentErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"bind wrong argc", `X := sql.bind("sys","P");`, "4 arguments"},
		{"bind bad slot", `X := sql.bind("sys","P","ra",9);`, "slot 9"},
		{"bind unknown table", `X := sql.bind("sys","NOPE","ra",0);`, "unknown table"},
		{"bind unknown column", `X := sql.bind("sys","P","nope",0);`, "unknown column"},
		{"bind_dbat wrong argc", `X := sql.bind_dbat("sys");`, "3 arguments"},
		{"select wrong argc", `X := algebra.select(1);`, "wants"},
		{"select non-bat", `X := algebra.select(1, 2, 3);`, "expected bat"},
		{"kunion non-bat", `X := algebra.kunion(1, 2);`, "expected bat"},
		{"markT bad base", `B := sql.bind("sys","P","ra",0);
X := algebra.markT(B, 5.5);`, "expected oid"},
		{"rsColumn wrong argc", `X := sql.rsColumn(1);`, "7 arguments"},
		{"rsColumn non-rs", `B := sql.bind("sys","P","ra",0);
sql.rsColumn(1,"a","b","c",1,0,B);`, "expected result set"},
		{"exportResult non-rs", `sql.exportResult(5);`, "expected result set"},
		{"take non-string", `X := bpm.take(5);`, "expected string"},
		{"take unknown", `X := bpm.take("nope");`, "unknown segmented column"},
		{"new wrong argc", `X := bpm.new(:oid);`, "2 type arguments"},
		{"new bad kind", `X := bpm.new(:oid,:blob);`, "unknown atom type"},
		{"hasMore without iterator", `Y := bpm.take("sys_P_ra");
X := bpm.hasMoreElements(Y, 1.0, 2.0);`, "without newIterator"},
		{"takeSegment out of range", `Y := bpm.take("sys_P_ra");
X := bpm.takeSegment(Y, 99);`, "out of"},
		{"adapt non-seg", `X := bpm.adapt(1, 2.0, 3.0);`, "expected segmented bat"},
		{"calc.oid bad", `X := calc.oid("hi");`, "cannot cast"},
		{"sum over str", `X := aggr.sum(1);`, "expected bat"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := runSnippet(t, c.src)
			if err == nil {
				t.Fatalf("no error for %q", c.src)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err.Error(), c.want)
			}
		})
	}
}

func TestCalcCasts(t *testing.T) {
	ctx, err := runSnippet(t, `
A := calc.lng(3.7);
B := calc.dbl(4);
C := calc.str(5);
D := calc.oid(7);
E := calc.add(1.5, 2);
`)
	if err != nil {
		t.Fatal(err)
	}
	if a, _ := ctx.Get("A"); a.(int64) != 3 {
		t.Errorf("lng(3.7) = %v", a)
	}
	if b, _ := ctx.Get("B"); b.(float64) != 4.0 {
		t.Errorf("dbl(4) = %v", b)
	}
	if c, _ := ctx.Get("C"); c.(string) != "5" {
		t.Errorf("str(5) = %v", c)
	}
	if d, _ := ctx.Get("D"); d.(bat.Value).AsOid() != 7 {
		t.Errorf("oid(7) = %v", d)
	}
	if e, _ := ctx.Get("E"); e.(float64) != 3.5 {
		t.Errorf("add = %v", e)
	}
}

func TestBatModuleBuiltins(t *testing.T) {
	ctx, err := runSnippet(t, `
B := sql.bind("sys","P","ra",0);
R := bat.reverse(B);
M := bat.mirror(B);
N := bat.new(:oid,:lng);
S := algebra.slice(B, 1, 3);
T := algebra.sortTail(B);
`)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := ctx.Get("R")
	if r.(*bat.BAT).HeadKind() != bat.KDbl {
		t.Error("reverse head kind")
	}
	n, _ := ctx.Get("N")
	if n.(*bat.BAT).Len() != 0 || n.(*bat.BAT).TailKind() != bat.KLng {
		t.Error("bat.new wrong")
	}
	s, _ := ctx.Get("S")
	if s.(*bat.BAT).Len() != 2 {
		t.Error("slice wrong")
	}
	tb, _ := ctx.Get("T")
	srt := tb.(*bat.BAT)
	for i := 1; i < srt.Len(); i++ {
		if srt.Tail.Get(i).Less(srt.Tail.Get(i - 1)) {
			t.Fatal("sortTail not sorted")
		}
	}
}

func TestIOPrint(t *testing.T) {
	in := NewInterp(skyCatalog(), bpm.NewStore())
	var out strings.Builder
	in.Out = &out
	if _, err := in.Run(MustParse(`io.print("hello", 42);`)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "hello") || !strings.Contains(out.String(), "42") {
		t.Errorf("print output = %q", out.String())
	}
}

func TestRegistryNames(t *testing.T) {
	r := DefaultRegistry()
	names := r.Names()
	want := map[string]bool{
		"sql.bind": true, "algebra.select": true, "bpm.newIterator": true,
		"aggr.sum": true, "calc.oid": true, "io.print": true,
	}
	found := 0
	for _, n := range names {
		if want[n] {
			found++
		}
	}
	if found != len(want) {
		t.Errorf("registry missing builtins: have %v", names)
	}
}

func TestCatalogNoCatalogAttached(t *testing.T) {
	in := &Interp{Registry: DefaultRegistry()}
	_, err := in.Run(MustParse(`X := sql.bind("s","t","c",0);`))
	if err == nil || !strings.Contains(err.Error(), "no catalog") {
		t.Errorf("err = %v", err)
	}
}

func TestStoreNotAttached(t *testing.T) {
	in := &Interp{Registry: DefaultRegistry(), Catalog: NewMemCatalog()}
	_, err := in.Run(MustParse(`X := bpm.take("x");`))
	if err == nil || !strings.Contains(err.Error(), "no segment store") {
		t.Errorf("err = %v", err)
	}
}

func TestCoerceBoundOnLngAndStrTails(t *testing.T) {
	cat := NewMemCatalog()
	cat.AddTable(&Table{
		Schema: "s", Name: "t",
		Cols: map[string]*Column{
			"v": {Base: bat.NewDense(bat.NewLngs([]int64{1, 5, 9}))},
			"w": {Base: bat.NewDense(bat.NewStrs([]string{"a", "m", "z"}))},
		},
	})
	in := NewInterp(cat, bpm.NewStore())
	ctx, err := in.Run(MustParse(`
B := sql.bind("s","t","v",0);
X := algebra.select(B, 2, 8);
W := sql.bind("s","t","w",0);
Y := algebra.select(W, "b", "n");
`))
	if err != nil {
		t.Fatal(err)
	}
	x, _ := ctx.Get("X")
	if x.(*bat.BAT).Len() != 1 {
		t.Errorf("lng select = %d rows", x.(*bat.BAT).Len())
	}
	y, _ := ctx.Get("Y")
	if y.(*bat.BAT).Len() != 1 {
		t.Errorf("str select = %d rows", y.(*bat.BAT).Len())
	}
}

func TestProgramVarsHelper(t *testing.T) {
	p := MustParse(`X := algebra.kunion(A, B);
Y := X;`)
	vars := p.Instrs[0].Expr.Vars()
	if len(vars) != 2 || vars[0] != "A" || vars[1] != "B" {
		t.Errorf("vars = %v", vars)
	}
	if vs := p.Instrs[1].Expr.Vars(); len(vs) != 1 || vs[0] != "X" {
		t.Errorf("atom vars = %v", vs)
	}
}
