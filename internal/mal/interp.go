package mal

import (
	"fmt"
	"io"
	"strings"

	"selforg/internal/bat"
	"selforg/internal/bpm"
	"selforg/internal/model"
)

// Builtin is one MAL operator implementation. Arguments arrive resolved
// (variables substituted); the return value is bound to the instruction's
// target.
type Builtin func(ctx *Context, args []any) (any, error)

// Registry maps "module.func" names to builtins.
type Registry struct {
	fns map[string]Builtin
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{fns: make(map[string]Builtin)} }

// Register installs a builtin under module.fn.
func (r *Registry) Register(module, fn string, b Builtin) {
	r.fns[module+"."+fn] = b
}

// Lookup finds a builtin.
func (r *Registry) Lookup(module, fn string) (Builtin, bool) {
	b, ok := r.fns[module+"."+fn]
	return b, ok
}

// Names lists registered builtins (diagnostics).
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.fns))
	for n := range r.fns {
		out = append(out, n)
	}
	return out
}

// Context is one execution environment: variable bindings, the catalog,
// the segmented-column store and the collected result sets.
type Context struct {
	env      map[string]any
	Registry *Registry
	Catalog  Catalog
	Store    *bpm.Store
	// AdaptModel drives bpm.adapt, the reorganizing module call the
	// segment optimizer injects after selections (§3.3).
	AdaptModel model.Model
	// Parallelism bounds the worker pool the kernel operators
	// (algebra.select, aggr.sum/min/max) may fan one instruction's scan
	// out to (<=1 = serial, the MonetDB-faithful default). Results are
	// identical at every setting; lng aggregates are exact, dbl sums may
	// differ from serial rounding by float associativity.
	Parallelism int
	Out         io.Writer
	// Results collects the result sets exported by sql.exportResult.
	Results []*ResultSet
	// AdaptedBytes totals the bytes rewritten by bpm.adapt calls.
	AdaptedBytes int64
	// Affected counts the rows written by the DML builtins
	// (sql.insertRow, sql.updateRows, sql.deleteRows) — the SQL tier's
	// "N rows affected" answer.
	Affected int64

	iters map[iterKey]*segIter
}

// iterKey identifies a bpm segment iterator by column and predicate.
type iterKey struct {
	sb     *bpm.SegmentedBAT
	lo, hi float64
}

// segIter walks the segments of a column overlapping a predicate.
type segIter struct {
	lo, hi int // index window
	next   int
}

// Interp executes MAL programs against a registry.
type Interp struct {
	Registry *Registry
	Catalog  Catalog
	Store    *bpm.Store
	// AdaptModel defaults to APM with MonetDB-ish page bounds if nil.
	AdaptModel model.Model
	// Parallelism is handed to every Context (see Context.Parallelism).
	Parallelism int
	Out         io.Writer
}

// NewInterp builds an interpreter with the default builtin registry.
func NewInterp(cat Catalog, store *bpm.Store) *Interp {
	return &Interp{
		Registry: DefaultRegistry(),
		Catalog:  cat,
		Store:    store,
		Out:      io.Discard,
	}
}

// Run executes the program, binding args to the function parameters in
// order, and returns the final context.
func (in *Interp) Run(p *Program, args ...any) (*Context, error) {
	if len(args) != len(p.Params) {
		return nil, fmt.Errorf("mal: program %s wants %d args, got %d", p.Name, len(p.Params), len(args))
	}
	ctx := &Context{
		env:         make(map[string]any),
		Registry:    in.Registry,
		Catalog:     in.Catalog,
		Store:       in.Store,
		AdaptModel:  in.AdaptModel,
		Parallelism: in.Parallelism,
		Out:         in.Out,
		iters:       make(map[iterKey]*segIter),
	}
	if ctx.AdaptModel == nil {
		ctx.AdaptModel = model.NewAPM(1<<13, 1<<15)
	}
	if ctx.Out == nil {
		ctx.Out = io.Discard
	}
	for i, prm := range p.Params {
		ctx.env[prm.Name] = args[i]
	}

	// Match barrier/redo/exit blocks by guard variable.
	exitOf := make(map[int]int)   // barrier index -> exit index
	redoBack := make(map[int]int) // redo index -> barrier index
	var stack []int
	for i := range p.Instrs {
		switch p.Instrs[i].Kind {
		case OpBarrier:
			stack = append(stack, i)
		case OpRedo:
			if len(stack) == 0 {
				return nil, fmt.Errorf("mal: line %d: redo outside block", p.Instrs[i].Line)
			}
			redoBack[i] = stack[len(stack)-1]
		case OpExit:
			if len(stack) == 0 {
				return nil, fmt.Errorf("mal: line %d: exit outside block", p.Instrs[i].Line)
			}
			exitOf[stack[len(stack)-1]] = i
			stack = stack[:len(stack)-1]
		}
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("mal: unclosed barrier block")
	}

	const maxSteps = 10_000_000 // guard against runaway redo loops
	steps := 0
	pc := 0
	for pc < len(p.Instrs) {
		if steps++; steps > maxSteps {
			return nil, fmt.Errorf("mal: execution exceeded %d steps", maxSteps)
		}
		instr := &p.Instrs[pc]
		switch instr.Kind {
		case OpAssign, OpCall:
			v, err := ctx.eval(instr)
			if err != nil {
				return nil, err
			}
			if instr.Target != "" {
				ctx.env[instr.Target] = v
			}
			pc++
		case OpBarrier:
			v, err := ctx.eval(instr)
			if err != nil {
				return nil, err
			}
			ctx.env[instr.Target] = v
			if falsy(v) {
				pc = exitOf[pc] + 1
			} else {
				pc++
			}
		case OpRedo:
			v, err := ctx.eval(instr)
			if err != nil {
				return nil, err
			}
			ctx.env[instr.Target] = v
			if falsy(v) {
				pc++
			} else {
				pc = redoBack[pc] + 1
			}
		case OpExit:
			pc++
		default:
			return nil, fmt.Errorf("mal: line %d: unknown instruction kind", instr.Line)
		}
	}
	return ctx, nil
}

// Get returns a variable binding from the finished context.
func (ctx *Context) Get(name string) (any, bool) {
	v, ok := ctx.env[name]
	return v, ok
}

// eval evaluates one instruction's expression.
func (ctx *Context) eval(instr *Instr) (any, error) {
	e := instr.Expr
	if e == nil {
		return nil, fmt.Errorf("mal: line %d: missing expression", instr.Line)
	}
	if !e.IsCall() {
		return ctx.resolve(*e.Atom, instr.Line)
	}
	fn, ok := ctx.Registry.Lookup(e.Module, e.Func)
	if !ok {
		return nil, fmt.Errorf("mal: line %d: unknown operator %s.%s", instr.Line, e.Module, e.Func)
	}
	args := make([]any, len(e.Args))
	for i, a := range e.Args {
		v, err := ctx.resolve(a, instr.Line)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	v, err := fn(ctx, args)
	if err != nil {
		return nil, fmt.Errorf("mal: line %d: %s.%s: %w", instr.Line, e.Module, e.Func, err)
	}
	return v, nil
}

// resolve turns an argument into a runtime value.
func (ctx *Context) resolve(a Arg, line int) (any, error) {
	if a.IsVar {
		v, ok := ctx.env[a.Name]
		if !ok {
			return nil, fmt.Errorf("mal: line %d: undefined variable %s", line, a.Name)
		}
		return v, nil
	}
	switch a.Lit.Kind {
	case LInt:
		return a.Lit.I, nil
	case LFlt:
		return a.Lit.F, nil
	case LStr:
		return a.Lit.S, nil
	case LBool:
		return a.Lit.B, nil
	case LOid:
		return bat.Oid(uint64(a.Lit.I)), nil
	case LType:
		return TypeName(a.Lit.S), nil
	case LNil:
		return nil, nil
	default:
		return nil, fmt.Errorf("mal: line %d: bad literal", line)
	}
}

// TypeName is the runtime value of a type-literal argument (:oid).
type TypeName string

// falsy implements the barrier truth test: nil and false leave the block.
func falsy(v any) bool {
	if v == nil {
		return true
	}
	b, ok := v.(bool)
	return ok && !b
}

// ResultSet is the structure built by sql.resultSet/rsColumn and rendered
// by sql.exportResult.
type ResultSet struct {
	cols []rsColumn
}

type rsColumn struct {
	table, name, typ string
	b                *bat.BAT
}

// Render writes the result set in MonetDB-ish tabular form (up to 32 data
// rows, then a count).
func (rs *ResultSet) Render(w io.Writer) {
	if len(rs.cols) == 0 {
		fmt.Fprintln(w, "(empty result set)")
		return
	}
	headers := make([]string, len(rs.cols))
	for i, c := range rs.cols {
		headers[i] = fmt.Sprintf("%s.%s:%s", c.table, c.name, c.typ)
	}
	fmt.Fprintf(w, "%% %s\n", strings.Join(headers, ",\t"))
	n := rs.cols[0].b.Len()
	const maxRows = 32
	shown := n
	if shown > maxRows {
		shown = maxRows
	}
	for r := 0; r < shown; r++ {
		cells := make([]string, len(rs.cols))
		for i, c := range rs.cols {
			cells[i] = c.b.Tail.Get(r).String()
		}
		fmt.Fprintf(w, "[ %s ]\n", strings.Join(cells, ",\t"))
	}
	fmt.Fprintf(w, "# %d rows\n", n)
}

// Column returns the i-th column's BAT (tests compare plan outputs).
func (rs *ResultSet) Column(i int) *bat.BAT { return rs.cols[i].b }

// ColumnName returns the i-th column's name (result extraction).
func (rs *ResultSet) ColumnName(i int) string { return rs.cols[i].name }

// NumRows returns the row count of the first column.
func (rs *ResultSet) NumRows() int {
	if len(rs.cols) == 0 {
		return 0
	}
	return rs.cols[0].b.Len()
}

// NumCols returns the column count.
func (rs *ResultSet) NumCols() int { return len(rs.cols) }
