package mal

import (
	"reflect"
	"strings"
	"testing"

	"selforg/internal/bat"
	"selforg/internal/bpm"
	"selforg/internal/model"
)

func TestLexerBasics(t *testing.T) {
	l := newLexer(`X1:bat[:oid,:dbl] := sql.bind("sys","P",205.1,0@0); # comment`)
	var kinds []tokKind
	for {
		tok, err := l.next()
		if err != nil {
			t.Fatal(err)
		}
		if tok.kind == tokEOF {
			break
		}
		kinds = append(kinds, tok.kind)
	}
	want := []tokKind{
		tokIdent, tokColon, tokIdent, tokLBrack, tokColon, tokIdent, tokComma,
		tokColon, tokIdent, tokRBrack, tokAssign, tokIdent, tokDot, tokIdent,
		tokLParen, tokStr, tokComma, tokStr, tokComma, tokFlt, tokComma, tokOid,
		tokRParen, tokSemi,
	}
	if !reflect.DeepEqual(kinds, want) {
		t.Errorf("kinds = %v\nwant   %v", kinds, want)
	}
}

func TestLexerNumbers(t *testing.T) {
	cases := []struct {
		src  string
		kind tokKind
		i    int64
		f    float64
	}{
		{"64", tokInt, 64, 0},
		{"-3", tokInt, -3, 0},
		{"205.1", tokFlt, 0, 205.1},
		{"1e3", tokFlt, 0, 1000},
		{"7@0", tokOid, 7, 0},
	}
	for _, c := range cases {
		tok, err := newLexer(c.src).next()
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		if tok.kind != c.kind || tok.i != c.i || tok.f != c.f {
			t.Errorf("%s -> %+v", c.src, tok)
		}
	}
}

func TestLexerStringEscapes(t *testing.T) {
	tok, err := newLexer(`"a\n\"b\\"`).next()
	if err != nil {
		t.Fatal(err)
	}
	if tok.text != "a\n\"b\\" {
		t.Errorf("text = %q", tok.text)
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{`"unterminated`, `5@`, `?`} {
		l := newLexer(src)
		_, err := l.next()
		if err == nil {
			t.Errorf("%q: no error", src)
		}
	}
}

func TestParseSimpleAssignment(t *testing.T) {
	p, err := Parse(`X1:bat[:oid,:dbl] := sql.bind("sys","P","ra",0);`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Instrs) != 1 {
		t.Fatalf("instrs = %d", len(p.Instrs))
	}
	in := p.Instrs[0]
	if in.Kind != OpAssign || in.Target != "X1" || in.Type != "bat[:oid,:dbl]" {
		t.Errorf("instr = %+v", in)
	}
	if in.Expr.Module != "sql" || in.Expr.Func != "bind" || len(in.Expr.Args) != 4 {
		t.Errorf("expr = %+v", in.Expr)
	}
}

func TestParseFunctionHeader(t *testing.T) {
	p, err := Parse("function user.s1_0(A0:dbl,A1:dbl):void;\nend s1_0;")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "user.s1_0" || p.RetType != "void" || len(p.Params) != 2 {
		t.Errorf("program = %+v", p)
	}
	if p.Params[0] != (Param{Name: "A0", Type: "dbl"}) {
		t.Errorf("param = %+v", p.Params[0])
	}
}

func TestParseEndMismatch(t *testing.T) {
	_, err := Parse("function user.f(A0:dbl):void;\nend g;")
	if err == nil {
		t.Error("mismatched end accepted")
	}
}

func TestParseBarrierBlock(t *testing.T) {
	src := `
barrier s := bpm.newIterator(Y, A0, A1);
T := algebra.select(s, A0, A1);
redo s := bpm.hasMoreElements(Y, A0, A1);
exit s;
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []OpKind{OpBarrier, OpAssign, OpRedo, OpExit}
	for i, k := range kinds {
		if p.Instrs[i].Kind != k {
			t.Errorf("instr %d kind = %v, want %v", i, p.Instrs[i].Kind, k)
		}
	}
}

func TestParseUnbalancedBarrier(t *testing.T) {
	for _, src := range []string{
		"barrier s := bpm.newIterator(Y, A, B);",
		"exit s;",
		"barrier a := m.f();\nexit b;",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("%q: accepted", src)
		}
	}
}

func TestParseAliasAndLiterals(t *testing.T) {
	p, err := Parse("X := Y;\nZ := 42;\nW := true;\nV := nil;")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Instrs[0].Expr.Atom.IsVar || p.Instrs[0].Expr.Atom.Name != "Y" {
		t.Error("alias wrong")
	}
	if p.Instrs[1].Expr.Atom.Lit.Kind != LInt {
		t.Error("int literal wrong")
	}
	if p.Instrs[2].Expr.Atom.Lit.Kind != LBool {
		t.Error("bool literal wrong")
	}
	if p.Instrs[3].Expr.Atom.Lit.Kind != LNil {
		t.Error("nil literal wrong")
	}
}

func TestParseTypeLiteralArgs(t *testing.T) {
	p, err := Parse("Y2 := bpm.new(:oid,:dbl);")
	if err != nil {
		t.Fatal(err)
	}
	args := p.Instrs[0].Expr.Args
	if len(args) != 2 || args[0].Lit.Kind != LType || args[0].Lit.S != "oid" {
		t.Errorf("args = %+v", args)
	}
}

func TestProgramStringRoundTrip(t *testing.T) {
	src := `function user.demo(A0:dbl,A1:dbl):void;
Y1 := bpm.take("sys_P_ra");
Y2 := bpm.new(:oid,:dbl);
barrier rseg := bpm.newIterator(Y1,A0,A1);
T1 := algebra.select(rseg,A0,A1);
bpm.addSegment(Y2,T1);
redo rseg := bpm.hasMoreElements(Y1,A0,A1);
exit rseg;
end demo;
`
	p1 := MustParse(src)
	rendered := p1.String()
	p2, err := Parse(rendered)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, rendered)
	}
	if p1.String() != p2.String() {
		t.Errorf("round trip unstable:\n%s\nvs\n%s", p1.String(), p2.String())
	}
}

// --- interpreter tests ---

// figure1Plan is the cached query plan of Figure 1, verbatim (modulo
// whitespace): select objId from P where ra between A0 and A1.
const figure1Plan = `
function user.s1_0(A0:dbl,A1:dbl):void;
X1:bat[:oid,:dbl]:= sql.bind("sys","P","ra",0);
X16:bat[:oid,:dbl]:= sql.bind("sys","P","ra",1);
X19:bat[:oid,:dbl]:= sql.bind("sys","P","ra",2);
X23:bat[:oid,:oid]:= sql.bind_dbat("sys","P",1);
X30:bat[:oid,:lng]:= sql.bind("sys","P","objid",0);
X32:bat[:oid,:lng]:= sql.bind("sys","P","objid",1);
X34:bat[:oid,:lng]:= sql.bind("sys","P","objid",2);
X14 := algebra.uselect(X1,A0,A1,true,true);
X17 := algebra.uselect(X16,A0,A1,true,true);
X18 := algebra.kunion(X14,X17);
X20 := algebra.kdifference(X18,X19);
X21 := algebra.uselect(X19,A0,A1,true,true);
X22 := algebra.kunion(X20,X21);
X24 := bat.reverse(X23);
X25 := algebra.kdifference(X22,X24);
X26 := calc.oid(0@0);
X28 := algebra.markT(X25,X26);
X29 := bat.reverse(X28);
X33 := algebra.kunion(X30,X32);
X35 := algebra.kdifference(X33,X34);
X36 := algebra.kunion(X35,X34);
X37 := algebra.join(X29,X36);
X38 := sql.resultSet(1,1,X37);
sql.rsColumn(X38,"sys.P","objid","bigint",64,0,X37);
sql.exportResult(X38,"");
end s1_0;
`

// skyCatalog builds a tiny sys.P table with base, insert, update and
// delete deltas to exercise the full Figure-1 semantics.
func skyCatalog() *MemCatalog {
	cat := NewMemCatalog()
	raBase := bat.New(bat.NewDenseOids(0, 6),
		bat.NewDbls([]float64{204.0, 205.105, 205.11, 205.2, 205.119, 100.0}))
	objBase := bat.New(bat.NewDenseOids(0, 6),
		bat.NewLngs([]int64{1000, 1001, 1002, 1003, 1004, 1005}))
	raIns := bat.New(bat.NewDenseOids(6, 2), bat.NewDbls([]float64{205.115, 300.0}))
	objIns := bat.New(bat.NewDenseOids(6, 2), bat.NewLngs([]int64{1006, 1007}))
	// Update: row oid 2 got a new ra outside the query range.
	raUpd := bat.New(bat.NewOids([]uint64{2}), bat.NewDbls([]float64{210.0}))
	// Delete: row oid 4.
	dels := bat.New(bat.NewDenseOids(0, 1), bat.NewOids([]uint64{4}))
	cat.AddTable(&Table{
		Schema: "sys", Name: "P",
		Cols: map[string]*Column{
			"ra":    {Base: raBase, Inserts: raIns, Updates: raUpd},
			"objid": {Base: objBase, Inserts: objIns},
		},
		Deletes: dels,
	})
	return cat
}

func TestFigure1PlanExecutes(t *testing.T) {
	prog := MustParse(figure1Plan)
	in := NewInterp(skyCatalog(), bpm.NewStore())
	var out strings.Builder
	in.Out = &out
	ctx, err := in.Run(prog, 205.1, 205.12)
	if err != nil {
		t.Fatal(err)
	}
	if len(ctx.Results) != 1 {
		t.Fatalf("results = %d", len(ctx.Results))
	}
	rs := ctx.Results[0]
	if rs.NumCols() != 1 || rs.NumRows() != 2 {
		t.Fatalf("result shape = %dx%d, want 1x2\n%s", rs.NumCols(), rs.NumRows(), out.String())
	}
	// Expected objids: 1001 (base, in range) and 1006 (inserted, in
	// range). 1002 was updated out of range, 1004 deleted.
	got := map[int64]bool{}
	col := rs.Column(0)
	for i := 0; i < col.Len(); i++ {
		got[col.Tail.Get(i).AsLng()] = true
	}
	if !got[1001] || !got[1006] {
		t.Errorf("result objids = %v, want {1001, 1006}", got)
	}
	if !strings.Contains(out.String(), "objid") {
		t.Errorf("export output missing header:\n%s", out.String())
	}
}

func TestFigure1WidenedRangePicksUpdate(t *testing.T) {
	// With a range covering the updated value 210.0, oid 2 must reappear
	// through the X21 (updates-in-range) branch.
	prog := MustParse(figure1Plan)
	in := NewInterp(skyCatalog(), bpm.NewStore())
	ctx, err := in.Run(prog, 205.1, 211.0)
	if err != nil {
		t.Fatal(err)
	}
	col := ctx.Results[0].Column(0)
	got := map[int64]bool{}
	for i := 0; i < col.Len(); i++ {
		got[col.Tail.Get(i).AsLng()] = true
	}
	// In range now: 1001, 1002 (updated to 210), 1003 (205.2), 1006.
	for _, want := range []int64{1001, 1002, 1003, 1006} {
		if !got[want] {
			t.Errorf("missing objid %d in %v", want, got)
		}
	}
	if got[1004] {
		t.Error("deleted row leaked into result")
	}
}

func TestRunArgumentCountMismatch(t *testing.T) {
	prog := MustParse("function user.f(A0:dbl):void;\nend f;")
	in := NewInterp(NewMemCatalog(), bpm.NewStore())
	if _, err := in.Run(prog); err == nil {
		t.Error("missing argument accepted")
	}
}

func TestUndefinedVariableError(t *testing.T) {
	prog := MustParse("X := algebra.select(NOPE, 1, 2);")
	in := NewInterp(NewMemCatalog(), bpm.NewStore())
	if _, err := in.Run(prog); err == nil || !strings.Contains(err.Error(), "undefined variable") {
		t.Errorf("err = %v", err)
	}
}

func TestUnknownOperatorError(t *testing.T) {
	prog := MustParse("X := nosuch.op();")
	in := NewInterp(NewMemCatalog(), bpm.NewStore())
	if _, err := in.Run(prog); err == nil || !strings.Contains(err.Error(), "unknown operator") {
		t.Errorf("err = %v", err)
	}
}

// segStoreWith builds a store holding a segmented copy of the test ra
// column under "sys_P_ra".
func segStoreWith(t *testing.T) *bpm.Store {
	t.Helper()
	st := bpm.NewStore()
	ra := bat.New(bat.NewDenseOids(0, 6),
		bat.NewDbls([]float64{204.0, 205.105, 205.11, 205.2, 205.119, 100.0}))
	sb := bpm.NewSegmentedBAT("sys_P_ra", ra, 0, 360, 4)
	st.Register(sb)
	return st
}

// iteratorPlan is the §3.1 segment-optimizer output for the first
// selection of Figure 1, extended with the injected bpm.adapt call.
const iteratorPlan = `
function user.seg(A0:dbl,A1:dbl):void;
Y1 := bpm.take("sys_P_ra");
Y2 := bpm.new(:oid,:dbl);
barrier rseg := bpm.newIterator(Y1,A0,A1);
T1 := algebra.select(rseg,A0,A1);
bpm.addSegment(Y2,T1);
redo rseg := bpm.hasMoreElements(Y1,A0,A1);
exit rseg;
bpm.adapt(Y1,A0,A1);
N := bpm.segments(Y1);
end seg;
`

func TestSegmentIteratorPlan(t *testing.T) {
	prog := MustParse(iteratorPlan)
	in := NewInterp(skyCatalog(), segStoreWith(t))
	in.AdaptModel = model.Always{} // the test column is far below APM's Mmin
	ctx, err := in.Run(prog, 205.1, 205.12)
	if err != nil {
		t.Fatal(err)
	}
	y2, _ := ctx.Get("Y2")
	res := y2.(*bat.BAT)
	if res.Len() != 3 { // 205.105, 205.11, 205.119
		t.Errorf("selected %d rows, want 3", res.Len())
	}
	// The injected adapt call reorganized the column.
	n, _ := ctx.Get("N")
	if n.(int64) < 2 {
		t.Errorf("adapt did not split: %d segments", n)
	}
	if ctx.AdaptedBytes == 0 {
		t.Error("AdaptedBytes not accounted")
	}
}

func TestSegmentIteratorSecondQueryTouchesFewerSegments(t *testing.T) {
	// After the first query adapts the column, a repeat query must
	// iterate only the overlapping segments.
	prog := MustParse(iteratorPlan)
	st := segStoreWith(t)
	in := NewInterp(skyCatalog(), st)
	in.AdaptModel = model.Always{}
	if _, err := in.Run(prog, 205.1, 205.12); err != nil {
		t.Fatal(err)
	}
	sb, _ := st.Take("sys_P_ra")
	lo, hi := sb.Overlapping(205.1, 205.12)
	if hi-lo >= sb.SegmentCount() {
		t.Errorf("query still overlaps all %d segments", sb.SegmentCount())
	}
	// Second run must produce the same result.
	ctx, err := in.Run(prog, 205.1, 205.12)
	if err != nil {
		t.Fatal(err)
	}
	y2, _ := ctx.Get("Y2")
	if y2.(*bat.BAT).Len() != 3 {
		t.Errorf("second run selected %d rows", y2.(*bat.BAT).Len())
	}
	if err := sb.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSkipsWhenEmpty(t *testing.T) {
	// An iterator over a non-overlapping predicate must skip the block
	// entirely.
	prog := MustParse(iteratorPlan)
	in := NewInterp(skyCatalog(), segStoreWith(t))
	ctx, err := in.Run(prog, 400.0, 500.0)
	if err != nil {
		t.Fatal(err)
	}
	y2, _ := ctx.Get("Y2")
	if y2.(*bat.BAT).Len() != 0 {
		t.Error("block body ran for empty iterator")
	}
}

func TestResultSetRender(t *testing.T) {
	rs := &ResultSet{}
	rs.cols = append(rs.cols, rsColumn{
		table: "sys.P", name: "objid", typ: "bigint",
		b: bat.NewDense(bat.NewLngs([]int64{1, 2})),
	})
	var b strings.Builder
	rs.Render(&b)
	out := b.String()
	if !strings.Contains(out, "sys.P.objid:bigint") || !strings.Contains(out, "# 2 rows") {
		t.Errorf("render = %q", out)
	}
}

func TestAggrAndCalcBuiltins(t *testing.T) {
	cat := NewMemCatalog()
	cat.AddTable(&Table{
		Schema: "sys", Name: "T",
		Cols: map[string]*Column{
			"v": {Base: bat.NewDense(bat.NewLngs([]int64{3, 1, 4}))},
		},
	})
	src := `
B := sql.bind("sys","T","v",0);
S := aggr.sum(B);
C := aggr.count(B);
M := aggr.min(B);
X := aggr.max(B);
D := calc.dbl(2);
`
	in := NewInterp(cat, bpm.NewStore())
	ctx, err := in.Run(MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := ctx.Get("S"); s.(bat.Value).AsLng() != 8 {
		t.Error("sum")
	}
	if c, _ := ctx.Get("C"); c.(int64) != 3 {
		t.Error("count")
	}
	if m, _ := ctx.Get("M"); m.(bat.Value).AsLng() != 1 {
		t.Error("min")
	}
	if x, _ := ctx.Get("X"); x.(bat.Value).AsLng() != 4 {
		t.Error("max")
	}
	if d, _ := ctx.Get("D"); d.(float64) != 2.0 {
		t.Error("dbl cast")
	}
}

func TestSegmentedSumViaMAL(t *testing.T) {
	// §3.1: sum over a segmented bat — iterate segments, sum each, add.
	src := `
function user.ssum():void;
Y1 := bpm.take("sys_P_ra");
Total := calc.dbl(0);
barrier rseg := bpm.newIterator(Y1, 0.0, 360.0);
P := aggr.sum(rseg);
Total := calc.add(Total, P);
redo rseg := bpm.hasMoreElements(Y1, 0.0, 360.0);
exit rseg;
end ssum;
`
	st := segStoreWith(t)
	// Split the column first so more than one segment participates.
	sb, _ := st.Take("sys_P_ra")
	if sb.Adapt(200, 206, model.Always{}) == 0 {
		t.Fatal("setup: no split")
	}
	in := NewInterp(skyCatalog(), st)
	ctx, err := in.Run(MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	total, _ := ctx.Get("Total")
	want := 204.0 + 205.105 + 205.11 + 205.2 + 205.119 + 100.0
	if got := total.(float64); got < want-1e-6 || got > want+1e-6 {
		t.Errorf("segmented sum = %v, want %v", got, want)
	}
}

func TestFigure1PlanParallelismIdentical(t *testing.T) {
	// Context.Parallelism routes algebra.select and the aggregates
	// through the chunk-merge kernels; the exported result must be
	// identical to the serial run at every setting.
	run := func(par int) *ResultSet {
		prog := MustParse(figure1Plan)
		in := NewInterp(skyCatalog(), bpm.NewStore())
		in.Parallelism = par
		ctx, err := in.Run(prog, 205.1, 205.12)
		if err != nil {
			t.Fatal(err)
		}
		if len(ctx.Results) != 1 {
			t.Fatalf("par=%d: results = %d", par, len(ctx.Results))
		}
		return ctx.Results[0]
	}
	want := run(1)
	for _, par := range []int{2, 8} {
		got := run(par)
		if got.NumRows() != want.NumRows() || got.NumCols() != want.NumCols() {
			t.Fatalf("par=%d: shape %dx%d != %dx%d",
				par, got.NumCols(), got.NumRows(), want.NumCols(), want.NumRows())
		}
		for i := 0; i < got.Column(0).Len(); i++ {
			g, w := got.Column(0).Tail.Get(i), want.Column(0).Tail.Get(i)
			if g != w {
				t.Errorf("par=%d row %d: %v != %v", par, i, g, w)
			}
		}
	}
}
