package mal

import (
	"fmt"
	"strings"
)

// OpKind classifies an instruction.
type OpKind int

const (
	// OpAssign is `V := expr;` (with optional type annotation).
	OpAssign OpKind = iota
	// OpCall is a bare side-effecting call `module.fn(args);`.
	OpCall
	// OpBarrier opens a guarded block: `barrier V := expr;`.
	OpBarrier
	// OpRedo re-enters the enclosing block when its expression holds:
	// `redo V := expr;`.
	OpRedo
	// OpExit closes a guarded block: `exit V;`.
	OpExit
)

func (k OpKind) String() string {
	switch k {
	case OpAssign:
		return "assign"
	case OpCall:
		return "call"
	case OpBarrier:
		return "barrier"
	case OpRedo:
		return "redo"
	case OpExit:
		return "exit"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// LitKind classifies a literal argument.
type LitKind int

const (
	// LInt is an integer literal (64).
	LInt LitKind = iota
	// LFlt is a float literal (205.1).
	LFlt
	// LStr is a string literal ("sys").
	LStr
	// LBool is true/false.
	LBool
	// LOid is an oid literal (0@0).
	LOid
	// LType is a type literal argument (:oid in bpm.new(:oid,:dbl)).
	LType
	// LNil is the nil literal.
	LNil
)

// Lit is a literal value.
type Lit struct {
	Kind LitKind
	I    int64
	F    float64
	S    string
	B    bool
}

func (l Lit) String() string {
	switch l.Kind {
	case LInt:
		return fmt.Sprint(l.I)
	case LFlt:
		s := fmt.Sprintf("%g", l.F)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s
	case LStr:
		return fmt.Sprintf("%q", l.S)
	case LBool:
		return fmt.Sprint(l.B)
	case LOid:
		return fmt.Sprintf("%d@0", l.I)
	case LType:
		return ":" + l.S
	case LNil:
		return "nil"
	default:
		return fmt.Sprintf("Lit(%d)", int(l.Kind))
	}
}

// Arg is a call argument: a variable reference or a literal.
type Arg struct {
	IsVar bool
	Name  string // variable name when IsVar
	Lit   Lit
}

func (a Arg) String() string {
	if a.IsVar {
		return a.Name
	}
	return a.Lit.String()
}

// Expr is the right-hand side of an instruction: either a module call or a
// single atom (variable alias or literal).
type Expr struct {
	Module, Func string // call when Module != ""
	Args         []Arg
	Atom         *Arg // alias/literal when Module == ""
}

// IsCall reports whether the expression is a module call.
func (e *Expr) IsCall() bool { return e.Module != "" }

func (e *Expr) String() string {
	if !e.IsCall() {
		return e.Atom.String()
	}
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	return fmt.Sprintf("%s.%s(%s)", e.Module, e.Func, strings.Join(args, ","))
}

// Instr is one MAL instruction.
type Instr struct {
	Kind   OpKind
	Target string // assigned/guard variable ("" for bare calls)
	Type   string // declared type annotation, e.g. "bat[:oid,:dbl]"
	Expr   *Expr  // nil for OpExit
	Line   int    // 1-based source line for diagnostics
}

func (in *Instr) String() string {
	var b strings.Builder
	switch in.Kind {
	case OpBarrier:
		b.WriteString("barrier ")
	case OpRedo:
		b.WriteString("redo ")
	case OpExit:
		return fmt.Sprintf("exit %s;", in.Target)
	}
	if in.Target != "" {
		b.WriteString(in.Target)
		if in.Type != "" {
			b.WriteString(":")
			b.WriteString(in.Type)
		}
		b.WriteString(" := ")
	}
	b.WriteString(in.Expr.String())
	b.WriteString(";")
	return b.String()
}

// Param is one function parameter (A0:dbl).
type Param struct {
	Name, Type string
}

// Program is a parsed MAL function (or a bare instruction sequence).
type Program struct {
	Name    string // e.g. "user.s1_0"; "" for bare sequences
	Params  []Param
	RetType string
	Instrs  []Instr
}

// String renders the program back to MAL source.
func (p *Program) String() string {
	var b strings.Builder
	if p.Name != "" {
		params := make([]string, len(p.Params))
		for i, pr := range p.Params {
			params[i] = pr.Name + ":" + pr.Type
		}
		ret := p.RetType
		if ret == "" {
			ret = "void"
		}
		fmt.Fprintf(&b, "function %s(%s):%s;\n", p.Name, strings.Join(params, ","), ret)
	}
	indent := 0
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if in.Kind == OpExit || in.Kind == OpRedo {
			indent--
		}
		if indent < 0 {
			indent = 0
		}
		b.WriteString(strings.Repeat("    ", indent+boolToInt(p.Name != "")))
		b.WriteString(in.String())
		b.WriteString("\n")
		if in.Kind == OpBarrier || in.Kind == OpRedo {
			indent++
		}
	}
	if p.Name != "" {
		short := p.Name
		if i := strings.IndexByte(short, '.'); i >= 0 {
			short = short[i+1:]
		}
		fmt.Fprintf(&b, "end %s;\n", short)
	}
	return b.String()
}

func boolToInt(v bool) int {
	if v {
		return 1
	}
	return 0
}

// Vars returns the set of variables read by the expression.
func (e *Expr) Vars() []string {
	var out []string
	if e == nil {
		return nil
	}
	if !e.IsCall() {
		if e.Atom.IsVar {
			out = append(out, e.Atom.Name)
		}
		return out
	}
	for _, a := range e.Args {
		if a.IsVar {
			out = append(out, a.Name)
		}
	}
	return out
}
