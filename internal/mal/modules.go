package mal

import (
	"fmt"

	"selforg/internal/bat"
	"selforg/internal/bpm"
)

// DefaultRegistry builds the builtin operator set used by the paper's
// plans: the sql binding/result operators, the algebra kernel, bat
// reordering, calc casts, aggregates, io.print and the bpm segment module
// of §3.1.
func DefaultRegistry() *Registry {
	r := NewRegistry()
	registerSQL(r)
	registerAlgebra(r)
	registerBat(r)
	registerCalc(r)
	registerAggr(r)
	registerIO(r)
	registerBPM(r)
	return r
}

// --- argument helpers ---

func argBAT(args []any, i int) (*bat.BAT, error) {
	b, ok := args[i].(*bat.BAT)
	if !ok {
		return nil, fmt.Errorf("argument %d: expected bat, got %T", i+1, args[i])
	}
	return b, nil
}

func argSegBAT(args []any, i int) (*bpm.SegmentedBAT, error) {
	sb, ok := args[i].(*bpm.SegmentedBAT)
	if !ok {
		return nil, fmt.Errorf("argument %d: expected segmented bat, got %T", i+1, args[i])
	}
	return sb, nil
}

func argStr(args []any, i int) (string, error) {
	s, ok := args[i].(string)
	if !ok {
		return "", fmt.Errorf("argument %d: expected string, got %T", i+1, args[i])
	}
	return s, nil
}

func argInt(args []any, i int) (int64, error) {
	switch v := args[i].(type) {
	case int64:
		return v, nil
	case bat.Value:
		if v.K == bat.KLng {
			return v.AsLng(), nil
		}
	}
	return 0, fmt.Errorf("argument %d: expected integer, got %T", i+1, args[i])
}

func argFlt(args []any, i int) (float64, error) {
	switch v := args[i].(type) {
	case float64:
		return v, nil
	case int64:
		return float64(v), nil
	case bat.Value:
		switch v.K {
		case bat.KDbl:
			return v.AsDbl(), nil
		case bat.KLng:
			return float64(v.AsLng()), nil
		}
	}
	return 0, fmt.Errorf("argument %d: expected number, got %T", i+1, args[i])
}

func argBool(args []any, i int) (bool, error) {
	b, ok := args[i].(bool)
	if !ok {
		return false, fmt.Errorf("argument %d: expected bool, got %T", i+1, args[i])
	}
	return b, nil
}

func argKind(args []any, i int) (bat.Kind, error) {
	switch v := args[i].(type) {
	case TypeName:
		return bat.KindFromName(string(v))
	case string:
		return bat.KindFromName(v)
	}
	return 0, fmt.Errorf("argument %d: expected type name, got %T", i+1, args[i])
}

// coerceBound converts a numeric argument to a bat.Value of the tail kind.
func coerceBound(b *bat.BAT, arg any, pos int) (bat.Value, error) {
	switch b.TailKind() {
	case bat.KDbl:
		f, err := argFlt([]any{arg}, 0)
		if err != nil {
			return bat.Value{}, fmt.Errorf("bound %d: %w", pos, err)
		}
		return bat.Dbl(f), nil
	case bat.KLng:
		switch v := arg.(type) {
		case int64:
			return bat.Lng(v), nil
		case float64:
			return bat.Lng(int64(v)), nil
		case bat.Value:
			if v.K == bat.KLng {
				return v, nil
			}
		}
		return bat.Value{}, fmt.Errorf("bound %d: cannot coerce %T to lng", pos, arg)
	case bat.KStr:
		s, err := argStr([]any{arg}, 0)
		if err != nil {
			return bat.Value{}, fmt.Errorf("bound %d: %w", pos, err)
		}
		return bat.Str(s), nil
	case bat.KOid:
		switch v := arg.(type) {
		case bat.Value:
			if v.K == bat.KOid {
				return v, nil
			}
		case int64:
			return bat.Oid(uint64(v)), nil
		}
		return bat.Value{}, fmt.Errorf("bound %d: cannot coerce %T to oid", pos, arg)
	default:
		return bat.Value{}, fmt.Errorf("bound %d: unsupported tail %v", pos, b.TailKind())
	}
}

// writeTarget unpacks the (schema, table) prefix of a DML builtin's
// arguments and asserts the context's catalog is writable.
func writeTarget(ctx *Context, args []any) (WriteCatalog, string, string, error) {
	schema, err := argStr(args, 0)
	if err != nil {
		return nil, "", "", err
	}
	table, err := argStr(args, 1)
	if err != nil {
		return nil, "", "", err
	}
	if ctx.Catalog == nil {
		return nil, "", "", fmt.Errorf("no catalog attached")
	}
	wc, ok := ctx.Catalog.(WriteCatalog)
	if !ok {
		return nil, "", "", fmt.Errorf("catalog %T is read-only", ctx.Catalog)
	}
	return wc, schema, table, nil
}

// --- sql module ---

func registerSQL(r *Registry) {
	r.Register("sql", "bind", func(ctx *Context, args []any) (any, error) {
		if len(args) != 4 {
			return nil, fmt.Errorf("sql.bind wants 4 arguments")
		}
		schema, err := argStr(args, 0)
		if err != nil {
			return nil, err
		}
		table, err := argStr(args, 1)
		if err != nil {
			return nil, err
		}
		column, err := argStr(args, 2)
		if err != nil {
			return nil, err
		}
		slot, err := argInt(args, 3)
		if err != nil {
			return nil, err
		}
		if ctx.Catalog == nil {
			return nil, fmt.Errorf("no catalog attached")
		}
		return ctx.Catalog.Bind(schema, table, column, int(slot))
	})
	r.Register("sql", "bind_dbat", func(ctx *Context, args []any) (any, error) {
		if len(args) != 3 {
			return nil, fmt.Errorf("sql.bind_dbat wants 3 arguments")
		}
		schema, err := argStr(args, 0)
		if err != nil {
			return nil, err
		}
		table, err := argStr(args, 1)
		if err != nil {
			return nil, err
		}
		slot, err := argInt(args, 2)
		if err != nil {
			return nil, err
		}
		if ctx.Catalog == nil {
			return nil, fmt.Errorf("no catalog attached")
		}
		return ctx.Catalog.BindDBat(schema, table, int(slot))
	})
	// --- DML builtins (the write surface of the SQL tier) ---
	//
	// All three require a WriteCatalog; they count written rows into
	// ctx.Affected and are registered impure with the tactical optimizer
	// (internal/opt), so dead-code elimination and CSE leave them alone.
	r.Register("sql", "insertRow", func(ctx *Context, args []any) (any, error) {
		// insertRow(schema, table, col1, v1, col2, v2, ...) -> oid as lng
		if len(args) < 4 || len(args)%2 != 0 {
			return nil, fmt.Errorf("sql.insertRow wants (schema, table, col, val, ...)")
		}
		wc, schema, table, err := writeTarget(ctx, args)
		if err != nil {
			return nil, err
		}
		vals := make(map[string]bat.Value, (len(args)-2)/2)
		for i := 2; i < len(args); i += 2 {
			col, err := argStr(args, i)
			if err != nil {
				return nil, err
			}
			base, err := wc.Bind(schema, table, col, 0)
			if err != nil {
				return nil, err
			}
			v, err := coerceBound(base, args[i+1], i+2)
			if err != nil {
				return nil, err
			}
			vals[col] = v
		}
		oid, err := wc.InsertRow(schema, table, vals)
		if err != nil {
			return nil, err
		}
		ctx.Affected++
		return int64(oid), nil
	})
	r.Register("sql", "updateRows", func(ctx *Context, args []any) (any, error) {
		// updateRows(schema, table, setCol, setVal, qualified) -> affected
		// as lng; qualified is the [oid, value] bat of the rows to touch
		// (the masked delta chain of the write plan's predicate).
		if len(args) != 5 {
			return nil, fmt.Errorf("sql.updateRows wants (schema, table, col, val, rows)")
		}
		wc, schema, table, err := writeTarget(ctx, args)
		if err != nil {
			return nil, err
		}
		col, err := argStr(args, 2)
		if err != nil {
			return nil, err
		}
		base, err := wc.Bind(schema, table, col, 0)
		if err != nil {
			return nil, err
		}
		v, err := coerceBound(base, args[3], 4)
		if err != nil {
			return nil, err
		}
		rows, err := argBAT(args, 4)
		if err != nil {
			return nil, err
		}
		for i := 0; i < rows.Len(); i++ {
			h, _ := rows.Row(i)
			if err := wc.UpdateRow(schema, table, h.AsOid(), col, v); err != nil {
				return nil, err
			}
		}
		ctx.Affected += int64(rows.Len())
		return int64(rows.Len()), nil
	})
	r.Register("sql", "deleteRows", func(ctx *Context, args []any) (any, error) {
		// deleteRows(schema, table, qualified) -> affected as lng
		if len(args) != 3 {
			return nil, fmt.Errorf("sql.deleteRows wants (schema, table, rows)")
		}
		wc, schema, table, err := writeTarget(ctx, args)
		if err != nil {
			return nil, err
		}
		rows, err := argBAT(args, 2)
		if err != nil {
			return nil, err
		}
		for i := 0; i < rows.Len(); i++ {
			h, _ := rows.Row(i)
			if err := wc.DeleteRow(schema, table, h.AsOid()); err != nil {
				return nil, err
			}
		}
		ctx.Affected += int64(rows.Len())
		return int64(rows.Len()), nil
	})
	r.Register("sql", "resultSet", func(ctx *Context, args []any) (any, error) {
		// resultSet(nCols, nDims, firstColumnBat) — only the shape matters.
		return &ResultSet{}, nil
	})
	r.Register("sql", "rsColumn", func(ctx *Context, args []any) (any, error) {
		if len(args) != 7 {
			return nil, fmt.Errorf("sql.rsColumn wants 7 arguments")
		}
		rs, ok := args[0].(*ResultSet)
		if !ok {
			return nil, fmt.Errorf("argument 1: expected result set, got %T", args[0])
		}
		table, err := argStr(args, 1)
		if err != nil {
			return nil, err
		}
		name, err := argStr(args, 2)
		if err != nil {
			return nil, err
		}
		typ, err := argStr(args, 3)
		if err != nil {
			return nil, err
		}
		b, err := argBAT(args, 6)
		if err != nil {
			return nil, err
		}
		rs.cols = append(rs.cols, rsColumn{table: table, name: name, typ: typ, b: b})
		return nil, nil
	})
	r.Register("sql", "exportResult", func(ctx *Context, args []any) (any, error) {
		if len(args) < 1 {
			return nil, fmt.Errorf("sql.exportResult wants a result set")
		}
		rs, ok := args[0].(*ResultSet)
		if !ok {
			return nil, fmt.Errorf("argument 1: expected result set, got %T", args[0])
		}
		rs.Render(ctx.Out)
		ctx.Results = append(ctx.Results, rs)
		return nil, nil
	})
}

// --- algebra module ---

func registerAlgebra(r *Registry) {
	sel := func(ctx *Context, args []any) (any, error) {
		if len(args) != 3 && len(args) != 5 {
			return nil, fmt.Errorf("select wants (b, lo, hi) or (b, lo, hi, li, hi)")
		}
		b, err := argBAT(args, 0)
		if err != nil {
			return nil, err
		}
		lo, err := coerceBound(b, args[1], 1)
		if err != nil {
			return nil, err
		}
		hi, err := coerceBound(b, args[2], 2)
		if err != nil {
			return nil, err
		}
		loIncl, hiIncl := true, true
		if len(args) == 5 {
			if loIncl, err = argBool(args, 3); err != nil {
				return nil, err
			}
			if hiIncl, err = argBool(args, 4); err != nil {
				return nil, err
			}
		}
		return bat.RangeSelectPar(b, lo, hi, loIncl, hiIncl, ctx.Parallelism), nil
	}
	r.Register("algebra", "select", sel)
	r.Register("algebra", "uselect", sel)

	binop := func(name string, f func(a, b *bat.BAT) *bat.BAT) Builtin {
		return func(ctx *Context, args []any) (any, error) {
			if len(args) != 2 {
				return nil, fmt.Errorf("%s wants 2 arguments", name)
			}
			a, err := argBAT(args, 0)
			if err != nil {
				return nil, err
			}
			b, err := argBAT(args, 1)
			if err != nil {
				return nil, err
			}
			return f(a, b), nil
		}
	}
	r.Register("algebra", "kunion", binop("kunion", bat.KUnion))
	r.Register("algebra", "kdifference", binop("kdifference", bat.KDifference))
	r.Register("algebra", "kintersect", binop("kintersect", bat.KIntersect))
	r.Register("algebra", "join", binop("join", bat.Join))

	r.Register("algebra", "markT", func(ctx *Context, args []any) (any, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("markT wants 2 arguments")
		}
		b, err := argBAT(args, 0)
		if err != nil {
			return nil, err
		}
		base, ok := args[1].(bat.Value)
		if !ok || base.K != bat.KOid {
			return nil, fmt.Errorf("argument 2: expected oid, got %T", args[1])
		}
		return bat.MarkT(b, base.AsOid()), nil
	})
	r.Register("algebra", "sortTail", func(ctx *Context, args []any) (any, error) {
		b, err := argBAT(args, 0)
		if err != nil {
			return nil, err
		}
		return bat.SortTail(b), nil
	})
	r.Register("algebra", "slice", func(ctx *Context, args []any) (any, error) {
		if len(args) != 3 {
			return nil, fmt.Errorf("slice wants 3 arguments")
		}
		b, err := argBAT(args, 0)
		if err != nil {
			return nil, err
		}
		lo, err := argInt(args, 1)
		if err != nil {
			return nil, err
		}
		hi, err := argInt(args, 2)
		if err != nil {
			return nil, err
		}
		return b.Slice(int(lo), int(hi)), nil
	})
}

// --- bat module ---

func registerBat(r *Registry) {
	r.Register("bat", "reverse", func(ctx *Context, args []any) (any, error) {
		b, err := argBAT(args, 0)
		if err != nil {
			return nil, err
		}
		return bat.Reverse(b), nil
	})
	r.Register("bat", "mirror", func(ctx *Context, args []any) (any, error) {
		b, err := argBAT(args, 0)
		if err != nil {
			return nil, err
		}
		return bat.Mirror(b), nil
	})
	r.Register("bat", "new", func(ctx *Context, args []any) (any, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("bat.new wants 2 type arguments")
		}
		hk, err := argKind(args, 0)
		if err != nil {
			return nil, err
		}
		tk, err := argKind(args, 1)
		if err != nil {
			return nil, err
		}
		return bat.Empty(hk, tk), nil
	})
}

// --- calc module ---

func registerCalc(r *Registry) {
	r.Register("calc", "oid", func(ctx *Context, args []any) (any, error) {
		switch v := args[0].(type) {
		case bat.Value:
			if v.K == bat.KOid {
				return v, nil
			}
		case int64:
			return bat.Oid(uint64(v)), nil
		}
		return nil, fmt.Errorf("cannot cast %T to oid", args[0])
	})
	r.Register("calc", "lng", func(ctx *Context, args []any) (any, error) {
		v, err := argInt(args, 0)
		if err != nil {
			f, ferr := argFlt(args, 0)
			if ferr != nil {
				return nil, err
			}
			return int64(f), nil
		}
		return v, nil
	})
	r.Register("calc", "dbl", func(ctx *Context, args []any) (any, error) {
		return argFlt(args, 0)
	})
	r.Register("calc", "str", func(ctx *Context, args []any) (any, error) {
		return fmt.Sprint(args[0]), nil
	})
	r.Register("calc", "add", func(ctx *Context, args []any) (any, error) {
		a, err := argFlt(args, 0)
		if err != nil {
			return nil, err
		}
		b, err := argFlt(args, 1)
		if err != nil {
			return nil, err
		}
		return a + b, nil
	})
}

// --- aggr module ---

func registerAggr(r *Registry) {
	// The aggregates route through the parallel chunk-merge variants;
	// with Context.Parallelism <= 1 (the default) those delegate straight
	// to the serial kernels.
	one := func(name string, f func(ctx *Context, b *bat.BAT) any) Builtin {
		return func(ctx *Context, args []any) (any, error) {
			b, err := argBAT(args, 0)
			if err != nil {
				return nil, err
			}
			return f(ctx, b), nil
		}
	}
	r.Register("aggr", "count", one("count", func(_ *Context, b *bat.BAT) any { return bat.Count(b) }))
	r.Register("aggr", "sum", one("sum", func(ctx *Context, b *bat.BAT) any { return bat.SumPar(b, ctx.Parallelism) }))
	r.Register("aggr", "min", one("min", func(ctx *Context, b *bat.BAT) any { return bat.MinPar(b, ctx.Parallelism) }))
	r.Register("aggr", "max", one("max", func(ctx *Context, b *bat.BAT) any { return bat.MaxPar(b, ctx.Parallelism) }))
}

// --- io module ---

func registerIO(r *Registry) {
	r.Register("io", "print", func(ctx *Context, args []any) (any, error) {
		for _, a := range args {
			fmt.Fprintln(ctx.Out, a)
		}
		return nil, nil
	})
}

// --- bpm module (§3.1's segment-aware operators) ---

func registerBPM(r *Registry) {
	r.Register("bpm", "take", func(ctx *Context, args []any) (any, error) {
		name, err := argStr(args, 0)
		if err != nil {
			return nil, err
		}
		if ctx.Store == nil {
			return nil, fmt.Errorf("no segment store attached")
		}
		return ctx.Store.Take(name)
	})
	r.Register("bpm", "new", func(ctx *Context, args []any) (any, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("bpm.new wants 2 type arguments")
		}
		hk, err := argKind(args, 0)
		if err != nil {
			return nil, err
		}
		tk, err := argKind(args, 1)
		if err != nil {
			return nil, err
		}
		return bat.Empty(hk, tk), nil
	})
	r.Register("bpm", "newIterator", func(ctx *Context, args []any) (any, error) {
		sb, lo, hi, err := segIterArgs(args)
		if err != nil {
			return nil, err
		}
		loI, hiI := sb.Overlapping(lo, hi)
		it := &segIter{lo: loI, hi: hiI, next: loI}
		ctx.iters[iterKey{sb, lo, hi}] = it
		return nextSegment(sb, it), nil
	})
	r.Register("bpm", "hasMoreElements", func(ctx *Context, args []any) (any, error) {
		sb, lo, hi, err := segIterArgs(args)
		if err != nil {
			return nil, err
		}
		it, ok := ctx.iters[iterKey{sb, lo, hi}]
		if !ok {
			return nil, fmt.Errorf("hasMoreElements without newIterator")
		}
		return nextSegment(sb, it), nil
	})
	r.Register("bpm", "takeSegment", func(ctx *Context, args []any) (any, error) {
		sb, err := argSegBAT(args, 0)
		if err != nil {
			return nil, err
		}
		i, err := argInt(args, 1)
		if err != nil {
			return nil, err
		}
		if i < 0 || int(i) >= sb.SegmentCount() {
			return nil, fmt.Errorf("segment %d out of %d", i, sb.SegmentCount())
		}
		return sb.Segment(int(i)).B, nil
	})
	r.Register("bpm", "addSegment", func(ctx *Context, args []any) (any, error) {
		acc, err := argBAT(args, 0)
		if err != nil {
			return nil, err
		}
		piece, err := argBAT(args, 1)
		if err != nil {
			return nil, err
		}
		for i := 0; i < piece.Len(); i++ {
			h, t := piece.Row(i)
			acc.AppendRow(h, t)
		}
		return acc, nil
	})
	r.Register("bpm", "adapt", func(ctx *Context, args []any) (any, error) {
		sb, lo, hi, err := segIterArgs(args)
		if err != nil {
			return nil, err
		}
		rewritten := sb.Adapt(lo, hi, ctx.AdaptModel)
		ctx.AdaptedBytes += rewritten
		return rewritten, nil
	})
	r.Register("bpm", "segments", func(ctx *Context, args []any) (any, error) {
		sb, err := argSegBAT(args, 0)
		if err != nil {
			return nil, err
		}
		return int64(sb.SegmentCount()), nil
	})
}

// segIterArgs unpacks (segmentedBAT, lo, hi).
func segIterArgs(args []any) (*bpm.SegmentedBAT, float64, float64, error) {
	if len(args) != 3 {
		return nil, 0, 0, fmt.Errorf("want (segbat, lo, hi)")
	}
	sb, err := argSegBAT(args, 0)
	if err != nil {
		return nil, 0, 0, err
	}
	lo, err := argFlt(args, 1)
	if err != nil {
		return nil, 0, 0, err
	}
	hi, err := argFlt(args, 2)
	if err != nil {
		return nil, 0, 0, err
	}
	return sb, lo, hi, nil
}

// nextSegment advances the iterator, returning the next overlapping
// segment's BAT or nil when exhausted (which ends the barrier block).
func nextSegment(sb *bpm.SegmentedBAT, it *segIter) any {
	if it.next >= it.hi {
		return nil
	}
	b := sb.Segment(it.next).B
	it.next++
	return b
}
