package mal

import (
	"fmt"

	"selforg/internal/bat"
)

// Catalog resolves sql.bind calls: the SQL compiler "maps the relational
// tables into collections of bats, whose head column is an oid" (§2).
// Slot 0 binds the base column, slots 1 and 2 the insert and update delta
// bats; sql.bind_dbat binds the deletion bat.
type Catalog interface {
	Bind(schema, table, column string, slot int) (*bat.BAT, error)
	BindDBat(schema, table string, slot int) (*bat.BAT, error)
	// SegmentedName returns the bpm.Store key for a column organized as
	// value-ranged segments, or "" if the column is not segmented. The
	// segment optimizer uses this to find rewrite candidates (§3.1).
	SegmentedName(schema, table, column string) string
}

// Column is one stored column with its delta bats.
type Column struct {
	Base    *bat.BAT
	Inserts *bat.BAT
	Updates *bat.BAT
	// Segmented is the bpm.Store name of the value-based organization of
	// this column, when one exists.
	Segmented string
}

// Table groups columns plus the deletion bat.
type Table struct {
	Schema, Name string
	Cols         map[string]*Column
	Deletes      *bat.BAT // [oid, oid] of deleted rows
}

// MemCatalog is the in-memory Catalog used by tests, examples and the
// shell.
type MemCatalog struct {
	tables map[string]*Table
}

// NewMemCatalog returns an empty catalog.
func NewMemCatalog() *MemCatalog {
	return &MemCatalog{tables: make(map[string]*Table)}
}

// AddTable registers a table; column delta bats are created empty when
// nil.
func (c *MemCatalog) AddTable(t *Table) {
	for _, col := range t.Cols {
		if col.Inserts == nil {
			col.Inserts = bat.Empty(bat.KOid, col.Base.TailKind())
		}
		if col.Updates == nil {
			col.Updates = bat.Empty(bat.KOid, col.Base.TailKind())
		}
	}
	if t.Deletes == nil {
		t.Deletes = bat.Empty(bat.KOid, bat.KOid)
	}
	c.tables[t.Schema+"."+t.Name] = t
}

func (c *MemCatalog) table(schema, table string) (*Table, error) {
	t, ok := c.tables[schema+"."+table]
	if !ok {
		return nil, fmt.Errorf("mal: unknown table %s.%s", schema, table)
	}
	return t, nil
}

// Bind implements Catalog.
func (c *MemCatalog) Bind(schema, table, column string, slot int) (*bat.BAT, error) {
	t, err := c.table(schema, table)
	if err != nil {
		return nil, err
	}
	col, ok := t.Cols[column]
	if !ok {
		return nil, fmt.Errorf("mal: unknown column %s.%s.%s", schema, table, column)
	}
	switch slot {
	case 0:
		return col.Base, nil
	case 1:
		return col.Inserts, nil
	case 2:
		return col.Updates, nil
	default:
		return nil, fmt.Errorf("mal: bind slot %d out of range", slot)
	}
}

// BindDBat implements Catalog.
func (c *MemCatalog) BindDBat(schema, table string, slot int) (*bat.BAT, error) {
	t, err := c.table(schema, table)
	if err != nil {
		return nil, err
	}
	_ = slot // MonetDB distinguishes persistent/transient deletes; we keep one.
	return t.Deletes, nil
}

// SegmentedName implements Catalog.
func (c *MemCatalog) SegmentedName(schema, table, column string) string {
	t, err := c.table(schema, table)
	if err != nil {
		return ""
	}
	col, ok := t.Cols[column]
	if !ok {
		return ""
	}
	return col.Segmented
}
