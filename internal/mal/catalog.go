package mal

import (
	"fmt"

	"selforg/internal/bat"
)

// Catalog resolves sql.bind calls: the SQL compiler "maps the relational
// tables into collections of bats, whose head column is an oid" (§2).
// Slot 0 binds the base column, slots 1 and 2 the insert and update delta
// bats; sql.bind_dbat binds the deletion bat.
type Catalog interface {
	Bind(schema, table, column string, slot int) (*bat.BAT, error)
	BindDBat(schema, table string, slot int) (*bat.BAT, error)
	// SegmentedName returns the bpm.Store key for a column organized as
	// value-ranged segments, or "" if the column is not segmented. The
	// segment optimizer uses this to find rewrite candidates (§3.1).
	SegmentedName(schema, table, column string) string
}

// Column is one stored column with its delta bats.
type Column struct {
	Base    *bat.BAT
	Inserts *bat.BAT
	Updates *bat.BAT
	// Segmented is the bpm.Store name of the value-based organization of
	// this column, when one exists.
	Segmented string
}

// WriteCatalog is the write surface of a catalog: the delta-bat append
// operations the DML builtins (sql.insertRow, sql.updateRows,
// sql.deleteRows) call into. A Catalog without it is read-only — write
// plans executed against it fail at the builtin, not silently.
type WriteCatalog interface {
	Catalog
	InsertRow(schema, table string, vals map[string]bat.Value) (uint64, error)
	UpdateRow(schema, table string, oid uint64, column string, v bat.Value) error
	DeleteRow(schema, table string, oid uint64) error
}

// Table groups columns plus the deletion bat.
type Table struct {
	Schema, Name string
	Cols         map[string]*Column
	// Order is the declared column order (CREATE TABLE position), used
	// to resolve INSERTs without an explicit column list. Tables built
	// directly from the Cols map may leave it nil.
	Order   []string
	Deletes *bat.BAT // [oid, oid] of deleted rows
}

// MemCatalog is the in-memory Catalog used by tests, examples and the
// shell.
type MemCatalog struct {
	tables map[string]*Table
}

// NewMemCatalog returns an empty catalog.
func NewMemCatalog() *MemCatalog {
	return &MemCatalog{tables: make(map[string]*Table)}
}

// AddTable registers a table; column delta bats are created empty when
// nil.
func (c *MemCatalog) AddTable(t *Table) {
	for _, col := range t.Cols {
		if col.Inserts == nil {
			col.Inserts = bat.Empty(bat.KOid, col.Base.TailKind())
		}
		if col.Updates == nil {
			col.Updates = bat.Empty(bat.KOid, col.Base.TailKind())
		}
	}
	if t.Deletes == nil {
		t.Deletes = bat.Empty(bat.KOid, bat.KOid)
	}
	c.tables[t.Schema+"."+t.Name] = t
}

// CreateTable registers a new all-bigint table with the given declared
// column order — the DDL entry point of the SQL write path. It fails on
// an existing table, an empty column list or a duplicate column.
func (c *MemCatalog) CreateTable(schema, table string, columns []string) error {
	if len(columns) == 0 {
		return fmt.Errorf("mal: create table %s.%s without columns", schema, table)
	}
	if _, ok := c.tables[schema+"."+table]; ok {
		return fmt.Errorf("mal: table %s.%s already exists", schema, table)
	}
	cols := make(map[string]*Column, len(columns))
	for _, name := range columns {
		if _, dup := cols[name]; dup {
			return fmt.Errorf("mal: create table %s.%s: duplicate column %s", schema, table, name)
		}
		cols[name] = &Column{Base: bat.Empty(bat.KOid, bat.KLng)}
	}
	c.AddTable(&Table{
		Schema: schema,
		Name:   table,
		Cols:   cols,
		Order:  append([]string(nil), columns...),
	})
	return nil
}

// ColumnsOf returns the declared column order of a table ("" table →
// nil), falling back to nil when the table predates Order tracking.
func (c *MemCatalog) ColumnsOf(schema, table string) []string {
	t, ok := c.tables[schema+"."+table]
	if !ok {
		return nil
	}
	return t.Order
}

func (c *MemCatalog) table(schema, table string) (*Table, error) {
	t, ok := c.tables[schema+"."+table]
	if !ok {
		return nil, fmt.Errorf("mal: unknown table %s.%s", schema, table)
	}
	return t, nil
}

// Bind implements Catalog.
func (c *MemCatalog) Bind(schema, table, column string, slot int) (*bat.BAT, error) {
	t, err := c.table(schema, table)
	if err != nil {
		return nil, err
	}
	col, ok := t.Cols[column]
	if !ok {
		return nil, fmt.Errorf("mal: unknown column %s.%s.%s", schema, table, column)
	}
	switch slot {
	case 0:
		return col.Base, nil
	case 1:
		return col.Inserts, nil
	case 2:
		return col.Updates, nil
	default:
		return nil, fmt.Errorf("mal: bind slot %d out of range", slot)
	}
}

// BindDBat implements Catalog.
func (c *MemCatalog) BindDBat(schema, table string, slot int) (*bat.BAT, error) {
	t, err := c.table(schema, table)
	if err != nil {
		return nil, err
	}
	_ = slot // MonetDB distinguishes persistent/transient deletes; we keep one.
	return t.Deletes, nil
}

// --- delta writes ---
//
// The methods below give the catalog the write surface of MonetDB's SQL
// runtime: inserts land in the per-column insert bats (slot 1), updates
// upsert into the update bats (slot 2) and deletes append to the
// deletion bat — exactly the delta bats the generated Figure-1 plans
// merge with kunion/kdifference. After a write, re-running a compiled
// plan reflects it with no recompilation: the plan binds the same bats.
// MemCatalog is not safe for concurrent mutation; serialize writers.

// findRow returns the index of the first row of b whose head is oid, or
// -1.
func findRow(b *bat.BAT, oid uint64) int {
	want := bat.Oid(oid)
	for i := 0; i < b.Len(); i++ {
		if h, _ := b.Row(i); h == want {
			return i
		}
	}
	return -1
}

// withoutRow returns b minus every row whose head is oid (b untouched).
func withoutRow(b *bat.BAT, oid uint64) *bat.BAT {
	out := bat.Empty(b.HeadKind(), b.TailKind())
	want := bat.Oid(oid)
	for i := 0; i < b.Len(); i++ {
		h, t := b.Row(i)
		if h != want {
			out.AppendRow(h, t)
		}
	}
	return out
}

// nextOID returns the first unused row oid of t (base and insert bats
// hold oid heads).
func (t *Table) nextOID() uint64 {
	var next uint64
	bump := func(b *bat.BAT) {
		for i := 0; i < b.Len(); i++ {
			h, _ := b.Row(i)
			if o := h.AsOid() + 1; o > next {
				next = o
			}
		}
	}
	for _, col := range t.Cols {
		bump(col.Base)
		bump(col.Inserts)
	}
	return next
}

// InsertRow appends one row: vals must supply a tail value for every
// column of the table. It returns the assigned oid.
func (c *MemCatalog) InsertRow(schema, table string, vals map[string]bat.Value) (uint64, error) {
	t, err := c.table(schema, table)
	if err != nil {
		return 0, err
	}
	for name, col := range t.Cols {
		v, ok := vals[name]
		if !ok {
			return 0, fmt.Errorf("mal: insert into %s.%s missing column %s", schema, table, name)
		}
		// Validate the kind before any append: a mid-append failure would
		// leave the per-column insert bats with diverging row sets.
		if v.K != col.Base.TailKind() {
			return 0, fmt.Errorf("mal: insert into %s.%s: column %s wants %v, got %v",
				schema, table, name, col.Base.TailKind(), v.K)
		}
	}
	for name := range vals {
		if _, ok := t.Cols[name]; !ok {
			return 0, fmt.Errorf("mal: insert into %s.%s: unknown column %s", schema, table, name)
		}
	}
	oid := t.nextOID()
	for name, col := range t.Cols {
		col.Inserts.AppendRow(bat.Oid(oid), vals[name])
	}
	return oid, nil
}

// UpdateRow records a new tail value for one column of row oid. The
// update bat keeps at most one entry per oid (kunion would otherwise
// duplicate the row), so repeated updates replace each other.
func (c *MemCatalog) UpdateRow(schema, table string, oid uint64, column string, v bat.Value) error {
	t, err := c.table(schema, table)
	if err != nil {
		return err
	}
	col, ok := t.Cols[column]
	if !ok {
		return fmt.Errorf("mal: unknown column %s.%s.%s", schema, table, column)
	}
	if v.K != col.Base.TailKind() {
		return fmt.Errorf("mal: update of %s.%s.%s wants %v, got %v",
			schema, table, column, col.Base.TailKind(), v.K)
	}
	if findRow(t.Deletes, oid) >= 0 {
		return fmt.Errorf("mal: update of deleted row %d", oid)
	}
	if findRow(col.Base, oid) < 0 && findRow(col.Inserts, oid) < 0 {
		return fmt.Errorf("mal: update of unknown row %d", oid)
	}
	if findRow(col.Updates, oid) >= 0 {
		col.Updates = withoutRow(col.Updates, oid)
	}
	col.Updates.AppendRow(bat.Oid(oid), v)
	return nil
}

// DeleteRow masks row oid out of every plan via the deletion bat.
func (c *MemCatalog) DeleteRow(schema, table string, oid uint64) error {
	t, err := c.table(schema, table)
	if err != nil {
		return err
	}
	if findRow(t.Deletes, oid) >= 0 {
		return nil // already deleted; masking is idempotent
	}
	exists := false
	for _, col := range t.Cols {
		if findRow(col.Base, oid) >= 0 || findRow(col.Inserts, oid) >= 0 {
			exists = true
			break
		}
	}
	if !exists {
		return fmt.Errorf("mal: delete of unknown row %d", oid)
	}
	t.Deletes.AppendRow(bat.Oid(oid), bat.Oid(oid))
	return nil
}

// SegmentedName implements Catalog.
func (c *MemCatalog) SegmentedName(schema, table, column string) string {
	t, err := c.table(schema, table)
	if err != nil {
		return ""
	}
	col, ok := t.Cols[column]
	if !ok {
		return ""
	}
	return col.Segmented
}
