package mal

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokKind enumerates lexical token classes.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokFlt
	tokStr
	tokOid
	tokAssign // :=
	tokColon
	tokSemi
	tokComma
	tokLParen
	tokRParen
	tokLBrack
	tokRBrack
	tokDot
)

func (k tokKind) String() string {
	names := map[tokKind]string{
		tokEOF: "EOF", tokIdent: "identifier", tokInt: "integer", tokFlt: "float",
		tokStr: "string", tokOid: "oid", tokAssign: "':='", tokColon: "':'",
		tokSemi: "';'", tokComma: "','", tokLParen: "'('", tokRParen: "')'",
		tokLBrack: "'['", tokRBrack: "']'", tokDot: "'.'",
	}
	if s, ok := names[k]; ok {
		return s
	}
	return fmt.Sprintf("tok(%d)", int(k))
}

// token is one lexical unit.
type token struct {
	kind tokKind
	text string
	i    int64
	f    float64
	line int
}

// lexer turns MAL source into tokens. '#' starts a comment to end of line.
type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

func (l *lexer) errf(format string, args ...any) error {
	return fmt.Errorf("mal: line %d: %s", l.line, fmt.Sprintf(format, args...))
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '#':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, line: l.line}, nil

scan:
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == ':':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.pos += 2
			return token{kind: tokAssign, text: ":=", line: l.line}, nil
		}
		l.pos++
		return token{kind: tokColon, text: ":", line: l.line}, nil
	case c == ';':
		l.pos++
		return token{kind: tokSemi, text: ";", line: l.line}, nil
	case c == ',':
		l.pos++
		return token{kind: tokComma, text: ",", line: l.line}, nil
	case c == '(':
		l.pos++
		return token{kind: tokLParen, text: "(", line: l.line}, nil
	case c == ')':
		l.pos++
		return token{kind: tokRParen, text: ")", line: l.line}, nil
	case c == '[':
		l.pos++
		return token{kind: tokLBrack, text: "[", line: l.line}, nil
	case c == ']':
		l.pos++
		return token{kind: tokRBrack, text: "]", line: l.line}, nil
	case c == '.':
		// Disambiguated from float starts: a bare '.' only follows idents.
		l.pos++
		return token{kind: tokDot, text: ".", line: l.line}, nil
	case c == '"':
		return l.lexString()
	case c == '-' || unicode.IsDigit(rune(c)):
		return l.lexNumber()
	case c == '_' || unicode.IsLetter(rune(c)):
		for l.pos < len(l.src) {
			r := l.src[l.pos]
			if r == '_' || unicode.IsLetter(rune(r)) || unicode.IsDigit(rune(r)) {
				l.pos++
			} else {
				break
			}
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], line: l.line}, nil
	default:
		return token{}, l.errf("unexpected character %q", c)
	}
}

func (l *lexer) lexString() (token, error) {
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case '"':
			l.pos++
			return token{kind: tokStr, text: b.String(), line: l.line}, nil
		case '\\':
			if l.pos+1 >= len(l.src) {
				return token{}, l.errf("unterminated escape")
			}
			l.pos++
			switch esc := l.src[l.pos]; esc {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '\\', '"':
				b.WriteByte(esc)
			default:
				return token{}, l.errf("unknown escape \\%c", esc)
			}
			l.pos++
		case '\n':
			return token{}, l.errf("unterminated string")
		default:
			b.WriteByte(c)
			l.pos++
		}
	}
	return token{}, l.errf("unterminated string")
}

func (l *lexer) lexNumber() (token, error) {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
	}
	digits := 0
	for l.pos < len(l.src) && unicode.IsDigit(rune(l.src[l.pos])) {
		l.pos++
		digits++
	}
	if digits == 0 {
		return token{}, l.errf("malformed number")
	}
	// Oid literal: INT '@' INT.
	if l.peekByte() == '@' {
		intPart := l.src[start:l.pos]
		l.pos++ // '@'
		sub := 0
		for l.pos < len(l.src) && unicode.IsDigit(rune(l.src[l.pos])) {
			l.pos++
			sub++
		}
		if sub == 0 {
			return token{}, l.errf("malformed oid literal")
		}
		v, err := strconv.ParseInt(intPart, 10, 64)
		if err != nil {
			return token{}, l.errf("oid literal: %v", err)
		}
		return token{kind: tokOid, text: l.src[start:l.pos], i: v, line: l.line}, nil
	}
	isFloat := false
	if l.peekByte() == '.' && l.pos+1 < len(l.src) && unicode.IsDigit(rune(l.src[l.pos+1])) {
		isFloat = true
		l.pos++
		for l.pos < len(l.src) && unicode.IsDigit(rune(l.src[l.pos])) {
			l.pos++
		}
	}
	if b := l.peekByte(); b == 'e' || b == 'E' {
		save := l.pos
		l.pos++
		if b := l.peekByte(); b == '+' || b == '-' {
			l.pos++
		}
		expDigits := 0
		for l.pos < len(l.src) && unicode.IsDigit(rune(l.src[l.pos])) {
			l.pos++
			expDigits++
		}
		if expDigits == 0 {
			l.pos = save
		} else {
			isFloat = true
		}
	}
	text := l.src[start:l.pos]
	if isFloat {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return token{}, l.errf("float literal: %v", err)
		}
		return token{kind: tokFlt, text: text, f: f, line: l.line}, nil
	}
	v, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return token{}, l.errf("int literal: %v", err)
	}
	return token{kind: tokInt, text: text, i: v, line: l.line}, nil
}
