// Package mal implements the MonetDB Assembly Language subset that the
// paper's execution layer speaks (§2): typed single-assignment
// instructions over BATs, module-qualified builtin calls, and the
// barrier/redo/exit blocks that the segment optimizer's iterator rewrite
// relies on (§3.1). The interpreter follows MonetDB's execution paradigm
// of materializing every intermediate result.
//
// Plans reach this layer from the SQL front end (internal/sql) after the
// tactical optimizer (internal/opt) has applied the segment rewrite; the
// builtin registry (DefaultRegistry) binds the algebra/bat/calc/aggr/io
// kernels of internal/bat and the bpm.* segment module of internal/bpm.
// One interpreter Context is single-threaded, matching MonetDB's
// per-session execution; the segmented columns it touches through bpm.*
// are themselves safe for concurrent use across contexts.
package mal
