package mal

import (
	"math/rand"
	"testing"

	"selforg/internal/bat"
	"selforg/internal/bpm"
)

// benchCatalog builds a sys.P table with n rows.
func benchCatalog(n int) *MemCatalog {
	rng := rand.New(rand.NewSource(1))
	ras := make([]float64, n)
	objs := make([]int64, n)
	for i := range ras {
		ras[i] = rng.Float64() * 360
		objs[i] = int64(i)
	}
	cat := NewMemCatalog()
	cat.AddTable(&Table{
		Schema: "sys", Name: "P",
		Cols: map[string]*Column{
			"ra":    {Base: bat.New(bat.NewDenseOids(0, n), bat.NewDbls(ras))},
			"objid": {Base: bat.New(bat.NewDenseOids(0, n), bat.NewLngs(objs))},
		},
	})
	return cat
}

// BenchmarkParseFigure1 measures the MAL front-end on the paper's plan.
func BenchmarkParseFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Parse(figure1Plan); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunFigure1 measures interpreting the full Figure-1 plan over a
// 64K-row table.
func BenchmarkRunFigure1(b *testing.B) {
	prog := MustParse(figure1Plan)
	in := NewInterp(benchCatalog(1<<16), bpm.NewStore())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx, err := in.Run(prog, 205.1, 205.12)
		if err != nil {
			b.Fatal(err)
		}
		if len(ctx.Results) != 1 {
			b.Fatal("no result")
		}
	}
}
