package compress

// The Advisor is the subsystem's decision maker: it profiles a segment's
// values — run structure, cardinality, value span — and estimates, per
// encoding, the accounted storage the segment would occupy, choosing the
// minimum. Profiling samples a bounded prefix plus the full-range
// extremes, so advice stays O(SampleSize) even for the prototype's
// multi-megabyte segments; a non-Plain encoding is chosen only when its
// estimate strictly beats Plain, so pathological data can never regress
// past the uncompressed baseline by more than the estimation error.

// Profile summarizes the value distribution the Advisor decides on.
type Profile struct {
	N        int   // rows profiled against (the full segment length)
	Runs     int   // estimated maximal equal-adjacent runs
	Distinct int   // estimated distinct values (sample lower bound)
	Min, Max int64 // exact extremes over the full input
	Sampled  bool  // true when Runs/Distinct come from a sample
}

// Advisor chooses encodings from sampled profiles.
type Advisor struct {
	// SampleSize bounds the rows examined for run/cardinality estimation
	// (min/max are always exact). 0 means DefaultSampleSize.
	SampleSize int
}

// DefaultSampleSize is the profiling bound used when Advisor.SampleSize
// is zero.
const DefaultSampleSize = 1024

func (a Advisor) sampleSize() int {
	if a.SampleSize > 0 {
		return a.SampleSize
	}
	return DefaultSampleSize
}

// Profile examines vals: extremes exactly, run and distinct counts over a
// prefix sample scaled to the full length.
func (a Advisor) Profile(vals []int64) Profile {
	p := Profile{N: len(vals)}
	if len(vals) == 0 {
		return p
	}
	p.Min, p.Max = vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < p.Min {
			p.Min = v
		}
		if v > p.Max {
			p.Max = v
		}
	}
	sample := vals
	if s := a.sampleSize(); len(vals) > s {
		sample = vals[:s]
		p.Sampled = true
	}
	distinct := make(map[int64]struct{}, len(sample))
	runs := 0
	for i, v := range sample {
		if i == 0 || v != sample[i-1] {
			runs++
		}
		distinct[v] = struct{}{}
	}
	p.Runs = runs
	p.Distinct = len(distinct)
	if p.Sampled {
		// Scale the sampled run *boundaries* (a constant sample must stay
		// one run).
		p.Runs = (runs-1)*len(vals)/len(sample) + 1
		// Low-cardinality data saturates the sample fast, so a sparse
		// sample (≤ half distinct) is taken at face value; a dense sample
		// means high cardinality, which must scale with the full length or
		// dictionaries look far cheaper than they are.
		if len(distinct) > len(sample)/2 {
			p.Distinct = len(distinct) * len(vals) / len(sample)
			if p.Distinct > len(vals) {
				p.Distinct = len(vals)
			}
		}
	}
	return p
}

// EstimateBytes returns the accounted storage vals would occupy under e,
// computed from the profile alone.
func (Advisor) EstimateBytes(p Profile, e Encoding, elemSize int64) int64 {
	if elemSize < 1 {
		elemSize = 8
	}
	if p.N == 0 {
		return 0
	}
	n := int64(p.N)
	switch e {
	case Plain:
		return n * elemSize
	case RLE:
		return rleHeaderBytes + int64(p.Runs)*(elemSize+rleRunBytes)
	case Dict:
		width := bitsFor(uint64(p.Distinct - 1))
		return dictHeaderBytes + int64(p.Distinct)*elemSize + packedBytesFor(n, width)
	case FOR:
		width := bitsFor(uint64(p.Max) - uint64(p.Min))
		return forHeaderBytes + 2*elemSize + packedBytesFor(n, width)
	default:
		return n * elemSize
	}
}

// packedBytesFor sizes a packed array of n width-bit values.
func packedBytesFor(n int64, width uint) int64 {
	return (n*int64(width) + 63) / 64 * 8
}

// Choose profiles vals and returns the encoding with the minimum
// estimated accounted size; ties and losses both resolve to Plain.
func (a Advisor) Choose(vals []int64, elemSize int64) Encoding {
	p := a.Profile(vals)
	best, bestBytes := Plain, a.EstimateBytes(p, Plain, elemSize)
	for _, e := range []Encoding{RLE, Dict, FOR} {
		if b := a.EstimateBytes(p, e, elemSize); b < bestBytes {
			best, bestBytes = e, b
		}
	}
	return best
}

// Codec bundles a compression mode, an advisor and the column's accounted
// element width — the object the storage layers (Segmenter, Replicator,
// SegmentedBAT) consult whenever a segment is materialized or split. A
// nil *Codec means compression off.
type Codec struct {
	mode     Mode
	advisor  Advisor
	elemSize int64
}

// NewCodec builds a codec, or returns nil when mode is Off so callers can
// gate on a single nil check.
func NewCodec(mode Mode, elemSize int64) *Codec {
	if !mode.Enabled() {
		return nil
	}
	return &Codec{mode: mode, elemSize: elemSize}
}

// Enabled reports whether c encodes (nil-safe).
func (c *Codec) Enabled() bool { return c != nil && c.mode.Enabled() }

// Mode returns the codec's policy (Off for nil).
func (c *Codec) Mode() Mode {
	if c == nil {
		return Off
	}
	return c.mode
}

// ElemSize returns the accounted element width the codec encodes against.
func (c *Codec) ElemSize() int64 {
	if c == nil {
		return 0
	}
	return c.elemSize
}

// Encode compresses vals under the codec's policy. The input is aliased
// only when the chosen encoding is Plain. Under Auto the result is
// guaranteed no larger than Plain: the advisor's sampled estimate picks
// the candidate, and an actual-size check falls back to Plain when the
// estimate was too optimistic.
func (c *Codec) Encode(vals []int64) Vector {
	e, forced := c.mode.Forced()
	if forced {
		return Encode(vals, e, c.elemSize)
	}
	return c.encodeAuto(vals)
}

// encodeAuto encodes under the advisor's choice with the Plain fallback
// guarantee.
func (c *Codec) encodeAuto(vals []int64) Vector {
	e := c.advisor.Choose(vals, c.elemSize)
	v := Encode(vals, e, c.elemSize)
	if e != Plain && v.StoredBytes() > int64(len(vals))*c.elemSize {
		return NewPlain(vals, c.elemSize)
	}
	return v
}

// EncodeDbls compresses a float64 tail under the codec's policy via the
// order-preserving mapping, with the same Plain fallback under Auto.
func (c *Codec) EncodeDbls(vals []float64) *DblVector {
	e, forced := c.mode.Forced()
	if forced {
		return EncodeDbls(vals, e, c.elemSize)
	}
	mapped := make([]int64, len(vals))
	for i, f := range vals {
		mapped[i] = mapDbl(f)
	}
	return &DblVector{inner: c.encodeAuto(mapped)}
}
