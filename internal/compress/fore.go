package compress

import "selforg/internal/bat"

// FORVector is frame-of-reference encoding: the minimum value is the
// frame, every row stores its bit-packed delta from it. The frame and the
// maximum double as a min-max synopsis, so a range predicate that misses
// or swallows the segment is answered without unpacking a single delta —
// the pruning fast path the segment meta-index composes with.
type FORVector struct {
	ref      int64 // frame of reference: the minimum value
	max      int64
	deltas   packed // per-row unsigned delta from ref
	elemSize int64
}

// NewFOR encodes vals; the input is not retained.
func NewFOR(vals []int64, elemSize int64) *FORVector {
	if elemSize < 1 {
		elemSize = 8
	}
	f := &FORVector{elemSize: elemSize}
	if len(vals) == 0 {
		return f
	}
	f.ref, f.max = vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < f.ref {
			f.ref = v
		}
		if v > f.max {
			f.max = v
		}
	}
	// Deltas in uint64 arithmetic so the full int64 span cannot overflow.
	width := bitsFor(uint64(f.max) - uint64(f.ref))
	deltas := make([]uint64, len(vals))
	for i, v := range vals {
		deltas[i] = uint64(v) - uint64(f.ref)
	}
	f.deltas = packAll(deltas, width)
	return f
}

// Kind implements bat.Vector.
func (f *FORVector) Kind() bat.Kind { return bat.KLng }

// Len implements bat.Vector.
func (f *FORVector) Len() int { return f.deltas.n }

// Get implements bat.Vector.
func (f *FORVector) Get(i int) bat.Value { return bat.Lng(f.At(i)) }

// Append implements bat.Vector by decaying to Plain (see Vector docs).
func (f *FORVector) Append(v bat.Value) bat.Vector {
	return NewPlain(append(f.AppendTo(nil), v.AsLng()), f.elemSize)
}

// Slice implements bat.Vector by decoding the window into Plain.
func (f *FORVector) Slice(i, j int) bat.Vector {
	out := make([]int64, 0, j-i)
	for k := i; k < j; k++ {
		out = append(out, f.At(k))
	}
	return NewPlain(out, f.elemSize)
}

// Empty implements bat.Vector.
func (f *FORVector) Empty() bat.Vector { return NewPlain(nil, f.elemSize) }

// Encoding implements Vector.
func (f *FORVector) Encoding() Encoding { return FOR }

// forHeaderBytes is the accounted per-vector header (row count, delta
// width).
const forHeaderBytes = 8

// StoredBytes implements Vector: a vector header, the two frame values,
// and the packed deltas.
func (f *FORVector) StoredBytes() int64 {
	if f.deltas.n == 0 {
		return 0
	}
	return forHeaderBytes + 2*f.elemSize + f.deltas.bytes()
}

// Width returns the delta bit width (diagnostics, advisor validation).
func (f *FORVector) Width() uint { return f.deltas.width }

// At implements Vector.
func (f *FORVector) At(i int) int64 {
	return int64(uint64(f.ref) + f.deltas.get(i))
}

// AppendTo implements Vector.
func (f *FORVector) AppendTo(dst []int64) []int64 {
	for i := 0; i < f.deltas.n; i++ {
		dst = append(dst, f.At(i))
	}
	return dst
}

// prune classifies [lo, hi] against the frame: -1 disjoint, +1 covers the
// whole vector, 0 partial.
func (f *FORVector) prune(lo, hi int64) int {
	if f.deltas.n == 0 || hi < f.ref || lo > f.max {
		return -1
	}
	if lo <= f.ref && hi >= f.max {
		return 1
	}
	return 0
}

// SelectRange implements Vector with min-max pruning before any unpack.
func (f *FORVector) SelectRange(lo, hi int64, dst []int64) []int64 {
	switch f.prune(lo, hi) {
	case -1:
		return dst
	case 1:
		return f.AppendTo(dst)
	}
	return selectScan(f, lo, hi, dst)
}

// CountRange implements Vector.
func (f *FORVector) CountRange(lo, hi int64) int64 {
	switch f.prune(lo, hi) {
	case -1:
		return 0
	case 1:
		return int64(f.deltas.n)
	}
	var n int64
	for i := 0; i < f.deltas.n; i++ {
		if v := f.At(i); v >= lo && v <= hi {
			n++
		}
	}
	return n
}

// Spans implements Vector.
func (f *FORVector) Spans(lo, hi int64, fn func(start, end int)) {
	switch f.prune(lo, hi) {
	case -1:
		return
	case 1:
		fn(0, f.deltas.n)
		return
	}
	spanScan(f, lo, hi, fn)
}

// RangeSpans implements bat.RangeSpanner.
func (f *FORVector) RangeSpans(lo, hi bat.Value, fn func(start, end int)) {
	f.Spans(lo.AsLng(), hi.AsLng(), fn)
}

// MinMax implements Vector: free from the frame.
func (f *FORVector) MinMax() (int64, int64, bool) {
	if f.deltas.n == 0 {
		return 0, 0, false
	}
	return f.ref, f.max, true
}
