package compress

import (
	"sort"

	"selforg/internal/bat"
)

// DictVector is dictionary encoding: the distinct values, sorted
// ascending, plus one bit-packed dictionary code per row. Because the
// dictionary is sorted, a range predicate reduces to a code interval
// found by two binary searches — rows are then filtered with integer
// code comparisons, never by materializing values, and a predicate that
// misses or swallows the whole dictionary is answered from the
// dictionary alone.
type DictVector struct {
	dict     []int64 // sorted distinct values
	codes    packed  // per-row index into dict
	elemSize int64
}

// NewDict encodes vals; the input is not retained.
func NewDict(vals []int64, elemSize int64) *DictVector {
	if elemSize < 1 {
		elemSize = 8
	}
	d := &DictVector{elemSize: elemSize}
	if len(vals) == 0 {
		return d
	}
	sorted := append([]int64(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	d.dict = sorted[:0]
	for i, v := range sorted {
		if i == 0 || v != d.dict[len(d.dict)-1] {
			d.dict = append(d.dict, v)
		}
	}
	width := bitsFor(uint64(len(d.dict) - 1))
	codes := make([]uint64, len(vals))
	for i, v := range vals {
		codes[i] = uint64(searchInt64s(d.dict, v))
	}
	d.codes = packAll(codes, width)
	return d
}

// searchInt64s returns the first index at which a[i] >= v.
func searchInt64s(a []int64, v int64) int {
	return sort.Search(len(a), func(i int) bool { return a[i] >= v })
}

// Kind implements bat.Vector.
func (d *DictVector) Kind() bat.Kind { return bat.KLng }

// Len implements bat.Vector.
func (d *DictVector) Len() int { return d.codes.n }

// Get implements bat.Vector.
func (d *DictVector) Get(i int) bat.Value { return bat.Lng(d.At(i)) }

// Append implements bat.Vector by decaying to Plain (see Vector docs).
func (d *DictVector) Append(v bat.Value) bat.Vector {
	return NewPlain(append(d.AppendTo(nil), v.AsLng()), d.elemSize)
}

// Slice implements bat.Vector by decoding the window into Plain.
func (d *DictVector) Slice(i, j int) bat.Vector {
	out := make([]int64, 0, j-i)
	for k := i; k < j; k++ {
		out = append(out, d.At(k))
	}
	return NewPlain(out, d.elemSize)
}

// Empty implements bat.Vector.
func (d *DictVector) Empty() bat.Vector { return NewPlain(nil, d.elemSize) }

// Encoding implements Vector.
func (d *DictVector) Encoding() Encoding { return Dict }

// dictHeaderBytes is the accounted per-vector header (row count, code
// width, dictionary length).
const dictHeaderBytes = 16

// StoredBytes implements Vector: a vector header plus the dictionary at
// element width plus the packed codes.
func (d *DictVector) StoredBytes() int64 {
	if d.codes.n == 0 {
		return 0
	}
	return dictHeaderBytes + int64(len(d.dict))*d.elemSize + d.codes.bytes()
}

// DictLen returns the dictionary cardinality (diagnostics, advisor
// validation).
func (d *DictVector) DictLen() int { return len(d.dict) }

// At implements Vector.
func (d *DictVector) At(i int) int64 { return d.dict[d.codes.get(i)] }

// AppendTo implements Vector.
func (d *DictVector) AppendTo(dst []int64) []int64 {
	for i := 0; i < d.codes.n; i++ {
		dst = append(dst, d.dict[d.codes.get(i)])
	}
	return dst
}

// codeRange maps [lo, hi] onto the half-open qualifying code interval
// [cLo, cHi).
func (d *DictVector) codeRange(lo, hi int64) (uint64, uint64) {
	cLo := uint64(searchInt64s(d.dict, lo))
	cHi := uint64(sort.Search(len(d.dict), func(i int) bool { return d.dict[i] > hi }))
	return cLo, cHi
}

// SelectRange implements Vector: binary-search the dictionary once, then
// filter rows by code interval.
func (d *DictVector) SelectRange(lo, hi int64, dst []int64) []int64 {
	cLo, cHi := d.codeRange(lo, hi)
	if cLo >= cHi {
		return dst
	}
	if cLo == 0 && cHi == uint64(len(d.dict)) {
		return d.AppendTo(dst)
	}
	for i := 0; i < d.codes.n; i++ {
		if c := d.codes.get(i); c >= cLo && c < cHi {
			dst = append(dst, d.dict[c])
		}
	}
	return dst
}

// CountRange implements Vector.
func (d *DictVector) CountRange(lo, hi int64) int64 {
	cLo, cHi := d.codeRange(lo, hi)
	if cLo >= cHi {
		return 0
	}
	if cLo == 0 && cHi == uint64(len(d.dict)) {
		return int64(d.codes.n)
	}
	var n int64
	for i := 0; i < d.codes.n; i++ {
		if c := d.codes.get(i); c >= cLo && c < cHi {
			n++
		}
	}
	return n
}

// Spans implements Vector.
func (d *DictVector) Spans(lo, hi int64, f func(start, end int)) {
	cLo, cHi := d.codeRange(lo, hi)
	if cLo >= cHi {
		return
	}
	if cLo == 0 && cHi == uint64(len(d.dict)) {
		if d.codes.n > 0 {
			f(0, d.codes.n)
		}
		return
	}
	start := -1
	for i := 0; i < d.codes.n; i++ {
		c := d.codes.get(i)
		if c >= cLo && c < cHi {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			f(start, i)
			start = -1
		}
	}
	if start >= 0 {
		f(start, d.codes.n)
	}
}

// RangeSpans implements bat.RangeSpanner.
func (d *DictVector) RangeSpans(lo, hi bat.Value, f func(start, end int)) {
	d.Spans(lo.AsLng(), hi.AsLng(), f)
}

// MinMax implements Vector: free from the sorted dictionary.
func (d *DictVector) MinMax() (int64, int64, bool) {
	if len(d.dict) == 0 {
		return 0, 0, false
	}
	return d.dict[0], d.dict[len(d.dict)-1], true
}
