// Package compress implements the adaptive per-segment compression
// subsystem: lightweight, order-preserving encodings for column vectors —
// run-length (RLE), dictionary with bit-packed codes, and
// frame-of-reference with bit-packed deltas — alongside an uncompressed
// Plain form.
//
// Every encoding implements bat.Vector, so BAT algebra, aggregation and
// the MAL operators work transparently over compressed data, and each
// offers range-selection fast paths that operate on the compressed form:
// RLE skips or emits whole runs without expansion, Dict prunes through a
// binary search of the sorted dictionary, and FOR prunes through its
// min/max frame before touching a single delta.
//
// Encoding choice is adaptive: an Advisor profiles a segment's values
// (run structure, cardinality, value span) and picks the
// minimum-estimated-size encoding. The self-organizing strategies of
// internal/core piggy-back that decision on query execution exactly the
// way the paper piggy-backs splitting: a segment is (re-)encoded when a
// query materializes or splits it, so hot, reorganized regions converge
// to their best storage format without any offline pass. The design
// follows Fehér & Lucani's adaptive column-compression family and
// Bruno's observation that lightweight compression dominates C-store
// scan cost (see PAPERS.md).
//
// Sizes are accounted against the column's accounted element width
// (ElemSize, 4 bytes in the paper's setup), so Plain matches the
// uncompressed accounting exactly and compression ratios are meaningful
// within the paper's cost model.
package compress

import (
	"fmt"

	"selforg/internal/bat"
)

// Encoding identifies one storage encoding.
type Encoding uint8

const (
	// Plain stores values uncompressed, in arrival order.
	Plain Encoding = iota
	// RLE stores maximal runs of equal adjacent values as (value, end).
	RLE
	// Dict stores a sorted dictionary of distinct values plus bit-packed
	// per-row codes.
	Dict
	// FOR stores a frame of reference (the minimum) plus bit-packed
	// per-row deltas.
	FOR
)

// NumEncodings is the number of concrete encodings — the dimension of
// per-encoding breakdowns (segment.EncodingStats and friends).
const NumEncodings = 4

// Encodings lists every concrete encoding, Plain first.
var Encodings = []Encoding{Plain, RLE, Dict, FOR}

func (e Encoding) String() string {
	switch e {
	case Plain:
		return "plain"
	case RLE:
		return "rle"
	case Dict:
		return "dict"
	case FOR:
		return "for"
	default:
		return fmt.Sprintf("Encoding(%d)", uint8(e))
	}
}

// Mode is the compression policy knob surfaced through selforg.Options:
// off (the zero value, the legacy uncompressed layout), adaptive
// (advisor-chosen per segment), or one forced encoding.
type Mode int

const (
	// Off disables the subsystem: segments store raw value slices.
	Off Mode = iota
	// Auto lets the Advisor pick the minimum-estimated-size encoding per
	// segment.
	Auto
	// ForcePlain wraps segments in the Plain encoding (useful to isolate
	// the cost of the vector indirection in benchmarks).
	ForcePlain
	// ForceRLE forces run-length encoding.
	ForceRLE
	// ForceDict forces dictionary encoding.
	ForceDict
	// ForceFOR forces frame-of-reference encoding.
	ForceFOR
)

func (m Mode) String() string {
	switch m {
	case Off:
		return "off"
	case Auto:
		return "auto"
	case ForcePlain:
		return "plain"
	case ForceRLE:
		return "rle"
	case ForceDict:
		return "dict"
	case ForceFOR:
		return "for"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Enabled reports whether the mode stores segments through the subsystem.
func (m Mode) Enabled() bool { return m != Off }

// Forced returns the forced encoding and true for the Force* modes.
func (m Mode) Forced() (Encoding, bool) {
	switch m {
	case ForcePlain:
		return Plain, true
	case ForceRLE:
		return RLE, true
	case ForceDict:
		return Dict, true
	case ForceFOR:
		return FOR, true
	default:
		return Plain, false
	}
}

// Vector is a compressed int64 column vector. It extends bat.Vector — so
// a compressed vector slots into a BAT tail and every kernel operator
// keeps working — with raw accessors and the compressed-form fast paths.
//
// Append and Slice follow bat.Vector's replace semantics: they return a
// Plain vector holding the decoded result, since point mutation defeats
// the encodings; re-encoding after a batch of appends is the caller's
// (usually the Codec's) job.
type Vector interface {
	bat.Vector

	// Encoding identifies the storage format.
	Encoding() Encoding
	// StoredBytes is the accounted physical size of the encoded form,
	// measured against the accounted element width the vector was encoded
	// with. Plain's StoredBytes equals Len()*elemSize exactly.
	StoredBytes() int64
	// At returns the i-th value without bat.Value boxing.
	At(i int) int64
	// AppendTo appends every value, in order, to dst and returns it.
	AppendTo(dst []int64) []int64
	// SelectRange appends the values lying in [lo, hi] (inclusive), in
	// order, to dst — the selection fast path on the compressed form.
	SelectRange(lo, hi int64, dst []int64) []int64
	// CountRange counts the values lying in [lo, hi] without materializing
	// them.
	CountRange(lo, hi int64) int64
	// Spans calls f(start, end) for every maximal half-open row span
	// [start, end) whose values all lie in [lo, hi], in ascending order.
	// Positional selections (BAT head/tail association) build on it; the
	// bat.Value-typed RangeSpans adapters expose it as bat.RangeSpanner.
	Spans(lo, hi int64, f func(start, end int))
	// MinMax returns the extreme values; ok is false for empty vectors.
	MinMax() (min, max int64, ok bool)
}

// Encode compresses vals with the given encoding. elemSize is the
// accounted bytes per uncompressed element (the column's ElemSize); sizes
// below 1 default to 8 (the in-memory width of an int64). The input slice
// is not retained by RLE/Dict/FOR; Plain aliases it.
func Encode(vals []int64, e Encoding, elemSize int64) Vector {
	if elemSize < 1 {
		elemSize = 8
	}
	switch e {
	case Plain:
		return NewPlain(vals, elemSize)
	case RLE:
		return NewRLE(vals, elemSize)
	case Dict:
		return NewDict(vals, elemSize)
	case FOR:
		return NewFOR(vals, elemSize)
	default:
		panic(fmt.Sprintf("compress: unknown encoding %v", e))
	}
}

// selectScan is the shared scan-based SelectRange used by the encodings
// whose rows decode in O(1).
func selectScan(v Vector, lo, hi int64, dst []int64) []int64 {
	n := v.Len()
	for i := 0; i < n; i++ {
		if x := v.At(i); x >= lo && x <= hi {
			dst = append(dst, x)
		}
	}
	return dst
}

// spanScan is the shared scan-based Spans for O(1)-decode encodings: it
// coalesces adjacent qualifying rows into maximal spans.
func spanScan(v Vector, lo, hi int64, f func(start, end int)) {
	n := v.Len()
	start := -1
	for i := 0; i < n; i++ {
		x := v.At(i)
		if x >= lo && x <= hi {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			f(start, i)
			start = -1
		}
	}
	if start >= 0 {
		f(start, n)
	}
}
