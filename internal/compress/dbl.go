package compress

import (
	"math"

	"selforg/internal/bat"
)

// Float columns (the prototype's SkyServer ra tail is a dbl vector)
// compress through an order-preserving bijection between float64 and
// int64: the IEEE-754 bit pattern, sign-folded so that integer order
// equals float order. Every int64 encoding — RLE run skipping, the sorted
// dictionary's code intervals, FOR's min-max frame — then works on dbl
// data unchanged, including the range fast paths, because the mapping is
// monotone: mapping the predicate bounds is equivalent to mapping every
// value.

const dblSignBit = uint64(1) << 63

// mapDbl maps f onto an int64 whose order matches float64 order
// (-Inf < ... < 0 < ... < +Inf). Negative zero is normalized to +0.0
// first: float comparison treats the two as equal, so they must map to
// the same integer or a predicate bound of 0.0 would wrongly exclude
// -0.0 rows (decoded -0.0 therefore comes back as the numerically equal
// +0.0). NaNs map outside the ±Inf interval, so any ordered predicate
// excludes them — matching float comparison, where NaN matches nothing.
func mapDbl(f float64) int64 {
	if f == 0 {
		f = 0 // collapse -0.0 onto +0.0
	}
	u := math.Float64bits(f)
	if u&dblSignBit != 0 {
		u = ^u
	} else {
		u |= dblSignBit
	}
	return int64(u ^ dblSignBit)
}

// unmapDbl inverts mapDbl.
func unmapDbl(x int64) float64 {
	u := uint64(x) ^ dblSignBit
	if u&dblSignBit != 0 {
		u ^= dblSignBit
	} else {
		u = ^u
	}
	return math.Float64frombits(u)
}

// DblVector adapts an int64 encoding to a dbl (float64) vector via the
// order-preserving mapping. It implements bat.Vector with Kind KDbl, so a
// compressed dbl column drops into a BAT tail transparently.
type DblVector struct {
	inner Vector
}

// EncodeDbls compresses vals with the given encoding (the input is not
// retained).
func EncodeDbls(vals []float64, e Encoding, elemSize int64) *DblVector {
	mapped := make([]int64, len(vals))
	for i, f := range vals {
		mapped[i] = mapDbl(f)
	}
	return &DblVector{inner: Encode(mapped, e, elemSize)}
}

// Kind implements bat.Vector.
func (d *DblVector) Kind() bat.Kind { return bat.KDbl }

// Len implements bat.Vector.
func (d *DblVector) Len() int { return d.inner.Len() }

// Get implements bat.Vector.
func (d *DblVector) Get(i int) bat.Value { return bat.Dbl(d.AtDbl(i)) }

// AtDbl returns the i-th value without bat.Value boxing.
func (d *DblVector) AtDbl(i int) float64 { return unmapDbl(d.inner.At(i)) }

// Append implements bat.Vector by decaying to a plain dbl vector.
func (d *DblVector) Append(v bat.Value) bat.Vector {
	return bat.NewDbls(append(d.AppendToDbl(nil), v.AsDbl()))
}

// Slice implements bat.Vector by decoding the window into a plain dbl
// vector.
func (d *DblVector) Slice(i, j int) bat.Vector {
	out := make([]float64, 0, j-i)
	for k := i; k < j; k++ {
		out = append(out, d.AtDbl(k))
	}
	return bat.NewDbls(out)
}

// Empty implements bat.Vector.
func (d *DblVector) Empty() bat.Vector { return bat.NewDbls(nil) }

// Encoding returns the underlying storage format.
func (d *DblVector) Encoding() Encoding { return d.inner.Encoding() }

// StoredBytes returns the accounted physical size of the encoded form.
func (d *DblVector) StoredBytes() int64 { return d.inner.StoredBytes() }

// AppendToDbl appends every value, in order, to dst.
func (d *DblVector) AppendToDbl(dst []float64) []float64 {
	n := d.inner.Len()
	for i := 0; i < n; i++ {
		dst = append(dst, d.AtDbl(i))
	}
	return dst
}

// CountRangeDbl counts the values lying in [lo, hi].
func (d *DblVector) CountRangeDbl(lo, hi float64) int64 {
	if lo > hi {
		return 0
	}
	return d.inner.CountRange(mapDbl(lo), mapDbl(hi))
}

// RangeSpans implements bat.RangeSpanner: the row spans whose values lie
// in [lo, hi], computed on the compressed form.
func (d *DblVector) RangeSpans(lo, hi bat.Value, f func(start, end int)) {
	l, h := lo.AsDbl(), hi.AsDbl()
	if l > h {
		return
	}
	d.inner.Spans(mapDbl(l), mapDbl(h), f)
}

// MinMaxDbl returns the extreme values; ok is false for empty vectors.
func (d *DblVector) MinMaxDbl() (float64, float64, bool) {
	lo, hi, ok := d.inner.MinMax()
	if !ok {
		return 0, 0, false
	}
	return unmapDbl(lo), unmapDbl(hi), true
}
