package compress

// Encoded-form splice and extend: the compression-aware bulk-load
// kernels. When a replica is materialized out of an encoded covering
// segment (or an encoded replica absorbs a merge-back's inserts), the
// round trip decode → append/filter → re-encode can be skipped for
// encodings whose form survives the operation — the run list of RLE,
// the raw slice of Plain. Both functions report false when the encoding
// does not support the shortcut, and callers keep the decoded path as
// the fallback; the results are value- and size-identical to the
// decoded path re-encoded under the same encoding (equivalence-tested
// in splice_test.go).

// SpliceRange returns the values of v falling in [lo, hi] as a fresh
// vector in v's own encoding, built from the encoded form:
//
//   - RLE splices qualifying run headers, merging runs that become
//     adjacent when an out-of-range run between them is dropped, so the
//     result is exactly NewRLE(decoded-then-filtered input);
//   - Plain filters the raw slice (the decoded path, but allocated at
//     its exact form);
//   - Dict and FOR report false — filtering invalidates their dictionary
//     and frame, so splicing would be a re-encode in disguise.
//
// The input is never aliased: mutating v later cannot corrupt the
// result.
func SpliceRange(v Vector, lo, hi int64) (Vector, bool) {
	switch s := v.(type) {
	case *RLEVector:
		out := &RLEVector{elemSize: s.elemSize}
		var n int32
		first := true
		for k, val := range s.vals {
			if val < lo || val > hi {
				continue
			}
			start, end := s.run(k)
			n += int32(end - start)
			if !first && out.vals[len(out.vals)-1] == val {
				// Runs separated only by dropped values merge, exactly as a
				// fresh encode of the filtered sequence would.
				out.ends[len(out.ends)-1] = n
				continue
			}
			out.vals = append(out.vals, val)
			out.ends = append(out.ends, n)
			if first || val < out.min {
				out.min = val
			}
			if first || val > out.max {
				out.max = val
			}
			first = false
		}
		return out, true
	case *PlainVector:
		return NewPlain(s.SelectRange(lo, hi, make([]int64, 0, len(s.vals))), s.elemSize), true
	default:
		return nil, false
	}
}

// ExtendEncoded returns a fresh vector in v's encoding holding v's
// values followed by more — the merge-back/bulk-load append done on the
// encoded form. Supported for RLE (runs are copied and extended; a
// trailing run absorbs equal leading appends, so the result is exactly
// NewRLE(decoded input ++ more)). Plain, Dict and FOR report false:
// Plain's extend is the decoded path itself, and Dict/FOR would need a
// dictionary or frame rebuild.
func ExtendEncoded(v Vector, more []int64) (Vector, bool) {
	s, ok := v.(*RLEVector)
	if !ok {
		return nil, false
	}
	out := &RLEVector{
		vals:     append(make([]int64, 0, len(s.vals)+len(more)), s.vals...),
		ends:     append(make([]int32, 0, len(s.ends)+len(more)), s.ends...),
		min:      s.min,
		max:      s.max,
		elemSize: s.elemSize,
	}
	n := int32(s.Len())
	for _, val := range more {
		n++
		if len(out.vals) > 0 && out.vals[len(out.vals)-1] == val {
			out.ends[len(out.ends)-1] = n
		} else {
			out.vals = append(out.vals, val)
			out.ends = append(out.ends, n)
		}
		if out.Len() == 1 || val < out.min {
			out.min = val
		}
		if out.Len() == 1 || val > out.max {
			out.max = val
		}
	}
	return out, true
}

// Allows reports whether the codec's policy permits storing a segment in
// encoding e — the guard the encoded-splice paths check before keeping a
// parent's encoding: Auto accepts any encoding (a sub-range or extension
// of a well-encoded segment inherits its parent's choice; the advisor
// re-profiles at the segment's next full rewrite), forced modes accept
// exactly their encoding, Off accepts none.
func (c *Codec) Allows(e Encoding) bool {
	if !c.Enabled() {
		return false
	}
	if f, forced := c.Mode().Forced(); forced {
		return e == f
	}
	return true
}
