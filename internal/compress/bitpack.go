package compress

// packed is a fixed-width bit-packed array of n unsigned values, the
// storage substrate of the Dict codes and FOR deltas. Width 0 encodes an
// all-zero array in zero words.
type packed struct {
	width uint // bits per value, 0..64
	n     int
	words []uint64
}

// packAll packs vals at the given width. Values must fit in width bits.
func packAll(vals []uint64, width uint) packed {
	p := packed{width: width, n: len(vals)}
	if width == 0 || len(vals) == 0 {
		return p
	}
	p.words = make([]uint64, (uint(len(vals))*width+63)/64)
	for i, v := range vals {
		off := uint(i) * width
		w, s := off/64, off%64
		p.words[w] |= v << s
		if s+width > 64 {
			p.words[w+1] |= v >> (64 - s)
		}
	}
	return p
}

// get returns the i-th packed value.
func (p packed) get(i int) uint64 {
	if p.width == 0 {
		return 0
	}
	off := uint(i) * p.width
	w, s := off/64, off%64
	v := p.words[w] >> s
	if s+p.width > 64 {
		v |= p.words[w+1] << (64 - s)
	}
	if p.width == 64 {
		return v
	}
	return v & (1<<p.width - 1)
}

// bytes returns the physical size of the packed words.
func (p packed) bytes() int64 { return int64(len(p.words)) * 8 }

// bitsFor returns the number of bits needed to represent v.
func bitsFor(v uint64) uint {
	n := uint(0)
	for v != 0 {
		n++
		v >>= 1
	}
	return n
}
