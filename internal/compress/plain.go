package compress

import "selforg/internal/bat"

// PlainVector is the uncompressed encoding: a raw int64 slice plus the
// accounted element width. It exists so that "compression on, encoding
// plain" costs exactly what the legacy layout costs, which lets the
// Advisor fall back to it whenever no encoding would pay off.
type PlainVector struct {
	vals     []int64
	elemSize int64
}

// NewPlain wraps vals (not copied) at the given accounted element width.
func NewPlain(vals []int64, elemSize int64) *PlainVector {
	if elemSize < 1 {
		elemSize = 8
	}
	return &PlainVector{vals: vals, elemSize: elemSize}
}

// Kind implements bat.Vector.
func (p *PlainVector) Kind() bat.Kind { return bat.KLng }

// Len implements bat.Vector.
func (p *PlainVector) Len() int { return len(p.vals) }

// Get implements bat.Vector.
func (p *PlainVector) Get(i int) bat.Value { return bat.Lng(p.vals[i]) }

// Append implements bat.Vector. The payload is copied: a PlainVector
// usually aliases a segment's storage, which must not grow underfoot.
func (p *PlainVector) Append(v bat.Value) bat.Vector {
	vals := make([]int64, 0, len(p.vals)+1)
	vals = append(append(vals, p.vals...), v.AsLng())
	return &PlainVector{vals: vals, elemSize: p.elemSize}
}

// Slice implements bat.Vector.
func (p *PlainVector) Slice(i, j int) bat.Vector {
	return &PlainVector{vals: p.vals[i:j], elemSize: p.elemSize}
}

// Empty implements bat.Vector.
func (p *PlainVector) Empty() bat.Vector { return &PlainVector{elemSize: p.elemSize} }

// Encoding implements Vector.
func (p *PlainVector) Encoding() Encoding { return Plain }

// StoredBytes implements Vector: exactly the uncompressed accounting.
func (p *PlainVector) StoredBytes() int64 { return int64(len(p.vals)) * p.elemSize }

// At implements Vector.
func (p *PlainVector) At(i int) int64 { return p.vals[i] }

// Raw exposes the underlying slice without copying — the zero-copy
// borrow the rope result path takes for plain-encoded segments. Callers
// must treat the slice as read-only: it is (usually) a published
// segment's storage.
func (p *PlainVector) Raw() []int64 { return p.vals }

// AppendTo implements Vector.
func (p *PlainVector) AppendTo(dst []int64) []int64 { return append(dst, p.vals...) }

// SelectRange implements Vector.
func (p *PlainVector) SelectRange(lo, hi int64, dst []int64) []int64 {
	for _, v := range p.vals {
		if v >= lo && v <= hi {
			dst = append(dst, v)
		}
	}
	return dst
}

// CountRange implements Vector.
func (p *PlainVector) CountRange(lo, hi int64) int64 {
	var n int64
	for _, v := range p.vals {
		if v >= lo && v <= hi {
			n++
		}
	}
	return n
}

// Spans implements Vector.
func (p *PlainVector) Spans(lo, hi int64, f func(start, end int)) {
	spanScan(p, lo, hi, f)
}

// RangeSpans implements bat.RangeSpanner.
func (p *PlainVector) RangeSpans(lo, hi bat.Value, f func(start, end int)) {
	p.Spans(lo.AsLng(), hi.AsLng(), f)
}

// MinMax implements Vector.
func (p *PlainVector) MinMax() (int64, int64, bool) {
	if len(p.vals) == 0 {
		return 0, 0, false
	}
	lo, hi := p.vals[0], p.vals[0]
	for _, v := range p.vals[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi, true
}
