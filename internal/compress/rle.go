package compress

import (
	"sort"

	"selforg/internal/bat"
)

// RLEVector is run-length encoding: maximal runs of equal adjacent values
// stored as a value plus the run's cumulative end offset. Point access
// binary-searches the run ends; range selection touches each run header
// exactly once and never expands a run it can skip, so scans over sorted
// or low-run-count data cost O(runs), not O(rows).
type RLEVector struct {
	vals     []int64 // run values, in sequence order
	ends     []int32 // cumulative exclusive end row of each run
	min, max int64
	elemSize int64
}

// rleRunBytes is the accounted header cost per run on top of the value:
// a 4-byte row count. rleHeaderBytes is the per-vector header (run count,
// synopsis).
const (
	rleRunBytes    = 4
	rleHeaderBytes = 8
)

// NewRLE encodes vals; the input is not retained.
func NewRLE(vals []int64, elemSize int64) *RLEVector {
	if elemSize < 1 {
		elemSize = 8
	}
	r := &RLEVector{elemSize: elemSize}
	for i, v := range vals {
		if i == 0 || v != vals[i-1] {
			r.vals = append(r.vals, v)
			r.ends = append(r.ends, int32(i+1))
		} else {
			r.ends[len(r.ends)-1] = int32(i + 1)
		}
		if i == 0 || v < r.min {
			r.min = v
		}
		if i == 0 || v > r.max {
			r.max = v
		}
	}
	return r
}

// run returns the [start, end) rows of run k.
func (r *RLEVector) run(k int) (int, int) {
	start := 0
	if k > 0 {
		start = int(r.ends[k-1])
	}
	return start, int(r.ends[k])
}

// appendRepeat appends count copies of v to dst at memmove speed
// (doubling copies), the run-expansion kernel of AppendTo/SelectRange.
func appendRepeat(dst []int64, v int64, count int) []int64 {
	if count <= 0 {
		return dst
	}
	need := len(dst) + count
	if cap(dst) < need {
		grown := make([]int64, len(dst), max(need, 2*cap(dst)))
		copy(grown, dst)
		dst = grown
	}
	seg := dst[len(dst):need]
	dst = dst[:need]
	seg[0] = v
	for filled := 1; filled < count; filled *= 2 {
		copy(seg[filled:], seg[:filled])
	}
	return dst
}

// Kind implements bat.Vector.
func (r *RLEVector) Kind() bat.Kind { return bat.KLng }

// Len implements bat.Vector.
func (r *RLEVector) Len() int {
	if len(r.ends) == 0 {
		return 0
	}
	return int(r.ends[len(r.ends)-1])
}

// Get implements bat.Vector.
func (r *RLEVector) Get(i int) bat.Value { return bat.Lng(r.At(i)) }

// Append implements bat.Vector by decaying to Plain (see Vector docs).
func (r *RLEVector) Append(v bat.Value) bat.Vector {
	return NewPlain(append(r.AppendTo(nil), v.AsLng()), r.elemSize)
}

// Slice implements bat.Vector by decoding the window into Plain.
func (r *RLEVector) Slice(i, j int) bat.Vector {
	out := make([]int64, 0, j-i)
	for k := i; k < j; k++ {
		out = append(out, r.At(k))
	}
	return NewPlain(out, r.elemSize)
}

// Empty implements bat.Vector.
func (r *RLEVector) Empty() bat.Vector { return NewPlain(nil, r.elemSize) }

// Encoding implements Vector.
func (r *RLEVector) Encoding() Encoding { return RLE }

// StoredBytes implements Vector: a vector header plus one value and one
// row count per run.
func (r *RLEVector) StoredBytes() int64 {
	if len(r.vals) == 0 {
		return 0
	}
	return rleHeaderBytes + int64(len(r.vals))*(r.elemSize+rleRunBytes)
}

// Runs returns the number of runs (diagnostics, advisor validation).
func (r *RLEVector) Runs() int { return len(r.vals) }

// At implements Vector.
func (r *RLEVector) At(i int) int64 {
	k := sort.Search(len(r.ends), func(k int) bool { return int(r.ends[k]) > i })
	return r.vals[k]
}

// AppendTo implements Vector.
func (r *RLEVector) AppendTo(dst []int64) []int64 {
	for k, v := range r.vals {
		start, end := r.run(k)
		dst = appendRepeat(dst, v, end-start)
	}
	return dst
}

// SelectRange implements Vector: whole runs are emitted or skipped on the
// strength of the run header alone.
func (r *RLEVector) SelectRange(lo, hi int64, dst []int64) []int64 {
	if hi < r.min || lo > r.max {
		return dst
	}
	for k, v := range r.vals {
		if v < lo || v > hi {
			continue
		}
		start, end := r.run(k)
		dst = appendRepeat(dst, v, end-start)
	}
	return dst
}

// CountRange implements Vector without touching any row: qualifying run
// lengths are summed from the headers.
func (r *RLEVector) CountRange(lo, hi int64) int64 {
	if hi < r.min || lo > r.max {
		return 0
	}
	var n int64
	for k, v := range r.vals {
		if v >= lo && v <= hi {
			start, end := r.run(k)
			n += int64(end - start)
		}
	}
	return n
}

// Spans implements Vector: adjacent qualifying runs coalesce into one
// span.
func (r *RLEVector) Spans(lo, hi int64, f func(start, end int)) {
	if hi < r.min || lo > r.max {
		return
	}
	spanStart := -1
	for k, v := range r.vals {
		start, _ := r.run(k)
		if v >= lo && v <= hi {
			if spanStart < 0 {
				spanStart = start
			}
			continue
		}
		if spanStart >= 0 {
			f(spanStart, start)
			spanStart = -1
		}
	}
	if spanStart >= 0 {
		f(spanStart, r.Len())
	}
}

// RangeSpans implements bat.RangeSpanner.
func (r *RLEVector) RangeSpans(lo, hi bat.Value, f func(start, end int)) {
	r.Spans(lo.AsLng(), hi.AsLng(), f)
}

// MinMax implements Vector.
func (r *RLEVector) MinMax() (int64, int64, bool) {
	if len(r.vals) == 0 {
		return 0, 0, false
	}
	return r.min, r.max, true
}
