package compress

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"selforg/internal/bat"
)

// inputs returns the property-test corpus: random, constant, sorted,
// reverse-sorted, low-cardinality, runny, adversarial extremes, and the
// empty and single-value edges.
func inputs() map[string][]int64 {
	rng := rand.New(rand.NewSource(42))
	random := make([]int64, 2000)
	for i := range random {
		random[i] = rng.Int63n(1_000_000)
	}
	sorted := append([]int64(nil), random...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	reverse := make([]int64, len(sorted))
	for i, v := range sorted {
		reverse[len(sorted)-1-i] = v
	}
	lowCard := make([]int64, 2000)
	for i := range lowCard {
		lowCard[i] = int64(rng.Intn(5)) * 17
	}
	runny := make([]int64, 0, 2000)
	for len(runny) < 2000 {
		v := rng.Int63n(100)
		for k := 0; k <= rng.Intn(50) && len(runny) < 2000; k++ {
			runny = append(runny, v)
		}
	}
	constant := make([]int64, 1000)
	for i := range constant {
		constant[i] = -7
	}
	adversarial := []int64{
		math.MaxInt64, math.MinInt64, 0, -1, 1,
		math.MaxInt64, math.MinInt64 + 1, math.MaxInt64 - 1, 0, 0,
	}
	negatives := make([]int64, 500)
	for i := range negatives {
		negatives[i] = -rng.Int63n(10_000) - 1
	}
	return map[string][]int64{
		"random":      random,
		"sorted":      sorted,
		"reverse":     reverse,
		"lowCard":     lowCard,
		"runny":       runny,
		"constant":    constant,
		"adversarial": adversarial,
		"negatives":   negatives,
		"empty":       {},
		"single":      {12345},
	}
}

// TestRoundTrip asserts every encoding reproduces every corpus input
// exactly, in order, through every read path.
func TestRoundTrip(t *testing.T) {
	for name, vals := range inputs() {
		for _, e := range Encodings {
			v := Encode(append([]int64(nil), vals...), e, 4)
			if v.Encoding() != e {
				t.Fatalf("%s/%v: encoding = %v", name, e, v.Encoding())
			}
			if v.Len() != len(vals) {
				t.Fatalf("%s/%v: len = %d, want %d", name, e, v.Len(), len(vals))
			}
			got := v.AppendTo(nil)
			if len(vals) > 0 && !reflect.DeepEqual(got, vals) {
				t.Fatalf("%s/%v: AppendTo mismatch", name, e)
			}
			for i, want := range vals {
				if v.At(i) != want {
					t.Fatalf("%s/%v: At(%d) = %d, want %d", name, e, i, v.At(i), want)
				}
				if v.Get(i).AsLng() != want {
					t.Fatalf("%s/%v: Get(%d) mismatch", name, e, i)
				}
			}
			if v.Kind() != bat.KLng {
				t.Fatalf("%s/%v: kind = %v", name, e, v.Kind())
			}
		}
	}
}

// TestMinMax asserts the synopsis matches the data.
func TestMinMax(t *testing.T) {
	for name, vals := range inputs() {
		for _, e := range Encodings {
			v := Encode(append([]int64(nil), vals...), e, 4)
			lo, hi, ok := v.MinMax()
			if ok != (len(vals) > 0) {
				t.Fatalf("%s/%v: ok = %v", name, e, ok)
			}
			if !ok {
				continue
			}
			wantLo, wantHi := vals[0], vals[0]
			for _, x := range vals {
				if x < wantLo {
					wantLo = x
				}
				if x > wantHi {
					wantHi = x
				}
			}
			if lo != wantLo || hi != wantHi {
				t.Fatalf("%s/%v: MinMax = (%d, %d), want (%d, %d)", name, e, lo, hi, wantLo, wantHi)
			}
		}
	}
}

// queryBounds derives a spread of range predicates for vals: empty-hit,
// all-hit, half, narrow, and point queries.
func queryBounds(vals []int64) [][2]int64 {
	qs := [][2]int64{{10, 5}, {math.MinInt64, math.MaxInt64}, {0, 0}}
	if len(vals) == 0 {
		return qs
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	mid := lo/2 + hi/2
	qs = append(qs, [2]int64{lo, hi}, [2]int64{lo, mid}, [2]int64{mid, hi},
		[2]int64{vals[len(vals)/2], vals[len(vals)/2]}, [2]int64{hi + 1, math.MaxInt64})
	if lo > math.MinInt64 {
		qs = append(qs, [2]int64{math.MinInt64, lo - 1})
	}
	return qs
}

// TestRangeFastPaths asserts SelectRange, CountRange and RangeSpans agree
// with the brute-force reference on every encoding, corpus and query.
func TestRangeFastPaths(t *testing.T) {
	for name, vals := range inputs() {
		for _, q := range queryBounds(vals) {
			lo, hi := q[0], q[1]
			var want []int64
			for _, v := range vals {
				if v >= lo && v <= hi {
					want = append(want, v)
				}
			}
			for _, e := range Encodings {
				v := Encode(append([]int64(nil), vals...), e, 4)
				got := v.SelectRange(lo, hi, nil)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s/%v [%d,%d]: SelectRange = %v, want %v", name, e, lo, hi, got, want)
				}
				if c := v.CountRange(lo, hi); c != int64(len(want)) {
					t.Fatalf("%s/%v [%d,%d]: CountRange = %d, want %d", name, e, lo, hi, c, len(want))
				}
				var spanned []int64
				prevEnd := -1
				v.Spans(lo, hi, func(s, end int) {
					if s >= end || s < prevEnd {
						t.Fatalf("%s/%v [%d,%d]: bad span [%d,%d) after %d", name, e, lo, hi, s, end, prevEnd)
					}
					prevEnd = end
					for i := s; i < end; i++ {
						spanned = append(spanned, v.At(i))
					}
				})
				if !reflect.DeepEqual(spanned, want) {
					t.Fatalf("%s/%v [%d,%d]: RangeSpans mismatch", name, e, lo, hi)
				}
			}
		}
	}
}

// TestBatVectorSemantics asserts the bat.Vector surface: Append decays to
// a working vector, Slice decodes the window, Empty is empty.
func TestBatVectorSemantics(t *testing.T) {
	vals := []int64{5, 5, 5, 9, 2, 2, 7}
	for _, e := range Encodings {
		v := Encode(append([]int64(nil), vals...), e, 4)
		app := v.Append(bat.Lng(11))
		if app.Len() != len(vals)+1 || app.Get(app.Len()-1).AsLng() != 11 {
			t.Fatalf("%v: Append failed", e)
		}
		sl := v.Slice(2, 5)
		if sl.Len() != 3 || sl.Get(0).AsLng() != 5 || sl.Get(1).AsLng() != 9 || sl.Get(2).AsLng() != 2 {
			t.Fatalf("%v: Slice = %v", e, sl)
		}
		if v.Empty().Len() != 0 {
			t.Fatalf("%v: Empty not empty", e)
		}
		// The original is untouched by Append/Slice.
		if !reflect.DeepEqual(v.AppendTo(nil), vals) {
			t.Fatalf("%v: mutated by Append/Slice", e)
		}
	}
}

// TestStoredBytes asserts the accounting: Plain matches the uncompressed
// baseline exactly; RLE/Dict/FOR beat it on their favourable shapes.
func TestStoredBytes(t *testing.T) {
	const elem = 4
	constant := make([]int64, 1000)
	p := Encode(constant, Plain, elem)
	if p.StoredBytes() != 4000 {
		t.Errorf("plain stored = %d, want 4000", p.StoredBytes())
	}
	if r := Encode(constant, RLE, elem); r.StoredBytes() >= p.StoredBytes() {
		t.Errorf("rle on constant = %d, plain %d", r.StoredBytes(), p.StoredBytes())
	}
	lowCard := make([]int64, 1000)
	for i := range lowCard {
		lowCard[i] = int64(i % 4)
	}
	if d := Encode(lowCard, Dict, elem); d.StoredBytes() >= p.StoredBytes() {
		t.Errorf("dict on low-card = %d, plain %d", d.StoredBytes(), p.StoredBytes())
	}
	narrow := make([]int64, 1000)
	for i := range narrow {
		narrow[i] = 1_000_000 + int64(i%256)
	}
	if f := Encode(narrow, FOR, elem); f.StoredBytes() >= p.StoredBytes() {
		t.Errorf("for on narrow = %d, plain %d", f.StoredBytes(), p.StoredBytes())
	}
}

// TestBitpack exercises the packed array across widths including the
// 64-bit and word-straddling cases.
func TestBitpack(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, width := range []uint{0, 1, 3, 7, 8, 13, 31, 33, 63, 64} {
		vals := make([]uint64, 257)
		for i := range vals {
			if width == 64 {
				vals[i] = rng.Uint64()
			} else {
				vals[i] = rng.Uint64() & (1<<width - 1)
			}
		}
		if width == 0 {
			for i := range vals {
				vals[i] = 0
			}
		}
		p := packAll(vals, width)
		for i, want := range vals {
			if got := p.get(i); got != want {
				t.Fatalf("width %d: get(%d) = %d, want %d", width, i, got, want)
			}
		}
	}
}

// TestDblMappingMonotone asserts the float64<->int64 mapping is
// order-preserving and lossless, including infinities.
func TestDblMappingMonotone(t *testing.T) {
	vals := []float64{math.Inf(-1), -1e300, -2.5, -1.0, -1e-300,
		0, 1e-300, 1.0, 2.5, 1e300, math.Inf(1)}
	for i, f := range vals {
		if got := unmapDbl(mapDbl(f)); math.Float64bits(got) != math.Float64bits(f) {
			t.Errorf("roundtrip %g -> %g", f, got)
		}
		if i > 0 && mapDbl(vals[i-1]) >= mapDbl(f) {
			t.Errorf("order broken at %g >= %g", vals[i-1], f)
		}
	}
	// Negative zero collapses onto +0.0 (equal under float comparison),
	// so a 0.0 predicate bound treats both identically.
	if mapDbl(math.Copysign(0, -1)) != mapDbl(0) {
		t.Error("-0.0 and +0.0 map differently")
	}
	if got := unmapDbl(mapDbl(math.Copysign(0, -1))); got != 0 || math.Signbit(got) {
		t.Errorf("-0.0 decodes to %g", got)
	}
	// NaN maps strictly outside [-Inf, +Inf], so ordered predicates
	// exclude it just as float comparison does.
	if nan := mapDbl(math.NaN()); nan <= mapDbl(math.Inf(1)) && nan >= mapDbl(math.Inf(-1)) {
		t.Error("NaN maps inside the ordered interval")
	}
}

// TestDblVector asserts the adapter round-trips and selects correctly on
// a SkyServer-shaped ra column.
func TestDblVector(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = rng.Float64() * 360
	}
	for _, e := range Encodings {
		d := EncodeDbls(vals, e, 4)
		if d.Kind() != bat.KDbl || d.Len() != len(vals) {
			t.Fatalf("%v: kind/len wrong", e)
		}
		for i, want := range vals {
			if d.AtDbl(i) != want {
				t.Fatalf("%v: AtDbl(%d) = %g, want %g", e, i, d.AtDbl(i), want)
			}
		}
		lo, hi := 100.0, 200.0
		var wantCount int64
		for _, f := range vals {
			if f >= lo && f <= hi {
				wantCount++
			}
		}
		if c := d.CountRangeDbl(lo, hi); c != wantCount {
			t.Fatalf("%v: CountRangeDbl = %d, want %d", e, c, wantCount)
		}
		var spanned int64
		d.RangeSpans(bat.Dbl(lo), bat.Dbl(hi), func(s, end int) {
			for i := s; i < end; i++ {
				if f := d.AtDbl(i); f < lo || f > hi {
					t.Fatalf("%v: span value %g outside [%g, %g]", e, f, lo, hi)
				}
				spanned++
			}
		})
		if spanned != wantCount {
			t.Fatalf("%v: spans covered %d rows, want %d", e, spanned, wantCount)
		}
	}
}

// TestAdvisorChoice asserts the advisor picks the winning encoding on
// clear-cut shapes and never regresses past Plain.
func TestAdvisorChoice(t *testing.T) {
	var a Advisor
	const elem = 4

	constant := make([]int64, 10_000)
	if e := a.Choose(constant, elem); e != RLE {
		t.Errorf("constant: chose %v, want rle", e)
	}

	lowCard := make([]int64, 10_000)
	rng := rand.New(rand.NewSource(3))
	for i := range lowCard {
		lowCard[i] = int64(rng.Intn(8)) * 1_000_003 // wide span kills FOR, 8 distinct favours Dict
	}
	if e := a.Choose(lowCard, elem); e != Dict {
		t.Errorf("low-cardinality: chose %v, want dict", e)
	}

	narrow := make([]int64, 10_000)
	for i := range narrow {
		narrow[i] = 5_000_000 + rng.Int63n(200) // distinct≈200, span 200: FOR packs to 8 bits
	}
	if e := a.Choose(narrow, elem); e == Plain || e == RLE {
		t.Errorf("narrow-span: chose %v, want dict or for", e)
	}

	// For every corpus input, the chosen encoding's actual size must not
	// exceed plain's by more than the sampling slack.
	for name, vals := range inputs() {
		e := a.Choose(vals, elem)
		v := Encode(append([]int64(nil), vals...), e, elem)
		plain := int64(len(vals)) * elem
		if v.StoredBytes() > plain+plain/4+16 {
			t.Errorf("%s: chose %v at %d bytes, plain is %d", name, e, v.StoredBytes(), plain)
		}
	}
}

// TestCodec asserts the mode plumbing: Off is nil, forced modes force,
// Auto adapts.
func TestCodec(t *testing.T) {
	if NewCodec(Off, 4) != nil {
		t.Fatal("Off codec not nil")
	}
	vals := make([]int64, 1000) // constant zeros
	if c := NewCodec(ForceFOR, 4); c.Encode(vals).Encoding() != FOR {
		t.Error("ForceFOR did not force")
	}
	if c := NewCodec(ForcePlain, 4); c.Encode(vals).Encoding() != Plain {
		t.Error("ForcePlain did not force")
	}
	if c := NewCodec(Auto, 4); c.Encode(vals).Encoding() != RLE {
		t.Error("Auto on constant input did not pick rle")
	}
	dbl := make([]float64, 500)
	if c := NewCodec(Auto, 4); c.EncodeDbls(dbl).Encoding() != RLE {
		t.Error("Auto on constant dbl input did not pick rle")
	}
}

// TestProfileSampling asserts sampled profiles scale run counts and keep
// exact extremes.
func TestProfileSampling(t *testing.T) {
	a := Advisor{SampleSize: 100}
	vals := make([]int64, 10_000)
	for i := range vals {
		vals[i] = int64(i) // strictly increasing: runs == n
	}
	p := a.Profile(vals)
	if !p.Sampled {
		t.Fatal("profile not sampled")
	}
	if p.Min != 0 || p.Max != 9999 {
		t.Errorf("extremes = (%d, %d)", p.Min, p.Max)
	}
	if p.Runs < 9000 {
		t.Errorf("scaled runs = %d, want ≈10000", p.Runs)
	}
}
