package compress

import (
	"math/rand"
	"testing"
)

// runnyVals draws a run-heavy sequence (RLE territory) with runs of
// 1..8 over a small alphabet, so range filters drop and merge runs.
func runnyVals(rng *rand.Rand, n int) []int64 {
	vals := make([]int64, 0, n)
	for len(vals) < n {
		v := rng.Int63n(16)
		for r := rng.Intn(8) + 1; r > 0 && len(vals) < n; r-- {
			vals = append(vals, v)
		}
	}
	return vals
}

// assertSameVector checks that got is indistinguishable from want:
// same encoding, same values in order, same accounted size, same
// min/max. The splice kernels promise exact equivalence with the
// decode → filter/append → re-encode path, not just value equality.
func assertSameVector(t *testing.T, got, want Vector) {
	t.Helper()
	if got.Encoding() != want.Encoding() {
		t.Fatalf("encoding %v != %v", got.Encoding(), want.Encoding())
	}
	if got.Len() != want.Len() {
		t.Fatalf("len %d != %d", got.Len(), want.Len())
	}
	g, w := got.AppendTo(nil), want.AppendTo(nil)
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("value %d: %d != %d", i, g[i], w[i])
		}
	}
	if got.StoredBytes() != want.StoredBytes() {
		t.Fatalf("stored bytes %d != %d", got.StoredBytes(), want.StoredBytes())
	}
	gmin, gmax, gok := got.MinMax()
	wmin, wmax, wok := want.MinMax()
	if gok != wok || gmin != wmin || gmax != wmax {
		t.Fatalf("minmax (%d,%d,%v) != (%d,%d,%v)", gmin, gmax, gok, wmin, wmax, wok)
	}
}

// TestSpliceRangeRLE: splicing run headers must equal re-encoding the
// filtered decoded sequence — including run merges across dropped
// values — for randomized sequences and bounds.
func TestSpliceRangeRLE(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		vals := runnyVals(rng, rng.Intn(200)+1)
		v := NewRLE(vals, 4)
		lo := rng.Int63n(16) - 2
		hi := lo + rng.Int63n(18)
		got, ok := SpliceRange(v, lo, hi)
		if !ok {
			t.Fatal("RLE splice refused")
		}
		var filtered []int64
		for _, x := range vals {
			if x >= lo && x <= hi {
				filtered = append(filtered, x)
			}
		}
		if len(filtered) == 0 {
			if got.Len() != 0 {
				t.Fatalf("trial %d: want empty, got %d values", trial, got.Len())
			}
			continue
		}
		assertSameVector(t, got, NewRLE(filtered, 4))
	}
}

// TestSpliceRangePlain: the Plain splice is an exact-size filtered copy.
func TestSpliceRangePlain(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vals := make([]int64, 300)
	for i := range vals {
		vals[i] = rng.Int63n(1000)
	}
	got, ok := SpliceRange(NewPlain(vals, 4), 200, 700)
	if !ok {
		t.Fatal("Plain splice refused")
	}
	var filtered []int64
	for _, x := range vals {
		if x >= 200 && x <= 700 {
			filtered = append(filtered, x)
		}
	}
	assertSameVector(t, got, NewPlain(filtered, 4))
}

// TestSpliceRangeUnsupported: Dict and FOR refuse (their forms do not
// survive filtering), so callers fall back to the decoded path.
func TestSpliceRangeUnsupported(t *testing.T) {
	vals := []int64{5, 5, 9, 9, 13}
	if _, ok := SpliceRange(NewDict(vals, 4), 0, 100); ok {
		t.Fatal("Dict splice should refuse")
	}
	if _, ok := SpliceRange(NewFOR(vals, 4), 0, 100); ok {
		t.Fatal("FOR splice should refuse")
	}
}

// TestExtendEncodedRLE: extending the run list must equal re-encoding
// the concatenated decoded sequence, including absorption of equal
// leading appends into the trailing run.
func TestExtendEncodedRLE(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		base := runnyVals(rng, rng.Intn(100)+1)
		more := runnyVals(rng, rng.Intn(50)+1)
		if trial%5 == 0 {
			// Force the absorption case: more starts with base's last value.
			more[0] = base[len(base)-1]
		}
		v := NewRLE(base, 4)
		got, ok := ExtendEncoded(v, more)
		if !ok {
			t.Fatal("RLE extend refused")
		}
		assertSameVector(t, got, NewRLE(append(append([]int64(nil), base...), more...), 4))
		// The input must be untouched (the extend copies, never aliases).
		assertSameVector(t, v, NewRLE(base, 4))
	}
}

// TestExtendEncodedUnsupported: only RLE supports the encoded extend.
func TestExtendEncodedUnsupported(t *testing.T) {
	vals := []int64{1, 2, 3}
	for _, v := range []Vector{NewPlain(vals, 4), NewDict(vals, 4), NewFOR(vals, 4)} {
		if _, ok := ExtendEncoded(v, []int64{4}); ok {
			t.Fatalf("%v extend should refuse", v.Encoding())
		}
	}
}

// TestCodecAllows: Auto inherits any encoding, forced modes exactly
// theirs, Off none.
func TestCodecAllows(t *testing.T) {
	all := []Encoding{Plain, RLE, Dict, FOR}
	auto := NewCodec(Auto, 4)
	for _, e := range all {
		if !auto.Allows(e) {
			t.Errorf("Auto should allow %v", e)
		}
	}
	forced := NewCodec(ForceRLE, 4)
	for _, e := range all {
		if forced.Allows(e) != (e == RLE) {
			t.Errorf("ForceRLE.Allows(%v) = %v", e, forced.Allows(e))
		}
	}
	off := NewCodec(Off, 4)
	for _, e := range all {
		if off.Allows(e) {
			t.Errorf("Off should not allow %v", e)
		}
	}
}
