package compress

import (
	"math/rand"
	"testing"
)

// benchData returns the three canonical shapes at n rows: sorted
// low-cardinality (RLE), shuffled low-cardinality (Dict), narrow-span
// uniform (FOR).
func benchData(n int) map[string][]int64 {
	rng := rand.New(rand.NewSource(1))
	sorted := make([]int64, n)
	for i := range sorted {
		sorted[i] = int64(i / (n / 64))
	}
	lowCard := make([]int64, n)
	for i := range lowCard {
		lowCard[i] = int64(rng.Intn(64)) * 1000
	}
	narrow := make([]int64, n)
	for i := range narrow {
		narrow[i] = 1<<40 + rng.Int63n(4096)
	}
	return map[string][]int64{"sorted": sorted, "lowCard": lowCard, "narrow": narrow}
}

// BenchmarkEncode measures encoding throughput per encoding.
func BenchmarkEncode(b *testing.B) {
	const n = 1 << 16
	data := benchData(n)
	for name, vals := range data {
		for _, e := range Encodings {
			b.Run(name+"/"+e.String(), func(b *testing.B) {
				b.SetBytes(8 * n)
				for i := 0; i < b.N; i++ {
					Encode(vals, e, 4)
				}
			})
		}
	}
}

// BenchmarkSelectRange measures the range-selection fast paths against
// the plain scan on a half-hitting predicate.
func BenchmarkSelectRange(b *testing.B) {
	const n = 1 << 16
	for name, vals := range benchData(n) {
		lo, hi, _ := NewPlain(vals, 4).MinMax()
		mid := lo + (hi-lo)/2
		for _, e := range Encodings {
			v := Encode(vals, e, 4)
			b.Run(name+"/"+e.String(), func(b *testing.B) {
				b.SetBytes(8 * n)
				dst := make([]int64, 0, n)
				for i := 0; i < b.N; i++ {
					dst = v.SelectRange(lo, mid, dst[:0])
				}
			})
		}
	}
}

// BenchmarkCountRange measures the counting fast paths (RLE counts from
// run headers without touching rows).
func BenchmarkCountRange(b *testing.B) {
	const n = 1 << 16
	for name, vals := range benchData(n) {
		lo, hi, _ := NewPlain(vals, 4).MinMax()
		mid := lo + (hi-lo)/2
		for _, e := range Encodings {
			v := Encode(vals, e, 4)
			b.Run(name+"/"+e.String(), func(b *testing.B) {
				b.SetBytes(8 * n)
				for i := 0; i < b.N; i++ {
					v.CountRange(lo, mid)
				}
			})
		}
	}
}
