package opt

import (
	"strings"

	"selforg/internal/mal"
)

// CSEPass eliminates common subexpressions: when two single-assignment
// instructions evaluate the same pure call with identical arguments, the
// later one becomes an alias of the first. MonetDB's tactical optimizer
// ships the same pass ("commonTerms"); it pays off on generated plans,
// where per-column delta-merge chains repeat bind calls (§2's ~80-operator
// plans shrink visibly).
//
// Only pure operators participate (the instrPure predicate shared with
// dead-code elimination), and only while their arguments are stable:
// any variable assigned more than once disqualifies expressions using it.
type CSEPass struct{}

// Name implements Pass.
func (*CSEPass) Name() string { return "commonterms" }

// Apply implements Pass.
func (*CSEPass) Apply(p *mal.Program, _ *Context) (bool, error) {
	assignCount := make(map[string]int)
	for i := range p.Instrs {
		if t := p.Instrs[i].Target; t != "" {
			assignCount[t]++
		}
	}
	// Barrier blocks re-execute: expressions inside them must not be
	// hoisted or folded with the outside. Track block depth and only fold
	// at depth 0 (the common case for generated plans).
	seen := make(map[string]string) // expr signature -> first target
	changed := false
	depth := 0
	for i := range p.Instrs {
		in := &p.Instrs[i]
		switch in.Kind {
		case mal.OpBarrier:
			depth++
			continue
		case mal.OpExit:
			depth--
			continue
		case mal.OpRedo:
			continue
		}
		if depth != 0 || !instrPure(in) || !in.Expr.IsCall() {
			continue
		}
		if assignCount[in.Target] != 1 {
			continue
		}
		stable := true
		for _, v := range in.Expr.Vars() {
			// Count 0 means a function parameter (or an interpreter-bound
			// name): single-binding by construction.
			if assignCount[v] > 1 {
				stable = false
				break
			}
		}
		if !stable {
			continue
		}
		sig := exprSignature(in.Expr)
		if first, ok := seen[sig]; ok {
			in.Expr = &mal.Expr{Atom: &mal.Arg{IsVar: true, Name: first}}
			changed = true
			continue
		}
		seen[sig] = in.Target
	}
	return changed, nil
}

// exprSignature renders a canonical key for a call expression.
func exprSignature(e *mal.Expr) string {
	var b strings.Builder
	b.WriteString(e.Module)
	b.WriteByte('.')
	b.WriteString(e.Func)
	b.WriteByte('(')
	for i, a := range e.Args {
		if i > 0 {
			b.WriteByte(',')
		}
		if a.IsVar {
			b.WriteByte('$')
			b.WriteString(a.Name)
		} else {
			b.WriteString(a.Lit.String())
		}
	}
	b.WriteByte(')')
	return b.String()
}
