// Package opt implements the tactical optimizer layer of §2/§3.1: a
// MAL-to-MAL transformation pipeline. Self-organization lives here — "the
// tactical optimization layer ... where global resource decisions are made
// and MAL programs can be transformed to cope with specific cases" — as
// the segment optimizer pass, which rewrites selections over segmented
// columns into segment-aware instruction sequences and injects the
// reorganizing-module call (§3.3).
package opt

import (
	"fmt"
	"strings"

	"selforg/internal/bpm"
	"selforg/internal/mal"
)

// Context provides the catalog and segment metadata passes may consult.
type Context struct {
	Catalog mal.Catalog
	Store   *bpm.Store
	// UnrollThreshold selects between the two replacement strategies of
	// §3.1: with at most this many relevant segments (and literal
	// predicate bounds) the rewrite unrolls one instruction per segment;
	// otherwise it emits the iterator form. Zero means always iterate.
	UnrollThreshold int
}

// Pass is one MAL-to-MAL transformation.
type Pass interface {
	Name() string
	// Apply rewrites the program in place, reporting whether it changed.
	Apply(p *mal.Program, ctx *Context) (bool, error)
}

// Optimizer runs a pass pipeline to fixpoint (bounded).
type Optimizer struct {
	Passes []Pass
}

// Default returns the standard pipeline: segment rewriting, then
// common-subexpression elimination, alias propagation and dead-code
// elimination.
func Default() *Optimizer {
	return &Optimizer{Passes: []Pass{
		&SegmentPass{},
		&CSEPass{},
		&AliasPass{},
		&DeadCodePass{},
	}}
}

// Optimize applies the pipeline repeatedly until no pass changes the
// program (at most maxRounds rounds).
func (o *Optimizer) Optimize(p *mal.Program, ctx *Context) error {
	const maxRounds = 10
	for round := 0; round < maxRounds; round++ {
		changed := false
		for _, pass := range o.Passes {
			c, err := pass.Apply(p, ctx)
			if err != nil {
				return fmt.Errorf("opt: pass %s: %w", pass.Name(), err)
			}
			changed = changed || c
		}
		if !changed {
			return nil
		}
	}
	return nil
}

// AliasPass propagates single-assignment aliases (`X := Y;`) into later
// argument positions and leaves the (now dead) alias for DeadCodePass.
type AliasPass struct{}

// Name implements Pass.
func (*AliasPass) Name() string { return "alias" }

// Apply implements Pass.
func (*AliasPass) Apply(p *mal.Program, _ *Context) (bool, error) {
	assignCount := make(map[string]int)
	for i := range p.Instrs {
		if t := p.Instrs[i].Target; t != "" {
			assignCount[t]++
		}
	}
	changed := false
	alias := make(map[string]string)
	for i := range p.Instrs {
		in := &p.Instrs[i]
		// Substitute known aliases in arguments first.
		if in.Expr != nil {
			if in.Expr.IsCall() {
				for j := range in.Expr.Args {
					a := &in.Expr.Args[j]
					if a.IsVar {
						if to, ok := alias[a.Name]; ok {
							a.Name = to
							changed = true
						}
					}
				}
			} else if in.Expr.Atom.IsVar {
				if to, ok := alias[in.Expr.Atom.Name]; ok {
					in.Expr.Atom.Name = to
					changed = true
				}
			}
		}
		// Record new aliases: plain assignment of one variable to another,
		// both assigned exactly once (MAL is single-assignment by
		// convention; guard anyway).
		if in.Kind == mal.OpAssign && in.Expr != nil && !in.Expr.IsCall() &&
			in.Expr.Atom.IsVar &&
			assignCount[in.Target] == 1 && assignCount[in.Expr.Atom.Name] == 1 {
			alias[in.Target] = in.Expr.Atom.Name
		}
	}
	return changed, nil
}

// DeadCodePass removes pure assignments whose targets are never read —
// the tactical optimizer's cleanup after rewrites (§2 mentions plans of
// ~80 operations including resource management; dead binds vanish here).
type DeadCodePass struct{}

// Name implements Pass.
func (*DeadCodePass) Name() string { return "deadcode" }

// impure lists operators with side effects that must survive even when
// their results are unused.
var impure = map[string]bool{
	"sql.rsColumn":     true,
	"sql.exportResult": true,
	"sql.resultSet":    false, // pure allocation
	"sql.insertRow":    true,  // DML builtins mutate the catalog's delta bats
	"sql.updateRows":   true,
	"sql.deleteRows":   true,
	"io.print":         true,
	"bpm.addSegment":   true,
	"bpm.adapt":        true,
}

func instrPure(in *mal.Instr) bool {
	if in.Kind != mal.OpAssign {
		return false // calls, barriers, redos and exits always stay
	}
	if in.Expr == nil {
		return false
	}
	if !in.Expr.IsCall() {
		return true // literal or alias
	}
	name := in.Expr.Module + "." + in.Expr.Func
	if bad, listed := impure[name]; listed {
		return !bad
	}
	switch in.Expr.Module {
	case "algebra", "bat", "calc", "aggr", "sql":
		return true
	default:
		return false // unknown modules are conservatively kept
	}
}

// Apply implements Pass.
func (*DeadCodePass) Apply(p *mal.Program, _ *Context) (bool, error) {
	used := make(map[string]bool)
	for i := range p.Instrs {
		for _, v := range p.Instrs[i].Expr.Vars() {
			used[v] = true
		}
		// Guard variables of blocks are control flow: keep them.
		switch p.Instrs[i].Kind {
		case mal.OpBarrier, mal.OpRedo, mal.OpExit:
			used[p.Instrs[i].Target] = true
		}
	}
	out := p.Instrs[:0]
	changed := false
	for i := range p.Instrs {
		in := p.Instrs[i]
		if instrPure(&in) && !used[in.Target] {
			changed = true
			continue
		}
		out = append(out, in)
	}
	p.Instrs = out
	return changed, nil
}

// SegmentPass is the segment optimizer of §3.1: it detects selections over
// columns with a value-based segmented organization and rewrites them into
// segment-aware sequences — the iterator form for many segments, the
// unrolled form for few — and injects the §3.3 reorganizing call
// (bpm.adapt) after the selection.
type SegmentPass struct {
	fresh int
}

// Name implements Pass.
func (*SegmentPass) Name() string { return "segments" }

// Apply implements Pass.
func (s *SegmentPass) Apply(p *mal.Program, ctx *Context) (bool, error) {
	if ctx == nil || ctx.Catalog == nil {
		return false, nil
	}
	// Map variables holding segmented base-column binds to store names.
	segBind := make(map[string]string)
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if in.Kind != mal.OpAssign || in.Expr == nil || !in.Expr.IsCall() {
			continue
		}
		e := in.Expr
		if e.Module == "sql" && e.Func == "bind" && len(e.Args) == 4 &&
			!e.Args[0].IsVar && !e.Args[1].IsVar && !e.Args[2].IsVar && !e.Args[3].IsVar &&
			e.Args[3].Lit.Kind == mal.LInt && e.Args[3].Lit.I == 0 {
			name := ctx.Catalog.SegmentedName(e.Args[0].Lit.S, e.Args[1].Lit.S, e.Args[2].Lit.S)
			if name != "" {
				segBind[in.Target] = name
			}
		}
	}
	if len(segBind) == 0 {
		return false, nil
	}
	var out []mal.Instr
	changed := false
	for i := range p.Instrs {
		in := p.Instrs[i]
		if name, ok := s.selectOverSegmented(&in, segBind); ok {
			seq, err := s.rewriteSelect(&in, name, ctx)
			if err != nil {
				return false, err
			}
			out = append(out, seq...)
			changed = true
			continue
		}
		out = append(out, in)
	}
	p.Instrs = out
	return changed, nil
}

// selectOverSegmented matches `Y := algebra.select/uselect(X, ...)` where
// X binds a segmented column, returning the store name.
func (s *SegmentPass) selectOverSegmented(in *mal.Instr, segBind map[string]string) (string, bool) {
	if in.Kind != mal.OpAssign || in.Expr == nil || !in.Expr.IsCall() {
		return "", false
	}
	e := in.Expr
	if e.Module != "algebra" || (e.Func != "select" && e.Func != "uselect") {
		return "", false
	}
	if len(e.Args) != 3 && len(e.Args) != 5 {
		return "", false
	}
	if !e.Args[0].IsVar {
		return "", false
	}
	name, ok := segBind[e.Args[0].Name]
	return name, ok
}

// rewriteSelect emits the replacement sequence for one selection.
func (s *SegmentPass) rewriteSelect(in *mal.Instr, storeName string, ctx *Context) ([]mal.Instr, error) {
	s.fresh++
	id := s.fresh
	e := in.Expr
	lo, hi := e.Args[1], e.Args[2]
	flags := e.Args[3:]

	colVar := fmt.Sprintf("Yc%d", id)
	resVar := fmt.Sprintf("Yr%d", id)

	seq := []mal.Instr{
		assign(colVar, call("bpm", "take", strArg(storeName))),
		assign(resVar, call("bpm", "new", typeArg("oid"), typeArg("dbl"))),
	}

	// The §3.1 strategy choice: unroll when the predicate bounds are
	// literals and the meta-index shows few relevant segments.
	if idxs, ok := s.unrollable(storeName, lo, hi, ctx); ok {
		for _, segIdx := range idxs {
			segVar := fmt.Sprintf("Ts%d_%d", id, segIdx)
			selVar := fmt.Sprintf("Tu%d_%d", id, segIdx)
			selArgs := append([]mal.Arg{varArg(segVar), lo, hi}, flags...)
			seq = append(seq,
				assign(segVar, call("bpm", "takeSegment", varArg(colVar), intArg(int64(segIdx)))),
				assign(selVar, callArgs("algebra", e.Func, selArgs)),
				bareCall(call("bpm", "addSegment", varArg(resVar), varArg(selVar))),
			)
		}
	} else {
		iterVar := fmt.Sprintf("Si%d", id)
		pieceVar := fmt.Sprintf("Tp%d", id)
		selArgs := append([]mal.Arg{varArg(iterVar), lo, hi}, flags...)
		seq = append(seq,
			instr(mal.OpBarrier, iterVar, call("bpm", "newIterator", varArg(colVar), lo, hi)),
			assign(pieceVar, callArgs("algebra", e.Func, selArgs)),
			bareCall(call("bpm", "addSegment", varArg(resVar), varArg(pieceVar))),
			instr(mal.OpRedo, iterVar, call("bpm", "hasMoreElements", varArg(colVar), lo, hi)),
			mal.Instr{Kind: mal.OpExit, Target: iterVar},
		)
	}

	// §3.3: inject the reorganizing-module call after the selection, then
	// alias the original target to the collected result.
	seq = append(seq,
		bareCall(call("bpm", "adapt", varArg(colVar), lo, hi)),
		mal.Instr{Kind: mal.OpAssign, Target: in.Target, Type: in.Type,
			Expr: &mal.Expr{Atom: &mal.Arg{IsVar: true, Name: resVar}}},
	)
	return seq, nil
}

// unrollable decides the unrolled strategy and returns the overlapping
// segment indices.
func (s *SegmentPass) unrollable(storeName string, lo, hi mal.Arg, ctx *Context) ([]int, bool) {
	if ctx.Store == nil || ctx.UnrollThreshold <= 0 {
		return nil, false
	}
	loF, ok1 := litFloat(lo)
	hiF, ok2 := litFloat(hi)
	if !ok1 || !ok2 {
		return nil, false
	}
	sb, err := ctx.Store.Take(storeName)
	if err != nil {
		return nil, false
	}
	loI, hiI := sb.Overlapping(loF, hiF)
	if hiI-loI > ctx.UnrollThreshold {
		return nil, false
	}
	idxs := make([]int, 0, hiI-loI)
	for i := loI; i < hiI; i++ {
		idxs = append(idxs, i)
	}
	return idxs, true
}

func litFloat(a mal.Arg) (float64, bool) {
	if a.IsVar {
		return 0, false
	}
	switch a.Lit.Kind {
	case mal.LFlt:
		return a.Lit.F, true
	case mal.LInt:
		return float64(a.Lit.I), true
	default:
		return 0, false
	}
}

// --- small AST constructors ---

func call(module, fn string, args ...mal.Arg) *mal.Expr {
	return &mal.Expr{Module: module, Func: fn, Args: args}
}

func callArgs(module, fn string, args []mal.Arg) *mal.Expr {
	return &mal.Expr{Module: module, Func: fn, Args: args}
}

func assign(target string, e *mal.Expr) mal.Instr {
	return mal.Instr{Kind: mal.OpAssign, Target: target, Expr: e}
}

func bareCall(e *mal.Expr) mal.Instr {
	return mal.Instr{Kind: mal.OpCall, Expr: e}
}

func instr(kind mal.OpKind, target string, e *mal.Expr) mal.Instr {
	return mal.Instr{Kind: kind, Target: target, Expr: e}
}

func varArg(name string) mal.Arg { return mal.Arg{IsVar: true, Name: name} }

func strArg(s string) mal.Arg {
	return mal.Arg{Lit: mal.Lit{Kind: mal.LStr, S: s}}
}

func intArg(i int64) mal.Arg {
	return mal.Arg{Lit: mal.Lit{Kind: mal.LInt, I: i}}
}

func typeArg(name string) mal.Arg {
	return mal.Arg{Lit: mal.Lit{Kind: mal.LType, S: name}}
}

// Describe renders a one-line summary of the optimizer pipeline.
func (o *Optimizer) Describe() string {
	names := make([]string, len(o.Passes))
	for i, p := range o.Passes {
		names[i] = p.Name()
	}
	return strings.Join(names, " -> ")
}
