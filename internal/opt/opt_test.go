package opt

import (
	"sort"
	"strings"
	"testing"

	"selforg/internal/bat"
	"selforg/internal/bpm"
	"selforg/internal/mal"
	"selforg/internal/model"
)

// fixture builds a catalog with sys.P(ra, objid) where ra is segmented,
// plus the matching segmented store. The segmented copy holds the same
// data as the base column.
func fixture(segmentRA bool) (*mal.MemCatalog, *bpm.Store) {
	cat := mal.NewMemCatalog()
	ras := []float64{204.0, 205.105, 205.11, 205.2, 205.119, 100.0, 350.0, 10.0}
	objs := []int64{1000, 1001, 1002, 1003, 1004, 1005, 1006, 1007}
	raBase := bat.New(bat.NewDenseOids(0, len(ras)), bat.NewDbls(ras))
	objBase := bat.New(bat.NewDenseOids(0, len(objs)), bat.NewLngs(objs))
	segName := ""
	if segmentRA {
		segName = "sys_P_ra"
	}
	cat.AddTable(&mal.Table{
		Schema: "sys", Name: "P",
		Cols: map[string]*mal.Column{
			"ra":    {Base: raBase, Segmented: segName},
			"objid": {Base: objBase},
		},
	})
	st := bpm.NewStore()
	if segmentRA {
		segCopy := bat.New(bat.NewDenseOids(0, len(ras)), bat.NewDbls(append([]float64(nil), ras...)))
		st.Register(bpm.NewSegmentedBAT("sys_P_ra", segCopy, 0, 360, 4))
	}
	return cat, st
}

const selectPlan = `
function user.q(A0:dbl,A1:dbl):void;
X1:bat[:oid,:dbl] := sql.bind("sys","P","ra",0);
X14 := algebra.uselect(X1,A0,A1,true,true);
X26 := calc.oid(0@0);
X28 := algebra.markT(X14,X26);
X29 := bat.reverse(X28);
X30:bat[:oid,:lng] := sql.bind("sys","P","objid",0);
X37 := algebra.join(X29,X30);
X38 := sql.resultSet(1,1,X37);
sql.rsColumn(X38,"sys.P","objid","bigint",64,0,X37);
sql.exportResult(X38,"");
end q;
`

func runPlan(t *testing.T, prog *mal.Program, cat *mal.MemCatalog, st *bpm.Store, a0, a1 float64) []int64 {
	t.Helper()
	in := mal.NewInterp(cat, st)
	in.AdaptModel = model.Always{}
	ctx, err := in.Run(prog, a0, a1)
	if err != nil {
		t.Fatalf("run: %v\nplan:\n%s", err, prog.String())
	}
	if len(ctx.Results) != 1 {
		t.Fatalf("results = %d", len(ctx.Results))
	}
	col := ctx.Results[0].Column(0)
	out := make([]int64, 0, col.Len())
	for i := 0; i < col.Len(); i++ {
		out = append(out, col.Tail.Get(i).AsLng())
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestSegmentPassRewritesSelect(t *testing.T) {
	cat, st := fixture(true)
	prog := mal.MustParse(selectPlan)
	o := Default()
	if err := o.Optimize(prog, &Context{Catalog: cat, Store: st}); err != nil {
		t.Fatal(err)
	}
	text := prog.String()
	for _, want := range []string{"bpm.take", "bpm.newIterator", "bpm.addSegment", "bpm.hasMoreElements", "bpm.adapt", "barrier", "exit"} {
		if !strings.Contains(text, want) {
			t.Errorf("optimized plan missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "algebra.uselect(X1") {
		t.Errorf("original select survived:\n%s", text)
	}
}

func TestSegmentPassLeavesUnsegmentedAlone(t *testing.T) {
	cat, st := fixture(false)
	prog := mal.MustParse(selectPlan)
	before := prog.String()
	if err := Default().Optimize(prog, &Context{Catalog: cat, Store: st}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(prog.String(), "bpm.") {
		t.Errorf("unsegmented column rewritten:\n%s\nwas:\n%s", prog.String(), before)
	}
}

func TestOptimizedPlanEquivalent(t *testing.T) {
	// The optimized plan must produce exactly the same result as the
	// original — the §3.1 rewrite is semantics-preserving.
	cases := []struct{ a0, a1 float64 }{
		{205.1, 205.12},
		{0, 360},
		{100, 206},
		{355, 360},
		{50, 60}, // empty result
	}
	for _, c := range cases {
		catA, stA := fixture(true)
		orig := mal.MustParse(selectPlan)
		wantRes := runPlan(t, orig, catA, stA, c.a0, c.a1)

		catB, stB := fixture(true)
		optd := mal.MustParse(selectPlan)
		if err := Default().Optimize(optd, &Context{Catalog: catB, Store: stB}); err != nil {
			t.Fatal(err)
		}
		gotRes := runPlan(t, optd, catB, stB, c.a0, c.a1)
		if len(gotRes) != len(wantRes) {
			t.Fatalf("[%g,%g]: got %v, want %v", c.a0, c.a1, gotRes, wantRes)
		}
		for i := range gotRes {
			if gotRes[i] != wantRes[i] {
				t.Fatalf("[%g,%g]: got %v, want %v", c.a0, c.a1, gotRes, wantRes)
			}
		}
	}
}

func TestOptimizedPlanAdaptsColumn(t *testing.T) {
	cat, st := fixture(true)
	prog := mal.MustParse(selectPlan)
	if err := Default().Optimize(prog, &Context{Catalog: cat, Store: st}); err != nil {
		t.Fatal(err)
	}
	runPlan(t, prog, cat, st, 205.1, 205.12)
	sb, _ := st.Take("sys_P_ra")
	if sb.SegmentCount() < 2 {
		t.Errorf("plan execution did not adapt the column: %s", sb.Dump())
	}
	if err := sb.Validate(); err != nil {
		t.Fatal(err)
	}
}

const literalSelectPlan = `
function user.q():void;
X1:bat[:oid,:dbl] := sql.bind("sys","P","ra",0);
X14 := algebra.uselect(X1,205.1,205.12,true,true);
C := aggr.count(X14);
io.print(C);
end q;
`

func TestUnrolledStrategyForLiteralBounds(t *testing.T) {
	cat, st := fixture(true)
	// Pre-split the column so multiple segments exist but few overlap.
	sb, _ := st.Take("sys_P_ra")
	sb.Adapt(200, 210, model.Always{})
	prog := mal.MustParse(literalSelectPlan)
	o := Default()
	if err := o.Optimize(prog, &Context{Catalog: cat, Store: st, UnrollThreshold: 4}); err != nil {
		t.Fatal(err)
	}
	text := prog.String()
	if !strings.Contains(text, "bpm.takeSegment") {
		t.Errorf("literal bounds should unroll:\n%s", text)
	}
	if strings.Contains(text, "newIterator") {
		t.Errorf("unroll strategy still emits iterator:\n%s", text)
	}
	// And it must execute.
	in := mal.NewInterp(cat, st)
	in.AdaptModel = model.Never{}
	var out strings.Builder
	in.Out = &out
	ctx, err := in.Run(prog)
	if err != nil {
		t.Fatalf("%v\n%s", err, text)
	}
	if c, _ := ctx.Get("C"); c.(int64) != 3 {
		t.Errorf("count = %v, want 3", c)
	}
}

func TestIteratorStrategyForVariableBounds(t *testing.T) {
	cat, st := fixture(true)
	prog := mal.MustParse(selectPlan)
	if err := Default().Optimize(prog, &Context{Catalog: cat, Store: st, UnrollThreshold: 100}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prog.String(), "newIterator") {
		t.Errorf("variable bounds must use the iterator:\n%s", prog.String())
	}
}

func TestDeadCodePass(t *testing.T) {
	prog := mal.MustParse(`
X := calc.dbl(1);
Y := calc.dbl(2);
io.print(Y);
`)
	changed, err := (&DeadCodePass{}).Apply(prog, nil)
	if err != nil || !changed {
		t.Fatalf("changed=%v err=%v", changed, err)
	}
	text := prog.String()
	if strings.Contains(text, "X :=") {
		t.Errorf("dead assignment survived:\n%s", text)
	}
	if !strings.Contains(text, "Y :=") {
		t.Errorf("live assignment removed:\n%s", text)
	}
}

func TestDeadCodeKeepsImpure(t *testing.T) {
	prog := mal.MustParse(`io.print("hello");`)
	changed, _ := (&DeadCodePass{}).Apply(prog, nil)
	if changed || len(prog.Instrs) != 1 {
		t.Error("impure call removed")
	}
}

func TestDeadCodeKeepsBarrierGuards(t *testing.T) {
	cat, st := fixture(true)
	prog := mal.MustParse(selectPlan)
	if err := Default().Optimize(prog, &Context{Catalog: cat, Store: st}); err != nil {
		t.Fatal(err)
	}
	// The rewritten plan's guard variables must survive dead-code.
	if !strings.Contains(prog.String(), "barrier") {
		t.Errorf("barrier removed:\n%s", prog.String())
	}
}

func TestAliasPass(t *testing.T) {
	prog := mal.MustParse(`
A := calc.dbl(1);
B := A;
io.print(B);
`)
	changed, err := (&AliasPass{}).Apply(prog, nil)
	if err != nil || !changed {
		t.Fatalf("changed=%v err=%v", changed, err)
	}
	// io.print must now reference A directly.
	last := prog.Instrs[len(prog.Instrs)-1]
	if last.Expr.Args[0].Name != "A" {
		t.Errorf("alias not propagated: %s", prog.String())
	}
}

func TestOptimizerDescribe(t *testing.T) {
	if got := Default().Describe(); got != "segments -> commonterms -> alias -> deadcode" {
		t.Errorf("describe = %q", got)
	}
}

func TestOptimizeIsIdempotent(t *testing.T) {
	cat, st := fixture(true)
	prog := mal.MustParse(selectPlan)
	ctx := &Context{Catalog: cat, Store: st}
	if err := Default().Optimize(prog, ctx); err != nil {
		t.Fatal(err)
	}
	once := prog.String()
	if err := Default().Optimize(prog, ctx); err != nil {
		t.Fatal(err)
	}
	if prog.String() != once {
		t.Errorf("second optimization changed the plan:\n%s\nvs\n%s", once, prog.String())
	}
}
