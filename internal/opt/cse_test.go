package opt

import (
	"strings"
	"testing"

	"selforg/internal/mal"
	"selforg/internal/model"
)

func TestCSEFoldsDuplicateBinds(t *testing.T) {
	prog := mal.MustParse(`
A := sql.bind("sys","P","ra",0);
B := sql.bind("sys","P","ra",0);
X := algebra.kunion(A, B);
io.print(X);
`)
	changed, err := (&CSEPass{}).Apply(prog, nil)
	if err != nil || !changed {
		t.Fatalf("changed=%v err=%v", changed, err)
	}
	// B must now alias A.
	if prog.Instrs[1].Expr.IsCall() {
		t.Errorf("duplicate bind not folded:\n%s", prog.String())
	}
	if prog.Instrs[1].Expr.Atom.Name != "A" {
		t.Errorf("alias target = %q", prog.Instrs[1].Expr.Atom.Name)
	}
}

func TestCSEDistinguishesArguments(t *testing.T) {
	prog := mal.MustParse(`
A := sql.bind("sys","P","ra",0);
B := sql.bind("sys","P","ra",1);
X := algebra.kunion(A, B);
io.print(X);
`)
	changed, _ := (&CSEPass{}).Apply(prog, nil)
	if changed {
		t.Errorf("different slots folded:\n%s", prog.String())
	}
}

func TestCSEKeepsImpureCalls(t *testing.T) {
	prog := mal.MustParse(`
io.print("a");
io.print("a");
`)
	changed, _ := (&CSEPass{}).Apply(prog, nil)
	if changed || len(prog.Instrs) != 2 {
		t.Error("impure calls folded")
	}
}

func TestCSESkipsBarrierBodies(t *testing.T) {
	// Expressions inside a barrier body re-execute per iteration and must
	// not fold with each other or the outside.
	prog := mal.MustParse(`
A := calc.dbl(1);
barrier s := bpm.newIterator(Y, 1.0, 2.0);
B := calc.dbl(1);
redo s := bpm.hasMoreElements(Y, 1.0, 2.0);
exit s;
io.print(A);
io.print(B);
`)
	changed, _ := (&CSEPass{}).Apply(prog, nil)
	if changed {
		t.Errorf("barrier-body expression folded:\n%s", prog.String())
	}
}

func TestCSEEndToEndOnGeneratedShape(t *testing.T) {
	// A plan with a duplicated delta chain (same column bound twice, as a
	// naive generator would emit) must fold to a single chain and still
	// produce the right result.
	src := `
function user.q(A0:dbl,A1:dbl):void;
B1 := sql.bind("sys","P","ra",0);
B2 := sql.bind("sys","P","ra",0);
S1 := algebra.uselect(B1,A0,A1,true,true);
S2 := algebra.uselect(B2,A0,A1,true,true);
U := algebra.kunion(S1,S2);
C := aggr.count(U);
io.print(C);
end q;
`
	cat, st := fixture(false)
	prog := mal.MustParse(src)
	if err := Default().Optimize(prog, &Context{Catalog: cat, Store: st}); err != nil {
		t.Fatal(err)
	}
	text := prog.String()
	if strings.Count(text, "sql.bind") != 1 {
		t.Errorf("duplicate bind survived:\n%s", text)
	}
	if strings.Count(text, "uselect") != 1 {
		t.Errorf("duplicate select survived:\n%s", text)
	}
	in := mal.NewInterp(cat, st)
	in.AdaptModel = model.Never{}
	ctx, err := in.Run(prog, 205.1, 205.12)
	if err != nil {
		t.Fatalf("%v\n%s", err, text)
	}
	if c, _ := ctx.Get("C"); c.(int64) != 3 {
		t.Errorf("count = %v, want 3", c)
	}
}

func TestDefaultPipelineIncludesCSE(t *testing.T) {
	if got := Default().Describe(); got != "segments -> commonterms -> alias -> deadcode" {
		t.Errorf("describe = %q", got)
	}
}
