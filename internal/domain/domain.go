// Package domain provides the value-domain primitives shared by all
// self-organization modules: inclusive value ranges, overlap geometry and
// byte-size helpers.
//
// The paper (Ivanova et al., EDBT 2008) describes segments and queries as
// inclusive integer ranges [lo, hi] over an attribute domain; all split
// arithmetic in §4 and §5 (e.g. R1 = [SL, QL-1], R2 = [QL, SH]) assumes an
// integer domain. Float columns (SkyServer's ra) are mapped onto this
// integer domain by fixed-point scaling in internal/sky.
package domain

import "fmt"

// Value is a point in the attribute domain. The paper assumes an integer
// domain for split arithmetic; 64 bits cover every column type we scale
// into it.
type Value = int64

// Range is an inclusive value interval [Lo, Hi]. A Range with Lo > Hi is
// empty. Ranges describe both selection predicates (QL..QH) and segment
// bounds (SL..SH).
type Range struct {
	Lo, Hi Value
}

// NewRange returns the inclusive range [lo, hi]. It panics if lo > hi;
// construct empty ranges with Empty instead so that emptiness is explicit.
func NewRange(lo, hi Value) Range {
	if lo > hi {
		panic(fmt.Sprintf("domain: inverted range [%d, %d]", lo, hi))
	}
	return Range{Lo: lo, Hi: hi}
}

// Empty returns a canonical empty range.
func Empty() Range { return Range{Lo: 1, Hi: 0} }

// IsEmpty reports whether r contains no values.
func (r Range) IsEmpty() bool { return r.Lo > r.Hi }

// Width returns the number of domain values in r (0 for empty ranges).
func (r Range) Width() int64 {
	if r.IsEmpty() {
		return 0
	}
	return r.Hi - r.Lo + 1
}

// Contains reports whether v lies inside r.
func (r Range) Contains(v Value) bool { return v >= r.Lo && v <= r.Hi }

// ContainsRange reports whether r fully contains s. Every range contains
// the empty range.
func (r Range) ContainsRange(s Range) bool {
	if s.IsEmpty() {
		return true
	}
	return !r.IsEmpty() && r.Lo <= s.Lo && s.Hi <= r.Hi
}

// Overlaps reports whether r and s share at least one value.
func (r Range) Overlaps(s Range) bool {
	if r.IsEmpty() || s.IsEmpty() {
		return false
	}
	return r.Lo <= s.Hi && s.Lo <= r.Hi
}

// Intersect returns the overlap of r and s (empty if they are disjoint).
func (r Range) Intersect(s Range) Range {
	if !r.Overlaps(s) {
		return Empty()
	}
	return Range{Lo: max64(r.Lo, s.Lo), Hi: min64(r.Hi, s.Hi)}
}

// Equal reports whether r and s denote the same set of values. All empty
// ranges are equal.
func (r Range) Equal(s Range) bool {
	if r.IsEmpty() || s.IsEmpty() {
		return r.IsEmpty() && s.IsEmpty()
	}
	return r.Lo == s.Lo && r.Hi == s.Hi
}

// Adjacent reports whether s starts exactly one past the end of r.
func (r Range) Adjacent(s Range) bool {
	if r.IsEmpty() || s.IsEmpty() {
		return false
	}
	return r.Hi+1 == s.Lo
}

func (r Range) String() string {
	if r.IsEmpty() {
		return "[empty]"
	}
	return fmt.Sprintf("[%d, %d]", r.Lo, r.Hi)
}

// Split describes how a query range q cuts a segment range s into up to
// three pieces: a left complement, the overlap, and a right complement.
// Empty pieces signal that the corresponding side does not exist (the query
// bound lies at or beyond the segment bound).
type Split struct {
	Left    Range // s values strictly below the overlap
	Overlap Range // s ∩ q
	Right   Range // s values strictly above the overlap
}

// Cut computes the three-way split of segment range s by query range q.
// It panics if the two ranges do not overlap: callers must pre-filter with
// Overlaps, mirroring the meta-index lookup in the paper.
func Cut(s, q Range) Split {
	ov := s.Intersect(q)
	if ov.IsEmpty() {
		panic(fmt.Sprintf("domain: Cut of disjoint ranges %v and %v", s, q))
	}
	sp := Split{Left: Empty(), Overlap: ov, Right: Empty()}
	if s.Lo < ov.Lo {
		sp.Left = Range{Lo: s.Lo, Hi: ov.Lo - 1}
	}
	if ov.Hi < s.Hi {
		sp.Right = Range{Lo: ov.Hi + 1, Hi: s.Hi}
	}
	return sp
}

// Pieces returns the non-empty pieces of the split in domain order.
func (sp Split) Pieces() []Range {
	out := make([]Range, 0, 3)
	if !sp.Left.IsEmpty() {
		out = append(out, sp.Left)
	}
	out = append(out, sp.Overlap)
	if !sp.Right.IsEmpty() {
		out = append(out, sp.Right)
	}
	return out
}

// Kind classifies the overlap geometry used by Algorithm 4 of the paper.
type OverlapKind int

const (
	// CoversAll: the query covers the segment entirely (case 0 geometry).
	CoversAll OverlapKind = iota
	// CoversLower: the query covers the lower part of the segment (case 1).
	CoversLower
	// CoversUpper: the query covers the upper part of the segment (case 2).
	CoversUpper
	// Inside: the query lies strictly inside the segment (case 3).
	Inside
)

func (k OverlapKind) String() string {
	switch k {
	case CoversAll:
		return "covers-all"
	case CoversLower:
		return "covers-lower"
	case CoversUpper:
		return "covers-upper"
	case Inside:
		return "inside"
	default:
		return fmt.Sprintf("OverlapKind(%d)", int(k))
	}
}

// Classify returns the overlap geometry of query q against segment s.
// It panics if the ranges do not overlap.
func Classify(s, q Range) OverlapKind {
	sp := Cut(s, q)
	switch {
	case sp.Left.IsEmpty() && sp.Right.IsEmpty():
		return CoversAll
	case sp.Left.IsEmpty():
		return CoversLower
	case sp.Right.IsEmpty():
		return CoversUpper
	default:
		return Inside
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
