package domain

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewRange(t *testing.T) {
	r := NewRange(3, 9)
	if r.Lo != 3 || r.Hi != 9 {
		t.Fatalf("NewRange(3,9) = %v", r)
	}
}

func TestNewRangePanicsOnInverted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRange(9,3) did not panic")
		}
	}()
	NewRange(9, 3)
}

func TestEmptyRange(t *testing.T) {
	e := Empty()
	if !e.IsEmpty() {
		t.Fatal("Empty() is not empty")
	}
	if e.Width() != 0 {
		t.Fatalf("empty width = %d, want 0", e.Width())
	}
	if e.Contains(0) {
		t.Fatal("empty range contains 0")
	}
}

func TestWidth(t *testing.T) {
	cases := []struct {
		r    Range
		want int64
	}{
		{NewRange(0, 0), 1},
		{NewRange(0, 9), 10},
		{NewRange(-5, 5), 11},
		{Empty(), 0},
	}
	for _, c := range cases {
		if got := c.r.Width(); got != c.want {
			t.Errorf("Width(%v) = %d, want %d", c.r, got, c.want)
		}
	}
}

func TestContains(t *testing.T) {
	r := NewRange(10, 20)
	for _, v := range []Value{10, 15, 20} {
		if !r.Contains(v) {
			t.Errorf("%v should contain %d", r, v)
		}
	}
	for _, v := range []Value{9, 21, -1} {
		if r.Contains(v) {
			t.Errorf("%v should not contain %d", r, v)
		}
	}
}

func TestContainsRange(t *testing.T) {
	r := NewRange(10, 20)
	if !r.ContainsRange(NewRange(10, 20)) {
		t.Error("range should contain itself")
	}
	if !r.ContainsRange(NewRange(12, 18)) {
		t.Error("range should contain inner range")
	}
	if !r.ContainsRange(Empty()) {
		t.Error("range should contain empty range")
	}
	if r.ContainsRange(NewRange(5, 15)) {
		t.Error("range should not contain straddling range")
	}
	if Empty().ContainsRange(NewRange(1, 2)) {
		t.Error("empty range contains nothing non-empty")
	}
}

func TestOverlapsAndIntersect(t *testing.T) {
	cases := []struct {
		a, b Range
		want Range
	}{
		{NewRange(0, 10), NewRange(5, 15), NewRange(5, 10)},
		{NewRange(0, 10), NewRange(10, 20), NewRange(10, 10)},
		{NewRange(0, 10), NewRange(11, 20), Empty()},
		{NewRange(5, 6), NewRange(0, 100), NewRange(5, 6)},
		{Empty(), NewRange(0, 1), Empty()},
	}
	for _, c := range cases {
		got := c.a.Intersect(c.b)
		if !got.Equal(c.want) {
			t.Errorf("Intersect(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if c.a.Overlaps(c.b) != !c.want.IsEmpty() {
			t.Errorf("Overlaps(%v, %v) inconsistent with intersect", c.a, c.b)
		}
	}
}

func TestAdjacent(t *testing.T) {
	if !NewRange(0, 4).Adjacent(NewRange(5, 9)) {
		t.Error("[0,4] should be adjacent to [5,9]")
	}
	if NewRange(0, 4).Adjacent(NewRange(6, 9)) {
		t.Error("[0,4] should not be adjacent to [6,9] (gap)")
	}
	if NewRange(0, 4).Adjacent(NewRange(4, 9)) {
		t.Error("[0,4] should not be adjacent to [4,9] (overlap)")
	}
	if Empty().Adjacent(NewRange(1, 2)) {
		t.Error("empty is adjacent to nothing")
	}
}

func TestCutInside(t *testing.T) {
	sp := Cut(NewRange(0, 99), NewRange(40, 59))
	if !sp.Left.Equal(NewRange(0, 39)) {
		t.Errorf("left = %v", sp.Left)
	}
	if !sp.Overlap.Equal(NewRange(40, 59)) {
		t.Errorf("overlap = %v", sp.Overlap)
	}
	if !sp.Right.Equal(NewRange(60, 99)) {
		t.Errorf("right = %v", sp.Right)
	}
	if n := len(sp.Pieces()); n != 3 {
		t.Errorf("pieces = %d, want 3", n)
	}
}

func TestCutCoversLower(t *testing.T) {
	// Query extends below the segment: only overlap + right remain.
	sp := Cut(NewRange(50, 99), NewRange(0, 70))
	if !sp.Left.IsEmpty() {
		t.Errorf("left = %v, want empty", sp.Left)
	}
	if !sp.Overlap.Equal(NewRange(50, 70)) {
		t.Errorf("overlap = %v", sp.Overlap)
	}
	if !sp.Right.Equal(NewRange(71, 99)) {
		t.Errorf("right = %v", sp.Right)
	}
}

func TestCutCoversUpper(t *testing.T) {
	sp := Cut(NewRange(0, 49), NewRange(30, 200))
	if !sp.Left.Equal(NewRange(0, 29)) {
		t.Errorf("left = %v", sp.Left)
	}
	if !sp.Right.IsEmpty() {
		t.Errorf("right = %v, want empty", sp.Right)
	}
}

func TestCutCoversAll(t *testing.T) {
	sp := Cut(NewRange(10, 20), NewRange(0, 100))
	if !sp.Left.IsEmpty() || !sp.Right.IsEmpty() {
		t.Errorf("split = %+v, want only overlap", sp)
	}
	if n := len(sp.Pieces()); n != 1 {
		t.Errorf("pieces = %d, want 1", n)
	}
}

func TestCutPanicsOnDisjoint(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Cut of disjoint ranges did not panic")
		}
	}()
	Cut(NewRange(0, 10), NewRange(20, 30))
}

func TestClassify(t *testing.T) {
	s := NewRange(100, 199)
	cases := []struct {
		q    Range
		want OverlapKind
	}{
		{NewRange(100, 199), CoversAll},
		{NewRange(50, 300), CoversAll},
		{NewRange(50, 150), CoversLower},
		{NewRange(100, 150), CoversLower},
		{NewRange(150, 250), CoversUpper},
		{NewRange(150, 199), CoversUpper},
		{NewRange(120, 180), Inside},
	}
	for _, c := range cases {
		if got := Classify(s, c.q); got != c.want {
			t.Errorf("Classify(%v, %v) = %v, want %v", s, c.q, got, c.want)
		}
	}
}

func TestOverlapKindString(t *testing.T) {
	names := map[OverlapKind]string{
		CoversAll:      "covers-all",
		CoversLower:    "covers-lower",
		CoversUpper:    "covers-upper",
		Inside:         "inside",
		OverlapKind(9): "OverlapKind(9)",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestRangeString(t *testing.T) {
	if s := NewRange(1, 2).String(); s != "[1, 2]" {
		t.Errorf("String() = %q", s)
	}
	if s := Empty().String(); s != "[empty]" {
		t.Errorf("empty String() = %q", s)
	}
}

func TestByteSizeString(t *testing.T) {
	cases := []struct {
		b    ByteSize
		want string
	}{
		{512 * B, "512B"},
		{3 * KB, "3.00KB"},
		{1536 * KB, "1.50MB"},
		{2 * GB, "2.00GB"},
	}
	for _, c := range cases {
		if got := c.b.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.b), got, c.want)
		}
	}
}

func TestByteSizeConversions(t *testing.T) {
	if got := (4 * KB).KBf(); got != 4.0 {
		t.Errorf("KBf = %v, want 4", got)
	}
	if got := (5 * MB).MBf(); got != 5.0 {
		t.Errorf("MBf = %v, want 5", got)
	}
}

// randomRange produces a non-empty range inside [0, 1<<20).
func randomRange(r *rand.Rand) Range {
	a := r.Int63n(1 << 20)
	b := r.Int63n(1 << 20)
	if a > b {
		a, b = b, a
	}
	return Range{Lo: a, Hi: b}
}

func TestCutPropertyPartition(t *testing.T) {
	// Property: the pieces of a cut partition the segment range exactly —
	// widths sum to the segment width, pieces are adjacent in order, and
	// the overlap equals the set intersection.
	r := rand.New(rand.NewSource(42))
	f := func() bool {
		s := randomRange(r)
		q := randomRange(r)
		if !s.Overlaps(q) {
			return true
		}
		sp := Cut(s, q)
		pieces := sp.Pieces()
		var total int64
		for _, p := range pieces {
			total += p.Width()
		}
		if total != s.Width() {
			return false
		}
		for i := 1; i < len(pieces); i++ {
			if !pieces[i-1].Adjacent(pieces[i]) {
				return false
			}
		}
		if pieces[0].Lo != s.Lo || pieces[len(pieces)-1].Hi != s.Hi {
			return false
		}
		return sp.Overlap.Equal(s.Intersect(q))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestIntersectPropertyCommutative(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	f := func() bool {
		a, b := randomRange(r), randomRange(r)
		return a.Intersect(b).Equal(b.Intersect(a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestIntersectPropertyContained(t *testing.T) {
	// Property: the intersection is contained in both operands.
	r := rand.New(rand.NewSource(11))
	f := func() bool {
		a, b := randomRange(r), randomRange(r)
		iv := a.Intersect(b)
		return a.ContainsRange(iv) && b.ContainsRange(iv)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
