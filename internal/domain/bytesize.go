package domain

import "fmt"

// ByteSize expresses storage volumes. It mirrors the KB/MB figures of the
// paper's evaluation (§6) and formats itself in the same units.
type ByteSize int64

const (
	B  ByteSize = 1
	KB          = 1024 * B
	MB          = 1024 * KB
	GB          = 1024 * MB
)

// String renders the size in the largest unit that keeps two significant
// decimals, matching the axis labels of Figures 8 and 9.
func (b ByteSize) String() string {
	switch {
	case b >= GB:
		return fmt.Sprintf("%.2fGB", float64(b)/float64(GB))
	case b >= MB:
		return fmt.Sprintf("%.2fMB", float64(b)/float64(MB))
	case b >= KB:
		return fmt.Sprintf("%.2fKB", float64(b)/float64(KB))
	default:
		return fmt.Sprintf("%dB", int64(b))
	}
}

// KBf returns the size in (floating point) kilobytes, the unit of Table 1.
func (b ByteSize) KBf() float64 { return float64(b) / float64(KB) }

// MBf returns the size in (floating point) megabytes, the unit of Table 2.
func (b ByteSize) MBf() float64 { return float64(b) / float64(MB) }
