package bpm

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"selforg/internal/bat"
	"selforg/internal/compress"
	"selforg/internal/domain"
	"selforg/internal/model"
)

// This file provides the segmented-BAT registry behind the bpm.* MAL
// module of §3.1: a column "split into value-ranged segments" addressed
// through the segment meta-index, with a predicate-enhanced iterator
// (bpm.newIterator / bpm.hasMoreElements) and the reorganizing hook the
// segment optimizer injects after selections (§3.3).

var segIDCounter atomic.Int64

// BATSegment is one value-ranged piece of a segmented column: tail values
// lie in the half-open interval [Lo, Hi).
type BATSegment struct {
	ID     int64
	Lo, Hi float64
	B      *bat.BAT
}

// bytes returns the accounted logical size of the segment — the measure
// the segmentation models reason about.
func (s *BATSegment) bytes(elemSize int64) int64 { return int64(s.B.Len()) * elemSize }

// storedBytes returns the accounted physical size: the compressed tail
// footprint when the tail is encoded, the logical size otherwise.
func (s *BATSegment) storedBytes(elemSize int64) int64 {
	if cv, ok := s.B.Tail.(interface{ StoredBytes() int64 }); ok {
		return cv.StoredBytes()
	}
	return s.bytes(elemSize)
}

// SegmentedBAT is a column organized as adjacent value-ranged segments,
// registered under a name in the Store ("bpm.take(\"sys_P_ra\")").
//
// It is safe for concurrent use: the segment list is guarded by a
// read-write lock — lookups, iteration and statistics take the read side,
// while the reorganizing module (Adapt) and SetCompression take the write
// side. Individual segment BATs are immutable once published; Adapt
// replaces split segments with fresh ones instead of rewriting payloads.
type SegmentedBAT struct {
	Name     string
	ElemSize int64

	mu    sync.RWMutex
	segs  []*BATSegment // ascending by [Lo, Hi)
	codec *compress.Codec
}

// SetCompression attaches the compression subsystem to the column: the
// current segment tails are re-encoded immediately and every tail the
// reorganizing module materializes afterwards (splitSegment pieces) goes
// through the codec's advisor — encoding decisions piggy-back on
// adaptation exactly as in internal/core. The compressed tails implement
// bat.Vector, so the MAL operators and the predicate-enhanced iterator
// keep working transparently; bat.RangeSelect additionally picks up their
// compressed-form span fast path.
func (s *SegmentedBAT) SetCompression(mode compress.Mode) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.codec = compress.NewCodec(mode, s.ElemSize)
	if s.codec.Enabled() {
		for _, sg := range s.segs {
			s.encodeTail(sg)
		}
	}
}

// Compression returns the active compression mode.
func (s *SegmentedBAT) Compression() compress.Mode {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.codec.Mode()
}

// encodeTail re-encodes one segment's tail under the codec (no-op when
// compression is off or the tail is already encoded). Caller holds mu.
func (s *SegmentedBAT) encodeTail(sg *BATSegment) {
	if !s.codec.Enabled() {
		return
	}
	if dt, ok := sg.B.Tail.(*bat.DblVector); ok {
		sg.B.Tail = s.codec.EncodeDbls(dt.Dbls())
	}
}

// NewSegmentedBAT wraps a single [oid,dbl] BAT into a one-segment column
// covering [lo, hi).
func NewSegmentedBAT(name string, b *bat.BAT, lo, hi float64, elemSize int64) *SegmentedBAT {
	if b.TailKind() != bat.KDbl {
		panic("bpm: segmented bats require a dbl tail")
	}
	if hi <= lo {
		panic(fmt.Sprintf("bpm: invalid segment bounds [%g, %g)", lo, hi))
	}
	return &SegmentedBAT{
		Name:     name,
		ElemSize: elemSize,
		segs:     []*BATSegment{{ID: segIDCounter.Add(1), Lo: lo, Hi: hi, B: b}},
	}
}

// SegmentCount returns the number of segments.
func (s *SegmentedBAT) SegmentCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.segs)
}

// Segment returns the i-th segment in value order.
func (s *SegmentedBAT) Segment(i int) *BATSegment {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.segs[i]
}

// Segments returns a snapshot copy of the segment list in value order.
// The segments themselves are shared (and immutable once published).
func (s *SegmentedBAT) Segments() []*BATSegment {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]*BATSegment(nil), s.segs...)
}

// Overlapping returns the indices [loIdx, hiIdx) of segments whose value
// range intersects [lo, hi] — the meta-index pre-selection.
func (s *SegmentedBAT) Overlapping(lo, hi float64) (int, int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.overlapping(lo, hi)
}

// overlapping is the lock-free core of Overlapping; caller holds mu.
func (s *SegmentedBAT) overlapping(lo, hi float64) (int, int) {
	loIdx := sort.Search(len(s.segs), func(i int) bool { return s.segs[i].Hi > lo })
	hiIdx := sort.Search(len(s.segs), func(i int) bool { return s.segs[i].Lo > hi })
	if loIdx > hiIdx {
		loIdx = hiIdx
	}
	return loIdx, hiIdx
}

// TotalRows returns the stored association count.
func (s *SegmentedBAT) TotalRows() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, sg := range s.segs {
		n += sg.B.Len()
	}
	return n
}

// TotalBytes returns the accounted logical storage.
func (s *SegmentedBAT) TotalBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.totalBytes()
}

// totalBytes is the lock-free core of TotalBytes; caller holds mu.
func (s *SegmentedBAT) totalBytes() int64 {
	var n int64
	for _, sg := range s.segs {
		n += sg.bytes(s.ElemSize)
	}
	return n
}

// TotalStoredBytes returns the accounted physical storage (equal to
// TotalBytes without compression).
func (s *SegmentedBAT) TotalStoredBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n int64
	for _, sg := range s.segs {
		n += sg.storedBytes(s.ElemSize)
	}
	return n
}

// Flatten concatenates all segments into one BAT (diagnostics/tests).
func (s *SegmentedBAT) Flatten() *bat.BAT {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := bat.Empty(bat.KOid, bat.KDbl)
	for _, sg := range s.segs {
		for i := 0; i < sg.B.Len(); i++ {
			h, t := sg.B.Row(i)
			out.AppendRow(h, t)
		}
	}
	return out
}

// Validate checks the structural invariants: adjacency, ordering, and
// value containment.
func (s *SegmentedBAT) Validate() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.segs) == 0 {
		return fmt.Errorf("bpm: segmented bat %q has no segments", s.Name)
	}
	for i, sg := range s.segs {
		if sg.Hi <= sg.Lo {
			return fmt.Errorf("bpm: segment %d has empty range [%g, %g)", i, sg.Lo, sg.Hi)
		}
		if i > 0 && s.segs[i-1].Hi != sg.Lo {
			return fmt.Errorf("bpm: gap between segment %d (hi %g) and %d (lo %g)",
				i-1, s.segs[i-1].Hi, i, sg.Lo)
		}
		for r := 0; r < sg.B.Len(); r++ {
			v := sg.B.Tail.Get(r).AsDbl()
			if v < sg.Lo || v >= sg.Hi {
				return fmt.Errorf("bpm: segment %d value %g outside [%g, %g)", i, v, sg.Lo, sg.Hi)
			}
		}
	}
	return nil
}

// Dump renders the layout, e.g. "[0,10)#3 | [10,20)#5".
func (s *SegmentedBAT) Dump() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	parts := make([]string, len(s.segs))
	for i, sg := range s.segs {
		parts[i] = fmt.Sprintf("[%g,%g)#%d", sg.Lo, sg.Hi, sg.B.Len())
	}
	return strings.Join(parts, " | ")
}

// splitSegment replaces segment i by pieces cut at the given interior
// bounds (ascending, strictly inside the segment range). Data rows are
// partitioned by value. Returns the bytes rewritten. Caller holds mu.
func (s *SegmentedBAT) splitSegment(i int, cuts ...float64) int64 {
	sg := s.segs[i]
	for j, c := range cuts {
		if c <= sg.Lo || c >= sg.Hi {
			panic(fmt.Sprintf("bpm: cut %g outside (%g, %g)", c, sg.Lo, sg.Hi))
		}
		if j > 0 && cuts[j-1] >= c {
			panic("bpm: cuts must ascend")
		}
	}
	bounds := append([]float64{sg.Lo}, cuts...)
	bounds = append(bounds, sg.Hi)
	pieces := make([]*BATSegment, len(bounds)-1)
	for p := range pieces {
		pieces[p] = &BATSegment{
			ID: segIDCounter.Add(1),
			Lo: bounds[p], Hi: bounds[p+1],
			B: bat.Empty(bat.KOid, bat.KDbl),
		}
	}
	for r := 0; r < sg.B.Len(); r++ {
		h, t := sg.B.Row(r)
		v := t.AsDbl()
		// Binary search the destination piece.
		p := sort.Search(len(pieces), func(x int) bool { return v < pieces[x].Hi })
		pieces[p].B.AppendRow(h, t)
	}
	// Materialization is where encoding decisions piggy-back: each fresh
	// piece is handed to the codec's advisor.
	for _, p := range pieces {
		s.encodeTail(p)
	}
	out := make([]*BATSegment, 0, len(s.segs)+len(pieces)-1)
	out = append(out, s.segs[:i]...)
	out = append(out, pieces...)
	out = append(out, s.segs[i+1:]...)
	s.segs = out
	return sg.storedBytes(s.ElemSize)
}

// Adapt runs the §3.3 reorganizing module over the segments overlapping
// the selection [lo, hi]: each overlapping segment is offered to the
// segmentation model (scaled onto the integer domain the models speak)
// and split accordingly. It returns the bytes rewritten, so callers can
// account adaptation cost. Adapt is the column's single-writer path: it
// takes the write lock, so it never races with concurrent lookups or
// iterators.
func (s *SegmentedBAT) Adapt(lo, hi float64, m model.Model) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	const scale = 1 << 20 // fixed-point scaling for the model's domain view
	var rewritten int64
	total := s.totalBytes()
	loI, hiI := s.overlapping(lo, hi)
	q := domain.Range{Lo: int64(lo * scale), Hi: int64(hi * scale)}
	for i := hiI - 1; i >= loI; i-- {
		sg := s.segs[i]
		info := model.SegmentInfo{
			Rng:        domain.Range{Lo: int64(sg.Lo * scale), Hi: int64(sg.Hi*scale) - 1},
			Bytes:      sg.bytes(s.ElemSize),
			TotalBytes: total,
		}
		if !info.Rng.Overlaps(q) || info.Rng.Width() < 2 {
			continue
		}
		d := m.Decide(q, info)
		switch d.Action {
		case model.NoSplit:
		case model.SplitBounds:
			var cuts []float64
			if lo > sg.Lo && lo < sg.Hi {
				cuts = append(cuts, lo)
			}
			if hi > sg.Lo && hi < sg.Hi && hi > lo {
				cuts = append(cuts, hi)
			}
			if len(cuts) > 0 {
				rewritten += s.splitSegment(i, cuts...)
			}
		case model.SplitPoint:
			cut := float64(d.Point) / scale
			if cut > sg.Lo && cut < sg.Hi {
				rewritten += s.splitSegment(i, cut)
			}
		}
	}
	return rewritten
}

// Store is the named registry of segmented columns behind bpm.take. It is
// safe for concurrent use.
type Store struct {
	mu   sync.RWMutex
	cols map[string]*SegmentedBAT
}

// NewStore creates an empty registry.
func NewStore() *Store { return &Store{cols: make(map[string]*SegmentedBAT)} }

// Register adds a segmented column under its name.
func (st *Store) Register(sb *SegmentedBAT) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, dup := st.cols[sb.Name]; dup {
		panic(fmt.Sprintf("bpm: column %q registered twice", sb.Name))
	}
	st.cols[sb.Name] = sb
}

// Take looks a segmented column up by name — MAL's bpm.take.
func (st *Store) Take(name string) (*SegmentedBAT, error) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	sb, ok := st.cols[name]
	if !ok {
		return nil, fmt.Errorf("bpm: unknown segmented column %q", name)
	}
	return sb, nil
}

// Names lists the registered columns.
func (st *Store) Names() []string {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([]string, 0, len(st.cols))
	for n := range st.cols {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
