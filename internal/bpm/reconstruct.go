package bpm

import (
	"sort"

	"selforg/internal/bat"
)

// Tuple reconstruction over a value-organized column (§1): "Since the
// positional correspondence of values in multiple columns is not kept,
// operators that rely on it, e.g., tuple reconstruction, may become
// somewhat slower." A positional column answers oid→value by direct
// indexing; a value-organized column has to search its segments. These
// two functions make the trade-off measurable (see the ablation bench
// BenchmarkAblationTupleReconstruction).

// LookupOids returns the tail values for the requested head oids by
// scanning the segments once, in storage order. Missing oids are skipped;
// results are returned as a [oid, dbl] BAT in segment-scan order.
func (s *SegmentedBAT) LookupOids(oids []uint64) *bat.BAT {
	want := make(map[uint64]struct{}, len(oids))
	for _, o := range oids {
		want[o] = struct{}{}
	}
	out := bat.Empty(bat.KOid, bat.KDbl)
	remaining := len(want)
	for _, sg := range s.Segments() {
		if remaining == 0 {
			break
		}
		for i := 0; i < sg.B.Len(); i++ {
			h := sg.B.Head.Get(i)
			if _, ok := want[h.AsOid()]; ok {
				out.AppendRow(h, sg.B.Tail.Get(i))
				delete(want, h.AsOid())
				remaining--
			}
		}
	}
	return out
}

// LookupOidsPositional answers the same request against a positional
// (dense-head) column: one direct index access per oid. This is the §1
// baseline the value-based organization gives up.
func LookupOidsPositional(b *bat.BAT, oids []uint64) *bat.BAT {
	out := bat.Empty(bat.KOid, bat.KDbl)
	n := uint64(b.Len())
	for _, o := range oids {
		if o < n {
			out.AppendRow(bat.Oid(o), b.Tail.Get(int(o)))
		}
	}
	return out
}

// SortedByOid returns the lookup result ordered by oid, for comparisons.
func SortedByOid(b *bat.BAT) *bat.BAT {
	idx := make([]int, b.Len())
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(x, y int) bool {
		return b.Head.Get(idx[x]).AsOid() < b.Head.Get(idx[y]).AsOid()
	})
	out := bat.Empty(b.HeadKind(), b.TailKind())
	for _, i := range idx {
		h, t := b.Row(i)
		out.AppendRow(h, t)
	}
	return out
}
