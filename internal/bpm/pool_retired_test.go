package bpm

import "testing"

// TouchOrRetired must behave exactly like Touch for known pages and
// account a streaming read — instead of panicking — for pages a
// concurrent reorganization already freed (the RCU snapshot-reader
// race).
func TestTouchOrRetired(t *testing.T) {
	cfg := Config{
		BudgetBytes:        1000,
		MemBandwidth:       1e6,
		DiskReadBandwidth:  1e6,
		DiskWriteBandwidth: 1e6,
	}
	p := New(cfg)
	p.Register(1, 100)

	dKnown, faulted := p.TouchOrRetired(1, 100)
	if faulted {
		t.Fatal("resident page reported as faulted")
	}
	if dKnown <= 0 {
		t.Fatal("known touch cost no time")
	}
	before := p.Stats()

	p.Free(1)
	d, faulted := p.TouchOrRetired(1, 100)
	if !faulted {
		t.Fatal("retired page scan must count as a fault")
	}
	if d <= dKnown {
		t.Fatalf("retired scan (%v) must pay disk+mem, known resident scan was %v", d, dKnown)
	}
	after := p.Stats()
	if after.PhysicalReads != before.PhysicalReads+100 || after.Misses != before.Misses+1 {
		t.Fatalf("retired scan not accounted: before %+v after %+v", before, after)
	}
	if p.PageCount() != 0 {
		t.Fatal("retired scan must not resurrect the page")
	}

	// Never-registered ids are tolerated the same way.
	if _, faulted := p.TouchOrRetired(999, 50); !faulted {
		t.Fatal("unknown page scan must count as a fault")
	}
}
