package bpm

import (
	"math/rand"
	"testing"

	"selforg/internal/bat"
	"selforg/internal/compress"
	"selforg/internal/model"
)

// buildRA returns a [oid,dbl] BAT with n clustered ra-like values — low
// run count and narrow span, so the advisor has something to win on.
func buildRA(n int) *bat.BAT {
	rng := rand.New(rand.NewSource(21))
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = 180 + float64(rng.Intn(64))/8
	}
	return bat.NewDense(bat.NewDbls(vals))
}

// TestSegmentedBATCompression asserts a compressed segmented column stays
// equivalent to its plain twin through adaptation: same rows, valid
// invariants, smaller physical footprint.
func TestSegmentedBATCompression(t *testing.T) {
	const n = 4000
	plain := NewSegmentedBAT("plain", buildRA(n), 180, 188, 4)
	comp := NewSegmentedBAT("comp", buildRA(n), 180, 188, 4)
	comp.SetCompression(compress.Auto)

	if comp.Compression() != compress.Auto {
		t.Fatalf("mode = %v", comp.Compression())
	}
	m := model.NewAPM(512, 4096)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 40; i++ {
		lo := 180 + rng.Float64()*7
		hi := lo + rng.Float64()
		plain.Adapt(lo, hi, m)
		comp.Adapt(lo, hi, model.NewAPM(512, 4096))
		if err := comp.Validate(); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	if comp.TotalRows() != n {
		t.Fatalf("rows = %d, want %d", comp.TotalRows(), n)
	}
	if comp.TotalStoredBytes() >= comp.TotalBytes() {
		t.Errorf("no compression win: stored %d >= logical %d",
			comp.TotalStoredBytes(), comp.TotalBytes())
	}
	// Flattened contents are identical (same data seed on both columns).
	pf, cf := plain.Flatten(), comp.Flatten()
	if pf.Len() != cf.Len() {
		t.Fatalf("flatten lengths: %d vs %d", pf.Len(), cf.Len())
	}
	// Row order may differ across different split sequences; compare as
	// multisets keyed by head oid.
	byOid := make(map[uint64]float64, pf.Len())
	for i := 0; i < pf.Len(); i++ {
		h, v := pf.Row(i)
		byOid[h.AsOid()] = v.AsDbl()
	}
	for i := 0; i < cf.Len(); i++ {
		h, v := cf.Row(i)
		if want, ok := byOid[h.AsOid()]; !ok || want != v.AsDbl() {
			t.Fatalf("row oid %d: %g vs %g", h.AsOid(), v.AsDbl(), want)
		}
	}
}

// TestAggregatesOverCompressedTail asserts the MAL aggregates work
// transparently over compressed tails (Sum's generic Get path).
func TestAggregatesOverCompressedTail(t *testing.T) {
	b := buildRA(1000)
	dt := b.Tail.(*bat.DblVector)
	want := bat.Sum(b).AsDbl()
	for _, e := range compress.Encodings {
		cb := bat.New(b.Head, compress.EncodeDbls(dt.Dbls(), e, 4))
		if got := bat.Sum(cb).AsDbl(); got != want {
			t.Errorf("%v: sum = %g, want %g", e, got, want)
		}
		if got := bat.Min(cb).AsDbl(); got != bat.Min(b).AsDbl() {
			t.Errorf("%v: min mismatch", e)
		}
		if got := bat.Max(cb).AsDbl(); got != bat.Max(b).AsDbl() {
			t.Errorf("%v: max mismatch", e)
		}
	}
}

// TestSegmentedBATRangeSelect asserts bat.RangeSelect over a compressed
// tail returns exactly the plain result (exercising the RangeSpanner fast
// path end to end).
func TestSegmentedBATRangeSelect(t *testing.T) {
	b := buildRA(2000)
	dt := b.Tail.(*bat.DblVector)
	for _, e := range compress.Encodings {
		cb := bat.New(b.Head, compress.EncodeDbls(dt.Dbls(), e, 4))
		want := bat.RangeSelect(b, bat.Dbl(182), bat.Dbl(184.5), true, true)
		got := bat.RangeSelect(cb, bat.Dbl(182), bat.Dbl(184.5), true, true)
		if want.Len() != got.Len() {
			t.Fatalf("%v: %d vs %d rows", e, got.Len(), want.Len())
		}
		wantOids := make(map[uint64]float64, want.Len())
		for i := 0; i < want.Len(); i++ {
			h, v := want.Row(i)
			wantOids[h.AsOid()] = v.AsDbl()
		}
		for i := 0; i < got.Len(); i++ {
			h, v := got.Row(i)
			if w, ok := wantOids[h.AsOid()]; !ok || w != v.AsDbl() {
				t.Fatalf("%v: row %d mismatch", e, i)
			}
		}
	}
}
