package bpm

import (
	"math/rand"
	"testing"

	"selforg/internal/bat"
	"selforg/internal/model"
)

func testSegBAT(vals ...float64) *SegmentedBAT {
	b := bat.NewDense(bat.NewDbls(vals))
	return NewSegmentedBAT("t_col", b, 0, 100, 4)
}

func TestNewSegmentedBAT(t *testing.T) {
	sb := testSegBAT(1, 50, 99)
	if sb.SegmentCount() != 1 || sb.TotalRows() != 3 || sb.TotalBytes() != 12 {
		t.Fatalf("init wrong: %s", sb.Dump())
	}
	if err := sb.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNewSegmentedBATRequiresDbl(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("lng tail accepted")
		}
	}()
	NewSegmentedBAT("x", bat.NewDense(bat.NewLngs([]int64{1})), 0, 10, 4)
}

func TestSplitSegmentPartitionsByValue(t *testing.T) {
	sb := testSegBAT(5, 25, 45, 65, 85)
	rewritten := sb.splitSegment(0, 30, 60)
	if rewritten != 20 {
		t.Errorf("rewritten = %d, want 20", rewritten)
	}
	if sb.SegmentCount() != 3 {
		t.Fatalf("segments = %d: %s", sb.SegmentCount(), sb.Dump())
	}
	if err := sb.Validate(); err != nil {
		t.Fatal(err)
	}
	if sb.Segment(0).B.Len() != 2 || sb.Segment(1).B.Len() != 1 || sb.Segment(2).B.Len() != 2 {
		t.Errorf("partition sizes wrong: %s", sb.Dump())
	}
	if sb.TotalRows() != 5 {
		t.Errorf("rows lost: %d", sb.TotalRows())
	}
}

func TestSplitSegmentPanicsOnBadCut(t *testing.T) {
	sb := testSegBAT(1)
	defer func() {
		if recover() == nil {
			t.Fatal("cut at bound accepted")
		}
	}()
	sb.splitSegment(0, 0)
}

func TestOverlapping(t *testing.T) {
	sb := testSegBAT(5, 25, 45, 65, 85)
	sb.splitSegment(0, 30, 60)
	lo, hi := sb.Overlapping(35, 55)
	if lo != 1 || hi != 2 {
		t.Errorf("overlap [35,55] = [%d,%d), want [1,2)", lo, hi)
	}
	lo, hi = sb.Overlapping(0, 100)
	if lo != 0 || hi != 3 {
		t.Errorf("overlap all = [%d,%d)", lo, hi)
	}
	lo, hi = sb.Overlapping(30, 30)
	if lo != 1 || hi != 2 {
		t.Errorf("boundary overlap = [%d,%d), want [1,2)", lo, hi)
	}
}

func TestFlattenPreservesRows(t *testing.T) {
	sb := testSegBAT(5, 25, 45, 65, 85)
	sb.splitSegment(0, 50)
	f := sb.Flatten()
	if f.Len() != 5 {
		t.Fatalf("flatten len = %d", f.Len())
	}
	sum := bat.Sum(f).AsDbl()
	if sum != 5+25+45+65+85 {
		t.Errorf("flatten sum = %v", sum)
	}
}

func TestAdaptWithAlwaysSplitsAtBounds(t *testing.T) {
	sb := testSegBAT(5, 25, 45, 65, 85)
	rw := sb.Adapt(30, 60, model.Always{})
	if rw == 0 {
		t.Fatal("no rewrite happened")
	}
	if sb.SegmentCount() != 3 {
		t.Fatalf("segments = %d: %s", sb.SegmentCount(), sb.Dump())
	}
	if err := sb.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptWithNeverDoesNothing(t *testing.T) {
	sb := testSegBAT(5, 25, 45)
	if rw := sb.Adapt(10, 20, model.Never{}); rw != 0 {
		t.Errorf("Never rewrote %d bytes", rw)
	}
	if sb.SegmentCount() != 1 {
		t.Error("Never split")
	}
}

func TestAdaptRandomKeepsInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	vals := make([]float64, 2000)
	for i := range vals {
		vals[i] = rng.Float64() * 100
	}
	sb := NewSegmentedBAT("r", bat.NewDense(bat.NewDbls(vals)), 0, 100, 4)
	m := model.NewAPM(64, 256)
	for i := 0; i < 100; i++ {
		lo := rng.Float64() * 95
		sb.Adapt(lo, lo+5, m)
		if err := sb.Validate(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if sb.TotalRows() != 2000 {
		t.Errorf("rows lost: %d", sb.TotalRows())
	}
	if sb.SegmentCount() < 2 {
		t.Error("no adaptation happened")
	}
}

func TestStore(t *testing.T) {
	st := NewStore()
	sb := testSegBAT(1)
	st.Register(sb)
	got, err := st.Take("t_col")
	if err != nil || got != sb {
		t.Fatalf("take = %v, %v", got, err)
	}
	if _, err := st.Take("missing"); err == nil {
		t.Error("missing column accepted")
	}
	if names := st.Names(); len(names) != 1 || names[0] != "t_col" {
		t.Errorf("names = %v", names)
	}
}

func TestStoreDuplicatePanics(t *testing.T) {
	st := NewStore()
	st.Register(testSegBAT(1))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate register accepted")
		}
	}()
	st.Register(testSegBAT(2))
}
