// Package bpm implements the buffer pool manager substrate: a
// memory-budgeted pool of segment pages with LRU eviction to a simulated
// secondary store, plus the virtual disk clock used by the prototype
// experiments (§6.2).
//
// MonetDB relies on the OS virtual memory for I/O, "which hinders
// performance as soon as bat sizes reach the memory limits" (§2); the
// paper's simulator models "management in a constrained memory buffer
// setting and its read/write behavior as data is flushed to secondary
// store" (§6.1). Pool reproduces that: every segment is a page; touching a
// non-resident page costs a simulated disk read, registering new pages may
// evict cold ones, and all traffic is accounted on a deterministic virtual
// clock (see DESIGN.md's substitution notes — the paper's disk-bound
// 100 GB box is replaced by cost ratios, not wall-clock guesses).
package bpm

import (
	"container/list"
	"fmt"
	"sync"
	"time"
)

// Config sets the pool geometry and the virtual clock bandwidths.
type Config struct {
	// BudgetBytes is the memory available for resident pages. Zero means
	// unconstrained (everything stays resident).
	BudgetBytes int64
	// MemBandwidth is the in-memory scan rate in bytes/second.
	MemBandwidth float64
	// DiskReadBandwidth is the rate for faulting non-resident pages.
	DiskReadBandwidth float64
	// DiskWriteBandwidth is the rate for materializing (and evicting
	// dirty) pages.
	DiskWriteBandwidth float64
}

// DefaultConfig mirrors the §6.2 regime scaled to the synthetic SkyServer
// dataset: a buffer smaller than the hot column and 2008-era disk-to-memory
// cost ratios.
func DefaultConfig() Config {
	return Config{
		BudgetBytes:        128 << 20, // 128 MB
		MemBandwidth:       2e9,       // 2 GB/s scan
		DiskReadBandwidth:  300e6,     // 300 MB/s sequential read
		DiskWriteBandwidth: 250e6,     // 250 MB/s write-back
	}
}

// Stats are the pool's cumulative counters.
type Stats struct {
	LogicalReads  int64 // bytes scanned (resident or not)
	PhysicalReads int64 // bytes faulted from the simulated disk
	Writes        int64 // bytes materialized
	Evictions     int64 // pages evicted
	EvictedBytes  int64
	Hits          int64 // page touches served from memory
	Misses        int64 // page touches that faulted
}

type page struct {
	id       int64
	bytes    int64
	resident bool
	elem     *list.Element // position in the LRU list when resident
}

// Pool is a memory-budgeted page pool with LRU replacement and a virtual
// clock. It is safe for concurrent use.
type Pool struct {
	mu       sync.Mutex
	cfg      Config
	pages    map[int64]*page
	lru      *list.List // front = most recently used
	resident int64      // resident bytes
	stats    Stats
	clock    time.Duration // virtual elapsed time
}

// New creates a pool. Bandwidths must be positive wherever the
// corresponding traffic can occur; zero bandwidths cost zero time.
func New(cfg Config) *Pool {
	return &Pool{cfg: cfg, pages: make(map[int64]*page), lru: list.New()}
}

// cost converts a byte volume to virtual time at the given bandwidth.
func cost(bytes int64, bw float64) time.Duration {
	if bw <= 0 || bytes <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) / bw * float64(time.Second))
}

// Register adds a freshly materialized page of the given size, evicting
// cold pages if the budget requires, and charges the write cost. It
// returns the virtual time consumed.
func (p *Pool) Register(id, bytes int64) time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.pages[id]; ok {
		panic(fmt.Sprintf("bpm: page %d registered twice", id))
	}
	pg := &page{id: id, bytes: bytes}
	p.pages[id] = pg
	d := cost(bytes, p.cfg.DiskWriteBandwidth)
	p.stats.Writes += bytes
	p.makeResident(pg)
	p.clock += d
	return d
}

// Touch records a full scan of the page. Non-resident pages fault in at
// disk bandwidth (evicting cold pages as needed); all scans additionally
// pay memory bandwidth. It returns the virtual time consumed and whether
// the touch faulted.
//
// Touch panics on a page id it has never seen. A concurrency-aware
// caller that may legitimately scan retired pages (an RCU snapshot
// reader racing a reorganization that already dropped the segment)
// should call TouchOrRetired instead, which falls back to streaming-read
// accounting for unknown ids.
func (p *Pool) Touch(id int64) (time.Duration, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	pg, ok := p.pages[id]
	if !ok {
		panic(fmt.Sprintf("bpm: touch of unknown page %d", id))
	}
	faulted := !pg.resident
	return p.touchLocked(pg), faulted
}

// touchLocked performs the Touch accounting; caller holds p.mu. The
// returned duration includes the fault cost when the page was not
// resident (pg.resident is true afterwards).
func (p *Pool) touchLocked(pg *page) time.Duration {
	var d time.Duration
	p.stats.LogicalReads += pg.bytes
	if !pg.resident {
		p.stats.Misses++
		p.stats.PhysicalReads += pg.bytes
		d += cost(pg.bytes, p.cfg.DiskReadBandwidth)
		p.makeResident(pg)
	} else {
		p.stats.Hits++
		p.lru.MoveToFront(pg.elem)
	}
	d += cost(pg.bytes, p.cfg.MemBandwidth)
	p.clock += d
	return d
}

// TouchOrRetired records a full scan of the page like Touch, but
// tolerates pages the pool no longer knows: a snapshot reader may scan a
// segment that a concurrent reorganization has already dropped (the
// segment data stays reachable through the reader's snapshot, only the
// buffer registration is gone). Such retired scans are accounted as
// streaming reads — logical + physical bytes at disk-read cost, a miss,
// no residency change — using the caller-supplied byte size.
func (p *Pool) TouchOrRetired(id, bytes int64) (time.Duration, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if pg, ok := p.pages[id]; ok {
		faulted := !pg.resident
		return p.touchLocked(pg), faulted
	}
	p.stats.LogicalReads += bytes
	p.stats.Misses++
	p.stats.PhysicalReads += bytes
	d := cost(bytes, p.cfg.DiskReadBandwidth) + cost(bytes, p.cfg.MemBandwidth)
	p.clock += d
	return d, true
}

// Free drops a page entirely (its segment was reorganized away).
func (p *Pool) Free(id int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	pg, ok := p.pages[id]
	if !ok {
		panic(fmt.Sprintf("bpm: free of unknown page %d", id))
	}
	if pg.resident {
		p.lru.Remove(pg.elem)
		p.resident -= pg.bytes
	}
	delete(p.pages, id)
}

// makeResident brings pg into memory, evicting LRU pages until the budget
// holds. Pages larger than the whole budget stay resident transiently:
// they evict everything else and are immediately marked non-resident,
// modelling a streaming scan that cannot be cached.
func (p *Pool) makeResident(pg *page) {
	if pg.resident {
		p.lru.MoveToFront(pg.elem)
		return
	}
	if p.cfg.BudgetBytes > 0 && pg.bytes > p.cfg.BudgetBytes {
		// Streaming page: never cached.
		return
	}
	for p.cfg.BudgetBytes > 0 && p.resident+pg.bytes > p.cfg.BudgetBytes {
		tail := p.lru.Back()
		if tail == nil {
			break
		}
		victim := tail.Value.(*page)
		p.lru.Remove(tail)
		victim.resident = false
		victim.elem = nil
		p.resident -= victim.bytes
		p.stats.Evictions++
		p.stats.EvictedBytes += victim.bytes
	}
	pg.resident = true
	pg.elem = p.lru.PushFront(pg)
	p.resident += pg.bytes
}

// Stats returns a snapshot of the counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Clock returns the total virtual time consumed so far.
func (p *Pool) Clock() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.clock
}

// ResidentBytes returns the bytes currently held in memory.
func (p *Pool) ResidentBytes() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.resident
}

// PageCount returns the number of known pages (resident or not).
func (p *Pool) PageCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.pages)
}

// Resident reports whether the page is currently in memory.
func (p *Pool) Resident(id int64) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	pg, ok := p.pages[id]
	return ok && pg.resident
}
