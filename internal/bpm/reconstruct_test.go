package bpm

import (
	"math/rand"
	"testing"

	"selforg/internal/bat"
	"selforg/internal/model"
)

func TestLookupOidsMatchesPositional(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 5000
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = rng.Float64() * 100
	}
	positional := bat.NewDense(bat.NewDbls(vals))
	sb := NewSegmentedBAT("c", bat.NewDense(bat.NewDbls(append([]float64(nil), vals...))), 0, 100, 4)
	// Fragment the value-organized copy.
	for i := 0; i < 50; i++ {
		lo := rng.Float64() * 95
		sb.Adapt(lo, lo+2, model.NewAPM(256, 1024))
	}
	if sb.SegmentCount() < 2 {
		t.Fatal("setup: column not fragmented")
	}

	// Unique oids: positional lookup returns one row per request,
	// value-based lookup one per distinct oid.
	perm := rng.Perm(n)
	oids := make([]uint64, 200)
	for i := range oids {
		oids[i] = uint64(perm[i])
	}
	got := SortedByOid(sb.LookupOids(oids))
	want := SortedByOid(LookupOidsPositional(positional, oids))
	if got.Len() != want.Len() {
		t.Fatalf("lengths differ: %d vs %d", got.Len(), want.Len())
	}
	for i := 0; i < got.Len(); i++ {
		gh, gt := got.Row(i)
		wh, wt := want.Row(i)
		if gh != wh || gt != wt {
			t.Fatalf("row %d: (%v,%v) vs (%v,%v)", i, gh, gt, wh, wt)
		}
	}
}

func TestLookupOidsSkipsMissing(t *testing.T) {
	sb := testSegBAT(1, 2, 3)
	out := sb.LookupOids([]uint64{0, 99})
	if out.Len() != 1 {
		t.Errorf("len = %d, want 1 (oid 99 missing)", out.Len())
	}
}

func TestLookupOidsDeduplicates(t *testing.T) {
	sb := testSegBAT(1, 2, 3)
	out := sb.LookupOids([]uint64{1, 1, 1})
	if out.Len() != 1 {
		t.Errorf("len = %d, want 1", out.Len())
	}
}

func TestLookupOidsPositionalBounds(t *testing.T) {
	b := bat.NewDense(bat.NewDbls([]float64{1, 2}))
	out := LookupOidsPositional(b, []uint64{0, 5})
	if out.Len() != 1 {
		t.Errorf("len = %d, want 1", out.Len())
	}
}
