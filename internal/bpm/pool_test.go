package bpm

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

func testCfg() Config {
	return Config{
		BudgetBytes:        1000,
		MemBandwidth:       1e6,
		DiskReadBandwidth:  1e5,
		DiskWriteBandwidth: 1e5,
	}
}

func TestRegisterAndTouchResident(t *testing.T) {
	p := New(testCfg())
	p.Register(1, 400)
	d, faulted := p.Touch(1)
	if faulted {
		t.Error("freshly registered page must be resident")
	}
	if d != 400*time.Microsecond { // 400 bytes at 1e6 B/s
		t.Errorf("touch cost = %v", d)
	}
	st := p.Stats()
	if st.LogicalReads != 400 || st.PhysicalReads != 0 || st.Hits != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestEvictionUnderBudget(t *testing.T) {
	p := New(testCfg())
	p.Register(1, 600)
	p.Register(2, 600) // must evict page 1
	if p.ResidentBytes() > 1000 {
		t.Errorf("resident %d exceeds budget", p.ResidentBytes())
	}
	if p.Resident(1) {
		t.Error("page 1 should have been evicted (LRU)")
	}
	if !p.Resident(2) {
		t.Error("page 2 should be resident")
	}
	_, faulted := p.Touch(1)
	if !faulted {
		t.Error("touching evicted page must fault")
	}
	st := p.Stats()
	if st.Evictions < 1 || st.PhysicalReads != 600 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLRUOrder(t *testing.T) {
	p := New(testCfg())
	p.Register(1, 400)
	p.Register(2, 400)
	p.Touch(1)         // 1 becomes MRU
	p.Register(3, 400) // evicts 2, the LRU
	if !p.Resident(1) || p.Resident(2) || !p.Resident(3) {
		t.Errorf("LRU order wrong: 1=%v 2=%v 3=%v",
			p.Resident(1), p.Resident(2), p.Resident(3))
	}
}

func TestOversizePageStreams(t *testing.T) {
	p := New(testCfg())
	p.Register(1, 5000) // larger than the whole budget
	if p.Resident(1) {
		t.Error("oversize page must not be cached")
	}
	_, faulted := p.Touch(1)
	if !faulted {
		t.Error("oversize page touch must always fault")
	}
}

func TestFreeReleasesBudget(t *testing.T) {
	p := New(testCfg())
	p.Register(1, 800)
	p.Free(1)
	if p.ResidentBytes() != 0 || p.PageCount() != 0 {
		t.Errorf("free did not release: %d bytes, %d pages", p.ResidentBytes(), p.PageCount())
	}
	p.Register(2, 900) // must fit without eviction
	if st := p.Stats(); st.Evictions != 0 {
		t.Errorf("unexpected evictions: %+v", st)
	}
}

func TestUnconstrainedBudget(t *testing.T) {
	cfg := testCfg()
	cfg.BudgetBytes = 0
	p := New(cfg)
	for i := int64(1); i <= 100; i++ {
		p.Register(i, 1000)
	}
	for i := int64(1); i <= 100; i++ {
		if !p.Resident(i) {
			t.Fatalf("page %d evicted despite unlimited budget", i)
		}
	}
}

func TestVirtualClockAccumulates(t *testing.T) {
	p := New(testCfg())
	d1 := p.Register(1, 100) // write: 100/1e5 s = 1ms
	if d1 != time.Millisecond {
		t.Errorf("write cost = %v", d1)
	}
	d2, _ := p.Touch(1) // mem scan only: 100/1e6 = 100us
	if d2 != 100*time.Microsecond {
		t.Errorf("scan cost = %v", d2)
	}
	if p.Clock() != d1+d2 {
		t.Errorf("clock = %v, want %v", p.Clock(), d1+d2)
	}
}

func TestZeroBandwidthCostsNothing(t *testing.T) {
	p := New(Config{BudgetBytes: 100})
	d := p.Register(1, 50)
	if d != 0 {
		t.Errorf("zero-bandwidth write cost = %v", d)
	}
}

func TestDoubleRegisterPanics(t *testing.T) {
	p := New(testCfg())
	p.Register(1, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("double register did not panic")
		}
	}()
	p.Register(1, 10)
}

func TestTouchUnknownPanics(t *testing.T) {
	p := New(testCfg())
	defer func() {
		if recover() == nil {
			t.Fatal("unknown touch did not panic")
		}
	}()
	p.Touch(42)
}

func TestFreeUnknownPanics(t *testing.T) {
	p := New(testCfg())
	defer func() {
		if recover() == nil {
			t.Fatal("unknown free did not panic")
		}
	}()
	p.Free(42)
}

func TestBudgetInvariantUnderRandomOps(t *testing.T) {
	// Property: resident bytes never exceed the budget, whatever the
	// operation sequence (only pages smaller than the budget).
	p := New(testCfg())
	rng := rand.New(rand.NewSource(8))
	known := []int64{}
	next := int64(1)
	for i := 0; i < 5000; i++ {
		switch {
		case len(known) == 0 || rng.Float64() < 0.3:
			p.Register(next, rng.Int63n(900)+1)
			known = append(known, next)
			next++
		case rng.Float64() < 0.8:
			p.Touch(known[rng.Intn(len(known))])
		default:
			k := rng.Intn(len(known))
			p.Free(known[k])
			known = append(known[:k], known[k+1:]...)
		}
		if p.ResidentBytes() > 1000 {
			t.Fatalf("step %d: resident %d exceeds budget", i, p.ResidentBytes())
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	p := New(testCfg())
	for i := int64(0); i < 50; i++ {
		p.Register(i, 100)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 1000; i++ {
				p.Touch(rng.Int63n(50))
			}
		}(int64(g))
	}
	wg.Wait()
	st := p.Stats()
	if st.Hits+st.Misses != 8000 {
		t.Errorf("hits+misses = %d, want 8000", st.Hits+st.Misses)
	}
}

func TestDefaultConfigSane(t *testing.T) {
	c := DefaultConfig()
	if c.BudgetBytes <= 0 || c.MemBandwidth <= c.DiskReadBandwidth {
		t.Errorf("default config implausible: %+v", c)
	}
}
