package workload

import (
	"testing"

	"selforg/internal/domain"
)

var testDom = domain.NewRange(0, 999_999)

func checkInDomain(t *testing.T, qs []Query, dom domain.Range) {
	t.Helper()
	for i, q := range qs {
		if q.Lo > q.Hi {
			t.Fatalf("query %d inverted: %v", i, q)
		}
		if !dom.ContainsRange(q.Range()) {
			t.Fatalf("query %d %v outside domain %v", i, q, dom)
		}
	}
}

func TestUniformInDomain(t *testing.T) {
	g := NewUniform(testDom, 100_000, 1)
	qs := Take(g, 1000)
	checkInDomain(t, qs, testDom)
	for i, q := range qs {
		if q.Range().Width() != 100_000 {
			t.Fatalf("query %d width = %d", i, q.Range().Width())
		}
	}
}

func TestUniformCoversDomain(t *testing.T) {
	// With 2000 uniform draws the query low bounds should cover all ten
	// deciles of the domain.
	g := NewUniform(testDom, 1000, 2)
	seen := make(map[int64]bool)
	for i := 0; i < 2000; i++ {
		q := g.Next()
		seen[q.Lo*10/testDom.Width()] = true
	}
	if len(seen) < 10 {
		t.Errorf("uniform covered only %d/10 deciles", len(seen))
	}
}

func TestUniformDeterministic(t *testing.T) {
	a := Take(NewUniform(testDom, 500, 7), 50)
	b := Take(NewUniform(testDom, 500, 7), 50)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestUniformSeedsDiffer(t *testing.T) {
	a := Take(NewUniform(testDom, 500, 1), 20)
	b := Take(NewUniform(testDom, 500, 2), 20)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestUniformPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("width 0 did not panic")
		}
	}()
	NewUniform(testDom, 0, 1)
}

func TestZipfInDomainAndSkewed(t *testing.T) {
	g := NewZipf(testDom, 10_000, ZipfBuckets, ZipfS, ZipfV, 3)
	qs := Take(g, 5000)
	checkInDomain(t, qs, testDom)
	// Skew check: the lowest decile must receive far more queries than the
	// highest decile.
	low, high := 0, 0
	for _, q := range qs {
		switch {
		case q.Lo < testDom.Width()/10:
			low++
		case q.Lo > testDom.Width()*9/10:
			high++
		}
	}
	if low <= high*3 {
		t.Errorf("zipf not skewed: low decile %d, high decile %d", low, high)
	}
}

func TestZipfEventuallyCoversTail(t *testing.T) {
	// The paper's Fig. 6 depends on rare queries still hitting untouched
	// areas late in the run: the upper half of the domain must be reachable.
	g := NewZipf(testDom, 10_000, ZipfBuckets, ZipfS, ZipfV, 4)
	hitUpper := false
	for i := 0; i < 20_000; i++ {
		if g.Next().Lo > testDom.Width()/2 {
			hitUpper = true
			break
		}
	}
	if !hitUpper {
		t.Error("zipf never reached the upper half of the domain in 20K queries")
	}
}

func TestZipfDeterministic(t *testing.T) {
	a := Take(NewZipf(testDom, 100, 64, 1.5, 4, 9), 30)
	b := Take(NewZipf(testDom, 100, 64, 1.5, 4, 9), 30)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
}

func TestSkewedStaysInHotSpots(t *testing.T) {
	spots := []HotSpot{
		{Area: domain.NewRange(100_000, 150_000), Weight: 1},
		{Area: domain.NewRange(700_000, 720_000), Weight: 1},
	}
	g := NewSkewed(testDom, 1000, spots, 5)
	for i := 0; i < 2000; i++ {
		q := g.Next()
		inA := q.Lo >= 100_000 && q.Lo <= 150_000
		inB := q.Lo >= 700_000 && q.Lo <= 720_000
		if !inA && !inB {
			t.Fatalf("query %d: %v escapes both hot spots", i, q)
		}
	}
}

func TestSkewedRespectsWeights(t *testing.T) {
	spots := []HotSpot{
		{Area: domain.NewRange(0, 1000), Weight: 9},
		{Area: domain.NewRange(500_000, 501_000), Weight: 1},
	}
	g := NewSkewed(testDom, 10, spots, 6)
	first := 0
	n := 5000
	for i := 0; i < n; i++ {
		if g.Next().Lo <= 1010 {
			first++
		}
	}
	frac := float64(first) / float64(n)
	if frac < 0.85 || frac > 0.95 {
		t.Errorf("hot spot A fraction = %v, want ~0.9", frac)
	}
}

func TestSkewedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no hot spots did not panic")
		}
	}()
	NewSkewed(testDom, 10, nil, 1)
}

func TestSkewedPanicsOnOutsideSpot(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-domain hot spot did not panic")
		}
	}()
	NewSkewed(testDom, 10, []HotSpot{{Area: domain.NewRange(0, 2_000_000), Weight: 1}}, 1)
}

func TestChangingPhases(t *testing.T) {
	// Phase 1 sits at the bottom of the domain, phase 2 at the top; with
	// perPhase=3 queries must alternate in blocks.
	p1 := NewFixed(Query{Lo: 0, Hi: 9})
	p2 := NewFixed(Query{Lo: 990, Hi: 999})
	g := NewChanging(3, p1, p2)
	qs := Take(g, 12)
	for i, q := range qs {
		wantLow := (i/3)%2 == 0
		isLow := q.Lo == 0
		if isLow != wantLow {
			t.Fatalf("query %d = %v, phase wrong", i, q)
		}
	}
}

func TestChangingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty changing did not panic")
		}
	}()
	NewChanging(5)
}

func TestSequentialSweep(t *testing.T) {
	dom := domain.NewRange(0, 99)
	g := NewSequential(dom, 25)
	qs := Take(g, 5)
	want := []Query{{0, 24}, {25, 49}, {50, 74}, {75, 99}, {0, 24}}
	for i, q := range qs {
		if q != want[i] {
			t.Fatalf("sequential[%d] = %v, want %v", i, q, want[i])
		}
	}
}

func TestFixedCycles(t *testing.T) {
	g := NewFixed(Query{1, 2}, Query{3, 4})
	qs := Take(g, 5)
	want := []Query{{1, 2}, {3, 4}, {1, 2}, {3, 4}, {1, 2}}
	for i, q := range qs {
		if q != want[i] {
			t.Fatalf("fixed[%d] = %v", i, q)
		}
	}
}

func TestWidthForSelectivity(t *testing.T) {
	if w := WidthForSelectivity(testDom, 0.1); w != 100_000 {
		t.Errorf("width(0.1) = %d", w)
	}
	if w := WidthForSelectivity(testDom, 0.01); w != 10_000 {
		t.Errorf("width(0.01) = %d", w)
	}
	if w := WidthForSelectivity(domain.NewRange(0, 9), 0.0001); w != 1 {
		t.Errorf("tiny selectivity width = %d, want 1", w)
	}
}

func TestWidthForSelectivityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("selectivity 0 did not panic")
		}
	}()
	WidthForSelectivity(testDom, 0)
}

func TestSpecBuild(t *testing.T) {
	specs := []Spec{
		{Name: "u", Dom: testDom, Selectivity: 0.1, Kind: KindUniform, Seed: 1},
		{Name: "z", Dom: testDom, Selectivity: 0.01, Kind: KindZipf, Seed: 2},
	}
	for _, s := range specs {
		g := s.Build()
		qs := Take(g, 100)
		checkInDomain(t, qs, testDom)
	}
}

func TestKindString(t *testing.T) {
	if KindUniform.String() != "uniform" || KindZipf.String() != "zipf" {
		t.Error("kind names wrong")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Error("unknown kind name wrong")
	}
}

func TestQueryString(t *testing.T) {
	if s := (Query{1, 5}).String(); s != "[1, 5]" {
		t.Errorf("query string = %q", s)
	}
}

func TestClampQueryAtDomainEdge(t *testing.T) {
	// A query anchored at the very end of the domain must clip, keeping
	// the width by shifting left.
	q := clampQuery(domain.NewRange(0, 99), 95, 10)
	if q.Lo != 90 || q.Hi != 99 {
		t.Errorf("clamped query = %v, want [90, 99]", q)
	}
}
