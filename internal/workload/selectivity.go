package workload

import (
	"fmt"

	"selforg/internal/domain"
)

// WidthForSelectivity returns the query width (in domain values) that hits
// the requested selectivity against a column whose values are spread
// uniformly over dom.
//
// §6.1 simulates a column of 100K values drawn from a 1M-value domain and
// selectivity factors 0.1 and 0.01: a query selecting 10% of the *tuples*
// must then cover 10% of the *domain*.
func WidthForSelectivity(dom domain.Range, selectivity float64) int64 {
	if selectivity <= 0 || selectivity > 1 {
		panic(fmt.Sprintf("workload: selectivity %v outside (0, 1]", selectivity))
	}
	w := int64(float64(dom.Width()) * selectivity)
	if w < 1 {
		w = 1
	}
	return w
}

// Spec bundles a generator configuration for the §6.1 simulation study so
// experiments can be declared as data.
type Spec struct {
	Name        string
	Dom         domain.Range
	Selectivity float64
	Kind        Kind
	Seed        int64
}

// Kind selects the query-position distribution of a Spec.
type Kind int

const (
	// KindUniform places queries uniformly over the domain.
	KindUniform Kind = iota
	// KindZipf places queries Zipf-skewed towards the low end.
	KindZipf
)

// Zipf shape used for the simulation study; the paper gives no parameters,
// DESIGN.md documents the choice.
const (
	ZipfS       = 1.4
	ZipfV       = 8.0
	ZipfBuckets = 1024
)

func (k Kind) String() string {
	switch k {
	case KindUniform:
		return "uniform"
	case KindZipf:
		return "zipf"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Build instantiates the generator described by the spec.
func (s Spec) Build() Generator {
	width := WidthForSelectivity(s.Dom, s.Selectivity)
	switch s.Kind {
	case KindUniform:
		return NewUniform(s.Dom, width, s.Seed)
	case KindZipf:
		return NewZipf(s.Dom, width, ZipfBuckets, ZipfS, ZipfV, s.Seed)
	default:
		panic(fmt.Sprintf("workload: unknown kind %d", s.Kind))
	}
}
