// Package workload generates the range-selection query streams used by the
// paper's evaluation (§6): uniform and Zipf-skewed streams over the
// attribute domain for the simulation study, and the random / skewed /
// changing SkyServer-style workloads for the prototype experiments.
//
// Every generator is deterministic given its seed, so experiments are
// exactly reproducible.
package workload

import (
	"fmt"
	"math/rand"

	"selforg/internal/domain"
)

// Query is one range-selection predicate `v between Lo and Hi`.
type Query struct {
	Lo, Hi domain.Value
}

// Range converts the query into a domain.Range.
func (q Query) Range() domain.Range { return domain.Range{Lo: q.Lo, Hi: q.Hi} }

func (q Query) String() string { return fmt.Sprintf("[%d, %d]", q.Lo, q.Hi) }

// Generator produces an endless stream of queries.
type Generator interface {
	// Next returns the next query in the stream.
	Next() Query
}

// Take materializes the next n queries from g.
func Take(g Generator, n int) []Query {
	out := make([]Query, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// clampQuery builds a width-wide query whose low bound is lo, clipped to
// the domain dom.
func clampQuery(dom domain.Range, lo domain.Value, width int64) Query {
	if width < 1 {
		width = 1
	}
	if lo < dom.Lo {
		lo = dom.Lo
	}
	hi := lo + width - 1
	if hi > dom.Hi {
		hi = dom.Hi
		lo = hi - width + 1
		if lo < dom.Lo {
			lo = dom.Lo
		}
	}
	return Query{Lo: lo, Hi: hi}
}

// Uniform draws query positions uniformly over the domain, with a fixed
// range width chosen to hit a target selectivity. §6.1 uses this as the
// "uniform distribution of the queries over the attribute domain".
type Uniform struct {
	dom   domain.Range
	width int64
	rng   *rand.Rand
}

// NewUniform creates a uniform generator over dom producing queries of the
// given width (in domain values).
func NewUniform(dom domain.Range, width int64, seed int64) *Uniform {
	if width < 1 || width > dom.Width() {
		panic(fmt.Sprintf("workload: width %d outside domain %v", width, dom))
	}
	return &Uniform{dom: dom, width: width, rng: rand.New(rand.NewSource(seed))}
}

// Next returns a uniformly placed query.
func (u *Uniform) Next() Query {
	span := u.dom.Width() - u.width + 1
	lo := u.dom.Lo + u.rng.Int63n(span)
	return clampQuery(u.dom, lo, u.width)
}

// Zipf draws query positions from a Zipf distribution over domain buckets,
// the "skewed (Zipf) distribution" of §6.1. Lower bucket indices (the low
// end of the domain) are hit most often; the tail is hit rarely, which
// reproduces the paper's observation that untouched areas are still being
// reorganized after thousands of queries (Fig. 6).
type Zipf struct {
	dom     domain.Range
	width   int64
	buckets int64
	z       *rand.Zipf
	rng     *rand.Rand
}

// NewZipf creates a Zipf generator: the domain is divided into buckets
// bins; bucket indices are Zipf(s, v) distributed. The paper does not give
// the Zipf parameters; see DESIGN.md for our choice.
func NewZipf(dom domain.Range, width int64, buckets int64, s, v float64, seed int64) *Zipf {
	if width < 1 || width > dom.Width() {
		panic(fmt.Sprintf("workload: width %d outside domain %v", width, dom))
	}
	if buckets < 1 {
		panic("workload: zipf needs at least one bucket")
	}
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, s, v, uint64(buckets-1))
	return &Zipf{dom: dom, width: width, buckets: buckets, z: z, rng: rng}
}

// Next returns a Zipf-placed query: the bucket picks the coarse position,
// a uniform offset inside the bucket de-quantizes it.
func (z *Zipf) Next() Query {
	b := int64(z.z.Uint64())
	bucketWidth := z.dom.Width() / z.buckets
	if bucketWidth < 1 {
		bucketWidth = 1
	}
	lo := z.dom.Lo + b*bucketWidth + z.rng.Int63n(bucketWidth)
	return clampQuery(z.dom, lo, z.width)
}

// HotSpot describes one hot area of a skewed workload: queries fall inside
// Area with the given relative Weight.
type HotSpot struct {
	Area   domain.Range
	Weight float64
}

// Skewed confines queries to a small set of hot areas. §6.2's "skew"
// workload "extracts 200 subsequent queries from the log that access two
// very limited areas of the domain"; two hot spots reproduce that shape.
type Skewed struct {
	dom   domain.Range
	width int64
	spots []HotSpot
	total float64
	rng   *rand.Rand
}

// NewSkewed creates a skewed generator over the given hot spots.
func NewSkewed(dom domain.Range, width int64, spots []HotSpot, seed int64) *Skewed {
	if len(spots) == 0 {
		panic("workload: skewed needs at least one hot spot")
	}
	total := 0.0
	for _, h := range spots {
		if h.Weight <= 0 {
			panic("workload: hot spot weight must be positive")
		}
		if !dom.ContainsRange(h.Area) {
			panic(fmt.Sprintf("workload: hot spot %v outside domain %v", h.Area, dom))
		}
		total += h.Weight
	}
	return &Skewed{dom: dom, width: width, spots: spots, total: total, rng: rand.New(rand.NewSource(seed))}
}

// Next picks a hot spot by weight, then a position inside it.
func (s *Skewed) Next() Query {
	r := s.rng.Float64() * s.total
	spot := s.spots[len(s.spots)-1]
	for _, h := range s.spots {
		if r < h.Weight {
			spot = h
			break
		}
		r -= h.Weight
	}
	span := spot.Area.Width()
	lo := spot.Area.Lo + s.rng.Int63n(span)
	return clampQuery(s.dom, lo, s.width)
}

// Changing cycles through phases, each with its own generator, switching
// after a fixed number of queries. §6.2's "changing" workload "consists of
// four pieces of 50 subsequent queries with changing point of access".
type Changing struct {
	phases   []Generator
	perPhase int
	issued   int
}

// NewChanging creates a phased generator: perPhase queries from each
// generator in order, wrapping around after the last phase.
func NewChanging(perPhase int, phases ...Generator) *Changing {
	if perPhase < 1 || len(phases) == 0 {
		panic("workload: changing needs phases and a positive phase length")
	}
	return &Changing{phases: phases, perPhase: perPhase}
}

// Next returns the next query of the current phase.
func (c *Changing) Next() Query {
	phase := (c.issued / c.perPhase) % len(c.phases)
	c.issued++
	return c.phases[phase].Next()
}

// Sequential sweeps the domain left to right with fixed-width queries,
// useful as a fully predictable baseline in tests.
type Sequential struct {
	dom   domain.Range
	width int64
	pos   domain.Value
}

// NewSequential creates a sequential sweep generator.
func NewSequential(dom domain.Range, width int64) *Sequential {
	if width < 1 || width > dom.Width() {
		panic(fmt.Sprintf("workload: width %d outside domain %v", width, dom))
	}
	return &Sequential{dom: dom, width: width, pos: dom.Lo}
}

// Next returns the next window, wrapping at the domain end.
func (s *Sequential) Next() Query {
	if s.pos+s.width-1 > s.dom.Hi {
		s.pos = s.dom.Lo
	}
	q := Query{Lo: s.pos, Hi: s.pos + s.width - 1}
	s.pos += s.width
	return q
}

// Fixed replays a fixed list of queries, cycling at the end. Tests and the
// paper's worked examples (Fig. 3, Fig. 4) use it to drive exact scenarios.
type Fixed struct {
	queries []Query
	next    int
}

// NewFixed creates a generator replaying qs.
func NewFixed(qs ...Query) *Fixed {
	if len(qs) == 0 {
		panic("workload: fixed needs at least one query")
	}
	return &Fixed{queries: qs}
}

// Next returns the next fixed query, cycling.
func (f *Fixed) Next() Query {
	q := f.queries[f.next%len(f.queries)]
	f.next++
	return q
}
