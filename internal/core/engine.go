package core

// The snapshot-publication engine shared by both self-organizing
// strategies. Before this file existed the Segmenter and the Replicator
// each carried their own copy of the same machinery — a writer mutex, an
// atomically published immutable base snapshot, an MVCC write store with
// merge thresholds, and the merge-back commit protocol that publishes
// the rewritten base and the drained store as one atomic step. The
// engine hoists all of it into one place, parameterized over the base
// snapshot type: `*segment.List` for segmentation, the replica tree's
// root `*node` for replication.
//
// # Lock-free consistent pins
//
// The engine publishes the base through an atomic pointer and the delta
// store publishes its snapshots the same way, so either can be loaded
// without a lock — but a reader needs the *pair* to be consistent: after
// a merge-back drains pending writes into the base, pairing the new base
// with a pre-drain delta snapshot would double-count the merged entries,
// and pairing the old base with the drained snapshot would lose them.
// Rather than serializing readers through the writer mutex (what both
// strategies did before), the engine stamps every published base with
// the number of merges drained into it and the delta store stamps every
// snapshot with the number of merges committed before it; Pin loads
// both sides and retries until the two epochs agree. Non-merge
// publications keep their side's epoch, so the loop only ever retries
// inside the few instructions between a merge's base publication and its
// store commit — readers are wait-free in steady state and never block
// on reorganization, bulk loads or merge-backs.
//
// Everything else keeps the single-writer discipline of PR 2: all base
// mutations happen under Mu and publish via Publish (same epoch) or
// PublishMerged (epoch + 1, paired with the store's commit callback).

import (
	"sync"
	"sync/atomic"

	"selforg/internal/delta"
	"selforg/internal/obs"
)

// published is one (base snapshot, merge epoch) pair.
type published[B any] struct {
	base  *B
	epoch int64 // delta merges drained into this base
}

// engine owns the publication state of one strategy instance.
type engine[B any] struct {
	// Mu is the single-writer path: model decisions and every base
	// mutation (splits, replica materialization, drops, bulk loads,
	// merge-backs, re-encoding) happen under it. Readers never take it.
	Mu  sync.Mutex
	cur atomic.Pointer[published[B]]
	// Delta is the column's MVCC write store; deltaMaxBytes /
	// deltaRatioBP are the self-organizing merge-back triggers (pending
	// bytes, pending-to-base ratio in basis points; 0 disables).
	Delta         *delta.Store
	deltaMaxBytes atomic.Int64
	deltaRatioBP  atomic.Int64
	// pub counts base publications (snapshot installs) when an observer
	// is attached; obs.Counter methods are nil-safe, so the unobserved
	// cost is one atomic load per publication.
	pub atomic.Pointer[obs.Counter]
}

// setPublishCounter attaches the publication counter (nil detaches).
func (e *engine[B]) setPublishCounter(c *obs.Counter) { e.pub.Store(c) }

// initEngine installs the initial base snapshot and a fresh write store.
func (e *engine[B]) initEngine(base *B, elemSize int64) {
	e.Delta = delta.NewStore(elemSize)
	e.cur.Store(&published[B]{base: base})
}

// Base returns the current base snapshot without ordering against the
// delta store — for accessors (layout, stats, validation) and for the
// writer path, which holds Mu anyway.
func (e *engine[B]) Base() *B { return e.cur.Load().base }

// Pin returns a consistent (base, delta) pair without taking any lock.
// Two checks close the two interleavings that could tear the pair:
//
//   - The epoch match catches a merge-back landing between the two
//     loads: its base (epoch+1) must not pair with the pre-drain store
//     (double-count) nor the old base with the drained store (loss).
//   - The pointer re-check catches a content-changing same-epoch
//     publication (a bulk load) landing between the two loads: pairing
//     the pre-load base with a delta snapshot taken after the load
//     would expose a column state that never existed. Publications
//     always store a freshly allocated pair, so an unchanged pointer
//     proves no publication completed in between (no ABA).
//
// Both windows are a few instructions wide; readers are wait-free in
// steady state.
func (e *engine[B]) Pin() (*B, *delta.Snapshot) {
	for {
		p := e.cur.Load()
		ds := e.Delta.Snapshot()
		if p.epoch == ds.MergeEpoch() && e.cur.Load() == p {
			return p.base, ds
		}
	}
}

// Publish installs a new base snapshot that carries the same logical
// delta state (reorganization, bulk load, re-encoding). Caller holds Mu.
func (e *engine[B]) Publish(base *B) {
	e.cur.Store(&published[B]{base: base, epoch: e.cur.Load().epoch})
	e.pub.Load().Inc()
}

// PublishMerged installs a base snapshot that has absorbed a drained
// delta batch, then commits the drain: the epoch bump on the base side
// and commit's epoch bump on the store side re-align the pair for
// lock-free pinners. Caller holds Mu and is inside delta.Store.Merge
// (commit is Merge's callback).
func (e *engine[B]) PublishMerged(base *B, commit func()) {
	e.cur.Store(&published[B]{base: base, epoch: e.cur.Load().epoch + 1})
	commit()
	e.pub.Load().Inc()
}

// SetDeltaPolicy implements the DeltaStrategy knob for both strategies:
// a write that leaves more than maxBytes pending, or more than ratio ×
// the base's logical size, drains the write store inline. Zero disables
// the respective trigger; both zero leaves merging to explicit
// MergeDeltas calls.
func (e *engine[B]) SetDeltaPolicy(maxBytes int64, ratio float64) {
	e.deltaMaxBytes.Store(maxBytes)
	e.deltaRatioBP.Store(int64(ratio * 10000))
}

// deltaStore implements deltaMerger.
func (e *engine[B]) deltaStore() *delta.Store { return e.Delta }

// deltaThresholds implements deltaMerger.
func (e *engine[B]) deltaThresholds() (int64, int64) {
	return e.deltaMaxBytes.Load(), e.deltaRatioBP.Load()
}

// DeltaStats implements DeltaStrategy.
func (e *engine[B]) DeltaStats() delta.Stats { return e.Delta.Stats() }
