package core

// Observability wiring. Each strategy instance resolves one strategyObs
// at SetObserver time: every metric handle — per-op counters, duration
// histograms, volume counters, adaptation-event counters — is looked up
// in the registry exactly once, so the query and write hot paths are
// pure atomic adds and never touch the registry's map or mutex. The
// handle is published through an atomic pointer; a nil handle (observer
// detached, or never attached) makes every method a no-op, keeping the
// uninstrumented cost at one atomic load per operation.
//
// Event emission and gauge callbacks are deliberately lock-free with
// respect to the registry: events go straight to the pre-resolved
// counters and the EventLog's own mutex, and every gauge callback reads
// atomics or immutable snapshots — so a scrape can never deadlock
// against a writer holding eng.Mu or the delta store's mutex.

import (
	"fmt"
	"time"

	"selforg/internal/domain"
	"selforg/internal/obs"
)

// strategyObs is the resolved metric handle set of one strategy
// instance (one shard). All methods are nil-safe.
type strategyObs struct {
	ob    *obs.Observer
	strat string // "segm" | "repl"
	shard int

	// queries: selforg_queries_total / selforg_query_duration_ns.
	qSel, qCnt *obs.Counter
	dSel, dCnt *obs.Histogram
	// writes: selforg_writes_total.
	wIns, wDel, wUpd *obs.Counter
	// volumes.
	readBytes, writeBytes, resultRows, deltaReadBytes *obs.Counter
	// adaptation events: selforg_adaptation_events_total{kind=...}.
	evSplit, evReplicate, evDrop, evRecode *obs.Counter
	evMerge, evGlue, evBulkload            *obs.Counter
	// merge-back: selforg_delta_merges_total etc.
	merges, mergedEntries *obs.Counter
	mergeDur              *obs.Histogram
	// queued-adaptation drains: selforg_adapt_drains_total{mode=...}.
	drainInline, drainBg       *obs.Counter
	drainInlineDur, drainBgDur *obs.Histogram
}

// newStrategyObs resolves every handle against ob's registry.
func newStrategyObs(ob *obs.Observer, strat string, shard int) *strategyObs {
	reg := ob.Registry
	lbl := fmt.Sprintf(`strategy=%q,shard="%d"`, strat, shard)
	series := func(fam, extra string) string {
		if extra == "" {
			return fam + "{" + lbl + "}"
		}
		return fam + "{" + extra + "," + lbl + "}"
	}
	kind := func(k string) *obs.Counter {
		return reg.Counter(series("selforg_adaptation_events_total", fmt.Sprintf("kind=%q", k)))
	}
	return &strategyObs{
		ob:    ob,
		strat: strat,
		shard: shard,

		qSel: reg.Counter(series("selforg_queries_total", `op="select"`)),
		qCnt: reg.Counter(series("selforg_queries_total", `op="count"`)),
		dSel: reg.Histogram(series("selforg_query_duration_ns", `op="select"`)),
		dCnt: reg.Histogram(series("selforg_query_duration_ns", `op="count"`)),

		wIns: reg.Counter(series("selforg_writes_total", `op="insert"`)),
		wDel: reg.Counter(series("selforg_writes_total", `op="delete"`)),
		wUpd: reg.Counter(series("selforg_writes_total", `op="update"`)),

		readBytes:      reg.Counter(series("selforg_read_bytes_total", "")),
		writeBytes:     reg.Counter(series("selforg_write_bytes_total", "")),
		resultRows:     reg.Counter(series("selforg_result_rows_total", "")),
		deltaReadBytes: reg.Counter(series("selforg_delta_overlay_bytes_total", "")),

		evSplit:     kind("split"),
		evReplicate: kind("replicate"),
		evDrop:      kind("drop"),
		evRecode:    kind("recode"),
		evMerge:     kind("merge"),
		evGlue:      kind("glue"),
		evBulkload:  kind("bulkload"),

		merges:        reg.Counter(series("selforg_delta_merges_total", "")),
		mergedEntries: reg.Counter(series("selforg_delta_merged_entries_total", "")),
		mergeDur:      reg.Histogram(series("selforg_delta_merge_duration_ns", "")),

		drainInline:    reg.Counter(series("selforg_adapt_drains_total", `mode="inline"`)),
		drainBg:        reg.Counter(series("selforg_adapt_drains_total", `mode="background"`)),
		drainInlineDur: reg.Histogram(series("selforg_adapt_drain_duration_ns", `mode="inline"`)),
		drainBgDur:     reg.Histogram(series("selforg_adapt_drain_duration_ns", `mode="background"`)),
	}
}

// seriesName builds one labeled series for this instance's gauge
// registrations.
func (so *strategyObs) seriesName(fam string) string {
	return fmt.Sprintf(`%s{strategy=%q,shard="%d"}`, fam, so.strat, so.shard)
}

// span starts a phase trace for one query (nil while tracing is off or
// the query is sampled out).
func (so *strategyObs) span(op string, q domain.Range) *obs.Span {
	if so == nil {
		return nil
	}
	return so.ob.Traces.Start(op, so.strat, so.shard, q.Lo, q.Hi)
}

// finishSpan copies the query's volume measures into the trace and files
// it.
func finishSpan(span *obs.Span, st *QueryStats) {
	if span == nil {
		return
	}
	span.Stats(st.ReadBytes, st.DeltaReadBytes, st.ResultCount, st.Splits, st.Drops, st.Recodes)
	span.Finish()
}

// query accounts one finished read query: op counter, duration
// histogram, volume counters.
func (so *strategyObs) query(sel bool, begin time.Time, st *QueryStats) {
	if so == nil {
		return
	}
	d := int64(time.Since(begin))
	if sel {
		so.qSel.Inc()
		so.dSel.Observe(d)
	} else {
		so.qCnt.Inc()
		so.dCnt.Observe(d)
	}
	so.volumes(st)
}

// write accounts one accepted point write (w is the per-op counter) with
// its stats, merge-back cost included.
func (so *strategyObs) write(w *obs.Counter, st *QueryStats) {
	if so == nil {
		return
	}
	w.Inc()
	so.volumes(st)
}

// writeBatch accounts one applied write batch: the per-op counters
// advance by the accepted counts, the volume totals once for the whole
// batch (merge-back cost included).
func (so *strategyObs) writeBatch(ins, del, upd int, st *QueryStats) {
	if so == nil {
		return
	}
	if ins > 0 {
		so.wIns.Add(int64(ins))
	}
	if del > 0 {
		so.wDel.Add(int64(del))
	}
	if upd > 0 {
		so.wUpd.Add(int64(upd))
	}
	so.volumes(st)
}

// volumes adds the per-operation byte/row measures to the totals.
func (so *strategyObs) volumes(st *QueryStats) {
	so.readBytes.Add(st.ReadBytes)
	so.writeBytes.Add(st.WriteBytes)
	so.resultRows.Add(st.ResultCount)
	if st.DeltaReadBytes > 0 {
		so.deltaReadBytes.Add(st.DeltaReadBytes)
	}
}

// event bumps kind's pre-resolved counter (ev) and files the structured
// event, stamping the instance identity.
func (so *strategyObs) event(ev *obs.Counter, kind string, e obs.Event) {
	if so == nil {
		return
	}
	ev.Inc()
	e.Kind = kind
	e.Strategy = so.strat
	e.Shard = so.shard
	so.ob.Events.Add(e)
}

// recodes adds n to the recode event counter (structured events are not
// emitted per recode — encodings change with every materialization; the
// counter carries the rate, the layout endpoint the current breakdown).
func (so *strategyObs) recodes(n int) {
	if so == nil || n == 0 {
		return
	}
	so.evRecode.Add(int64(n))
}

// merged accounts one completed merge-back that drained n entries.
func (so *strategyObs) merged(n int, begin time.Time) {
	if so == nil || n == 0 {
		return
	}
	so.merges.Inc()
	so.mergedEntries.Add(int64(n))
	so.mergeDur.Observe(int64(time.Since(begin)))
	so.event(so.evMerge, "merge", obs.Event{
		After: n,
		Note:  fmt.Sprintf("entries=%d", n),
	})
}

// drained accounts one queued-adaptation drain (inline = piggy-backed on
// a query's TryLock win; background = the drainer goroutine).
func (so *strategyObs) drained(background bool, ranges int, begin time.Time) {
	if so == nil || ranges == 0 {
		return
	}
	d := int64(time.Since(begin))
	if background {
		so.drainBg.Inc()
		so.drainBgDur.Observe(d)
	} else {
		so.drainInline.Inc()
		so.drainInlineDur.Observe(d)
	}
}
