package core

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"selforg/internal/compress"
	"selforg/internal/domain"
	"selforg/internal/model"
)

func sortedVals(vs []domain.Value) []domain.Value {
	out := append([]domain.Value(nil), vs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func valsEq(a, b []domain.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// deltaStrategies builds one Segmenter and one Replicator over the same
// data, both with manual merging (policy 0/0) so tests control the
// checkpoint explicitly.
func deltaStrategies(vals []domain.Value, extent domain.Range) []DeltaStrategy {
	a := append([]domain.Value(nil), vals...)
	b := append([]domain.Value(nil), vals...)
	return []DeltaStrategy{
		NewSegmenter(extent, a, 4, model.NewAPM(32, 128), nil),
		NewReplicator(extent, b, 4, model.NewAPM(32, 128), nil),
	}
}

func TestDeltaWriteOverlayBothStrategies(t *testing.T) {
	extent := domain.NewRange(0, 999)
	base := []domain.Value{10, 20, 20, 300, 500, 900}
	for _, s := range deltaStrategies(base, extent) {
		t.Run(s.Name(), func(t *testing.T) {
			if _, err := s.Insert(42); err != nil {
				t.Fatal(err)
			}
			if ok, _, _ := s.Delete(20); !ok {
				t.Fatal("delete of base row refused")
			}
			if ok, _, _ := s.Update(300, 301); !ok {
				t.Fatal("update of base row refused")
			}
			if ok, _, _ := s.Delete(777); ok {
				t.Fatal("delete of absent value accepted")
			}
			got, _ := s.Select(extent)
			want := []domain.Value{10, 20, 42, 301, 500, 900}
			if !valsEq(sortedVals(got), sortedVals(want)) {
				t.Fatalf("overlay select = %v, want %v", sortedVals(got), sortedVals(want))
			}
			n, _ := s.Count(extent)
			if n != int64(len(want)) {
				t.Fatalf("overlay count = %d, want %d", n, len(want))
			}
			// Range-restricted overlay: only the insert qualifies.
			got, _ = s.Select(domain.NewRange(40, 45))
			if !valsEq(got, []domain.Value{42}) {
				t.Fatalf("range overlay = %v, want [42]", got)
			}
			if _, err := s.Insert(5000); err == nil {
				t.Fatal("insert outside extent accepted")
			}
		})
	}
}

func TestDeltaMergeBackEquivalence(t *testing.T) {
	extent := domain.NewRange(0, 999)
	rnd := rand.New(rand.NewSource(7))
	base := make([]domain.Value, 400)
	for i := range base {
		base[i] = rnd.Int63n(1000)
	}
	for _, s := range deltaStrategies(base, extent) {
		t.Run(s.Name(), func(t *testing.T) {
			for i := 0; i < 50; i++ {
				switch rnd.Intn(3) {
				case 0:
					s.Insert(rnd.Int63n(1000))
				case 1:
					s.Delete(base[rnd.Intn(len(base))])
				default:
					s.Update(base[rnd.Intn(len(base))], rnd.Int63n(1000))
				}
			}
			before, _ := s.Select(extent)
			st, err := s.MergeDeltas()
			if err != nil {
				t.Fatal(err)
			}
			if st.Merged == 0 {
				t.Fatal("merge drained nothing")
			}
			if ds := s.DeltaStats(); ds.Pending != 0 {
				t.Fatalf("pending after merge = %d", ds.Pending)
			}
			after, _ := s.Select(extent)
			if !valsEq(sortedVals(before), sortedVals(after)) {
				t.Fatalf("scan-after-merge differs from scan-with-overlay: %d vs %d rows",
					len(before), len(after))
			}
			// The merged rows are real base rows now: validate structure.
			switch impl := s.(type) {
			case *Segmenter:
				if err := impl.List().Validate(); err != nil {
					t.Fatalf("post-merge list invalid: %v", err)
				}
			case *Replicator:
				if err := impl.Validate(); err != nil {
					t.Fatalf("post-merge tree invalid: %v", err)
				}
			}
		})
	}
}

func TestDeltaAutoMergeThreshold(t *testing.T) {
	extent := domain.NewRange(0, 999)
	base := make([]domain.Value, 100)
	for i := range base {
		base[i] = int64(i * 7 % 1000)
	}
	for _, s := range deltaStrategies(base, extent) {
		t.Run(s.Name(), func(t *testing.T) {
			// Merge once 10 entries (40 bytes) accumulate.
			s.SetDeltaPolicy(40, 0)
			var merged int
			for i := 0; i < 25; i++ {
				st, err := s.Insert(int64(i))
				if err != nil {
					t.Fatal(err)
				}
				merged += st.Merged
			}
			if merged == 0 {
				t.Fatal("size threshold never triggered a merge-back")
			}
			ds := s.DeltaStats()
			if ds.Merges == 0 {
				t.Fatalf("delta stats report no merges: %+v", ds)
			}
			if ds.Pending >= 10 {
				t.Fatalf("pending %d after auto-merges, threshold 10 entries", ds.Pending)
			}
		})
	}
}

func TestDeltaViewPinsVisibility(t *testing.T) {
	extent := domain.NewRange(0, 999)
	base := []domain.Value{100, 200, 300}
	seg := NewSegmenter(extent, append([]domain.Value(nil), base...), 4, model.NewAPM(32, 128), nil)

	before := seg.Pin()
	seg.Insert(150)
	seg.Delete(200)
	seg.Update(300, 301)
	after := seg.Pin()

	if got := sortedVals(before.Select(extent)); !valsEq(got, []domain.Value{100, 200, 300}) {
		t.Fatalf("pre-write view sees writes: %v", got)
	}
	want := []domain.Value{100, 150, 301}
	if got := sortedVals(after.Select(extent)); !valsEq(got, want) {
		t.Fatalf("post-write view = %v, want %v", got, want)
	}
	// A merge-back must not disturb either pinned view (segmentation
	// views pin the list snapshot too).
	if _, err := seg.MergeDeltas(); err != nil {
		t.Fatal(err)
	}
	if got := sortedVals(before.Select(extent)); !valsEq(got, []domain.Value{100, 200, 300}) {
		t.Fatalf("pre-write view changed by merge: %v", got)
	}
	if got := sortedVals(after.Select(extent)); !valsEq(got, want) {
		t.Fatalf("post-write view changed by merge: %v", got)
	}
	if before.Count(extent) != 3 || after.Count(extent) != 3 {
		t.Fatal("view counts diverge from view selects")
	}
}

// TestDeltaViewReplicatorStableAcrossMerges pins replication views around
// writes, merge-backs and bulk loads: with the persistent replica tree a
// pinned (root, delta watermark) pair is a true snapshot, byte-identical
// to the segmentation View contract — the old stale/read-committed
// fallback is gone.
func TestDeltaViewReplicatorStableAcrossMerges(t *testing.T) {
	extent := domain.NewRange(0, 999)
	repl := NewReplicator(extent, []domain.Value{100, 200}, 4, model.NewAPM(32, 128), nil)
	v := repl.Pin()
	repl.Insert(150)
	if got := sortedVals(v.Select(extent)); !valsEq(got, []domain.Value{100, 200}) {
		t.Fatalf("pinned view sees later insert: %v", got)
	}
	if _, err := repl.MergeDeltas(); err != nil {
		t.Fatal(err)
	}
	// The merge-back drained the insert into the tree; the pinned view
	// must keep serving its snapshot, not the merged content.
	if got := sortedVals(v.Select(extent)); !valsEq(got, []domain.Value{100, 200}) {
		t.Fatalf("view changed by merge-back: %v", got)
	}
	if n := v.Count(extent); n != 2 {
		t.Fatalf("view count after merge = %d, want 2", n)
	}
	// A view pinned between the merge and a bulk load sees the merged
	// row but not the loaded one.
	v2 := repl.Pin()
	if _, err := repl.BulkLoad([]domain.Value{500}); err != nil {
		t.Fatal(err)
	}
	if got := sortedVals(v2.Select(extent)); !valsEq(got, []domain.Value{100, 150, 200}) {
		t.Fatalf("view changed by bulk load: %v", got)
	}
	// Fresh reads see everything.
	got, _ := repl.Select(extent)
	if !valsEq(sortedVals(got), []domain.Value{100, 150, 200, 500}) {
		t.Fatalf("live select = %v", sortedVals(got))
	}
}

// TestDeltaRaceStressScannersAndWriters runs 8 concurrent scanners
// against both strategies while 3 writers push point writes through the
// delta store with auto-merge enabled — the -race workhorse for the
// whole read-overlay/merge-back pipeline.
func TestDeltaRaceStressScannersAndWriters(t *testing.T) {
	extent := domain.NewRange(0, 9_999)
	rnd := rand.New(rand.NewSource(11))
	base := make([]domain.Value, 3_000)
	for i := range base {
		base[i] = rnd.Int63n(10_000)
	}
	for _, s := range deltaStrategies(base, extent) {
		t.Run(s.Name(), func(t *testing.T) {
			s.SetDeltaPolicy(256, 0) // merge every 64 entries: heavy churn
			var wg sync.WaitGroup
			for w := 0; w < 3; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					wrnd := rand.New(rand.NewSource(int64(100 + w)))
					for i := 0; i < 300; i++ {
						switch wrnd.Intn(3) {
						case 0:
							if _, err := s.Insert(wrnd.Int63n(10_000)); err != nil {
								t.Error(err)
								return
							}
						case 1:
							s.Delete(base[wrnd.Intn(len(base))])
						default:
							s.Update(base[wrnd.Intn(len(base))], wrnd.Int63n(10_000))
						}
					}
				}(w)
			}
			for r := 0; r < 8; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					qrnd := rand.New(rand.NewSource(int64(200 + r)))
					for i := 0; i < 150; i++ {
						lo := qrnd.Int63n(9_000)
						q := domain.NewRange(lo, lo+999)
						vals, _ := s.Select(q)
						for _, v := range vals {
							if !q.Contains(v) {
								t.Errorf("select returned %d outside %v", v, q)
								return
							}
						}
					}
				}(r)
			}
			wg.Wait()
			// The column must still be structurally sound and the content
			// must reconcile: drain and re-validate.
			if _, err := s.MergeDeltas(); err != nil {
				t.Fatal(err)
			}
			switch impl := s.(type) {
			case *Segmenter:
				if err := impl.List().Validate(); err != nil {
					t.Fatal(err)
				}
			case *Replicator:
				if err := impl.Validate(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestDeltaMergeAbsorbedByReorganization checks the acceptance loop: a
// merged batch becomes base rows that later queries split and re-encode
// like any others.
func TestDeltaMergeAbsorbedByReorganization(t *testing.T) {
	extent := domain.NewRange(0, 99_999)
	rnd := rand.New(rand.NewSource(3))
	base := make([]domain.Value, 20_000)
	for i := range base {
		base[i] = rnd.Int63n(100_000)
	}
	seg := NewSegmenter(extent, base, 4, model.NewAPM(3*1024, 12*1024), nil)
	seg.SetCompression(compress.Auto)
	seg.SetDeltaPolicy(0, 0)
	for i := 0; i < 500; i++ {
		seg.Insert(rnd.Int63n(100_000))
	}
	st, err := seg.MergeDeltas()
	if err != nil {
		t.Fatal(err)
	}
	if st.Merged != 500 {
		t.Fatalf("merged %d entries, want 500", st.Merged)
	}
	var splits, recodes int
	for i := 0; i < 200; i++ {
		lo := rnd.Int63n(90_000)
		_, qst := seg.Select(domain.NewRange(lo, lo+9_999))
		splits += qst.Splits
		recodes += qst.Recodes
	}
	if splits == 0 || recodes == 0 {
		t.Fatalf("post-merge queries drove no reorganization: splits=%d recodes=%d", splits, recodes)
	}
	if err := seg.List().Validate(); err != nil {
		t.Fatal(err)
	}
}
