package core

// Tests for the §8 future-work extensions: storage-budget-limited
// replication, depth-limited replica trees (this file) and the glue
// merging strategy (segmenter_test.go).

import (
	"math/rand"
	"testing"

	"selforg/internal/domain"
	"selforg/internal/model"
)

func TestReplicatorStorageBudgetHolds(t *testing.T) {
	vals := denseColumn(10_000)
	r := NewReplicator(domain.NewRange(0, 9999), vals, 1, model.NewAPM(256, 1024), nil)
	budget := int64(12_000) // column 10 KB + 2 KB of replicas
	r.SetStorageBudget(budget)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 300; i++ {
		a := rng.Int63n(9000)
		q := domain.Range{Lo: a, Hi: a + 999}
		res, _ := r.Select(q)
		equalMultiset(t, res, refSelect(vals, q))
		if int64(r.StorageBytes()) > budget {
			t.Fatalf("query %d: storage %v exceeds budget %d", i, r.StorageBytes(), budget)
		}
		if err := r.Validate(); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	if r.Declined() == 0 {
		t.Error("budget never declined a replica — test not exercising the guard")
	}
}

func TestReplicatorBudgetStillAllowsConvergence(t *testing.T) {
	// With a budget of 2x the column, replication must still make
	// progress (replicas fit) and eventually drop the root.
	vals := denseColumn(1000)
	r := NewReplicator(domain.NewRange(0, 999), vals, 1, model.Always{}, nil)
	r.SetStorageBudget(2000)
	r.Select(domain.NewRange(0, 499))
	_, st := r.Select(domain.NewRange(500, 999))
	if st.Drops != 1 {
		t.Errorf("root not dropped under generous budget (drops=%d)", st.Drops)
	}
	if r.StorageBytes() != 1000 {
		t.Errorf("storage = %v, want 1000", r.StorageBytes())
	}
}

func TestReplicatorZeroBudgetUnlimited(t *testing.T) {
	vals := denseColumn(1000)
	r := NewReplicator(domain.NewRange(0, 999), vals, 1, model.Always{}, nil)
	r.Select(domain.NewRange(200, 399))
	if r.StorageBytes() <= 1000 {
		t.Error("unlimited replicator did not replicate")
	}
	if r.Declined() != 0 {
		t.Error("unlimited replicator declined replicas")
	}
}

func TestReplicatorMaxDepthBoundsTree(t *testing.T) {
	vals := denseColumn(10_000)
	r := NewReplicator(domain.NewRange(0, 9999), vals, 1, model.Always{}, nil)
	r.SetMaxDepth(3)
	// Nested inside-queries would normally deepen the tree each time.
	lo, hi := int64(0), int64(9999)
	for i := 0; i < 8; i++ {
		lo += 500
		hi -= 500
		res, _ := r.Select(domain.Range{Lo: lo, Hi: hi})
		equalMultiset(t, res, refSelect(vals, domain.Range{Lo: lo, Hi: hi}))
		if err := r.Validate(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if d := r.Depth(); d > 3 {
		t.Errorf("depth = %d, want <= 3", d)
	}
	if r.Declined() == 0 {
		t.Error("depth guard never engaged")
	}
}

func TestReplicatorMaxDepthStillMaterializesVirtualLeaves(t *testing.T) {
	// At the depth limit, virtual leaves must still be allowed to
	// materialize whole (it adds no depth) so storage can be released.
	vals := denseColumn(1000)
	r := NewReplicator(domain.NewRange(0, 999), vals, 1, model.Always{}, nil)
	r.SetMaxDepth(1)
	r.Select(domain.NewRange(0, 499)) // splits root at depth 1? root IS depth 1
	// Root (depth 1) cannot split under limit 1: nothing happened.
	if r.SegmentCount() != 1 {
		t.Fatalf("depth-1 limit allowed a split: %d segments", r.SegmentCount())
	}
	r.SetMaxDepth(2)
	r.Select(domain.NewRange(0, 499))            // now splits; children at depth 2
	_, st := r.Select(domain.NewRange(500, 999)) // virtual tail materializes whole
	if st.Drops != 1 {
		t.Errorf("drops = %d, want root drop", st.Drops)
	}
	if r.VirtualCount() != 0 {
		t.Errorf("virtual leaves remain: %d", r.VirtualCount())
	}
}

func TestAutoAPMBoundsTrackSelectionSize(t *testing.T) {
	m := model.NewAutoAPM(64, 1<<20)
	s := model.SegmentInfo{Rng: domain.NewRange(0, 99_999), Bytes: 100_000, TotalBytes: 100_000}
	// Feed queries selecting ~1000 bytes each.
	for i := int64(0); i < 50; i++ {
		q := domain.Range{Lo: i * 1000, Hi: i*1000 + 999}
		m.Decide(q, s)
	}
	mmin, mmax := m.Bounds()
	if mmax < 2000 || mmax > 8000 {
		t.Errorf("Mmax = %d, want ~4x the 1000-byte selections", mmax)
	}
	if mmin < 64 || mmin > mmax/2 {
		t.Errorf("Mmin = %d vs Mmax %d", mmin, mmax)
	}
	if m.Observations() != 50 {
		t.Errorf("observations = %d", m.Observations())
	}
}

func TestAutoAPMCeilAndFloorClamp(t *testing.T) {
	m := model.NewAutoAPM(1000, 4000)
	s := model.SegmentInfo{Rng: domain.NewRange(0, 999_999), Bytes: 1_000_000, TotalBytes: 1_000_000}
	// Huge selections: Mmax must clamp at the ceiling.
	m.Decide(domain.NewRange(0, 899_999), s)
	_, mmax := m.Bounds()
	if mmax > 4000 {
		t.Errorf("Mmax = %d exceeds ceiling", mmax)
	}
	// Tiny selections: Mmin must clamp at the floor.
	m2 := model.NewAutoAPM(1000, 4000)
	m2.Decide(domain.NewRange(5, 6), s)
	mmin, _ := m2.Bounds()
	if mmin < 1000 {
		t.Errorf("Mmin = %d below floor", mmin)
	}
}

func TestAutoAPMPanicsOnBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad AutoAPM bounds accepted")
		}
	}()
	model.NewAutoAPM(10, 10)
}

func TestSegmenterWithAutoAPMConverges(t *testing.T) {
	// End to end: AutoAPM drives adaptive segmentation; segments settle
	// near the derived bounds and results remain exact.
	vals := denseColumn(50_000)
	m := model.NewAutoAPM(64, 1<<20)
	s := NewSegmenter(domain.NewRange(0, 49_999), vals, 1, m, nil)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 400; i++ {
		lo := rng.Int63n(49_000)
		q := domain.Range{Lo: lo, Hi: lo + 999} // ~1 KB selections
		res, _ := s.Select(q)
		equalMultiset(t, res, refSelect(vals, q))
	}
	if err := s.List().Validate(); err != nil {
		t.Fatal(err)
	}
	_, mmax := m.Bounds()
	// Segment sizes touched by queries must respect the derived Mmax
	// within the usual APM slack (estimates vs actuals).
	over := 0
	for _, b := range s.SegmentSizes() {
		if int64(b) > 2*mmax {
			over++
		}
	}
	if over > len(s.SegmentSizes())/4 {
		t.Errorf("%d/%d segments far above derived Mmax %d", over, len(s.SegmentSizes()), mmax)
	}
}

func TestAutoAPMName(t *testing.T) {
	if model.NewAutoAPM(1, 2).Name() != "AutoAPM" {
		t.Error("name")
	}
}
