package core

import (
	"math/rand"
	"testing"

	"selforg/internal/compress"
	"selforg/internal/domain"
	"selforg/internal/model"
)

// TestEncodedSpliceEquivalence drives identical mixed workloads (range
// scans triggering replica materialization, inserts and deletes
// triggering merge-backs) over two compressed Replicators — one with the
// encoded-splice fast paths, one forced onto the decode → re-encode
// path via the package knob — and asserts identical results and layout.
// The splice paths are pure plumbing: they may only change how a
// replica's bytes are produced, never which values or runs exist.
func TestEncodedSpliceEquivalence(t *testing.T) {
	extent := domain.NewRange(0, 9999)
	vals := compressColumn(4000)
	for _, mode := range []compress.Mode{compress.Auto, compress.ForceRLE} {
		run := func(disable bool) ([]domain.Value, string) {
			encodedSpliceDisabled = disable
			defer func() { encodedSpliceDisabled = false }()
			r := NewReplicator(extent, append([]domain.Value(nil), vals...), 4, model.NewAPM(256, 2048), nil)
			r.SetCompression(mode)
			r.SetDeltaPolicy(512, -1) // small budget: merge-backs fire often
			qrng := rand.New(rand.NewSource(99))
			for i := 0; i < 150; i++ {
				if i%3 == 1 {
					if _, err := r.Insert(qrng.Int63n(10000)); err != nil {
						t.Fatal(err)
					}
				}
				if i%7 == 4 {
					if _, _, err := r.Delete(vals[qrng.Intn(len(vals))]); err != nil {
						t.Fatal(err)
					}
				}
				lo := qrng.Int63n(9000)
				r.Select(domain.Range{Lo: lo, Hi: lo + qrng.Int63n(900) + 1})
			}
			res, _ := r.Select(extent)
			return res, r.Layout()
		}
		fastRes, fastLayout := run(false)
		slowRes, slowLayout := run(true)
		if len(fastRes) != len(slowRes) {
			t.Fatalf("%v: %d vs %d values", mode, len(fastRes), len(slowRes))
		}
		for i := range fastRes {
			if fastRes[i] != slowRes[i] {
				t.Fatalf("%v: value %d differs: %d vs %d", mode, i, fastRes[i], slowRes[i])
			}
		}
		if fastLayout != slowLayout {
			t.Fatalf("%v layouts diverged:\n  splice %s\n  decode %s", mode, fastLayout, slowLayout)
		}
	}
}
