package core

import (
	"math/rand"
	"strings"
	"testing"

	"selforg/internal/domain"
	"selforg/internal/model"
)

// figure4Setup mirrors figure3Setup for the replication walkthrough:
// dense 1000-value column over [0, 999], 1 byte/value, APM 100/350.
func figure4Setup(tr Tracer) *Replicator {
	return NewReplicator(domain.NewRange(0, 999), denseColumn(1000), 1, model.NewAPM(100, 350), tr)
}

func TestReplicatorFigure4Walkthrough(t *testing.T) {
	r := figure4Setup(nil)
	if r.StorageBytes() != 1000 {
		t.Fatalf("initial storage = %v", r.StorageBytes())
	}

	// Q1 [300,599]: the result is kept as a replica segment; two virtual
	// segments complement it to cover the domain (Figure 4, state after
	// Q1).
	res, st := r.Select(domain.NewRange(300, 599))
	if len(res) != 300 {
		t.Errorf("Q1 result = %d", len(res))
	}
	if st.ReadBytes != 1000 {
		t.Errorf("Q1 reads = %d, want full column", st.ReadBytes)
	}
	if st.WriteBytes != 300 {
		t.Errorf("Q1 writes = %d, want only the selection (300)", st.WriteBytes)
	}
	if r.StorageBytes() != 1300 {
		t.Errorf("storage after Q1 = %v, want 1300", r.StorageBytes())
	}
	if r.SegmentCount() != 2 || r.VirtualCount() != 2 {
		t.Errorf("after Q1: %d mat / %d vir, want 2/2", r.SegmentCount(), r.VirtualCount())
	}

	// Q2 [100,349] overlaps the virtual segment [0,299] and must scan the
	// entire column again ("both queries Q2 and Q3 overlap with virtual
	// segments and need to scan the entire column in contrast with
	// adaptive segmentation", §5). The overlap piece [100,299] of the
	// virtual leaf is materialized; the [300,349] piece of the
	// materialized replica is too small to replicate (rule 3, SizeS=300
	// <= Mmax).
	res, st = r.Select(domain.NewRange(100, 349))
	if len(res) != 250 {
		t.Errorf("Q2 result = %d", len(res))
	}
	if st.ReadBytes != 1000 {
		t.Errorf("Q2 reads = %d, want full column scan", st.ReadBytes)
	}
	if st.WriteBytes != 200 {
		t.Errorf("Q2 writes = %d, want 200 ([100,299])", st.WriteBytes)
	}

	// Q3 [600,619] hits the virtual tail [600,999] (estimated 400 bytes >
	// Mmax): case 4 splits at the mean (799) and materializes the low
	// half, a super-set of the selection.
	res, st = r.Select(domain.NewRange(600, 619))
	if len(res) != 20 {
		t.Errorf("Q3 result = %d", len(res))
	}
	if st.ReadBytes != 1000 {
		t.Errorf("Q3 reads = %d, want full column scan", st.ReadBytes)
	}
	if st.WriteBytes != 200 {
		t.Errorf("Q3 writes = %d, want 200 ([600,799])", st.WriteBytes)
	}
	if r.StorageBytes() != 1700 {
		t.Errorf("storage after Q3 = %v, want 1700", r.StorageBytes())
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Dump(), "vir") {
		t.Error("dump should show virtual segments")
	}
}

func TestReplicatorRootDropReleasesStorage(t *testing.T) {
	// Cover the whole domain in two halves with the Always model: after
	// the second query the root's children are both materialized, the
	// root is dropped and its 1000 bytes released (§6.1.3: "the initial
	// segment containing the entire column was fully replicated by its
	// materialized children and dropped").
	r := NewReplicator(domain.NewRange(0, 999), denseColumn(1000), 1, model.Always{}, nil)
	_, st := r.Select(domain.NewRange(0, 499))
	if st.Drops != 0 {
		t.Fatalf("premature drop")
	}
	if r.StorageBytes() != 1500 {
		t.Fatalf("storage after half replica = %v", r.StorageBytes())
	}
	_, st = r.Select(domain.NewRange(500, 999))
	if st.Drops != 1 {
		t.Errorf("drops = %d, want 1 (the root)", st.Drops)
	}
	if r.StorageBytes() != 1000 {
		t.Errorf("storage after root drop = %v, want 1000", r.StorageBytes())
	}
	if r.Depth() != 1 {
		t.Errorf("tree depth = %d, want flat forest", r.Depth())
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	// The structure now matches the flat list adaptive segmentation
	// would produce ("the replica tree transforms into a structure very
	// close to the segment list", §6.1.3).
	if r.SegmentCount() != 2 || r.VirtualCount() != 0 {
		t.Errorf("mat/vir = %d/%d, want 2/0", r.SegmentCount(), r.VirtualCount())
	}
}

func TestReplicatorGDVirtualMaterializedAtOnce(t *testing.T) {
	// §6.1.3: "if the segment S is virtual, the GD decision to not split
	// it causes its materialization at once, thus allowing its parent P to
	// be dropped". Force the GD no-split path with a point query on a
	// tiny virtual segment.
	r := NewReplicator(domain.NewRange(0, 9999), denseColumn(10_000), 1, model.NewGaussianDice(5), nil)
	// First materialize [0,8999] to leave a small virtual tail (x = 0.9
	// with sigma = 1 still splits with high probability; retry seeds are
	// not needed as Odds(0.9, 1) = 0.92).
	for i := 0; i < 20; i++ {
		_, st := r.Select(domain.NewRange(0, 8999))
		if st.Splits > 0 {
			break
		}
	}
	// Point query on the virtual tail: x ~ tiny → never splits → the tail
	// is materialized whole and the root dropped.
	_, _ = r.Select(domain.NewRange(9500, 9500))
	if r.VirtualCount() != 0 {
		t.Errorf("virtual segments remain: %d\n%s", r.VirtualCount(), r.Dump())
	}
	if r.StorageBytes() != 10_000 {
		t.Errorf("storage = %v, want column size after root drop", r.StorageBytes())
	}
}

func TestReplicatorResultCorrectAcrossModels(t *testing.T) {
	vals := denseColumn(1000)
	models := []model.Model{
		model.Never{},
		model.Always{},
		model.NewAPM(50, 200),
		model.NewGaussianDice(11),
	}
	queries := []domain.Range{
		domain.NewRange(0, 999),
		domain.NewRange(0, 10),
		domain.NewRange(990, 999),
		domain.NewRange(123, 456),
		domain.NewRange(500, 500),
	}
	for _, m := range models {
		r := NewReplicator(domain.NewRange(0, 999), vals, 4, m, nil)
		for _, q := range queries {
			res, st := r.Select(q)
			equalMultiset(t, res, refSelect(vals, q))
			if st.ResultCount != int64(len(res)) {
				t.Errorf("%s: ResultCount = %d, want %d", m.Name(), st.ResultCount, len(res))
			}
			if err := r.Validate(); err != nil {
				t.Fatalf("%s after %v: %v", m.Name(), q, err)
			}
		}
	}
}

func TestReplicatorPropertyRandomWorkload(t *testing.T) {
	// Property: random workloads keep results exact, the tree valid, and
	// the storage counter equal to the recomputed materialized total.
	rng := rand.New(rand.NewSource(99))
	vals := make([]domain.Value, 3000)
	for i := range vals {
		vals[i] = rng.Int63n(10_000)
	}
	for _, m := range []model.Model{model.NewAPM(30, 120), model.NewGaussianDice(13), model.Always{}} {
		r := NewReplicator(domain.NewRange(0, 9999), vals, 1, m, nil)
		for i := 0; i < 150; i++ {
			a, b := rng.Int63n(10_000), rng.Int63n(10_000)
			if a > b {
				a, b = b, a
			}
			q := domain.Range{Lo: a, Hi: b}
			res, _ := r.Select(q)
			equalMultiset(t, res, refSelect(vals, q))
			if err := r.Validate(); err != nil {
				t.Fatalf("%s query %d: %v", m.Name(), i, err)
			}
			var sum int64
			for _, b := range r.SegmentSizes() {
				sum += int64(b)
			}
			if sum != int64(r.StorageBytes()) {
				t.Fatalf("%s query %d: storage counter %v != recomputed %d",
					m.Name(), i, r.StorageBytes(), sum)
			}
		}
	}
}

func TestReplicatorWritesLessThanSegmenter(t *testing.T) {
	// The headline of §6.1.1: "For all combinations of selectivity and
	// distribution, adaptive replication requires less writes than its
	// counterpart segmentation."
	rng := rand.New(rand.NewSource(31))
	vals := denseColumn(50_000)
	mkQueries := func() []domain.Range {
		qs := make([]domain.Range, 400)
		r2 := rand.New(rand.NewSource(17))
		for i := range qs {
			lo := r2.Int63n(45_000)
			qs[i] = domain.Range{Lo: lo, Hi: lo + 4999}
		}
		return qs
	}
	_ = rng
	seg := NewSegmenter(domain.NewRange(0, 49_999), vals, 4, model.NewAPM(3*1024, 12*1024), nil)
	rep := NewReplicator(domain.NewRange(0, 49_999), vals, 4, model.NewAPM(3*1024, 12*1024), nil)
	var segWrites, repWrites int64
	for _, q := range mkQueries() {
		_, st := seg.Select(q)
		segWrites += st.WriteBytes
	}
	for _, q := range mkQueries() {
		_, st := rep.Select(q)
		repWrites += st.WriteBytes
	}
	if repWrites >= segWrites {
		t.Errorf("replication writes %d >= segmentation writes %d", repWrites, segWrites)
	}
	// §6.1.1 reports a stable reduction around 2.5x for APM; allow a
	// generous band for the scaled-down setting.
	ratio := float64(segWrites) / float64(repWrites)
	if ratio < 1.5 || ratio > 6 {
		t.Errorf("write ratio = %.2f, want within [1.5, 6]", ratio)
	}
}

func TestReplicatorTracerConservation(t *testing.T) {
	tr := &countTracer{}
	vals := denseColumn(2000)
	r := NewReplicator(domain.NewRange(0, 1999), vals, 1, model.Always{}, tr)
	rng := rand.New(rand.NewSource(15))
	for i := 0; i < 80; i++ {
		a, b := rng.Int63n(2000), rng.Int63n(2000)
		if a > b {
			a, b = b, a
		}
		r.Select(domain.Range{Lo: a, Hi: b})
	}
	if tr.liveBytes != int64(r.StorageBytes()) {
		t.Errorf("tracer live bytes %d != storage %v", tr.liveBytes, r.StorageBytes())
	}
}

func TestReplicatorEmptyQueryOutsideExtent(t *testing.T) {
	r := figure4Setup(nil)
	res, st := r.Select(domain.NewRange(5000, 6000))
	if len(res) != 0 || st.ReadBytes != 0 {
		t.Errorf("query outside extent: %d results, %d reads", len(res), st.ReadBytes)
	}
}

func TestReplicatorName(t *testing.T) {
	r := figure4Setup(nil)
	if r.Name() != "APM 100B-350B Repl" {
		t.Errorf("Name = %q", r.Name())
	}
}

func TestReplicatorDepthGrowsThenFlattens(t *testing.T) {
	// Nested inside-queries grow the tree depth; covering the domain with
	// the Always model eventually flattens it back towards a forest.
	r := NewReplicator(domain.NewRange(0, 9999), denseColumn(10_000), 1, model.Always{}, nil)
	r.Select(domain.NewRange(1000, 8999))
	r.Select(domain.NewRange(2000, 7999))
	if r.Depth() < 2 {
		t.Fatalf("depth = %d, want nesting", r.Depth())
	}
	// Sweep the domain so every virtual piece is materialized.
	for lo := int64(0); lo < 10_000; lo += 500 {
		r.Select(domain.Range{Lo: lo, Hi: lo + 499})
	}
	if r.VirtualCount() != 0 {
		t.Errorf("virtual segments remain after sweep: %d", r.VirtualCount())
	}
	if r.Depth() != 1 {
		t.Errorf("depth after sweep = %d, want 1\n%s", r.Depth(), r.Dump())
	}
	res, _ := r.Select(domain.NewRange(0, 9999))
	equalMultiset(t, res, denseColumn(10_000))
}

func TestReplicatorSelectStatsAccumulate(t *testing.T) {
	var acc QueryStats
	r := figure4Setup(nil)
	for _, q := range []domain.Range{{Lo: 0, Hi: 499}, {Lo: 500, Hi: 999}} {
		_, st := r.Select(q)
		acc.Add(st)
	}
	if acc.ReadBytes == 0 || acc.ResultCount != 1000 {
		t.Errorf("accumulated stats wrong: %+v", acc)
	}
}
