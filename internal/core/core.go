// Package core implements the paper's two self-organizing techniques:
// adaptive segmentation (§4, Algorithm 1) and adaptive replication (§5,
// Algorithms 2–5). Both interleave reorganization with query execution —
// "query results are harvested to improve future performance" (§8) — and
// both delegate the split/no-split policy to a segmentation model
// (internal/model: Gaussian Dice or APM).
//
// The package is storage-cost conscious but engine-agnostic: it accounts
// reads and writes in bytes exactly as the paper's simulator does (§6.1)
// and reports segment lifecycle events through an optional Tracer so the
// prototype harness (internal/sky) can layer a buffer pool and a virtual
// disk clock on top.
package core

import (
	"selforg/internal/delta"
	"selforg/internal/domain"
	"selforg/internal/result"
	"selforg/internal/segment"
)

// Tracer observes segment lifecycle events during query processing. The
// prototype harness uses it to drive the buffer pool; tests use it to
// assert on reorganization behaviour. All methods are called synchronously
// during Select.
type Tracer interface {
	// Scan reports that a materialized segment was read top to bottom.
	Scan(segID int64, bytes int64)
	// Materialize reports that a new segment of the given size was written.
	Materialize(segID int64, bytes int64)
	// Drop reports that a materialized segment was released.
	Drop(segID int64, bytes int64)
}

// nopTracer is used when the caller passes a nil Tracer.
type nopTracer struct{}

func (nopTracer) Scan(int64, int64)        {}
func (nopTracer) Materialize(int64, int64) {}
func (nopTracer) Drop(int64, int64)        {}

// QueryStats aggregates the per-query cost measures of the paper's
// evaluation: memory reads (Figures 7, Table 1), memory writes due to
// segment materialization — query results included — (Figures 5, 6),
// reorganization activity, and the compression subsystem's accounting.
//
// Read and write volumes are physical: scanning or materializing a
// compressed segment costs its encoded size. With compression off,
// physical equals logical everywhere and the measures match the paper's
// exactly.
type QueryStats struct {
	ReadBytes   int64 // physical bytes of segments scanned
	WriteBytes  int64 // physical bytes written materializing segments
	ResultCount int64 // tuples in the selection result
	Splits      int   // segments reorganized by this query
	Drops       int   // replica-tree nodes dropped (replication only)
	Recodes     int   // segments (re-)encoded by this query

	// DeltaReadBytes is the overlay volume: the pending delta entries a
	// query actually examined on top of its base segments — the sorted
	// runs' binary-searched windows plus the unsorted tail (also counted
	// in ReadBytes). Merged counts the delta entries a merge-back
	// drained into the base during this operation.
	DeltaReadBytes int64
	Merged         int

	// StorageBytes and CompressedBytes snapshot the column after the
	// query: logical (uncompressed) bytes held vs physical bytes held.
	// Their difference is the storage the compression subsystem saves;
	// they are equal when compression is off.
	StorageBytes    int64
	CompressedBytes int64
}

// Add accumulates the additive measures of other into s and carries the
// storage snapshot of the later query forward.
func (s *QueryStats) Add(other QueryStats) {
	s.ReadBytes += other.ReadBytes
	s.WriteBytes += other.WriteBytes
	s.ResultCount += other.ResultCount
	s.Splits += other.Splits
	s.Drops += other.Drops
	s.Recodes += other.Recodes
	s.DeltaReadBytes += other.DeltaReadBytes
	s.Merged += other.Merged
	s.StorageBytes = other.StorageBytes
	s.CompressedBytes = other.CompressedBytes
}

// Strategy is the common surface of the two self-organizing techniques, as
// consumed by the simulator, the prototype harness and the public facade.
type Strategy interface {
	// Select answers the range query and piggy-backs reorganization on it.
	Select(q domain.Range) ([]domain.Value, QueryStats)
	// Count answers `count(*) where v between q.Lo and q.Hi` without
	// materializing the qualifying values, while still piggy-backing the
	// same reorganization (and compression) decisions a Select would.
	Count(q domain.Range) (int64, QueryStats)
	// SegmentCount returns the number of data-bearing segments.
	SegmentCount() int
	// StorageBytes returns the total materialized physical storage held
	// (compressed footprint where segments are encoded).
	StorageBytes() domain.ByteSize
	// UncompressedBytes returns the logical storage: what StorageBytes
	// would be with compression off.
	UncompressedBytes() domain.ByteSize
	// SegmentSizes lists materialized segment sizes in bytes (Table 2).
	SegmentSizes() []float64
	// Name identifies the strategy ("Segm"/"Repl") with its model.
	Name() string
}

// DeltaStrategy extends Strategy with the MVCC point-write surface of
// the internal/delta subsystem. Both self-organizing strategies
// implement it: writes land in a per-column write store, queries overlay
// the store onto their segment snapshot, and the merge-back drains the
// store into the base through the single-writer reorganization pipeline.
type DeltaStrategy interface {
	Strategy
	// Insert adds one row. The write is visible to every query pinned
	// after it returns and invisible to queries already in flight.
	Insert(v domain.Value) (QueryStats, error)
	// Delete removes one occurrence of v; it reports false (and does
	// nothing) when no visible row carries v. The error reports a write
	// infrastructure failure (a merge-back the delete triggered, a
	// committer fault on durable wrappers) — distinct from the clean
	// "no visible row" refusal, which is false with a nil error.
	Delete(v domain.Value) (bool, QueryStats, error)
	// Update atomically replaces one occurrence of old with new; every
	// snapshot sees either the old row or the new one, never both. The
	// false/error split follows Delete's.
	Update(old, new domain.Value) (bool, QueryStats, error)
	// ApplyOps applies a group-committed batch of writes under one
	// version bump and one snapshot publication — the group-commit
	// apply unit. Per-op acceptance follows the single-op rules; the
	// error only reports a merge-back failure.
	ApplyOps(ops []delta.Op) ([]bool, QueryStats, error)
	// BulkLoad appends a batch of values through the single-writer
	// rewrite pipeline, preserving the adaptive organization.
	BulkLoad(vals []domain.Value) (QueryStats, error)
	// MergeDeltas force-drains the write store into the base through the
	// reorganization pipeline, regardless of the merge thresholds.
	MergeDeltas() (QueryStats, error)
	// SetDeltaPolicy configures the self-organizing merge-back triggers:
	// a write that leaves more than maxBytes pending, or more than
	// ratio × base logical size, drains the store inline (0 disables the
	// respective trigger; both 0 = manual merging only).
	SetDeltaPolicy(maxBytes int64, ratio float64)
	// DeltaStats returns the write store's lifetime counters.
	DeltaStats() delta.Stats
	// EncodingStats returns the per-encoding storage breakdown of the
	// materialized segments.
	EncodingStats() segment.EncodingStats
	// Layout renders the current physical layout for diagnostics: the
	// flat segment list, the replica tree, or the per-shard breakdown.
	Layout() string
	// Validate checks the structural invariants (segment adjacency and
	// coverage, tree tiling). Queries keep a valid column valid; this
	// exists for tests and operational health checks.
	Validate() error
	// GlueSmall merges adjacent segments smaller than minBytes — the §8
	// merging extension. It returns the bytes rewritten and whether the
	// strategy supports gluing at all (replica trees do not).
	GlueSmall(minBytes int64) (int64, bool)
	// PinView pins a consistent read-only MVCC view: writes, splits,
	// bulk loads and merge-backs after the pin are invisible through it.
	PinView() PinnedView
}

// PinnedView is the read surface of a pinned MVCC view — the common
// shape of core.View and the shard router's multi-shard view, so
// facade-level code can dispatch on the interface instead of on the
// concrete strategy type.
type PinnedView interface {
	// Select returns the values in q as of the pin (order unspecified).
	Select(q domain.Range) []domain.Value
	// Count returns the cardinality of q as of the pin.
	Count(q domain.Range) int64
	// Watermark returns the pinned MVCC version: writes stamped above
	// it are invisible.
	Watermark() int64
}

// RopeSelector is the optional zero-copy read capability: strategies
// that assemble their result as a rope of per-segment chunks
// (internal/result) expose it here, so the shard router, the facade and
// the server can splice and stream sub-results instead of flattening at
// every layer. SelectRope must be value- and order-identical to Select;
// Select is exactly SelectRope().Flatten().
type RopeSelector interface {
	// SelectRope answers the range query as a rope of result chunks,
	// piggy-backing the same reorganization a Select would.
	SelectRope(q domain.Range) (*result.Rope, QueryStats)
}

// RopeView is the rope-returning counterpart of PinnedView.Select, for
// pinned MVCC views that can hand back per-segment chunks.
type RopeView interface {
	// SelectRope returns the values in q as of the pin, as a rope.
	SelectRope(q domain.Range) *result.Rope
}

// TreeShaped is the optional capability of strategies organized as a
// replica tree (the Replicator, and the shard router when any shard
// replicates): depth and virtual-segment inspection.
type TreeShaped interface {
	// TreeDepth returns the replica tree depth (max over shards).
	TreeDepth() int
	// VirtualCount returns the number of virtual (unmaterialized)
	// segments (summed over shards).
	VirtualCount() int
}

// StampedWriter is the optional capability behind cross-shard update
// atomicity: stamp a single write with an externally minted column-wide
// commit version (one delta.Clock shared across every shard's store),
// so an update's delete half and insert half — applied to two different
// stores — carry the SAME timestamp.
type StampedWriter interface {
	// ShareDeltaClock rebinds the strategy's write store to a shared
	// commit clock. Call once, at build time, before concurrent writers.
	ShareDeltaClock(c *delta.Clock)
	// InsertStamped inserts v stamped with ver (minted from the shared
	// clock by the coordinator).
	InsertStamped(ver int64, v domain.Value) (QueryStats, error)
	// DeleteStamped deletes one occurrence of v stamped with ver.
	DeleteStamped(ver int64, v domain.Value) (bool, QueryStats, error)
}
