package core

// Pinned MVCC views. A query's visibility rule — pin a (segment
// snapshot, delta watermark) pair at start, overlay the pinned delta
// onto the pinned base — is exposed here as a first-class object, so
// callers can hold a consistent read view across several operations
// (and tests can demonstrate that writes after the pin are invisible).

import (
	"selforg/internal/delta"
	"selforg/internal/domain"
	"selforg/internal/segment"
)

// View is a read-only MVCC view of a column, pinned at creation.
// Reads through it drive no adaptation, no statistics and no tracer
// events.
//
// For segmentation columns the view is fully stable: it holds an
// immutable list snapshot plus an immutable delta snapshot, and stays
// consistent forever, across any number of concurrent writes, splits
// and merge-backs.
//
// For replication columns the base (the replica tree) cannot be pinned
// cheaply — it is a mutable structure behind a lock — so the view pins
// only the delta snapshot. Tree reorganization preserves content, so the
// view stays exact until something changes the tree's content in place —
// a merge-back draining entries into it, or a BulkLoad; from then on it
// is Stale and falls back to read-committed (the current content), which
// Stale reports.
type View struct {
	seg   *Segmenter
	repl  *Replicator
	list  *segment.List
	dsnap *delta.Snapshot
	epoch int64 // replication: the tree's content epoch at pin time
}

// Pin returns a stable MVCC view of the segmented column.
func (s *Segmenter) Pin() *View {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Under mu the (list, delta) pair is consistent — merge-back
	// publishes both sides while holding mu.
	return &View{seg: s, list: s.list.Load(), dsnap: s.delta.Snapshot()}
}

// Pin returns an MVCC view of the replicated column (exact until the
// next merge-back or bulk load; see View).
func (r *Replicator) Pin() *View {
	r.mu.Lock()
	defer r.mu.Unlock()
	return &View{repl: r, dsnap: r.delta.Snapshot(), epoch: r.contentEpoch.Load()}
}

// Watermark returns the version high-water mark pinned by the view:
// writes stamped above it are invisible.
func (v *View) Watermark() int64 { return v.dsnap.Watermark() }

// Stale reports whether an in-place content mutation of the base — a
// merge-back or a BulkLoad — has invalidated the pinned visibility
// (possible only for replication views; segmentation views pin their
// list snapshot and are never stale).
func (v *View) Stale() bool {
	if v.repl == nil {
		return false
	}
	return v.repl.contentEpoch.Load() != v.epoch
}

// Select returns the values matching q as of the pinned view (order
// unspecified). A stale replication view serves the current content
// instead.
func (v *View) Select(q domain.Range) []domain.Value {
	if q.IsEmpty() {
		return nil
	}
	if v.seg != nil {
		var out []domain.Value
		lo, hi := v.list.Overlapping(q)
		for i := lo; i < hi; i++ {
			sg := v.list.Seg(i)
			if domain.Classify(sg.Rng, q) == domain.CoversAll {
				out = sg.AppendValues(out)
			} else {
				out = sg.AppendSelect(q, out)
			}
		}
		return v.dsnap.Overlay(q, out)
	}
	r := v.repl
	r.mu.Lock()
	defer r.mu.Unlock()
	// Re-check staleness under the lock: content mutations happen while
	// holding it, so the decision is race-free here.
	dsnap := v.dsnap
	if r.contentEpoch.Load() != v.epoch {
		dsnap = r.delta.Snapshot()
	}
	var out []domain.Value
	for _, c := range r.getCover(q) {
		out = c.seg.AppendSelect(q, out)
	}
	return dsnap.Overlay(q, out)
}

// Count returns the cardinality of q as of the pinned view.
func (v *View) Count(q domain.Range) int64 {
	if q.IsEmpty() {
		return 0
	}
	if v.seg != nil {
		var n int64
		lo, hi := v.list.Overlapping(q)
		for i := lo; i < hi; i++ {
			sg := v.list.Seg(i)
			if domain.Classify(sg.Rng, q) == domain.CoversAll {
				n += sg.Count()
			} else {
				n += sg.SelectCount(q)
			}
		}
		return n + v.dsnap.CountDelta(q)
	}
	r := v.repl
	r.mu.Lock()
	defer r.mu.Unlock()
	dsnap := v.dsnap
	if r.contentEpoch.Load() != v.epoch {
		dsnap = r.delta.Snapshot()
	}
	var n int64
	for _, c := range r.getCover(q) {
		n += c.seg.SelectCount(q)
	}
	return n + dsnap.CountDelta(q)
}
