package core

// Pinned MVCC views. A query's visibility rule — pin a (base snapshot,
// delta watermark) pair at start, overlay the pinned delta onto the
// pinned base — is exposed here as a first-class object, so callers can
// hold a consistent read view across several operations (and tests can
// demonstrate that writes after the pin are invisible).

import (
	"selforg/internal/delta"
	"selforg/internal/domain"
	"selforg/internal/result"
	"selforg/internal/segment"
)

// View is a read-only MVCC view of a column, pinned at creation.
// Reads through it drive no adaptation, no statistics and no tracer
// events.
//
// Views are fully stable for both strategies: the pinned base — an
// immutable segment-list snapshot for segmentation, an immutable
// persistent-tree root for replication — plus the pinned delta snapshot
// stay consistent forever, across any number of concurrent writes,
// splits, drops, bulk loads and merge-backs. (Before the persistent
// replica tree, replication views degraded to read-committed after a
// merge-back; that fallback is gone.)
type View struct {
	list  *segment.List // segmentation base (nil for replication views)
	root  *node         // replication base (nil for segmentation views)
	dsnap *delta.Snapshot
}

// Pin returns a stable MVCC view of the segmented column.
func (s *Segmenter) Pin() *View {
	list, dsnap := s.eng.Pin()
	return &View{list: list, dsnap: dsnap}
}

// Pin returns a stable MVCC view of the replicated column.
func (r *Replicator) Pin() *View {
	root, dsnap := r.eng.Pin()
	return &View{root: root, dsnap: dsnap}
}

// PinView implements DeltaStrategy.
func (s *Segmenter) PinView() PinnedView { return s.Pin() }

// PinView implements DeltaStrategy.
func (r *Replicator) PinView() PinnedView { return r.Pin() }

// Watermark returns the version high-water mark pinned by the view:
// writes stamped above it are invisible.
func (v *View) Watermark() int64 { return v.dsnap.Watermark() }

// Select returns the values matching q as of the pinned view (order
// unspecified).
func (v *View) Select(q domain.Range) []domain.Value {
	return v.SelectRope(q).Flatten()
}

// SelectRope implements RopeView: Select with the result assembled as a
// rope of per-segment chunks — fully covered segments whose storage form
// holds a materialized slice contribute zero-copy borrowed chunks.
func (v *View) SelectRope(q domain.Range) *result.Rope {
	rope := result.New()
	if q.IsEmpty() {
		return rope
	}
	scan := func(sg *segment.Segment) {
		if domain.Classify(sg.Rng, q) == domain.CoversAll {
			if vals, ok := sg.BorrowValues(); ok {
				rope.AppendBorrowed(vals)
				return
			}
			rope.AppendOwned(sg.AppendValues(nil))
			return
		}
		rope.AppendOwned(sg.AppendSelect(q, nil))
	}
	if v.list != nil {
		lo, hi := v.list.Overlapping(q)
		for i := lo; i < hi; i++ {
			scan(v.list.Seg(i))
		}
	} else {
		for _, c := range getCover(v.root, q) {
			scan(c.seg)
		}
	}
	if v.dsnap.Len() > 0 {
		// The overlay mutates a flat slice; Flatten hands back a mutable,
		// unshared one (borrowed chunks are copied).
		return result.FromOwned(v.dsnap.Overlay(q, rope.Flatten()))
	}
	return rope
}

// Count returns the cardinality of q as of the pinned view.
func (v *View) Count(q domain.Range) int64 {
	if q.IsEmpty() {
		return 0
	}
	var n int64
	if v.list != nil {
		lo, hi := v.list.Overlapping(q)
		for i := lo; i < hi; i++ {
			sg := v.list.Seg(i)
			if domain.Classify(sg.Rng, q) == domain.CoversAll {
				n += sg.Count()
			} else {
				n += sg.SelectCount(q)
			}
		}
	} else {
		for _, c := range getCover(v.root, q) {
			n += c.seg.SelectCount(q)
		}
	}
	return n + v.dsnap.CountDelta(q)
}
