package core

import (
	"math/rand"
	"testing"

	"selforg/internal/domain"
	"selforg/internal/model"
)

func TestSegmenterBulkLoad(t *testing.T) {
	vals := denseColumn(1000)
	s := NewSegmenter(domain.NewRange(0, 999), vals, 1, model.NewAPM(100, 350), nil)
	s.Select(domain.NewRange(300, 599)) // fragment first
	if s.SegmentCount() < 2 {
		t.Fatal("setup: no fragmentation")
	}
	extra := []domain.Value{5, 310, 310, 900}
	st, err := s.BulkLoad(extra)
	if err != nil {
		t.Fatal(err)
	}
	if st.WriteBytes == 0 {
		t.Error("bulk load accounted no writes")
	}
	if err := s.List().Validate(); err != nil {
		t.Fatal(err)
	}
	res, _ := s.Select(domain.NewRange(0, 999))
	equalMultiset(t, res, append(append([]domain.Value{}, denseColumn(1000)...), extra...))
	if s.StorageBytes() != 1004 {
		t.Errorf("storage = %v, want 1004", s.StorageBytes())
	}
}

func TestSegmenterBulkLoadRejectsOutOfExtent(t *testing.T) {
	s := NewSegmenter(domain.NewRange(0, 99), denseColumn(100), 1, model.Never{}, nil)
	if _, err := s.BulkLoad([]domain.Value{500}); err == nil {
		t.Error("out-of-extent value accepted")
	}
	// Nothing must have been mutated.
	if s.StorageBytes() != 100 {
		t.Errorf("partial mutation: %v", s.StorageBytes())
	}
}

func TestSegmenterBulkLoadEmpty(t *testing.T) {
	s := NewSegmenter(domain.NewRange(0, 99), denseColumn(100), 1, model.Never{}, nil)
	st, err := s.BulkLoad(nil)
	if err != nil || st.WriteBytes != 0 {
		t.Errorf("empty load: %+v, %v", st, err)
	}
}

func TestReplicatorBulkLoadUpdatesAllCopies(t *testing.T) {
	vals := denseColumn(1000)
	r := NewReplicator(domain.NewRange(0, 999), vals, 1, model.NewAPM(100, 350), nil)
	r.Select(domain.NewRange(300, 599)) // creates a materialized replica of [300,599]
	if r.SegmentCount() < 2 {
		t.Fatal("setup: no replica")
	}
	before := int64(r.StorageBytes())
	// 310 lands in both the root copy and the replica: two copies, 2 bytes.
	st, err := r.BulkLoad([]domain.Value{310})
	if err != nil {
		t.Fatal(err)
	}
	if int64(r.StorageBytes())-before != 2 {
		t.Errorf("storage grew by %d, want 2 (two copies)", int64(r.StorageBytes())-before)
	}
	if st.WriteBytes == 0 {
		t.Error("no writes accounted")
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	// The value must appear exactly once in query results (cover picks
	// one copy per range).
	res, _ := r.Select(domain.NewRange(310, 310))
	if len(res) != 2 { // original 310 + loaded 310
		t.Errorf("got %d copies of 310 in result, want 2", len(res))
	}
}

func TestReplicatorBulkLoadVirtualEstimates(t *testing.T) {
	vals := denseColumn(1000)
	r := NewReplicator(domain.NewRange(0, 999), vals, 1, model.NewAPM(100, 350), nil)
	r.Select(domain.NewRange(300, 599))
	if r.VirtualCount() == 0 {
		t.Fatal("setup: no virtual segments")
	}
	// Load into a virtual region: only the root copy is materialized, so
	// storage grows by 1, and the virtual estimate is bumped.
	before := int64(r.StorageBytes())
	if _, err := r.BulkLoad([]domain.Value{50}); err != nil {
		t.Fatal(err)
	}
	if int64(r.StorageBytes())-before != 1 {
		t.Errorf("storage grew by %d, want 1", int64(r.StorageBytes())-before)
	}
	res, _ := r.Select(domain.NewRange(0, 999))
	if len(res) != 1001 {
		t.Errorf("result = %d rows, want 1001", len(res))
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReplicatorBulkLoadRejectsOutOfExtent(t *testing.T) {
	r := NewReplicator(domain.NewRange(0, 99), denseColumn(100), 1, model.Never{}, nil)
	if _, err := r.BulkLoad([]domain.Value{-1}); err == nil {
		t.Error("out-of-extent value accepted")
	}
}

func TestBulkLoadThenAdaptProperty(t *testing.T) {
	// Property: interleaved loads and queries keep both strategies exact
	// and structurally valid.
	rng := rand.New(rand.NewSource(17))
	dom := domain.NewRange(0, 9999)
	initial := make([]domain.Value, 2000)
	for i := range initial {
		initial[i] = rng.Int63n(10_000)
	}
	reference := append([]domain.Value(nil), initial...)

	seg := NewSegmenter(dom, append([]domain.Value(nil), initial...), 1, model.NewAPM(64, 256), nil)
	rep := NewReplicator(dom, append([]domain.Value(nil), initial...), 1, model.NewAPM(64, 256), nil)

	for step := 0; step < 40; step++ {
		if step%5 == 4 {
			batch := make([]domain.Value, 50)
			for i := range batch {
				batch[i] = rng.Int63n(10_000)
			}
			reference = append(reference, batch...)
			if _, err := seg.BulkLoad(batch); err != nil {
				t.Fatal(err)
			}
			if _, err := rep.BulkLoad(batch); err != nil {
				t.Fatal(err)
			}
			continue
		}
		a := rng.Int63n(9000)
		q := domain.Range{Lo: a, Hi: a + rng.Int63n(1000)}
		want := refSelect(reference, q)
		got1, _ := seg.Select(q)
		got2, _ := rep.Select(q)
		equalMultiset(t, got1, want)
		equalMultiset(t, got2, want)
		if err := seg.List().Validate(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if err := rep.Validate(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
}

func TestBulkLoadTracerConsistency(t *testing.T) {
	tr := &countTracer{}
	s := NewSegmenter(domain.NewRange(0, 999), denseColumn(1000), 1, model.Always{}, tr)
	s.Select(domain.NewRange(200, 499))
	if _, err := s.BulkLoad([]domain.Value{250, 600}); err != nil {
		t.Fatal(err)
	}
	if tr.liveBytes != int64(s.StorageBytes()) {
		t.Errorf("tracer live %d != storage %v", tr.liveBytes, s.StorageBytes())
	}
	rt := &countTracer{}
	r := NewReplicator(domain.NewRange(0, 999), denseColumn(1000), 1, model.Always{}, rt)
	r.Select(domain.NewRange(200, 499))
	if _, err := r.BulkLoad([]domain.Value{250, 600}); err != nil {
		t.Fatal(err)
	}
	if rt.liveBytes != int64(r.StorageBytes()) {
		t.Errorf("replicator tracer live %d != storage %v", rt.liveBytes, r.StorageBytes())
	}
}
