package core

import (
	"math/rand"
	"sort"
	"testing"

	"selforg/internal/domain"
	"selforg/internal/model"
)

// denseColumn returns values 0..n-1, one per domain point of [0, n-1].
func denseColumn(n int64) []domain.Value {
	vs := make([]domain.Value, n)
	for i := range vs {
		vs[i] = int64(i)
	}
	return vs
}

func refSelect(vals []domain.Value, q domain.Range) []domain.Value {
	var out []domain.Value
	for _, v := range vals {
		if q.Contains(v) {
			out = append(out, v)
		}
	}
	return out
}

func asSortedInts(vs []domain.Value) []int64 {
	out := make([]int64, len(vs))
	for i, v := range vs {
		out[i] = v
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalMultiset(t *testing.T, got, want []domain.Value) {
	t.Helper()
	g, w := asSortedInts(got), asSortedInts(want)
	if len(g) != len(w) {
		t.Fatalf("result size %d, want %d", len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("result[%d] = %d, want %d", i, g[i], w[i])
		}
	}
}

// countTracer verifies Tracer plumbing and storage conservation.
type countTracer struct {
	scans, mats, drops int
	liveBytes          int64
}

func (c *countTracer) Scan(_, _ int64) { c.scans++ }
func (c *countTracer) Materialize(_, b int64) {
	c.mats++
	c.liveBytes += b
}
func (c *countTracer) Drop(_, b int64) {
	c.drops++
	c.liveBytes -= b
}

// figure3Setup builds the worked example of Figure 3 (see test comments):
// dense 1000-value column over [0, 999], 1 byte/value, APM 100/350.
func figure3Setup(tr Tracer) *Segmenter {
	return NewSegmenter(domain.NewRange(0, 999), denseColumn(1000), 1, model.NewAPM(100, 350), tr)
}

func TestSegmenterFigure3Walkthrough(t *testing.T) {
	s := figure3Setup(nil)
	if s.SegmentCount() != 1 {
		t.Fatalf("initial state S0 must be a single segment, got %d", s.SegmentCount())
	}

	// Q1 [300,599]: all three pieces (300/300/400 bytes) >= Mmin=100 →
	// rule 2 reorganizes the column into three segments.
	res, st := s.Select(domain.NewRange(300, 599))
	if len(res) != 300 {
		t.Errorf("Q1 result = %d, want 300", len(res))
	}
	if s.SegmentCount() != 3 {
		t.Fatalf("after Q1: %d segments, want 3\n%s", s.SegmentCount(), s.List().Dump())
	}
	if st.ReadBytes != 1000 || st.WriteBytes != 1000 {
		t.Errorf("Q1 reads/writes = %d/%d, want 1000/1000", st.ReadBytes, st.WriteBytes)
	}

	// Q2 [100,349]: splits the first sub-segment ([0,299] → 100+200) but
	// not the second ([300,599]: the 50-byte selection piece is under
	// Mmin and SizeS=300 <= Mmax → rule 3 leaves it intact). Q2 must not
	// scan the last segment [600,999] — it "immediately benefits from the
	// reorganization triggered by the first query".
	res, st = s.Select(domain.NewRange(100, 349))
	if len(res) != 250 {
		t.Errorf("Q2 result = %d, want 250", len(res))
	}
	if s.SegmentCount() != 4 {
		t.Fatalf("after Q2: %d segments, want 4\n%s", s.SegmentCount(), s.List().Dump())
	}
	if st.ReadBytes != 600 {
		t.Errorf("Q2 reads = %d, want 600 (must skip [600,999])", st.ReadBytes)
	}
	if st.WriteBytes != 300 {
		t.Errorf("Q2 writes = %d, want 300 (only [0,299] reorganized)", st.WriteBytes)
	}

	// Q3 [600,619]: small selectivity on the last segment (400 bytes >
	// Mmax): the border split would cut a 20-byte piece < Mmin, so rule 3
	// splits at the mean value of the segment (799).
	res, st = s.Select(domain.NewRange(600, 619))
	if len(res) != 20 {
		t.Errorf("Q3 result = %d, want 20", len(res))
	}
	if s.SegmentCount() != 5 {
		t.Fatalf("after Q3: %d segments, want 5\n%s", s.SegmentCount(), s.List().Dump())
	}
	last := s.List().Seg(3)
	if !last.Rng.Equal(domain.NewRange(600, 799)) {
		t.Errorf("mean split wrong: segment 3 = %v, want [600, 799]", last.Rng)
	}
	if err := s.List().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSegmenterResultCorrectAcrossModels(t *testing.T) {
	vals := denseColumn(1000)
	models := []model.Model{
		model.Never{},
		model.Always{},
		model.NewAPM(50, 200),
		model.NewGaussianDice(7),
	}
	queries := []domain.Range{
		domain.NewRange(0, 999),
		domain.NewRange(0, 10),
		domain.NewRange(990, 999),
		domain.NewRange(123, 456),
		domain.NewRange(500, 500),
	}
	for _, m := range models {
		s := NewSegmenter(domain.NewRange(0, 999), vals, 4, m, nil)
		for _, q := range queries {
			res, st := s.Select(q)
			equalMultiset(t, res, refSelect(vals, q))
			if st.ResultCount != int64(len(res)) {
				t.Errorf("%s: ResultCount = %d, want %d", m.Name(), st.ResultCount, len(res))
			}
			if err := s.List().Validate(); err != nil {
				t.Fatalf("%s after %v: %v", m.Name(), q, err)
			}
		}
	}
}

func TestSegmenterNeverModelFullScans(t *testing.T) {
	vals := denseColumn(100)
	s := NewSegmenter(domain.NewRange(0, 99), vals, 4, model.Never{}, nil)
	_, st := s.Select(domain.NewRange(10, 19))
	if st.ReadBytes != 400 {
		t.Errorf("NoSegm read = %d, want full column 400", st.ReadBytes)
	}
	if st.WriteBytes != 0 || st.Splits != 0 {
		t.Errorf("NoSegm must not reorganize: %+v", st)
	}
	if s.SegmentCount() != 1 {
		t.Errorf("NoSegm segment count = %d", s.SegmentCount())
	}
}

func TestSegmenterStorageConstant(t *testing.T) {
	// Adaptive segmentation reorganizes in place: storage stays exactly
	// the column size no matter how many splits happen.
	vals := denseColumn(2000)
	s := NewSegmenter(domain.NewRange(0, 1999), vals, 4, model.Always{}, nil)
	want := s.StorageBytes()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		a, b := rng.Int63n(2000), rng.Int63n(2000)
		if a > b {
			a, b = b, a
		}
		s.Select(domain.Range{Lo: a, Hi: b})
		if s.StorageBytes() != want {
			t.Fatalf("storage changed to %v after query %d", s.StorageBytes(), i)
		}
	}
	if err := s.List().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSegmenterReadsShrinkUnderRepetition(t *testing.T) {
	// The central benefit claim (§6.1.2): repeated queries over the same
	// range stop scanning the whole column once segmentation converges.
	vals := denseColumn(10_000)
	s := NewSegmenter(domain.NewRange(0, 9999), vals, 4, model.NewAPM(64, 512), nil)
	q := domain.NewRange(4000, 4999)
	_, first := s.Select(q)
	var last QueryStats
	for i := 0; i < 5; i++ {
		_, last = s.Select(q)
	}
	if first.ReadBytes != 40_000 {
		t.Errorf("first read = %d, want full column", first.ReadBytes)
	}
	if last.ReadBytes >= first.ReadBytes {
		t.Errorf("reads did not shrink: first %d, later %d", first.ReadBytes, last.ReadBytes)
	}
	// Converged reads equal the result-bearing segment alone.
	if last.ReadBytes != 4000 {
		t.Errorf("converged reads = %d, want 4000", last.ReadBytes)
	}
	if last.WriteBytes != 0 {
		t.Errorf("converged writes = %d, want 0", last.WriteBytes)
	}
}

func TestSegmenterTracerConservation(t *testing.T) {
	tr := &countTracer{}
	vals := denseColumn(1000)
	s := NewSegmenter(domain.NewRange(0, 999), vals, 1, model.Always{}, tr)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 50; i++ {
		a, b := rng.Int63n(1000), rng.Int63n(1000)
		if a > b {
			a, b = b, a
		}
		s.Select(domain.Range{Lo: a, Hi: b})
	}
	if tr.liveBytes != int64(s.StorageBytes()) {
		t.Errorf("tracer live bytes %d != storage %v", tr.liveBytes, s.StorageBytes())
	}
	if tr.mats == 0 || tr.scans == 0 || tr.drops == 0 {
		t.Errorf("tracer events missing: %+v", tr)
	}
}

func TestSegmenterAPMSizesConverge(t *testing.T) {
	// §3.2.2: "sizes of segments touched by queries converge relatively
	// fast to the interval Mmin <= SizeS <= Mmax". Hammer the column with
	// random queries, then check every touched segment obeys the bounds.
	const elem = 4
	mmin, mmax := int64(256), int64(1024)
	vals := denseColumn(8192)
	s := NewSegmenter(domain.NewRange(0, 8191), vals, elem, model.NewAPM(mmin, mmax), nil)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 3000; i++ {
		lo := rng.Int63n(8192 - 64)
		s.Select(domain.Range{Lo: lo, Hi: lo + 63})
	}
	for i := 0; i < s.List().Len(); i++ {
		b := int64(s.List().Seg(i).Bytes(elem))
		if b > mmax {
			t.Errorf("segment %d size %d exceeds Mmax %d", i, b, mmax)
		}
	}
}

func TestSegmenterGlue(t *testing.T) {
	vals := denseColumn(1000)
	s := NewSegmenter(domain.NewRange(0, 999), vals, 1, model.Always{}, nil)
	s.Select(domain.NewRange(100, 199))
	s.Select(domain.NewRange(500, 599))
	if s.SegmentCount() < 4 {
		t.Fatalf("setup failed: %d segments", s.SegmentCount())
	}
	before := s.SegmentCount()
	rewritten := s.Glue(0, 1)
	if s.SegmentCount() != before-1 {
		t.Errorf("glue did not merge: %d", s.SegmentCount())
	}
	if rewritten <= 0 {
		t.Errorf("glue rewrote %d bytes", rewritten)
	}
	if err := s.List().Validate(); err != nil {
		t.Fatal(err)
	}
	res, _ := s.Select(domain.NewRange(0, 999))
	equalMultiset(t, res, vals)
}

func TestSegmenterGlueSmall(t *testing.T) {
	// Fragment the column with Always, then merge everything below a
	// threshold; afterwards at most one segment below the threshold may
	// remain per run boundary, and data must be intact.
	vals := denseColumn(4096)
	s := NewSegmenter(domain.NewRange(0, 4095), vals, 1, model.Always{}, nil)
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 200; i++ {
		lo := rng.Int63n(4000)
		s.Select(domain.Range{Lo: lo, Hi: lo + rng.Int63n(90) + 5})
	}
	frag := s.SegmentCount()
	if frag < 20 {
		t.Fatalf("expected heavy fragmentation, got %d segments", frag)
	}
	s.GlueSmall(64)
	if s.SegmentCount() >= frag {
		t.Errorf("GlueSmall did not reduce segments: %d -> %d", frag, s.SegmentCount())
	}
	if err := s.List().Validate(); err != nil {
		t.Fatal(err)
	}
	res, _ := s.Select(domain.NewRange(0, 4095))
	equalMultiset(t, res, vals)
}

func TestSegmenterPropertyRandomWorkload(t *testing.T) {
	// Property: under random queries and every model, results always equal
	// the reference filter and the meta-index stays valid.
	rng := rand.New(rand.NewSource(77))
	vals := make([]domain.Value, 3000)
	for i := range vals {
		vals[i] = rng.Int63n(10_000)
	}
	for _, m := range []model.Model{model.NewAPM(30, 120), model.NewGaussianDice(3), model.Always{}} {
		s := NewSegmenter(domain.NewRange(0, 9999), vals, 1, m, nil)
		for i := 0; i < 150; i++ {
			a, b := rng.Int63n(10_000), rng.Int63n(10_000)
			if a > b {
				a, b = b, a
			}
			q := domain.Range{Lo: a, Hi: b}
			res, _ := s.Select(q)
			equalMultiset(t, res, refSelect(vals, q))
			if err := s.List().Validate(); err != nil {
				t.Fatalf("%s query %d: %v", m.Name(), i, err)
			}
		}
	}
}

func TestSegmenterName(t *testing.T) {
	s := figure3Setup(nil)
	if s.Name() != "APM 100B-350B Segm" {
		t.Errorf("Name = %q", s.Name())
	}
}

func TestSegmenterSegmentSizes(t *testing.T) {
	s := figure3Setup(nil)
	s.Select(domain.NewRange(300, 599))
	sizes := s.SegmentSizes()
	if len(sizes) != 3 {
		t.Fatalf("sizes = %v", sizes)
	}
	total := 0.0
	for _, b := range sizes {
		total += b
	}
	if total != 1000 {
		t.Errorf("total size = %v, want 1000", total)
	}
}
