package core

// Tests for the persistent (path-copying) replica tree: lock-free read
// path, batched delta merge rewrites, and snapshot sharing.

import (
	"math/rand"
	"sync"
	"testing"

	"selforg/internal/domain"
	"selforg/internal/model"
)

// TestReplicatorMergeRewritesEachReplicaOnce is the delta-aware
// merge-back acceptance test: a batch of tombstones (and inserts)
// covering one replica must trigger exactly one rewrite of that replica
// — one Materialize event per touched materialized node per merge, not
// one per tombstone.
func TestReplicatorMergeRewritesEachReplicaOnce(t *testing.T) {
	tr := &countTracer{}
	r := NewReplicator(domain.NewRange(0, 999), denseColumn(1000), 1, model.Always{}, tr)
	// Build a two-level tree: root + [0,499]/[500,999] replicas, then
	// sub-replicas of [0,249] — deep paths multiply the copies a naive
	// per-tombstone rewrite would pay.
	r.Select(domain.NewRange(0, 499))
	r.Select(domain.NewRange(0, 249))
	r.Select(domain.NewRange(500, 999))
	matNodes := r.SegmentCount()
	if matNodes < 3 {
		t.Fatalf("setup built only %d materialized replicas", matNodes)
	}

	// 40 tombstones + 10 inserts, all inside [0,249]: the value's path
	// crosses every materialized copy of that range.
	for v := int64(0); v < 40; v++ {
		if ok, _, _ := r.Delete(v); !ok {
			t.Fatalf("delete %d refused", v)
		}
	}
	for v := int64(0); v < 10; v++ {
		if _, err := r.Insert(200 + v); err != nil {
			t.Fatal(err)
		}
	}
	// Count the copies of [0,249] (the touched path) before merging.
	touched := 0
	sentinel := r.eng.Base()
	sentinel.walk(func(n *node, _ int) {
		if n != sentinel && !n.seg.Virtual && n.seg.Rng.Overlaps(domain.NewRange(0, 249)) {
			touched++
		}
	})
	matsBefore := tr.mats
	if _, err := r.MergeDeltas(); err != nil {
		t.Fatal(err)
	}
	rewrites := tr.mats - matsBefore
	if rewrites != touched {
		t.Fatalf("merge of 50 entries rewrote %d replicas, want one rewrite per touched replica (%d)",
			rewrites, touched)
	}
	got, _ := r.Select(domain.NewRange(0, 999))
	if len(got) != 1000-40+10 {
		t.Fatalf("post-merge cardinality = %d, want %d", len(got), 1000-40+10)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestReplicatorConvergedCoverSkipsWriter pins the zero-lock contract:
// once a query's cover is fully materialized and leaf-aligned, the read
// path detects that no model in the system could reorganize anything and
// never touches the writer pipeline.
func TestReplicatorConvergedCoverSkipsWriter(t *testing.T) {
	r := NewReplicator(domain.NewRange(0, 999), denseColumn(1000), 1, model.Always{}, nil)
	q := domain.NewRange(250, 749)
	r.Select(q) // splits the root and materializes [250,749]
	root, _ := r.eng.Pin()
	cover := getCover(root, q)
	if len(cover) != 1 || cover[0].seg.Virtual {
		t.Fatalf("query not converged to one materialized cover: %v", cover)
	}
	if coverNeedsAdaptation(cover, q) {
		t.Fatal("aligned materialized cover still reports adaptation work")
	}
	// And a misaligned query on the same tree does.
	q2 := domain.NewRange(200, 300)
	cover2 := getCover(root, q2)
	if !coverNeedsAdaptation(cover2, q2) {
		t.Fatal("partially overlapping query reports no adaptation work")
	}
}

// TestReplicatorSnapshotSharing checks the path-copying economics: a
// reorganization publishes a new root that shares every untouched
// subtree with the old one.
func TestReplicatorSnapshotSharing(t *testing.T) {
	r := NewReplicator(domain.NewRange(0, 9999), denseColumn(10_000), 1, model.Always{}, nil)
	r.Select(domain.NewRange(0, 4999))
	r.Select(domain.NewRange(5000, 9999))
	before := r.eng.Base()
	// Locate the [5000,9999] node in the old tree.
	var oldHi *node
	before.walk(func(n *node, _ int) {
		if n != before && n.seg.Rng == domain.NewRange(5000, 9999) {
			oldHi = n
		}
	})
	if oldHi == nil {
		t.Fatal("no [5000,9999] replica")
	}
	r.Select(domain.NewRange(1000, 1999)) // reorganizes the low half only
	after := r.eng.Base()
	if after == before {
		t.Fatal("reorganization did not publish a new root")
	}
	found := false
	after.walk(func(n *node, _ int) {
		if n == oldHi {
			found = true
		}
	})
	if !found {
		t.Fatal("untouched subtree was copied instead of shared")
	}
}

// TestReplicatorPinnedScanDuringReorganization holds a pinned root
// across heavy reorganization and merges: the pinned tree must keep
// answering exactly as of the pin.
func TestReplicatorPinnedScanDuringReorganization(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	vals := make([]domain.Value, 5000)
	for i := range vals {
		vals[i] = rng.Int63n(10_000)
	}
	r := NewReplicator(domain.NewRange(0, 9999), vals, 4, model.NewAPM(256, 1024), nil)
	v := r.Pin()
	want := v.Select(domain.NewRange(0, 9999))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 50; i++ {
				lo := g.Int63n(9000)
				r.Select(domain.Range{Lo: lo, Hi: lo + 999})
				if i%10 == 0 {
					r.Insert(g.Int63n(10_000))
				}
			}
			r.MergeDeltas()
		}(w)
	}
	wg.Wait()
	got := v.Select(domain.NewRange(0, 9999))
	equalMultiset(t, got, want)
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}
