package core

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"selforg/internal/compress"
	"selforg/internal/domain"
	"selforg/internal/model"
	"selforg/internal/obs"
	"selforg/internal/result"
	"selforg/internal/segment"
)

// Replicator implements adaptive replication (§5): segments are organized
// in a replica tree of materialized and virtual segments; query results are
// retained as materialized replicas ("lazy materialization", §3.3), and a
// segment whose children are all materialized is dropped to release
// storage (Algorithm 5).
//
// # Concurrency model
//
// The replica tree is persistent: nodes are immutable after publication
// and every mutation — replica creation, materialization, re-encoding,
// drops, bulk loads, delta merge-backs — path-copies from the touched
// node up to the sentinel and publishes the new root through the shared
// snapshot-publication engine. A query therefore takes **no lock at
// all** on its read path: it pins a consistent (root, delta) pair
// lock-free, computes its cover and scans it on the pinned snapshot, and
// overlays the pinned delta — concurrent scanners never serialize, no
// matter how much reorganization runs beside them.
//
// The adaptation half of the paper's algorithms (model decisions, replica
// materialization, drops) is hoisted out of the read path onto the
// single-writer pipeline: a query that detects adaptation opportunities
// in its cover enqueues its range and the queue is drained behind the
// writer mutex with TryLock semantics — a scanner never *blocks* on the
// mutex; if another query (or a bulk load, or a merge-back) holds it,
// the range stays queued and the current holder (or the next adapting
// query) picks it up. Single-threaded use always wins the TryLock, so
// serial behaviour — results, stats, layout evolution — is bit-for-bit
// identical to the fully locked implementation this replaces.
//
// With SetParallelism(n > 1) the result extraction of one query fans out
// across the (disjoint) covering segments on a bounded worker pool, with
// per-worker stats deltas merged in cover order. An attached Tracer must
// be safe for concurrent use when multiple goroutines query the column
// (scan events are no longer serialized by a query lock).
type Replicator struct {
	// eng owns the published (root, delta) pair, the writer mutex and
	// the merge-back protocol, shared with the Segmenter.
	eng engine[node]
	// mod is the stateful segmentation model (GD owns a random stream,
	// AutoAPM tunes its bounds); consulted only under eng.Mu.
	mod      model.Model
	tracer   Tracer
	elemSize int64
	codec    atomic.Pointer[compress.Codec] // nil = compression off
	// totalBytes is the original logical column size — GD's TotSize.
	totalBytes atomic.Int64
	// storage tracks logical materialized bytes currently held
	// (Figures 8, 9); stored tracks the physical (compressed) footprint.
	// The two are equal with compression off. Atomics so lock-free
	// readers can fill their stats snapshot.
	storage atomic.Int64
	stored  atomic.Int64
	// budget bounds storage (0 = unlimited): the §8 extension "optimal
	// replica configuration in the presence of storage limitations". New
	// replicas whose estimated size would exceed the budget are declined;
	// queries stay correct, served from the covering ancestors. Written
	// and read under eng.Mu.
	budget int64
	// maxDepth bounds the replica tree depth (0 = unlimited), the other
	// §6.1.3/§8 open knob. At the limit, leaves are no longer split;
	// virtual leaves may still materialize whole (which adds no depth).
	// Written and read under eng.Mu.
	maxDepth int
	// declined counts replicas refused by the budget or depth guards.
	declined atomic.Int64
	// par is the per-query extraction fan-out width (0 = adaptive,
	// 1 = serial, n > 1 = bounded at n).
	par atomic.Int32
	// adapt queues the ranges whose adaptation is still pending — the
	// hand-off from the lock-free read path to the writer pipeline.
	adapt adaptQueue
	// ob is the resolved observability handle set (nil = uninstrumented;
	// the query path pays one atomic load either way).
	ob atomic.Pointer[strategyObs]
}

// adaptQueue is the tiny pending-adaptation buffer between the lock-free
// read path and the single-writer pipeline. Its mutex guards only the
// slice append/swap — never any scan, model or tree work — and queries
// with no adaptation work never touch it: emptiness is answered from an
// atomic counter, so the converged scan path stays zero-lock.
type adaptQueue struct {
	mu      sync.Mutex
	pending []domain.Range
	n       atomic.Int64 // len(pending), readable without the mutex
}

func (a *adaptQueue) add(q domain.Range) {
	a.mu.Lock()
	a.pending = append(a.pending, q)
	a.n.Store(int64(len(a.pending)))
	a.mu.Unlock()
}

func (a *adaptQueue) drain() []domain.Range {
	a.mu.Lock()
	p := a.pending
	a.pending = nil
	a.n.Store(0)
	a.mu.Unlock()
	return p
}

func (a *adaptQueue) empty() bool { return a.n.Load() == 0 }

// NewReplicator builds the strategy over a fresh one-segment column (the
// replica-tree root) covering extent and holding vals. tracer may be nil.
func NewReplicator(extent domain.Range, vals []domain.Value, elemSize int64, m model.Model, tracer Tracer) *Replicator {
	if elemSize < 1 {
		panic("core: elemSize must be positive")
	}
	if tracer == nil {
		tracer = nopTracer{}
	}
	root := &node{seg: segment.NewMaterialized(extent, vals)}
	// sentinel is a permanent virtual holder of the forest. The paper's
	// tree root (the whole column) can itself be dropped once fully
	// replicated ("the initial segment containing the entire column was
	// fully replicated by its materialized children and dropped", §6.1.3);
	// the sentinel keeps the remaining forest addressable and is exempt
	// from dropping.
	sentinel := &node{seg: segment.NewVirtual(extent, int64(len(vals))), children: []*node{root}}
	r := &Replicator{
		mod:      m,
		tracer:   tracer,
		elemSize: elemSize,
	}
	r.eng.initEngine(sentinel, elemSize)
	bytes := int64(len(vals)) * elemSize
	r.totalBytes.Store(bytes)
	r.storage.Store(bytes)
	r.stored.Store(bytes)
	r.tracer.Materialize(root.seg.ID, bytes)
	return r
}

// Name implements Strategy.
func (r *Replicator) Name() string { return r.mod.Name() + " Repl" }

// SetParallelism sets the bounded worker count one query may fan its
// covering-segment extraction out to. 0 (the default) picks the fan-out
// per query from the cover's segment count and scan volume; 1 forces
// serial; n > 1 bounds the fan-out at n.
func (r *Replicator) SetParallelism(n int) {
	if n < 0 {
		n = 1
	}
	r.par.Store(int32(n))
}

// SetObserver attaches (or, with a nil observer, detaches) the
// observability layer; see Segmenter.SetObserver. The replication
// surface adds the adaptation-queue depth and declined-replica gauges.
// All gauge callbacks are lock-free (atomics and immutable snapshots),
// so a scrape never orders against the writer pipeline.
func (r *Replicator) SetObserver(ob *obs.Observer, shardIdx int) {
	if ob == nil {
		r.ob.Store(nil)
		return
	}
	so := newStrategyObs(ob, "repl", shardIdx)
	r.ob.Store(so)
	r.eng.setPublishCounter(ob.Registry.Counter(so.seriesName("selforg_publications_total")))
	reg := ob.Registry
	reg.GaugeFunc(so.seriesName("selforg_delta_pending_bytes"), r.eng.Delta.PendingBytes)
	reg.GaugeFunc(so.seriesName("selforg_storage_bytes"), r.stored.Load)
	reg.GaugeFunc(so.seriesName("selforg_storage_uncompressed_bytes"), r.storage.Load)
	reg.GaugeFunc(so.seriesName("selforg_segments"), func() int64 {
		return int64(r.SegmentCount())
	})
	reg.GaugeFunc(so.seriesName("selforg_adapt_queue_depth"), r.adapt.n.Load)
	reg.GaugeFunc(so.seriesName("selforg_replicas_declined"), r.declined.Load)
}

// SetCompression attaches the compression subsystem: new replicas are
// encoded as they materialize, and the existing materialized tree is
// re-encoded copy-on-write and republished, so concurrent readers keep
// their consistent snapshot.
func (r *Replicator) SetCompression(mode compress.Mode) {
	r.eng.Mu.Lock()
	defer r.eng.Mu.Unlock()
	codec := compress.NewCodec(mode, r.elemSize)
	r.codec.Store(codec)
	if !codec.Enabled() {
		return
	}
	var delta int64
	var encode func(n *node) *node
	encode = func(n *node) *node {
		kids := n.children
		changed := false
		for i, c := range n.children {
			if nc := encode(c); nc != c {
				if !changed {
					kids = append([]*node(nil), n.children...)
					changed = true
				}
				kids[i] = nc
			}
		}
		seg := n.seg
		if !seg.Virtual && seg.Enc == nil {
			before := int64(seg.StoredBytes(r.elemSize))
			cp := seg.EncodedCopy(codec)
			if cp.Enc != nil {
				delta += int64(cp.StoredBytes(r.elemSize)) - before
				seg = cp
			}
		}
		if seg == n.seg && !changed {
			return n
		}
		return &node{seg: seg, children: kids}
	}
	sentinel := r.eng.Base()
	next := encode(sentinel)
	if next != sentinel {
		r.eng.Publish(next)
		r.stored.Add(delta)
	}
}

// Compression returns the active compression mode.
func (r *Replicator) Compression() compress.Mode { return r.codec.Load().Mode() }

// SetStorageBudget bounds the materialized replica storage in bytes
// (0 = unlimited). Replicas that would exceed the budget are declined.
func (r *Replicator) SetStorageBudget(maxBytes int64) {
	r.eng.Mu.Lock()
	defer r.eng.Mu.Unlock()
	r.budget = maxBytes
}

// SetMaxDepth bounds the replica tree depth (0 = unlimited).
func (r *Replicator) SetMaxDepth(depth int) {
	r.eng.Mu.Lock()
	defer r.eng.Mu.Unlock()
	r.maxDepth = depth
}

// Declined returns how many replica creations the budget/depth guards
// refused.
func (r *Replicator) Declined() int { return int(r.declined.Load()) }

// SetDeltaPolicy implements DeltaStrategy (shared engine knob).
func (r *Replicator) SetDeltaPolicy(maxBytes int64, ratio float64) {
	r.eng.SetDeltaPolicy(maxBytes, ratio)
}

// StorageBytes implements Strategy: the total physical materialized
// replica storage, the y-axis of Figures 8 and 9 (compressed footprint
// where replicas are encoded).
func (r *Replicator) StorageBytes() domain.ByteSize { return domain.ByteSize(r.stored.Load()) }

// UncompressedBytes implements Strategy: the logical replica storage.
func (r *Replicator) UncompressedBytes() domain.ByteSize {
	return domain.ByteSize(r.storage.Load())
}

// SegmentCount implements Strategy: the number of materialized segments.
// Lock-free: the walk runs on the current immutable snapshot.
func (r *Replicator) SegmentCount() int {
	sentinel := r.eng.Base()
	n := 0
	sentinel.walk(func(m *node, _ int) {
		if m != sentinel && !m.seg.Virtual {
			n++
		}
	})
	return n
}

// VirtualCount returns the number of virtual segments in the tree.
func (r *Replicator) VirtualCount() int {
	sentinel := r.eng.Base()
	n := 0
	sentinel.walk(func(m *node, _ int) {
		if m != sentinel && m.seg.Virtual {
			n++
		}
	})
	return n
}

// Depth returns the maximum depth of the replica tree (sentinel at 0).
// §6.1.3 evaluates tree depth as a replication cost parameter.
func (r *Replicator) Depth() int {
	max := 0
	r.eng.Base().walk(func(_ *node, d int) {
		if d > max {
			max = d
		}
	})
	return max
}

// EncodingStats implements DeltaStrategy: the per-encoding storage
// breakdown of the materialized replicas.
func (r *Replicator) EncodingStats() segment.EncodingStats {
	sentinel := r.eng.Base()
	var es segment.EncodingStats
	sentinel.walk(func(m *node, _ int) {
		if m != sentinel {
			es.Observe(m.seg, r.elemSize)
		}
	})
	return es
}

// SegmentSizes implements Strategy: logical sizes of materialized
// segments.
func (r *Replicator) SegmentSizes() []float64 {
	sentinel := r.eng.Base()
	var out []float64
	sentinel.walk(func(m *node, _ int) {
		if m != sentinel && !m.seg.Virtual {
			out = append(out, float64(m.seg.Count()*r.elemSize))
		}
	})
	return out
}

// Dump renders the replica tree in Figure-4 style (virtual segments marked
// "vir").
func (r *Replicator) Dump() string {
	var b strings.Builder
	for _, c := range r.eng.Base().children {
		c.dump(&b, 0)
	}
	return b.String()
}

// Validate checks the tree invariants; tests run it after every query.
func (r *Replicator) Validate() error {
	return r.eng.Base().validate(false)
}

// Layout implements DeltaStrategy: the replica tree rendering.
func (r *Replicator) Layout() string { return r.Dump() }

// TreeDepth implements TreeShaped.
func (r *Replicator) TreeDepth() int { return r.Depth() }

// GlueSmall implements DeltaStrategy: replica trees do not glue (drops,
// not merges, shrink them), so the capability is reported absent.
func (r *Replicator) GlueSmall(int64) (int64, bool) { return 0, false }

// info builds the model's view of a segment (estimated size for virtual
// segments).
func (r *Replicator) info(sg *segment.Segment) model.SegmentInfo {
	return model.SegmentInfo{
		Rng:        sg.Rng,
		Bytes:      sg.Count() * r.elemSize,
		TotalBytes: r.totalBytes.Load(),
	}
}

// Select implements Algorithm 2 (AdaptReplication):
//
//	cv ← getCover(ql, qh, root)
//	for all s ∈ cv do
//	    M ← analyseRepl(ql, qh, s)
//	    scanMat(s, M)
//	    check4Drop(s)
//
// It returns the selection result assembled from one scan per covering
// segment, with replica materialization piggy-backed on the query (the
// scan itself is lock-free; the materialization runs on the writer
// pipeline).
func (r *Replicator) Select(q domain.Range) ([]domain.Value, QueryStats) {
	res, st := r.SelectRope(q)
	return res.Flatten(), st
}

// SelectRope implements RopeSelector: the same Algorithm-2 pass with the
// result assembled as a rope of per-cover chunks. A covering segment the
// query fully covers contributes its materialized slice as a zero-copy
// borrowed chunk (the payload invariant guarantees every value
// qualifies); partially covered segments contribute their extracted
// values as owned chunks.
func (r *Replicator) SelectRope(q domain.Range) (*result.Rope, QueryStats) {
	so := r.ob.Load()
	var begin time.Time
	var span *obs.Span
	if so != nil {
		begin = time.Now()
		span = so.span("select", q)
	}
	res, _, st := r.run(q, true, span)
	st.ResultCount = int64(res.Len())
	if so != nil {
		so.query(true, begin, &st)
		finishSpan(span, &st)
	}
	return res, st
}

// Count implements Strategy: the Algorithm-2 pass with the result
// assembly replaced by counting on the covering segments' (possibly
// compressed) form. Replica analysis, materialization and drops all still
// happen — counting queries drive adaptation like any others.
func (r *Replicator) Count(q domain.Range) (int64, QueryStats) {
	so := r.ob.Load()
	var begin time.Time
	var span *obs.Span
	if so != nil {
		begin = time.Now()
		span = so.span("count", q)
	}
	_, n, st := r.run(q, false, span)
	st.ResultCount = n
	if so != nil {
		so.query(false, begin, &st)
		finishSpan(span, &st)
	}
	return n, st
}

// run is the shared Algorithm-2 pass behind Select and Count:
//
//  1. READ (lock-free): pin a consistent (root, delta) pair, compute the
//     cover on the pinned root, scan the covering segments — serially or
//     fanned out across the worker pool — and overlay the pinned delta.
//  2. ADAPT (writer pipeline): if the cover shows adaptation
//     opportunities (a virtual leaf to materialize, a partially covered
//     leaf the model may split), enqueue the range and drain the queue
//     behind the writer mutex with TryLock — never blocking the scan.
//
// In single-threaded use step 2 always runs inline, so the serial
// analyse → scan → materialize → drop interleaving of the paper's
// pseudocode is reproduced exactly (model decisions in cover order,
// byte-identical stats and layout evolution).
func (r *Replicator) run(q domain.Range, extract bool, span *obs.Span) (*result.Rope, int64, QueryStats) {
	var st QueryStats
	tRoute := span.StartPhase()
	root, dsnap := r.eng.Pin()
	cover := getCover(root, q)
	span.EndPhase(obs.PhaseRoute, tRoute)

	par := int(r.par.Load())
	if par == 0 {
		var coverBytes int64
		for _, c := range cover {
			coverBytes += int64(c.seg.StoredBytes(r.elemSize))
		}
		par = adaptiveFanout(len(cover), coverBytes)
	}

	rope := result.New()
	var count int64
	if par <= 1 || len(cover) < 2 {
		for _, c := range cover {
			if extract {
				vals, borrowed := r.scanCoverChunk(c, q, &st)
				if borrowed {
					rope.AppendBorrowed(vals)
				} else {
					rope.AppendOwned(vals)
				}
			} else {
				count += c.seg.SelectCount(q)
				r.accountScan(c, &st)
			}
		}
	} else {
		// Fan the per-cover extraction out: read-only on disjoint
		// segments, outcomes in cover-order slots, per-worker read deltas
		// merged after.
		type coverOut struct {
			vals     []domain.Value
			borrowed bool
			count    int64
		}
		outs := make([]coverOut, len(cover))
		workers := par
		if workers > len(cover) {
			workers = len(cover)
		}
		deltas := make([]QueryStats, workers)
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(cover) {
						return
					}
					c := cover[i]
					if extract {
						outs[i].vals, outs[i].borrowed = r.scanCoverChunk(c, q, &deltas[w])
					} else {
						outs[i].count = c.seg.SelectCount(q)
						r.accountScan(c, &deltas[w])
					}
				}
			}(w)
		}
		wg.Wait()
		for i := range deltas {
			st.ReadBytes += deltas[i].ReadBytes
		}
		for i := range cover {
			if outs[i].borrowed {
				rope.AppendBorrowed(outs[i].vals)
			} else {
				rope.AppendOwned(outs[i].vals)
			}
			count += outs[i].count
		}
	}
	tOv := span.StartPhase()
	rope, count = overlayDelta(dsnap, q, extract, rope, count, &st)
	span.EndPhase(obs.PhaseOverlay, tOv)

	if coverNeedsAdaptation(cover, q) {
		r.adapt.add(q)
	}
	tAdapt := span.StartPhase()
	r.drainAdaptation(&st)
	span.EndPhase(obs.PhaseAdapt, tAdapt)
	r.snapshot(&st)
	return rope, count, st
}

// coverNeedsAdaptation reports, without consulting the model, whether
// the Algorithm-4 pass over this cover could possibly do anything: a
// virtual leaf overlapping q can materialize, and a materialized leaf
// only partially covered (with a splittable range) may be split. When it
// returns false, every model in the system is guaranteed to answer
// NoSplit for every overlapping leaf (a covering query is never
// splittable) without consuming any model state, so skipping the writer
// pipeline is observationally identical to running it — this is what
// makes the scan path on a converged tree completely lock-free.
func coverNeedsAdaptation(cover []*node, q domain.Range) bool {
	for _, c := range cover {
		if leafNeedsAdaptation(c, q) {
			return true
		}
	}
	return false
}

func leafNeedsAdaptation(n *node, q domain.Range) bool {
	if !n.isLeaf() {
		for _, c := range n.overlapChildren(q) {
			if leafNeedsAdaptation(c, q) {
				return true
			}
		}
		return false
	}
	if n.seg.Virtual {
		return true // materialization opportunity (split or whole)
	}
	// A materialized leaf is a split candidate only if the query covers
	// it partially and the range is wide enough to cut — exactly the
	// models' shared splittable() precondition.
	return n.seg.Rng.Width() >= 2 && domain.Classify(n.seg.Rng, q) != domain.CoversAll
}

// drainAdaptation runs queued adaptation ranges on the writer pipeline
// without ever blocking: TryLock wins → drain and apply; TryLock loses →
// whoever holds the mutex (another adapting query, a bulk load, a
// merge-back) leaves it soon, and the loop in *their* drainAdaptation —
// or the next adapting query — picks the queue up. Stats of applied work
// are attributed to the applying query (identical to the serial
// attribution in single-threaded use, where TryLock always wins).
func (r *Replicator) drainAdaptation(st *QueryStats) {
	for !r.adapt.empty() {
		if !r.eng.Mu.TryLock() {
			return
		}
		so := r.ob.Load()
		var begin time.Time
		if so != nil {
			begin = time.Now()
		}
		drained := r.adapt.drain()
		for _, q := range drained {
			r.adaptLocked(q, st)
		}
		r.eng.Mu.Unlock()
		so.drained(false, len(drained), begin)
	}
}

// DrainPendingAdaptation drains the queued adaptation work right now,
// blocking on the writer mutex instead of TryLock — the background
// drainer's entry point (see StartBackgroundDrain). It returns the
// number of queued ranges applied; their stats are not attributed to any
// query.
func (r *Replicator) DrainPendingAdaptation() int {
	if r.adapt.empty() {
		return 0
	}
	so := r.ob.Load()
	var begin time.Time
	if so != nil {
		begin = time.Now()
	}
	var st QueryStats
	r.eng.Mu.Lock()
	drained := r.adapt.drain()
	for _, q := range drained {
		r.adaptLocked(q, &st)
	}
	r.eng.Mu.Unlock()
	so.drained(true, len(drained), begin)
	return len(drained)
}

// coverAt pairs a cover node with its depth below the sentinel.
type coverAt struct {
	n     *node
	depth int
}

// coverWithDepth is getCover tracking depths (writer side needs them for
// the MaxDepth guard).
func coverWithDepth(root *node, q domain.Range) []coverAt {
	var cover []coverAt
	var rec func(n *node, depth int) bool
	rec = func(n *node, depth int) bool {
		if n.isLeaf() {
			if n.seg.Virtual {
				return false
			}
			cover = append(cover, coverAt{n, depth})
			return true
		}
		start := len(cover)
		for _, c := range n.overlapChildren(q) {
			if !rec(c, depth+1) {
				cover = cover[:start]
				if n.seg.Virtual {
					return false
				}
				cover = append(cover, coverAt{n, depth})
				return true
			}
		}
		return true
	}
	if !rec(root, 0) {
		panic(fmt.Sprintf("core: no cover for %v — replica tree invariant broken", q))
	}
	return cover
}

// adaptLocked is the writer half of Algorithm 2 for one query range
// (caller holds eng.Mu): recompute the cover on the *current* root (a
// concurrent query may have reorganized since the range was queued —
// recomputing is the revalidation/coalescing step), run analyseRepl +
// scanMat's materialization + check4Drop per cover node as a path-copying
// rebuild, and publish the new root. Skips covers with nothing to do, so
// racing identical queries coalesce into one application.
func (r *Replicator) adaptLocked(q domain.Range, st *QueryStats) {
	root := r.eng.Base()
	for _, c := range coverWithDepth(root, q) {
		// c.n is reachable from the latest root even after earlier covers
		// were rebuilt: covers are disjoint subtrees, and path copying
		// shares every untouched node.
		cur := r.eng.Base()
		rebuilt := r.analyzeBuild(c.n, c.n, c.depth, q, st)
		repl := r.dropPass(rebuilt, st)
		if len(repl) == 1 && repl[0] == c.n {
			continue
		}
		next, ok := rebuildAt(cur, c.n, repl)
		if !ok {
			panic(fmt.Sprintf("core: cover %v not reachable from root", c.n.seg))
		}
		r.eng.Publish(next)
	}
}

// analyzeBuild implements Algorithm 4 (analyseRepl) fused with the
// materialization half of scanMat as a persistent-tree transform:
// descend from cover c to the leaves overlapping q, consult the model per
// leaf, and return the rebuilt subtree — split leaves gain (virtual)
// children with the selection overlap materialized, virtual leaves the
// model declines to split materialize whole. Nodes with nothing to do are
// returned unchanged (shared). Caller holds eng.Mu.
func (r *Replicator) analyzeBuild(c, n *node, depth int, q domain.Range, st *QueryStats) *node {
	if !n.isLeaf() {
		kids := n.children
		changed := false
		for i, ch := range n.children {
			if !ch.seg.Rng.Overlaps(q) {
				continue
			}
			if nc := r.analyzeBuild(c, ch, depth+1, q, st); nc != ch {
				if !changed {
					kids = append([]*node(nil), n.children...)
					changed = true
				}
				kids[i] = nc
			}
		}
		if !changed {
			return n
		}
		return n.withChildren(kids)
	}
	d := r.mod.Decide(q, r.info(n.seg))
	if r.maxDepth > 0 && depth >= r.maxDepth && d.Action != model.NoSplit {
		// Depth guard: no further splitting at the limit; a virtual leaf
		// may still materialize whole via the NoSplit path below.
		r.declined.Add(1)
		d = model.Decision{Action: model.NoSplit}
	}
	switch d.Action {
	case model.NoSplit:
		// Case 0: "query entirely covers s or small subsegments in small
		// s" — if s is virtual it is materialized without split.
		if n.seg.Virtual {
			if filled := r.materialize(c, n.seg, st); filled != nil {
				return &node{seg: filled}
			}
		}
		return n

	case model.SplitBounds:
		// Cases 1–3: materialize the selection overlap, complement with
		// virtual segments whose sizes are estimated.
		sp := domain.Cut(n.seg.Rng, q)
		kids := make([]*node, 0, 3)
		if !sp.Left.IsEmpty() {
			kids = append(kids, r.newVirtualNode(n.seg, sp.Left))
		}
		m := r.newVirtualNode(n.seg, sp.Overlap)
		kids = append(kids, m)
		if !sp.Right.IsEmpty() {
			kids = append(kids, r.newVirtualNode(n.seg, sp.Right))
		}
		if filled := r.materialize(c, m.seg, st); filled != nil {
			kids[indexOf(kids, m)] = &node{seg: filled}
		}
		st.Splits++
		r.splitEvent(n, kids)
		return n.withChildren(kids)

	case model.SplitPoint:
		// Case 4: "some subsegment is small but s is large" — split on one
		// query border (or the mean), materializing the smallest super-set
		// of the selection.
		lo := domain.Range{Lo: n.seg.Rng.Lo, Hi: d.Point}
		hi := domain.Range{Lo: d.Point + 1, Hi: n.seg.Rng.Hi}
		l := r.newVirtualNode(n.seg, lo)
		h := r.newVirtualNode(n.seg, hi)
		target := h
		if d.MatLeft {
			target = l
		}
		kids := []*node{l, h}
		if filled := r.materialize(c, target.seg, st); filled != nil {
			kids[indexOf(kids, target)] = &node{seg: filled}
		}
		st.Splits++
		r.splitEvent(n, kids)
		return n.withChildren(kids)

	default:
		panic(fmt.Sprintf("core: unknown model action %v", d.Action))
	}
}

// splitEvent files a replica-tree split: leaf n gained the kids tiling.
func (r *Replicator) splitEvent(n *node, kids []*node) {
	so := r.ob.Load()
	if so == nil {
		return
	}
	so.event(so.evSplit, "split", obs.Event{
		Lo:     n.seg.Rng.Lo,
		Hi:     n.seg.Rng.Hi,
		Before: 1,
		After:  len(kids),
	})
}

func indexOf(kids []*node, n *node) int {
	for i, k := range kids {
		if k == n {
			return i
		}
	}
	panic("core: node not among its siblings")
}

// materialize fills one replica scheduled by analyzeBuild — the
// materialization half of the paper's scanMat: extract the replica's
// range from the covering segment c, encode it, account the write. It
// returns nil when the storage budget declines the replica (the segment
// stays virtual and later queries keep using the covering ancestor).
// Caller holds eng.Mu.
func (r *Replicator) materialize(c *node, virt *segment.Segment, st *QueryStats) *segment.Segment {
	if r.budget > 0 && r.stored.Load()+virt.Count()*r.elemSize > r.budget {
		// Storage guard (§8 extension): the guard uses the logical size
		// estimate (the encoded size is unknown before the scan), so it
		// only errs towards declining.
		r.declined.Add(1)
		return nil
	}
	codec := r.codec.Load()
	// Compression-aware bulk load: when the covering segment is already
	// encoded and its encoding survives a range splice (RLE run headers,
	// plain slices), the replica is cut straight from the encoded form —
	// no decode, no re-encode. The splice result is value- and
	// size-identical to the decoded path re-encoded under the same
	// encoding; the codec's policy gate keeps forced modes honest. It
	// still counts as a recode: a fresh encoded replica was produced.
	if codec.Enabled() && c.seg.Enc != nil && !encodedSpliceDisabled {
		if enc, ok := compress.SpliceRange(c.seg.Enc, virt.Rng.Lo, virt.Rng.Hi); ok && codec.Allows(enc.Encoding()) {
			filled := virt.FilledEncoded(enc)
			st.Recodes++
			b := int64(filled.StoredBytes(r.elemSize))
			st.WriteBytes += b
			r.storage.Add(filled.Count() * r.elemSize)
			r.stored.Add(b)
			r.tracer.Materialize(filled.ID, b)
			if so := r.ob.Load(); so != nil {
				so.event(so.evReplicate, "replicate", obs.Event{
					Lo:    filled.Rng.Lo,
					Hi:    filled.Rng.Hi,
					After: 1,
					Bytes: b,
				})
				so.recodes(1)
			}
			return filled
		}
	}
	vals := c.seg.Select(virt.Rng)
	filled := virt.Filled(vals)
	logical := int64(len(vals)) * r.elemSize
	recoded := filled.Encode(codec)
	if recoded {
		st.Recodes++
	}
	b := int64(filled.StoredBytes(r.elemSize))
	st.WriteBytes += b
	r.storage.Add(logical)
	r.stored.Add(b)
	r.tracer.Materialize(filled.ID, b)
	if so := r.ob.Load(); so != nil {
		so.event(so.evReplicate, "replicate", obs.Event{
			Lo:    filled.Rng.Lo,
			Hi:    filled.Rng.Hi,
			After: 1,
			Bytes: b,
		})
		if recoded {
			so.recodes(1)
		}
	}
	return filled
}

// encodedSpliceDisabled turns the encoded-form bulk-load shortcuts off,
// forcing the decode → re-encode path everywhere. Test-only: the
// equivalence tests flip it (before any concurrent queries run) to prove
// both paths produce identical columns.
var encodedSpliceDisabled bool

// dropPass implements Algorithm 5 (check4Drop) as a persistent-tree
// transform: bottom-up over the subtree, a segment whose immediate
// children are all materialized is dropped — its children hoist into its
// parent's tiling — and dropping a materialized segment releases its
// storage. The returned slice replaces n in its parent (length 1 and
// identical pointer = nothing changed). Caller holds eng.Mu.
func (r *Replicator) dropPass(n *node, st *QueryStats) []*node {
	if n.isLeaf() {
		return []*node{n}
	}
	kids := make([]*node, 0, len(n.children))
	changed := false
	for _, c := range n.children {
		rep := r.dropPass(c, st)
		if len(rep) != 1 || rep[0] != c {
			changed = true
		}
		kids = append(kids, rep...)
	}
	cur := n
	if changed {
		cur = n.withChildren(kids)
	}
	for _, k := range kids {
		if k.seg.Virtual {
			return []*node{cur} // children do not replicate cur
		}
	}
	if !cur.seg.Virtual {
		logical := cur.seg.Count() * r.elemSize
		physical := int64(cur.seg.StoredBytes(r.elemSize))
		r.storage.Add(-logical)
		r.stored.Add(-physical)
		r.tracer.Drop(cur.seg.ID, physical)
		st.Drops++
		if so := r.ob.Load(); so != nil {
			so.event(so.evDrop, "drop", obs.Event{
				Lo:     cur.seg.Rng.Lo,
				Hi:     cur.seg.Rng.Hi,
				Before: 1,
				After:  len(kids),
				Bytes:  physical,
			})
		}
	}
	return kids
}

// rebuildAt path-copies from root down to target, splicing repl into
// target's parent's tiling in target's place. Descent is by range (the
// unique child containing target's range), confirmation by identity —
// persistent sharing keeps target reachable from every root published
// since it was, unless a concurrent rewrite replaced it.
func rebuildAt(root, target *node, repl []*node) (*node, bool) {
	if root == target {
		panic("core: cannot replace the sentinel")
	}
	for i, c := range root.children {
		if !c.seg.Rng.Contains(target.seg.Rng.Lo) {
			continue
		}
		if c == target {
			kids := make([]*node, 0, len(root.children)+len(repl)-1)
			kids = append(kids, root.children[:i]...)
			kids = append(kids, repl...)
			kids = append(kids, root.children[i+1:]...)
			return root.withChildren(kids), true
		}
		sub, ok := rebuildAt(c, target, repl)
		if !ok {
			return nil, false
		}
		kids := append([]*node(nil), root.children...)
		kids[i] = sub
		return root.withChildren(kids), true
	}
	return nil, false
}

// snapshot fills the per-query storage measures — atomic loads, no lock.
func (r *Replicator) snapshot(st *QueryStats) {
	st.StorageBytes = r.storage.Load()
	st.CompressedBytes = r.stored.Load()
}

// newVirtualNode creates a virtual child segment of parent covering rng,
// with its size estimated from the parent's (possibly itself estimated)
// density — "its size is estimated, but no data is copied" (§5).
func (r *Replicator) newVirtualNode(parent *segment.Segment, rng domain.Range) *node {
	return &node{seg: segment.NewVirtual(rng, parent.EstimatePiece(rng))}
}

// accountScan books the "single scan of the covering segment" (§5): read
// volume and the tracer event. It reads only the pinned covering
// segment, so any number of queries (and their fan-out workers) scan
// concurrently with no lock.
func (r *Replicator) accountScan(c *node, st *QueryStats) {
	bytes := int64(c.seg.StoredBytes(r.elemSize))
	st.ReadBytes += bytes
	r.tracer.Scan(c.seg.ID, bytes)
}

// scanCoverChunk accounts the cover scan and returns c's qualifying
// values as one rope chunk. When the query fully covers the segment and
// its storage form holds a materialized slice, the chunk borrows the
// published payload without copying — the payload invariant (every value
// lies inside Rng) guarantees all values qualify, so the borrowed slice
// is exactly what AppendSelect would have extracted.
func (r *Replicator) scanCoverChunk(c *node, q domain.Range, st *QueryStats) ([]domain.Value, bool) {
	r.accountScan(c, st)
	if domain.Classify(c.seg.Rng, q) == domain.CoversAll {
		if vals, ok := c.seg.BorrowValues(); ok {
			return vals, true
		}
		return c.seg.AppendValues(nil), false
	}
	return c.seg.AppendSelect(q, nil), false
}
