package core

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"selforg/internal/compress"
	"selforg/internal/delta"
	"selforg/internal/domain"
	"selforg/internal/model"
	"selforg/internal/segment"
)

// Replicator implements adaptive replication (§5): segments are organized
// in a replica tree of materialized and virtual segments; query results are
// retained as materialized replicas ("lazy materialization", §3.3), and a
// segment whose children are all materialized is dropped to release
// storage (Algorithm 5).
//
// # Concurrency model
//
// The Replicator is safe for concurrent use: the replica tree is a
// mutable linked structure (children attach, payloads fill, nodes splice
// out), so every query runs behind the single writer mutex — replica
// creation, re-encoding and drops never race. Unlike the Segmenter there
// is no lock-free read path; concurrent query streams serialize, which
// the facade documents as the replication trade-off. With
// SetParallelism(n > 1) the result extraction of one query still fans out
// across the (disjoint) covering segments on a bounded worker pool, with
// per-worker stats deltas merged in cover order, so large scans
// parallelize inside the lock.
type Replicator struct {
	// mu is the single-writer path guarding the tree, the model and the
	// storage counters.
	mu sync.Mutex
	// sentinel is a permanent virtual holder of the forest. The paper's
	// tree root (the whole column) can itself be dropped once fully
	// replicated ("the initial segment containing the entire column was
	// fully replicated by its materialized children and dropped", §6.1.3);
	// the sentinel keeps the remaining forest addressable and is exempt
	// from dropping.
	sentinel *node
	mod      model.Model
	tracer   Tracer
	elemSize int64
	codec    *compress.Codec // nil = compression off
	// totalBytes is the original logical column size — GD's TotSize.
	totalBytes int64
	// storage tracks logical materialized bytes currently held
	// (Figures 8, 9); stored tracks the physical (compressed) footprint.
	// The two are equal with compression off.
	storage int64
	stored  int64
	// budget bounds storage (0 = unlimited): the §8 extension "optimal
	// replica configuration in the presence of storage limitations". New
	// replicas whose estimated size would exceed the budget are declined;
	// queries stay correct, served from the covering ancestors.
	budget int64
	// maxDepth bounds the replica tree depth (0 = unlimited), the other
	// §6.1.3/§8 open knob ("we do not impose limitations on the replica
	// tree depth"). At the limit, leaves are no longer split; virtual
	// leaves may still materialize whole (which adds no depth).
	maxDepth int
	// declined counts replicas refused by the budget or depth guards.
	declined int
	// par is the per-query extraction fan-out width (0 = adaptive,
	// 1 = serial, n > 1 = bounded at n).
	par int
	// delta is the column's MVCC write store (see core/delta.go); the
	// merge thresholds mirror the Segmenter's.
	delta         *delta.Store
	deltaMaxBytes atomic.Int64
	deltaRatioBP  atomic.Int64
	// contentEpoch counts the mutations that change the tree's logical
	// content in place — bulk loads and delta merge-backs. Pinned Views
	// use it to detect that their snapshot-isolation window has closed
	// (tree reorganization preserves content and does not bump it).
	contentEpoch atomic.Int64
}

// NewReplicator builds the strategy over a fresh one-segment column (the
// replica-tree root) covering extent and holding vals. tracer may be nil.
func NewReplicator(extent domain.Range, vals []domain.Value, elemSize int64, m model.Model, tracer Tracer) *Replicator {
	if elemSize < 1 {
		panic("core: elemSize must be positive")
	}
	if tracer == nil {
		tracer = nopTracer{}
	}
	root := &node{seg: segment.NewMaterialized(extent, vals)}
	sentinel := &node{seg: segment.NewVirtual(extent, int64(len(vals)))}
	sentinel.addChildren(root)
	r := &Replicator{
		sentinel:   sentinel,
		mod:        m,
		tracer:     tracer,
		elemSize:   elemSize,
		totalBytes: int64(len(vals)) * elemSize,
		storage:    int64(len(vals)) * elemSize,
		stored:     int64(len(vals)) * elemSize,
		delta:      delta.NewStore(elemSize),
	}
	r.tracer.Materialize(root.seg.ID, r.storage)
	return r
}

// Name implements Strategy.
func (r *Replicator) Name() string { return r.mod.Name() + " Repl" }

// SetParallelism sets the bounded worker count one query may fan its
// covering-segment extraction out to. 0 (the default) picks the fan-out
// per query from the cover's segment count and scan volume; 1 forces
// serial; n > 1 bounds the fan-out at n.
func (r *Replicator) SetParallelism(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n < 0 {
		n = 1
	}
	r.par = n
}

// SetCompression attaches the compression subsystem: new replicas are
// encoded as they materialize, and the existing materialized tree is
// re-encoded immediately.
func (r *Replicator) SetCompression(mode compress.Mode) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.codec = compress.NewCodec(mode, r.elemSize)
	if !r.codec.Enabled() {
		return
	}
	r.sentinel.walk(func(n *node, _ int) {
		if n == r.sentinel || n.seg.Virtual {
			return
		}
		before := int64(n.seg.StoredBytes(r.elemSize))
		if n.seg.Encode(r.codec) {
			r.stored += int64(n.seg.StoredBytes(r.elemSize)) - before
		}
	})
}

// Compression returns the active compression mode.
func (r *Replicator) Compression() compress.Mode {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.codec.Mode()
}

// SetStorageBudget bounds the materialized replica storage in bytes
// (0 = unlimited). Replicas that would exceed the budget are declined.
func (r *Replicator) SetStorageBudget(maxBytes int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.budget = maxBytes
}

// SetMaxDepth bounds the replica tree depth (0 = unlimited).
func (r *Replicator) SetMaxDepth(depth int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.maxDepth = depth
}

// Declined returns how many replica creations the budget/depth guards
// refused.
func (r *Replicator) Declined() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.declined
}

// StorageBytes implements Strategy: the total physical materialized
// replica storage, the y-axis of Figures 8 and 9 (compressed footprint
// where replicas are encoded).
func (r *Replicator) StorageBytes() domain.ByteSize {
	r.mu.Lock()
	defer r.mu.Unlock()
	return domain.ByteSize(r.stored)
}

// UncompressedBytes implements Strategy: the logical replica storage.
func (r *Replicator) UncompressedBytes() domain.ByteSize {
	r.mu.Lock()
	defer r.mu.Unlock()
	return domain.ByteSize(r.storage)
}

// SegmentCount implements Strategy: the number of materialized segments.
func (r *Replicator) SegmentCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	r.sentinel.walk(func(m *node, _ int) {
		if m != r.sentinel && !m.seg.Virtual {
			n++
		}
	})
	return n
}

// VirtualCount returns the number of virtual segments in the tree.
func (r *Replicator) VirtualCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	r.sentinel.walk(func(m *node, _ int) {
		if m != r.sentinel && m.seg.Virtual {
			n++
		}
	})
	return n
}

// Depth returns the maximum depth of the replica tree (sentinel at 0).
// §6.1.3 evaluates tree depth as a replication cost parameter.
func (r *Replicator) Depth() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	max := 0
	r.sentinel.walk(func(_ *node, d int) {
		if d > max {
			max = d
		}
	})
	return max
}

// EncodingStats implements DeltaStrategy: the per-encoding storage
// breakdown of the materialized replicas.
func (r *Replicator) EncodingStats() segment.EncodingStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	var es segment.EncodingStats
	r.sentinel.walk(func(m *node, _ int) {
		if m != r.sentinel {
			es.Observe(m.seg, r.elemSize)
		}
	})
	return es
}

// SegmentSizes implements Strategy: logical sizes of materialized
// segments.
func (r *Replicator) SegmentSizes() []float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []float64
	r.sentinel.walk(func(m *node, _ int) {
		if m != r.sentinel && !m.seg.Virtual {
			out = append(out, float64(m.seg.Count()*r.elemSize))
		}
	})
	return out
}

// Dump renders the replica tree in Figure-4 style (virtual segments marked
// "vir").
func (r *Replicator) Dump() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	for _, c := range r.sentinel.children {
		c.dump(&b, 0)
	}
	return b.String()
}

// Validate checks the tree invariants; tests run it after every query.
func (r *Replicator) Validate() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sentinel.validate(false)
}

// info builds the model's view of a segment (estimated size for virtual
// segments).
func (r *Replicator) info(sg *segment.Segment) model.SegmentInfo {
	return model.SegmentInfo{
		Rng:        sg.Rng,
		Bytes:      sg.Count() * r.elemSize,
		TotalBytes: r.totalBytes,
	}
}

// Select implements Algorithm 2 (AdaptReplication):
//
//	cv ← getCover(ql, qh, root)
//	for all s ∈ cv do
//	    M ← analyseRepl(ql, qh, s)
//	    scanMat(s, M)
//	    check4Drop(s)
//
// It returns the selection result assembled from one scan per covering
// segment, with replica materialization piggy-backed on those scans.
func (r *Replicator) Select(q domain.Range) ([]domain.Value, QueryStats) {
	res, _, st := r.run(q, true)
	st.ResultCount = int64(len(res))
	return res, st
}

// Count implements Strategy: the Algorithm-2 pass with the result
// assembly replaced by counting on the covering segments' (possibly
// compressed) form. Replica analysis, materialization and drops all still
// happen — counting queries drive adaptation like any others.
func (r *Replicator) Count(q domain.Range) (int64, QueryStats) {
	_, n, st := r.run(q, false)
	st.ResultCount = n
	return n, st
}

// run is the shared Algorithm-2 pass behind Select and Count, entirely
// under the writer lock. Serial mode interleaves analyse → scan →
// materialize → drop per covering segment, exactly as the paper's
// pseudocode. Parallel mode (SetParallelism > 1) hoists the phases:
// every cover segment is analysed first (preserving the model's decision
// order), the read-only extraction fans out across the worker pool, and
// materialization plus drop run serially in cover order afterwards — the
// covering subtrees are disjoint, so the hoisting is observationally
// identical to the serial interleaving.
func (r *Replicator) run(q domain.Range, extract bool) ([]domain.Value, int64, QueryStats) {
	var st QueryStats
	r.mu.Lock()
	defer r.mu.Unlock()
	// Pin the delta snapshot for the whole query. The tree lock is held
	// throughout and merge-back publishes the drained store while holding
	// it, so the (tree, delta) pair is consistent.
	dsnap := r.delta.Snapshot()
	cover := r.getCover(q)
	tasks := make([][]*node, len(cover))

	par := r.par
	if par == 0 {
		var coverBytes int64
		for _, c := range cover {
			coverBytes += int64(c.seg.StoredBytes(r.elemSize))
		}
		par = adaptiveFanout(len(cover), coverBytes)
	}

	if par <= 1 || len(cover) < 2 {
		var result []domain.Value
		var count int64
		for i, c := range cover {
			r.analyzeRepl(q, c, &tasks[i], &st)
			if extract {
				result = r.scanCover(c, q, true, result, &st)
			} else {
				count += c.seg.SelectCount(q)
				r.scanCover(c, q, false, nil, &st)
			}
			r.materializeTasks(c, tasks[i], &st)
			r.check4Drop(c, &st)
		}
		result, count = overlayDelta(dsnap, q, extract, result, count, &st)
		r.snapshot(&st)
		return result, count, st
	}

	for i, c := range cover {
		r.analyzeRepl(q, c, &tasks[i], &st)
	}

	// Fan the per-cover extraction out: read-only on disjoint segments,
	// outcomes in cover-order slots, per-worker read deltas merged after.
	type coverOut struct {
		vals  []domain.Value
		count int64
	}
	outs := make([]coverOut, len(cover))
	workers := par
	if workers > len(cover) {
		workers = len(cover)
	}
	deltas := make([]QueryStats, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cover) {
					return
				}
				c := cover[i]
				if extract {
					outs[i].vals = r.scanCover(c, q, true, nil, &deltas[w])
				} else {
					outs[i].count = c.seg.SelectCount(q)
					r.scanCover(c, q, false, nil, &deltas[w])
				}
			}
		}(w)
	}
	wg.Wait()
	for i := range deltas {
		st.ReadBytes += deltas[i].ReadBytes
	}

	var result []domain.Value
	var count int64
	for i, c := range cover {
		result = append(result, outs[i].vals...)
		count += outs[i].count
		r.materializeTasks(c, tasks[i], &st)
		r.check4Drop(c, &st)
	}
	result, count = overlayDelta(dsnap, q, extract, result, count, &st)
	r.snapshot(&st)
	return result, count, st
}

// snapshot fills the per-query storage measures.
func (r *Replicator) snapshot(st *QueryStats) {
	st.StorageBytes = r.storage
	st.CompressedBytes = r.stored
}

// getCover implements Algorithm 3: the minimal set of materialized
// segments covering the query — deepest materialized descendants, backing
// off to the nearest materialized ancestor when any branch bottoms out in
// a virtual leaf.
func (r *Replicator) getCover(q domain.Range) []*node {
	var cover []*node
	if !r.coverRec(q, r.sentinel, &cover) {
		// Unreachable while the coverability invariant holds: every leaf
		// has a materialized node on its path below the sentinel.
		panic(fmt.Sprintf("core: no cover for %v — replica tree invariant broken", q))
	}
	return cover
}

func (r *Replicator) coverRec(q domain.Range, n *node, cover *[]*node) bool {
	if n.isLeaf() {
		if n.seg.Virtual {
			return false
		}
		*cover = append(*cover, n)
		return true
	}
	start := len(*cover)
	for _, c := range n.overlapChildren(q) {
		if !r.coverRec(q, c, cover) {
			*cover = (*cover)[:start] // backtrack
			if n.seg.Virtual {
				return false
			}
			*cover = append(*cover, n)
			return true
		}
	}
	return true
}

// analyzeRepl implements Algorithm 4: descend to the leaves under cover
// segment n that overlap the query and decide, per leaf, which replicas to
// create. New children are attached immediately (virtual, to be filled by
// materializeTasks); nodes to materialize are appended to tasks.
func (r *Replicator) analyzeRepl(q domain.Range, n *node, tasks *[]*node, st *QueryStats) {
	if !n.isLeaf() {
		for _, c := range n.overlapChildren(q) {
			r.analyzeRepl(q, c, tasks, st)
		}
		return
	}
	d := r.mod.Decide(q, r.info(n.seg))
	if r.maxDepth > 0 && n.depth >= r.maxDepth && d.Action != model.NoSplit {
		// Depth guard: no further splitting at the limit; a virtual leaf
		// may still materialize whole via the NoSplit path below.
		r.declined++
		d = model.Decision{Action: model.NoSplit}
	}
	switch d.Action {
	case model.NoSplit:
		// Case 0: "query entirely covers s or small subsegments in small
		// s" — if s is virtual it is materialized without split.
		if n.seg.Virtual {
			*tasks = append(*tasks, n)
		}

	case model.SplitBounds:
		// Cases 1–3: materialize the selection overlap, complement with
		// virtual segments whose sizes are estimated.
		sp := domain.Cut(n.seg.Rng, q)
		kids := make([]*node, 0, 3)
		if !sp.Left.IsEmpty() {
			kids = append(kids, r.newVirtualNode(n.seg, sp.Left))
		}
		m := r.newVirtualNode(n.seg, sp.Overlap)
		kids = append(kids, m)
		if !sp.Right.IsEmpty() {
			kids = append(kids, r.newVirtualNode(n.seg, sp.Right))
		}
		n.addChildren(kids...)
		*tasks = append(*tasks, m)
		st.Splits++

	case model.SplitPoint:
		// Case 4: "some subsegment is small but s is large" — split on one
		// query border (or the mean), materializing the smallest super-set
		// of the selection.
		lo := domain.Range{Lo: n.seg.Rng.Lo, Hi: d.Point}
		hi := domain.Range{Lo: d.Point + 1, Hi: n.seg.Rng.Hi}
		l := r.newVirtualNode(n.seg, lo)
		h := r.newVirtualNode(n.seg, hi)
		n.addChildren(l, h)
		if d.MatLeft {
			*tasks = append(*tasks, l)
		} else {
			*tasks = append(*tasks, h)
		}
		st.Splits++

	default:
		panic(fmt.Sprintf("core: unknown model action %v", d.Action))
	}
}

// newVirtualNode creates a virtual child segment of parent covering rng,
// with its size estimated from the parent's (possibly itself estimated)
// density — "its size is estimated, but no data is copied" (§5).
func (r *Replicator) newVirtualNode(parent *segment.Segment, rng domain.Range) *node {
	return &node{seg: segment.NewVirtual(rng, parent.EstimatePiece(rng))}
}

// scanCover accounts the "single scan of the covering segment" (§5) and,
// when extract is set, returns result extended with the qualifying values
// of c. It reads only the covering segment, so parallel extraction across
// disjoint cover segments is safe; replica materialization is the
// writer-side counterpart in materializeTasks.
func (r *Replicator) scanCover(c *node, q domain.Range, extract bool, result []domain.Value, st *QueryStats) []domain.Value {
	bytes := int64(c.seg.StoredBytes(r.elemSize))
	st.ReadBytes += bytes
	r.tracer.Scan(c.seg.ID, bytes)
	if extract {
		result = c.seg.AppendSelect(q, result)
	}
	return result
}

// materializeTasks fills the replicas analyzeRepl scheduled under cover
// segment c — the materialization half of the paper's scanMat. Fresh
// replicas are handed to the codec, so replica storage (the y-axis of
// Figures 8/9) is the compressed footprint.
func (r *Replicator) materializeTasks(c *node, tasks []*node, st *QueryStats) {
	for _, t := range tasks {
		if r.budget > 0 && r.stored+t.seg.Count()*r.elemSize > r.budget {
			// Storage guard (§8 extension): decline the replica; the
			// segment stays virtual and later queries keep using the
			// covering ancestor. The guard uses the logical size estimate
			// (the encoded size is unknown before the scan), so it only
			// errs towards declining.
			r.declined++
			continue
		}
		vals := c.seg.Select(t.seg.Rng)
		t.seg.SetPayload(vals)
		logical := int64(len(vals)) * r.elemSize
		if t.seg.Encode(r.codec) {
			st.Recodes++
		}
		b := int64(t.seg.StoredBytes(r.elemSize))
		st.WriteBytes += b
		r.storage += logical
		r.stored += b
		r.tracer.Materialize(t.seg.ID, b)
	}
}

// check4Drop implements Algorithm 5: bottom-up over the subtree, a segment
// whose immediate children are all materialized is dropped from the tree,
// its children attached to its parent; dropping a materialized segment
// releases its storage.
func (r *Replicator) check4Drop(n *node, st *QueryStats) {
	if n.isLeaf() {
		return
	}
	// Recurse on a snapshot: child drops splice grandchildren into
	// n.children during iteration.
	snapshot := append([]*node(nil), n.children...)
	for _, c := range snapshot {
		r.check4Drop(c, st)
	}
	for _, c := range n.children {
		if c.seg.Virtual {
			return // children do not replicate n
		}
	}
	if n == r.sentinel {
		return
	}
	wasMat := !n.seg.Virtual
	logical := n.seg.Count() * r.elemSize
	physical := int64(n.seg.StoredBytes(r.elemSize))
	n.spliceOut()
	if wasMat {
		r.storage -= logical
		r.stored -= physical
		r.tracer.Drop(n.seg.ID, physical)
		st.Drops++
	}
}
