package core

import (
	"fmt"

	"selforg/internal/compress"
	"selforg/internal/domain"
	"selforg/internal/model"
	"selforg/internal/segment"
)

// Segmenter implements adaptive segmentation (§4, Algorithm 1): the column
// is a sequence of adjacent non-overlapping segments, initially one; each
// range selection may split the segments it overlaps, in place, as decided
// by the segmentation model. This is "eager materialization" (§3.3): the
// selected sub-segment is kept and the remaining sub-segments are
// materialized immediately, which makes the initial queries pay the
// reorganization cost.
//
// When a compression codec is attached, storage-encoding decisions
// piggy-back on the same loop: every segment a query materializes (the
// sub-segments of a split, glued runs, bulk-loaded rewrites) is handed to
// the codec's advisor, so the physical format adapts to the data exactly
// where the layout adapts to the queries.
type Segmenter struct {
	list   *segment.List
	mod    model.Model
	tracer Tracer
	codec  *compress.Codec // nil = compression off
	// totalBytes is the fixed logical column size, the TotSize of the GD
	// model; stored is the physical footprint, maintained incrementally
	// as segments are rewritten so per-query snapshots stay O(1).
	totalBytes int64
	stored     int64
}

// NewSegmenter builds the strategy over a fresh single-segment column
// covering extent and holding vals. elemSize is the accounted bytes per
// value; tracer may be nil.
func NewSegmenter(extent domain.Range, vals []domain.Value, elemSize int64, m model.Model, tracer Tracer) *Segmenter {
	if tracer == nil {
		tracer = nopTracer{}
	}
	l := segment.NewList(extent, vals, elemSize)
	s := &Segmenter{list: l, mod: m, tracer: tracer,
		totalBytes: int64(l.TotalBytes()), stored: int64(l.TotalBytes())}
	// The initial column is materialized storage the buffer layer should
	// know about.
	s.tracer.Materialize(l.Seg(0).ID, int64(l.TotalBytes()))
	return s
}

// SetCompression attaches the compression subsystem: subsequent
// materializations are encoded under mode, and the existing segments are
// re-encoded immediately (the construction-time counterpart of the
// initial Materialize event). Off detaches it, decoding nothing — already
// encoded segments stay encoded and decay lazily as splits rewrite them.
func (s *Segmenter) SetCompression(mode compress.Mode) {
	s.codec = compress.NewCodec(mode, s.list.ElemSize())
	if s.codec.Enabled() {
		for i := 0; i < s.list.Len(); i++ {
			s.list.Seg(i).Encode(s.codec)
		}
	}
	s.stored = int64(s.list.StoredBytes())
}

// Compression returns the active compression mode.
func (s *Segmenter) Compression() compress.Mode { return s.codec.Mode() }

// Name implements Strategy.
func (s *Segmenter) Name() string { return s.mod.Name() + " Segm" }

// List exposes the underlying meta-index (read-only use: diagnostics,
// validation in tests, Table 2 statistics).
func (s *Segmenter) List() *segment.List { return s.list }

// SegmentCount implements Strategy.
func (s *Segmenter) SegmentCount() int { return s.list.Len() }

// StorageBytes implements Strategy: the physical storage held. Adaptive
// segmentation reorganizes in place, so without compression this is
// always exactly the column size; with compression it shrinks as the
// advisor encodes segments.
func (s *Segmenter) StorageBytes() domain.ByteSize { return domain.ByteSize(s.stored) }

// UncompressedBytes implements Strategy.
func (s *Segmenter) UncompressedBytes() domain.ByteSize { return domain.ByteSize(s.totalBytes) }

// SegmentSizes implements Strategy.
func (s *Segmenter) SegmentSizes() []float64 { return s.list.SegmentBytes() }

// info builds the model's view of a segment. Models reason about logical
// sizes, so split decisions are identical with compression on or off.
func (s *Segmenter) info(sg *segment.Segment) model.SegmentInfo {
	return model.SegmentInfo{
		Rng:        sg.Rng,
		Bytes:      int64(sg.Bytes(s.list.ElemSize())),
		TotalBytes: s.totalBytes,
	}
}

// snapshot fills the per-query storage measures from the maintained
// counters — O(1), no list sweep on the query path.
func (s *Segmenter) snapshot(st *QueryStats) {
	st.StorageBytes = s.totalBytes
	st.CompressedBytes = s.stored
}

// Select implements Algorithm 1:
//
//	for all segments S overlapping with query range [QL,QH] do
//	    if segmentation model decides split of S then
//	        scan S and materialize its sub-segments
//	        replace S with its sub-segments
//
// and simultaneously evaluates the selection, returning the qualifying
// values. Segments are visited high-to-low so in-place replacement does
// not disturb the indexes of segments still to visit.
func (s *Segmenter) Select(q domain.Range) ([]domain.Value, QueryStats) {
	var st QueryStats
	var result []domain.Value
	s.visit(q, &st, true, func(sg *segment.Segment, covered bool) {
		if covered {
			result = sg.AppendValues(result)
		} else {
			result = sg.AppendSelect(q, result)
		}
	})
	st.ResultCount = int64(len(result))
	s.snapshot(&st)
	return result, st
}

// Count implements Strategy: the same Algorithm-1 pass with counting
// sinks. A segment fully covered by the query contributes its meta-index
// count without being scanned at all, and partially covered segments are
// counted on their (possibly compressed) form without copying a value.
func (s *Segmenter) Count(q domain.Range) (int64, QueryStats) {
	var st QueryStats
	var count int64
	s.visit(q, &st, false, func(sg *segment.Segment, covered bool) {
		if covered {
			count += sg.Count()
		} else {
			count += sg.SelectCount(q)
		}
	})
	st.ResultCount = count
	s.snapshot(&st)
	return count, st
}

// visit runs the shared reorganize-while-scanning loop. emit is called
// for every segment holding qualifying values: covered=true when the
// whole segment qualifies, covered=false for segments needing a filtering
// scan. scanCovered controls whether fully covered segments account a
// scan: a selection reads them to copy the values out, a count answers
// them from the meta-index for free.
func (s *Segmenter) visit(q domain.Range, st *QueryStats, scanCovered bool, emit func(sg *segment.Segment, covered bool)) {
	elem := s.list.ElemSize()
	lo, hi := s.list.Overlapping(q)
	for i := hi - 1; i >= lo; i-- {
		sg := s.list.Seg(i)

		if domain.Classify(sg.Rng, q) == domain.CoversAll {
			// The whole segment qualifies; it immediately benefits from
			// earlier reorganization (Figure 3, Q2 on the last segment).
			if scanCovered {
				b := int64(sg.StoredBytes(elem))
				st.ReadBytes += b
				s.tracer.Scan(sg.ID, b)
			}
			emit(sg, true)
			continue
		}
		// Every partially overlapping segment is scanned: either to
		// extract (or count) the qualifying values or to partition it.
		// The meta-index already excluded all non-overlapping segments
		// without touching data; compressed segments are read at their
		// encoded size.
		segBytes := int64(sg.StoredBytes(elem))
		st.ReadBytes += segBytes
		s.tracer.Scan(sg.ID, segBytes)

		d := s.mod.Decide(q, s.info(sg))
		switch d.Action {
		case model.NoSplit:
			emit(sg, false)

		case model.SplitBounds:
			sp := domain.Cut(sg.Rng, q)
			left, mid, right := sg.Partition(q)
			subs := make([]*segment.Segment, 0, 3)
			if !sp.Left.IsEmpty() {
				subs = append(subs, segment.NewMaterialized(sp.Left, left))
			}
			midSeg := segment.NewMaterialized(sp.Overlap, mid)
			subs = append(subs, midSeg)
			if !sp.Right.IsEmpty() {
				subs = append(subs, segment.NewMaterialized(sp.Right, right))
			}
			s.replace(i, sg, subs, st)
			emit(midSeg, true)

		case model.SplitPoint:
			lv, rv := sg.SplitAt(d.Point)
			subs := []*segment.Segment{
				segment.NewMaterialized(domain.Range{Lo: sg.Rng.Lo, Hi: d.Point}, lv),
				segment.NewMaterialized(domain.Range{Lo: d.Point + 1, Hi: sg.Rng.Hi}, rv),
			}
			s.replace(i, sg, subs, st)
			// A point split does not isolate the selection: filter the
			// pieces that still overlap the query.
			for _, sub := range subs {
				if sub.Rng.Overlaps(q) {
					emit(sub, false)
				}
			}

		default:
			panic(fmt.Sprintf("core: unknown model action %v", d.Action))
		}
	}
}

// encode hands a freshly materialized segment to the codec (no-op when
// compression is off) and accounts the re-encode.
func (s *Segmenter) encode(sg *segment.Segment, st *QueryStats) {
	if sg.Encode(s.codec) {
		st.Recodes++
	}
}

// replace swaps segment sg (at index i) for subs and accounts the
// materialization: the entire reorganized segment is written back (§6.1.1:
// "segmentation reorganizes an entire segment independently of the precise
// selected size"). New sub-segments are encoded before the write is
// accounted, so compressed columns also write less.
func (s *Segmenter) replace(i int, sg *segment.Segment, subs []*segment.Segment, st *QueryStats) {
	elem := s.list.ElemSize()
	s.list.Replace(i, subs...)
	for _, sub := range subs {
		s.encode(sub, st)
		b := int64(sub.StoredBytes(elem))
		st.WriteBytes += b
		s.stored += b
		s.tracer.Materialize(sub.ID, b)
	}
	old := int64(sg.StoredBytes(elem))
	s.stored -= old
	s.tracer.Drop(sg.ID, old)
	st.Splits++
}

// Glue merges the adjacent segment run [i, j] back into one segment — the
// merging counterpart the paper names as the antidote to GD fragmentation
// (§8). It returns the bytes rewritten. Exposed for the merge ablation.
func (s *Segmenter) Glue(i, j int) int64 {
	elem := s.list.ElemSize()
	var rewritten int64
	for k := i; k <= j; k++ {
		sg := s.list.Seg(k)
		b := int64(sg.StoredBytes(elem))
		rewritten += b
		s.stored -= b
		s.tracer.Scan(sg.ID, b)
		s.tracer.Drop(sg.ID, b)
	}
	s.list.Glue(i, j)
	merged := s.list.Seg(i)
	merged.Encode(s.codec)
	mb := int64(merged.StoredBytes(elem))
	s.stored += mb
	s.tracer.Materialize(merged.ID, mb)
	return rewritten
}

// GlueSmall merges every maximal run of adjacent segments smaller than
// minBytes into its successor until no mergeable run remains, returning
// the total bytes rewritten. This is the simple merging strategy evaluated
// in the ablation benches. Size comparisons are logical so gluing behaves
// identically with compression on.
func (s *Segmenter) GlueSmall(minBytes int64) int64 {
	elem := s.list.ElemSize()
	var rewritten int64
	for i := 0; i < s.list.Len()-1; {
		a := int64(s.list.Seg(i).Bytes(elem))
		b := int64(s.list.Seg(i + 1).Bytes(elem))
		if a < minBytes || b < minBytes {
			rewritten += s.Glue(i, i+1)
			continue // re-examine the merged segment at i
		}
		i++
	}
	return rewritten
}
