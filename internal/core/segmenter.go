package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"selforg/internal/compress"
	"selforg/internal/delta"
	"selforg/internal/domain"
	"selforg/internal/model"
	"selforg/internal/obs"
	"selforg/internal/result"
	"selforg/internal/segment"
)

// Segmenter implements adaptive segmentation (§4, Algorithm 1): the column
// is a sequence of adjacent non-overlapping segments, initially one; each
// range selection may split the segments it overlaps, as decided by the
// segmentation model. This is "eager materialization" (§3.3): the selected
// sub-segment is kept and the remaining sub-segments are materialized
// immediately, which makes the initial queries pay the reorganization cost.
//
// When a compression codec is attached, storage-encoding decisions
// piggy-back on the same loop: every segment a query materializes (the
// sub-segments of a split, glued runs, bulk-loaded rewrites) is handed to
// the codec's advisor, so the physical format adapts to the data exactly
// where the layout adapts to the queries.
//
// # Concurrency model
//
// The Segmenter is safe for concurrent use. Readers work on immutable
// List snapshots published through an atomic pointer: a scan loads the
// current snapshot once and never observes a half-reorganized column, no
// matter how many queries run beside it. All reorganization — model
// decisions, split application, gluing, re-encoding, bulk loads — happens
// behind a single writer mutex: a query batches every split it wants into
// intents, and the writer path re-validates each intent against the
// current list (by segment identity) before applying it, so identical
// piggy-backed work from concurrent scans coalesces into one application
// instead of racing. Retired snapshots are reclaimed by the garbage
// collector once their last reader drops them (RCU-style retirement).
//
// With SetParallelism(n > 1), the per-segment scan work of a single query
// additionally fans out across a bounded pool of n workers, each
// accumulating its own QueryStats delta; the deltas and the per-segment
// results are merged in segment order, so results are deterministic and
// byte-identical to the serial path. The Tracer must be safe for
// concurrent use when parallelism is enabled, and its events may be
// reordered relative to serial execution.
type Segmenter struct {
	// eng owns the published (list, delta) pair, the writer mutex and
	// the merge-back protocol, shared with the Replicator. eng.Mu is the
	// single-writer path: model decisions (the models are stateful — GD
	// owns a random stream, AutoAPM tunes its bounds) and every list
	// mutation happen under it.
	eng    engine[segment.List]
	mod    model.Model
	tracer Tracer
	codec  atomic.Pointer[compress.Codec] // nil = compression off
	// totalBytes is the logical column size, the TotSize of the GD model;
	// stored is the physical footprint, maintained incrementally as
	// segments are rewritten so per-query snapshots stay O(1).
	totalBytes atomic.Int64
	stored     atomic.Int64
	// par is the per-query scan fan-out width (0 = adaptive, 1 = serial,
	// n > 1 = bounded at n).
	par atomic.Int32
	// ob is the resolved observability handle set (nil = uninstrumented;
	// the query path pays one atomic load either way).
	ob atomic.Pointer[strategyObs]
}

// NewSegmenter builds the strategy over a fresh single-segment column
// covering extent and holding vals. elemSize is the accounted bytes per
// value; tracer may be nil.
func NewSegmenter(extent domain.Range, vals []domain.Value, elemSize int64, m model.Model, tracer Tracer) *Segmenter {
	if tracer == nil {
		tracer = nopTracer{}
	}
	l := segment.NewList(extent, vals, elemSize)
	s := &Segmenter{mod: m, tracer: tracer}
	s.eng.initEngine(l, elemSize)
	s.totalBytes.Store(int64(l.TotalBytes()))
	s.stored.Store(int64(l.TotalBytes()))
	// The initial column is materialized storage the buffer layer should
	// know about.
	s.tracer.Materialize(l.Seg(0).ID, int64(l.TotalBytes()))
	return s
}

// SetParallelism sets the bounded worker count a single query may fan its
// per-segment scans out to. 0 (the default) picks the fan-out per query
// from the snapshot's overlapping segment count and scan volume — large
// multi-segment scans use up to GOMAXPROCS workers, small ones stay
// serial; 1 forces serial execution; n > 1 bounds the fan-out at n.
// Safety for concurrent Select calls does not depend on this knob; it
// only widens intra-query scans. With any non-serial setting an attached
// Tracer must be safe for concurrent use.
func (s *Segmenter) SetParallelism(n int) {
	if n < 0 {
		n = 1
	}
	s.par.Store(int32(n))
}

// Adaptive parallelism thresholds: a query fans out only when it spans
// at least adaptiveMinTasks segments and adaptiveMinBytes of physical
// scan volume — below that, goroutine hand-off costs more than the scan.
const (
	adaptiveMinTasks = 4
	adaptiveMinBytes = 4 << 20
)

// adaptiveFanout picks the per-query worker count for Parallelism == 0:
// serial for small scans, up to GOMAXPROCS (capped at 16) workers for
// scans wide and heavy enough to amortize the fan-out. The decision is
// taken from the unit of work actually in front of the query — the
// overlapping segments of ONE strategy instance — so in a sharded column
// (internal/shard) every shard sizes its fan-out from its own segment
// count and scan volume, and a small hot shard never inherits the
// fan-out a large column-wide scan would justify.
func adaptiveFanout(nTasks int, scanBytes int64) int {
	if nTasks < adaptiveMinTasks || scanBytes < adaptiveMinBytes {
		return 1
	}
	par := runtime.GOMAXPROCS(0)
	if par > nTasks {
		par = nTasks
	}
	if par > 16 {
		par = 16
	}
	return par
}

// SetObserver attaches (or, with a nil observer, detaches) the
// observability layer: metric handles are resolved once here, gauge
// callbacks — all lock-free: atomics and immutable snapshots only — are
// registered under this instance's strategy/shard labels, and subsequent
// queries, writes and reorganizations account against them. shardIdx
// labels the series ("0" for an unsharded column).
func (s *Segmenter) SetObserver(ob *obs.Observer, shardIdx int) {
	if ob == nil {
		s.ob.Store(nil)
		return
	}
	so := newStrategyObs(ob, "segm", shardIdx)
	s.ob.Store(so)
	s.eng.setPublishCounter(ob.Registry.Counter(so.seriesName("selforg_publications_total")))
	reg := ob.Registry
	reg.GaugeFunc(so.seriesName("selforg_delta_pending_bytes"), s.eng.Delta.PendingBytes)
	reg.GaugeFunc(so.seriesName("selforg_storage_bytes"), s.stored.Load)
	reg.GaugeFunc(so.seriesName("selforg_storage_uncompressed_bytes"), s.totalBytes.Load)
	reg.GaugeFunc(so.seriesName("selforg_segments"), func() int64 {
		return int64(s.eng.Base().Len())
	})
}

// SetCompression attaches the compression subsystem: subsequent
// materializations are encoded under mode, and the existing segments are
// re-encoded immediately (the construction-time counterpart of the
// initial Materialize event). The re-encoded list is built copy-on-write
// and published atomically, so concurrent readers keep a consistent
// snapshot. Off detaches the codec, decoding nothing — already encoded
// segments stay encoded and decay lazily as splits rewrite them.
func (s *Segmenter) SetCompression(mode compress.Mode) {
	s.eng.Mu.Lock()
	defer s.eng.Mu.Unlock()
	list := s.eng.Base()
	codec := compress.NewCodec(mode, list.ElemSize())
	s.codec.Store(codec)
	if codec.Enabled() {
		list = list.Encoded(codec)
		s.eng.Publish(list)
	}
	s.stored.Store(int64(list.StoredBytes()))
}

// Compression returns the active compression mode.
func (s *Segmenter) Compression() compress.Mode { return s.codec.Load().Mode() }

// Name implements Strategy.
func (s *Segmenter) Name() string { return s.mod.Name() + " Segm" }

// List exposes the current meta-index snapshot (read-only use:
// diagnostics, validation in tests, Table 2 statistics). The snapshot is
// immutable; later reorganization publishes successors without touching
// it.
func (s *Segmenter) List() *segment.List { return s.eng.Base() }

// SegmentCount implements Strategy.
func (s *Segmenter) SegmentCount() int { return s.eng.Base().Len() }

// StorageBytes implements Strategy: the physical storage held. Adaptive
// segmentation reorganizes in place, so without compression this is
// always exactly the column size; with compression it shrinks as the
// advisor encodes segments.
func (s *Segmenter) StorageBytes() domain.ByteSize { return domain.ByteSize(s.stored.Load()) }

// UncompressedBytes implements Strategy.
func (s *Segmenter) UncompressedBytes() domain.ByteSize {
	return domain.ByteSize(s.totalBytes.Load())
}

// SegmentSizes implements Strategy.
func (s *Segmenter) SegmentSizes() []float64 { return s.eng.Base().SegmentBytes() }

// EncodingStats implements DeltaStrategy: the per-encoding storage
// breakdown of the current snapshot (satisfied without locking — the
// snapshot is immutable).
func (s *Segmenter) EncodingStats() segment.EncodingStats {
	return s.eng.Base().EncodingStats()
}

// info builds the model's view of a segment. Models reason about logical
// sizes, so split decisions are identical with compression on or off.
func (s *Segmenter) info(sg *segment.Segment, elem int64) model.SegmentInfo {
	return model.SegmentInfo{
		Rng:        sg.Rng,
		Bytes:      int64(sg.Bytes(elem)),
		TotalBytes: s.totalBytes.Load(),
	}
}

// snapshot fills the per-query storage measures from the maintained
// counters — O(1), no list sweep on the query path.
func (s *Segmenter) snapshot(st *QueryStats) {
	st.StorageBytes = s.totalBytes.Load()
	st.CompressedBytes = s.stored.Load()
}

// segTask is one planned unit of per-segment work for a query: the
// snapshot segment to scan plus the model's verdict on it. Tasks are
// built in visit order (segments high-to-low) under the writer lock, then
// executed serially or fanned out across the worker pool.
type segTask struct {
	seg     *segment.Segment
	covered bool // whole segment qualifies: no filtering, no decision
	action  model.Action
	point   domain.Value // SplitPoint cut
}

// segOutcome is what executing one segTask produced: the task's result
// contribution (one rope chunk, marked borrowed when it aliases published
// segment storage) and, for splits, the freshly materialized (and already
// encoded) replacement pieces — the reorganization intent handed to the
// single-writer path.
type segOutcome struct {
	vals     []domain.Value
	borrowed bool
	count    int64
	subs     []*segment.Segment
	recodes  int
}

// appendTo adds the outcome's result contribution to the rope with the
// right ownership flag.
func (o *segOutcome) appendTo(r *result.Rope) {
	if o.borrowed {
		r.AppendBorrowed(o.vals)
	} else {
		r.AppendOwned(o.vals)
	}
}

// Select implements Algorithm 1:
//
//	for all segments S overlapping with query range [QL,QH] do
//	    if segmentation model decides split of S then
//	        scan S and materialize its sub-segments
//	        replace S with its sub-segments
//
// and simultaneously evaluates the selection, returning the qualifying
// values. Segments are visited high-to-low, matching the paper's
// in-place replacement order.
func (s *Segmenter) Select(q domain.Range) ([]domain.Value, QueryStats) {
	r, st := s.SelectRope(q)
	return r.Flatten(), st
}

// SelectRope implements RopeSelector: the same Algorithm-1 pass, with the
// result assembled as a rope of per-segment chunks. Fully covered
// segments whose storage form holds a materialized slice contribute a
// zero-copy borrowed chunk; everything else contributes the freshly
// extracted values as an owned chunk.
func (s *Segmenter) SelectRope(q domain.Range) (*result.Rope, QueryStats) {
	so := s.ob.Load()
	var begin time.Time
	var span *obs.Span
	if so != nil {
		begin = time.Now()
		span = so.span("select", q)
	}
	rope, _, st := s.run(q, true, true, span)
	st.ResultCount = int64(rope.Len())
	if so != nil {
		so.query(true, begin, &st)
		finishSpan(span, &st)
	}
	return rope, st
}

// Count implements Strategy: the same Algorithm-1 pass with counting
// sinks. A segment fully covered by the query contributes its meta-index
// count without being scanned at all, and partially covered segments are
// counted on their (possibly compressed) form without copying a value.
func (s *Segmenter) Count(q domain.Range) (int64, QueryStats) {
	so := s.ob.Load()
	var begin time.Time
	var span *obs.Span
	if so != nil {
		begin = time.Now()
		span = so.span("count", q)
	}
	_, n, st := s.run(q, false, false, span)
	st.ResultCount = n
	if so != nil {
		so.query(false, begin, &st)
		finishSpan(span, &st)
	}
	return n, st
}

// run is the shared reorganize-while-scanning pipeline:
//
//  1. Plan (under mu): walk the snapshot's overlapping segments
//     high-to-low and consult the model for each partially covered one —
//     the only phase that touches stateful model state.
//  2. Execute: scan, filter or partition each task's segment on the
//     snapshot. Serial mode executes in order with inline application,
//     reproducing the paper's exact interleaving; parallel mode fans the
//     tasks out across the worker pool and merges per-worker stats.
//  3. Apply (under mu): re-validate each split intent against the current
//     list by segment identity, replace copy-on-write, and publish the
//     new snapshot. Intents whose segment a concurrent query already
//     reorganized are dropped — the coalescing step.
//
// wantVals selects extraction vs counting sinks; scanCovered controls
// whether fully covered segments account a scan (a selection reads them
// to copy values out, a count answers them from the meta-index for free).
func (s *Segmenter) run(q domain.Range, wantVals, scanCovered bool, span *obs.Span) (*result.Rope, int64, QueryStats) {
	var st QueryStats
	tRoute := span.StartPhase()
	s.eng.Mu.Lock()
	// Pin the MVCC view: the (list snapshot, delta snapshot) pair. Both
	// are taken under the writer lock, and merge-back publishes its
	// rewritten list and drained store while holding it, so the pair is
	// always consistent — a delta entry is visible either through the
	// overlay or through the merged base, never both, never neither.
	// (Lock-free pinners — Pin, the shard router's views — use
	// eng.Pin's epoch protocol instead; the plan phase needs the lock
	// for the stateful model anyway, so pinning under it costs nothing.)
	list := s.eng.Base()
	dsnap := s.eng.Delta.Snapshot()
	elem := list.ElemSize()
	lo, hi := list.Overlapping(q)
	tasks := make([]segTask, 0, hi-lo)
	var scanBytes int64
	for i := hi - 1; i >= lo; i-- {
		sg := list.Seg(i)
		if domain.Classify(sg.Rng, q) == domain.CoversAll {
			// The whole segment qualifies; it immediately benefits from
			// earlier reorganization (Figure 3, Q2 on the last segment).
			// A counting query answers covered segments from the
			// meta-index without touching data, so they only contribute
			// to the adaptive fan-out volume when they will be scanned.
			if scanCovered || wantVals {
				scanBytes += int64(sg.StoredBytes(elem))
			}
			tasks = append(tasks, segTask{seg: sg, covered: true})
			continue
		}
		scanBytes += int64(sg.StoredBytes(elem))
		d := s.mod.Decide(q, s.info(sg, elem))
		tasks = append(tasks, segTask{seg: sg, action: d.Action, point: d.Point})
	}
	codec := s.codec.Load()
	par := int(s.par.Load())
	if par == 0 {
		par = adaptiveFanout(len(tasks), scanBytes)
	}
	span.EndPhase(obs.PhaseRoute, tRoute)

	if par <= 1 || len(tasks) < 2 {
		// Serial: execute and apply each task in order while holding the
		// writer lock — the exact interleaving of the paper's serial
		// Algorithm 1, tracer events included. Each task contributes one
		// rope chunk in task order, so assembly is O(1) per segment.
		rope := result.New()
		var count int64
		for _, t := range tasks {
			out := s.execTask(q, t, wantVals, scanCovered, elem, codec, &st)
			if out.subs != nil {
				tAdapt := span.StartPhase()
				s.applyIntent(t, out, &st)
				span.EndPhase(obs.PhaseAdapt, tAdapt)
			}
			out.appendTo(rope)
			count += out.count
		}
		tOv := span.StartPhase()
		rope, count = overlayDelta(dsnap, q, wantVals, rope, count, &st)
		span.EndPhase(obs.PhaseOverlay, tOv)
		s.snapshot(&st)
		s.eng.Mu.Unlock()
		return rope, count, st
	}
	s.eng.Mu.Unlock()

	outs := s.execParallel(q, tasks, wantVals, scanCovered, par, elem, codec, &st)

	tAdapt := span.StartPhase()
	s.eng.Mu.Lock()
	rope := result.New()
	var count int64
	for i, t := range tasks {
		if outs[i].subs != nil {
			s.applyIntent(t, outs[i], &st)
		}
		outs[i].appendTo(rope)
		count += outs[i].count
	}
	span.EndPhase(obs.PhaseAdapt, tAdapt)
	tOv := span.StartPhase()
	rope, count = overlayDelta(dsnap, q, wantVals, rope, count, &st)
	span.EndPhase(obs.PhaseOverlay, tOv)
	s.snapshot(&st)
	s.eng.Mu.Unlock()
	return rope, count, st
}

// overlayDelta applies the pinned delta snapshot to an assembled base
// result: visible tombstones mask one base occurrence each, visible
// inserts are unioned in (Figure 1's kdifference/kunion chain, in
// memory). The overlay pass over the pending entries is accounted as
// read volume.
//
// The overlay mutates a flat slice in place, so a non-empty delta forces
// the rope to flatten first — Flatten guarantees a mutable, unshared
// slice (borrowed chunks are copied) — and the result is rewrapped as a
// single owned chunk. The zero-copy rope shape survives exactly when the
// pinned delta is empty, which is the steady state between write bursts.
func overlayDelta(dsnap *delta.Snapshot, q domain.Range, wantVals bool, rope *result.Rope, count int64, st *QueryStats) (*result.Rope, int64) {
	if dsnap.Len() == 0 {
		return rope, count
	}
	b := dsnap.OverlayBytes(q)
	st.ReadBytes += b
	st.DeltaReadBytes += b
	if wantVals {
		return result.FromOwned(dsnap.Overlay(q, rope.Flatten())), count
	}
	return rope, count + dsnap.CountDelta(q)
}

// execTask scans one task's segment on the snapshot: extraction or
// counting for the result, partitioning (and encoding) for split intents.
// It never mutates shared state; read volumes accumulate into st and
// extracted values come back as one rope chunk per task — borrowed when
// the chunk aliases published segment storage (a covered segment's
// materialized slice, a split's mid piece shared with the fresh
// sub-segment), owned when the task allocated it.
func (s *Segmenter) execTask(q domain.Range, t segTask, wantVals, scanCovered bool, elem int64, codec *compress.Codec, st *QueryStats) segOutcome {
	var out segOutcome
	if t.covered {
		if scanCovered {
			b := int64(t.seg.StoredBytes(elem))
			st.ReadBytes += b
			s.tracer.Scan(t.seg.ID, b)
		}
		if wantVals {
			// The whole segment qualifies: borrow its materialized slice
			// when the storage form has one (raw or plain-encoded), copy
			// out only when decoding is unavoidable.
			if vals, ok := t.seg.BorrowValues(); ok {
				out.vals, out.borrowed = vals, true
			} else {
				out.vals = t.seg.AppendValues(nil)
			}
		} else {
			out.count = t.seg.Count()
		}
		return out
	}
	// Every partially overlapping segment is scanned: either to extract
	// (or count) the qualifying values or to partition it. The meta-index
	// already excluded all non-overlapping segments without touching
	// data; compressed segments are read at their encoded size.
	segBytes := int64(t.seg.StoredBytes(elem))
	st.ReadBytes += segBytes
	s.tracer.Scan(t.seg.ID, segBytes)

	switch t.action {
	case model.NoSplit:
		if wantVals {
			out.vals = t.seg.AppendSelect(q, nil)
		} else {
			out.count = t.seg.SelectCount(q)
		}

	case model.SplitBounds:
		sp := domain.Cut(t.seg.Rng, q)
		left, mid, right := t.seg.Partition(q)
		subs := make([]*segment.Segment, 0, 3)
		if !sp.Left.IsEmpty() {
			subs = append(subs, segment.NewMaterialized(sp.Left, left))
		}
		midSeg := segment.NewMaterialized(sp.Overlap, mid)
		subs = append(subs, midSeg)
		if !sp.Right.IsEmpty() {
			subs = append(subs, segment.NewMaterialized(sp.Right, right))
		}
		// The mid piece is exactly the selection overlap: it is the
		// result contribution whether or not the intent later applies.
		// The slice is shared with the fresh mid sub-segment (a plain
		// encoding aliases it), so the chunk is borrowed.
		if wantVals {
			out.vals, out.borrowed = mid, true
		} else {
			out.count = int64(len(mid))
		}
		for _, sub := range subs {
			if sub.Encode(codec) {
				out.recodes++
			}
		}
		out.subs = subs

	case model.SplitPoint:
		lv, rv := t.seg.SplitAt(t.point)
		subs := []*segment.Segment{
			segment.NewMaterialized(domain.Range{Lo: t.seg.Rng.Lo, Hi: t.point}, lv),
			segment.NewMaterialized(domain.Range{Lo: t.point + 1, Hi: t.seg.Rng.Hi}, rv),
		}
		// A point split does not isolate the selection: filter the
		// pieces that still overlap the query.
		for _, sub := range subs {
			if sub.Rng.Overlaps(q) {
				if wantVals {
					out.vals = sub.AppendSelect(q, out.vals)
				} else {
					out.count += sub.SelectCount(q)
				}
			}
		}
		for _, sub := range subs {
			if sub.Encode(codec) {
				out.recodes++
			}
		}
		out.subs = subs

	default:
		panic(fmt.Sprintf("core: unknown model action %v", t.action))
	}
	return out
}

// execParallel fans the tasks out across a bounded pool of par workers.
// Each worker accumulates its own QueryStats delta; outcomes land in
// per-task slots so the merge is deterministic regardless of scheduling.
func (s *Segmenter) execParallel(q domain.Range, tasks []segTask, wantVals, scanCovered bool, par int, elem int64, codec *compress.Codec, st *QueryStats) []segOutcome {
	outs := make([]segOutcome, len(tasks))
	workers := par
	if workers > len(tasks) {
		workers = len(tasks)
	}
	deltas := make([]QueryStats, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(tasks) {
					return
				}
				outs[i] = s.execTask(q, tasks[i], wantVals, scanCovered, elem, codec, &deltas[w])
			}
		}(w)
	}
	wg.Wait()
	for i := range deltas {
		st.ReadBytes += deltas[i].ReadBytes
	}
	return outs
}

// applyIntent is the single-writer application of one split intent
// (caller holds mu): re-locate the snapshot segment in the current list
// by identity, swap in the materialized pieces copy-on-write, publish the
// new snapshot and account the materialization — the entire reorganized
// segment is written back (§6.1.1: "segmentation reorganizes an entire
// segment independently of the precise selected size"). A stale intent —
// its segment already reorganized by a concurrent query — is dropped:
// that is how identical piggy-backed work from concurrent scans coalesces
// into one application.
func (s *Segmenter) applyIntent(t segTask, out segOutcome, st *QueryStats) {
	list := s.eng.Base()
	i := list.IndexOf(t.seg)
	if i < 0 {
		return
	}
	elem := list.ElemSize()
	next := list.Replaced(i, out.subs...)
	// Register the fresh pages with the tracer before publishing the
	// snapshot, so readers of the new list find them; the old page is
	// dropped after, so readers of the old snapshot race at most into a
	// retired-page scan (which pool tracers account via TouchOrRetired).
	var written int64
	for _, sub := range out.subs {
		b := int64(sub.StoredBytes(elem))
		st.WriteBytes += b
		written += b
		s.tracer.Materialize(sub.ID, b)
	}
	s.eng.Publish(next)
	old := int64(t.seg.StoredBytes(elem))
	s.stored.Add(written - old)
	s.tracer.Drop(t.seg.ID, old)
	st.Splits++
	st.Recodes += out.recodes
	if so := s.ob.Load(); so != nil {
		so.event(so.evSplit, "split", obs.Event{
			Lo:     t.seg.Rng.Lo,
			Hi:     t.seg.Rng.Hi,
			Before: list.Len(),
			After:  next.Len(),
			Bytes:  written,
		})
		so.recodes(out.recodes)
	}
}

// Glue merges the adjacent segment run [i, j] back into one segment — the
// merging counterpart the paper names as the antidote to GD fragmentation
// (§8). It returns the bytes rewritten. Exposed for the merge ablation.
func (s *Segmenter) Glue(i, j int) int64 {
	s.eng.Mu.Lock()
	defer s.eng.Mu.Unlock()
	return s.glueLocked(i, j)
}

// glueLocked performs one copy-on-write glue and publishes the result
// (caller holds mu).
func (s *Segmenter) glueLocked(i, j int) int64 {
	list := s.eng.Base()
	elem := list.ElemSize()
	var rewritten int64
	for k := i; k <= j; k++ {
		sg := list.Seg(k)
		b := int64(sg.StoredBytes(elem))
		rewritten += b
		s.stored.Add(-b)
		s.tracer.Scan(sg.ID, b)
		s.tracer.Drop(sg.ID, b)
	}
	next := list.Glued(i, j)
	merged := next.Seg(i)
	// Encode before publishing: a published segment is immutable.
	merged.Encode(s.codec.Load())
	mb := int64(merged.StoredBytes(elem))
	s.stored.Add(mb)
	s.tracer.Materialize(merged.ID, mb)
	s.eng.Publish(next)
	if so := s.ob.Load(); so != nil {
		so.event(so.evGlue, "glue", obs.Event{
			Lo:     merged.Rng.Lo,
			Hi:     merged.Rng.Hi,
			Before: j - i + 1,
			After:  1,
			Bytes:  rewritten,
		})
	}
	return rewritten
}

// GlueSmall merges every maximal run of adjacent segments smaller than
// minBytes into its successor until no mergeable run remains, returning
// the total bytes rewritten (segmentation always supports gluing, so the
// second result is constantly true). This is the simple merging strategy
// evaluated in the ablation benches. Size comparisons are logical so
// gluing behaves identically with compression on.
func (s *Segmenter) GlueSmall(minBytes int64) (int64, bool) {
	s.eng.Mu.Lock()
	defer s.eng.Mu.Unlock()
	var rewritten int64
	for i := 0; ; {
		list := s.eng.Base()
		if i >= list.Len()-1 {
			break
		}
		elem := list.ElemSize()
		a := int64(list.Seg(i).Bytes(elem))
		b := int64(list.Seg(i + 1).Bytes(elem))
		if a < minBytes || b < minBytes {
			rewritten += s.glueLocked(i, i+1)
			continue // re-examine the merged segment at i
		}
		i++
	}
	return rewritten, true
}

// Layout implements DeltaStrategy: the flat segment list.
func (s *Segmenter) Layout() string { return s.eng.Base().Dump() }

// Validate implements DeltaStrategy: segment adjacency, extent coverage
// and value containment.
func (s *Segmenter) Validate() error { return s.eng.Base().Validate() }
