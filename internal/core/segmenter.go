package core

import (
	"fmt"

	"selforg/internal/domain"
	"selforg/internal/model"
	"selforg/internal/segment"
)

// Segmenter implements adaptive segmentation (§4, Algorithm 1): the column
// is a sequence of adjacent non-overlapping segments, initially one; each
// range selection may split the segments it overlaps, in place, as decided
// by the segmentation model. This is "eager materialization" (§3.3): the
// selected sub-segment is kept and the remaining sub-segments are
// materialized immediately, which makes the initial queries pay the
// reorganization cost.
type Segmenter struct {
	list   *segment.List
	mod    model.Model
	tracer Tracer
	// totalBytes is the fixed column size, the TotSize of the GD model.
	totalBytes int64
}

// NewSegmenter builds the strategy over a fresh single-segment column
// covering extent and holding vals. elemSize is the accounted bytes per
// value; tracer may be nil.
func NewSegmenter(extent domain.Range, vals []domain.Value, elemSize int64, m model.Model, tracer Tracer) *Segmenter {
	if tracer == nil {
		tracer = nopTracer{}
	}
	l := segment.NewList(extent, vals, elemSize)
	s := &Segmenter{list: l, mod: m, tracer: tracer, totalBytes: int64(l.TotalBytes())}
	// The initial column is materialized storage the buffer layer should
	// know about.
	s.tracer.Materialize(l.Seg(0).ID, int64(l.TotalBytes()))
	return s
}

// Name implements Strategy.
func (s *Segmenter) Name() string { return s.mod.Name() + " Segm" }

// List exposes the underlying meta-index (read-only use: diagnostics,
// validation in tests, Table 2 statistics).
func (s *Segmenter) List() *segment.List { return s.list }

// SegmentCount implements Strategy.
func (s *Segmenter) SegmentCount() int { return s.list.Len() }

// StorageBytes implements Strategy. Adaptive segmentation reorganizes in
// place, so storage is always exactly the column size.
func (s *Segmenter) StorageBytes() domain.ByteSize { return s.list.TotalBytes() }

// SegmentSizes implements Strategy.
func (s *Segmenter) SegmentSizes() []float64 { return s.list.SegmentBytes() }

// info builds the model's view of a segment.
func (s *Segmenter) info(sg *segment.Segment) model.SegmentInfo {
	return model.SegmentInfo{
		Rng:        sg.Rng,
		Bytes:      int64(sg.Bytes(s.list.ElemSize())),
		TotalBytes: s.totalBytes,
	}
}

// Select implements Algorithm 1:
//
//	for all segments S overlapping with query range [QL,QH] do
//	    if segmentation model decides split of S then
//	        scan S and materialize its sub-segments
//	        replace S with its sub-segments
//
// and simultaneously evaluates the selection, returning the qualifying
// values. Segments are visited high-to-low so in-place replacement does
// not disturb the indexes of segments still to visit.
func (s *Segmenter) Select(q domain.Range) ([]domain.Value, QueryStats) {
	var st QueryStats
	var result []domain.Value
	elem := s.list.ElemSize()
	lo, hi := s.list.Overlapping(q)
	for i := hi - 1; i >= lo; i-- {
		sg := s.list.Seg(i)
		segBytes := int64(sg.Bytes(elem))
		// Every overlapping segment is scanned: either to extract the
		// qualifying values or to partition it. The meta-index already
		// excluded all non-overlapping segments without touching data.
		st.ReadBytes += segBytes
		s.tracer.Scan(sg.ID, segBytes)

		if domain.Classify(sg.Rng, q) == domain.CoversAll {
			// The whole segment qualifies; it immediately benefits from
			// earlier reorganization (Figure 3, Q2 on the last segment).
			result = append(result, sg.Vals...)
			continue
		}
		d := s.mod.Decide(q, s.info(sg))
		switch d.Action {
		case model.NoSplit:
			result = append(result, sg.Select(q)...)

		case model.SplitBounds:
			sp := domain.Cut(sg.Rng, q)
			left, mid, right := sg.Partition(q)
			subs := make([]*segment.Segment, 0, 3)
			if !sp.Left.IsEmpty() {
				subs = append(subs, segment.NewMaterialized(sp.Left, left))
			}
			subs = append(subs, segment.NewMaterialized(sp.Overlap, mid))
			if !sp.Right.IsEmpty() {
				subs = append(subs, segment.NewMaterialized(sp.Right, right))
			}
			s.replace(i, sg, subs, &st)
			result = append(result, mid...)

		case model.SplitPoint:
			lv, rv := sg.SplitAt(d.Point)
			subs := []*segment.Segment{
				segment.NewMaterialized(domain.Range{Lo: sg.Rng.Lo, Hi: d.Point}, lv),
				segment.NewMaterialized(domain.Range{Lo: d.Point + 1, Hi: sg.Rng.Hi}, rv),
			}
			s.replace(i, sg, subs, &st)
			// A point split does not isolate the selection: filter the
			// pieces that still overlap the query.
			for _, sub := range subs {
				if sub.Rng.Overlaps(q) {
					result = append(result, sub.Select(q)...)
				}
			}

		default:
			panic(fmt.Sprintf("core: unknown model action %v", d.Action))
		}
	}
	st.ResultCount = int64(len(result))
	return result, st
}

// replace swaps segment sg (at index i) for subs and accounts the
// materialization: the entire reorganized segment is written back (§6.1.1:
// "segmentation reorganizes an entire segment independently of the precise
// selected size").
func (s *Segmenter) replace(i int, sg *segment.Segment, subs []*segment.Segment, st *QueryStats) {
	elem := s.list.ElemSize()
	s.list.Replace(i, subs...)
	for _, sub := range subs {
		b := int64(sub.Bytes(elem))
		st.WriteBytes += b
		s.tracer.Materialize(sub.ID, b)
	}
	s.tracer.Drop(sg.ID, int64(sg.Bytes(elem)))
	st.Splits++
}

// Glue merges the adjacent segment run [i, j] back into one segment — the
// merging counterpart the paper names as the antidote to GD fragmentation
// (§8). It returns the bytes rewritten. Exposed for the merge ablation.
func (s *Segmenter) Glue(i, j int) int64 {
	elem := s.list.ElemSize()
	var rewritten int64
	for k := i; k <= j; k++ {
		sg := s.list.Seg(k)
		b := int64(sg.Bytes(elem))
		rewritten += b
		s.tracer.Scan(sg.ID, b)
		s.tracer.Drop(sg.ID, b)
	}
	s.list.Glue(i, j)
	merged := s.list.Seg(i)
	s.tracer.Materialize(merged.ID, int64(merged.Bytes(elem)))
	return rewritten
}

// GlueSmall merges every maximal run of adjacent segments smaller than
// minBytes into its successor until no mergeable run remains, returning
// the total bytes rewritten. This is the simple merging strategy evaluated
// in the ablation benches.
func (s *Segmenter) GlueSmall(minBytes int64) int64 {
	elem := s.list.ElemSize()
	var rewritten int64
	for i := 0; i < s.list.Len()-1; {
		a := int64(s.list.Seg(i).Bytes(elem))
		b := int64(s.list.Seg(i + 1).Bytes(elem))
		if a < minBytes || b < minBytes {
			rewritten += s.Glue(i, i+1)
			continue // re-examine the merged segment at i
		}
		i++
	}
	return rewritten
}
