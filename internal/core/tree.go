package core

import (
	"fmt"
	"strings"

	"selforg/internal/domain"
	"selforg/internal/segment"
)

// node is one vertex of the persistent replica tree (§5): "A segment S is
// a child of a segment P if the range of values in P is a super-set of
// the range of values in S." Children tile the parent's range exactly, in
// ascending order. (The paper's pseudocode calls the down-pointers
// `ancestors`; they are children — see DESIGN.md.)
//
// Concurrency contract: a node published through the engine's base
// pointer is immutable — its segment, its children slice and every node
// reachable from it never change. All tree mutation is path copying: the
// writer builds fresh nodes from the touched leaf up to the sentinel and
// publishes the new root atomically, so any reader (or pinned View)
// holding an old root keeps a consistent tree forever. There are no
// parent pointers — a persistent structure cannot have back-edges — and
// no stored depth; both fall out of the writer's descent.
type node struct {
	seg      *segment.Segment
	children []*node
}

// isLeaf reports whether the node has no children (the pseudocode's
// `s.ancnumber = 0`).
func (n *node) isLeaf() bool { return len(n.children) == 0 }

// withChildren returns a copy of n holding kids — the path-copying
// counterpart of attaching or replacing children. kids must tile n's
// range; assertTiling guards the invariant at construction time, the
// only time it can break.
func (n *node) withChildren(kids []*node) *node {
	assertTiling(n.seg.Rng, kids)
	return &node{seg: n.seg, children: kids}
}

// withSeg returns a copy of n holding seg in place of its segment (same
// children) — the path-copying counterpart of filling or rewriting a
// payload.
func (n *node) withSeg(seg *segment.Segment) *node {
	return &node{seg: seg, children: n.children}
}

// assertTiling panics unless kids tile rng exactly: adjacent, ascending,
// first starts at rng.Lo, last ends at rng.Hi.
func assertTiling(rng domain.Range, kids []*node) {
	if len(kids) == 0 {
		panic("core: node with empty child tiling")
	}
	if kids[0].seg.Rng.Lo != rng.Lo || kids[len(kids)-1].seg.Rng.Hi != rng.Hi {
		panic(fmt.Sprintf("core: children do not tile %v", rng))
	}
	for i := 1; i < len(kids); i++ {
		if !kids[i-1].seg.Rng.Adjacent(kids[i].seg.Rng) {
			panic(fmt.Sprintf("core: children %v / %v not adjacent",
				kids[i-1].seg.Rng, kids[i].seg.Rng))
		}
	}
}

// walk visits every node under n (including n) in depth-first order,
// with the depth below n.
func (n *node) walk(visit func(*node, int)) {
	var rec func(*node, int)
	rec = func(m *node, depth int) {
		visit(m, depth)
		for _, c := range m.children {
			rec(c, depth+1)
		}
	}
	rec(n, 0)
}

// validate checks the structural invariants of the subtree rooted at n:
//   - children tile the parent's range exactly;
//   - materialized segments hold values within their bounds;
//   - every leaf has a materialized node on its path from n (coverability),
//     provided n is the sentinel or materialized itself is counted.
func (n *node) validate(coveredAbove bool) error {
	covered := coveredAbove || !n.seg.Virtual
	if n.isLeaf() {
		if !covered {
			return fmt.Errorf("core: leaf %v has no materialized ancestor", n.seg)
		}
		return nil
	}
	if n.children[0].seg.Rng.Lo != n.seg.Rng.Lo {
		return fmt.Errorf("core: first child of %v starts at %d", n.seg, n.children[0].seg.Rng.Lo)
	}
	if n.children[len(n.children)-1].seg.Rng.Hi != n.seg.Rng.Hi {
		return fmt.Errorf("core: last child of %v ends at %d", n.seg, n.children[len(n.children)-1].seg.Rng.Hi)
	}
	for i, c := range n.children {
		if i > 0 && !n.children[i-1].seg.Rng.Adjacent(c.seg.Rng) {
			return fmt.Errorf("core: children %v / %v of %v not adjacent",
				n.children[i-1].seg, c.seg, n.seg)
		}
		if err := c.validate(covered); err != nil {
			return err
		}
	}
	for _, c := range n.children {
		if !c.seg.Virtual {
			if c.seg.Enc != nil {
				// Min-max containment is equivalent to per-value
				// containment.
				if lo, hi, ok := c.seg.Enc.MinMax(); ok && (!c.seg.Rng.Contains(lo) || !c.seg.Rng.Contains(hi)) {
					return fmt.Errorf("core: encoded values [%d, %d] outside %v", lo, hi, c.seg)
				}
				continue
			}
			for _, v := range c.seg.Vals {
				if !c.seg.Rng.Contains(v) {
					return fmt.Errorf("core: value %d outside %v", v, c.seg)
				}
			}
		}
	}
	return nil
}

// dump renders the subtree like the paper's Figure 4, cross-marking
// virtual segments.
func (n *node) dump(b *strings.Builder, depth int) {
	kind := "mat"
	if n.seg.Virtual {
		kind = "vir"
	}
	fmt.Fprintf(b, "%s%s %v #%d\n", strings.Repeat("  ", depth), kind, n.seg.Rng, n.seg.Count())
	for _, c := range n.children {
		c.dump(b, depth+1)
	}
}

// overlapChildren returns the children of n overlapping q.
func (n *node) overlapChildren(q domain.Range) []*node {
	out := make([]*node, 0, len(n.children))
	for _, c := range n.children {
		if c.seg.Rng.Overlaps(q) {
			out = append(out, c)
		}
	}
	return out
}

// getCover implements Algorithm 3 on a pinned root: the minimal set of
// materialized segments covering the query — deepest materialized
// descendants, backing off to the nearest materialized ancestor when any
// branch bottoms out in a virtual leaf. The walk is read-only, so any
// goroutine may run it on any snapshot it holds.
func getCover(root *node, q domain.Range) []*node {
	var cover []*node
	if !coverRec(root, q, &cover) {
		// Unreachable while the coverability invariant holds: every leaf
		// has a materialized node on its path below the sentinel.
		panic(fmt.Sprintf("core: no cover for %v — replica tree invariant broken", q))
	}
	return cover
}

func coverRec(n *node, q domain.Range, cover *[]*node) bool {
	if n.isLeaf() {
		if n.seg.Virtual {
			return false
		}
		*cover = append(*cover, n)
		return true
	}
	start := len(*cover)
	for _, c := range n.overlapChildren(q) {
		if !coverRec(c, q, cover) {
			*cover = (*cover)[:start] // backtrack
			if n.seg.Virtual {
				return false
			}
			*cover = append(*cover, n)
			return true
		}
	}
	return true
}
