package core

import (
	"fmt"
	"strings"

	"selforg/internal/domain"
	"selforg/internal/segment"
)

// node is one vertex of the replica tree (§5): "A segment S is a child of
// a segment P if the range of values in P is a super-set of the range of
// values in S." Children tile the parent's range exactly, in ascending
// order. (The paper's pseudocode calls the down-pointers `ancestors`; they
// are children — see DESIGN.md.)
type node struct {
	seg      *segment.Segment
	parent   *node
	children []*node
	// depth below the sentinel (sentinel = 0); maintained on attach and
	// splice so the MaxDepth extension can bound tree growth.
	depth int
}

// isLeaf reports whether the node has no children (the pseudocode's
// `s.ancnumber = 0`).
func (n *node) isLeaf() bool { return len(n.children) == 0 }

// addChildren installs kids as n's children. kids must tile n's range.
func (n *node) addChildren(kids ...*node) {
	if len(kids) == 0 {
		panic("core: addChildren with no children")
	}
	if kids[0].seg.Rng.Lo != n.seg.Rng.Lo || kids[len(kids)-1].seg.Rng.Hi != n.seg.Rng.Hi {
		panic(fmt.Sprintf("core: children do not tile %v", n.seg.Rng))
	}
	for i := 1; i < len(kids); i++ {
		if !kids[i-1].seg.Rng.Adjacent(kids[i].seg.Rng) {
			panic(fmt.Sprintf("core: children %v / %v not adjacent",
				kids[i-1].seg.Rng, kids[i].seg.Rng))
		}
	}
	for _, k := range kids {
		k.parent = n
		k.setDepth(n.depth + 1)
	}
	n.children = kids
}

// setDepth fixes the depth of the subtree rooted at n.
func (n *node) setDepth(d int) {
	n.depth = d
	for _, c := range n.children {
		c.setDepth(d + 1)
	}
}

// spliceOut removes n from its parent, attaching n's children in its place
// (Algorithm 5's drop). n must have children and a parent.
func (n *node) spliceOut() {
	p := n.parent
	if p == nil {
		panic("core: spliceOut of parentless node")
	}
	idx := -1
	for i, c := range p.children {
		if c == n {
			idx = i
			break
		}
	}
	if idx < 0 {
		panic("core: node not found in parent's children")
	}
	for _, c := range n.children {
		c.parent = p
		c.setDepth(p.depth + 1)
	}
	out := make([]*node, 0, len(p.children)+len(n.children)-1)
	out = append(out, p.children[:idx]...)
	out = append(out, n.children...)
	out = append(out, p.children[idx+1:]...)
	p.children = out
	n.parent = nil
	n.children = nil
}

// walk visits every node under n (including n) in depth-first order.
func (n *node) walk(visit func(*node, int)) {
	var rec func(*node, int)
	rec = func(m *node, depth int) {
		visit(m, depth)
		for _, c := range m.children {
			rec(c, depth+1)
		}
	}
	rec(n, 0)
}

// validate checks the structural invariants of the subtree rooted at n:
//   - children tile the parent's range exactly;
//   - materialized segments hold values within their bounds;
//   - every leaf has a materialized node on its path from n (coverability),
//     provided n is the sentinel or materialized itself is counted.
func (n *node) validate(coveredAbove bool) error {
	covered := coveredAbove || !n.seg.Virtual
	if n.isLeaf() {
		if !covered {
			return fmt.Errorf("core: leaf %v has no materialized ancestor", n.seg)
		}
		return nil
	}
	if n.children[0].seg.Rng.Lo != n.seg.Rng.Lo {
		return fmt.Errorf("core: first child of %v starts at %d", n.seg, n.children[0].seg.Rng.Lo)
	}
	if n.children[len(n.children)-1].seg.Rng.Hi != n.seg.Rng.Hi {
		return fmt.Errorf("core: last child of %v ends at %d", n.seg, n.children[len(n.children)-1].seg.Rng.Hi)
	}
	for i, c := range n.children {
		if i > 0 && !n.children[i-1].seg.Rng.Adjacent(c.seg.Rng) {
			return fmt.Errorf("core: children %v / %v of %v not adjacent",
				n.children[i-1].seg, c.seg, n.seg)
		}
		if c.parent != n {
			return fmt.Errorf("core: child %v has wrong parent", c.seg)
		}
		if err := c.validate(covered); err != nil {
			return err
		}
	}
	for _, c := range n.children {
		if !c.seg.Virtual {
			if c.seg.Enc != nil {
				// Min-max containment is equivalent to per-value
				// containment.
				if lo, hi, ok := c.seg.Enc.MinMax(); ok && (!c.seg.Rng.Contains(lo) || !c.seg.Rng.Contains(hi)) {
					return fmt.Errorf("core: encoded values [%d, %d] outside %v", lo, hi, c.seg)
				}
				continue
			}
			for _, v := range c.seg.Vals {
				if !c.seg.Rng.Contains(v) {
					return fmt.Errorf("core: value %d outside %v", v, c.seg)
				}
			}
		}
	}
	return nil
}

// dump renders the subtree like the paper's Figure 4, cross-marking
// virtual segments.
func (n *node) dump(b *strings.Builder, depth int) {
	kind := "mat"
	if n.seg.Virtual {
		kind = "vir"
	}
	fmt.Fprintf(b, "%s%s %v #%d\n", strings.Repeat("  ", depth), kind, n.seg.Rng, n.seg.Count())
	for _, c := range n.children {
		c.dump(b, depth+1)
	}
}

// overlapChildren returns the children of n overlapping q.
func (n *node) overlapChildren(q domain.Range) []*node {
	out := make([]*node, 0, len(n.children))
	for _, c := range n.children {
		if c.seg.Rng.Overlaps(q) {
			out = append(out, c)
		}
	}
	return out
}
