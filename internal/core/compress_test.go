package core

import (
	"math/rand"
	"sort"
	"testing"

	"selforg/internal/compress"
	"selforg/internal/domain"
	"selforg/internal/model"
)

// compressColumn builds an RLE/dict-friendly column: sorted low-ish
// cardinality values over [0, 9999].
func compressColumn(n int) []domain.Value {
	rng := rand.New(rand.NewSource(11))
	vals := make([]domain.Value, n)
	for i := range vals {
		vals[i] = rng.Int63n(500) * 20
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

func sortedCopy(v []domain.Value) []domain.Value {
	out := append([]domain.Value(nil), v...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TestSegmenterCompressedEquivalence drives identical query streams over
// a plain and a compressed Segmenter and asserts identical results,
// identical reorganization, and a strictly smaller physical footprint.
func TestSegmenterCompressedEquivalence(t *testing.T) {
	extent := domain.NewRange(0, 9999)
	vals := compressColumn(4000)
	for _, mode := range []compress.Mode{compress.Auto, compress.ForceRLE, compress.ForceDict, compress.ForceFOR, compress.ForcePlain} {
		plain := NewSegmenter(extent, append([]domain.Value(nil), vals...), 4, model.NewAPM(256, 2048), nil)
		comp := NewSegmenter(extent, append([]domain.Value(nil), vals...), 4, model.NewAPM(256, 2048), nil)
		comp.SetCompression(mode)

		qrng := rand.New(rand.NewSource(77))
		for i := 0; i < 200; i++ {
			lo := qrng.Int63n(9000)
			q := domain.Range{Lo: lo, Hi: lo + qrng.Int63n(900) + 1}
			pr, pst := plain.Select(q)
			cr, cst := comp.Select(q)
			if len(pr) != len(cr) {
				t.Fatalf("%v q%d %v: %d vs %d results", mode, i, q, len(pr), len(cr))
			}
			ps, cs := sortedCopy(pr), sortedCopy(cr)
			for j := range ps {
				if ps[j] != cs[j] {
					t.Fatalf("%v q%d %v: result %d differs: %d vs %d", mode, i, q, j, ps[j], cs[j])
				}
			}
			if pst.Splits != cst.Splits {
				t.Fatalf("%v q%d: splits diverged (%d vs %d)", mode, i, pst.Splits, cst.Splits)
			}
			if cst.ReadBytes > pst.ReadBytes {
				t.Fatalf("%v q%d: compressed read %d > plain %d", mode, i, cst.ReadBytes, pst.ReadBytes)
			}
			if cst.CompressedBytes > cst.StorageBytes {
				t.Fatalf("%v q%d: physical %d > logical %d", mode, i, cst.CompressedBytes, cst.StorageBytes)
			}
			if err := comp.List().Validate(); err != nil {
				t.Fatalf("%v q%d: %v", mode, i, err)
			}
		}
		if plain.SegmentCount() != comp.SegmentCount() {
			t.Fatalf("%v: segment counts diverged: %d vs %d", mode, plain.SegmentCount(), comp.SegmentCount())
		}
		if comp.UncompressedBytes() != plain.StorageBytes() {
			t.Errorf("%v: logical bytes %v != plain storage %v", mode, comp.UncompressedBytes(), plain.StorageBytes())
		}
		if mode != compress.ForcePlain && comp.StorageBytes() >= plain.StorageBytes() {
			t.Errorf("%v: no compression win: %v vs %v", mode, comp.StorageBytes(), plain.StorageBytes())
		}
	}
}

// TestSegmenterCount asserts the counting path agrees with Select while
// splitting identically and reading no more.
func TestSegmenterCount(t *testing.T) {
	extent := domain.NewRange(0, 9999)
	vals := compressColumn(4000)
	sel := NewSegmenter(extent, append([]domain.Value(nil), vals...), 4, model.NewAPM(256, 2048), nil)
	cnt := NewSegmenter(extent, append([]domain.Value(nil), vals...), 4, model.NewAPM(256, 2048), nil)
	cnt.SetCompression(compress.Auto)

	qrng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		lo := qrng.Int63n(9000)
		q := domain.Range{Lo: lo, Hi: lo + qrng.Int63n(900) + 1}
		res, sst := sel.Select(q)
		n, nst := cnt.Count(q)
		if int64(len(res)) != n {
			t.Fatalf("q%d %v: count %d != select %d", i, q, n, len(res))
		}
		if nst.ResultCount != n {
			t.Fatalf("q%d: ResultCount %d != %d", i, nst.ResultCount, n)
		}
		if sst.Splits != nst.Splits {
			t.Fatalf("q%d: counting did not drive adaptation (%d vs %d splits)", i, sst.Splits, nst.Splits)
		}
		if nst.ReadBytes > sst.ReadBytes {
			t.Fatalf("q%d: count read %d > select read %d", i, nst.ReadBytes, sst.ReadBytes)
		}
	}
	if sel.SegmentCount() != cnt.SegmentCount() {
		t.Fatalf("layouts diverged: %d vs %d segments", sel.SegmentCount(), cnt.SegmentCount())
	}
}

// TestReplicatorCompressed asserts replica materialization under
// compression: identical results, valid tree, physical storage below
// logical, and exact logical parity with the plain run.
func TestReplicatorCompressed(t *testing.T) {
	extent := domain.NewRange(0, 9999)
	vals := compressColumn(4000)
	plain := NewReplicator(extent, append([]domain.Value(nil), vals...), 4, model.NewAPM(256, 2048), nil)
	comp := NewReplicator(extent, append([]domain.Value(nil), vals...), 4, model.NewAPM(256, 2048), nil)
	comp.SetCompression(compress.Auto)

	qrng := rand.New(rand.NewSource(19))
	for i := 0; i < 150; i++ {
		lo := qrng.Int63n(9000)
		q := domain.Range{Lo: lo, Hi: lo + qrng.Int63n(900) + 1}
		pr, _ := plain.Select(q)
		cr, cst := comp.Select(q)
		if len(pr) != len(cr) {
			t.Fatalf("q%d %v: %d vs %d results", i, q, len(pr), len(cr))
		}
		ps, cs := sortedCopy(pr), sortedCopy(cr)
		for j := range ps {
			if ps[j] != cs[j] {
				t.Fatalf("q%d: result %d differs", i, j)
			}
		}
		if cst.CompressedBytes > cst.StorageBytes {
			t.Fatalf("q%d: physical %d > logical %d", i, cst.CompressedBytes, cst.StorageBytes)
		}
		if err := comp.Validate(); err != nil {
			t.Fatalf("q%d: %v", i, err)
		}
	}
	if comp.UncompressedBytes() != plain.StorageBytes() {
		t.Errorf("logical storage diverged: %v vs %v", comp.UncompressedBytes(), plain.StorageBytes())
	}
	if comp.StorageBytes() >= comp.UncompressedBytes() {
		t.Errorf("no compression win: physical %v >= logical %v", comp.StorageBytes(), comp.UncompressedBytes())
	}

	// Counting agrees with selection on the compressed tree.
	n, _ := comp.Count(domain.Range{Lo: 1000, Hi: 5000})
	res, _ := plain.Select(domain.Range{Lo: 1000, Hi: 5000})
	if n != int64(len(res)) {
		t.Errorf("count %d != select %d", n, len(res))
	}
}

// TestBulkLoadCompressed asserts bulk loading keeps encoded segments
// intact for both strategies.
func TestBulkLoadCompressed(t *testing.T) {
	extent := domain.NewRange(0, 999)
	base := make([]domain.Value, 500)
	for i := range base {
		base[i] = int64(i % 250)
	}
	s := NewSegmenter(extent, append([]domain.Value(nil), base...), 4, model.NewAPM(64, 256), nil)
	s.SetCompression(compress.Auto)
	for i := 0; i < 30; i++ {
		s.Select(domain.Range{Lo: int64(i * 30), Hi: int64(i*30 + 40)})
	}
	if _, err := s.BulkLoad([]domain.Value{0, 100, 999, 500}); err != nil {
		t.Fatal(err)
	}
	if err := s.List().Validate(); err != nil {
		t.Fatal(err)
	}
	n, _ := s.Count(extent)
	if n != 504 {
		t.Errorf("segmenter count after load = %d, want 504", n)
	}

	r := NewReplicator(extent, append([]domain.Value(nil), base...), 4, model.NewAPM(64, 256), nil)
	r.SetCompression(compress.Auto)
	for i := 0; i < 30; i++ {
		r.Select(domain.Range{Lo: int64(i * 30), Hi: int64(i*30 + 40)})
	}
	if _, err := r.BulkLoad([]domain.Value{0, 100, 999, 500}); err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	rn, _ := r.Count(extent)
	if rn != 504 {
		t.Errorf("replicator count after load = %d, want 504", rn)
	}
}
