package core

import (
	"testing"
	"time"

	"selforg/internal/domain"
	"selforg/internal/model"
	"selforg/internal/obs"
)

// TestBackgroundDrainDrainsQueuedAdaptation pins the drainer's contract:
// adaptation queued because queries lost the inline TryLock is applied
// by the background goroutine, accounted under mode="background", and
// the queue-depth gauge returns to zero.
func TestBackgroundDrainDrainsQueuedAdaptation(t *testing.T) {
	r := NewReplicator(domain.NewRange(0, 999), denseColumn(1000), 1, model.Always{}, nil)
	ob := obs.NewObserver()
	r.SetObserver(ob, 0)

	// Hold the writer lock so the query's inline TryLock loses and the
	// adaptation it wants (replicating the partial cover) stays queued.
	r.eng.Mu.Lock()
	res, _ := r.Select(domain.Range{Lo: 100, Hi: 200})
	if len(res) != 101 {
		t.Fatalf("query under a held writer lock returned %d rows, want 101", len(res))
	}
	if r.adapt.empty() {
		t.Fatal("query should have queued adaptation while the writer lock was held")
	}
	r.eng.Mu.Unlock()

	stop := r.StartBackgroundDrain(time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for !r.adapt.empty() {
		if time.Now().After(deadline) {
			t.Fatal("background drainer never drained the queue")
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	stop() // idempotent

	bg := ob.Registry.Counter(`selforg_adapt_drains_total{mode="background",strategy="repl",shard="0"}`)
	if bg.Value() < 1 {
		t.Fatalf("background drain counter = %d, want >= 1", bg.Value())
	}
	// The drained adaptation materialized the queried range: later
	// queries see a multi-segment tree.
	if r.SegmentCount() < 2 {
		t.Fatalf("drained adaptation left %d segments, want >= 2", r.SegmentCount())
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestDrainPendingAdaptationNoQueue pins the fast path: with nothing
// queued the blocking drain is a no-op that takes no lock.
func TestDrainPendingAdaptationNoQueue(t *testing.T) {
	r := NewReplicator(domain.NewRange(0, 999), denseColumn(1000), 1, model.Always{}, nil)
	r.eng.Mu.Lock() // would deadlock if the empty drain acquired it
	defer r.eng.Mu.Unlock()
	if n := r.DrainPendingAdaptation(); n != 0 {
		t.Fatalf("empty drain applied %d ranges", n)
	}
}

// TestStopDrainsRemainder pins the stop contract: whatever is queued at
// stop time is applied before stop returns.
func TestStopDrainsRemainder(t *testing.T) {
	r := NewReplicator(domain.NewRange(0, 999), denseColumn(1000), 1, model.Always{}, nil)
	stop := r.StartBackgroundDrain(time.Hour) // ticks never fire in this test
	r.eng.Mu.Lock()
	r.Select(domain.Range{Lo: 300, Hi: 400})
	r.eng.Mu.Unlock()
	if r.adapt.empty() {
		t.Skip("inline drain won the race; nothing left to test")
	}
	stop()
	if !r.adapt.empty() {
		t.Fatal("stop returned with adaptation still queued")
	}
}
