package core

// Bulk loading. The paper positions the techniques for "data warehouse
// applications with few large bulk loads and prevailing read-only
// queries" (§7); this file implements the load half of that contract:
// appending a batch of values to an already-organized column.
//
// Under adaptive segmentation a loaded value belongs to exactly one
// segment (the one whose range contains it) and the contiguous storage
// model means that segment is rewritten. Under adaptive replication every
// materialized segment whose range contains the value holds a copy, so
// the value is appended to each of them, and the size estimates of
// virtual segments on the path are refreshed.
//
// Both loaders run behind their strategy's single-writer lock, rebuild
// the touched base copy-on-write and publish the fully loaded snapshot
// in one atomic step, so lock-free readers (and pinned Views) see either
// the pre-load or the post-load column, never a half-loaded one.

import (
	"fmt"
	"sort"

	"selforg/internal/domain"
	"selforg/internal/obs"
	"selforg/internal/segment"
)

// BulkLoad appends vals to the segmented column. Every touched segment is
// rewritten (contiguous storage); the returned stats account those writes.
// Values outside the column extent are rejected before any mutation.
func (s *Segmenter) BulkLoad(vals []domain.Value) (QueryStats, error) {
	var st QueryStats
	if len(vals) == 0 {
		return st, nil
	}
	s.eng.Mu.Lock()
	defer s.eng.Mu.Unlock()
	list := s.eng.Base()
	extent := list.Extent()
	for _, v := range vals {
		if !extent.Contains(v) {
			return st, fmt.Errorf("core: bulk value %d outside extent %v", v, extent)
		}
	}
	elem := list.ElemSize()
	codec := s.codec.Load()
	// Bucket values per target segment index.
	sorted := append([]domain.Value(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	buckets := make(map[int][]domain.Value)
	for _, v := range sorted {
		lo, hi := list.Overlapping(domain.Range{Lo: v, Hi: v})
		if lo >= hi {
			return st, fmt.Errorf("core: no segment covers value %d", v)
		}
		buckets[lo] = append(buckets[lo], v)
	}
	// Rewrite touched segments, highest index first (replacement
	// stability: indices below the replaced slot never shift).
	idxs := make([]int, 0, len(buckets))
	for i := range buckets {
		idxs = append(idxs, i)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(idxs)))
	for _, i := range idxs {
		sg := list.Seg(i)
		oldBytes := int64(sg.StoredBytes(elem))
		merged := make([]domain.Value, 0, sg.Count()+int64(len(buckets[i])))
		merged = sg.AppendValues(merged)
		merged = append(merged, buckets[i]...)
		repl := segment.NewMaterialized(sg.Rng, merged)
		// The rewrite is a materialization like any other: the codec
		// re-encodes the merged segment before the write is accounted.
		if repl.Encode(codec) {
			st.Recodes++
		}
		list = list.Replaced(i, repl)
		newBytes := int64(repl.StoredBytes(elem))
		st.ReadBytes += oldBytes // the rewrite scans the old segment
		st.WriteBytes += newBytes
		s.stored.Add(newBytes - oldBytes)
		s.tracer.Scan(sg.ID, oldBytes)
		s.tracer.Drop(sg.ID, oldBytes)
		s.tracer.Materialize(repl.ID, newBytes)
	}
	s.eng.Publish(list)
	s.totalBytes.Add(int64(len(vals)) * elem)
	s.snapshot(&st)
	if so := s.ob.Load(); so != nil {
		so.volumes(&st)
		so.event(so.evBulkload, "bulkload", obs.Event{
			Lo:     sorted[0],
			Hi:     sorted[len(sorted)-1],
			Before: len(buckets),
			After:  len(buckets),
			Bytes:  st.WriteBytes,
			Note:   fmt.Sprintf("values=%d", len(vals)),
		})
		so.recodes(st.Recodes)
	}
	return st, nil
}

// BulkLoad appends vals to the replicated column: each value is added to
// every materialized segment whose range contains it (replicas are
// copies), and virtual-segment size estimates along the path are bumped.
// The rewrite shares the merge-back's batched routing pass — touched
// replicas are rebuilt copy-on-write exactly once and the new root is
// published atomically, so pinned Views stay stable across the load.
func (r *Replicator) BulkLoad(vals []domain.Value) (QueryStats, error) {
	var st QueryStats
	if len(vals) == 0 {
		return st, nil
	}
	r.eng.Mu.Lock()
	defer r.eng.Mu.Unlock()
	extent := r.eng.Base().seg.Rng
	for _, v := range vals {
		if !extent.Contains(v) {
			return st, fmt.Errorf("core: bulk value %d outside extent %v", v, extent)
		}
	}
	next, mst, err := r.applyDeltaLocked(vals, nil)
	if err != nil {
		return st, err
	}
	st.Add(mst)
	if next != nil {
		r.eng.Publish(next)
	}
	r.snapshot(&st)
	if so := r.ob.Load(); so != nil {
		so.volumes(&st)
		so.event(so.evBulkload, "bulkload", obs.Event{
			Bytes: st.WriteBytes,
			Note:  fmt.Sprintf("values=%d", len(vals)),
		})
		so.recodes(st.Recodes)
	}
	return st, nil
}
