package core

// Bulk loading. The paper positions the techniques for "data warehouse
// applications with few large bulk loads and prevailing read-only
// queries" (§7); this file implements the load half of that contract:
// appending a batch of values to an already-organized column.
//
// Under adaptive segmentation a loaded value belongs to exactly one
// segment (the one whose range contains it) and the contiguous storage
// model means that segment is rewritten. Under adaptive replication every
// materialized segment whose range contains the value holds a copy, so
// the value is appended to each of them, and the size estimates of
// virtual segments on the path are refreshed.
//
// Both loaders run behind their strategy's single-writer lock; the
// segmented loader rebuilds the touched segments copy-on-write and
// publishes the fully loaded list in one atomic step, so concurrent
// readers see either the pre-load or the post-load column, never a
// half-loaded one.

import (
	"fmt"
	"sort"

	"selforg/internal/domain"
	"selforg/internal/segment"
)

// BulkLoad appends vals to the segmented column. Every touched segment is
// rewritten (contiguous storage); the returned stats account those writes.
// Values outside the column extent are rejected before any mutation.
func (s *Segmenter) BulkLoad(vals []domain.Value) (QueryStats, error) {
	var st QueryStats
	if len(vals) == 0 {
		return st, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	list := s.list.Load()
	extent := list.Extent()
	for _, v := range vals {
		if !extent.Contains(v) {
			return st, fmt.Errorf("core: bulk value %d outside extent %v", v, extent)
		}
	}
	elem := list.ElemSize()
	codec := s.codec.Load()
	// Bucket values per target segment index.
	sorted := append([]domain.Value(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	buckets := make(map[int][]domain.Value)
	for _, v := range sorted {
		lo, hi := list.Overlapping(domain.Range{Lo: v, Hi: v})
		if lo >= hi {
			return st, fmt.Errorf("core: no segment covers value %d", v)
		}
		buckets[lo] = append(buckets[lo], v)
	}
	// Rewrite touched segments, highest index first (replacement
	// stability: indices below the replaced slot never shift).
	idxs := make([]int, 0, len(buckets))
	for i := range buckets {
		idxs = append(idxs, i)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(idxs)))
	for _, i := range idxs {
		sg := list.Seg(i)
		oldBytes := int64(sg.StoredBytes(elem))
		merged := make([]domain.Value, 0, sg.Count()+int64(len(buckets[i])))
		merged = sg.AppendValues(merged)
		merged = append(merged, buckets[i]...)
		repl := segment.NewMaterialized(sg.Rng, merged)
		// The rewrite is a materialization like any other: the codec
		// re-encodes the merged segment before the write is accounted.
		if repl.Encode(codec) {
			st.Recodes++
		}
		list = list.Replaced(i, repl)
		newBytes := int64(repl.StoredBytes(elem))
		st.ReadBytes += oldBytes // the rewrite scans the old segment
		st.WriteBytes += newBytes
		s.stored.Add(newBytes - oldBytes)
		s.tracer.Scan(sg.ID, oldBytes)
		s.tracer.Drop(sg.ID, oldBytes)
		s.tracer.Materialize(repl.ID, newBytes)
	}
	s.list.Store(list)
	s.totalBytes.Add(int64(len(vals)) * elem)
	s.snapshot(&st)
	return st, nil
}

// BulkLoad appends vals to the replicated column: each value is added to
// every materialized segment whose range contains it (replicas are
// copies), and virtual-segment size estimates along the path are bumped.
func (r *Replicator) BulkLoad(vals []domain.Value) (QueryStats, error) {
	var st QueryStats
	if len(vals) == 0 {
		return st, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	extent := r.sentinel.seg.Rng
	for _, v := range vals {
		if !extent.Contains(v) {
			return st, fmt.Errorf("core: bulk value %d outside extent %v", v, extent)
		}
	}
	buckets := make(map[*node][]domain.Value) // node -> values to append
	for _, v := range vals {
		r.loadValue(r.sentinel, v, buckets)
	}
	for n, add := range buckets {
		// The rewrite scans the old payload and materializes the merged
		// one; encoded replicas are decoded, extended and re-encoded, so
		// read/write volumes are the physical footprints on both sides.
		oldBytes := int64(n.seg.StoredBytes(r.elemSize))
		n.seg.Decode()
		n.seg.Vals = append(n.seg.Vals, add...)
		if n.seg.Encode(r.codec) {
			st.Recodes++
		}
		newBytes := int64(n.seg.StoredBytes(r.elemSize))
		st.ReadBytes += oldBytes
		st.WriteBytes += newBytes
		r.storage += int64(len(add)) * r.elemSize
		r.stored += newBytes - oldBytes
		r.tracer.Scan(n.seg.ID, oldBytes)
		r.tracer.Drop(n.seg.ID, oldBytes)
		r.tracer.Materialize(n.seg.ID, newBytes)
	}
	r.totalBytes += int64(len(vals)) * r.elemSize
	r.contentEpoch.Add(1)
	r.snapshot(&st)
	return st, nil
}

// loadValue routes one value down the tree: buckets it for every
// materialized node on its path, bumps virtual estimates, and recurses
// into the child whose range contains it.
func (r *Replicator) loadValue(n *node, v domain.Value, buckets map[*node][]domain.Value) {
	if n != r.sentinel {
		if n.seg.Virtual {
			n.seg.EstCount++
		} else {
			buckets[n] = append(buckets[n], v)
		}
	}
	for _, c := range n.children {
		if c.seg.Rng.Contains(v) {
			r.loadValue(c, v, buckets)
			return
		}
	}
}
