package core

// Bulk loading. The paper positions the techniques for "data warehouse
// applications with few large bulk loads and prevailing read-only
// queries" (§7); this file implements the load half of that contract:
// appending a batch of values to an already-organized column.
//
// Under adaptive segmentation a loaded value belongs to exactly one
// segment (the one whose range contains it) and the contiguous storage
// model means that segment is rewritten. Under adaptive replication every
// materialized segment whose range contains the value holds a copy, so
// the value is appended to each of them, and the size estimates of
// virtual segments on the path are refreshed.

import (
	"fmt"
	"sort"

	"selforg/internal/domain"
	"selforg/internal/segment"
)

// BulkLoad appends vals to the segmented column. Every touched segment is
// rewritten (contiguous storage); the returned stats account those writes.
// Values outside the column extent are rejected before any mutation.
func (s *Segmenter) BulkLoad(vals []domain.Value) (QueryStats, error) {
	var st QueryStats
	if len(vals) == 0 {
		return st, nil
	}
	extent := s.list.Extent()
	for _, v := range vals {
		if !extent.Contains(v) {
			return st, fmt.Errorf("core: bulk value %d outside extent %v", v, extent)
		}
	}
	elem := s.list.ElemSize()
	// Bucket values per target segment index.
	sorted := append([]domain.Value(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	buckets := make(map[int][]domain.Value)
	for _, v := range sorted {
		lo, hi := s.list.Overlapping(domain.Range{Lo: v, Hi: v})
		if lo >= hi {
			return st, fmt.Errorf("core: no segment covers value %d", v)
		}
		buckets[lo] = append(buckets[lo], v)
	}
	// Rewrite touched segments, highest index first (Replace-stability).
	idxs := make([]int, 0, len(buckets))
	for i := range buckets {
		idxs = append(idxs, i)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(idxs)))
	for _, i := range idxs {
		sg := s.list.Seg(i)
		oldBytes := int64(sg.Bytes(elem))
		merged := make([]domain.Value, 0, len(sg.Vals)+len(buckets[i]))
		merged = append(merged, sg.Vals...)
		merged = append(merged, buckets[i]...)
		repl := segment.NewMaterialized(sg.Rng, merged)
		s.list.Replace(i, repl)
		newBytes := int64(repl.Bytes(elem))
		st.ReadBytes += oldBytes // the rewrite scans the old segment
		st.WriteBytes += newBytes
		s.tracer.Scan(sg.ID, oldBytes)
		s.tracer.Drop(sg.ID, oldBytes)
		s.tracer.Materialize(repl.ID, newBytes)
	}
	s.totalBytes += int64(len(vals)) * elem
	return st, nil
}

// BulkLoad appends vals to the replicated column: each value is added to
// every materialized segment whose range contains it (replicas are
// copies), and virtual-segment size estimates along the path are bumped.
func (r *Replicator) BulkLoad(vals []domain.Value) (QueryStats, error) {
	var st QueryStats
	if len(vals) == 0 {
		return st, nil
	}
	extent := r.sentinel.seg.Rng
	for _, v := range vals {
		if !extent.Contains(v) {
			return st, fmt.Errorf("core: bulk value %d outside extent %v", v, extent)
		}
	}
	touched := make(map[*node]int64) // node -> appended count
	for _, v := range vals {
		r.loadValue(r.sentinel, v, touched)
	}
	for n, added := range touched {
		if n == r.sentinel {
			continue
		}
		bytes := int64(len(n.seg.Vals)) * r.elemSize
		st.ReadBytes += bytes - added*r.elemSize // rewrite scans the old payload
		st.WriteBytes += bytes
		r.storage += added * r.elemSize
		r.tracer.Scan(n.seg.ID, bytes-added*r.elemSize)
		r.tracer.Drop(n.seg.ID, bytes-added*r.elemSize)
		r.tracer.Materialize(n.seg.ID, bytes)
	}
	r.totalBytes += int64(len(vals)) * r.elemSize
	return st, nil
}

// loadValue routes one value down the tree: appends to materialized
// nodes, bumps virtual estimates, and recurses into the child whose range
// contains it.
func (r *Replicator) loadValue(n *node, v domain.Value, touched map[*node]int64) {
	if n != r.sentinel {
		if n.seg.Virtual {
			n.seg.EstCount++
		} else {
			n.seg.Vals = append(n.seg.Vals, v)
			touched[n]++
		}
	}
	for _, c := range n.children {
		if c.seg.Rng.Contains(v) {
			r.loadValue(c, v, touched)
			return
		}
	}
}
