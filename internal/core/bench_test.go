package core

import (
	"math/rand"
	"testing"

	"selforg/internal/domain"
	"selforg/internal/model"
)

// benchColumn builds a 100K-value column (the §6.1 size, 1 byte/value).
func benchColumn() (domain.Range, []domain.Value) {
	dom := domain.NewRange(0, 999_999)
	rng := rand.New(rand.NewSource(1))
	vals := make([]domain.Value, 100_000)
	for i := range vals {
		vals[i] = rng.Int63n(1_000_000)
	}
	return dom, vals
}

func benchQueries(n int) []domain.Range {
	rng := rand.New(rand.NewSource(2))
	qs := make([]domain.Range, n)
	for i := range qs {
		lo := rng.Int63n(900_000)
		qs[i] = domain.Range{Lo: lo, Hi: lo + 99_999}
	}
	return qs
}

// BenchmarkSegmenterColdStart measures the expensive first queries of
// adaptive segmentation (eager materialization, §3.3).
func BenchmarkSegmenterColdStart(b *testing.B) {
	dom, vals := benchColumn()
	qs := benchQueries(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cp := append([]domain.Value(nil), vals...)
		s := NewSegmenter(dom, cp, 4, model.NewAPM(3<<10, 12<<10), nil)
		b.StartTimer()
		for _, q := range qs {
			s.Select(q)
		}
	}
}

// BenchmarkSegmenterConverged measures steady-state selections once the
// layout has adapted.
func BenchmarkSegmenterConverged(b *testing.B) {
	dom, vals := benchColumn()
	s := NewSegmenter(dom, vals, 4, model.NewAPM(3<<10, 12<<10), nil)
	qs := benchQueries(256)
	for _, q := range qs {
		s.Select(q)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, st := s.Select(qs[i%len(qs)])
		if st.ResultCount == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkReplicatorConverged measures steady-state replication lookups
// (cover computation + scan).
func BenchmarkReplicatorConverged(b *testing.B) {
	dom, vals := benchColumn()
	r := NewReplicator(dom, vals, 4, model.NewAPM(3<<10, 12<<10), nil)
	qs := benchQueries(256)
	for _, q := range qs {
		r.Select(q)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, st := r.Select(qs[i%len(qs)])
		if st.ResultCount == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkGetCover isolates Algorithm 3 on a refined replica tree.
func BenchmarkGetCover(b *testing.B) {
	dom, vals := benchColumn()
	r := NewReplicator(dom, vals, 4, model.NewAPM(3<<10, 12<<10), nil)
	for _, q := range benchQueries(512) {
		r.Select(q)
	}
	qs := benchQueries(64)
	root, _ := r.eng.Pin()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cover := getCover(root, qs[i%len(qs)])
		if len(cover) == 0 {
			b.Fatal("empty cover")
		}
	}
}
