package core

// Background adaptation drainer. The Replicator's read path never blocks
// on the writer mutex: a query that detects adaptation opportunities
// enqueues its range, and the queue drains when some query's TryLock
// wins. Under a sustained read load against a contended writer that win
// can be deferred indefinitely, leaving the layout stale — this file
// bounds that staleness with a low-priority goroutine that periodically
// drains the queue with a blocking lock acquisition. The drainer is off
// by default (it introduces background work, which perturbs the serial
// determinism the tests and benches rely on) and is enabled through the
// facade's Options.Observability.BackgroundDrain knob.

import (
	"sync"
	"time"
)

// StartBackgroundDrain launches a goroutine that drains the queued
// replication adaptation work every interval, so layout staleness is
// bounded by the interval instead of the next query's TryLock win.
// Applied work's stats are not attributed to any query; the obs layer
// (when attached) accounts each drain under mode="background" and
// exports the live queue depth. The returned stop function terminates
// the goroutine and waits for it to exit; it is idempotent.
func (r *Replicator) StartBackgroundDrain(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				r.DrainPendingAdaptation()
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
			// Leave nothing queued behind: anything enqueued between the
			// last tick and the stop is applied now.
			r.DrainPendingAdaptation()
		})
	}
}
