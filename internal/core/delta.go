package core

// MVCC point writes. The paper's write path is bulk-load shaped (§7);
// this file adds the single-row half on top of the immutable-snapshot
// substrate: Insert/Update/Delete land in a per-column write store
// (internal/delta), queries overlay the store's pinned snapshot onto
// their segment scans, and a self-organizing merge-back — triggered by
// delta-size and delta-to-base-ratio thresholds — drains accumulated
// writes into the base through the same single-writer rewrite pipeline
// bulk loads use. Merged rows then flow through the ordinary
// reorganization loop: later queries split, glue and re-encode them as
// the models dictate.
//
// Lock order: the delta store's mutex is always taken before the
// strategy's writer lock (Store.Merge holds its mutex across the apply
// callback, which acquires mu/r.mu). Queries take only the writer lock
// and read the store through lock-free snapshots, so writers never
// perturb in-flight scans.

import (
	"fmt"

	"selforg/internal/delta"
	"selforg/internal/domain"
	"selforg/internal/segment"
)

// SetDeltaPolicy implements DeltaStrategy: a write that leaves more than
// maxBytes pending, or more than ratio × the base's logical size, drains
// the write store inline (the writer pays the reorganization cost, just
// as the paper's queries pay for splits). Zero disables the respective
// trigger; both zero leaves merging to explicit MergeDeltas calls.
func (s *Segmenter) SetDeltaPolicy(maxBytes int64, ratio float64) {
	s.deltaMaxBytes.Store(maxBytes)
	s.deltaRatioBP.Store(int64(ratio * 10000))
}

// DeltaStats implements DeltaStrategy.
func (s *Segmenter) DeltaStats() delta.Stats { return s.delta.Stats() }

// Insert implements DeltaStrategy: one row lands in the write store and
// becomes visible to every query pinned afterwards. The write may
// trigger a merge-back; its cost is folded into the returned stats.
func (s *Segmenter) Insert(v domain.Value) (QueryStats, error) {
	var st QueryStats
	list := s.list.Load()
	if !list.Extent().Contains(v) {
		return st, fmt.Errorf("core: insert value %d outside extent %v", v, list.Extent())
	}
	s.delta.Insert(v)
	st.WriteBytes += list.ElemSize()
	err := maybeMergeDeltas(s, &st)
	s.snapshot(&st)
	return st, err
}

// Delete implements DeltaStrategy: removes one occurrence of v (a
// pending insert is cancelled, otherwise a base row is tombstoned). It
// reports false when no visible row carries v.
func (s *Segmenter) Delete(v domain.Value) (bool, QueryStats) {
	var st QueryStats
	list := s.list.Load()
	if !list.Extent().Contains(v) {
		s.delta.RecordMiss()
		s.snapshot(&st)
		return false, st
	}
	if !s.delta.Delete(v, s.baseCount) {
		s.snapshot(&st)
		return false, st
	}
	st.WriteBytes += list.ElemSize()
	mustMergeDeltas(s, &st)
	s.snapshot(&st)
	return true, st
}

// Update implements DeltaStrategy: atomically replaces one occurrence of
// old with new under a single version — every snapshot sees either the
// old row or the new one.
func (s *Segmenter) Update(old, new domain.Value) (bool, QueryStats) {
	var st QueryStats
	list := s.list.Load()
	if !list.Extent().Contains(old) || !list.Extent().Contains(new) {
		s.delta.RecordMiss()
		s.snapshot(&st)
		return false, st
	}
	if !s.delta.Update(old, new, s.baseCount) {
		s.snapshot(&st)
		return false, st
	}
	st.WriteBytes += 2 * list.ElemSize()
	mustMergeDeltas(s, &st)
	s.snapshot(&st)
	return true, st
}

// MergeDeltas implements DeltaStrategy: force-drains the write store
// into the base regardless of the thresholds.
func (s *Segmenter) MergeDeltas() (QueryStats, error) {
	var st QueryStats
	err := mergeDeltasNow(s, &st)
	s.snapshot(&st)
	return st, err
}

// baseCount counts the base rows carrying v on the current snapshot,
// without driving adaptation — the existence check behind Delete. Called
// under the store's mutex; takes no locks itself (the snapshot is
// immutable and merge-back serializes on the same store mutex, so the
// base cannot lose rows mid-validation).
func (s *Segmenter) baseCount(v domain.Value) int64 {
	list := s.list.Load()
	q := domain.Range{Lo: v, Hi: v}
	lo, hi := list.Overlapping(q)
	var n int64
	for i := lo; i < hi; i++ {
		n += list.Seg(i).SelectCount(q)
	}
	return n
}

// deltaMerger abstracts the strategy-specific halves of the merge-back
// path, so the trigger evaluation and drain protocol live in one place
// for both strategies.
type deltaMerger interface {
	deltaStore() *delta.Store
	deltaThresholds() (maxBytes, ratioBP int64)
	baseLogicalBytes() int64
	// applyDrained applies the drained entries under the strategy's
	// writer lock and calls commit while still holding it, so the
	// rewritten base and the drained store publish atomically for
	// readers pinning their (base, delta) pair under that same lock.
	applyDrained(st *QueryStats, ins, del []domain.Value, commit func()) error
}

// maybeMergeDeltas drains the write store when a threshold trips.
func maybeMergeDeltas(m deltaMerger, st *QueryStats) error {
	maxB, ratioBP := m.deltaThresholds()
	if !deltaOverThreshold(m.deltaStore().PendingBytes(), maxB, ratioBP, m.baseLogicalBytes()) {
		return nil
	}
	return mergeDeltasNow(m, st)
}

// mustMergeDeltas is maybeMergeDeltas for paths without an error
// return: the apply step can only fail on broken invariants (every
// write was validated), so a failure is a bug worth stopping on.
func mustMergeDeltas(m deltaMerger, st *QueryStats) {
	if err := maybeMergeDeltas(m, st); err != nil {
		panic(fmt.Sprintf("core: delta merge-back failed: %v", err))
	}
}

// mergeDeltasNow drains the store through the strategy's single-writer
// rewrite path regardless of the thresholds.
func mergeDeltasNow(m deltaMerger, st *QueryStats) error {
	n, err := m.deltaStore().Merge(func(ins, del []domain.Value, commit func()) error {
		return m.applyDrained(st, ins, del, commit)
	})
	st.Merged += n
	return err
}

// deltaStore implements deltaMerger.
func (s *Segmenter) deltaStore() *delta.Store { return s.delta }

// deltaThresholds implements deltaMerger.
func (s *Segmenter) deltaThresholds() (int64, int64) {
	return s.deltaMaxBytes.Load(), s.deltaRatioBP.Load()
}

// baseLogicalBytes implements deltaMerger.
func (s *Segmenter) baseLogicalBytes() int64 { return s.totalBytes.Load() }

// applyDrained implements deltaMerger: the rewritten list and the
// drained store are published while holding mu, so queries pinning
// their (list, delta) pair under mu always see a consistent view.
func (s *Segmenter) applyDrained(st *QueryStats, ins, del []domain.Value, commit func()) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	mst, err := s.applyDeltaLocked(ins, del)
	if err != nil {
		return err
	}
	st.Add(mst)
	commit()
	return nil
}

// applyDeltaLocked rewrites every segment touched by the drained
// entries (caller holds mu): tombstones remove one occurrence each,
// inserts append, and each touched segment is rebuilt copy-on-write,
// re-encoded and published — the bulk-load pipeline with removals. The
// Segmenter's models then reorganize the merged rows on later queries.
// All rewrites are staged and validated before anything is published or
// accounted, so an error leaves the column (and the un-drained store)
// exactly as they were.
func (s *Segmenter) applyDeltaLocked(ins, del []domain.Value) (QueryStats, error) {
	var st QueryStats
	if len(ins) == 0 && len(del) == 0 {
		return st, nil
	}
	list := s.list.Load()
	elem := list.ElemSize()
	codec := s.codec.Load()
	insB := make(map[int][]domain.Value)
	delB := make(map[int]map[domain.Value]int)
	locate := func(v domain.Value) (int, error) {
		lo, hi := list.Overlapping(domain.Range{Lo: v, Hi: v})
		if lo >= hi {
			return 0, fmt.Errorf("core: no segment covers delta value %d", v)
		}
		return lo, nil
	}
	for _, v := range ins {
		i, err := locate(v)
		if err != nil {
			return st, err
		}
		insB[i] = append(insB[i], v)
	}
	for _, v := range del {
		i, err := locate(v)
		if err != nil {
			return st, err
		}
		if delB[i] == nil {
			delB[i] = make(map[domain.Value]int)
		}
		delB[i][v]++
	}
	// Rewrite touched segments highest index first (replacement
	// stability: indices below the replaced slot never shift).
	idxs := make([]int, 0, len(insB)+len(delB))
	seen := make(map[int]bool)
	for i := range insB {
		idxs = append(idxs, i)
		seen[i] = true
	}
	for i := range delB {
		if !seen[i] {
			idxs = append(idxs, i)
		}
	}
	sortDesc(idxs)
	// Stage: build and validate every replacement before touching any
	// published or accounted state.
	type rewrite struct {
		old, repl          *segment.Segment
		oldBytes, newBytes int64
	}
	rewrites := make([]rewrite, 0, len(idxs))
	var removed int64
	for _, i := range idxs {
		sg := list.Seg(i)
		vals := make([]domain.Value, 0, int(sg.Count())+len(insB[i]))
		vals = sg.AppendValues(vals)
		if dead := delB[i]; dead != nil {
			var rm int64
			vals, rm = delta.RemoveOccurrences(vals, dead)
			removed += rm
			for v, n := range dead {
				if n > 0 {
					return st, fmt.Errorf("core: tombstone for %d has no base row in %v", v, sg.Rng)
				}
			}
		}
		vals = append(vals, insB[i]...)
		repl := segment.NewMaterialized(sg.Rng, vals)
		if repl.Encode(codec) {
			st.Recodes++
		}
		list = list.Replaced(i, repl)
		rewrites = append(rewrites, rewrite{
			old: sg, repl: repl,
			oldBytes: int64(sg.StoredBytes(elem)),
			newBytes: int64(repl.StoredBytes(elem)),
		})
	}
	// Commit: account and publish.
	for _, rw := range rewrites {
		st.ReadBytes += rw.oldBytes // the rewrite scans the old segment
		st.WriteBytes += rw.newBytes
		s.stored.Add(rw.newBytes - rw.oldBytes)
		s.tracer.Scan(rw.old.ID, rw.oldBytes)
		s.tracer.Drop(rw.old.ID, rw.oldBytes)
		s.tracer.Materialize(rw.repl.ID, rw.newBytes)
	}
	s.list.Store(list)
	s.totalBytes.Add((int64(len(ins)) - removed) * elem)
	return st, nil
}

// sortDesc sorts ints descending (tiny n; insertion sort keeps the
// merge path allocation-free beyond the slice itself).
func sortDesc(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] > xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// deltaOverThreshold evaluates the merge triggers.
func deltaOverThreshold(pending, maxBytes, ratioBP, baseBytes int64) bool {
	if pending == 0 {
		return false
	}
	if maxBytes > 0 && pending >= maxBytes {
		return true
	}
	return ratioBP > 0 && pending*10000 >= baseBytes*ratioBP
}

// --- Replicator counterparts ---

// SetDeltaPolicy implements DeltaStrategy (see Segmenter.SetDeltaPolicy).
func (r *Replicator) SetDeltaPolicy(maxBytes int64, ratio float64) {
	r.deltaMaxBytes.Store(maxBytes)
	r.deltaRatioBP.Store(int64(ratio * 10000))
}

// DeltaStats implements DeltaStrategy.
func (r *Replicator) DeltaStats() delta.Stats { return r.delta.Stats() }

// extent returns the column's domain (the sentinel covers it all).
func (r *Replicator) extent() domain.Range { return r.sentinel.seg.Rng }

// Insert implements DeltaStrategy.
func (r *Replicator) Insert(v domain.Value) (QueryStats, error) {
	var st QueryStats
	if !r.extent().Contains(v) {
		return st, fmt.Errorf("core: insert value %d outside extent %v", v, r.extent())
	}
	r.delta.Insert(v)
	st.WriteBytes += r.elemSize
	err := maybeMergeDeltas(r, &st)
	r.statsSnapshot(&st)
	return st, err
}

// Delete implements DeltaStrategy.
func (r *Replicator) Delete(v domain.Value) (bool, QueryStats) {
	var st QueryStats
	if !r.extent().Contains(v) {
		r.delta.RecordMiss()
		r.statsSnapshot(&st)
		return false, st
	}
	if !r.delta.Delete(v, r.baseCount) {
		r.statsSnapshot(&st)
		return false, st
	}
	st.WriteBytes += r.elemSize
	mustMergeDeltas(r, &st)
	r.statsSnapshot(&st)
	return true, st
}

// Update implements DeltaStrategy.
func (r *Replicator) Update(old, new domain.Value) (bool, QueryStats) {
	var st QueryStats
	if !r.extent().Contains(old) || !r.extent().Contains(new) {
		r.delta.RecordMiss()
		r.statsSnapshot(&st)
		return false, st
	}
	if !r.delta.Update(old, new, r.baseCount) {
		r.statsSnapshot(&st)
		return false, st
	}
	st.WriteBytes += 2 * r.elemSize
	mustMergeDeltas(r, &st)
	r.statsSnapshot(&st)
	return true, st
}

// MergeDeltas implements DeltaStrategy.
func (r *Replicator) MergeDeltas() (QueryStats, error) {
	var st QueryStats
	err := mergeDeltasNow(r, &st)
	r.statsSnapshot(&st)
	return st, err
}

// statsSnapshot fills the storage measures under the writer lock (the
// write paths run outside it).
func (r *Replicator) statsSnapshot(st *QueryStats) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.snapshot(st)
}

// baseCount counts base rows carrying v — the point cover's count.
// Called under the store's mutex; acquires the tree lock (lock order:
// store mutex before tree mutex, matching the merge path).
func (r *Replicator) baseCount(v domain.Value) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	q := domain.Range{Lo: v, Hi: v}
	var n int64
	for _, c := range r.getCover(q) {
		n += c.seg.SelectCount(q)
	}
	return n
}

// deltaStore implements deltaMerger.
func (r *Replicator) deltaStore() *delta.Store { return r.delta }

// deltaThresholds implements deltaMerger.
func (r *Replicator) deltaThresholds() (int64, int64) {
	return r.deltaMaxBytes.Load(), r.deltaRatioBP.Load()
}

// baseLogicalBytes implements deltaMerger.
func (r *Replicator) baseLogicalBytes() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.totalBytes
}

// applyDrained implements deltaMerger (see Segmenter.applyDrained).
func (r *Replicator) applyDrained(st *QueryStats, ins, del []domain.Value, commit func()) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	mst, err := r.applyDeltaLocked(ins, del)
	if err != nil {
		return err
	}
	st.Add(mst)
	commit()
	return nil
}

// applyDeltaLocked drains merged entries into the replica tree (caller
// holds the tree lock): a tombstone removes one occurrence of its value
// from every materialized replica on the value's path (replicas are
// copies) and decrements virtual estimates; inserts follow the BulkLoad
// routing. Every touched replica is rewritten once. Like the Segmenter
// counterpart, all rewrites are staged and validated first — an error
// leaves the tree (and the un-drained store) exactly as they were.
func (r *Replicator) applyDeltaLocked(ins, del []domain.Value) (QueryStats, error) {
	var st QueryStats
	if len(ins) == 0 && len(del) == 0 {
		return st, nil
	}
	insB := make(map[*node][]domain.Value)
	delB := make(map[*node]map[domain.Value]int)
	virtAdj := make(map[*node]int64)
	for _, v := range del {
		r.routeDelta(r.sentinel, v, -1, nil, delB, virtAdj)
	}
	for _, v := range ins {
		r.routeDelta(r.sentinel, v, +1, insB, nil, virtAdj)
	}
	touched := make(map[*node]bool, len(insB)+len(delB))
	for n := range insB {
		touched[n] = true
	}
	for n := range delB {
		touched[n] = true
	}
	// Stage: build every replacement payload on fresh slices, validating
	// tombstone targets, before mutating any node.
	type rewrite struct {
		n        *node
		vals     []domain.Value
		oldBytes int64
		net      int64 // logical elements added minus removed
	}
	rewrites := make([]rewrite, 0, len(touched))
	for n := range touched {
		vals := make([]domain.Value, 0, int(n.seg.Count())+len(insB[n]))
		vals = n.seg.AppendValues(vals)
		var removed int64
		if dead := delB[n]; dead != nil {
			vals, removed = delta.RemoveOccurrences(vals, dead)
			for v, c := range dead {
				if c > 0 {
					return st, fmt.Errorf("core: tombstone for %d has no row in replica %v", v, n.seg.Rng)
				}
			}
		}
		vals = append(vals, insB[n]...)
		rewrites = append(rewrites, rewrite{
			n: n, vals: vals,
			oldBytes: int64(n.seg.StoredBytes(r.elemSize)),
			net:      int64(len(insB[n])) - removed,
		})
	}
	// Commit: swap payloads, re-encode, account, adjust estimates.
	var netStorage int64
	for _, rw := range rewrites {
		rw.n.seg.SetPayload(rw.vals)
		if rw.n.seg.Encode(r.codec) {
			st.Recodes++
		}
		newBytes := int64(rw.n.seg.StoredBytes(r.elemSize))
		st.ReadBytes += rw.oldBytes
		st.WriteBytes += newBytes
		netStorage += rw.net
		r.stored += newBytes - rw.oldBytes
		r.tracer.Scan(rw.n.seg.ID, rw.oldBytes)
		r.tracer.Drop(rw.n.seg.ID, rw.oldBytes)
		r.tracer.Materialize(rw.n.seg.ID, newBytes)
	}
	for n, adj := range virtAdj {
		n.seg.EstCount += adj
		if n.seg.EstCount < 0 {
			n.seg.EstCount = 0
		}
	}
	r.storage += netStorage * r.elemSize
	r.totalBytes += (int64(len(ins)) - int64(len(del))) * r.elemSize
	r.contentEpoch.Add(1)
	return st, nil
}

// routeDelta routes one drained entry down the tree without mutating
// it: materialized nodes on the value's path collect the insert value
// (insB) or a removal tally (delB), virtual nodes collect estimate
// adjustments (sign per entry), and the walk recurses into the child
// whose range contains the value — the BulkLoad routing, made pure so
// the apply step can stage-then-commit.
func (r *Replicator) routeDelta(n *node, v domain.Value, sign int64, insB map[*node][]domain.Value, delB map[*node]map[domain.Value]int, virtAdj map[*node]int64) {
	if n != r.sentinel {
		switch {
		case n.seg.Virtual:
			virtAdj[n] += sign
		case sign > 0:
			insB[n] = append(insB[n], v)
		default:
			if delB[n] == nil {
				delB[n] = make(map[domain.Value]int)
			}
			delB[n][v]++
		}
	}
	for _, c := range n.children {
		if c.seg.Rng.Contains(v) {
			r.routeDelta(c, v, sign, insB, delB, virtAdj)
			return
		}
	}
}
