package core

// MVCC point writes. The paper's write path is bulk-load shaped (§7);
// this file adds the single-row half on top of the immutable-snapshot
// substrate: Insert/Update/Delete land in a per-column write store
// (internal/delta), queries overlay the store's pinned snapshot onto
// their base scans, and a self-organizing merge-back — triggered by
// delta-size and delta-to-base-ratio thresholds — drains accumulated
// writes into the base through the same single-writer rewrite pipeline
// bulk loads use. Merged rows then flow through the ordinary
// reorganization loop: later queries split, glue and re-encode them as
// the models dictate.
//
// Lock order: the delta store's mutex is always taken before the
// strategy's writer lock (Store.Merge holds its mutex across the apply
// callback, which acquires eng.Mu). Queries take no lock at all: they
// pin a consistent (base, delta) pair through the engine's epoch
// protocol, so writers never perturb in-flight scans.

import (
	"fmt"
	"sort"
	"time"

	"selforg/internal/compress"
	"selforg/internal/delta"
	"selforg/internal/domain"
	"selforg/internal/segment"
)

// SetDeltaPolicy implements DeltaStrategy: a write that leaves more than
// maxBytes pending, or more than ratio × the base's logical size, drains
// the write store inline (the writer pays the reorganization cost, just
// as the paper's queries pay for splits). Zero disables the respective
// trigger; both zero leaves merging to explicit MergeDeltas calls.
func (s *Segmenter) SetDeltaPolicy(maxBytes int64, ratio float64) {
	s.eng.SetDeltaPolicy(maxBytes, ratio)
}

// DeltaStats implements DeltaStrategy.
func (s *Segmenter) DeltaStats() delta.Stats { return s.eng.DeltaStats() }

// Insert implements DeltaStrategy: one row lands in the write store and
// becomes visible to every query pinned afterwards. The write may
// trigger a merge-back; its cost is folded into the returned stats.
func (s *Segmenter) Insert(v domain.Value) (QueryStats, error) {
	var st QueryStats
	list := s.eng.Base()
	if !list.Extent().Contains(v) {
		return st, fmt.Errorf("core: insert value %d outside extent %v", v, list.Extent())
	}
	s.eng.Delta.Insert(v)
	st.WriteBytes += list.ElemSize()
	err := maybeMergeDeltas(s, &st)
	s.snapshot(&st)
	if so := s.ob.Load(); so != nil {
		so.write(so.wIns, &st)
	}
	return st, err
}

// Delete implements DeltaStrategy: removes one occurrence of v (a
// pending insert is cancelled, otherwise a base row is tombstoned). It
// reports false when no visible row carries v; the error reports a
// merge-back failure of a delete that was accepted.
func (s *Segmenter) Delete(v domain.Value) (bool, QueryStats, error) {
	var st QueryStats
	list := s.eng.Base()
	if !list.Extent().Contains(v) {
		s.eng.Delta.RecordMiss()
		s.snapshot(&st)
		return false, st, nil
	}
	if !s.eng.Delta.Delete(v, s.baseCount) {
		s.snapshot(&st)
		return false, st, nil
	}
	st.WriteBytes += list.ElemSize()
	err := maybeMergeDeltas(s, &st)
	s.snapshot(&st)
	if so := s.ob.Load(); so != nil {
		so.write(so.wDel, &st)
	}
	return true, st, err
}

// Update implements DeltaStrategy: atomically replaces one occurrence of
// old with new under a single version — every snapshot sees either the
// old row or the new one.
func (s *Segmenter) Update(old, new domain.Value) (bool, QueryStats, error) {
	var st QueryStats
	list := s.eng.Base()
	if !list.Extent().Contains(old) || !list.Extent().Contains(new) {
		s.eng.Delta.RecordMiss()
		s.snapshot(&st)
		return false, st, nil
	}
	if !s.eng.Delta.Update(old, new, s.baseCount) {
		s.snapshot(&st)
		return false, st, nil
	}
	st.WriteBytes += 2 * list.ElemSize()
	err := maybeMergeDeltas(s, &st)
	s.snapshot(&st)
	if so := s.ob.Load(); so != nil {
		so.write(so.wUpd, &st)
	}
	return true, st, err
}

// ShareDeltaClock implements StampedWriter: rebinds the write store to a
// column-wide commit clock shared with sibling shards.
func (s *Segmenter) ShareDeltaClock(c *delta.Clock) { s.eng.Delta.ShareClock(c) }

// InsertStamped implements StampedWriter: Insert with an externally
// minted commit version, so a cross-shard update's two halves share one
// timestamp.
func (s *Segmenter) InsertStamped(ver int64, v domain.Value) (QueryStats, error) {
	var st QueryStats
	list := s.eng.Base()
	if !list.Extent().Contains(v) {
		return st, fmt.Errorf("core: insert value %d outside extent %v", v, list.Extent())
	}
	s.eng.Delta.InsertAt(ver, v)
	st.WriteBytes += list.ElemSize()
	err := maybeMergeDeltas(s, &st)
	s.snapshot(&st)
	if so := s.ob.Load(); so != nil {
		so.write(so.wIns, &st)
	}
	return st, err
}

// DeleteStamped implements StampedWriter: Delete with an externally
// minted commit version.
func (s *Segmenter) DeleteStamped(ver int64, v domain.Value) (bool, QueryStats, error) {
	var st QueryStats
	list := s.eng.Base()
	if !list.Extent().Contains(v) {
		s.eng.Delta.RecordMiss()
		s.snapshot(&st)
		return false, st, nil
	}
	if !s.eng.Delta.DeleteAt(ver, v, s.baseCount) {
		s.snapshot(&st)
		return false, st, nil
	}
	st.WriteBytes += list.ElemSize()
	err := maybeMergeDeltas(s, &st)
	s.snapshot(&st)
	if so := s.ob.Load(); so != nil {
		so.write(so.wDel, &st)
	}
	return true, st, err
}

// MergeDeltas implements DeltaStrategy: force-drains the write store
// into the base regardless of the thresholds.
func (s *Segmenter) MergeDeltas() (QueryStats, error) {
	var st QueryStats
	err := mergeDeltasNow(s, &st)
	s.snapshot(&st)
	if so := s.ob.Load(); so != nil {
		so.volumes(&st)
	}
	return st, err
}

// baseCount counts the base rows carrying v on the current snapshot,
// without driving adaptation — the existence check behind Delete. Called
// under the store's mutex; takes no locks itself (the snapshot is
// immutable and merge-back serializes on the same store mutex, so the
// base cannot lose rows mid-validation).
func (s *Segmenter) baseCount(v domain.Value) int64 {
	list := s.eng.Base()
	q := domain.Range{Lo: v, Hi: v}
	lo, hi := list.Overlapping(q)
	var n int64
	for i := lo; i < hi; i++ {
		n += list.Seg(i).SelectCount(q)
	}
	return n
}

// deltaMerger abstracts the strategy-specific halves of the merge-back
// path, so the trigger evaluation and drain protocol live in one place
// for both strategies (the thresholds and the store itself live on the
// shared engine; the thin forwarders below bridge the generic engine
// instantiations onto one interface).
type deltaMerger interface {
	deltaStore() *delta.Store
	deltaThresholds() (maxBytes, ratioBP int64)
	baseLogicalBytes() int64
	// obsHandle returns the strategy's current observability handles
	// (nil = uninstrumented), so the shared merge path accounts
	// merge-backs without knowing the concrete strategy.
	obsHandle() *strategyObs
	// applyDrained applies the drained entries under the strategy's
	// writer lock and publishes the rewritten base together with the
	// store's commit (engine.PublishMerged), so the post-merge base and
	// the drained store appear atomically to lock-free pinners.
	applyDrained(st *QueryStats, ins, del []domain.Value, commit func()) error
}

// maybeMergeDeltas drains the write store when a threshold trips.
func maybeMergeDeltas(m deltaMerger, st *QueryStats) error {
	maxB, ratioBP := m.deltaThresholds()
	if !deltaOverThreshold(m.deltaStore().PendingBytes(), maxB, ratioBP, m.baseLogicalBytes()) {
		return nil
	}
	return mergeDeltasNow(m, st)
}

// mergeDeltasNow drains the store through the strategy's single-writer
// rewrite path regardless of the thresholds.
func mergeDeltasNow(m deltaMerger, st *QueryStats) error {
	so := m.obsHandle()
	var begin time.Time
	if so != nil {
		begin = time.Now()
	}
	preRecodes := st.Recodes
	n, err := m.deltaStore().Merge(func(ins, del []domain.Value, commit func()) error {
		return m.applyDrained(st, ins, del, commit)
	})
	st.Merged += n
	if err == nil {
		so.merged(n, begin)
		so.recodes(st.Recodes - preRecodes)
	}
	return err
}

// deltaStore implements deltaMerger.
func (s *Segmenter) deltaStore() *delta.Store { return s.eng.Delta }

// deltaThresholds implements deltaMerger.
func (s *Segmenter) deltaThresholds() (int64, int64) { return s.eng.deltaThresholds() }

// baseLogicalBytes implements deltaMerger.
func (s *Segmenter) baseLogicalBytes() int64 { return s.totalBytes.Load() }

// obsHandle implements deltaMerger.
func (s *Segmenter) obsHandle() *strategyObs { return s.ob.Load() }

// applyDrained implements deltaMerger: the rewritten list and the
// drained store are published as one epoch step (PublishMerged), so
// lock-free pinners always see a consistent (list, delta) pair.
func (s *Segmenter) applyDrained(st *QueryStats, ins, del []domain.Value, commit func()) error {
	s.eng.Mu.Lock()
	defer s.eng.Mu.Unlock()
	next, mst, err := s.applyDeltaLocked(ins, del)
	if err != nil {
		return err
	}
	st.Add(mst)
	if next == nil {
		next = s.eng.Base() // nothing drained touched the base; re-stamp it
	}
	s.eng.PublishMerged(next, commit)
	return nil
}

// applyDeltaLocked stages the rewrite of every segment touched by the
// drained entries (caller holds eng.Mu): tombstones remove one
// occurrence each, inserts append, and each touched segment is rebuilt
// copy-on-write, re-encoded and accounted — the bulk-load pipeline with
// removals. The Segmenter's models then reorganize the merged rows on
// later queries. All rewrites are staged and validated before anything
// is accounted, and the caller publishes the returned list, so an error
// leaves the column (and the un-drained store) exactly as they were.
func (s *Segmenter) applyDeltaLocked(ins, del []domain.Value) (*segment.List, QueryStats, error) {
	var st QueryStats
	if len(ins) == 0 && len(del) == 0 {
		return nil, st, nil
	}
	list := s.eng.Base()
	elem := list.ElemSize()
	codec := s.codec.Load()
	insB := make(map[int][]domain.Value)
	delB := make(map[int]map[domain.Value]int)
	locate := func(v domain.Value) (int, error) {
		lo, hi := list.Overlapping(domain.Range{Lo: v, Hi: v})
		if lo >= hi {
			return 0, fmt.Errorf("core: no segment covers delta value %d", v)
		}
		return lo, nil
	}
	for _, v := range ins {
		i, err := locate(v)
		if err != nil {
			return nil, st, err
		}
		insB[i] = append(insB[i], v)
	}
	for _, v := range del {
		i, err := locate(v)
		if err != nil {
			return nil, st, err
		}
		if delB[i] == nil {
			delB[i] = make(map[domain.Value]int)
		}
		delB[i][v]++
	}
	// Rewrite touched segments highest index first (replacement
	// stability: indices below the replaced slot never shift).
	idxs := make([]int, 0, len(insB)+len(delB))
	seen := make(map[int]bool)
	for i := range insB {
		idxs = append(idxs, i)
		seen[i] = true
	}
	for i := range delB {
		if !seen[i] {
			idxs = append(idxs, i)
		}
	}
	sortDesc(idxs)
	// Stage: build and validate every replacement before touching any
	// published or accounted state.
	type rewrite struct {
		old, repl          *segment.Segment
		oldBytes, newBytes int64
	}
	rewrites := make([]rewrite, 0, len(idxs))
	var removed int64
	for _, i := range idxs {
		sg := list.Seg(i)
		vals := make([]domain.Value, 0, int(sg.Count())+len(insB[i]))
		vals = sg.AppendValues(vals)
		if dead := delB[i]; dead != nil {
			var rm int64
			vals, rm = delta.RemoveOccurrences(vals, dead)
			removed += rm
			for v, n := range dead {
				if n > 0 {
					return nil, st, fmt.Errorf("core: tombstone for %d has no base row in %v", v, sg.Rng)
				}
			}
		}
		vals = append(vals, insB[i]...)
		repl := segment.NewMaterialized(sg.Rng, vals)
		if repl.Encode(codec) {
			st.Recodes++
		}
		list = list.Replaced(i, repl)
		rewrites = append(rewrites, rewrite{
			old: sg, repl: repl,
			oldBytes: int64(sg.StoredBytes(elem)),
			newBytes: int64(repl.StoredBytes(elem)),
		})
	}
	// Commit the accounting; the caller publishes the list.
	for _, rw := range rewrites {
		st.ReadBytes += rw.oldBytes // the rewrite scans the old segment
		st.WriteBytes += rw.newBytes
		s.stored.Add(rw.newBytes - rw.oldBytes)
		s.tracer.Scan(rw.old.ID, rw.oldBytes)
		s.tracer.Drop(rw.old.ID, rw.oldBytes)
		s.tracer.Materialize(rw.repl.ID, rw.newBytes)
	}
	s.totalBytes.Add((int64(len(ins)) - removed) * elem)
	return list, st, nil
}

// sortDesc sorts ints descending (tiny n; insertion sort keeps the
// merge path allocation-free beyond the slice itself).
func sortDesc(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] > xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// batchTarget is the strategy surface the shared batch write path
// (applyOps) drives: the merge protocol plus the per-strategy extent,
// element size, base existence check and stats stamping. Both
// strategies satisfy it with methods they already have.
type batchTarget interface {
	deltaMerger
	writeExtent() domain.Range
	writeElem() int64
	baseCount(v domain.Value) int64
	snapshot(st *QueryStats)
}

// applyOps is the group-commit apply path shared by both strategies: the
// whole batch lands in the write store under ONE version bump and ONE
// snapshot publication (delta.ApplyBatch), then at most one merge-back
// threshold check runs for the batch. Per-op acceptance follows exactly
// the single-op rules — an out-of-extent insert is refused, an
// out-of-extent delete/update is refused and recorded as a miss, and
// in-extent deletes/updates validate against visible rows in op order.
// The returned error only reports a merge-back failure; per-op refusals
// are the false entries.
func applyOps(t batchTarget, ops []delta.Op) ([]bool, QueryStats, error) {
	var st QueryStats
	res := make([]bool, len(ops))
	if len(ops) == 0 {
		t.snapshot(&st)
		return res, st, nil
	}
	ext := t.writeExtent()
	elem := t.writeElem()
	// Extent screen: rejected ops never reach the store (mirrors the
	// single-op paths, which refuse before touching it).
	accepted := make([]delta.Op, 0, len(ops))
	origin := make([]int, 0, len(ops)) // accepted index -> ops index
	for i, op := range ops {
		switch op.Kind {
		case delta.OpInsert:
			if !ext.Contains(op.V) {
				continue
			}
		case delta.OpDelete:
			if !ext.Contains(op.V) {
				t.deltaStore().RecordMiss()
				continue
			}
		case delta.OpUpdate:
			if !ext.Contains(op.V) || !ext.Contains(op.New) {
				t.deltaStore().RecordMiss()
				continue
			}
		default:
			continue
		}
		accepted = append(accepted, op)
		origin = append(origin, i)
	}
	var nIns, nDel, nUpd int
	if len(accepted) > 0 {
		out := t.deltaStore().ApplyBatch(accepted, t.baseCount)
		for j, ok := range out {
			if !ok {
				continue
			}
			res[origin[j]] = true
			switch accepted[j].Kind {
			case delta.OpInsert:
				st.WriteBytes += elem
				nIns++
			case delta.OpDelete:
				st.WriteBytes += elem
				nDel++
			case delta.OpUpdate:
				st.WriteBytes += 2 * elem
				nUpd++
			}
		}
	}
	err := maybeMergeDeltas(t, &st)
	t.snapshot(&st)
	if so := t.obsHandle(); so != nil {
		so.writeBatch(nIns, nDel, nUpd, &st)
	}
	return res, st, err
}

// writeExtent implements batchTarget.
func (s *Segmenter) writeExtent() domain.Range { return s.eng.Base().Extent() }

// writeElem implements batchTarget.
func (s *Segmenter) writeElem() int64 { return s.eng.Base().ElemSize() }

// ApplyOps applies a group-committed batch of writes — see applyOps.
func (s *Segmenter) ApplyOps(ops []delta.Op) ([]bool, QueryStats, error) {
	return applyOps(s, ops)
}

// deltaOverThreshold evaluates the merge triggers.
func deltaOverThreshold(pending, maxBytes, ratioBP, baseBytes int64) bool {
	if pending == 0 {
		return false
	}
	if maxBytes > 0 && pending >= maxBytes {
		return true
	}
	return ratioBP > 0 && pending*10000 >= baseBytes*ratioBP
}

// --- Replicator counterparts ---

// DeltaStats implements DeltaStrategy.
func (r *Replicator) DeltaStats() delta.Stats { return r.eng.DeltaStats() }

// extent returns the column's domain (the sentinel covers it all).
func (r *Replicator) extent() domain.Range { return r.eng.Base().seg.Rng }

// Insert implements DeltaStrategy.
func (r *Replicator) Insert(v domain.Value) (QueryStats, error) {
	var st QueryStats
	if !r.extent().Contains(v) {
		return st, fmt.Errorf("core: insert value %d outside extent %v", v, r.extent())
	}
	r.eng.Delta.Insert(v)
	st.WriteBytes += r.elemSize
	err := maybeMergeDeltas(r, &st)
	r.snapshot(&st)
	if so := r.ob.Load(); so != nil {
		so.write(so.wIns, &st)
	}
	return st, err
}

// Delete implements DeltaStrategy.
func (r *Replicator) Delete(v domain.Value) (bool, QueryStats, error) {
	var st QueryStats
	if !r.extent().Contains(v) {
		r.eng.Delta.RecordMiss()
		r.snapshot(&st)
		return false, st, nil
	}
	if !r.eng.Delta.Delete(v, r.baseCount) {
		r.snapshot(&st)
		return false, st, nil
	}
	st.WriteBytes += r.elemSize
	err := maybeMergeDeltas(r, &st)
	r.snapshot(&st)
	if so := r.ob.Load(); so != nil {
		so.write(so.wDel, &st)
	}
	return true, st, err
}

// Update implements DeltaStrategy.
func (r *Replicator) Update(old, new domain.Value) (bool, QueryStats, error) {
	var st QueryStats
	if !r.extent().Contains(old) || !r.extent().Contains(new) {
		r.eng.Delta.RecordMiss()
		r.snapshot(&st)
		return false, st, nil
	}
	if !r.eng.Delta.Update(old, new, r.baseCount) {
		r.snapshot(&st)
		return false, st, nil
	}
	st.WriteBytes += 2 * r.elemSize
	err := maybeMergeDeltas(r, &st)
	r.snapshot(&st)
	if so := r.ob.Load(); so != nil {
		so.write(so.wUpd, &st)
	}
	return true, st, err
}

// ShareDeltaClock implements StampedWriter.
func (r *Replicator) ShareDeltaClock(c *delta.Clock) { r.eng.Delta.ShareClock(c) }

// InsertStamped implements StampedWriter.
func (r *Replicator) InsertStamped(ver int64, v domain.Value) (QueryStats, error) {
	var st QueryStats
	if !r.extent().Contains(v) {
		return st, fmt.Errorf("core: insert value %d outside extent %v", v, r.extent())
	}
	r.eng.Delta.InsertAt(ver, v)
	st.WriteBytes += r.elemSize
	err := maybeMergeDeltas(r, &st)
	r.snapshot(&st)
	if so := r.ob.Load(); so != nil {
		so.write(so.wIns, &st)
	}
	return st, err
}

// DeleteStamped implements StampedWriter.
func (r *Replicator) DeleteStamped(ver int64, v domain.Value) (bool, QueryStats, error) {
	var st QueryStats
	if !r.extent().Contains(v) {
		r.eng.Delta.RecordMiss()
		r.snapshot(&st)
		return false, st, nil
	}
	if !r.eng.Delta.DeleteAt(ver, v, r.baseCount) {
		r.snapshot(&st)
		return false, st, nil
	}
	st.WriteBytes += r.elemSize
	err := maybeMergeDeltas(r, &st)
	r.snapshot(&st)
	if so := r.ob.Load(); so != nil {
		so.write(so.wDel, &st)
	}
	return true, st, err
}

// MergeDeltas implements DeltaStrategy.
func (r *Replicator) MergeDeltas() (QueryStats, error) {
	var st QueryStats
	err := mergeDeltasNow(r, &st)
	r.snapshot(&st)
	if so := r.ob.Load(); so != nil {
		so.volumes(&st)
	}
	return st, err
}

// writeExtent implements batchTarget.
func (r *Replicator) writeExtent() domain.Range { return r.extent() }

// writeElem implements batchTarget.
func (r *Replicator) writeElem() int64 { return r.elemSize }

// ApplyOps applies a group-committed batch of writes — see applyOps.
func (r *Replicator) ApplyOps(ops []delta.Op) ([]bool, QueryStats, error) {
	return applyOps(r, ops)
}

// baseCount counts base rows carrying v — the point cover's count on the
// current snapshot, lock-free. Called under the store's mutex; the store
// serializes merges on that same mutex, so the base cannot lose rows
// mid-validation (tree reorganization preserves content).
func (r *Replicator) baseCount(v domain.Value) int64 {
	q := domain.Range{Lo: v, Hi: v}
	var n int64
	for _, c := range getCover(r.eng.Base(), q) {
		n += c.seg.SelectCount(q)
	}
	return n
}

// deltaStore implements deltaMerger.
func (r *Replicator) deltaStore() *delta.Store { return r.eng.Delta }

// deltaThresholds implements deltaMerger.
func (r *Replicator) deltaThresholds() (int64, int64) { return r.eng.deltaThresholds() }

// baseLogicalBytes implements deltaMerger.
func (r *Replicator) baseLogicalBytes() int64 { return r.totalBytes.Load() }

// obsHandle implements deltaMerger.
func (r *Replicator) obsHandle() *strategyObs { return r.ob.Load() }

// applyDrained implements deltaMerger (see Segmenter.applyDrained).
func (r *Replicator) applyDrained(st *QueryStats, ins, del []domain.Value, commit func()) error {
	r.eng.Mu.Lock()
	defer r.eng.Mu.Unlock()
	next, mst, err := r.applyDeltaLocked(ins, del)
	if err != nil {
		return err
	}
	st.Add(mst)
	if next == nil {
		next = r.eng.Base() // all entries cancelled out; re-stamp the root
	}
	r.eng.PublishMerged(next, commit)
	return nil
}

// applyDeltaLocked builds the post-merge replica tree (caller holds
// eng.Mu): one batched routing pass partitions every drained insert and
// tombstone down the tree, so each touched replica is rewritten exactly
// once per merge batch no matter how many entries its range covers — a
// tombstone removes one occurrence of its value from every materialized
// replica on the value's path (replicas are copies), inserts follow the
// bulk-load routing, and virtual estimates adjust by the net count.
// Untouched subtrees are shared with the old tree (path copying). All
// rewrites are staged and validated before anything is accounted, and
// the caller publishes the returned root — an error leaves the tree (and
// the un-drained store) exactly as they were.
func (r *Replicator) applyDeltaLocked(ins, del []domain.Value) (*node, QueryStats, error) {
	var st QueryStats
	if len(ins) == 0 && len(del) == 0 {
		return nil, st, nil
	}
	insS := routedSorted(ins)
	delS := routedSorted(del)
	codec := r.codec.Load()
	type rewrite struct {
		repl     *segment.Segment
		oldBytes int64
		recoded  bool
		net      int64 // logical elements added minus removed
	}
	var rewrites []rewrite
	sentinel := r.eng.Base()

	var rebuild func(n *node, ins, del []domain.Value) (*node, error)
	rebuild = func(n *node, ins, del []domain.Value) (*node, error) {
		if len(ins) == 0 && len(del) == 0 {
			return n, nil // untouched subtree, shared as-is
		}
		seg := n.seg
		if n != sentinel {
			if seg.Virtual {
				est := seg.EstCount + int64(len(ins)) - int64(len(del))
				if est < 0 {
					est = 0
				}
				seg = &segment.Segment{ID: seg.ID, Rng: seg.Rng, Virtual: true, EstCount: est}
			} else {
				var repl *segment.Segment
				var recoded bool
				var removed int64
				// Compression-aware merge-back: an insert-only rewrite of
				// an encoded replica extends the encoded form in place of
				// the decode → append → re-encode round trip, when the
				// encoding supports it and the codec's policy keeps it.
				// The result is identical to re-encoding the decoded
				// values plus the inserts.
				if len(del) == 0 && seg.Enc != nil && !encodedSpliceDisabled {
					if enc, ok := compress.ExtendEncoded(seg.Enc, ins); ok && codec.Allows(enc.Encoding()) {
						repl = seg.FilledEncoded(enc)
						recoded = true
					}
				}
				if repl == nil {
					vals := make([]domain.Value, 0, int(seg.Count())+len(ins))
					vals = seg.AppendValues(vals)
					if len(del) > 0 {
						dead := make(map[domain.Value]int, len(del))
						for _, v := range del {
							dead[v]++
						}
						vals, removed = delta.RemoveOccurrences(vals, dead)
						for v, c := range dead {
							if c > 0 {
								return nil, fmt.Errorf("core: tombstone for %d has no row in replica %v", v, seg.Rng)
							}
						}
					}
					vals = append(vals, ins...)
					repl = seg.Filled(vals)
					recoded = repl.Encode(codec)
				}
				rewrites = append(rewrites, rewrite{
					repl:     repl,
					oldBytes: int64(seg.StoredBytes(r.elemSize)),
					recoded:  recoded,
					net:      int64(len(ins)) - removed,
				})
				seg = repl
			}
		}
		kids := n.children
		changed := false
		for i, c := range n.children {
			cIns := rangeSlice(ins, c.seg.Rng)
			cDel := rangeSlice(del, c.seg.Rng)
			nc, err := rebuild(c, cIns, cDel)
			if err != nil {
				return nil, err
			}
			if nc != c {
				if !changed {
					kids = append([]*node(nil), n.children...)
					changed = true
				}
				kids[i] = nc
			}
		}
		if seg == n.seg && !changed {
			return n, nil
		}
		return &node{seg: seg, children: kids}, nil
	}
	next, err := rebuild(sentinel, insS, delS)
	if err != nil {
		return nil, st, err
	}
	// Commit the accounting; the caller publishes the root.
	for _, rw := range rewrites {
		newBytes := int64(rw.repl.StoredBytes(r.elemSize))
		st.ReadBytes += rw.oldBytes // the rewrite scans the old replica
		st.WriteBytes += newBytes
		if rw.recoded {
			st.Recodes++
		}
		r.stored.Add(newBytes - rw.oldBytes)
		r.storage.Add(rw.net * r.elemSize)
		r.tracer.Scan(rw.repl.ID, rw.oldBytes)
		r.tracer.Drop(rw.repl.ID, rw.oldBytes)
		r.tracer.Materialize(rw.repl.ID, newBytes)
	}
	r.totalBytes.Add((int64(len(ins)) - int64(len(del))) * r.elemSize)
	return next, st, nil
}

// routedSorted returns a sorted copy (the routing pass partitions by
// binary search).
func routedSorted(vs []domain.Value) []domain.Value {
	out := append([]domain.Value(nil), vs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// rangeSlice returns the subslice of sorted vals falling inside rng.
func rangeSlice(vals []domain.Value, rng domain.Range) []domain.Value {
	lo := sort.Search(len(vals), func(i int) bool { return vals[i] >= rng.Lo })
	hi := sort.Search(len(vals), func(i int) bool { return vals[i] > rng.Hi })
	return vals[lo:hi]
}
