package segment

import (
	"fmt"
	"sort"
	"strings"

	"selforg/internal/compress"
	"selforg/internal/domain"
)

// List is the sparse segment meta-index for a flat, adjacent,
// non-overlapping segmentation of one column (§3.1, §4). It is kept sorted
// by range so the optimizer can "pre-select and access only segments
// overlapping with the selection predicates" via binary search, without
// touching data.
//
// A List is an immutable snapshot: reorganization never mutates a
// published List in place. Replaced and Glued return fresh Lists sharing
// the untouched segments, so concurrent readers holding an older snapshot
// keep a consistent view while a writer publishes the successor (the
// RCU-style epoch scheme of the concurrency model — see ARCHITECTURE.md).
// Retired snapshots are reclaimed by the garbage collector once the last
// reader drops them.
type List struct {
	elemSize int64
	segs     []*Segment
}

// NewList creates a single-segment list covering extent and holding vals —
// the initial state S0 of Figure 3 ("the column is represented by a single
// segment"). elemSize is the accounting size of one element in bytes (the
// paper's simulation uses 4-byte values).
func NewList(extent domain.Range, vals []domain.Value, elemSize int64) *List {
	if elemSize < 1 {
		panic("segment: elemSize must be positive")
	}
	return &List{
		elemSize: elemSize,
		segs:     []*Segment{NewMaterialized(extent, vals)},
	}
}

// ElemSize returns the accounting size of one element in bytes.
func (l *List) ElemSize() int64 { return l.elemSize }

// Len returns the number of segments.
func (l *List) Len() int { return len(l.segs) }

// Seg returns the i-th segment in domain order.
func (l *List) Seg(i int) *Segment { return l.segs[i] }

// Extent returns the overall value range covered by the list.
func (l *List) Extent() domain.Range {
	return domain.Range{Lo: l.segs[0].Rng.Lo, Hi: l.segs[len(l.segs)-1].Rng.Hi}
}

// Overlapping returns the half-open index interval [lo, hi) of segments
// whose ranges overlap q. The lookup is the meta-index pre-selection of
// §3.1: it touches no data.
func (l *List) Overlapping(q domain.Range) (lo, hi int) {
	if q.IsEmpty() {
		return 0, 0
	}
	// First segment whose Hi >= q.Lo.
	lo = sort.Search(len(l.segs), func(i int) bool { return l.segs[i].Rng.Hi >= q.Lo })
	// First segment whose Lo > q.Hi.
	hi = sort.Search(len(l.segs), func(i int) bool { return l.segs[i].Rng.Lo > q.Hi })
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// Replaced returns a new List in which the i-th segment is substituted by
// subs, which must tile exactly the replaced segment's range in ascending
// adjacent order. The receiver is left untouched, so snapshots published
// to concurrent readers stay consistent.
func (l *List) Replaced(i int, subs ...*Segment) *List {
	if len(subs) == 0 {
		panic("segment: Replaced with no substitutes")
	}
	old := l.segs[i]
	if subs[0].Rng.Lo != old.Rng.Lo || subs[len(subs)-1].Rng.Hi != old.Rng.Hi {
		panic(fmt.Sprintf("segment: Replaced of %v does not tile bounds (%v..%v)",
			old.Rng, subs[0].Rng, subs[len(subs)-1].Rng))
	}
	for j := 1; j < len(subs); j++ {
		if !subs[j-1].Rng.Adjacent(subs[j].Rng) {
			panic(fmt.Sprintf("segment: Replaced pieces %v and %v not adjacent",
				subs[j-1].Rng, subs[j].Rng))
		}
	}
	out := make([]*Segment, 0, len(l.segs)+len(subs)-1)
	out = append(out, l.segs[:i]...)
	out = append(out, subs...)
	out = append(out, l.segs[i+1:]...)
	return &List{elemSize: l.elemSize, segs: out}
}

// Glued returns a new List in which the adjacent segments [i, j]
// (inclusive) are merged into a single materialized segment; the receiver
// is left untouched. The paper lists gluing as the counterpart of
// splitting ("decides to split it into pieces, or glue segments together",
// §3.1) and flags merging strategies against GD fragmentation as follow-up
// work (§8); Glued is the primitive they build on.
func (l *List) Glued(i, j int) *List {
	if i < 0 || j >= len(l.segs) || i >= j {
		panic(fmt.Sprintf("segment: Glued(%d, %d) out of bounds", i, j))
	}
	total := int64(0)
	for k := i; k <= j; k++ {
		if l.segs[k].Virtual {
			panic("segment: Glued of a virtual segment")
		}
		total += l.segs[k].Count()
	}
	vals := make([]domain.Value, 0, total)
	for k := i; k <= j; k++ {
		vals = l.segs[k].AppendValues(vals)
	}
	merged := NewMaterialized(domain.Range{Lo: l.segs[i].Rng.Lo, Hi: l.segs[j].Rng.Hi}, vals)
	out := make([]*Segment, 0, len(l.segs)-(j-i))
	out = append(out, l.segs[:i]...)
	out = append(out, merged)
	out = append(out, l.segs[j+1:]...)
	return &List{elemSize: l.elemSize, segs: out}
}

// IndexOf locates sg in the list by identity: it binary-searches the
// segment whose range starts at sg.Rng.Lo and returns its index, or -1
// when that slot holds a different segment. Writers use it to revalidate
// reorganization intents computed on an older snapshot — if the segment
// was concurrently replaced, the intent is stale and must be dropped.
func (l *List) IndexOf(sg *Segment) int {
	i := sort.Search(len(l.segs), func(k int) bool { return l.segs[k].Rng.Lo >= sg.Rng.Lo })
	if i < len(l.segs) && l.segs[i] == sg {
		return i
	}
	return -1
}

// Encoded returns a copy of the list whose segments have been passed
// through the codec as identity-preserving copies (EncodedCopy). The
// receiver is untouched, so a writer can re-encode a published snapshot
// copy-on-write.
func (l *List) Encoded(c *compress.Codec) *List {
	segs := make([]*Segment, len(l.segs))
	for i, s := range l.segs {
		segs[i] = s.EncodedCopy(c)
	}
	return &List{elemSize: l.elemSize, segs: segs}
}

// TotalCount returns the total number of stored elements.
func (l *List) TotalCount() int64 {
	var n int64
	for _, s := range l.segs {
		n += s.Count()
	}
	return n
}

// TotalBytes returns the total accounted logical (uncompressed) storage
// of the list.
func (l *List) TotalBytes() domain.ByteSize {
	return domain.ByteSize(l.TotalCount() * l.elemSize)
}

// StoredBytes returns the total physical storage of the list: equal to
// TotalBytes for raw segments, smaller where segments are compressed.
func (l *List) StoredBytes() domain.ByteSize {
	var n domain.ByteSize
	for _, s := range l.segs {
		n += s.StoredBytes(l.elemSize)
	}
	return n
}

// SegmentBytes lists the per-segment logical sizes in bytes (Table 2
// statistics).
func (l *List) SegmentBytes() []float64 {
	out := make([]float64, len(l.segs))
	for i, s := range l.segs {
		out[i] = float64(s.Count() * l.elemSize)
	}
	return out
}

// Validate checks the structural invariants of the flat segmentation:
// segments are adjacent, non-overlapping, cover the extent exactly, none is
// virtual, and every value sits inside its segment's bounds.
func (l *List) Validate() error {
	if len(l.segs) == 0 {
		return fmt.Errorf("segment: empty list")
	}
	for i, s := range l.segs {
		if s.Virtual {
			return fmt.Errorf("segment %d: virtual segment in flat list", i)
		}
		if s.Rng.IsEmpty() {
			return fmt.Errorf("segment %d: empty range", i)
		}
		if i > 0 && !l.segs[i-1].Rng.Adjacent(s.Rng) {
			return fmt.Errorf("segment %d: %v not adjacent to %v", i, l.segs[i-1].Rng, s.Rng)
		}
		if s.Enc != nil {
			// Min-max containment is equivalent to per-value containment.
			if lo, hi, ok := s.Enc.MinMax(); ok && (!s.Rng.Contains(lo) || !s.Rng.Contains(hi)) {
				return fmt.Errorf("segment %d: encoded values [%d, %d] outside %v", i, lo, hi, s.Rng)
			}
			continue
		}
		for _, v := range s.Vals {
			if !s.Rng.Contains(v) {
				return fmt.Errorf("segment %d: value %d outside %v", i, v, s.Rng)
			}
		}
	}
	return nil
}

// Dump renders the layout compactly, e.g. "[0,49]#12 | [50,99]#8".
func (l *List) Dump() string {
	parts := make([]string, len(l.segs))
	for i, s := range l.segs {
		parts[i] = fmt.Sprintf("%v#%d", s.Rng, s.Count())
	}
	return strings.Join(parts, " | ")
}
