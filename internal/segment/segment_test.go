package segment

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"selforg/internal/domain"
)

func vals(vs ...int64) []domain.Value {
	out := make([]domain.Value, len(vs))
	for i, v := range vs {
		out[i] = v
	}
	return out
}

func sortedCopy(vs []domain.Value) []domain.Value {
	out := append([]domain.Value(nil), vs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sameMultiset(a, b []domain.Value) bool {
	if len(a) != len(b) {
		return false
	}
	as, bs := sortedCopy(a), sortedCopy(b)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func TestNewMaterialized(t *testing.T) {
	s := NewMaterialized(domain.NewRange(0, 9), vals(1, 5, 9))
	if s.Virtual {
		t.Error("materialized segment marked virtual")
	}
	if s.Count() != 3 {
		t.Errorf("Count = %d", s.Count())
	}
	if s.Bytes(4) != 12 {
		t.Errorf("Bytes = %d", s.Bytes(4))
	}
}

func TestNewMaterializedPanicsOnOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range value did not panic")
		}
	}()
	NewMaterialized(domain.NewRange(0, 9), vals(10))
}

func TestNewVirtual(t *testing.T) {
	s := NewVirtual(domain.NewRange(0, 99), 50)
	if !s.Virtual || s.Count() != 50 {
		t.Errorf("virtual = %v count = %d", s.Virtual, s.Count())
	}
	if s.Bytes(4) != 200 {
		t.Errorf("Bytes = %d", s.Bytes(4))
	}
}

func TestNewVirtualClampsNegative(t *testing.T) {
	s := NewVirtual(domain.NewRange(0, 9), -5)
	if s.Count() != 0 {
		t.Errorf("negative estimate not clamped: %d", s.Count())
	}
}

func TestEstimatePiece(t *testing.T) {
	s := NewVirtual(domain.NewRange(0, 99), 100)
	if got := s.EstimatePiece(domain.NewRange(0, 49)); got != 50 {
		t.Errorf("estimate lower half = %d, want 50", got)
	}
	if got := s.EstimatePiece(domain.NewRange(90, 99)); got != 10 {
		t.Errorf("estimate tail = %d, want 10", got)
	}
	if got := s.EstimatePiece(domain.NewRange(200, 300)); got != 0 {
		t.Errorf("estimate disjoint = %d, want 0", got)
	}
}

func TestPartitionThreeWay(t *testing.T) {
	s := NewMaterialized(domain.NewRange(0, 99), vals(5, 20, 40, 60, 80, 95))
	left, mid, right := s.Partition(domain.NewRange(30, 70))
	if !sameMultiset(left, vals(5, 20)) {
		t.Errorf("left = %v", left)
	}
	if !sameMultiset(mid, vals(40, 60)) {
		t.Errorf("mid = %v", mid)
	}
	if !sameMultiset(right, vals(80, 95)) {
		t.Errorf("right = %v", right)
	}
}

func TestPartitionCoversAll(t *testing.T) {
	s := NewMaterialized(domain.NewRange(10, 20), vals(10, 15, 20))
	left, mid, right := s.Partition(domain.NewRange(0, 100))
	if left != nil || right != nil {
		t.Errorf("left/right = %v/%v, want nil", left, right)
	}
	if !sameMultiset(mid, vals(10, 15, 20)) {
		t.Errorf("mid = %v", mid)
	}
}

func TestPartitionVirtualPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Partition on virtual did not panic")
		}
	}()
	NewVirtual(domain.NewRange(0, 9), 5).Partition(domain.NewRange(0, 5))
}

func TestSelect(t *testing.T) {
	s := NewMaterialized(domain.NewRange(0, 99), vals(1, 50, 51, 99))
	got := s.Select(domain.NewRange(50, 60))
	if !sameMultiset(got, vals(50, 51)) {
		t.Errorf("Select = %v", got)
	}
}

func TestSplitAt(t *testing.T) {
	s := NewMaterialized(domain.NewRange(0, 99), vals(10, 50, 51, 90))
	left, right := s.SplitAt(50)
	if !sameMultiset(left, vals(10, 50)) {
		t.Errorf("left = %v", left)
	}
	if !sameMultiset(right, vals(51, 90)) {
		t.Errorf("right = %v", right)
	}
}

func TestSplitAtPanicsOutsideInterior(t *testing.T) {
	s := NewMaterialized(domain.NewRange(0, 99), nil)
	for _, cut := range []domain.Value{-1, 99, 200} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SplitAt(%d) did not panic", cut)
				}
			}()
			s.SplitAt(cut)
		}()
	}
}

func TestMeanValue(t *testing.T) {
	s := NewMaterialized(domain.NewRange(0, 100), nil)
	if m := s.MeanValue(); m != 50 {
		t.Errorf("mean = %d", m)
	}
}

func TestSegmentString(t *testing.T) {
	m := NewMaterialized(domain.NewRange(0, 9), vals(1))
	v := NewVirtual(domain.NewRange(10, 19), 7)
	if m.String() != "mat[0, 9]#1" {
		t.Errorf("mat string = %q", m.String())
	}
	if v.String() != "vir[10, 19]#7" {
		t.Errorf("vir string = %q", v.String())
	}
}

// --- List tests ---

func newTestList() *List {
	// 20 values spread over [0, 99].
	vs := make([]domain.Value, 0, 20)
	for i := int64(0); i < 20; i++ {
		vs = append(vs, i*5)
	}
	return NewList(domain.NewRange(0, 99), vs, 4)
}

func TestNewListSingleSegment(t *testing.T) {
	l := newTestList()
	if l.Len() != 1 {
		t.Fatalf("Len = %d", l.Len())
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if l.TotalCount() != 20 {
		t.Errorf("TotalCount = %d", l.TotalCount())
	}
	if l.TotalBytes() != 80 {
		t.Errorf("TotalBytes = %d", l.TotalBytes())
	}
	if !l.Extent().Equal(domain.NewRange(0, 99)) {
		t.Errorf("Extent = %v", l.Extent())
	}
}

func TestListReplaceAndOverlapping(t *testing.T) {
	l := newTestList()
	s := l.Seg(0)
	left, mid, right := s.Partition(domain.NewRange(30, 59))
	l = l.Replaced(0,
		NewMaterialized(domain.NewRange(0, 29), left),
		NewMaterialized(domain.NewRange(30, 59), mid),
		NewMaterialized(domain.NewRange(60, 99), right),
	)
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	lo, hi := l.Overlapping(domain.NewRange(30, 59))
	if lo != 1 || hi != 2 {
		t.Errorf("Overlapping exact = [%d, %d), want [1, 2)", lo, hi)
	}
	lo, hi = l.Overlapping(domain.NewRange(25, 65))
	if lo != 0 || hi != 3 {
		t.Errorf("Overlapping straddle = [%d, %d), want [0, 3)", lo, hi)
	}
	lo, hi = l.Overlapping(domain.NewRange(60, 60))
	if lo != 2 || hi != 3 {
		t.Errorf("Overlapping point = [%d, %d), want [2, 3)", lo, hi)
	}
}

func TestListOverlappingEmptyQuery(t *testing.T) {
	l := newTestList()
	lo, hi := l.Overlapping(domain.Empty())
	if lo != hi {
		t.Errorf("empty query overlap = [%d, %d)", lo, hi)
	}
}

func TestListReplacePanicsOnBadTiling(t *testing.T) {
	l := newTestList()
	defer func() {
		if recover() == nil {
			t.Fatal("bad tiling did not panic")
		}
	}()
	l = l.Replaced(0,
		NewMaterialized(domain.NewRange(0, 29), nil),
		NewMaterialized(domain.NewRange(40, 99), nil), // gap 30..39
	)
}

func TestListReplacePanicsOnWrongBounds(t *testing.T) {
	l := newTestList()
	defer func() {
		if recover() == nil {
			t.Fatal("wrong bounds did not panic")
		}
	}()
	l = l.Replaced(0, NewMaterialized(domain.NewRange(0, 50), nil))
}

func TestListGlue(t *testing.T) {
	l := newTestList()
	s := l.Seg(0)
	left, mid, right := s.Partition(domain.NewRange(30, 59))
	l = l.Replaced(0,
		NewMaterialized(domain.NewRange(0, 29), left),
		NewMaterialized(domain.NewRange(30, 59), mid),
		NewMaterialized(domain.NewRange(60, 99), right),
	)
	before := l.TotalCount()
	l = l.Glued(0, 1)
	if l.Len() != 2 {
		t.Fatalf("Len after glue = %d", l.Len())
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if l.TotalCount() != before {
		t.Errorf("glue changed count: %d != %d", l.TotalCount(), before)
	}
	if !l.Seg(0).Rng.Equal(domain.NewRange(0, 59)) {
		t.Errorf("glued range = %v", l.Seg(0).Rng)
	}
}

func TestListGluePanics(t *testing.T) {
	l := newTestList()
	defer func() {
		if recover() == nil {
			t.Fatal("Glue(0,0) did not panic")
		}
	}()
	l = l.Glued(0, 0)
}

func TestListSegmentBytes(t *testing.T) {
	l := newTestList()
	bs := l.SegmentBytes()
	if len(bs) != 1 || bs[0] != 80 {
		t.Errorf("SegmentBytes = %v", bs)
	}
}

func TestListDump(t *testing.T) {
	l := newTestList()
	if l.Dump() != "[0, 99]#20" {
		t.Errorf("Dump = %q", l.Dump())
	}
}

func TestValidateCatchesVirtual(t *testing.T) {
	l := newTestList()
	l.segs[0] = NewVirtual(domain.NewRange(0, 99), 5)
	if err := l.Validate(); err == nil {
		t.Error("Validate accepted a virtual segment in a flat list")
	}
}

func TestValidateCatchesGap(t *testing.T) {
	l := newTestList()
	l.segs = []*Segment{
		NewMaterialized(domain.NewRange(0, 10), nil),
		NewMaterialized(domain.NewRange(20, 99), nil),
	}
	if err := l.Validate(); err == nil {
		t.Error("Validate accepted a gap")
	}
}

// --- property tests ---

func TestPartitionPropertyMultisetPreserved(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	f := func() bool {
		n := r.Intn(200)
		rng := domain.NewRange(0, 999)
		vs := make([]domain.Value, n)
		for i := range vs {
			vs[i] = r.Int63n(1000)
		}
		s := NewMaterialized(rng, vs)
		a, b := r.Int63n(1000), r.Int63n(1000)
		if a > b {
			a, b = b, a
		}
		q := domain.Range{Lo: a, Hi: b}
		left, mid, right := s.Partition(q)
		union := append(append(append([]domain.Value{}, left...), mid...), right...)
		if !sameMultiset(union, vs) {
			return false
		}
		sp := domain.Cut(rng, q)
		for _, v := range left {
			if !sp.Left.Contains(v) {
				return false
			}
		}
		for _, v := range mid {
			if !sp.Overlap.Contains(v) {
				return false
			}
		}
		for _, v := range right {
			if !sp.Right.Contains(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestListPropertyRandomSplitsKeepInvariants(t *testing.T) {
	// Repeatedly split random segments at random query ranges; the list
	// must keep adjacency/coverage/value-bounds invariants and preserve the
	// total multiset of values.
	r := rand.New(rand.NewSource(33))
	for trial := 0; trial < 30; trial++ {
		dom := domain.NewRange(0, 9999)
		vs := make([]domain.Value, 500)
		for i := range vs {
			vs[i] = r.Int63n(10000)
		}
		orig := sortedCopy(vs)
		l := NewList(dom, vs, 4)
		for step := 0; step < 40; step++ {
			a, b := r.Int63n(10000), r.Int63n(10000)
			if a > b {
				a, b = b, a
			}
			q := domain.Range{Lo: a, Hi: b}
			lo, hi := l.Overlapping(q)
			if lo >= hi {
				continue
			}
			i := lo + r.Intn(hi-lo)
			s := l.Seg(i)
			sp := domain.Cut(s.Rng, q)
			if sp.Left.IsEmpty() && sp.Right.IsEmpty() {
				continue
			}
			left, mid, right := s.Partition(q)
			subs := make([]*Segment, 0, 3)
			if !sp.Left.IsEmpty() {
				subs = append(subs, NewMaterialized(sp.Left, left))
			}
			subs = append(subs, NewMaterialized(sp.Overlap, mid))
			if !sp.Right.IsEmpty() {
				subs = append(subs, NewMaterialized(sp.Right, right))
			}
			l = l.Replaced(i, subs...)
		}
		if err := l.Validate(); err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, l.Dump())
		}
		var all []domain.Value
		for i := 0; i < l.Len(); i++ {
			all = append(all, l.Seg(i).Vals...)
		}
		if !sameMultiset(all, orig) {
			t.Fatalf("trial %d: multiset not preserved", trial)
		}
	}
}

func TestOverlappingPropertyMatchesLinearScan(t *testing.T) {
	// Property: binary-search overlap lookup agrees with a linear scan.
	r := rand.New(rand.NewSource(44))
	l := newTestList()
	// Build a multi-segment list first.
	l = l.Replaced(0,
		NewMaterialized(domain.NewRange(0, 9), nil),
		NewMaterialized(domain.NewRange(10, 39), nil),
		NewMaterialized(domain.NewRange(40, 64), nil),
		NewMaterialized(domain.NewRange(65, 99), nil),
	)
	f := func() bool {
		a, b := r.Int63n(120)-10, r.Int63n(120)-10
		if a > b {
			a, b = b, a
		}
		q := domain.Range{Lo: a, Hi: b}
		lo, hi := l.Overlapping(q)
		for i := 0; i < l.Len(); i++ {
			overlaps := l.Seg(i).Rng.Overlaps(q)
			inWindow := i >= lo && i < hi
			if overlaps != inWindow {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
