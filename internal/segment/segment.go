// Package segment implements the value-based column organization at the
// heart of the paper (§1, §3.1): a column is a collection of segments, each
// covering a contiguous range of attribute values, described by an
// in-memory sparse meta-index.
//
// Segments come in two flavours (§5): materialized segments carry real
// data, virtual segments only describe a range and an estimated size. The
// flat, adjacent, non-overlapping List is the layout used by adaptive
// segmentation (§4); the replica tree of adaptive replication (§5) reuses
// the same Segment type inside internal/core.
package segment

import (
	"fmt"
	"sync/atomic"

	"selforg/internal/compress"
	"selforg/internal/domain"
)

// idCounter hands out process-unique segment identities, used by the
// buffer manager and tracers to track segments across reorganizations.
var idCounter atomic.Int64

// Segment is one value-ranged piece of a column. A materialized segment
// carries its payload either raw (Vals) or compressed (Enc, produced by a
// compress.Codec when the self-organizing loop re-encodes the segment);
// at most one of the two is non-nil.
//
// Invariants: every payload value lies inside Rng; Virtual segments carry
// no payload and use EstCount as their size estimate.
//
// Concurrency contract: once a materialized segment is published in a
// List snapshot it is immutable — reorganization replaces segments with
// fresh ones instead of rewriting payloads, so lock-free readers can scan
// any snapshot they hold. (Encode/Decode/SetPayload are construction-time
// operations: they may only run before the segment is published, or on
// segments owned exclusively by a single writer, as in the replica tree.)
type Segment struct {
	ID       int64
	Rng      domain.Range
	Vals     []domain.Value  // raw materialized payload (nil when Virtual or compressed)
	Enc      compress.Vector // compressed materialized payload (nil when raw or Virtual)
	Virtual  bool
	EstCount int64 // size estimate for virtual segments (elements)
}

// NewMaterialized builds a materialized segment. It panics if any value
// falls outside rng — the meta-index must always describe the data exactly.
func NewMaterialized(rng domain.Range, vals []domain.Value) *Segment {
	for _, v := range vals {
		if !rng.Contains(v) {
			panic(fmt.Sprintf("segment: value %d outside range %v", v, rng))
		}
	}
	return &Segment{ID: idCounter.Add(1), Rng: rng, Vals: vals}
}

// NewVirtual builds a virtual segment with an estimated element count.
func NewVirtual(rng domain.Range, estCount int64) *Segment {
	if estCount < 0 {
		estCount = 0
	}
	return &Segment{ID: idCounter.Add(1), Rng: rng, Virtual: true, EstCount: estCount}
}

// Count returns the (estimated, for virtual segments) number of elements.
func (s *Segment) Count() int64 {
	if s.Virtual {
		return s.EstCount
	}
	if s.Enc != nil {
		return int64(s.Enc.Len())
	}
	return int64(len(s.Vals))
}

// Bytes returns the (estimated) logical storage size given bytes per
// element — the uncompressed measure the segmentation models and the
// paper's cost formulas reason about, independent of encoding.
func (s *Segment) Bytes(elemSize int64) domain.ByteSize {
	return domain.ByteSize(s.Count() * elemSize)
}

// StoredBytes returns the physical storage size: the compressed footprint
// when the payload is encoded, the logical size otherwise. Scan and
// materialization accounting use this measure.
func (s *Segment) StoredBytes(elemSize int64) domain.ByteSize {
	if !s.Virtual && s.Enc != nil {
		return domain.ByteSize(s.Enc.StoredBytes())
	}
	return s.Bytes(elemSize)
}

// Encoding returns the payload's storage encoding (compress.Plain for raw
// and virtual segments).
func (s *Segment) Encoding() compress.Encoding {
	if s.Enc != nil {
		return s.Enc.Encoding()
	}
	return compress.Plain
}

// Encode converts a raw payload into the codec's chosen encoding. It is
// a no-op for virtual segments, a nil codec, or an already-encoded
// payload; it reports whether a (re-)encode happened.
func (s *Segment) Encode(c *compress.Codec) bool {
	if !c.Enabled() || s.Virtual || s.Enc != nil {
		return false
	}
	s.Enc = c.Encode(s.Vals)
	s.Vals = nil
	return true
}

// EncodedCopy returns a fresh segment with the same identity (ID and
// range) whose payload has been passed through the codec. The receiver is
// left untouched, so a writer can re-encode a whole published List
// copy-on-write (SetCompression) without disturbing concurrent readers of
// the old snapshot. With a disabled codec the copy keeps the raw payload.
func (s *Segment) EncodedCopy(c *compress.Codec) *Segment {
	cp := &Segment{ID: s.ID, Rng: s.Rng, Vals: s.Vals, Enc: s.Enc,
		Virtual: s.Virtual, EstCount: s.EstCount}
	cp.Encode(c)
	return cp
}

// Decode converts an encoded payload back to raw storage (no-op
// otherwise).
func (s *Segment) Decode() {
	if s.Enc == nil {
		return
	}
	s.Vals = s.Enc.AppendTo(make([]domain.Value, 0, s.Enc.Len()))
	s.Enc = nil
}

// SetPayload makes s a materialized raw segment holding vals, clearing
// any virtual or encoded state. It may only run on segments never
// published to concurrent readers; the persistent replica tree uses
// Filled instead.
func (s *Segment) SetPayload(vals []domain.Value) {
	s.Vals, s.Enc, s.Virtual, s.EstCount = vals, nil, false, 0
}

// Filled returns a fresh materialized raw segment with s's identity (ID
// and range) holding vals — the persistent-tree counterpart of
// SetPayload: the receiver (possibly published in an older tree
// snapshot) is left untouched, so lock-free readers of that snapshot
// never observe the fill. It panics if any value falls outside the
// range, like NewMaterialized.
func (s *Segment) Filled(vals []domain.Value) *Segment {
	for _, v := range vals {
		if !s.Rng.Contains(v) {
			panic(fmt.Sprintf("segment: value %d outside range %v", v, s.Rng))
		}
	}
	return &Segment{ID: s.ID, Rng: s.Rng, Vals: vals}
}

// values returns the payload for scanning: the raw slice, or a decoded
// copy for encoded payloads. Callers must not mutate the result.
func (s *Segment) values() []domain.Value {
	if s.Enc != nil {
		return s.Enc.AppendTo(make([]domain.Value, 0, s.Enc.Len()))
	}
	return s.Vals
}

// BorrowValues returns the segment's whole payload without copying when
// the storage form already holds a materialized plain slice — the raw
// Vals, or a Plain-encoded vector's backing slice. It reports false when
// the payload must be decoded (RLE/Dict/FOR), in which case callers use
// AppendValues. The returned slice aliases published, immutable segment
// storage: callers must append it to a rope as a *borrowed* chunk and
// never write through it.
func (s *Segment) BorrowValues() ([]domain.Value, bool) {
	if s.Virtual {
		panic("segment: BorrowValues on a virtual segment")
	}
	if s.Enc == nil {
		return s.Vals, true
	}
	if p, ok := s.Enc.(*compress.PlainVector); ok {
		return p.Raw(), true
	}
	return nil, false
}

// FilledEncoded is Filled's encoded counterpart: a fresh materialized
// segment with s's identity (ID and range) holding an already-encoded
// payload — the landing point of the compression-aware bulk-load, which
// splices a replica's encoded form straight from its covering segment
// instead of decoding and re-encoding. The range invariant is checked
// from the encoded synopsis, so the guard stays O(1).
func (s *Segment) FilledEncoded(enc compress.Vector) *Segment {
	if min, max, ok := enc.MinMax(); ok {
		if !s.Rng.Contains(min) || !s.Rng.Contains(max) {
			panic(fmt.Sprintf("segment: encoded values [%d, %d] outside range %v", min, max, s.Rng))
		}
	}
	return &Segment{ID: s.ID, Rng: s.Rng, Enc: enc}
}

// AppendValues appends the whole payload, in order, to dst.
func (s *Segment) AppendValues(dst []domain.Value) []domain.Value {
	if s.Virtual {
		panic("segment: AppendValues on a virtual segment")
	}
	if s.Enc != nil {
		return s.Enc.AppendTo(dst)
	}
	return append(dst, s.Vals...)
}

// AppendSelect appends the values matching q, in order, to dst. Encoded
// payloads use their compressed-form fast path (run skipping, dictionary
// or frame pruning) instead of decompressing.
func (s *Segment) AppendSelect(q domain.Range, dst []domain.Value) []domain.Value {
	if s.Virtual {
		panic("segment: AppendSelect on a virtual segment")
	}
	if s.Enc != nil {
		return s.Enc.SelectRange(q.Lo, q.Hi, dst)
	}
	for _, v := range s.Vals {
		if q.Contains(v) {
			dst = append(dst, v)
		}
	}
	return dst
}

// SelectCount counts the values matching q without materializing them —
// the counting path of Column.Count. RLE counts from run headers alone.
func (s *Segment) SelectCount(q domain.Range) int64 {
	if s.Virtual {
		panic("segment: SelectCount on a virtual segment")
	}
	if s.Enc != nil {
		return s.Enc.CountRange(q.Lo, q.Hi)
	}
	var n int64
	for _, v := range s.Vals {
		if q.Contains(v) {
			n++
		}
	}
	return n
}

// EstimatePiece estimates how many of s's elements fall into piece,
// assuming values spread uniformly over s's range. The segmentation models
// consult this *before* any scan happens (§3.2: "using estimates of the
// segment sizes").
func (s *Segment) EstimatePiece(piece domain.Range) int64 {
	ov := s.Rng.Intersect(piece)
	if ov.IsEmpty() || s.Rng.Width() == 0 {
		return 0
	}
	return s.Count() * ov.Width() / s.Rng.Width()
}

// Partition scans the materialized segment once and distributes its values
// into the (up to three) pieces that query range q cuts out of it. This is
// the single scan that both adaptive strategies piggy-back materialization
// on (§4 Alg. 1, §5 Alg. 2 scanMat).
//
// The returned slices are freshly allocated: the caller owns them.
func (s *Segment) Partition(q domain.Range) (left, mid, right []domain.Value) {
	if s.Virtual {
		panic("segment: Partition of a virtual segment")
	}
	vals := s.values()
	sp := domain.Cut(s.Rng, q)
	mid = make([]domain.Value, 0, len(vals))
	if !sp.Left.IsEmpty() {
		left = make([]domain.Value, 0)
	}
	if !sp.Right.IsEmpty() {
		right = make([]domain.Value, 0)
	}
	for _, v := range vals {
		switch {
		case v < sp.Overlap.Lo:
			left = append(left, v)
		case v > sp.Overlap.Hi:
			right = append(right, v)
		default:
			mid = append(mid, v)
		}
	}
	return left, mid, right
}

// Select scans the materialized segment and returns the values matching
// query range q, freshly allocated.
func (s *Segment) Select(q domain.Range) []domain.Value {
	return s.AppendSelect(q, make([]domain.Value, 0, s.Count()))
}

// SplitAt scans the materialized segment and splits it at domain value cut:
// values <= cut go left, values > cut go right. APM rule 3 splits at a
// query bound or the approximate segment mean; both reduce to a SplitAt.
func (s *Segment) SplitAt(cut domain.Value) (left, right []domain.Value) {
	if s.Virtual {
		panic("segment: SplitAt on a virtual segment")
	}
	if cut < s.Rng.Lo || cut >= s.Rng.Hi {
		panic(fmt.Sprintf("segment: cut %d outside splittable interior of %v", cut, s.Rng))
	}
	vals := s.values()
	left = make([]domain.Value, 0, len(vals))
	right = make([]domain.Value, 0, len(vals))
	for _, v := range vals {
		if v <= cut {
			left = append(left, v)
		} else {
			right = append(right, v)
		}
	}
	return left, right
}

// MeanValue approximates the mean of the segment's value range. APM rule 3
// uses "an approximation of the mean value in the segment" as a fallback
// split point; without scanning we approximate it by the range midpoint.
func (s *Segment) MeanValue() domain.Value {
	return s.Rng.Lo + (s.Rng.Hi-s.Rng.Lo)/2
}

func (s *Segment) String() string {
	kind := "mat"
	if s.Virtual {
		kind = "vir"
	}
	if s.Enc != nil {
		return fmt.Sprintf("%s%v#%d/%v", kind, s.Rng, s.Count(), s.Enc.Encoding())
	}
	return fmt.Sprintf("%s%v#%d", kind, s.Rng, s.Count())
}
