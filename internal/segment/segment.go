// Package segment implements the value-based column organization at the
// heart of the paper (§1, §3.1): a column is a collection of segments, each
// covering a contiguous range of attribute values, described by an
// in-memory sparse meta-index.
//
// Segments come in two flavours (§5): materialized segments carry real
// data, virtual segments only describe a range and an estimated size. The
// flat, adjacent, non-overlapping List is the layout used by adaptive
// segmentation (§4); the replica tree of adaptive replication (§5) reuses
// the same Segment type inside internal/core.
package segment

import (
	"fmt"
	"sync/atomic"

	"selforg/internal/domain"
)

// idCounter hands out process-unique segment identities, used by the
// buffer manager and tracers to track segments across reorganizations.
var idCounter atomic.Int64

// Segment is one value-ranged piece of a column.
//
// Invariants: every value in Vals lies inside Rng; Virtual segments carry
// no Vals and use EstCount as their size estimate.
type Segment struct {
	ID       int64
	Rng      domain.Range
	Vals     []domain.Value // materialized payload (nil when Virtual)
	Virtual  bool
	EstCount int64 // size estimate for virtual segments (elements)
}

// NewMaterialized builds a materialized segment. It panics if any value
// falls outside rng — the meta-index must always describe the data exactly.
func NewMaterialized(rng domain.Range, vals []domain.Value) *Segment {
	for _, v := range vals {
		if !rng.Contains(v) {
			panic(fmt.Sprintf("segment: value %d outside range %v", v, rng))
		}
	}
	return &Segment{ID: idCounter.Add(1), Rng: rng, Vals: vals}
}

// NewVirtual builds a virtual segment with an estimated element count.
func NewVirtual(rng domain.Range, estCount int64) *Segment {
	if estCount < 0 {
		estCount = 0
	}
	return &Segment{ID: idCounter.Add(1), Rng: rng, Virtual: true, EstCount: estCount}
}

// Count returns the (estimated, for virtual segments) number of elements.
func (s *Segment) Count() int64 {
	if s.Virtual {
		return s.EstCount
	}
	return int64(len(s.Vals))
}

// Bytes returns the (estimated) storage size given bytes per element.
func (s *Segment) Bytes(elemSize int64) domain.ByteSize {
	return domain.ByteSize(s.Count() * elemSize)
}

// EstimatePiece estimates how many of s's elements fall into piece,
// assuming values spread uniformly over s's range. The segmentation models
// consult this *before* any scan happens (§3.2: "using estimates of the
// segment sizes").
func (s *Segment) EstimatePiece(piece domain.Range) int64 {
	ov := s.Rng.Intersect(piece)
	if ov.IsEmpty() || s.Rng.Width() == 0 {
		return 0
	}
	return s.Count() * ov.Width() / s.Rng.Width()
}

// Partition scans the materialized segment once and distributes its values
// into the (up to three) pieces that query range q cuts out of it. This is
// the single scan that both adaptive strategies piggy-back materialization
// on (§4 Alg. 1, §5 Alg. 2 scanMat).
//
// The returned slices are freshly allocated: the caller owns them.
func (s *Segment) Partition(q domain.Range) (left, mid, right []domain.Value) {
	if s.Virtual {
		panic("segment: Partition of a virtual segment")
	}
	sp := domain.Cut(s.Rng, q)
	mid = make([]domain.Value, 0, len(s.Vals))
	if !sp.Left.IsEmpty() {
		left = make([]domain.Value, 0)
	}
	if !sp.Right.IsEmpty() {
		right = make([]domain.Value, 0)
	}
	for _, v := range s.Vals {
		switch {
		case v < sp.Overlap.Lo:
			left = append(left, v)
		case v > sp.Overlap.Hi:
			right = append(right, v)
		default:
			mid = append(mid, v)
		}
	}
	return left, mid, right
}

// Select scans the materialized segment and returns the values matching
// query range q, freshly allocated.
func (s *Segment) Select(q domain.Range) []domain.Value {
	if s.Virtual {
		panic("segment: Select on a virtual segment")
	}
	out := make([]domain.Value, 0, len(s.Vals))
	for _, v := range s.Vals {
		if q.Contains(v) {
			out = append(out, v)
		}
	}
	return out
}

// SplitAt scans the materialized segment and splits it at domain value cut:
// values <= cut go left, values > cut go right. APM rule 3 splits at a
// query bound or the approximate segment mean; both reduce to a SplitAt.
func (s *Segment) SplitAt(cut domain.Value) (left, right []domain.Value) {
	if s.Virtual {
		panic("segment: SplitAt on a virtual segment")
	}
	if cut < s.Rng.Lo || cut >= s.Rng.Hi {
		panic(fmt.Sprintf("segment: cut %d outside splittable interior of %v", cut, s.Rng))
	}
	left = make([]domain.Value, 0, len(s.Vals))
	right = make([]domain.Value, 0, len(s.Vals))
	for _, v := range s.Vals {
		if v <= cut {
			left = append(left, v)
		} else {
			right = append(right, v)
		}
	}
	return left, right
}

// MeanValue approximates the mean of the segment's value range. APM rule 3
// uses "an approximation of the mean value in the segment" as a fallback
// split point; without scanning we approximate it by the range midpoint.
func (s *Segment) MeanValue() domain.Value {
	return s.Rng.Lo + (s.Rng.Hi-s.Rng.Lo)/2
}

func (s *Segment) String() string {
	kind := "mat"
	if s.Virtual {
		kind = "vir"
	}
	return fmt.Sprintf("%s%v#%d", kind, s.Rng, s.Count())
}
