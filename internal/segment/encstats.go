package segment

import (
	"fmt"
	"strings"

	"selforg/internal/compress"
)

// EncodingStats is the per-encoding storage breakdown of a column: how
// many materialized segments each encoding holds and their physical
// bytes. Raw (un-encoded) payloads count as Plain — they are stored
// uncompressed either way, so the breakdown always sums to the column's
// segment count and physical footprint.
type EncodingStats struct {
	Segments [compress.NumEncodings]int
	Bytes    [compress.NumEncodings]int64
}

// Observe accounts one materialized segment (virtual segments carry no
// storage and are skipped).
func (es *EncodingStats) Observe(s *Segment, elemSize int64) {
	if s.Virtual {
		return
	}
	e := s.Encoding()
	es.Segments[e]++
	es.Bytes[e] += int64(s.StoredBytes(elemSize))
}

// Add accumulates other into es.
func (es *EncodingStats) Add(other EncodingStats) {
	for i := range es.Segments {
		es.Segments[i] += other.Segments[i]
		es.Bytes[i] += other.Bytes[i]
	}
}

// TotalSegments returns the segment count over all encodings.
func (es EncodingStats) TotalSegments() int {
	n := 0
	for _, c := range es.Segments {
		n += c
	}
	return n
}

// String renders the non-empty encodings compactly, e.g.
// "rle:3/96B dict:1/40B plain:2/800B".
func (es EncodingStats) String() string {
	var parts []string
	for _, e := range compress.Encodings {
		if es.Segments[e] == 0 {
			continue
		}
		parts = append(parts, fmt.Sprintf("%v:%d/%dB", e, es.Segments[e], es.Bytes[e]))
	}
	if len(parts) == 0 {
		return "(empty)"
	}
	return strings.Join(parts, " ")
}

// EncodingStats sweeps the list and returns its per-encoding breakdown.
func (l *List) EncodingStats() EncodingStats {
	var es EncodingStats
	for _, s := range l.segs {
		es.Observe(s, l.elemSize)
	}
	return es
}
