package stats

import "math"

// Welford accumulates count, mean and variance in one streaming pass using
// Welford's algorithm. Table 2 of the paper reports segment-size mean and
// deviation; this is its computational backend.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one sample into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of samples seen.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 before any sample).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the population variance (0 for fewer than two samples).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Summary condenses a slice of samples into the figures reported by the
// paper's tables.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	Sum    float64
}

// Summarize computes a Summary over xs.
func Summarize(xs []float64) Summary {
	var w Welford
	s := Summary{}
	for i, x := range xs {
		w.Add(x)
		s.Sum += x
		if i == 0 || x < s.Min {
			s.Min = x
		}
		if i == 0 || x > s.Max {
			s.Max = x
		}
	}
	s.N = w.N()
	s.Mean = w.Mean()
	s.StdDev = w.StdDev()
	return s
}

// Histogram counts samples into equal-width buckets over [lo, hi]. Samples
// outside the range clamp to the first/last bucket.
type Histogram struct {
	Lo, Hi  float64
	Buckets []int
}

// NewHistogram creates a histogram with n buckets over [lo, hi].
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n < 1 || hi <= lo {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]int, n)}
}

// Add counts one sample.
func (h *Histogram) Add(x float64) {
	i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Buckets)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Buckets) {
		i = len(h.Buckets) - 1
	}
	h.Buckets[i]++
}

// Total returns the number of samples counted.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Buckets {
		t += c
	}
	return t
}

// Fraction returns the fraction of samples in bucket i.
func (h *Histogram) Fraction(i int) float64 {
	t := h.Total()
	if t == 0 {
		return 0
	}
	return float64(h.Buckets[i]) / float64(t)
}
