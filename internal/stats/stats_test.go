package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSeriesBasics(t *testing.T) {
	s := NewSeries("reads")
	for _, v := range []float64{1, 2, 3, 4} {
		s.Append(v)
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Sum() != 10 {
		t.Errorf("Sum = %v", s.Sum())
	}
	if s.Mean() != 2.5 {
		t.Errorf("Mean = %v", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 4 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if s.At(2) != 3 {
		t.Errorf("At(2) = %v", s.At(2))
	}
}

func TestSeriesEmpty(t *testing.T) {
	s := NewSeries("empty")
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Sum() != 0 {
		t.Error("empty series aggregates should all be 0")
	}
	if s.Tail(5) != 0 {
		t.Error("empty tail should be 0")
	}
	if pts := s.Downsample(10); pts != nil {
		t.Errorf("empty downsample = %v", pts)
	}
}

func TestCumulative(t *testing.T) {
	s := NewSeries("w")
	for _, v := range []float64{1, 2, 3} {
		s.Append(v)
	}
	c := s.Cumulative()
	want := []float64{1, 3, 6}
	for i, w := range want {
		if c.At(i) != w {
			t.Errorf("cumulative[%d] = %v, want %v", i, c.At(i), w)
		}
	}
}

func TestMovingAverage(t *testing.T) {
	s := NewSeries("t")
	for _, v := range []float64{2, 4, 6, 8} {
		s.Append(v)
	}
	m := s.MovingAverage(2)
	want := []float64{2, 3, 5, 7}
	for i, w := range want {
		if m.At(i) != w {
			t.Errorf("ma[%d] = %v, want %v", i, m.At(i), w)
		}
	}
}

func TestMovingAverageWindowOne(t *testing.T) {
	s := NewSeries("t")
	for _, v := range []float64{5, 1, 9} {
		s.Append(v)
	}
	m := s.MovingAverage(1)
	for i := 0; i < s.Len(); i++ {
		if m.At(i) != s.At(i) {
			t.Errorf("ma1[%d] = %v, want %v", i, m.At(i), s.At(i))
		}
	}
}

func TestMovingAveragePanicsOnBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("window 0 did not panic")
		}
	}()
	NewSeries("x").MovingAverage(0)
}

func TestTail(t *testing.T) {
	s := NewSeries("t")
	for _, v := range []float64{10, 20, 30, 40} {
		s.Append(v)
	}
	if got := s.Tail(2); got != 35 {
		t.Errorf("Tail(2) = %v, want 35", got)
	}
	if got := s.Tail(100); got != 25 {
		t.Errorf("Tail(100) = %v, want overall mean 25", got)
	}
}

func TestDownsample(t *testing.T) {
	s := NewSeries("d")
	for i := 1; i <= 100; i++ {
		s.Append(float64(i))
	}
	pts := s.Downsample(10)
	if len(pts) != 10 {
		t.Fatalf("downsample len = %d", len(pts))
	}
	last := pts[len(pts)-1]
	if last.X != 100 || last.Y != 100 {
		t.Errorf("last point = %+v, want (100,100)", last)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X <= pts[i-1].X {
			t.Errorf("downsample x not increasing at %d: %v <= %v", i, pts[i].X, pts[i-1].X)
		}
	}
}

func TestDownsampleShort(t *testing.T) {
	s := NewSeries("d")
	s.Append(7)
	s.Append(9)
	pts := s.Downsample(10)
	if len(pts) != 2 || pts[0].Y != 7 || pts[1].Y != 9 {
		t.Errorf("short downsample = %v", pts)
	}
}

func TestValuesIsCopy(t *testing.T) {
	s := NewSeries("v")
	s.Append(1)
	vs := s.Values()
	vs[0] = 99
	if s.At(0) != 1 {
		t.Error("Values() must return a copy")
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		w.Add(x)
	}
	if w.N() != len(xs) {
		t.Errorf("N = %d", w.N())
	}
	if !almostEqual(w.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v", w.Mean())
	}
	if !almostEqual(w.StdDev(), 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", w.StdDev())
	}
}

func TestWelfordSingleSample(t *testing.T) {
	var w Welford
	w.Add(42)
	if w.Variance() != 0 {
		t.Errorf("variance of one sample = %v", w.Variance())
	}
}

func TestWelfordMatchesDirect(t *testing.T) {
	// Property: streaming variance agrees with the two-pass formula.
	r := rand.New(rand.NewSource(3))
	f := func() bool {
		n := 2 + r.Intn(100)
		xs := make([]float64, n)
		var w Welford
		var sum float64
		for i := range xs {
			xs[i] = r.Float64() * 1000
			w.Add(xs[i])
			sum += xs[i]
		}
		mean := sum / float64(n)
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		return almostEqual(w.Variance(), ss/float64(n), 1e-6*ss)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 || s.Sum != 10 {
		t.Errorf("summary = %+v", s)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1, 2.5, 5, 9.9, -4, 40} {
		h.Add(x)
	}
	if h.Total() != 7 {
		t.Errorf("total = %d", h.Total())
	}
	// -4 clamps to bucket 0; 40 clamps to bucket 4.
	if h.Buckets[0] != 3 {
		t.Errorf("bucket0 = %d, want 3 (0, 1, -4)", h.Buckets[0])
	}
	if h.Buckets[4] != 2 {
		t.Errorf("bucket4 = %d, want 2 (9.9, 40)", h.Buckets[4])
	}
	if !almostEqual(h.Fraction(0), 3.0/7.0, 1e-12) {
		t.Errorf("fraction(0) = %v", h.Fraction(0))
	}
}

func TestHistogramPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad histogram shape did not panic")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestChartRender(t *testing.T) {
	ch := &Chart{Title: "fig", Width: 40, Height: 10, XLabel: "queries", YLabel: "writes"}
	s := NewSeries("GD Segm")
	for i := 1; i <= 50; i++ {
		s.Append(float64(i * i))
	}
	ch.AddSeriesFrom(s)
	out := ch.Render()
	if !strings.Contains(out, "fig") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "GD Segm") {
		t.Error("missing legend entry")
	}
	if !strings.Contains(out, "*") {
		t.Error("missing plot marks")
	}
}

func TestChartLogScales(t *testing.T) {
	ch := &Chart{Width: 30, Height: 8, LogX: true, LogY: true}
	pts := []Point{{1, 10}, {10, 100}, {100, 1000}, {1000, 10000}}
	ch.AddSeries("log", pts)
	out := ch.Render()
	if !strings.Contains(out, "log") {
		t.Error("missing legend")
	}
	// Four decade points plus one legend glyph.
	if strings.Count(out, "*") != 5 {
		t.Errorf("want 4 plot marks + 1 legend mark, chart:\n%s", out)
	}
}

func TestChartEmpty(t *testing.T) {
	ch := &Chart{}
	out := ch.Render()
	if !strings.Contains(out, "no data") {
		t.Errorf("empty chart render = %q", out)
	}
}

func TestChartMultipleSeriesMarks(t *testing.T) {
	ch := &Chart{Width: 20, Height: 5}
	ch.AddSeries("a", []Point{{1, 1}})
	ch.AddSeries("b", []Point{{2, 2}})
	out := ch.Render()
	if !strings.Contains(out, "* a") || !strings.Contains(out, "+ b") {
		t.Errorf("legend marks wrong:\n%s", out)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Table 1", "Strategy", "U 0.1", "U 0.01")
	tb.AddRowf("GD Segm", 40.7, 31.2)
	tb.AddRowf("APM Repl", 45.0, 13.2)
	out := tb.Render()
	for _, want := range []string{"Table 1", "Strategy", "GD Segm", "40.7", "13.2"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
}

func TestTableShortRow(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("only")
	out := tb.Render()
	if !strings.Contains(out, "only") {
		t.Errorf("missing cell:\n%s", out)
	}
}

func TestTableTSV(t *testing.T) {
	tb := NewTable("", "x", "y")
	tb.AddRow("1", "2")
	var b strings.Builder
	if err := tb.WriteTSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "x\ty\n1\t2\n"
	if b.String() != want {
		t.Errorf("TSV = %q, want %q", b.String(), want)
	}
}

func TestWriteSeriesTSV(t *testing.T) {
	a := NewSeries("a")
	a.Append(1)
	a.Append(2)
	b := NewSeries("b")
	b.Append(3)
	var sb strings.Builder
	if err := WriteSeriesTSV(&sb, a, b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d: %q", len(lines), sb.String())
	}
	if lines[0] != "query\ta\tb" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[2] != "2\t2\t" {
		t.Errorf("row2 = %q", lines[2])
	}
}

func TestCumulativeMonotoneProperty(t *testing.T) {
	// Property: cumulative of a non-negative series is non-decreasing.
	r := rand.New(rand.NewSource(5))
	f := func() bool {
		s := NewSeries("p")
		n := 1 + r.Intn(200)
		for i := 0; i < n; i++ {
			s.Append(r.Float64() * 100)
		}
		c := s.Cumulative()
		for i := 1; i < c.Len(); i++ {
			if c.At(i) < c.At(i-1) {
				return false
			}
		}
		return almostEqual(c.At(c.Len()-1), s.Sum(), 1e-9*s.Sum()+1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMovingAverageBoundsProperty(t *testing.T) {
	// Property: every moving-average point lies within [min, max] of the
	// raw series.
	r := rand.New(rand.NewSource(6))
	f := func() bool {
		s := NewSeries("p")
		n := 1 + r.Intn(100)
		for i := 0; i < n; i++ {
			s.Append(r.Float64()*200 - 100)
		}
		m := s.MovingAverage(1 + r.Intn(20))
		lo, hi := s.Min(), s.Max()
		for i := 0; i < m.Len(); i++ {
			if m.At(i) < lo-1e-9 || m.At(i) > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
