package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Chart renders one or more series as an ASCII scatter chart, the terminal
// stand-in for the paper's gnuplot figures. It supports log-scaled axes
// (Figures 5–7 use log y and Figures 5/6 log x).
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // plot columns (default 72)
	Height int // plot rows (default 20)
	LogX   bool
	LogY   bool

	series []chartSeries
}

type chartSeries struct {
	name   string
	mark   byte
	points []Point
}

// seriesMarks cycles through the glyphs used for successive series.
var seriesMarks = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// AddSeries adds a named point set to the chart.
func (c *Chart) AddSeries(name string, pts []Point) {
	mark := seriesMarks[len(c.series)%len(seriesMarks)]
	c.series = append(c.series, chartSeries{name: name, mark: mark, points: pts})
}

// AddSeriesFrom adds every point of s (downsampled to the chart width).
func (c *Chart) AddSeriesFrom(s *Series) {
	w := c.Width
	if w <= 0 {
		w = 72
	}
	c.AddSeries(s.Name, s.Downsample(w))
}

func (c *Chart) scaleX(x float64) float64 {
	if c.LogX {
		if x <= 0 {
			return math.Inf(-1)
		}
		return math.Log10(x)
	}
	return x
}

func (c *Chart) scaleY(y float64) float64 {
	if c.LogY {
		if y <= 0 {
			return math.Inf(-1)
		}
		return math.Log10(y)
	}
	return y
}

// Render draws the chart into a string.
func (c *Chart) Render() string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 72
	}
	if h <= 0 {
		h = 20
	}

	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range c.series {
		for _, p := range s.points {
			x, y := c.scaleX(p.X), c.scaleY(p.Y)
			if math.IsInf(x, -1) || math.IsInf(y, -1) {
				continue
			}
			any = true
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	if !any {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	for _, s := range c.series {
		for _, p := range s.points {
			x, y := c.scaleX(p.X), c.scaleY(p.Y)
			if math.IsInf(x, -1) || math.IsInf(y, -1) {
				continue
			}
			col := int((x - minX) / (maxX - minX) * float64(w-1))
			row := h - 1 - int((y-minY)/(maxY-minY)*float64(h-1))
			grid[row][col] = s.mark
		}
	}

	yTop, yBot := c.axisLabel(maxY), c.axisLabel(minY)
	labelW := len(yTop)
	if len(yBot) > labelW {
		labelW = len(yBot)
	}
	for i, row := range grid {
		label := strings.Repeat(" ", labelW)
		switch i {
		case 0:
			label = fmt.Sprintf("%*s", labelW, yTop)
		case h - 1:
			label = fmt.Sprintf("%*s", labelW, yBot)
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, string(row))
	}
	xLeft, xRight := c.axisLabelX(minX), c.axisLabelX(maxX)
	pad := w - len(xLeft) - len(xRight)
	if pad < 1 {
		pad = 1
	}
	fmt.Fprintf(&b, "%s  %s%s%s\n", strings.Repeat(" ", labelW), xLeft, strings.Repeat(" ", pad), xRight)
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&b, "%s  x: %s   y: %s\n", strings.Repeat(" ", labelW), c.XLabel, c.YLabel)
	}
	legend := make([]string, 0, len(c.series))
	for _, s := range c.series {
		legend = append(legend, fmt.Sprintf("%c %s", s.mark, s.name))
	}
	sort.Strings(legend)
	fmt.Fprintf(&b, "%s  legend: %s\n", strings.Repeat(" ", labelW), strings.Join(legend, " | "))
	return b.String()
}

func (c *Chart) axisLabel(v float64) string {
	if c.LogY {
		return fmtNum(math.Pow(10, v))
	}
	return fmtNum(v)
}

func (c *Chart) axisLabelX(v float64) string {
	if c.LogX {
		return fmtNum(math.Pow(10, v))
	}
	return fmtNum(v)
}

// fmtNum renders numbers compactly (1.2e+06 style for big magnitudes).
func fmtNum(v float64) string {
	a := math.Abs(v)
	switch {
	case a != 0 && (a >= 1e6 || a < 1e-3):
		return fmt.Sprintf("%.1e", v)
	case a >= 100:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}
