// Package stats provides the measurement plumbing for the experiment
// harness: per-query series with cumulative and moving-average views,
// streaming aggregates, histograms, ASCII charts and TSV export.
//
// The paper reports cumulative counters (Figures 5, 6, 11, 13, 15),
// per-query values (Figure 7), moving averages (Figures 12, 14, 16) and
// mean/deviation summaries (Tables 1 and 2); this package computes all of
// them from the same raw per-query samples.
package stats

import "fmt"

// Series is an ordered sequence of float64 samples, one per query.
type Series struct {
	Name    string
	samples []float64
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series {
	return &Series{Name: name}
}

// Append adds one sample to the end of the series.
func (s *Series) Append(v float64) { s.samples = append(s.samples, v) }

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.samples) }

// At returns the i-th sample. It panics if i is out of range.
func (s *Series) At(i int) float64 { return s.samples[i] }

// Values returns a copy of the raw samples.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.samples))
	copy(out, s.samples)
	return out
}

// Sum returns the sum of all samples.
func (s *Series) Sum() float64 {
	var t float64
	for _, v := range s.samples {
		t += v
	}
	return t
}

// Mean returns the arithmetic mean, or 0 for an empty series.
func (s *Series) Mean() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	return s.Sum() / float64(len(s.samples))
}

// Max returns the largest sample, or 0 for an empty series.
func (s *Series) Max() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	m := s.samples[0]
	for _, v := range s.samples[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the smallest sample, or 0 for an empty series.
func (s *Series) Min() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	m := s.samples[0]
	for _, v := range s.samples[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Cumulative returns a new series whose i-th sample is the running sum of
// the first i+1 samples — the y-axis of Figures 5, 6, 11, 13 and 15.
func (s *Series) Cumulative() *Series {
	out := &Series{Name: s.Name + " (cumulative)", samples: make([]float64, len(s.samples))}
	var acc float64
	for i, v := range s.samples {
		acc += v
		out.samples[i] = acc
	}
	return out
}

// MovingAverage returns a new series of trailing window-averages — the
// y-axis of Figures 12, 14 and 16. The first window-1 points average the
// samples available so far. window must be >= 1.
func (s *Series) MovingAverage(window int) *Series {
	if window < 1 {
		panic(fmt.Sprintf("stats: moving average window %d < 1", window))
	}
	out := &Series{
		Name:    fmt.Sprintf("%s (ma%d)", s.Name, window),
		samples: make([]float64, len(s.samples)),
	}
	var acc float64
	for i, v := range s.samples {
		acc += v
		if i >= window {
			acc -= s.samples[i-window]
			out.samples[i] = acc / float64(window)
		} else {
			out.samples[i] = acc / float64(i+1)
		}
	}
	return out
}

// Tail returns the mean of the last n samples (all samples if n exceeds the
// length). The evaluation uses this to report converged steady-state reads.
func (s *Series) Tail(n int) float64 {
	if n <= 0 || len(s.samples) == 0 {
		return 0
	}
	if n > len(s.samples) {
		n = len(s.samples)
	}
	var t float64
	for _, v := range s.samples[len(s.samples)-n:] {
		t += v
	}
	return t / float64(n)
}

// Downsample returns at most n points (index, value) evenly spaced across
// the series, always including the last point. Used to keep ASCII charts
// and TSV exports readable for 10K-query runs.
func (s *Series) Downsample(n int) []Point {
	if n <= 0 || len(s.samples) == 0 {
		return nil
	}
	if n >= len(s.samples) {
		out := make([]Point, len(s.samples))
		for i, v := range s.samples {
			out[i] = Point{X: float64(i + 1), Y: v}
		}
		return out
	}
	out := make([]Point, 0, n)
	step := float64(len(s.samples)) / float64(n)
	for i := 0; i < n; i++ {
		idx := int(float64(i+1)*step) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(s.samples) {
			idx = len(s.samples) - 1
		}
		out = append(out, Point{X: float64(idx + 1), Y: s.samples[idx]})
	}
	return out
}

// Point is one (x, y) chart coordinate.
type Point struct {
	X, Y float64
}
