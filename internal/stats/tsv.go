package stats

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows for the paper's tabular results (Tables 1 and 2)
// and renders them as aligned text or TSV.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends one row; cells beyond the column count are dropped,
// missing cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf formats each cell with fmt.Sprint.
func (t *Table) AddRowf(cells ...any) {
	s := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			s[i] = fmt.Sprintf("%.1f", v)
		default:
			s[i] = fmt.Sprint(c)
		}
	}
	t.AddRow(s...)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Render draws the table with aligned columns.
func (t *Table) Render() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// WriteTSV emits the table as tab-separated values.
func (t *Table) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.Columns, "\t")); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, "\t")); err != nil {
			return err
		}
	}
	return nil
}

// WriteSeriesTSV writes aligned series as TSV: one x column (query number,
// 1-based) followed by one column per series. Series shorter than the
// longest leave cells empty.
func WriteSeriesTSV(w io.Writer, series ...*Series) error {
	names := make([]string, 0, len(series)+1)
	names = append(names, "query")
	maxLen := 0
	for _, s := range series {
		names = append(names, s.Name)
		if s.Len() > maxLen {
			maxLen = s.Len()
		}
	}
	if _, err := fmt.Fprintln(w, strings.Join(names, "\t")); err != nil {
		return err
	}
	for i := 0; i < maxLen; i++ {
		cells := make([]string, 0, len(series)+1)
		cells = append(cells, fmt.Sprint(i+1))
		for _, s := range series {
			if i < s.Len() {
				cells = append(cells, fmt.Sprintf("%g", s.At(i)))
			} else {
				cells = append(cells, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, "\t")); err != nil {
			return err
		}
	}
	return nil
}
