package bat

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func lngBAT(vals ...int64) *BAT   { return NewDense(NewLngs(vals)) }
func dblBAT(vals ...float64) *BAT { return NewDense(NewDbls(vals)) }

func TestValueConstructorsAndAccessors(t *testing.T) {
	if Oid(7).AsOid() != 7 || Lng(-3).AsLng() != -3 || Dbl(2.5).AsDbl() != 2.5 ||
		Str("x").AsStr() != "x" || !Bit(true).AsBit() || Bit(false).AsBit() {
		t.Error("value round-trips failed")
	}
}

func TestValueAccessorPanicsOnWrongKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AsLng on oid did not panic")
		}
	}()
	Oid(1).AsLng()
}

func TestValueLess(t *testing.T) {
	if !Lng(1).Less(Lng(2)) || Lng(2).Less(Lng(1)) {
		t.Error("lng order")
	}
	if !Dbl(1.5).Less(Dbl(2.5)) {
		t.Error("dbl order")
	}
	if !Str("a").Less(Str("b")) {
		t.Error("str order")
	}
	if !Oid(1).Less(Oid(2)) {
		t.Error("oid order")
	}
}

func TestValueLessPanicsAcrossKinds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("cross-kind Less did not panic")
		}
	}()
	Lng(1).Less(Dbl(2))
}

func TestValueString(t *testing.T) {
	cases := map[string]Value{
		"3@0":   Oid(3),
		"-5":    Lng(-5),
		"2.5":   Dbl(2.5),
		`"hi"`:  Str("hi"),
		"true":  Bit(true),
		"false": Bit(false),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("%v.String() = %q, want %q", v.K, got, want)
		}
	}
}

func TestKindFromName(t *testing.T) {
	for name, want := range map[string]Kind{"oid": KOid, "lng": KLng, "dbl": KDbl, "str": KStr, "bit": KBit, "bigint": KLng} {
		got, err := KindFromName(name)
		if err != nil || got != want {
			t.Errorf("KindFromName(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := KindFromName("blob"); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestDenseOidVector(t *testing.T) {
	o := NewDenseOids(10, 5)
	if !o.Dense() || o.Len() != 5 {
		t.Fatalf("dense = %v len = %d", o.Dense(), o.Len())
	}
	if o.Get(0).AsOid() != 10 || o.Get(4).AsOid() != 14 {
		t.Error("dense get wrong")
	}
	s := o.Slice(1, 4).(*OidVector)
	if !s.Dense() || s.Get(0).AsOid() != 11 || s.Len() != 3 {
		t.Error("dense slice wrong")
	}
	m := o.Append(Oid(99)).(*OidVector)
	if m.Dense() {
		t.Error("append must materialize")
	}
	if m.Len() != 6 || m.Get(5).AsOid() != 99 {
		t.Error("materialized append wrong")
	}
	// Original remains dense and untouched.
	if !o.Dense() || o.Len() != 5 {
		t.Error("append mutated the dense original")
	}
}

func TestVectorKindsRoundTrip(t *testing.T) {
	for _, k := range []Kind{KOid, KLng, KDbl, KStr, KBit} {
		v := NewVector(k)
		if v.Kind() != k || v.Len() != 0 {
			t.Fatalf("NewVector(%v) wrong", k)
		}
		var val Value
		switch k {
		case KOid:
			val = Oid(1)
		case KLng:
			val = Lng(1)
		case KDbl:
			val = Dbl(1)
		case KStr:
			val = Str("1")
		case KBit:
			val = Bit(true)
		}
		v = v.Append(val)
		if v.Len() != 1 || v.Get(0) != val {
			t.Fatalf("%v append/get failed", k)
		}
		if e := v.Empty(); e.Len() != 0 || e.Kind() != k {
			t.Fatalf("%v Empty wrong", k)
		}
		if s := v.Slice(0, 1); s.Len() != 1 || s.Get(0) != val {
			t.Fatalf("%v slice wrong", k)
		}
	}
}

func TestNewBATLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	New(NewDenseOids(0, 2), NewLngs([]int64{1}))
}

func TestBATSplitAt(t *testing.T) {
	b := lngBAT(10, 20, 30, 40)
	l, r := b.SplitAt(1)
	if l.Len() != 1 || r.Len() != 3 {
		t.Fatalf("split lens %d/%d", l.Len(), r.Len())
	}
	if l.Tail.Get(0).AsLng() != 10 || r.Tail.Get(0).AsLng() != 20 {
		t.Error("split contents wrong")
	}
	// Heads stay aligned with the original oids.
	if r.Head.Get(0).AsOid() != 1 {
		t.Error("split head misaligned")
	}
}

func TestBATCloneIndependent(t *testing.T) {
	b := lngBAT(1, 2)
	c := b.Clone()
	c.AppendRow(Oid(9), Lng(9))
	if b.Len() != 2 || c.Len() != 3 {
		t.Error("clone not independent")
	}
}

func TestBATString(t *testing.T) {
	out := lngBAT(1, 2).String()
	if !strings.Contains(out, "2 rows") || !strings.Contains(out, "[ 0@0, 1 ]") {
		t.Errorf("String = %q", out)
	}
	big := NewDense(NewLngs(make([]int64, 100))).String()
	if !strings.Contains(big, "more") {
		t.Error("long BAT not truncated")
	}
}

func TestRangeSelectDbl(t *testing.T) {
	b := dblBAT(1.0, 2.5, 3.0, 4.9, 5.0)
	r := RangeSelect(b, Dbl(2.5), Dbl(5.0), true, true)
	if r.Len() != 4 {
		t.Fatalf("len = %d", r.Len())
	}
	r = RangeSelect(b, Dbl(2.5), Dbl(5.0), false, false)
	if r.Len() != 2 {
		t.Fatalf("exclusive len = %d", r.Len())
	}
	// Head oids preserved.
	if r.Head.Get(0).AsOid() != 2 {
		t.Error("head not preserved")
	}
}

func TestRangeSelectLng(t *testing.T) {
	b := lngBAT(5, 1, 9, 3)
	r := RangeSelect(b, Lng(2), Lng(6), true, true)
	if r.Len() != 2 {
		t.Fatalf("len = %d", r.Len())
	}
}

func TestRangeSelectKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	RangeSelect(lngBAT(1), Dbl(0), Dbl(1), true, true)
}

func TestSelectEq(t *testing.T) {
	b := lngBAT(1, 2, 2, 3)
	if r := SelectEq(b, Lng(2)); r.Len() != 2 {
		t.Errorf("len = %d", r.Len())
	}
}

func TestKUnion(t *testing.T) {
	a := New(NewOids([]uint64{0, 1}), NewLngs([]int64{10, 11}))
	b := New(NewOids([]uint64{1, 2}), NewLngs([]int64{99, 12}))
	u := KUnion(a, b)
	if u.Len() != 3 {
		t.Fatalf("len = %d", u.Len())
	}
	// Head 1 keeps a's tail (left bias).
	for i := 0; i < u.Len(); i++ {
		h, tl := u.Row(i)
		if h.AsOid() == 1 && tl.AsLng() != 11 {
			t.Error("kunion not left-biased")
		}
	}
}

func TestKDifference(t *testing.T) {
	a := New(NewOids([]uint64{0, 1, 2}), NewLngs([]int64{10, 11, 12}))
	b := New(NewOids([]uint64{1}), NewLngs([]int64{0}))
	d := KDifference(a, b)
	if d.Len() != 2 {
		t.Fatalf("len = %d", d.Len())
	}
	for i := 0; i < d.Len(); i++ {
		if h, _ := d.Row(i); h.AsOid() == 1 {
			t.Error("kdifference kept masked head")
		}
	}
}

func TestKIntersect(t *testing.T) {
	a := New(NewOids([]uint64{0, 1, 2}), NewLngs([]int64{10, 11, 12}))
	b := New(NewOids([]uint64{2, 0}), NewLngs([]int64{0, 0}))
	x := KIntersect(a, b)
	if x.Len() != 2 {
		t.Fatalf("len = %d", x.Len())
	}
}

func TestReverseMirrorMark(t *testing.T) {
	b := lngBAT(7, 8)
	r := Reverse(b)
	if r.HeadKind() != KLng || r.TailKind() != KOid {
		t.Error("reverse kinds wrong")
	}
	m := Mirror(b)
	if m.TailKind() != KOid || m.Tail.Get(1).AsOid() != 1 {
		t.Error("mirror wrong")
	}
	k := MarkT(Reverse(b), 100)
	if k.Tail.Get(0).AsOid() != 100 || k.Tail.Get(1).AsOid() != 101 {
		t.Error("markT wrong")
	}
}

func TestJoin(t *testing.T) {
	// a: [oid, oid] renumbering; b: [oid, lng] values.
	a := New(NewDenseOids(0, 3), NewOids([]uint64{5, 6, 7}))
	b := New(NewOids([]uint64{6, 7, 5}), NewLngs([]int64{60, 70, 50}))
	j := Join(a, b)
	if j.Len() != 3 {
		t.Fatalf("len = %d", j.Len())
	}
	want := map[uint64]int64{0: 50, 1: 60, 2: 70}
	for i := 0; i < j.Len(); i++ {
		h, tl := j.Row(i)
		if want[h.AsOid()] != tl.AsLng() {
			t.Errorf("join pair %v -> %v wrong", h, tl)
		}
	}
}

func TestJoinDuplicatesMultiply(t *testing.T) {
	a := New(NewDenseOids(0, 1), NewOids([]uint64{5}))
	b := New(NewOids([]uint64{5, 5}), NewLngs([]int64{1, 2}))
	if j := Join(a, b); j.Len() != 2 {
		t.Errorf("len = %d, want 2", j.Len())
	}
}

func TestJoinKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("join mismatch did not panic")
		}
	}()
	Join(lngBAT(1), dblBAT(1))
}

func TestProject(t *testing.T) {
	p := Project(lngBAT(1, 2), Str("x"))
	if p.Len() != 2 || p.Tail.Get(0).AsStr() != "x" {
		t.Error("project wrong")
	}
}

func TestAggregates(t *testing.T) {
	b := lngBAT(3, 1, 4, 1, 5)
	if Count(b) != 5 {
		t.Error("count")
	}
	if Sum(b).AsLng() != 14 {
		t.Error("sum lng")
	}
	if Min(b).AsLng() != 1 || Max(b).AsLng() != 5 {
		t.Error("min/max")
	}
	d := dblBAT(1.5, 2.5)
	if Sum(d).AsDbl() != 4.0 {
		t.Error("sum dbl")
	}
}

func TestSumPanicsOnStr(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("sum over str did not panic")
		}
	}()
	Sum(NewDense(NewStrs([]string{"a"})))
}

func TestMinEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("min of empty did not panic")
		}
	}()
	Min(Empty(KOid, KLng))
}

func TestSortTail(t *testing.T) {
	b := lngBAT(3, 1, 2)
	s := SortTail(b)
	want := []int64{1, 2, 3}
	wantHeads := []uint64{1, 2, 0}
	for i := range want {
		h, tl := s.Row(i)
		if tl.AsLng() != want[i] || h.AsOid() != wantHeads[i] {
			t.Errorf("sorted[%d] = (%v, %v)", i, h, tl)
		}
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram(lngBAT(1, 2, 1, 1))
	if h.Len() != 2 {
		t.Fatalf("len = %d", h.Len())
	}
	hv, c := h.Row(0)
	if hv.AsLng() != 1 || c.AsLng() != 3 {
		t.Errorf("histogram first = (%v, %v)", hv, c)
	}
}

// --- property tests ---

func TestKOpsPropertiesAgainstMaps(t *testing.T) {
	// Property: the k-operators agree with map-based set semantics on the
	// head column.
	rng := rand.New(rand.NewSource(2))
	mk := func() *BAT {
		n := rng.Intn(40)
		heads := make([]uint64, n)
		tails := make([]int64, n)
		seen := map[uint64]bool{}
		for i := 0; i < n; i++ {
			h := uint64(rng.Intn(30))
			for seen[h] {
				h = uint64(rng.Intn(100))
			}
			seen[h] = true
			heads[i] = h
			tails[i] = rng.Int63n(100)
		}
		return New(NewOids(heads), NewLngs(tails))
	}
	f := func() bool {
		a, b := mk(), mk()
		sa, sb := headSet(a), headSet(b)
		u, d, x := KUnion(a, b), KDifference(a, b), KIntersect(a, b)
		// Union size = |a| + |b \ a|.
		wantU := a.Len()
		for h := range sb {
			if _, ok := sa[h]; !ok {
				wantU++
			}
		}
		if u.Len() != wantU {
			return false
		}
		wantD := 0
		for h := range sa {
			if _, ok := sb[h]; !ok {
				wantD++
			}
		}
		if d.Len() != wantD {
			return false
		}
		wantX := a.Len() - wantD
		return x.Len() == wantX
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSegmentedSumEqualsCentralSum(t *testing.T) {
	// §3.1: a sum over a segmented bat = sum of per-segment sums. Split a
	// BAT at random points and verify.
	rng := rand.New(rand.NewSource(3))
	f := func() bool {
		n := 1 + rng.Intn(200)
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = rng.Int63n(1000) - 500
		}
		b := NewDense(NewLngs(vals))
		total := Sum(b).AsLng()
		var parts int64
		rest := b
		for rest.Len() > 0 {
			cut := 1 + rng.Intn(rest.Len())
			var piece *BAT
			piece, rest = rest.SplitAt(cut)
			parts += Sum(piece).AsLng()
		}
		return parts == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSegmentedSortEqualsCentralSort(t *testing.T) {
	// §3.1: sorting a value-segmented column = concatenation of sorted
	// value-disjoint segments. Partition by value range, sort pieces,
	// concatenate, compare with the centralized sort.
	vals := []float64{5.5, 1.1, 9.9, 3.3, 7.7, 2.2, 8.8, 4.4, 6.6}
	b := NewDense(NewDbls(vals))
	central := SortTail(b)
	lowSeg := RangeSelect(b, Dbl(0), Dbl(5), true, true)
	highSeg := RangeSelect(b, Dbl(5), Dbl(10), false, true)
	merged := Empty(KOid, KDbl)
	for _, seg := range []*BAT{SortTail(lowSeg), SortTail(highSeg)} {
		for i := 0; i < seg.Len(); i++ {
			h, tl := seg.Row(i)
			merged.AppendRow(h, tl)
		}
	}
	if merged.Len() != central.Len() {
		t.Fatalf("lengths differ: %d vs %d", merged.Len(), central.Len())
	}
	for i := 0; i < merged.Len(); i++ {
		mh, mt := merged.Row(i)
		ch, ct := central.Row(i)
		if mh != ch || mt != ct {
			t.Fatalf("row %d differs: (%v,%v) vs (%v,%v)", i, mh, mt, ch, ct)
		}
	}
}

func TestSplitConcatIdentityProperty(t *testing.T) {
	// Property: splitting at any point and re-appending reproduces the
	// original associations.
	rng := rand.New(rand.NewSource(4))
	f := func() bool {
		n := rng.Intn(100)
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = rng.Int63()
		}
		b := NewDense(NewLngs(vals))
		if n == 0 {
			return true
		}
		cut := rng.Intn(n + 1)
		l, r := b.SplitAt(cut)
		rebuilt := Empty(KOid, KLng)
		for _, p := range []*BAT{l, r} {
			for i := 0; i < p.Len(); i++ {
				h, tl := p.Row(i)
				rebuilt.AppendRow(h, tl)
			}
		}
		if rebuilt.Len() != b.Len() {
			return false
		}
		for i := 0; i < b.Len(); i++ {
			bh, bt := b.Row(i)
			rh, rt := rebuilt.Row(i)
			if bh != rh || bt != rt {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
