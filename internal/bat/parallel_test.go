package bat

import (
	"math"
	"math/rand"
	"testing"
)

func randomLngBAT(n int, seed int64) *BAT {
	r := rand.New(rand.NewSource(seed))
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = r.Int63n(1000)
	}
	return NewDense(NewLngs(vals))
}

func randomDblBAT(n int, seed int64) *BAT {
	r := rand.New(rand.NewSource(seed))
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = r.Float64() * 1000
	}
	return NewDense(NewDbls(vals))
}

func sameBAT(t *testing.T, got, want *BAT) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("length %d != %d", got.Len(), want.Len())
	}
	for i := 0; i < got.Len(); i++ {
		gh, gt := got.Row(i)
		wh, wt := want.Row(i)
		if gh != wh || gt != wt {
			t.Fatalf("row %d: (%v,%v) != (%v,%v)", i, gh, gt, wh, wt)
		}
	}
}

func TestRangeSelectParMatchesSerial(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 17} {
		for _, n := range []int{0, 1, 7, 1000} {
			b := randomLngBAT(n, int64(n+workers))
			want := RangeSelect(b, Lng(100), Lng(700), true, true)
			got := RangeSelectPar(b, Lng(100), Lng(700), true, true, workers)
			sameBAT(t, got, want)

			d := randomDblBAT(n, int64(n+workers))
			wantD := RangeSelect(d, Dbl(100), Dbl(700), true, false)
			gotD := RangeSelectPar(d, Dbl(100), Dbl(700), true, false, workers)
			sameBAT(t, gotD, wantD)
		}
	}
}

func TestSumParLngExact(t *testing.T) {
	b := randomLngBAT(10_000, 7)
	want := Sum(b)
	for _, workers := range []int{1, 2, 4, 9} {
		if got := SumPar(b, workers); got != want {
			t.Errorf("workers=%d: SumPar = %v, want %v", workers, got, want)
		}
	}
}

func TestSumParDblClose(t *testing.T) {
	b := randomDblBAT(10_000, 8)
	want := Sum(b).AsDbl()
	for _, workers := range []int{2, 4, 9} {
		got := SumPar(b, workers).AsDbl()
		if math.Abs(got-want) > math.Abs(want)*1e-9 {
			t.Errorf("workers=%d: SumPar = %v, want ~%v", workers, got, want)
		}
	}
}

func TestMinMaxParExact(t *testing.T) {
	for _, mk := range []func(int, int64) *BAT{randomLngBAT, randomDblBAT} {
		b := mk(5000, 11)
		for _, workers := range []int{1, 3, 8} {
			if got, want := MinPar(b, workers), Min(b); got != want {
				t.Errorf("workers=%d: MinPar = %v, want %v", workers, got, want)
			}
			if got, want := MaxPar(b, workers), Max(b); got != want {
				t.Errorf("workers=%d: MaxPar = %v, want %v", workers, got, want)
			}
		}
	}
}

func TestCountRangeParMatchesSerial(t *testing.T) {
	b := randomLngBAT(5000, 13)
	want := int64(RangeSelect(b, Lng(250), Lng(750), true, true).Len())
	for _, workers := range []int{1, 2, 5, 16} {
		if got := CountRangePar(b, Lng(250), Lng(750), workers); got != want {
			t.Errorf("workers=%d: CountRangePar = %d, want %d", workers, got, want)
		}
	}
}

func TestChunkBoundsCoverExactly(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100} {
		for _, parts := range []int{1, 2, 3, 50, 200} {
			chunks := chunkBounds(n, parts)
			next := 0
			for _, c := range chunks {
				if c[0] != next || c[1] <= c[0] {
					t.Fatalf("n=%d parts=%d: bad chunk %v (next %d)", n, parts, c, next)
				}
				next = c[1]
			}
			if next != n {
				t.Fatalf("n=%d parts=%d: chunks cover %d rows", n, parts, next)
			}
		}
	}
}
