package bat

import "fmt"

// Vector is one column of a BAT: a contiguous, typed sequence of atoms.
// It is the substrate's extension point — the plain slice-backed vectors
// below and the compressed encodings of internal/compress both implement
// it, so every algebra operator and aggregate runs over either
// transparently. Implementations are value containers, not synchronized
// structures: concurrent readers are safe on a vector nobody appends to
// (the parallel operators rely on this), while mutation needs external
// ownership.
type Vector interface {
	Kind() Kind
	Len() int
	Get(i int) Value
	// Append adds a value (of the vector's kind) and returns the updated
	// vector (append semantics: the receiver may be reused or replaced).
	Append(v Value) Vector
	// Slice returns the half-open sub-vector [i, j) sharing storage where
	// possible — the "split at any point" property of §2.
	Slice(i, j int) Vector
	// Empty returns a fresh zero-length vector of the same kind.
	Empty() Vector
}

// NewVector returns an empty vector of the given kind.
func NewVector(k Kind) Vector {
	switch k {
	case KOid:
		return &OidVector{}
	case KLng:
		return &LngVector{}
	case KDbl:
		return &DblVector{}
	case KStr:
		return &StrVector{}
	case KBit:
		return &BitVector{}
	default:
		panic(fmt.Sprintf("bat: unknown kind %v", k))
	}
}

// OidVector stores object identifiers. The common case — a densely
// ascending head starting at some base — is stored as just (base, n),
// MonetDB's void head; materialization happens lazily on first
// non-dense operation.
type OidVector struct {
	dense bool
	base  uint64
	n     int
	vals  []uint64
}

// NewDenseOids returns the dense oid sequence base, base+1, ..., base+n-1.
func NewDenseOids(base uint64, n int) *OidVector {
	if n < 0 {
		panic("bat: negative length")
	}
	return &OidVector{dense: true, base: base, n: n}
}

// NewOids returns a materialized oid vector holding vals.
func NewOids(vals []uint64) *OidVector { return &OidVector{vals: vals} }

// Dense reports whether the vector is in dense (void) representation.
func (o *OidVector) Dense() bool { return o.dense }

// Kind implements Vector.
func (o *OidVector) Kind() Kind { return KOid }

// Len implements Vector.
func (o *OidVector) Len() int {
	if o.dense {
		return o.n
	}
	return len(o.vals)
}

// Get implements Vector.
func (o *OidVector) Get(i int) Value {
	if o.dense {
		if i < 0 || i >= o.n {
			panic(fmt.Sprintf("bat: oid index %d out of %d", i, o.n))
		}
		return Oid(o.base + uint64(i))
	}
	return Oid(o.vals[i])
}

// Append implements Vector, materializing a dense vector first.
func (o *OidVector) Append(v Value) Vector {
	m := o.materialize()
	m.vals = append(m.vals, v.AsOid())
	return m
}

// Slice implements Vector. Dense slices stay dense.
func (o *OidVector) Slice(i, j int) Vector {
	if o.dense {
		if i < 0 || j > o.n || i > j {
			panic(fmt.Sprintf("bat: oid slice [%d, %d) out of %d", i, j, o.n))
		}
		return &OidVector{dense: true, base: o.base + uint64(i), n: j - i}
	}
	return &OidVector{vals: o.vals[i:j]}
}

// Empty implements Vector.
func (o *OidVector) Empty() Vector { return &OidVector{} }

// materialize converts a dense vector into explicit storage.
func (o *OidVector) materialize() *OidVector {
	if !o.dense {
		return o
	}
	vals := make([]uint64, o.n)
	for i := range vals {
		vals[i] = o.base + uint64(i)
	}
	return &OidVector{vals: vals}
}

// LngVector stores 64-bit integers.
type LngVector struct{ vals []int64 }

// NewLngs wraps vals (not copied).
func NewLngs(vals []int64) *LngVector { return &LngVector{vals: vals} }

// Lngs exposes the underlying storage (read-only use).
func (l *LngVector) Lngs() []int64 { return l.vals }

// Kind implements Vector.
func (l *LngVector) Kind() Kind { return KLng }

// Len implements Vector.
func (l *LngVector) Len() int { return len(l.vals) }

// Get implements Vector.
func (l *LngVector) Get(i int) Value { return Lng(l.vals[i]) }

// Append implements Vector.
func (l *LngVector) Append(v Value) Vector {
	l.vals = append(l.vals, v.AsLng())
	return l
}

// Slice implements Vector.
func (l *LngVector) Slice(i, j int) Vector { return &LngVector{vals: l.vals[i:j]} }

// Empty implements Vector.
func (l *LngVector) Empty() Vector { return &LngVector{} }

// DblVector stores 64-bit floats.
type DblVector struct{ vals []float64 }

// NewDbls wraps vals (not copied).
func NewDbls(vals []float64) *DblVector { return &DblVector{vals: vals} }

// Dbls exposes the underlying storage (read-only use).
func (d *DblVector) Dbls() []float64 { return d.vals }

// Kind implements Vector.
func (d *DblVector) Kind() Kind { return KDbl }

// Len implements Vector.
func (d *DblVector) Len() int { return len(d.vals) }

// Get implements Vector.
func (d *DblVector) Get(i int) Value { return Dbl(d.vals[i]) }

// Append implements Vector.
func (d *DblVector) Append(v Value) Vector {
	d.vals = append(d.vals, v.AsDbl())
	return d
}

// Slice implements Vector.
func (d *DblVector) Slice(i, j int) Vector { return &DblVector{vals: d.vals[i:j]} }

// Empty implements Vector.
func (d *DblVector) Empty() Vector { return &DblVector{} }

// StrVector stores strings.
type StrVector struct{ vals []string }

// NewStrs wraps vals (not copied).
func NewStrs(vals []string) *StrVector { return &StrVector{vals: vals} }

// Kind implements Vector.
func (s *StrVector) Kind() Kind { return KStr }

// Len implements Vector.
func (s *StrVector) Len() int { return len(s.vals) }

// Get implements Vector.
func (s *StrVector) Get(i int) Value { return Str(s.vals[i]) }

// Append implements Vector.
func (s *StrVector) Append(v Value) Vector {
	s.vals = append(s.vals, v.AsStr())
	return s
}

// Slice implements Vector.
func (s *StrVector) Slice(i, j int) Vector { return &StrVector{vals: s.vals[i:j]} }

// Empty implements Vector.
func (s *StrVector) Empty() Vector { return &StrVector{} }

// BitVector stores booleans.
type BitVector struct{ vals []bool }

// Kind implements Vector.
func (b *BitVector) Kind() Kind { return KBit }

// Len implements Vector.
func (b *BitVector) Len() int { return len(b.vals) }

// Get implements Vector.
func (b *BitVector) Get(i int) Value { return Bit(b.vals[i]) }

// Append implements Vector.
func (b *BitVector) Append(v Value) Vector {
	b.vals = append(b.vals, v.AsBit())
	return b
}

// Slice implements Vector.
func (b *BitVector) Slice(i, j int) Vector { return &BitVector{vals: b.vals[i:j]} }

// Empty implements Vector.
func (b *BitVector) Empty() Vector { return &BitVector{} }
