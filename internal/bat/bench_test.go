package bat

import (
	"math/rand"
	"testing"
)

func benchDblBAT(n int) *BAT {
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = rng.Float64() * 360
	}
	return NewDense(NewDbls(vals))
}

// BenchmarkRangeSelectDbl measures the selection kernel on the SkyServer
// predicate shape (narrow dbl range over an unsorted column).
func BenchmarkRangeSelectDbl(b *testing.B) {
	bt := benchDblBAT(1 << 20)
	b.SetBytes(8 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := RangeSelect(bt, Dbl(205.1), Dbl(205.12), true, true)
		_ = r
	}
}

// BenchmarkKUnion measures the delta-merge operator of the Figure-1 plan.
func BenchmarkKUnion(b *testing.B) {
	n := 1 << 16
	a := New(NewDenseOids(0, n), NewLngs(make([]int64, n)))
	c := New(NewDenseOids(uint64(n/2), n), NewLngs(make([]int64, n)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KUnion(a, c)
	}
}

// BenchmarkJoin measures the oid-rejoin used for result construction.
func BenchmarkJoin(b *testing.B) {
	n := 1 << 16
	heads := make([]uint64, n)
	for i := range heads {
		heads[i] = uint64(i)
	}
	a := New(NewDenseOids(0, n), NewOids(heads))
	c := New(NewOids(heads), NewLngs(make([]int64, n)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Join(a, c)
	}
}

// BenchmarkSplitAt measures the §2 split-anywhere property (it should be
// O(1): slices share storage).
func BenchmarkSplitAt(b *testing.B) {
	bt := benchDblBAT(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, r := bt.SplitAt(1 << 19)
		if l.Len()+r.Len() != bt.Len() {
			b.Fatal("split lost rows")
		}
	}
}
