package bat

import (
	"fmt"
	"sort"
)

// Count returns the number of associations — MAL's aggr.count.
func Count(b *BAT) int64 { return int64(b.Len()) }

// Sum adds up the tail column (lng or dbl) — MAL's aggr.sum. §3.1 notes
// that a sum over a segmented bat is "relatively easy to design"; the
// segment-aware version simply sums per segment and adds the parts, which
// the tests verify against this centralized version.
func Sum(b *BAT) Value {
	switch t := b.Tail.(type) {
	case *LngVector:
		var s int64
		for _, v := range t.Lngs() {
			s += v
		}
		return Lng(s)
	case *DblVector:
		var s float64
		for _, v := range t.Dbls() {
			s += v
		}
		return Dbl(s)
	}
	// Generic path: any other Vector implementation (notably the
	// compressed encodings of internal/compress) sums through Get.
	switch b.TailKind() {
	case KLng:
		var s int64
		for i := 0; i < b.Len(); i++ {
			s += b.Tail.Get(i).AsLng()
		}
		return Lng(s)
	case KDbl:
		var s float64
		for i := 0; i < b.Len(); i++ {
			s += b.Tail.Get(i).AsDbl()
		}
		return Dbl(s)
	default:
		panic(fmt.Sprintf("bat: sum over %v tail", b.TailKind()))
	}
}

// Min returns the smallest tail value; it panics on an empty BAT.
func Min(b *BAT) Value {
	if b.Len() == 0 {
		panic("bat: min of empty bat")
	}
	m := b.Tail.Get(0)
	for i := 1; i < b.Len(); i++ {
		if v := b.Tail.Get(i); v.Less(m) {
			m = v
		}
	}
	return m
}

// Max returns the largest tail value; it panics on an empty BAT.
func Max(b *BAT) Value {
	if b.Len() == 0 {
		panic("bat: max of empty bat")
	}
	m := b.Tail.Get(0)
	for i := 1; i < b.Len(); i++ {
		if v := b.Tail.Get(i); m.Less(v) {
			m = v
		}
	}
	return m
}

// SortTail returns a new BAT ordered ascending by tail, preserving the
// head/tail pairing — MAL's algebra.sortTail. §3.1 points out that sorting
// a segmented column "effectively requires a major re-partitioning"; the
// segment-aware variant concatenates per-segment sorts of value-disjoint
// segments, which tests compare against this version.
func SortTail(b *BAT) *BAT {
	idx := make([]int, b.Len())
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(x, y int) bool {
		return b.Tail.Get(idx[x]).Less(b.Tail.Get(idx[y]))
	})
	out := Empty(b.HeadKind(), b.TailKind())
	for _, i := range idx {
		h, t := b.Row(i)
		out.AppendRow(h, t)
	}
	return out
}

// Histogram counts tail occurrences — MAL's aggr.histogram, returned as a
// [value, lng] BAT in first-seen order.
func Histogram(b *BAT) *BAT {
	counts := make(map[Value]int64, b.Len())
	order := make([]Value, 0, b.Len())
	for i := 0; i < b.Len(); i++ {
		t := b.Tail.Get(i)
		if _, ok := counts[t]; !ok {
			order = append(order, t)
		}
		counts[t]++
	}
	out := Empty(b.TailKind(), KLng)
	for _, v := range order {
		out.AppendRow(v, Lng(counts[v]))
	}
	return out
}
