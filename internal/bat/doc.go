// Package bat implements the MonetDB storage substrate described in §2: a
// binary association table (BAT) is a 2-column structure whose elements
// are "physically stored in a contiguous area ... no holes, deleted
// elements, or auxiliary data", which means "a bat can be conveniently
// split at any point". The package provides the BAT kernel operators that
// the paper's MAL plans use (Figure 1): range selections, the k-operators
// (kunion/kdifference/kintersect), reverse/mirror/mark, joins and
// aggregates.
//
// Columns are typed through the Vector interface; the compressed
// encodings of internal/compress implement it too, so every operator
// runs over compressed data transparently (RangeSelect additionally
// picks up their compressed-form span fast path through RangeSpanner).
//
// The "split at any point" property also powers the parallel operator
// variants (RangeSelectPar, SumPar, MinPar, MaxPar, CountRangePar):
// a BAT is cut into contiguous row chunks sharing storage, the chunks
// are processed on a bounded worker pool, and the partials are merged in
// row order — selections come out byte-identical to their serial
// counterparts.
package bat
