package bat

import (
	"sync"
	"sync/atomic"
)

// This file provides the parallel counterparts of the hot algebra and
// aggregation operators: the BAT is cut into contiguous row chunks (the
// "split at any point" property of §2 makes chunking free — slices share
// storage), each chunk is processed independently on a bounded worker
// pool, and the per-chunk partials are merged in chunk order, so the
// output is deterministic and — for selections — byte-identical to the
// serial operator. Aggregates over lng tails are exact; dbl sums are
// deterministic for a fixed chunk count but may differ from the serial
// rounding order by floating-point associativity.

// chunkBounds cuts n rows into at most parts contiguous half-open spans.
func chunkBounds(n, parts int) [][2]int {
	if parts > n {
		parts = n
	}
	if parts < 1 {
		parts = 1
	}
	out := make([][2]int, 0, parts)
	for i := 0; i < parts; i++ {
		lo := n * i / parts
		hi := n * (i + 1) / parts
		if lo < hi {
			out = append(out, [2]int{lo, hi})
		}
	}
	return out
}

// forEachChunk runs f over every chunk on a pool of at most workers
// goroutines and waits for completion. Chunk indices are handed out
// through an atomic cursor so the pool stays busy regardless of skew.
func forEachChunk(chunks [][2]int, workers int, f func(idx int, lo, hi int)) {
	if workers > len(chunks) {
		workers = len(chunks)
	}
	if workers <= 1 {
		for i, c := range chunks {
			f(i, c[0], c[1])
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(chunks) {
					return
				}
				f(i, chunks[i][0], chunks[i][1])
			}
		}()
	}
	wg.Wait()
}

// RangeSelectPar is the parallel RangeSelect: the scan fans out across
// row chunks on at most workers goroutines and the qualifying
// associations are merged back in row order, so the result is
// byte-identical to the serial operator. workers <= 1 delegates to
// RangeSelect directly.
func RangeSelectPar(b *BAT, lo, hi Value, loIncl, hiIncl bool, workers int) *BAT {
	if workers <= 1 || b.Len() < 2 {
		return RangeSelect(b, lo, hi, loIncl, hiIncl)
	}
	chunks := chunkBounds(b.Len(), workers*4)
	parts := make([]*BAT, len(chunks))
	forEachChunk(chunks, workers, func(i, lo2, hi2 int) {
		parts[i] = RangeSelect(b.Slice(lo2, hi2), lo, hi, loIncl, hiIncl)
	})
	// One typed bulk copy per partial instead of a per-row append loop:
	// the merge cost is proportional to the result size, with no per-row
	// interface dispatch.
	return Concat(parts)
}

// SumPar is the parallel aggr.sum: per-chunk partial sums merged in chunk
// order. Exact for lng tails; dbl tails are deterministic for a given
// worker count but may differ from the serial Sum in the last bits, since
// float addition is not associative.
func SumPar(b *BAT, workers int) Value {
	if workers <= 1 || b.Len() < 2 {
		return Sum(b)
	}
	chunks := chunkBounds(b.Len(), workers)
	parts := make([]Value, len(chunks))
	forEachChunk(chunks, workers, func(i, lo, hi int) {
		parts[i] = Sum(b.Slice(lo, hi))
	})
	switch b.TailKind() {
	case KLng:
		var s int64
		for _, p := range parts {
			s += p.AsLng()
		}
		return Lng(s)
	default:
		var s float64
		for _, p := range parts {
			s += p.AsDbl()
		}
		return Dbl(s)
	}
}

// MinPar is the parallel Min: per-chunk minima reduced serially. Exact
// for every tail kind; panics on an empty BAT like Min.
func MinPar(b *BAT, workers int) Value {
	if workers <= 1 || b.Len() < 2 {
		return Min(b)
	}
	chunks := chunkBounds(b.Len(), workers)
	parts := make([]Value, len(chunks))
	forEachChunk(chunks, workers, func(i, lo, hi int) {
		parts[i] = Min(b.Slice(lo, hi))
	})
	m := parts[0]
	for _, p := range parts[1:] {
		if p.Less(m) {
			m = p
		}
	}
	return m
}

// MaxPar is the parallel Max: per-chunk maxima reduced serially. Exact
// for every tail kind; panics on an empty BAT like Max.
func MaxPar(b *BAT, workers int) Value {
	if workers <= 1 || b.Len() < 2 {
		return Max(b)
	}
	chunks := chunkBounds(b.Len(), workers)
	parts := make([]Value, len(chunks))
	forEachChunk(chunks, workers, func(i, lo, hi int) {
		parts[i] = Max(b.Slice(lo, hi))
	})
	m := parts[0]
	for _, p := range parts[1:] {
		if m.Less(p) {
			m = p
		}
	}
	return m
}

// countRange counts the associations whose tail lies in [lo, hi] (bounds
// inclusive) without materializing a result: compressed tails count whole
// spans off their encoded form, dbl tails take the slice fast path, and
// everything else scans through Get.
func countRange(b *BAT, lo, hi Value) int64 {
	var n int64
	if rs, ok := b.Tail.(RangeSpanner); ok {
		rs.RangeSpans(lo, hi, func(start, end int) { n += int64(end - start) })
		return n
	}
	if dt, ok := b.Tail.(*DblVector); ok {
		l, h := lo.AsDbl(), hi.AsDbl()
		for _, v := range dt.Dbls() {
			if v >= l && v <= h {
				n++
			}
		}
		return n
	}
	for i := 0; i < b.Len(); i++ {
		t := b.Tail.Get(i)
		if !t.Less(lo) && !hi.Less(t) {
			n++
		}
	}
	return n
}

// CountRangePar counts the associations whose tail lies in [lo, hi]
// (bounds inclusive) without materializing them, fanning the scan out
// like RangeSelectPar.
func CountRangePar(b *BAT, lo, hi Value, workers int) int64 {
	if workers <= 1 || b.Len() < 2 {
		return countRange(b, lo, hi)
	}
	chunks := chunkBounds(b.Len(), workers*4)
	parts := make([]int64, len(chunks))
	forEachChunk(chunks, workers, func(i, lo2, hi2 int) {
		parts[i] = countRange(b.Slice(lo2, hi2), lo, hi)
	})
	var n int64
	for _, p := range parts {
		n += p
	}
	return n
}
