package bat

import (
	"fmt"
	"strconv"
)

// Kind enumerates the supported atom types, named after MonetDB's.
type Kind uint8

const (
	// KOid is the object identifier type heading most BATs.
	KOid Kind = iota
	// KLng is a 64-bit integer (MonetDB lng — SkyServer's objid).
	KLng
	// KDbl is a 64-bit float (MonetDB dbl — SkyServer's ra).
	KDbl
	// KStr is a variable-length string.
	KStr
	// KBit is a boolean.
	KBit
)

func (k Kind) String() string {
	switch k {
	case KOid:
		return "oid"
	case KLng:
		return "lng"
	case KDbl:
		return "dbl"
	case KStr:
		return "str"
	case KBit:
		return "bit"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// KindFromName parses a MAL type name ("oid", "lng", "dbl", "str", "bit").
func KindFromName(name string) (Kind, error) {
	switch name {
	case "oid":
		return KOid, nil
	case "lng", "int", "bigint":
		return KLng, nil
	case "dbl", "real", "flt":
		return KDbl, nil
	case "str":
		return KStr, nil
	case "bit":
		return KBit, nil
	default:
		return 0, fmt.Errorf("bat: unknown atom type %q", name)
	}
}

// Value is one typed cell. The struct is comparable, so Values can key
// hash maps directly (the k-operators and joins rely on this).
type Value struct {
	K Kind
	I int64   // payload for KOid (as non-negative), KLng and KBit (0/1)
	F float64 // payload for KDbl
	S string  // payload for KStr
}

// Oid builds an oid value.
func Oid(v uint64) Value { return Value{K: KOid, I: int64(v)} }

// Lng builds a lng value.
func Lng(v int64) Value { return Value{K: KLng, I: v} }

// Dbl builds a dbl value.
func Dbl(v float64) Value { return Value{K: KDbl, F: v} }

// Str builds a str value.
func Str(v string) Value { return Value{K: KStr, S: v} }

// Bit builds a bit value.
func Bit(v bool) Value {
	if v {
		return Value{K: KBit, I: 1}
	}
	return Value{K: KBit}
}

// AsOid returns the oid payload; it panics on kind mismatch.
func (v Value) AsOid() uint64 {
	v.mustBe(KOid)
	return uint64(v.I)
}

// AsLng returns the lng payload; it panics on kind mismatch.
func (v Value) AsLng() int64 {
	v.mustBe(KLng)
	return v.I
}

// AsDbl returns the dbl payload; it panics on kind mismatch.
func (v Value) AsDbl() float64 {
	v.mustBe(KDbl)
	return v.F
}

// AsStr returns the str payload; it panics on kind mismatch.
func (v Value) AsStr() string {
	v.mustBe(KStr)
	return v.S
}

// AsBit returns the bit payload; it panics on kind mismatch.
func (v Value) AsBit() bool {
	v.mustBe(KBit)
	return v.I != 0
}

func (v Value) mustBe(k Kind) {
	if v.K != k {
		panic(fmt.Sprintf("bat: value is %v, not %v", v.K, k))
	}
}

// Less orders values of the same kind; it panics on kind mismatch or on
// unordered kinds (bit).
func (v Value) Less(w Value) bool {
	if v.K != w.K {
		panic(fmt.Sprintf("bat: comparing %v with %v", v.K, w.K))
	}
	switch v.K {
	case KOid:
		return uint64(v.I) < uint64(w.I)
	case KLng:
		return v.I < w.I
	case KDbl:
		return v.F < w.F
	case KStr:
		return v.S < w.S
	default:
		panic(fmt.Sprintf("bat: %v values are unordered", v.K))
	}
}

func (v Value) String() string {
	switch v.K {
	case KOid:
		return fmt.Sprintf("%d@0", uint64(v.I))
	case KLng:
		return strconv.FormatInt(v.I, 10)
	case KDbl:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KStr:
		return strconv.Quote(v.S)
	case KBit:
		if v.I != 0 {
			return "true"
		}
		return "false"
	default:
		return fmt.Sprintf("Value(%d)", v.K)
	}
}
