package bat

import "fmt"

// This file implements the algebra operators the paper's MAL plans invoke
// (Figure 1 and the §3.1 segment-iterator rewrite): selections, the
// k-operators keyed on head values, reverse/mirror/mark and the join.

// RangeSpanner is implemented by vectors (notably the compressed
// encodings of internal/compress) that can enumerate the maximal
// half-open row spans [start, end) whose values all lie in [lo, hi]
// without decompressing: RLE walks run headers, Dict walks a code
// interval, FOR prunes on its min-max frame. RangeSelect uses it as a
// fast path.
type RangeSpanner interface {
	RangeSpans(lo, hi Value, f func(start, end int))
}

// RangeSelect returns the associations whose tail lies in [lo, hi]
// (bounds inclusive per flag) — MAL's algebra.select(b, lo, hi) /
// algebra.uselect(b, lo, hi, li, hi).
func RangeSelect(b *BAT, lo, hi Value, loIncl, hiIncl bool) *BAT {
	if lo.K != b.TailKind() || hi.K != b.TailKind() {
		panic(fmt.Sprintf("bat: select bounds %v/%v against tail %v", lo.K, hi.K, b.TailKind()))
	}
	out := Empty(b.HeadKind(), b.TailKind())
	// Fast path for compressed tails on the dominant inclusive form: the
	// qualifying row spans come straight off the encoded representation.
	if rs, ok := b.Tail.(RangeSpanner); ok && loIncl && hiIncl {
		rs.RangeSpans(lo, hi, func(start, end int) {
			for i := start; i < end; i++ {
				out.AppendRow(b.Head.Get(i), b.Tail.Get(i))
			}
		})
		return out
	}
	inLo := func(v Value) bool {
		if loIncl {
			return !v.Less(lo)
		}
		return lo.Less(v)
	}
	inHi := func(v Value) bool {
		if hiIncl {
			return !hi.Less(v)
		}
		return v.Less(hi)
	}
	// Fast path for the dominant dbl case (SkyServer's ra predicate).
	if dt, ok := b.Tail.(*DblVector); ok {
		for i, v := range dt.Dbls() {
			dv := Dbl(v)
			if inLo(dv) && inHi(dv) {
				out.AppendRow(b.Head.Get(i), dv)
			}
		}
		return out
	}
	for i := 0; i < b.Len(); i++ {
		h, t := b.Row(i)
		if inLo(t) && inHi(t) {
			out.AppendRow(h, t)
		}
	}
	return out
}

// SelectEq returns the associations whose tail equals v.
func SelectEq(b *BAT, v Value) *BAT {
	out := Empty(b.HeadKind(), b.TailKind())
	for i := 0; i < b.Len(); i++ {
		h, t := b.Row(i)
		if t == v {
			out.AppendRow(h, t)
		}
	}
	return out
}

// headSet builds a hash set of a BAT's head values.
func headSet(b *BAT) map[Value]struct{} {
	m := make(map[Value]struct{}, b.Len())
	for i := 0; i < b.Len(); i++ {
		m[b.Head.Get(i)] = struct{}{}
	}
	return m
}

// KUnion returns a's associations plus those of b whose head does not
// occur in a — MAL's algebra.kunion, used to merge base columns with
// insert deltas.
func KUnion(a, b *BAT) *BAT {
	if a.TailKind() != b.TailKind() || a.HeadKind() != b.HeadKind() {
		panic("bat: kunion of differently typed bats")
	}
	out := Empty(a.HeadKind(), a.TailKind())
	for i := 0; i < a.Len(); i++ {
		h, t := a.Row(i)
		out.AppendRow(h, t)
	}
	seen := headSet(a)
	for i := 0; i < b.Len(); i++ {
		h, t := b.Row(i)
		if _, ok := seen[h]; !ok {
			out.AppendRow(h, t)
		}
	}
	return out
}

// KDifference returns a's associations whose head does not occur in b —
// MAL's algebra.kdifference, used to mask updated or deleted rows.
func KDifference(a, b *BAT) *BAT {
	out := Empty(a.HeadKind(), a.TailKind())
	drop := headSet(b)
	for i := 0; i < a.Len(); i++ {
		h, t := a.Row(i)
		if _, ok := drop[h]; !ok {
			out.AppendRow(h, t)
		}
	}
	return out
}

// KIntersect returns a's associations whose head occurs in b.
func KIntersect(a, b *BAT) *BAT {
	out := Empty(a.HeadKind(), a.TailKind())
	keep := headSet(b)
	for i := 0; i < a.Len(); i++ {
		h, t := a.Row(i)
		if _, ok := keep[h]; ok {
			out.AppendRow(h, t)
		}
	}
	return out
}

// Reverse swaps head and tail — MAL's bat.reverse.
func Reverse(b *BAT) *BAT { return New(b.Tail, b.Head) }

// Mirror pairs each head value with itself — MAL's bat.mirror.
func Mirror(b *BAT) *BAT { return New(b.Head, b.Head) }

// MarkT renumbers the tail densely starting at base, keeping the head —
// MAL's algebra.markT(b, base), used to compact oid ranges before result
// construction.
func MarkT(b *BAT, base uint64) *BAT {
	return New(b.Head, NewDenseOids(base, b.Len()))
}

// Join matches a's tail against b's head and returns [a.head, b.tail] —
// MAL's algebra.join. Duplicate matches multiply, as in the relational
// semantics.
func Join(a, b *BAT) *BAT {
	if a.TailKind() != b.HeadKind() {
		panic(fmt.Sprintf("bat: join on %v tail vs %v head", a.TailKind(), b.HeadKind()))
	}
	// Hash the smaller operand's join column.
	idx := make(map[Value][]int, b.Len())
	for i := 0; i < b.Len(); i++ {
		h := b.Head.Get(i)
		idx[h] = append(idx[h], i)
	}
	out := Empty(a.HeadKind(), b.TailKind())
	for i := 0; i < a.Len(); i++ {
		h, t := a.Row(i)
		for _, j := range idx[t] {
			out.AppendRow(h, b.Tail.Get(j))
		}
	}
	return out
}

// Project returns [b.head, v] — a constant projection.
func Project(b *BAT, v Value) *BAT {
	t := NewVector(v.K)
	for i := 0; i < b.Len(); i++ {
		t = t.Append(v)
	}
	return New(b.Head, t)
}
