package bat

// Concat concatenates parts in order into one BAT, copying each column
// with one typed bulk append per part instead of a per-row Append loop —
// the merge step of the parallel operators. Column kinds must match
// across parts. A single part is returned as-is (no copy); dense oid
// heads stay dense when the parts' sequences are contiguous.
func Concat(parts []*BAT) *BAT {
	if len(parts) == 0 {
		panic("bat: Concat of no parts")
	}
	if len(parts) == 1 {
		return parts[0]
	}
	total := 0
	for _, p := range parts {
		if p.HeadKind() != parts[0].HeadKind() || p.TailKind() != parts[0].TailKind() {
			panic("bat: Concat of mismatched column kinds")
		}
		total += p.Len()
	}
	heads := make([]Vector, len(parts))
	tails := make([]Vector, len(parts))
	for i, p := range parts {
		heads[i] = p.Head
		tails[i] = p.Tail
	}
	return New(concatVecs(heads, total), concatVecs(tails, total))
}

// concatVecs concatenates same-kind vectors with a bulk copy per part.
// Vectors of mixed or unknown implementations (a compressed tail beside
// a plain one) fall back to the per-row append path.
func concatVecs(vs []Vector, total int) Vector {
	switch vs[0].(type) {
	case *LngVector:
		out := make([]int64, 0, total)
		for _, v := range vs {
			l, ok := v.(*LngVector)
			if !ok {
				return rowConcat(vs)
			}
			out = append(out, l.vals...)
		}
		return NewLngs(out)
	case *DblVector:
		out := make([]float64, 0, total)
		for _, v := range vs {
			d, ok := v.(*DblVector)
			if !ok {
				return rowConcat(vs)
			}
			out = append(out, d.vals...)
		}
		return NewDbls(out)
	case *StrVector:
		out := make([]string, 0, total)
		for _, v := range vs {
			s, ok := v.(*StrVector)
			if !ok {
				return rowConcat(vs)
			}
			out = append(out, s.vals...)
		}
		return NewStrs(out)
	case *BitVector:
		out := make([]bool, 0, total)
		for _, v := range vs {
			b, ok := v.(*BitVector)
			if !ok {
				return rowConcat(vs)
			}
			out = append(out, b.vals...)
		}
		return &BitVector{vals: out}
	case *OidVector:
		oids := make([]*OidVector, len(vs))
		for i, v := range vs {
			o, ok := v.(*OidVector)
			if !ok {
				return rowConcat(vs)
			}
			oids[i] = o
		}
		// Contiguous dense sequences concatenate into one dense (void)
		// vector — the common case when chunked dense heads are merged
		// back in row order.
		dense := true
		next := oids[0].base
		for _, o := range oids {
			if !o.dense || (o.n > 0 && o.base != next) {
				dense = false
				break
			}
			next += uint64(o.n)
		}
		if dense {
			return NewDenseOids(oids[0].base, total)
		}
		out := make([]uint64, 0, total)
		for _, o := range oids {
			if o.dense {
				for i := 0; i < o.n; i++ {
					out = append(out, o.base+uint64(i))
				}
				continue
			}
			out = append(out, o.vals...)
		}
		return NewOids(out)
	default:
		return rowConcat(vs)
	}
}

// rowConcat is the generic per-row concatenation fallback.
func rowConcat(vs []Vector) Vector {
	out := vs[0].Empty()
	for _, v := range vs {
		for i := 0; i < v.Len(); i++ {
			out = out.Append(v.Get(i))
		}
	}
	return out
}
