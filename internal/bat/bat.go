package bat

import (
	"fmt"
	"strings"
)

// BAT is MonetDB's binary association table: a head column and a tail
// column of equal length. Relational columns bind as [oid, value] BATs
// whose head is (usually densely ascending) object identifiers.
type BAT struct {
	Head Vector
	Tail Vector
}

// New wraps two equal-length vectors into a BAT.
func New(head, tail Vector) *BAT {
	if head.Len() != tail.Len() {
		panic(fmt.Sprintf("bat: head length %d != tail length %d", head.Len(), tail.Len()))
	}
	return &BAT{Head: head, Tail: tail}
}

// NewDense builds the common [oid, value] BAT with a dense head starting
// at 0.
func NewDense(tail Vector) *BAT {
	return New(NewDenseOids(0, tail.Len()), tail)
}

// Empty returns a zero-length BAT with the given column kinds.
func Empty(headKind, tailKind Kind) *BAT {
	return &BAT{Head: NewVector(headKind), Tail: NewVector(tailKind)}
}

// Len returns the number of associations (rows).
func (b *BAT) Len() int { return b.Head.Len() }

// HeadKind returns the head column's atom kind.
func (b *BAT) HeadKind() Kind { return b.Head.Kind() }

// TailKind returns the tail column's atom kind.
func (b *BAT) TailKind() Kind { return b.Tail.Kind() }

// Row returns the i-th (head, tail) pair.
func (b *BAT) Row(i int) (Value, Value) { return b.Head.Get(i), b.Tail.Get(i) }

// AppendRow adds one association.
func (b *BAT) AppendRow(h, t Value) {
	b.Head = b.Head.Append(h)
	b.Tail = b.Tail.Append(t)
}

// SplitAt cuts the BAT at row i into two BATs sharing storage — the §2
// observation that contiguous storage lets a bat "be conveniently split
// at any point".
func (b *BAT) SplitAt(i int) (*BAT, *BAT) {
	if i < 0 || i > b.Len() {
		panic(fmt.Sprintf("bat: split at %d out of %d", i, b.Len()))
	}
	left := New(b.Head.Slice(0, i), b.Tail.Slice(0, i))
	right := New(b.Head.Slice(i, b.Len()), b.Tail.Slice(i, b.Len()))
	return left, right
}

// Slice returns rows [i, j) as a BAT sharing storage.
func (b *BAT) Slice(i, j int) *BAT {
	return New(b.Head.Slice(i, j), b.Tail.Slice(i, j))
}

// Clone deep-copies the BAT into fresh storage.
func (b *BAT) Clone() *BAT {
	h := b.Head.Empty()
	t := b.Tail.Empty()
	for i := 0; i < b.Len(); i++ {
		h = h.Append(b.Head.Get(i))
		t = t.Append(b.Tail.Get(i))
	}
	return New(h, t)
}

// String renders up to 16 rows, MonetDB tabular style.
func (b *BAT) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "#bat[:%v,:%v] %d rows\n", b.HeadKind(), b.TailKind(), b.Len())
	n := b.Len()
	const maxRows = 16
	shown := n
	if shown > maxRows {
		shown = maxRows
	}
	for i := 0; i < shown; i++ {
		h, t := b.Row(i)
		fmt.Fprintf(&sb, "[ %s, %s ]\n", h, t)
	}
	if n > shown {
		fmt.Fprintf(&sb, "... %d more\n", n-shown)
	}
	return sb.String()
}
