package bat_test

import (
	"math/rand"
	"testing"

	"selforg/internal/bat"
	"selforg/internal/compress"
)

// benchStripeTail builds an ra-like dbl tail clustered into a few narrow
// stripes — the SkyServer shape where compressed tails pay off.
func benchStripeTail(n int) []float64 {
	rng := rand.New(rand.NewSource(2))
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = 30*float64(rng.Intn(8)) + float64(rng.Intn(1024))/256
	}
	return vals
}

// BenchmarkRangeSelectCompressedTail measures algebra.select over the
// same BAT with a plain versus compressed tail: the compressed encodings
// answer through the RangeSpanner span fast path.
func BenchmarkRangeSelectCompressedTail(b *testing.B) {
	const n = 1 << 18
	tail := benchStripeTail(n)
	lo, hi := bat.Dbl(60), bat.Dbl(63)

	plain := bat.NewDense(bat.NewDbls(tail))
	b.Run("plain", func(b *testing.B) {
		b.SetBytes(8 * n)
		for i := 0; i < b.N; i++ {
			bat.RangeSelect(plain, lo, hi, true, true)
		}
	})
	for _, e := range []compress.Encoding{compress.RLE, compress.Dict, compress.FOR} {
		cb := bat.NewDense(compress.EncodeDbls(tail, e, 4))
		b.Run(e.String(), func(b *testing.B) {
			b.SetBytes(8 * n)
			for i := 0; i < b.N; i++ {
				bat.RangeSelect(cb, lo, hi, true, true)
			}
		})
	}
}
