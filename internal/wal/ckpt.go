package wal

// Checkpoint files. A checkpoint captures one shard's full logical
// content (every value, multiplicity preserved) plus the last commit
// seq folded into it. Recovery loads the checkpoint, rebuilds the
// shard's base from the values, and replays only WAL batches with
// seq > the checkpoint's — so the crash window between writing a
// checkpoint and rotating the log can never double-apply a batch.
//
//	magic "SOCKPT01" | seq u64 | count u64 | value i64 * count | crc u32
//
// The file is written to a temp name, fsynced, then renamed over the
// target: readers see the old checkpoint or the new one, never a torn
// mix. The trailing CRC (Castagnoli, over everything before it) guards
// against a torn rename on filesystems without atomic-rename semantics
// and against bit rot; a corrupt checkpoint fails recovery loudly
// rather than resurrecting half a shard.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"selforg/internal/domain"
)

var ckptMagic = [8]byte{'S', 'O', 'C', 'K', 'P', 'T', '0', '1'}

// WriteCheckpoint atomically writes a checkpoint file at path.
func WriteCheckpoint(path string, seq uint64, values []domain.Value) error {
	buf := make([]byte, 0, 24+8*len(values)+4)
	buf = append(buf, ckptMagic[:]...)
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(values)))
	for _, v := range values {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))

	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	// Best-effort directory sync so the rename itself is durable.
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// ReadCheckpoint loads and validates a checkpoint file. A missing file
// is not an error: ok reports whether a checkpoint existed. A present
// but corrupt file returns ErrCorrupt — recovery must fail loudly, not
// silently start empty.
func ReadCheckpoint(path string) (seq uint64, values []domain.Value, ok bool, err error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, nil, false, nil
	}
	if err != nil {
		return 0, nil, false, err
	}
	if len(data) < 28 || [8]byte(data[:8]) != ckptMagic {
		return 0, nil, false, fmt.Errorf("%w: %s: bad header", ErrCorrupt, path)
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(tail) {
		return 0, nil, false, fmt.Errorf("%w: %s: crc mismatch", ErrCorrupt, path)
	}
	seq = binary.LittleEndian.Uint64(data[8:])
	count := binary.LittleEndian.Uint64(data[16:])
	if uint64(len(body)-24) != count*8 {
		return 0, nil, false, fmt.Errorf("%w: %s: count disagrees with length", ErrCorrupt, path)
	}
	values = make([]domain.Value, count)
	for i := range values {
		values[i] = domain.Value(binary.LittleEndian.Uint64(data[24+8*i:]))
	}
	return seq, values, true, nil
}
