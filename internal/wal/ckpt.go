package wal

// Checkpoint files. A checkpoint captures one shard's full logical
// content (every value, multiplicity preserved) plus the last commit
// seq folded into it. Recovery loads the checkpoint, rebuilds the
// shard's base from the values, and replays only WAL batches with
// seq > the checkpoint's — so the crash window between writing a
// checkpoint and rotating the log can never double-apply a batch.
//
//	magic "SOCKPT01" | seq u64 | count u64 | value i64 * count | crc u32
//
// The file is written to a temp name, fsynced, then renamed over the
// target: readers see the old checkpoint or the new one, never a torn
// mix. The trailing CRC (Castagnoli, over everything before it) guards
// against a torn rename on filesystems without atomic-rename semantics
// and against bit rot; a corrupt checkpoint fails recovery loudly
// rather than resurrecting half a shard.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"selforg/internal/domain"
)

var ckptMagic = [8]byte{'S', 'O', 'C', 'K', 'P', 'T', '0', '1'}

// writeFileAtomic writes buf to path via a temp file: write, fsync,
// close, rename over the target, then best-effort fsync of the
// directory so the rename itself is durable. Readers see the old file
// or the new one, never a torn mix.
func writeFileAtomic(path string, buf []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// WriteCheckpoint atomically writes a checkpoint file at path.
func WriteCheckpoint(path string, seq uint64, values []domain.Value) error {
	buf := make([]byte, 0, 24+8*len(values)+4)
	buf = append(buf, ckptMagic[:]...)
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(values)))
	for _, v := range values {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
	return writeFileAtomic(path, buf)
}

// ReadCheckpoint loads and validates a checkpoint file. A missing file
// is not an error: ok reports whether a checkpoint existed. A present
// but corrupt file returns ErrCorrupt — recovery must fail loudly, not
// silently start empty.
func ReadCheckpoint(path string) (seq uint64, values []domain.Value, ok bool, err error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, nil, false, nil
	}
	if err != nil {
		return 0, nil, false, err
	}
	if len(data) < 28 || [8]byte(data[:8]) != ckptMagic {
		return 0, nil, false, fmt.Errorf("%w: %s: bad header", ErrCorrupt, path)
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(tail) {
		return 0, nil, false, fmt.Errorf("%w: %s: crc mismatch", ErrCorrupt, path)
	}
	seq = binary.LittleEndian.Uint64(data[8:])
	count := binary.LittleEndian.Uint64(data[16:])
	if uint64(len(body)-24) != count*8 {
		return 0, nil, false, fmt.Errorf("%w: %s: count disagrees with length", ErrCorrupt, path)
	}
	values = make([]domain.Value, count)
	for i := range values {
		values[i] = domain.Value(binary.LittleEndian.Uint64(data[24+8*i:]))
	}
	return seq, values, true, nil
}

// Checkpoint manifest. A checkpoint spans every shard, but the
// per-shard files cannot be written as one atomic unit — a crash
// partway would leave some shards checkpointed at the new seq and
// others at an old one, and a cross-shard update logged only in one
// shard's log could fall into the gap and be lost. The manifest closes
// that hole: the shard files are written under a fresh generation
// number first, then this single file — naming the generation and the
// one seq every shard's checkpoint carries — is atomically renamed
// into place. Until the rename, the previous generation (or none) is
// fully active; after it, every shard is checkpointed at the SAME seq.
//
//	magic "SOCKMF01" | gen u64 | seq u64 | crc u32
var manifestMagic = [8]byte{'S', 'O', 'C', 'K', 'M', 'F', '0', '1'}

// WriteManifest atomically commits checkpoint generation gen at seq.
func WriteManifest(path string, gen, seq uint64) error {
	buf := make([]byte, 0, 28)
	buf = append(buf, manifestMagic[:]...)
	buf = binary.LittleEndian.AppendUint64(buf, gen)
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
	return writeFileAtomic(path, buf)
}

// ReadManifest loads the checkpoint manifest. A missing file is not an
// error (ok=false: no checkpoint generation is committed); a present
// but corrupt one returns ErrCorrupt — recovery must fail loudly, not
// silently fall back to an older state.
func ReadManifest(path string) (gen, seq uint64, ok bool, err error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, 0, false, nil
	}
	if err != nil {
		return 0, 0, false, err
	}
	if len(data) != 28 || [8]byte(data[:8]) != manifestMagic {
		return 0, 0, false, fmt.Errorf("%w: %s: bad manifest header", ErrCorrupt, path)
	}
	if crc32.Checksum(data[:24], castagnoli) != binary.LittleEndian.Uint32(data[24:]) {
		return 0, 0, false, fmt.Errorf("%w: %s: manifest crc mismatch", ErrCorrupt, path)
	}
	return binary.LittleEndian.Uint64(data[8:]), binary.LittleEndian.Uint64(data[16:]), true, nil
}
