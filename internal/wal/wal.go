// Package wal implements the per-shard write-ahead log behind the
// durability subsystem: CRC-framed batches of write operations appended
// and fsynced by the group committer, replayed onto the last checkpoint
// after a crash.
//
// # Frame format
//
//	+----------+----------+===========================+
//	| len u32  | crc u32  | payload (len bytes)       |
//	+----------+----------+===========================+
//
//	payload = seq u64 | count u32 | record*count
//	record  = kind u8 | value i64            (insert, delete)
//	        | kind u8 | old i64 | new i64    (update)
//
// All integers are little-endian. len covers the payload only; crc is
// CRC-32 (Castagnoli) of the payload. seq is the column-wide commit
// sequence number the group committer assigns — every shard's log
// carries the shard's slice of batch seq, so recovery can re-interleave
// the per-shard logs into global commit order.
//
// # Torn tails
//
// A crash mid-append leaves a torn frame: short header, short payload,
// or a payload whose CRC does not match. Decode scans frames
// sequentially and stops at the first invalid one, reporting the length
// of the valid prefix; Open truncates the file there. Everything before
// the torn frame was fsynced by an earlier group commit (the committer
// acks only after fsync), so truncation never loses an acknowledged
// write.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"selforg/internal/delta"
	"selforg/internal/domain"
)

// castagnoli is the CRC-32C table (hardware-accelerated on most CPUs).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const (
	frameHeader = 8  // len u32 + crc u32
	batchHeader = 12 // seq u64 + count u32
	// maxPayload bounds a single frame, protecting the decoder from
	// allocating on a corrupt length field. 1<<26 (64 MiB) is far above
	// any real group-commit batch.
	maxPayload = 1 << 26
)

// record kind codes. Distinct from delta.OpKind on purpose: the wire
// format is persistent, the in-memory enum is not.
const (
	recInsert byte = 1
	recDelete byte = 2
	recUpdate byte = 3
)

// Batch is one decoded group-commit frame.
type Batch struct {
	Seq uint64
	Ops []delta.Op
}

// AppendFrame encodes one batch as a frame and appends it to buf,
// returning the extended slice.
func AppendFrame(buf []byte, seq uint64, ops []delta.Op) []byte {
	// Payload size: batch header plus per-record width.
	n := batchHeader
	for _, op := range ops {
		if op.Kind == delta.OpUpdate {
			n += 17
		} else {
			n += 9
		}
	}
	start := len(buf)
	buf = append(buf, make([]byte, frameHeader+n)...)
	payload := buf[start+frameHeader:]
	binary.LittleEndian.PutUint64(payload[0:], seq)
	binary.LittleEndian.PutUint32(payload[8:], uint32(len(ops)))
	w := batchHeader
	for _, op := range ops {
		switch op.Kind {
		case delta.OpInsert:
			payload[w] = recInsert
			binary.LittleEndian.PutUint64(payload[w+1:], uint64(op.V))
			w += 9
		case delta.OpDelete:
			payload[w] = recDelete
			binary.LittleEndian.PutUint64(payload[w+1:], uint64(op.V))
			w += 9
		case delta.OpUpdate:
			payload[w] = recUpdate
			binary.LittleEndian.PutUint64(payload[w+1:], uint64(op.V))
			binary.LittleEndian.PutUint64(payload[w+9:], uint64(op.New))
			w += 17
		default:
			panic(fmt.Sprintf("wal: unknown op kind %d", op.Kind))
		}
	}
	binary.LittleEndian.PutUint32(buf[start:], uint32(n))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(payload, castagnoli))
	return buf
}

// Decode scans data frame by frame, calling fn for every valid batch in
// order, and returns the byte length of the valid prefix. It stops —
// without error — at the first torn or corrupt frame (short header,
// short or oversized payload, CRC mismatch, malformed records): that is
// the crash boundary, everything after it is discarded. An error from
// fn aborts the scan and is returned with the offset of the frame that
// produced it.
func Decode(data []byte, fn func(Batch) error) (int64, error) {
	off := 0
	for {
		if len(data)-off < frameHeader {
			return int64(off), nil
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if n < batchHeader || n > maxPayload || len(data)-off-frameHeader < n {
			return int64(off), nil
		}
		payload := data[off+frameHeader : off+frameHeader+n]
		if crc32.Checksum(payload, castagnoli) != crc {
			return int64(off), nil
		}
		b, ok := decodePayload(payload)
		if !ok {
			return int64(off), nil
		}
		if fn != nil {
			if err := fn(b); err != nil {
				return int64(off), err
			}
		}
		off += frameHeader + n
	}
}

// decodePayload parses one CRC-verified payload into a Batch. A
// malformed record set (count disagreeing with the byte length, unknown
// kind) reports !ok — the frame is treated as corrupt even though the
// CRC matched, so a buggy writer can never crash the decoder.
func decodePayload(p []byte) (Batch, bool) {
	seq := binary.LittleEndian.Uint64(p[0:])
	count := int(binary.LittleEndian.Uint32(p[8:]))
	// Each record is ≥ 9 bytes, so a count the remaining bytes cannot
	// hold is malformed — rejecting it here also bounds the slice
	// pre-allocation below on CRC-valid but corrupt frames.
	if count < 0 || count > (len(p)-batchHeader)/9 {
		return Batch{}, false
	}
	ops := make([]delta.Op, 0, count)
	w := batchHeader
	for i := 0; i < count; i++ {
		if w >= len(p) {
			return Batch{}, false
		}
		switch p[w] {
		case recInsert, recDelete:
			if len(p)-w < 9 {
				return Batch{}, false
			}
			kind := delta.OpInsert
			if p[w] == recDelete {
				kind = delta.OpDelete
			}
			ops = append(ops, delta.Op{
				Kind: kind,
				V:    domain.Value(binary.LittleEndian.Uint64(p[w+1:])),
			})
			w += 9
		case recUpdate:
			if len(p)-w < 17 {
				return Batch{}, false
			}
			ops = append(ops, delta.Op{
				Kind: delta.OpUpdate,
				V:    domain.Value(binary.LittleEndian.Uint64(p[w+1:])),
				New:  domain.Value(binary.LittleEndian.Uint64(p[w+9:])),
			})
			w += 17
		default:
			return Batch{}, false
		}
	}
	if w != len(p) {
		return Batch{}, false
	}
	return Batch{Seq: seq, Ops: ops}, true
}

// Log is one shard's append-only write-ahead log. The group committer is
// its only writer; it is not safe for concurrent use.
type Log struct {
	f    *os.File
	path string
	size int64
}

// Open opens (creating if absent) the log at path, scans it, truncates
// any torn tail, and returns the log positioned for appends plus every
// valid batch found — the replay input for recovery. Duplicate or
// out-of-order seqs are returned as-is; the recovery layer skips
// anything at or below the checkpoint's seq.
func Open(path string) (*Log, []Batch, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	var batches []Batch
	valid, err := Decode(data, func(b Batch) error {
		batches = append(batches, b)
		return nil
	})
	if err != nil {
		f.Close()
		return nil, nil, err // unreachable: the scan fn never fails
	}
	if valid < int64(len(data)) {
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: truncating torn tail of %s: %w", path, err)
		}
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &Log{f: f, path: path, size: valid}, batches, nil
}

// AppendBatch appends one frame. The data is NOT durable until Sync
// returns — the group committer appends every shard's frame for a
// batch, then syncs the touched logs, then acks.
func (l *Log) AppendBatch(seq uint64, ops []delta.Op) (int64, error) {
	buf := AppendFrame(nil, seq, ops)
	if _, err := l.f.Write(buf); err != nil {
		return 0, err
	}
	l.size += int64(len(buf))
	return int64(len(buf)), nil
}

// Sync flushes appended frames to stable storage.
func (l *Log) Sync() error { return l.f.Sync() }

// Size returns the current log length in bytes.
func (l *Log) Size() int64 { return l.size }

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// Rotate discards the log's content — called after a checkpoint has made
// everything in it redundant. The truncation is itself synced so a
// crash right after cannot resurrect pre-checkpoint frames (they would
// be skipped by seq anyway; this just keeps the file honest).
func (l *Log) Rotate() error { return l.TruncateTo(0) }

// TruncateTo rolls the log back to a prior length — the committer's
// undo for a batch whose append or sync failed partway: the frames
// already written for the failed batch are cut off so a later recovery
// cannot replay them as if they had committed. The truncation is
// synced before it is trusted.
func (l *Log) TruncateTo(size int64) error {
	if err := l.f.Truncate(size); err != nil {
		return err
	}
	if _, err := l.f.Seek(size, io.SeekStart); err != nil {
		return err
	}
	l.size = size
	return l.f.Sync()
}

// Close closes the underlying file.
func (l *Log) Close() error {
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}

// ErrCorrupt reports a structurally invalid checkpoint file.
var ErrCorrupt = errors.New("wal: corrupt checkpoint")
