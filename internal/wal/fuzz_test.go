package wal

import (
	"bytes"
	"reflect"
	"testing"

	"selforg/internal/delta"
)

// FuzzWALReplay drives the frame decoder over arbitrary byte streams —
// truncated, bit-flipped, duplicated, concatenated frames and pure
// garbage — and checks the replay invariants the recovery path depends
// on:
//
//  1. Decode never panics and never reads past the buffer.
//  2. The valid prefix is well-formed: decoding data[:valid] yields the
//     same batches and the same valid length (idempotent truncation —
//     what Open leaves on disk after a torn-tail cut must replay
//     identically on the next crash).
//  3. Re-encoding the decoded batches reproduces data[:valid] byte for
//     byte (the codec is canonical).
func FuzzWALReplay(f *testing.F) {
	// Seeds: empty, a single batch, several batches, a torn tail, a
	// duplicated frame, and high-entropy garbage.
	one := AppendFrame(nil, 1, []delta.Op{{Kind: delta.OpInsert, V: 7}})
	mixed := AppendFrame(nil, 3, []delta.Op{
		{Kind: delta.OpInsert, V: 1},
		{Kind: delta.OpDelete, V: 2},
		{Kind: delta.OpUpdate, V: 3, New: 4},
	})
	multi := AppendFrame(append([]byte(nil), one...), 2, []delta.Op{{Kind: delta.OpDelete, V: -9}})
	f.Add([]byte{})
	f.Add(one)
	f.Add(mixed)
	f.Add(multi)
	f.Add(multi[:len(multi)-3])                        // torn tail
	f.Add(append(append([]byte(nil), one...), one...)) // duplicated frame
	f.Add([]byte("\x00\x00\x00\x00\x00\x00\x00\x00garbage"))
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 1, 2, 3, 4})

	f.Fuzz(func(t *testing.T, data []byte) {
		var first []Batch
		valid, err := Decode(data, func(b Batch) error {
			first = append(first, b)
			return nil
		})
		if err != nil {
			t.Fatalf("decode with non-failing fn returned error: %v", err)
		}
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid prefix %d out of [0, %d]", valid, len(data))
		}
		var second []Batch
		valid2, err := Decode(data[:valid], func(b Batch) error {
			second = append(second, b)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if valid2 != valid {
			t.Fatalf("truncated prefix re-decodes to %d, want %d", valid2, valid)
		}
		if !reflect.DeepEqual(first, second) {
			t.Fatalf("replay diverged: %+v vs %+v", first, second)
		}
		var re []byte
		for _, b := range first {
			re = AppendFrame(re, b.Seq, b.Ops)
		}
		if !bytes.Equal(re, data[:valid]) {
			t.Fatalf("re-encode of %d batches is not canonical", len(first))
		}
	})
}
