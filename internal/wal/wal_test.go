package wal

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"selforg/internal/delta"
	"selforg/internal/domain"
)

func sampleOps() []delta.Op {
	return []delta.Op{
		{Kind: delta.OpInsert, V: 42},
		{Kind: delta.OpDelete, V: -7},
		{Kind: delta.OpUpdate, V: 1 << 40, New: -(1 << 40)},
	}
}

// TestLogRoundTrip: append batches, close, reopen — every batch comes
// back byte-exact, and the reopened log keeps appending after them.
func TestLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard-0000.wal")
	l, got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("fresh log decoded %d batches", len(got))
	}
	for seq := uint64(1); seq <= 3; seq++ {
		if _, err := l.AppendBatch(seq, sampleOps()); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(got) != 3 {
		t.Fatalf("reopened log decoded %d batches, want 3", len(got))
	}
	for i, b := range got {
		if b.Seq != uint64(i+1) || !reflect.DeepEqual(b.Ops, sampleOps()) {
			t.Fatalf("batch %d mismatch: %+v", i, b)
		}
	}
	if _, err := l2.AppendBatch(4, sampleOps()); err != nil {
		t.Fatal(err)
	}
	if err := l2.Sync(); err != nil {
		t.Fatal(err)
	}
	_, got, err = Open(path) // concurrent second open is fine for reading in tests
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("after reopen+append: %d batches, want 4", len(got))
	}
}

// TestTornTailTruncated: a partial final frame — any cut point — is
// discarded on open, and the file is physically truncated back to the
// valid prefix so new appends never interleave with garbage.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	full := AppendFrame(nil, 1, sampleOps())
	full = AppendFrame(full, 2, sampleOps())
	frame1 := len(AppendFrame(nil, 1, sampleOps()))
	for cut := frame1 + 1; cut < len(full); cut += 7 {
		path := filepath.Join(dir, "torn.wal")
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l, got, err := Open(path)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(got) != 1 || got[0].Seq != 1 {
			t.Fatalf("cut %d: decoded %d batches", cut, len(got))
		}
		if l.Size() != int64(frame1) {
			t.Fatalf("cut %d: size %d, want %d", cut, l.Size(), frame1)
		}
		if fi, _ := os.Stat(path); fi.Size() != int64(frame1) {
			t.Fatalf("cut %d: file not truncated (%d bytes)", cut, fi.Size())
		}
		l.Close()
	}
}

// TestBitFlipRejected: flipping any single byte of a frame invalidates
// exactly the frames at or after it.
func TestBitFlipRejected(t *testing.T) {
	full := AppendFrame(nil, 7, sampleOps())
	for i := range full {
		mut := append([]byte(nil), full...)
		mut[i] ^= 0x40
		n := 0
		valid, err := Decode(mut, func(Batch) error { n++; return nil })
		if err != nil {
			t.Fatal(err)
		}
		// A flipped byte may still yield a structurally valid frame only
		// if it produced a matching CRC — astronomically unlikely for a
		// single flip; assert the frame is dropped.
		if n != 0 || valid != 0 {
			t.Fatalf("flip at %d: decoded %d batches, valid %d", i, n, valid)
		}
	}
}

// TestRotate empties the log for post-checkpoint reuse.
func TestRotate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.wal")
	l, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.AppendBatch(1, sampleOps()); err != nil {
		t.Fatal(err)
	}
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if l.Size() != 0 {
		t.Fatalf("size after rotate = %d", l.Size())
	}
	if _, err := l.AppendBatch(2, sampleOps()); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	_, got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Seq != 2 {
		t.Fatalf("post-rotate decode: %+v", got)
	}
}

// TestTruncateTo rolls the log back to a prior length — the rollback
// for a failed group commit: frames appended after the cut vanish,
// frames before it survive, and the log keeps appending at the cut.
func TestTruncateTo(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rb.wal")
	l, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.AppendBatch(1, sampleOps()); err != nil {
		t.Fatal(err)
	}
	cut := l.Size()
	if _, err := l.AppendBatch(2, sampleOps()); err != nil {
		t.Fatal(err)
	}
	if err := l.TruncateTo(cut); err != nil {
		t.Fatal(err)
	}
	if l.Size() != cut {
		t.Fatalf("size after rollback = %d, want %d", l.Size(), cut)
	}
	if _, err := l.AppendBatch(3, sampleOps()); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	_, got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Seq != 1 || got[1].Seq != 3 {
		t.Fatalf("post-rollback decode: %+v", got)
	}
}

// TestDecodeRejectsOversizedCount: a CRC-valid frame whose count field
// claims more records than the payload could hold is rejected before
// the decoder sizes any allocation from it.
func TestDecodeRejectsOversizedCount(t *testing.T) {
	frame := AppendFrame(nil, 1, sampleOps())
	payload := frame[frameHeader:]
	// Patch count far beyond what the payload bytes can carry and
	// re-seal the CRC so only the malformed-count check can reject it.
	binary.LittleEndian.PutUint32(payload[8:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, castagnoli))
	n := 0
	valid, err := Decode(frame, func(Batch) error { n++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 || valid != 0 {
		t.Fatalf("oversized count accepted: %d batches, valid %d", n, valid)
	}
}

// TestManifestRoundTrip: write → read is exact; missing is a clean "no
// checkpoint generation"; corruption is loud.
func TestManifestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "CHECKPOINT")
	if err := WriteManifest(path, 3, 17); err != nil {
		t.Fatal(err)
	}
	gen, seq, ok, err := ReadManifest(path)
	if err != nil || !ok || gen != 3 || seq != 17 {
		t.Fatalf("round trip: gen=%d seq=%d ok=%v err=%v", gen, seq, ok, err)
	}

	_, _, ok, err = ReadManifest(filepath.Join(t.TempDir(), "absent"))
	if err != nil || ok {
		t.Fatalf("absent: ok=%v err=%v", ok, err)
	}

	data, _ := os.ReadFile(path)
	data[10] ^= 1
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ReadManifest(path); err == nil {
		t.Fatal("corrupt manifest read silently")
	}
}

// TestCheckpointRoundTrip: write → read is exact; missing file is a
// clean "no checkpoint"; corruption is loud.
func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard-0000.ckpt")
	vals := []domain.Value{5, -3, 5, 1 << 50}
	if err := WriteCheckpoint(path, 99, vals); err != nil {
		t.Fatal(err)
	}
	seq, got, ok, err := ReadCheckpoint(path)
	if err != nil || !ok {
		t.Fatalf("read: ok=%v err=%v", ok, err)
	}
	if seq != 99 || !reflect.DeepEqual(got, vals) {
		t.Fatalf("round trip: seq=%d vals=%v", seq, got)
	}

	_, _, ok, err = ReadCheckpoint(filepath.Join(t.TempDir(), "absent.ckpt"))
	if err != nil || ok {
		t.Fatalf("absent: ok=%v err=%v", ok, err)
	}

	data, _ := os.ReadFile(path)
	data[len(data)/2] ^= 1
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ReadCheckpoint(path); err == nil {
		t.Fatal("corrupt checkpoint read silently")
	}

	// Empty-content checkpoint (all rows deleted) round-trips too.
	if err := WriteCheckpoint(path, 7, nil); err != nil {
		t.Fatal(err)
	}
	seq, got, ok, err = ReadCheckpoint(path)
	if err != nil || !ok || seq != 7 || len(got) != 0 {
		t.Fatalf("empty checkpoint: seq=%d vals=%v ok=%v err=%v", seq, got, ok, err)
	}
}
