package result

import (
	"reflect"
	"testing"

	"selforg/internal/domain"
)

func TestEmptyRope(t *testing.T) {
	var r Rope
	if r.Len() != 0 || r.NumChunks() != 0 {
		t.Fatalf("zero rope not empty: len %d chunks %d", r.Len(), r.NumChunks())
	}
	if got := r.Flatten(); got != nil {
		t.Fatalf("empty Flatten = %v, want nil", got)
	}
	r.Chunks(func([]domain.Value) bool {
		t.Fatal("empty rope yielded a chunk")
		return true
	})
	var nilRope *Rope
	if nilRope.Len() != 0 || nilRope.NumChunks() != 0 || nilRope.Flatten() != nil {
		t.Fatal("nil rope must behave as empty")
	}
}

func TestEmptyChunksDropped(t *testing.T) {
	r := New()
	r.AppendOwned(nil)
	r.AppendOwned([]domain.Value{})
	r.AppendBorrowed(nil)
	if r.NumChunks() != 0 || r.Len() != 0 {
		t.Fatalf("empty chunks retained: %d chunks, len %d", r.NumChunks(), r.Len())
	}
	r.AppendOwned([]domain.Value{1, 2})
	r.AppendBorrowed([]domain.Value{})
	r.AppendOwned([]domain.Value{3})
	if r.NumChunks() != 2 || r.Len() != 3 {
		t.Fatalf("got %d chunks, len %d, want 2 chunks len 3", r.NumChunks(), r.Len())
	}
}

func TestSingleOwnedChunkFlattenIsZeroCopy(t *testing.T) {
	vals := []domain.Value{4, 5, 6}
	r := FromOwned(vals)
	flat := r.Flatten()
	if &flat[0] != &vals[0] {
		t.Fatal("single owned chunk should flatten without copying")
	}
}

func TestSingleBorrowedChunkFlattenCopies(t *testing.T) {
	vals := []domain.Value{7, 8, 9}
	r := New()
	r.AppendBorrowed(vals)
	flat := r.Flatten()
	if !reflect.DeepEqual(flat, vals) {
		t.Fatalf("Flatten = %v, want %v", flat, vals)
	}
	if &flat[0] == &vals[0] {
		t.Fatal("borrowed chunk must be copied on Flatten")
	}
	flat[0] = 99
	if vals[0] != 7 {
		t.Fatal("mutating the flattened result corrupted borrowed storage")
	}
}

func TestFlattenIdempotent(t *testing.T) {
	r := New()
	r.AppendOwned([]domain.Value{1, 2})
	r.AppendBorrowed([]domain.Value{3})
	first := r.Flatten()
	second := r.Flatten()
	if &first[0] != &second[0] {
		t.Fatal("repeated Flatten must return the cached slice")
	}
	if !reflect.DeepEqual(first, []domain.Value{1, 2, 3}) {
		t.Fatalf("Flatten = %v", first)
	}
}

func TestIteratorMatchesFlatten(t *testing.T) {
	r := New()
	r.AppendOwned([]domain.Value{10, 11})
	r.AppendBorrowed([]domain.Value{12, 13, 14})
	r.AppendOwned([]domain.Value{15})
	var viaIter []domain.Value
	r.Chunks(func(vals []domain.Value) bool {
		viaIter = append(viaIter, vals...)
		return true
	})
	if !reflect.DeepEqual(viaIter, r.Flatten()) {
		t.Fatalf("iterator %v != Flatten %v", viaIter, r.Flatten())
	}
	// Early termination stops the walk.
	n := 0
	r.Chunks(func([]domain.Value) bool { n++; return false })
	if n != 1 {
		t.Fatalf("yield false should stop iteration, saw %d chunks", n)
	}
}

func TestAtWalksChunks(t *testing.T) {
	r := New()
	r.AppendOwned([]domain.Value{20, 21})
	r.AppendBorrowed([]domain.Value{22})
	r.AppendOwned([]domain.Value{23, 24})
	want := []domain.Value{20, 21, 22, 23, 24}
	for i, w := range want {
		if got := r.At(i); got != w {
			t.Fatalf("At(%d) = %d, want %d", i, got, w)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("At out of range must panic")
		}
	}()
	r.At(5)
}

func TestSplice(t *testing.T) {
	a := New()
	a.AppendOwned([]domain.Value{1})
	a.AppendBorrowed([]domain.Value{2, 3})
	b := New()
	b.AppendOwned([]domain.Value{4, 5})
	a.Splice(b)
	a.Splice(nil)
	a.Splice(New())
	if a.Len() != 5 || a.NumChunks() != 3 {
		t.Fatalf("spliced rope: len %d chunks %d", a.Len(), a.NumChunks())
	}
	if !reflect.DeepEqual(a.Flatten(), []domain.Value{1, 2, 3, 4, 5}) {
		t.Fatalf("spliced Flatten = %v", a.Flatten())
	}
}

func TestAppendInvalidatesFlattenCache(t *testing.T) {
	r := FromOwned([]domain.Value{1})
	_ = r.Flatten()
	r.AppendOwned([]domain.Value{2})
	if !reflect.DeepEqual(r.Flatten(), []domain.Value{1, 2}) {
		t.Fatalf("Flatten after append = %v", r.Flatten())
	}
}
