// Package result provides the rope (chunked) result representation of
// the read path: an ordered list of value chunks assembled with O(1)
// append-chunk and spliced across layers — per-segment scan pieces in
// internal/core, per-shard sub-results in internal/shard, streamed
// chunks in internal/server — instead of re-concatenating flat slices
// at every layer.
//
// # Ownership and borrowing
//
// Every chunk is either owned or borrowed:
//
//   - An owned chunk is freshly allocated by its producer and referenced
//     by nothing else. The rope may hand it out directly (Flatten of a
//     single-chunk rope) and consumers may mutate it.
//   - A borrowed chunk aliases storage the rope does not own — typically
//     a published segment's immutable payload. Borrowing makes covered
//     scans zero-copy, but the aliased storage must never be written
//     through the rope: Flatten always copies borrowed content before
//     returning a mutable slice.
//
// Chunks are immutable once appended; Flatten caches its result, so
// flattening is idempotent and pays the copy at most once.
package result

import "selforg/internal/domain"

// chunk is one contiguous run of result values.
type chunk struct {
	vals     []domain.Value
	borrowed bool
}

// Rope is an ordered sequence of value chunks. The zero value is an
// empty rope ready for use. A Rope is not safe for concurrent mutation;
// the read path assembles one rope per query on the querying goroutine.
type Rope struct {
	chunks []chunk
	length int
	flat   []domain.Value // cached Flatten result
	flatOK bool
}

// New returns an empty rope.
func New() *Rope { return &Rope{} }

// FromOwned returns a rope holding vals as a single owned chunk. The
// rope takes ownership: the caller must not retain vals. A nil or empty
// slice yields an empty rope.
func FromOwned(vals []domain.Value) *Rope {
	r := &Rope{}
	r.AppendOwned(vals)
	return r
}

// AppendOwned appends vals as an owned chunk: freshly allocated storage
// the rope may hand out for mutation. Empty chunks are dropped.
func (r *Rope) AppendOwned(vals []domain.Value) {
	r.appendChunk(vals, false)
}

// AppendBorrowed appends vals as a borrowed chunk: storage owned
// elsewhere (a published segment's payload) that must be copied before
// any consumer may write through it. Empty chunks are dropped.
func (r *Rope) AppendBorrowed(vals []domain.Value) {
	r.appendChunk(vals, true)
}

func (r *Rope) appendChunk(vals []domain.Value, borrowed bool) {
	if len(vals) == 0 {
		return
	}
	r.chunks = append(r.chunks, chunk{vals: vals, borrowed: borrowed})
	r.length += len(vals)
	r.flat, r.flatOK = nil, false
}

// Splice appends every chunk of other to r in order — the O(chunks)
// concatenation the shard router and parallel merges use in place of
// copying values. Ownership flags carry over; other remains valid but
// must not be mutated afterwards (its chunks are shared).
func (r *Rope) Splice(other *Rope) {
	if other == nil || other.length == 0 {
		return
	}
	r.chunks = append(r.chunks, other.chunks...)
	r.length += other.length
	r.flat, r.flatOK = nil, false
}

// Len returns the total number of values.
func (r *Rope) Len() int {
	if r == nil {
		return 0
	}
	return r.length
}

// NumChunks returns the number of chunks (diagnostics, tests).
func (r *Rope) NumChunks() int {
	if r == nil {
		return 0
	}
	return len(r.chunks)
}

// At returns the i-th value in rope order. It walks the chunk list, so
// random access is O(chunks); iterate with Chunks for sequential reads.
func (r *Rope) At(i int) domain.Value {
	if i < 0 || i >= r.length {
		panic("result: rope index out of range")
	}
	for _, c := range r.chunks {
		if i < len(c.vals) {
			return c.vals[i]
		}
		i -= len(c.vals)
	}
	panic("result: corrupt rope length")
}

// Chunks iterates the chunks in order, calling yield with each chunk's
// values until it returns false. The yielded slices must be treated as
// read-only: they may alias borrowed storage.
func (r *Rope) Chunks(yield func(vals []domain.Value) bool) {
	if r == nil {
		return
	}
	for _, c := range r.chunks {
		if !yield(c.vals) {
			return
		}
	}
}

// Flatten returns all values as one flat slice, copying at most once:
//
//   - an empty rope returns nil;
//   - a rope holding a single owned chunk returns that chunk directly
//     (zero copy — the producer allocated it fresh);
//   - everything else (multiple chunks, or a single borrowed chunk)
//     copies into one exact-size slice.
//
// The result is always mutable by the caller: borrowed storage is never
// handed out. The result is cached, so repeated calls are O(1) and
// return the same slice.
func (r *Rope) Flatten() []domain.Value {
	if r == nil || r.length == 0 {
		return nil
	}
	if r.flatOK {
		return r.flat
	}
	if len(r.chunks) == 1 && !r.chunks[0].borrowed {
		r.flat, r.flatOK = r.chunks[0].vals, true
		return r.flat
	}
	out := make([]domain.Value, 0, r.length)
	for _, c := range r.chunks {
		out = append(out, c.vals...)
	}
	r.flat, r.flatOK = out, true
	return out
}
