package server

import (
	"encoding/json"
	"strconv"

	"selforg"
)

// Rows is the wire form of a single-column result set. On the serving
// side it wraps the facade's chunked result (selforg.Rows) and marshals
// by streaming digits straight out of the rope's chunks — the flat
// []int64 is never materialized, so a large SELECT response costs one
// JSON buffer instead of a row slice plus per-element reflection. On
// the client side (and in tests) it unmarshals back into a flat slice;
// the JSON bytes are identical to the []int64 encoding it replaces.
type Rows struct {
	chunked *selforg.Rows // serving-side rope source; nil when flat
	n       int           // rows to emit from chunked (MaxRows truncation)
	flat    []int64       // decoded or explicitly-built form
}

// NewRows wraps an already-flat row slice (multi-column results project
// their single column through here).
func NewRows(flat []int64) *Rows { return &Rows{flat: flat} }

// chunkedRows wraps a facade result, emitting at most n rows.
// Requires n <= r.Len().
func chunkedRows(r *selforg.Rows, n int) *Rows {
	return &Rows{chunked: r, n: n}
}

// Len returns the number of rows the result carries (after truncation).
func (r *Rows) Len() int {
	if r == nil {
		return 0
	}
	if r.chunked != nil {
		return r.n
	}
	return len(r.flat)
}

// Values returns the rows as a flat slice. Callers must not mutate it:
// on the serving side it may alias column storage.
func (r *Rows) Values() []int64 {
	if r == nil {
		return nil
	}
	if r.chunked == nil {
		return r.flat
	}
	return r.chunked.Flatten()[:r.n]
}

// MarshalJSON encodes the rows as a JSON array, walking the chunked
// source in place — no intermediate flat slice.
func (r *Rows) MarshalJSON() ([]byte, error) {
	buf := make([]byte, 0, 2+r.Len()*8)
	buf = append(buf, '[')
	first := true
	emit := func(v int64) {
		if !first {
			buf = append(buf, ',')
		}
		first = false
		buf = strconv.AppendInt(buf, v, 10)
	}
	if r != nil && r.chunked != nil {
		left := r.n
		r.chunked.Chunks(func(vals []int64) bool {
			if len(vals) > left {
				vals = vals[:left]
			}
			for _, v := range vals {
				emit(v)
			}
			left -= len(vals)
			return left > 0
		})
	} else if r != nil {
		for _, v := range r.flat {
			emit(v)
		}
	}
	return append(buf, ']'), nil
}

// UnmarshalJSON decodes a JSON row array into the flat form.
func (r *Rows) UnmarshalJSON(b []byte) error {
	r.chunked, r.n = nil, 0
	return json.Unmarshal(b, &r.flat)
}
