package server

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"

	"selforg"
	"selforg/internal/sql"
)

// maxStatementBytes bounds the /sql request body; the supported
// statement class is a single line, so anything larger is abuse.
const maxStatementBytes = 1 << 20

// errorBody is the JSON error envelope of every non-2xx answer.
type errorBody struct {
	Error string `json:"error"`
	// Offset is the byte position of a syntax error in the submitted
	// statement (present only for syntax errors).
	Offset *int `json:"offset,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	body := errorBody{Error: err.Error()}
	var se *sql.SyntaxError
	if errors.As(err, &se) {
		off := se.Offset
		body.Offset = &off
	}
	writeJSON(w, status, body)
}

// handleSQL is POST /sql: the statement in the body, ?tenant= routing,
// admission control in front of execution. A warm request costs one lex
// pass and a cache hit before it touches the column.
func (s *Server) handleSQL(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST a SQL statement"))
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxStatementBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(body) > maxStatementBytes {
		writeError(w, http.StatusRequestEntityTooLarge, errors.New("statement too large"))
		return
	}
	release, ok := s.gate.acquire()
	if !ok {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, errors.New("server saturated, retry later"))
		return
	}
	defer release()
	res, err := s.Exec(r.URL.Query().Get("tenant"), string(body))
	if err != nil {
		status := http.StatusInternalServerError
		if isClientError(err) {
			status = http.StatusBadRequest
		}
		writeError(w, status, err)
		return
	}
	if r.URL.Query().Get("explain") != "" {
		writeJSON(w, http.StatusOK, struct {
			*Result
			Plan string `json:"plan"`
		}{res, res.Plan})
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleQuery is the legacy GET /query?lo=&hi=[&op=count][&tenant=]
// endpoint of PR 6, kept for dashboards scripted against it; it routes
// through the same tenant registry but bypasses the SQL front end.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	lo, err1 := strconv.ParseInt(r.URL.Query().Get("lo"), 10, 64)
	hi, err2 := strconv.ParseInt(r.URL.Query().Get("hi"), 10, 64)
	if err1 != nil || err2 != nil {
		writeError(w, http.StatusBadRequest, errors.New("need integer lo= and hi= parameters"))
		return
	}
	col, err := s.Tenant(r.URL.Query().Get("tenant"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var (
		count int64
		st    selforg.Stats
	)
	if r.URL.Query().Get("op") == "count" {
		count, st = col.Count(lo, hi)
	} else {
		var res []int64
		res, st = col.Select(lo, hi)
		count = int64(len(res))
	}
	writeJSON(w, http.StatusOK, struct {
		Count    int64         `json:"count"`
		Stats    selforg.Stats `json:"stats"`
		Segments int           `json:"segments"`
		Totals   selforg.Stats `json:"totals"`
	}{count, st, col.SegmentCount(), col.Totals()})
}

// handleWrite is POST /write?op=insert|update|delete&v=|&old=&new=
// [&tenant=]: single-row MVCC writes against a tenant's column, the
// over-the-wire counterpart of Column.Insert/Update/Delete. Writes
// drive the delta store and its self-organizing merge-back exactly like
// library calls.
func (s *Server) handleWrite(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST writes"))
		return
	}
	col, err := s.Tenant(r.URL.Query().Get("tenant"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	q := r.URL.Query()
	parse := func(key string) (int64, error) {
		return strconv.ParseInt(q.Get(key), 10, 64)
	}
	var (
		st  selforg.Stats
		hit = true
	)
	switch q.Get("op") {
	case "insert":
		v, err := parse("v")
		if err != nil {
			writeError(w, http.StatusBadRequest, errors.New("insert needs integer v="))
			return
		}
		st, err = col.Insert(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	case "update":
		old, err1 := parse("old")
		nv, err2 := parse("new")
		if err1 != nil || err2 != nil {
			writeError(w, http.StatusBadRequest, errors.New("update needs integer old= and new="))
			return
		}
		hit, st, err = col.Update(old, nv)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
	case "delete":
		v, perr := parse("v")
		if perr != nil {
			writeError(w, http.StatusBadRequest, errors.New("delete needs integer v="))
			return
		}
		hit, st, err = col.Delete(v)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
	default:
		writeError(w, http.StatusBadRequest, errors.New("op must be insert, update or delete"))
		return
	}
	writeJSON(w, http.StatusOK, struct {
		OK    bool          `json:"ok"`
		Stats selforg.Stats `json:"stats"`
	}{hit, st})
}

// handleFlush is POST /plans/flush: administrative plan-cache
// invalidation (the catalog-epoch bump exposed over the wire).
func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST to flush"))
		return
	}
	s.InvalidatePlans()
	writeJSON(w, http.StatusOK, struct {
		Flushed bool  `json:"flushed"`
		Epoch   int64 `json:"epoch"`
	}{true, s.cache.Epoch()})
}
