package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"selforg"
)

// testConfig is a small, fast column: 20k values over [0, 9999], every
// row returnable, metrics isolated per test.
func testConfig() Config {
	return Config{
		Extent:   selforg.Interval{Lo: 0, Hi: 9999},
		N:        20_000,
		Seed:     1,
		MaxRows:  20_000,
		Observer: selforg.NewObserver(),
	}
}

func TestExecColdThenWarm(t *testing.T) {
	s := New(testConfig())
	defer s.Close()

	r1, err := s.Exec("", "SELECT COUNT(*) FROM P WHERE v BETWEEN 100 AND 200")
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cached {
		t.Error("first execution reported cached")
	}
	if r1.Op != "count" || r1.Count <= 0 {
		t.Errorf("count result = %+v", r1)
	}
	// Same shape, different constants: must hit the cache.
	r2, err := s.Exec("", "select count(*) from P where v between 300 and 400;")
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Cached {
		t.Error("same-shape execution missed the cache")
	}
	hits, misses, _ := s.CacheStats()
	if hits != 1 || misses != 1 {
		t.Errorf("cache stats = %d hits / %d misses, want 1/1", hits, misses)
	}
	if r1.Fingerprint != r2.Fingerprint {
		t.Errorf("fingerprints differ: %q vs %q", r1.Fingerprint, r2.Fingerprint)
	}
}

func TestExecOps(t *testing.T) {
	s := New(testConfig())
	defer s.Close()

	sel, err := s.Exec("", "SELECT v FROM P WHERE v BETWEEN 10 AND 20")
	if err != nil {
		t.Fatal(err)
	}
	cnt, err := s.Exec("", "SELECT COUNT(*) FROM P WHERE v BETWEEN 10 AND 20")
	if err != nil {
		t.Fatal(err)
	}
	sum, err := s.Exec("", "SELECT SUM(v) FROM P WHERE v BETWEEN 10 AND 20")
	if err != nil {
		t.Fatal(err)
	}
	if int64(sel.Rows.Len()) != sel.Count {
		t.Errorf("select returned %d rows, count %d", sel.Rows.Len(), sel.Count)
	}
	if cnt.Count != sel.Count {
		t.Errorf("COUNT(*) = %d, SELECT cardinality = %d", cnt.Count, sel.Count)
	}
	var want int64
	for _, v := range sel.Rows.Values() {
		if v < 10 || v > 20 {
			t.Fatalf("row %d outside predicate", v)
		}
		want += v
	}
	if sum.Sum != want {
		t.Errorf("SUM(v) = %d, want %d", sum.Sum, want)
	}
}

func TestExecFractionalBounds(t *testing.T) {
	s := New(testConfig())
	defer s.Close()
	// [9.5, 20.5] over integers is [10, 20]: same answer as the integer
	// bounds — the ceil/floor bind conversion.
	a, err := s.Exec("", "SELECT COUNT(*) FROM P WHERE v BETWEEN 9.5 AND 20.5")
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Exec("", "SELECT COUNT(*) FROM P WHERE v BETWEEN 10 AND 20")
	if err != nil {
		t.Fatal(err)
	}
	if a.Count != b.Count {
		t.Errorf("fractional bounds count %d != integer bounds count %d", a.Count, b.Count)
	}
}

func TestExecErrors(t *testing.T) {
	s := New(testConfig())
	defer s.Close()
	cases := []string{
		"SELECT", // truncated
		"SELECT v FROM P WHERE v BETWEEN 2 AND 1",       // inverted bounds
		"SELECT nope FROM P WHERE v BETWEEN 1 AND 2",    // unknown column
		"SELECT v FROM Nope WHERE v BETWEEN 1 AND 2",    // unknown table
		"SELECT SUM(no) FROM P WHERE v BETWEEN 1 AND 2", // unknown aggr column
	}
	for _, src := range cases {
		_, err := s.Exec("", src)
		if err == nil {
			t.Errorf("Exec(%q) succeeded", src)
			continue
		}
		if !isClientError(err) {
			t.Errorf("Exec(%q): %v not classified as client error", src, err)
		}
	}
	// Compile failures must not populate the cache.
	if hits, _, _ := s.CacheStats(); hits != 0 {
		t.Errorf("cache hits after errors = %d", hits)
	}
}

func TestInvalidatePlansForcesRecompile(t *testing.T) {
	s := New(testConfig())
	defer s.Close()
	const q = "SELECT COUNT(*) FROM P WHERE v BETWEEN 1 AND 2"
	if _, err := s.Exec("", q); err != nil {
		t.Fatal(err)
	}
	r, err := s.Exec("", q)
	if err != nil || !r.Cached {
		t.Fatalf("warm exec: cached=%v err=%v", r.Cached, err)
	}
	s.InvalidatePlans()
	r, err = s.Exec("", q)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cached {
		t.Error("execution after InvalidatePlans still cached")
	}
}

func TestExplain(t *testing.T) {
	s := New(testConfig())
	defer s.Close()
	plan, err := s.Explain("SELECT COUNT(*) FROM P WHERE v BETWEEN 1 AND 2")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"function user.q0(A0:dbl,A1:dbl)", "aggr.count", "sql.bind"} {
		if !strings.Contains(plan, want) {
			t.Errorf("plan missing %q:\n%s", want, plan)
		}
	}
}

func TestTenantIsolation(t *testing.T) {
	s := New(testConfig())
	defer s.Close()
	const q = "SELECT COUNT(*) FROM P WHERE v BETWEEN 0 AND 9999"
	a, err := s.Exec("alpha", q)
	if err != nil {
		t.Fatal(err)
	}
	// Mutate alpha only; beta (and default) must not see the writes.
	colA, err := s.Tenant("alpha")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := colA.Insert(5000); err != nil {
			t.Fatal(err)
		}
	}
	a2, err := s.Exec("alpha", q)
	if err != nil {
		t.Fatal(err)
	}
	if a2.Count != a.Count+10 {
		t.Errorf("alpha count after 10 inserts = %d, want %d", a2.Count, a.Count+10)
	}
	b, err := s.Exec("beta", q)
	if err != nil {
		t.Fatal(err)
	}
	if b.Count != int64(s.cfg.N) {
		t.Errorf("beta count = %d, want pristine %d", b.Count, s.cfg.N)
	}
	// Both tenants share the plan cache: beta's exec was a hit.
	if !b.Cached {
		t.Error("cross-tenant execution missed the shared cache")
	}
}

// TestTenantDurability: with a durability directory configured, each
// tenant logs into its own subdirectory, and a rebuilt server over the
// same directory recovers every tenant's committed writes.
func TestTenantDurability(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	cfg.Options.Durability = selforg.Durability{Dir: dir}
	const q = "SELECT COUNT(*) FROM P WHERE v BETWEEN 0 AND 9999"

	s := New(cfg)
	for _, tn := range []string{"alpha", "beta"} {
		col, err := s.Tenant(tn)
		if err != nil {
			t.Fatal(err)
		}
		if !col.Durable() {
			t.Fatalf("tenant %q column not durable", tn)
		}
		for i := 0; i < 5; i++ {
			if _, err := col.Insert(7_000); err != nil {
				t.Fatal(err)
			}
		}
	}
	s.Close()

	s2 := New(cfg)
	defer s2.Close()
	for _, tn := range []string{"alpha", "beta"} {
		res, err := s2.Exec(tn, q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != int64(cfg.N)+5 {
			t.Errorf("tenant %q recovered count = %d, want %d", tn, res.Count, cfg.N+5)
		}
	}
	// Distinct per-tenant directories exist.
	for _, tn := range []string{"alpha", "beta"} {
		col, err := s2.Tenant(tn)
		if err != nil {
			t.Fatal(err)
		}
		if ws, ok := col.WALStats(); !ok || (ws.Replayed == 0 && ws.LastSeq == 0) {
			t.Errorf("tenant %q recovered nothing: %+v ok=%v", tn, ws, ok)
		}
	}
}

func TestTenantNames(t *testing.T) {
	s := New(testConfig())
	defer s.Close()
	for _, bad := range []string{"a b", "x/y", strings.Repeat("a", 33), "é"} {
		if _, err := s.Tenant(bad); err == nil {
			t.Errorf("Tenant(%q) accepted", bad)
		}
	}
	if _, err := s.Tenant(""); err != nil {
		t.Errorf("default tenant: %v", err)
	}
	if _, err := s.Tenant("ok-1_A"); err != nil {
		t.Errorf("Tenant(ok-1_A): %v", err)
	}
}

func TestGate(t *testing.T) {
	g := newGate(2, 1)
	r1, ok1 := g.acquire()
	r2, ok2 := g.acquire()
	if !ok1 || !ok2 {
		t.Fatal("worker-slot acquires shed")
	}
	// Third request: admitted (backlog ticket) but blocked on a slot.
	third := make(chan func(), 1)
	go func() {
		r, ok := g.acquire()
		if !ok {
			t.Error("backlog acquire shed")
			return
		}
		third <- r
	}()
	// Wait for the third request to hold its ticket.
	deadline := time.Now().Add(5 * time.Second)
	for len(g.tickets) < 3 {
		if time.Now().After(deadline) {
			t.Fatal("backlog request never took its ticket")
		}
		time.Sleep(time.Millisecond)
	}
	// Fourth request: past workers+backlog, shed at the door.
	if _, ok := g.acquire(); ok {
		t.Fatal("4th acquire admitted past workers+backlog")
	}
	if g.Shed() != 1 {
		t.Errorf("shed = %d, want 1", g.Shed())
	}
	r1() // frees a slot: the backlogged request proceeds
	select {
	case r := <-third:
		r()
	case <-time.After(5 * time.Second):
		t.Fatal("backlogged request never got the freed slot")
	}
	r2()
	if len(g.tickets) != 0 || len(g.slots) != 0 {
		t.Errorf("gate not drained: %d tickets, %d slots", len(g.tickets), len(g.slots))
	}
}

func TestHandlerSheds429(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 1
	cfg.Backlog = -1 // no backlog: the second concurrent request sheds
	cfg.SlowExec = 300 * time.Millisecond
	s := New(cfg)
	defer s.Close()
	// Pre-build the column so the slow request's hold window is the
	// SlowExec sleep, not data generation.
	if _, err := s.Tenant(""); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func() (*http.Response, error) {
		return http.Post(ts.URL+"/sql", "text/plain",
			strings.NewReader("SELECT COUNT(*) FROM P WHERE v BETWEEN 1 AND 2"))
	}
	done := make(chan error, 1)
	go func() {
		resp, err := post()
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("first request: status %d", resp.StatusCode)
			}
		}
		done <- err
	}()
	time.Sleep(100 * time.Millisecond) // first request is inside SlowExec
	resp, err := post()
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestHandlerErrors(t *testing.T) {
	s := New(testConfig())
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Parse error: 400 with the error offset.
	resp, err := http.Post(ts.URL+"/sql", "text/plain", strings.NewReader("SELECT v FROM"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	var body errorBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Offset == nil {
		t.Fatalf("400 body has no offset: %+v", body)
	}
	if *body.Offset != len("SELECT v FROM") {
		t.Errorf("offset = %d, want %d", *body.Offset, len("SELECT v FROM"))
	}

	// GET /sql: 405.
	resp2, err := http.Get(ts.URL + "/sql")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /sql status = %d, want 405", resp2.StatusCode)
	}

	// Malformed tenant name: the client's mistake, 400 not 500.
	resp3, err := http.Post(ts.URL+"/sql?tenant=..%2Fetc", "text/plain",
		strings.NewReader("SELECT COUNT(*) FROM P WHERE v BETWEEN 1 AND 2"))
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Errorf("bad tenant status = %d, want 400", resp3.StatusCode)
	}
}

func TestHandlerWriteAndFlush(t *testing.T) {
	s := New(testConfig())
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	before, err := s.Exec("", "SELECT COUNT(*) FROM P WHERE v BETWEEN 0 AND 9999")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/write?op=insert&v=123", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/write status = %d", resp.StatusCode)
	}
	after, err := s.Exec("", "SELECT COUNT(*) FROM P WHERE v BETWEEN 0 AND 9999")
	if err != nil {
		t.Fatal(err)
	}
	if after.Count != before.Count+1 {
		t.Errorf("count after insert = %d, want %d", after.Count, before.Count+1)
	}

	resp2, err := http.Post(ts.URL+"/plans/flush", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var flushed struct {
		Flushed bool  `json:"flushed"`
		Epoch   int64 `json:"epoch"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&flushed); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if !flushed.Flushed || flushed.Epoch == 0 {
		t.Errorf("flush response = %+v", flushed)
	}
	r, err := s.Exec("", "SELECT COUNT(*) FROM P WHERE v BETWEEN 0 AND 9999")
	if err != nil {
		t.Fatal(err)
	}
	if r.Cached {
		t.Error("cached after /plans/flush")
	}
}

// TestConcurrentTenantCreation: many goroutines racing on the same
// fresh tenant must all see the same column.
func TestConcurrentTenantCreation(t *testing.T) {
	cfg := testConfig()
	cfg.N = 2000
	s := New(cfg)
	defer s.Close()
	var wg sync.WaitGroup
	cols := make([]*selforg.Column, 8)
	for i := range cols {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			col, err := s.Tenant("shared")
			if err != nil {
				t.Error(err)
				return
			}
			cols[i] = col
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(cols); i++ {
		if cols[i] != cols[0] {
			t.Fatal("racing Tenant calls built different columns")
		}
	}
}
